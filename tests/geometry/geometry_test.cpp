#include <gtest/gtest.h>

#include "geometry/floorplan.h"
#include "geometry/segment.h"
#include "geometry/svg.h"
#include "geometry/vec2.h"

namespace wnet::geom {
namespace {

TEST(Vec2, BasicArithmetic) {
  const Vec2 a{1, 2};
  const Vec2 b{3, -1};
  EXPECT_EQ((a + b), (Vec2{4, 1}));
  EXPECT_EQ((a - b), (Vec2{-2, 3}));
  EXPECT_EQ((2.0 * a), (Vec2{2, 4}));
  EXPECT_DOUBLE_EQ(a.dot(b), 1.0);
  EXPECT_DOUBLE_EQ(a.cross(b), -7.0);
  EXPECT_DOUBLE_EQ((Vec2{3, 4}).norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.dist(b), std::hypot(2.0, 3.0));
}

TEST(Segment, ProperCrossing) {
  EXPECT_TRUE(segments_intersect({{0, 0}, {2, 2}}, {{0, 2}, {2, 0}}));
}

TEST(Segment, NoIntersection) {
  EXPECT_FALSE(segments_intersect({{0, 0}, {1, 0}}, {{0, 1}, {1, 1}}));
  EXPECT_FALSE(segments_intersect({{0, 0}, {1, 1}}, {{2, 2}, {3, 3}}));  // collinear apart
}

TEST(Segment, TouchingEndpointCounts) {
  EXPECT_TRUE(segments_intersect({{0, 0}, {1, 1}}, {{1, 1}, {2, 0}}));
}

TEST(Segment, CollinearOverlap) {
  EXPECT_TRUE(segments_intersect({{0, 0}, {2, 0}}, {{1, 0}, {3, 0}}));
}

TEST(Segment, TJunction) {
  EXPECT_TRUE(segments_intersect({{0, 0}, {2, 0}}, {{1, -1}, {1, 0}}));
}

TEST(Segment, ParallelClose) {
  EXPECT_FALSE(segments_intersect({{0, 0}, {10, 0}}, {{0, 0.01}, {10, 0.01}}));
}

TEST(Segment, PointDistance) {
  const Segment s{{0, 0}, {10, 0}};
  EXPECT_DOUBLE_EQ(point_segment_distance({5, 3}, s), 3.0);
  EXPECT_DOUBLE_EQ(point_segment_distance({-4, 3}, s), 5.0);  // beyond endpoint
  EXPECT_DOUBLE_EQ(point_segment_distance({12, 0}, s), 2.0);
}

TEST(Segment, DegenerateSegmentIsPoint) {
  const Segment s{{1, 1}, {1, 1}};
  EXPECT_DOUBLE_EQ(point_segment_distance({4, 5}, s), 5.0);
}

TEST(FloorPlan, WallLossAccumulates) {
  FloorPlan plan(20, 10);
  plan.add_wall({5, 0}, {5, 10}, WallMaterial::kConcrete);
  plan.add_wall({10, 0}, {10, 10}, WallMaterial::kLight);
  // Path crossing both walls.
  EXPECT_DOUBLE_EQ(plan.wall_loss_db({0, 5}, {15, 5}),
                   default_wall_loss_db(WallMaterial::kConcrete) +
                       default_wall_loss_db(WallMaterial::kLight));
  EXPECT_EQ(plan.walls_crossed({0, 5}, {15, 5}), 2);
  // Path crossing none.
  EXPECT_DOUBLE_EQ(plan.wall_loss_db({0, 5}, {4, 5}), 0.0);
}

TEST(FloorPlan, ContainsBoundingBox) {
  FloorPlan plan(20, 10);
  EXPECT_TRUE(plan.contains({0, 0}));
  EXPECT_TRUE(plan.contains({20, 10}));
  EXPECT_FALSE(plan.contains({20.1, 5}));
  EXPECT_FALSE(plan.contains({5, -0.1}));
}

TEST(FloorPlan, ParseRoundTrip) {
  const std::string text =
      "floor 30 20\n"
      "# shell\n"
      "wall 0 0 30 0 concrete\n"
      "wall 10 0 10 20 light\n"
      "wall 20 0 20 20\n";  // default material
  const FloorPlan plan = parse_floorplan(text);
  EXPECT_DOUBLE_EQ(plan.width(), 30.0);
  EXPECT_DOUBLE_EQ(plan.height(), 20.0);
  ASSERT_EQ(plan.walls().size(), 3u);
  EXPECT_EQ(plan.walls()[0].material, WallMaterial::kConcrete);
  EXPECT_EQ(plan.walls()[2].material, WallMaterial::kLight);

  const FloorPlan again = parse_floorplan(to_text(plan));
  EXPECT_EQ(again.walls().size(), plan.walls().size());
  EXPECT_DOUBLE_EQ(again.width(), plan.width());
}

TEST(FloorPlan, ParseErrors) {
  EXPECT_THROW(parse_floorplan("wall 0 0 1 1\n"), std::runtime_error);  // missing floor
  EXPECT_THROW(parse_floorplan("floor 10\n"), std::runtime_error);
  EXPECT_THROW(parse_floorplan("floor 10 10\nwall 0 0 1\n"), std::runtime_error);
  EXPECT_THROW(parse_floorplan("floor 10 10\nwall 0 0 1 1 adamantium\n"), std::runtime_error);
  EXPECT_THROW(parse_floorplan("floor -5 10\n"), std::runtime_error);
  EXPECT_THROW(parse_floorplan("floor 10 10\nfnord\n"), std::runtime_error);
}

TEST(FloorPlan, OfficeFloorHasShellAndRooms) {
  const FloorPlan plan = make_office_floor(80, 45, 8);
  EXPECT_GT(plan.walls().size(), 10u);
  // A vertical path through the corridor walls must be attenuated.
  EXPECT_GT(plan.wall_loss_db({40.2, 2}, {40.2, 43}), 0.0);
}

TEST(Svg, ProducesWellFormedDocument) {
  SvgCanvas canvas(20, 10);
  FloorPlan plan(20, 10);
  plan.add_wall({0, 0}, {20, 0}, WallMaterial::kConcrete);
  canvas.draw_floorplan(plan);
  canvas.draw_circle({5, 5}, 3, "green");
  canvas.draw_square({10, 5}, 3, "red");
  canvas.draw_line({0, 0}, {20, 10}, "blue", 1.5, true);
  canvas.draw_text({1, 1}, "label");
  const std::string doc = canvas.to_string();
  EXPECT_NE(doc.find("<svg"), std::string::npos);
  EXPECT_NE(doc.find("</svg>"), std::string::npos);
  EXPECT_NE(doc.find("<circle"), std::string::npos);
  EXPECT_NE(doc.find("stroke-dasharray"), std::string::npos);
}

TEST(Svg, FlipsYAxis) {
  SvgCanvas canvas(10, 10, 10.0);
  canvas.draw_circle({0, 0}, 1, "black");
  // y=0 in meters must render at the bottom (pixel y = height).
  EXPECT_NE(canvas.to_string().find("cy=\"100\""), std::string::npos);
}

}  // namespace
}  // namespace wnet::geom
