#include "core/faults/campaign.h"
#include "core/faults/fault_model.h"

#include <gtest/gtest.h>

#include <string>

#include "channel/propagation.h"
#include "core/explorer.h"

namespace wnet::archex {
namespace {

// Same two-corridor geometry as resilience_test: a sensor and a sink
// bridged by two parallel rows of three candidate relays.
class FaultCampaign : public ::testing::Test {
 protected:
  FaultCampaign() : model_(2.4e9, 2.2), lib_(make_reference_library()), tmpl_(model_, lib_) {
    tmpl_.add_node({"s0", {0, 5}, Role::kSensor, NodeKind::kFixed, std::nullopt});
    tmpl_.add_node({"sink", {40, 5}, Role::kSink, NodeKind::kFixed, std::nullopt});
    for (int i = 0; i < 3; ++i) {
      tmpl_.add_node({"ra" + std::to_string(i), {10.0 * (i + 1), 2.0}, Role::kRelay,
                      NodeKind::kCandidate, std::nullopt});
      tmpl_.add_node({"rb" + std::to_string(i), {10.0 * (i + 1), 8.0}, Role::kRelay,
                      NodeKind::kCandidate, std::nullopt});
    }
    spec_.link_quality.min_snr_db = 32.0;
    spec_.objective = {1.0, 0.0, 0.0};
    RouteRequirement r;
    r.source = 0;
    r.dest = 1;
    r.replicas = 1;
    spec_.routes.push_back(r);
  }

  channel::LogDistanceModel model_;
  ComponentLibrary lib_;
  NetworkTemplate tmpl_;
  Specification spec_;
};

TEST(ShadowingModel, DeterministicSymmetricAndSeeded) {
  const channel::LogDistanceModel base(2.4e9, 2.2);
  const geom::Vec2 a{1.0, 2.0};
  const geom::Vec2 b{15.0, 7.0};

  const channel::ShadowingModel s1(base, 4.0, 42);
  const channel::ShadowingModel s2(base, 4.0, 42);
  const channel::ShadowingModel s3(base, 4.0, 43);

  // Same seed: identical realization. The offset is a pure function of the
  // endpoint pair, so the channel stays symmetric.
  EXPECT_DOUBLE_EQ(s1.path_loss_db(a, b), s2.path_loss_db(a, b));
  EXPECT_DOUBLE_EQ(s1.path_loss_db(a, b), s1.path_loss_db(b, a));
  // Different seed: a different draw (with overwhelming probability).
  EXPECT_NE(s1.path_loss_db(a, b), s3.path_loss_db(a, b));
  // Zero sigma degenerates to the base model exactly.
  const channel::ShadowingModel s0(base, 0.0, 42);
  EXPECT_DOUBLE_EQ(s0.path_loss_db(a, b), base.path_loss_db(a, b));
  // Nonzero sigma perturbs the loss.
  EXPECT_NE(s1.path_loss_db(a, b), base.path_loss_db(a, b));
}

TEST_F(FaultCampaign, ScenarioGenerationIsDeterministic) {
  NetworkArchitecture arch;
  for (int v : {2, 3, 4, 5, 6, 7}) arch.nodes.push_back({v, 0});
  ChosenRoute r;
  r.route_index = 0;
  r.path.nodes = {0, 2, 4, 6, 1};
  arch.routes.push_back(r);

  faults::FaultModelConfig cfg;
  cfg.seed = 7;
  cfg.fading_draws = 16;
  const faults::FaultModel fm(tmpl_, spec_, cfg);
  const auto s1 = fm.scenarios(arch);
  const auto s2 = fm.scenarios(arch);

  ASSERT_EQ(s1.size(), s2.size());
  ASSERT_FALSE(s1.empty());
  bool saw_fading = false;
  for (size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].id, s2[i].id);
    EXPECT_EQ(s1[i].kind, s2[i].kind);
    EXPECT_EQ(s1[i].failed_nodes, s2[i].failed_nodes);
    EXPECT_EQ(s1[i].cut_links, s2[i].cut_links);
    EXPECT_EQ(s1[i].fading_seed, s2[i].fading_seed);
    saw_fading |= s1[i].kind == faults::FaultKind::kFading;
  }
  EXPECT_TRUE(saw_fading);  // spec has an LQ floor, so draws must appear

  // A different campaign seed reshuffles the fading realizations.
  cfg.seed = 8;
  const auto s3 = faults::FaultModel(tmpl_, spec_, cfg).scenarios(arch);
  ASSERT_EQ(s3.size(), s1.size());
  bool any_diff = false;
  for (size_t i = 0; i < s1.size(); ++i) any_diff |= s1[i].fading_seed != s3[i].fading_seed;
  EXPECT_TRUE(any_diff);
}

TEST_F(FaultCampaign, ReportJsonIsMachineReadable) {
  NetworkArchitecture arch;
  for (int v : {2, 4, 6}) arch.nodes.push_back({v, 0});
  ChosenRoute r;
  r.route_index = 0;
  r.path.nodes = {0, 2, 4, 6, 1};
  arch.routes.push_back(r);

  faults::FaultModelConfig cfg;
  cfg.link_cuts = false;
  cfg.fading_draws = 0;
  const faults::FaultModel fm(tmpl_, spec_, cfg);
  const auto rep = faults::run_campaign(arch, tmpl_, spec_, fm.scenarios(arch));

  // A lone replica over three relays: every single failure breaks it.
  EXPECT_EQ(rep.pass_rate(), 0.0);
  EXPECT_EQ(rep.broken_per_route(1), std::vector<int>{rep.total()});

  const std::string json = rep.to_json();
  EXPECT_NE(json.find("\"total\": " + std::to_string(rep.total())), std::string::npos);
  EXPECT_NE(json.find("\"by_kind\""), std::string::npos);
  EXPECT_NE(json.find("\"node\""), std::string::npos);
  EXPECT_NE(json.find("\"failures\""), std::string::npos);
  EXPECT_NE(json.find("\"broken_routes\": [0]"), std::string::npos);
}

TEST_F(FaultCampaign, ExploreRobustRepairsSingleFailuresDeterministically) {
  // One replica cannot survive single relay deaths; the repair loop must
  // discover that via counterexamples, raise N_rep, and land on disjoint
  // replicas that pass the whole (k=1, link cuts, fading) campaign.
  const Explorer ex(tmpl_, spec_);
  Explorer::RobustExploreOptions ro;
  ro.encoder.k_star = 8;
  ro.solver.time_limit_s = 30.0;
  ro.faults.seed = 3;
  ro.faults.max_simultaneous_failures = 1;
  ro.faults.fading_draws = 25;
  ro.faults.fading_sigma_db = 2.0;
  ro.time_budget_s = 120.0;
  ro.max_repair_iterations = 8;

  const auto r1 = ex.explore_robust(ro);
  ASSERT_TRUE(r1.best.has_solution());
  EXPECT_GT(r1.iterations, 1);
  EXPECT_GT(r1.hardenings_applied, 0);
  EXPECT_TRUE(r1.robust) << r1.report.to_json();
  EXPECT_EQ(r1.raised_routes, std::vector<int>{0});
  EXPECT_GE(r1.best.architecture.routes.size(), 2u);
  EXPECT_TRUE(verify_architecture(r1.best.architecture, tmpl_, spec_).ok);

  // Fixed seed => bit-identical reruns: same loop trajectory, same report.
  const auto r2 = ex.explore_robust(ro);
  EXPECT_EQ(r1.iterations, r2.iterations);
  EXPECT_EQ(r1.robust, r2.robust);
  EXPECT_EQ(r1.hardenings_applied, r2.hardenings_applied);
  EXPECT_DOUBLE_EQ(r1.best.objective, r2.best.objective);
  EXPECT_EQ(r1.report.to_json(), r2.report.to_json());
}

}  // namespace
}  // namespace wnet::archex
