#include "core/solution.h"

#include <gtest/gtest.h>

#include "channel/propagation.h"
#include "core/encode/encoder.h"
#include "core/explorer.h"
#include "core/render.h"
#include "milp/solver.h"

namespace wnet::archex {
namespace {

/// Fixture mirroring the encoder test bed, focused on decode/verify/render.
class DecodeScenario : public ::testing::Test {
 protected:
  DecodeScenario() : model_(2.4e9, 2.0), lib_(make_reference_library()), tmpl_(model_, lib_) {
    tmpl_.add_node({"s0", {0, 10}, Role::kSensor, NodeKind::kFixed, std::nullopt});
    tmpl_.add_node({"sink", {30, 10}, Role::kSink, NodeKind::kFixed, std::nullopt});
    tmpl_.add_node({"r0", {10, 10}, Role::kRelay, NodeKind::kCandidate, std::nullopt});
    tmpl_.add_node({"r1", {20, 10}, Role::kRelay, NodeKind::kCandidate, std::nullopt});
    spec_.link_quality.min_snr_db = 20.0;
    spec_.objective = {1.0, 0.0, 0.0};
    RouteRequirement r;
    r.source = 0;
    r.dest = 1;
    spec_.routes.push_back(r);
  }

  channel::LogDistanceModel model_;
  ComponentLibrary lib_;
  NetworkTemplate tmpl_;
  Specification spec_;
};

TEST_F(DecodeScenario, DecodeRoundTripsThroughModelVariables) {
  Encoder enc(tmpl_, spec_, {});
  const auto ep = enc.encode();
  const auto res = milp::solve(ep.model);
  ASSERT_TRUE(res.has_solution());
  const auto arch = decode_solution(ep, tmpl_, spec_, res.x);

  // Every deployed node's mapping var must be on in the assignment.
  for (const auto& d : arch.nodes) {
    const auto it = ep.mapping.find({d.component, d.node});
    ASSERT_NE(it, ep.mapping.end());
    EXPECT_GT(res.x[static_cast<size_t>(it->second.id)], 0.5);
  }
  // Fixed endpoints deployed; exactly one route decoded.
  EXPECT_TRUE(arch.node_is_used(0));
  EXPECT_TRUE(arch.node_is_used(1));
  ASSERT_EQ(arch.routes.size(), 1u);
  EXPECT_EQ(arch.routes[0].path.nodes.front(), 0);
  EXPECT_EQ(arch.routes[0].path.nodes.back(), 1);
  // Cost equals the sum of component prices.
  double cost = 0;
  for (const auto& d : arch.nodes) cost += lib_.at(d.component).cost_usd;
  EXPECT_DOUBLE_EQ(cost, arch.total_cost_usd);
}

TEST_F(DecodeScenario, ComponentOfAndUsage) {
  NetworkArchitecture arch;
  arch.nodes.push_back({2, 3});
  EXPECT_TRUE(arch.node_is_used(2));
  EXPECT_FALSE(arch.node_is_used(1));
  EXPECT_EQ(arch.component_of(2), 3);
  EXPECT_EQ(arch.component_of(0), -1);
}

TEST_F(DecodeScenario, VerifyCatchesMissingFixedNode) {
  NetworkArchitecture arch;  // nothing deployed
  const auto rep = verify_architecture(arch, tmpl_, spec_);
  EXPECT_FALSE(rep.ok);
}

TEST_F(DecodeScenario, VerifyCatchesMissingRoute) {
  NetworkArchitecture arch;
  arch.nodes.push_back({0, *lib_.find("sensor-std")});
  arch.nodes.push_back({1, *lib_.find("sink-std")});
  const auto rep = verify_architecture(arch, tmpl_, spec_);
  EXPECT_FALSE(rep.ok);
  bool mentions_route = false;
  for (const auto& v : rep.violations) {
    if (v.find("route") != std::string::npos) mentions_route = true;
  }
  EXPECT_TRUE(mentions_route);
}

TEST_F(DecodeScenario, VerifyCatchesLoopedPath) {
  NetworkArchitecture arch;
  arch.nodes.push_back({0, *lib_.find("sensor-pa")});
  arch.nodes.push_back({1, *lib_.find("sink-ant")});
  arch.nodes.push_back({2, *lib_.find("relay-pa-ant")});
  ChosenRoute r;
  r.route_index = 0;
  r.path.nodes = {0, 2, 0, 1};  // revisits the source
  arch.routes.push_back(r);
  const auto rep = verify_architecture(arch, tmpl_, spec_);
  EXPECT_FALSE(rep.ok);
}

TEST_F(DecodeScenario, VerifyCatchesRoleMismatch) {
  NetworkArchitecture arch;
  arch.nodes.push_back({0, *lib_.find("relay-basic")});  // relay part on a sensor node
  const auto rep = verify_architecture(arch, tmpl_, spec_);
  EXPECT_FALSE(rep.ok);
}

TEST_F(DecodeScenario, VerifyCatchesWeakLink) {
  // Direct 30 m sensor->sink route with the weakest sensor violates a
  // draconian RSS floor.
  spec_.link_quality = {};
  spec_.link_quality.min_rss_dbm = -40.0;
  NetworkArchitecture arch;
  arch.nodes.push_back({0, *lib_.find("sensor-std")});
  arch.nodes.push_back({1, *lib_.find("sink-std")});
  ChosenRoute r;
  r.route_index = 0;
  r.path.nodes = {0, 1};
  arch.routes.push_back(r);
  const auto rep = verify_architecture(arch, tmpl_, spec_);
  EXPECT_FALSE(rep.ok);
}

TEST_F(DecodeScenario, DescribeMentionsDeployments) {
  Explorer ex(tmpl_, spec_);
  const auto res = ex.explore();
  ASSERT_TRUE(res.has_solution());
  const std::string text = describe(res.architecture, tmpl_);
  EXPECT_NE(text.find("cost"), std::string::npos);
  EXPECT_NE(text.find("routes"), std::string::npos);
  EXPECT_NE(text.find("s0"), std::string::npos);
}

TEST_F(DecodeScenario, RenderProducesSvgWithNodes) {
  Explorer ex(tmpl_, spec_);
  const auto res = ex.explore();
  ASSERT_TRUE(res.has_solution());
  geom::FloorPlan plan(30, 20);
  const std::string svg = render_svg(res.architecture, tmpl_, plan, spec_);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("<circle"), std::string::npos);
  const std::string tpl = render_template_svg(tmpl_, plan, spec_);
  EXPECT_NE(tpl.find("<svg"), std::string::npos);
}

TEST_F(DecodeScenario, LifetimeMetricsPopulated) {
  spec_.lifetime = LifetimeRequirement{3.0, 3000.0};
  Explorer ex(tmpl_, spec_);
  const auto res = ex.explore();
  ASSERT_TRUE(res.has_solution());
  EXPECT_GT(res.architecture.min_lifetime_years, 3.0 - 1e-9);
  EXPECT_GE(res.architecture.avg_lifetime_years, res.architecture.min_lifetime_years);
  EXPECT_GT(res.architecture.total_charge_per_cycle_mas, 0.0);
}

}  // namespace
}  // namespace wnet::archex
