// Deterministic graceful degradation: cancellation injected at the N-th
// spine checkpoint must stop the pipeline at exactly the same logical point
// for every worker-thread count, yielding byte-identical canonical partial
// reports. Wall-clock fields are excluded from the comparison (they are the
// only nondeterministic outputs by design); everything else — status,
// termination reason, objective, certificate, model sizes, search counts,
// architecture — must match exactly.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "channel/propagation.h"
#include "core/explorer.h"
#include "core/faults/campaign.h"
#include "core/faults/fault_model.h"
#include "util/exec/exec.h"
#include "util/obs/json.h"

namespace wnet::archex {
namespace {

using util::exec::CancellationSource;
using util::exec::CheckpointInjector;
using util::exec::ExecControl;

/// Same multi-route fixture as the parallel-determinism suite: three
/// sensors crossing a relay field, so the encoder, ladder and campaign all
/// have real parallel work to cut short.
class CancellationDeterminism : public ::testing::Test {
 protected:
  CancellationDeterminism()
      : model_(2.4e9, 2.4), lib_(make_reference_library()), tmpl_(model_, lib_) {
    tmpl_.add_node({"sink", {50, 5}, Role::kSink, NodeKind::kFixed, std::nullopt});
    for (int i = 0; i < 3; ++i) {
      tmpl_.add_node({"s" + std::to_string(i), {0.0, 2.0 + 3.0 * i}, Role::kSensor,
                      NodeKind::kFixed, std::nullopt});
    }
    for (int i = 0; i < 8; ++i) {
      tmpl_.add_node({"r" + std::to_string(i), {6.0 + 5.5 * i, 2.0 + (i % 3) * 3.0},
                      Role::kRelay, NodeKind::kCandidate, std::nullopt});
    }
    spec_.link_quality.min_snr_db = 35.0;
    spec_.objective = {1.0, 0.0, 0.0};
    for (int i = 0; i < 3; ++i) {
      RouteRequirement r;
      r.source = *tmpl_.find_node("s" + std::to_string(i));
      r.dest = 0;
      spec_.routes.push_back(r);
    }
  }

  /// Fresh control whose injector trips the token at the N-th spine
  /// checkpoint. Each run gets its own source/injector (counts reset).
  static ExecControl inject_at(long n) {
    CancellationSource src;
    ExecControl ctl;
    ctl.token = src.token();
    ctl.injector = std::make_shared<CheckpointInjector>(n, src);
    return ctl;
  }

  static void append_double(std::ostringstream& os, double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf << "|";
  }

  /// Canonical wall-clock-free rendering of a partial exploration result.
  static std::string canon(const ExplorationResult& r) {
    std::ostringstream os;
    os << milp::to_string(r.status) << "|" << util::exec::to_string(r.termination) << "|";
    append_double(os, r.has_solution() ? r.objective : 0.0);
    append_double(os, r.bound);
    append_double(os, r.gap);
    os << r.encode_stats.num_vars << "|" << r.encode_stats.num_constrs << "|"
       << r.encode_stats.candidate_paths << "|"
       << util::exec::to_string(r.encode_stats.termination) << "|" << r.solve_stats.nodes << "|"
       << r.solve_stats.lp_iterations << "|";
    for (const auto& n : r.architecture.nodes) os << n.node << ":" << n.component << ",";
    os << "|";
    for (const auto& rt : r.architecture.routes) {
      os << rt.route_index << "." << rt.replica << "=";
      for (int v : rt.path.nodes) os << v << ",";
      os << ";";
    }
    return os.str();
  }

  channel::LogDistanceModel model_;
  ComponentLibrary lib_;
  NetworkTemplate tmpl_;
  Specification spec_;
};

TEST_F(CancellationDeterminism, ExploreDegradesIdenticallyAcrossThreadCounts) {
  // Spine checkpoints in explore(): the encoder's phase gates first, then
  // one per branch-and-bound node. Small N cuts the encode, larger N cuts
  // the solve mid-tree; both must be thread-count-invariant because worker
  // pools poll a stripped worker_view and the spine blocks on every join.
  for (long n : {1L, 2L, 4L, 8L, 15L, 40L}) {
    milp::SolveOptions so;
    so.time_limit_s = 60.0;
    EncoderOptions eo;
    eo.k_star = 6;

    so.exec = eo.exec = inject_at(n);
    const Explorer ex(tmpl_, spec_);
    const std::string base = canon(ex.explore(eo, so));

    for (int threads : {2, 4, 8}) {
      EncoderOptions et = eo;
      et.threads = threads;
      milp::SolveOptions st = so;
      st.exec = et.exec = inject_at(n);
      EXPECT_EQ(canon(ex.explore(et, st)), base) << "inject_at=" << n << " threads=" << threads;
    }
  }
}

TEST_F(CancellationDeterminism, PartialReportsAreStrictJsonAtEveryInjectionPoint) {
  const Explorer ex(tmpl_, spec_);
  for (long n : {1L, 3L, 5L, 10L, 25L, 60L}) {
    milp::SolveOptions so;
    so.time_limit_s = 60.0;
    EncoderOptions eo;
    eo.k_star = 6;
    so.exec = eo.exec = inject_at(n);
    const auto r = ex.explore(eo, so);
    const std::string json = r.solver_json();
    EXPECT_TRUE(util::obs::json_valid(json))
        << "inject_at=" << n << ": " << util::obs::json_error(json).value_or("") << "\n" << json;
  }
}

TEST_F(CancellationDeterminism, SerialLadderInjectionIsReproducible) {
  // The incremental ladder is a serial spine end to end (encode_k entry,
  // encoder gates, node loop, scan boundaries): injecting at the same N
  // must reproduce the identical partial ladder, run after run.
  const Explorer ex(tmpl_, spec_);
  for (long n : {2L, 6L, 20L, 45L}) {
    const auto run = [&] {
      Explorer::KStarSearchOptions ko;
      ko.ladder = {1, 3, 6};
      milp::SolveOptions so;
      so.time_limit_s = 60.0;
      EncoderOptions eo;
      so.exec = eo.exec = inject_at(n);
      const auto r = ex.search_k_star(ko, eo, so);
      std::ostringstream os;
      os << r.chosen_k << "|" << util::exec::to_string(r.termination) << "|" << r.trace.size()
         << "|";
      for (const auto& [k, er] : r.trace) os << k << "{" << canon(er) << "}";
      os << canon(r.best);
      return os.str();
    };
    const std::string first = run();
    EXPECT_EQ(run(), first) << "inject_at=" << n;
  }
}

TEST_F(CancellationDeterminism, CampaignDegradesIdenticallyAcrossThreadCounts) {
  const Explorer ex(tmpl_, spec_);
  milp::SolveOptions so;
  so.time_limit_s = 60.0;
  const auto base = ex.explore({}, so);
  ASSERT_TRUE(base.has_solution());

  faults::FaultModelConfig fc;
  fc.seed = 5;
  fc.max_simultaneous_failures = 1;
  fc.fading_draws = 64;
  fc.fading_sigma_db = 2.0;
  const auto scenarios =
      faults::FaultModel(tmpl_, spec_, fc).scenarios(base.architecture);
  ASSERT_FALSE(scenarios.empty());

  // A pre-cancelled campaign replays nothing: every outcome is marked
  // unevaluated, the report says so, and it is identical for any pool size
  // (the token state cannot change mid-join — it was set before the fork).
  for (int threads : {1, 2, 4, 8}) {
    CancellationSource src;
    src.cancel();
    faults::CampaignOptions copts;
    copts.threads = threads;
    copts.exec.token = src.token();
    const auto rep = faults::CampaignRunner(tmpl_, spec_, copts).run(base.architecture, scenarios);
    EXPECT_EQ(rep.evaluated(), 0) << "threads=" << threads;
    EXPECT_EQ(rep.total(), static_cast<int>(scenarios.size()));
    EXPECT_FALSE(rep.all_passed());
    EXPECT_EQ(rep.pass_rate(), 0.0);
    EXPECT_EQ(rep.termination, util::exec::TerminationReason::kCancelled);
    EXPECT_TRUE(util::obs::json_valid(rep.to_json()));
  }
}

TEST_F(CancellationDeterminism, ExploreRobustDegradesIdenticallyAcrossThreadCounts) {
  // explore_robust's spine: per-iteration checkpoints, encoder gates, node
  // loops and one post-join campaign checkpoint. Campaign scoring and
  // candidate generation fan out to workers, but those poll worker_view —
  // so the N-th-checkpoint stop lands identically for every thread count.
  const Explorer ex(tmpl_, spec_);
  for (long n : {5L, 30L}) {
    const auto run = [&](int threads) {
      Explorer::RobustExploreOptions ro;
      ro.encoder.k_star = 6;
      ro.solver.time_limit_s = 30.0;
      ro.faults.seed = 3;
      ro.faults.max_simultaneous_failures = 1;
      ro.faults.fading_draws = 16;
      ro.faults.fading_sigma_db = 2.0;
      ro.time_budget_s = 120.0;
      ro.max_repair_iterations = 4;
      ro.threads = threads;
      ro.solver.exec = inject_at(n);
      const auto r = ex.explore_robust(ro);
      std::ostringstream os;
      os << r.iterations << "|" << r.robust << "|" << r.hardenings_applied << "|"
         << util::exec::to_string(r.termination) << "|";
      for (int v : r.raised_routes) os << v << ",";
      os << "|" << canon(r.best) << "|" << r.report.to_json();
      return os.str();
    };
    const std::string serial = run(1);
    EXPECT_EQ(run(4), serial) << "inject_at=" << n;
  }
}

}  // namespace
}  // namespace wnet::archex
