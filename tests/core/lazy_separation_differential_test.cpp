// Differential suite for EncoderOptions::lazy_separation: the relaxed
// skeleton plus the LazySeparation callbacks must be indistinguishable from
// the upfront encoding at the level of reported optima, while actually
// omitting rows — and the lazy pipeline must keep the repo's determinism
// contracts: byte-identical canonical reports across worker-thread counts
// and under injected cancellation, and delta-extended incremental sessions
// identical to fresh encodes.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "channel/propagation.h"
#include "core/encode/encoder.h"
#include "core/encode/separation.h"
#include "core/explorer.h"
#include "graph/connectivity.h"
#include "util/exec/exec.h"
#include "util/obs/json.h"

namespace wnet::archex {
namespace {

using util::exec::CancellationSource;
using util::exec::CheckpointInjector;
using util::exec::ExecControl;

/// Randomized corridor instance, same family as the encoder-differential
/// suite: sensor -> sink with a handful of scattered candidate relays.
struct Instance {
  channel::LogDistanceModel model{2.4e9, 2.2};
  ComponentLibrary lib = make_reference_library();
  NetworkTemplate tmpl{model, lib};
  Specification spec;

  explicit Instance(uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> x(6.0, 24.0);
    std::uniform_real_distribution<double> y(2.0, 8.0);
    tmpl.add_node({"s0", {0, 5}, Role::kSensor, NodeKind::kFixed, std::nullopt});
    tmpl.add_node({"sink", {30, 5}, Role::kSink, NodeKind::kFixed, std::nullopt});
    const int relays = 3 + static_cast<int>(rng() % 3);
    for (int i = 0; i < relays; ++i) {
      tmpl.add_node({"r" + std::to_string(i), {x(rng), y(rng)}, Role::kRelay,
                     NodeKind::kCandidate, std::nullopt});
    }
    spec.link_quality.min_snr_db = 32.0;
    spec.objective = {1.0, 0.0, 0.0};
    RouteRequirement r;
    r.source = 0;
    r.dest = 1;
    r.replicas = 1;
    spec.routes.push_back(r);
  }
};

/// Replica groups of the same route must be pairwise edge-disjoint — the
/// property the omitted disjointness rows enforce. Checked directly on the
/// decoded architecture so a gate regression cannot hide behind an
/// objective tie.
void expect_replica_disjointness(const NetworkArchitecture& arch, const std::string& label) {
  for (size_t a = 0; a < arch.routes.size(); ++a) {
    for (size_t b = a + 1; b < arch.routes.size(); ++b) {
      const auto& ra = arch.routes[a];
      const auto& rb = arch.routes[b];
      if (ra.route_index != rb.route_index || ra.replica == rb.replica) continue;
      EXPECT_EQ(graph::shared_edges(ra.path, rb.path), 0)
          << label << ": replicas " << ra.replica << " and " << rb.replica << " of route "
          << ra.route_index << " share an edge";
    }
  }
}

TEST(LazySeparationDifferential, MatchesUpfrontOnRandomizedTemplates) {
  int compared = 0;
  int optimal_pairs = 0;
  long rows_omitted_total = 0;
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    Instance in(seed);
    // Half the corpus demands two disjoint replicas, so the omitted
    // pairwise-disjointness family has teeth (and some instances go
    // infeasible, exercising lazy infeasibility detection).
    in.spec.routes[0].replicas = 1 + static_cast<int>(seed % 2);
    const Explorer ex(in.tmpl, in.spec);
    milp::SolveOptions so;
    so.time_limit_s = 60.0;

    EncoderOptions upfront;
    upfront.k_star = 4;
    const auto ru = ex.explore(upfront, so);

    EncoderOptions lazy = upfront;
    lazy.lazy_separation = true;
    const auto rl = ex.explore(lazy, so);

    const std::string label = "seed " + std::to_string(seed);
    ASSERT_EQ(rl.status, ru.status) << label;
    EXPECT_EQ(rl.encode_stats.num_vars, ru.encode_stats.num_vars) << label;
    // The lazy skeleton omits exactly the rows it claims to omit.
    EXPECT_EQ(ru.encode_stats.num_constrs - rl.encode_stats.num_constrs,
              rl.encode_stats.lazy_rows_omitted)
        << label;
    EXPECT_EQ(ru.encode_stats.lazy_rows_omitted, 0) << label;
    rows_omitted_total += rl.encode_stats.lazy_rows_omitted;

    if (ru.status == milp::SolveStatus::kOptimal) {
      const double tol = 1e-6 * std::max(1.0, std::abs(ru.objective));
      EXPECT_NEAR(rl.objective, ru.objective, tol)
          << label << ": lazy and upfront optima diverge";
      EXPECT_NEAR(rl.architecture.total_cost_usd, ru.architecture.total_cost_usd, tol) << label;
      expect_replica_disjointness(rl.architecture, label);
      // Separators were installed, so every incumbent passed the gate.
      EXPECT_GT(rl.solve_stats.cut_rounds, 0) << label;
      ++optimal_pairs;
    }
    ++compared;
  }
  EXPECT_EQ(compared, 24);
  EXPECT_GE(optimal_pairs, 10);      // the equality check actually ran
  EXPECT_GT(rows_omitted_total, 0);  // and rows were actually omitted
}

TEST(LazySeparationDifferential, IncrementalLazyDeltaMatchesFreshLazy) {
  // Delta-extending a lazy session across K* rungs must produce the same
  // skeleton (same sizes, same omitted-row count) and the same optimum as
  // a fresh lazy encode at identical options — the gating is symmetric
  // between emit_approx_paths and extend_to_k.
  for (const uint64_t seed : {3u, 7u, 11u}) {
    Instance in(seed);
    in.spec.routes[0].replicas = 1 + static_cast<int>(seed % 2);
    EncoderOptions base;
    base.lazy_separation = true;
    IncrementalEncoder session(in.tmpl, in.spec, base);
    int reused_total = 0;
    for (const int k : {1, 2, 3, 5}) {
      auto& ep = session.encode_k(k);
      EncoderOptions fopts = base;
      fopts.k_star = k;
      const auto fresh = Encoder(in.tmpl, in.spec, fopts).encode();
      const std::string label = "seed " + std::to_string(seed) + " k=" + std::to_string(k);
      EXPECT_EQ(ep.stats.num_vars, fresh.stats.num_vars) << label;
      EXPECT_EQ(ep.stats.num_constrs, fresh.stats.num_constrs) << label;
      EXPECT_EQ(ep.stats.nonzeros, fresh.stats.nonzeros) << label;
      EXPECT_EQ(ep.stats.lazy_rows_omitted, fresh.stats.lazy_rows_omitted) << label;

      milp::SolveOptions si;
      si.time_limit_s = 60.0;
      milp::SolveOptions sf = si;
      LazySeparation(in.tmpl, ep).install(si);
      LazySeparation(in.tmpl, fresh).install(sf);
      const auto ri = milp::solve(ep.model, si);
      const auto rf = milp::solve(fresh.model, sf);
      EXPECT_EQ(ri.status, rf.status) << label;
      if (ri.status == milp::SolveStatus::kOptimal &&
          rf.status == milp::SolveStatus::kOptimal) {
        EXPECT_NEAR(ri.objective, rf.objective, 1e-9 * std::max(1.0, std::abs(rf.objective)))
            << label;
      }
      reused_total += ep.stats.reused_candidates;
    }
    EXPECT_GT(reused_total, 0) << "seed " << seed << ": ladder rebuilt every rung";
  }
}

/// Multi-route fixture shared with the cancellation-determinism suite:
/// three sensors crossing a relay field, so the lazy pipeline has real
/// parallel and separation work to do (or cut short).
class LazySeparationDeterminism : public ::testing::Test {
 protected:
  LazySeparationDeterminism()
      : model_(2.4e9, 2.4), lib_(make_reference_library()), tmpl_(model_, lib_) {
    tmpl_.add_node({"sink", {50, 5}, Role::kSink, NodeKind::kFixed, std::nullopt});
    for (int i = 0; i < 3; ++i) {
      tmpl_.add_node({"s" + std::to_string(i), {0.0, 2.0 + 3.0 * i}, Role::kSensor,
                      NodeKind::kFixed, std::nullopt});
    }
    for (int i = 0; i < 8; ++i) {
      tmpl_.add_node({"r" + std::to_string(i), {6.0 + 5.5 * i, 2.0 + (i % 3) * 3.0},
                      Role::kRelay, NodeKind::kCandidate, std::nullopt});
    }
    spec_.link_quality.min_snr_db = 35.0;
    spec_.objective = {1.0, 0.0, 0.0};
    for (int i = 0; i < 3; ++i) {
      RouteRequirement r;
      r.source = *tmpl_.find_node("s" + std::to_string(i));
      r.dest = 0;
      spec_.routes.push_back(r);
    }
  }

  static ExecControl inject_at(long n) {
    CancellationSource src;
    ExecControl ctl;
    ctl.token = src.token();
    ctl.injector = std::make_shared<CheckpointInjector>(n, src);
    return ctl;
  }

  static void append_double(std::ostringstream& os, double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf << "|";
  }

  /// Canonical wall-clock-free rendering, extended with the separation
  /// counters: they are part of the determinism contract too.
  static std::string canon(const ExplorationResult& r) {
    std::ostringstream os;
    os << milp::to_string(r.status) << "|" << util::exec::to_string(r.termination) << "|";
    append_double(os, r.has_solution() ? r.objective : 0.0);
    append_double(os, r.bound);
    append_double(os, r.gap);
    os << r.encode_stats.num_vars << "|" << r.encode_stats.num_constrs << "|"
       << r.encode_stats.candidate_paths << "|" << r.encode_stats.lazy_rows_omitted << "|"
       << util::exec::to_string(r.encode_stats.termination) << "|" << r.solve_stats.nodes << "|"
       << r.solve_stats.lp_iterations << "|" << r.solve_stats.cut_rounds << "|"
       << r.solve_stats.cuts_pooled << "|" << r.solve_stats.cuts_lp_rows << "|"
       << r.solve_stats.lazy_rejections << "|";
    for (const auto& n : r.architecture.nodes) os << n.node << ":" << n.component << ",";
    os << "|";
    for (const auto& rt : r.architecture.routes) {
      os << rt.route_index << "." << rt.replica << "=";
      for (int v : rt.path.nodes) os << v << ",";
      os << ";";
    }
    return os.str();
  }

  channel::LogDistanceModel model_;
  ComponentLibrary lib_;
  NetworkTemplate tmpl_;
  Specification spec_;
};

TEST_F(LazySeparationDeterminism, ExploreIsByteIdenticalAcrossThreadCounts) {
  milp::SolveOptions so;
  so.time_limit_s = 60.0;
  EncoderOptions eo;
  eo.k_star = 6;
  eo.lazy_separation = true;
  const Explorer ex(tmpl_, spec_);
  const std::string base = canon(ex.explore(eo, so));
  EXPECT_NE(base.find("optimal"), std::string::npos) << base;
  for (int threads : {2, 4, 8}) {
    EncoderOptions et = eo;
    et.threads = threads;
    EXPECT_EQ(canon(ex.explore(et, so)), base) << "threads=" << threads;
  }
}

TEST_F(LazySeparationDeterminism, LadderAgreesBetweenSerialAndParallelDrivers) {
  // The serial driver delta-extends one incremental session; the parallel
  // driver speculatively evaluates every rung through fresh encodes. With
  // lazy separation on, both must still choose the same K* and report the
  // same winner.
  const Explorer ex(tmpl_, spec_);
  const auto run = [&](int threads) {
    Explorer::KStarSearchOptions ko;
    ko.ladder = {1, 3, 6};
    ko.threads = threads;
    milp::SolveOptions so;
    so.time_limit_s = 60.0;
    EncoderOptions eo;
    eo.lazy_separation = true;
    const auto r = ex.search_k_star(ko, eo, so);
    std::ostringstream os;
    os << r.chosen_k << "|" << util::exec::to_string(r.termination) << "|" << canon(r.best);
    return os.str();
  };
  const std::string serial = run(1);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(4), serial);
}

TEST_F(LazySeparationDeterminism, DegradesIdenticallyUnderInjectedCancellation) {
  // Cancellation injected at the N-th spine checkpoint must cut the lazy
  // pipeline at the same logical point for every worker-thread count. The
  // separation loop itself is poll-only on the serial spine, so checkpoint
  // counts — and therefore the injection landing site — are unchanged.
  for (long n : {1L, 4L, 10L, 30L}) {
    milp::SolveOptions so;
    so.time_limit_s = 60.0;
    EncoderOptions eo;
    eo.k_star = 6;
    eo.lazy_separation = true;
    so.exec = eo.exec = inject_at(n);
    const Explorer ex(tmpl_, spec_);
    const std::string base = canon(ex.explore(eo, so));
    for (int threads : {2, 4, 8}) {
      EncoderOptions et = eo;
      et.threads = threads;
      milp::SolveOptions st = so;
      st.exec = et.exec = inject_at(n);
      EXPECT_EQ(canon(ex.explore(et, st)), base) << "inject_at=" << n << " threads=" << threads;
    }
  }
}

TEST_F(LazySeparationDeterminism, LazyReportsAreStrictJsonWithSeparationFields) {
  const Explorer ex(tmpl_, spec_);
  milp::SolveOptions so;
  so.time_limit_s = 60.0;
  EncoderOptions eo;
  eo.k_star = 6;
  eo.lazy_separation = true;
  const auto r = ex.explore(eo, so);
  ASSERT_TRUE(r.has_solution());
  const std::string json = r.solver_json();
  EXPECT_TRUE(util::obs::json_valid(json))
      << util::obs::json_error(json).value_or("") << "\n" << json;
  EXPECT_NE(json.find("\"separation\""), std::string::npos);
  EXPECT_NE(json.find("\"lazy_rows_omitted\""), std::string::npos);

  // Partial reports at injection points must stay strict JSON too.
  for (long n : {1L, 5L, 20L}) {
    milp::SolveOptions si = so;
    EncoderOptions ei = eo;
    si.exec = ei.exec = inject_at(n);
    const auto pr = ex.explore(ei, si);
    const std::string pj = pr.solver_json();
    EXPECT_TRUE(util::obs::json_valid(pj))
        << "inject_at=" << n << ": " << util::obs::json_error(pj).value_or("") << "\n" << pj;
  }
}

TEST_F(LazySeparationDeterminism, RobustLoopSupportsLazySeparation) {
  // explore_robust re-encodes per repair iteration; with lazy separation on
  // it must still converge to a robust architecture whose replicas are
  // disjoint, matching the upfront run's pass rate and cost.
  const auto run = [&](bool lazy) {
    Explorer::RobustExploreOptions ro;
    ro.encoder.k_star = 6;
    ro.encoder.lazy_separation = lazy;
    ro.solver.time_limit_s = 30.0;
    ro.faults.seed = 3;
    ro.faults.max_simultaneous_failures = 1;
    ro.faults.fading_draws = 16;
    ro.faults.fading_sigma_db = 2.0;
    ro.time_budget_s = 120.0;
    ro.max_repair_iterations = 4;
    return Explorer(tmpl_, spec_).explore_robust(ro);
  };
  const auto upfront = run(false);
  const auto lazy = run(true);
  EXPECT_EQ(lazy.best.has_solution(), upfront.best.has_solution());
  EXPECT_EQ(lazy.robust, upfront.robust);
  if (lazy.best.has_solution() && upfront.best.has_solution()) {
    EXPECT_NEAR(lazy.report.pass_rate(), upfront.report.pass_rate(), 1e-12);
    EXPECT_NEAR(lazy.best.architecture.total_cost_usd,
                upfront.best.architecture.total_cost_usd,
                1e-6 * std::max(1.0, std::abs(upfront.best.architecture.total_cost_usd)));
    expect_replica_disjointness(lazy.best.architecture, "robust lazy");
  }
}

}  // namespace
}  // namespace wnet::archex
