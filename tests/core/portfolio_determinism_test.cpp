// Portfolio / tabu / sensitivity correctness and determinism.
//
//  - TabuOracle: the tabu explorer's incumbents are genuine full-model
//    solutions, never better than the true optimum, and on a small template
//    it reaches the brute-force-over-assignments optimum (which itself
//    matches Explorer::explore).
//  - PortfolioDeterminism: canonical portfolio reports are byte-identical
//    across 1/2/4/8 worker threads, with and without injected cancellation
//    (the CheckpointInjector fires at spine checkpoints only, so every
//    thread count stops at the same logical point).
//  - Sensitivity: strict JSON, deterministic across thread counts.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "channel/propagation.h"
#include "core/explorer.h"
#include "core/meta/portfolio.h"
#include "core/meta/sensitivity.h"
#include "core/meta/tabu.h"
#include "milp/tol.h"
#include "util/exec/exec.h"
#include "util/obs/json.h"

namespace wnet::archex {
namespace {

using util::exec::CancellationSource;
using util::exec::CheckpointInjector;
using util::exec::ExecControl;

/// Small two-route relay field: big enough that the candidate groups have
/// real alternatives (k_star > 1), small enough for brute force.
class MetaFixture : public ::testing::Test {
 protected:
  MetaFixture() : model_(2.4e9, 2.4), lib_(make_reference_library()), tmpl_(model_, lib_) {
    tmpl_.add_node({"sink", {40, 5}, Role::kSink, NodeKind::kFixed, std::nullopt});
    for (int i = 0; i < 2; ++i) {
      tmpl_.add_node({"s" + std::to_string(i), {0.0, 2.0 + 5.0 * i}, Role::kSensor,
                      NodeKind::kFixed, std::nullopt});
    }
    for (int i = 0; i < 6; ++i) {
      tmpl_.add_node({"r" + std::to_string(i), {6.0 + 5.5 * i, 2.0 + (i % 3) * 3.0},
                      Role::kRelay, NodeKind::kCandidate, std::nullopt});
    }
    spec_.link_quality.min_snr_db = 35.0;
    spec_.objective = {1.0, 0.0, 0.0};
    for (int i = 0; i < 2; ++i) {
      RouteRequirement r;
      r.source = *tmpl_.find_node("s" + std::to_string(i));
      r.dest = 0;
      spec_.routes.push_back(r);
    }
  }

  [[nodiscard]] EncoderOptions encoder_opts() const {
    EncoderOptions e;
    e.k_star = 3;
    return e;
  }

  static ExecControl inject_at(long n) {
    CancellationSource src;
    ExecControl ctl;
    ctl.token = src.token();
    ctl.injector = std::make_shared<CheckpointInjector>(n, src);
    return ctl;
  }

  channel::LogDistanceModel model_;
  ComponentLibrary lib_;
  NetworkTemplate tmpl_;
  Specification spec_;
};

using TabuOracle = MetaFixture;
using PortfolioDeterminism = MetaFixture;
using SensitivitySweep = MetaFixture;

/// Brute force over every full selector assignment (one candidate per
/// (route, replica) group), completing each with the restricted sizing
/// solve — the exact search space the tabu walk moves through.
double brute_force_best(const EncodedProblem& ep) {
  std::map<std::pair<int, int>, std::vector<const CandidatePath*>> groups;
  for (const CandidatePath& c : ep.candidates) {
    groups[{c.route_index, c.replica}].push_back(&c);
  }
  std::vector<std::pair<int, int>> keys;
  for (const auto& [k, members] : groups) keys.push_back(k);

  double best = milp::kInf;
  std::vector<size_t> pick(keys.size(), 0);
  while (true) {
    std::map<std::pair<int, int>, const CandidatePath*> picked;
    for (size_t g = 0; g < keys.size(); ++g) picked[keys[g]] = groups[keys[g]][pick[g]];
    const std::vector<double> x = solve_with_fixed_selectors(ep, picked, {});
    if (!x.empty()) {
      const double obj = ep.model.objective().evaluate(x);
      if (obj < best) best = obj;
    }
    // Odometer increment.
    size_t g = 0;
    for (; g < keys.size(); ++g) {
      if (++pick[g] < groups[keys[g]].size()) break;
      pick[g] = 0;
    }
    if (g == keys.size()) break;
  }
  return best;
}

TEST_F(TabuOracle, MatchesBruteForceAndExplorerOnSmallTemplate) {
  const Explorer ex(tmpl_, spec_);
  const ExplorationResult ref = ex.explore(encoder_opts(), {});
  ASSERT_TRUE(ref.has_solution());

  const EncodedProblem ep = ex.encode(encoder_opts());
  const double brute = brute_force_best(ep);
  ASSERT_LT(brute, milp::kInf);
  // The assignment space contains the exact optimum (components re-sized
  // per assignment), so brute force must reproduce the explorer.
  EXPECT_NEAR(brute, ref.objective, 1e-6 * std::max(1.0, std::abs(ref.objective)));

  meta::TabuOptions topts;
  topts.seed = 7;
  topts.neighborhood = 8;
  meta::TabuSearch tabu(ep, topts);
  ASSERT_TRUE(tabu.runnable());
  tabu.run(30);
  ASSERT_TRUE(tabu.has_incumbent());
  EXPECT_NEAR(tabu.best_objective(), brute, 1e-6 * std::max(1.0, std::abs(brute)));
}

TEST_F(TabuOracle, IncumbentsAreModelFeasibleAndNeverBeatTheOptimum) {
  const Explorer ex(tmpl_, spec_);
  const ExplorationResult ref = ex.explore(encoder_opts(), {});
  ASSERT_TRUE(ref.has_solution());
  const EncodedProblem ep = ex.encode(encoder_opts());

  for (const uint64_t seed : {1ull, 2ull, 3ull}) {
    meta::TabuOptions topts;
    topts.seed = seed;
    topts.neighborhood = 6;
    meta::TabuSearch tabu(ep, topts);
    tabu.run(8);
    ASSERT_TRUE(tabu.has_incumbent()) << "seed " << seed;
    EXPECT_TRUE(ep.model.is_feasible(tabu.best_x())) << "seed " << seed;
    // Soundness: a heuristic incumbent is a real solution, so it can tie
    // but never beat the proven optimum.
    EXPECT_GE(tabu.best_objective(), ref.objective - 1e-6) << "seed " << seed;
  }
}

TEST_F(TabuOracle, AspirationBoundCertifiesTheIncumbent) {
  const Explorer ex(tmpl_, spec_);
  const EncodedProblem ep = ex.encode(encoder_opts());
  meta::TabuOptions topts;
  meta::TabuSearch tabu(ep, topts);
  tabu.run(20);
  ASSERT_TRUE(tabu.has_incumbent());
  EXPECT_FALSE(tabu.certified());  // no bound installed yet
  tabu.set_aspiration_bound(tabu.best_objective());
  EXPECT_TRUE(tabu.certified());
  // Monotone: a weaker bound later must not loosen the aspiration level.
  tabu.set_aspiration_bound(tabu.best_objective() - 100.0);
  EXPECT_TRUE(tabu.certified());
}

TEST_F(TabuOracle, ResumedScheduleMatchesOneShot) {
  // run(2) five times must visit the same states as run(10) once: sampling
  // is keyed by (seed, iteration index), not by call boundaries.
  const Explorer ex(tmpl_, spec_);
  const EncodedProblem ep = ex.encode(encoder_opts());

  meta::TabuOptions topts;
  topts.seed = 11;
  meta::TabuSearch oneshot(ep, topts);
  oneshot.run(10);
  meta::TabuSearch chunked(ep, topts);
  for (int i = 0; i < 5; ++i) chunked.run(2);

  ASSERT_EQ(oneshot.has_incumbent(), chunked.has_incumbent());
  EXPECT_DOUBLE_EQ(oneshot.best_objective(), chunked.best_objective());
  EXPECT_EQ(oneshot.stats().iterations, chunked.stats().iterations);
  EXPECT_EQ(oneshot.stats().evaluations, chunked.stats().evaluations);
}

meta::PortfolioOptions small_portfolio(const EncoderOptions& eopts, int threads,
                                       ExecControl exec = {}) {
  meta::PortfolioOptions popts;
  popts.encoder = eopts;
  popts.threads = threads;
  popts.max_rungs = 4;
  popts.tabu_iterations_per_rung = 3;
  popts.tabu.neighborhood = 6;
  popts.solver.exec = std::move(exec);
  return popts;
}

TEST_F(PortfolioDeterminism, ByteIdenticalReportsAcrossThreadCounts) {
  const meta::PortfolioRunner runner(tmpl_, spec_);
  const meta::PortfolioResult r1 = runner.run(small_portfolio(encoder_opts(), 1));
  ASSERT_TRUE(r1.has_solution());
  EXPECT_TRUE(util::obs::json_valid(r1.to_json())) << r1.to_json();
  const std::string sig = r1.canonical_signature();
  EXPECT_TRUE(util::obs::json_valid(sig)) << sig;

  for (const int threads : {2, 4, 8}) {
    const meta::PortfolioResult r = runner.run(small_portfolio(encoder_opts(), threads));
    EXPECT_EQ(r.canonical_signature(), sig) << "threads " << threads;
  }
}

TEST_F(PortfolioDeterminism, MatchesExplorerOptimumWhenCertified) {
  const Explorer ex(tmpl_, spec_);
  const ExplorationResult ref = ex.explore(encoder_opts(), {});
  ASSERT_TRUE(ref.has_solution());

  const meta::PortfolioRunner runner(tmpl_, spec_);
  meta::PortfolioOptions popts = small_portfolio(encoder_opts(), 2);
  popts.max_rungs = 8;
  const meta::PortfolioResult r = runner.run(popts);
  ASSERT_TRUE(r.has_solution());
  ASSERT_EQ(r.status, milp::SolveStatus::kOptimal);
  EXPECT_EQ(r.certified_by, "milp");
  EXPECT_NEAR(r.objective, ref.objective, 1e-6 * std::max(1.0, std::abs(ref.objective)));
  EXPECT_LE(r.gap, 1e-6);
  // The certificate's bound must actually support the incumbent.
  EXPECT_LE(r.bound, r.objective + milp::tol::kGapSlack);
  const auto verify = verify_architecture(r.architecture, tmpl_, spec_);
  EXPECT_TRUE(verify.ok) << (verify.violations.empty() ? "" : verify.violations[0]);
}

TEST_F(PortfolioDeterminism, InjectedCancellationIsThreadCountInvariant) {
  // The injector fires at the N-th spine checkpoint (encoder phases +
  // portfolio rung boundaries); members poll worker views. Every thread
  // count must stop at the same logical point with identical reports.
  const meta::PortfolioRunner runner(tmpl_, spec_);
  for (const long fire_at : {1L, 3L, 5L, 8L}) {
    const meta::PortfolioResult base =
        runner.run(small_portfolio(encoder_opts(), 1, inject_at(fire_at)));
    const std::string sig = base.canonical_signature();
    EXPECT_TRUE(util::obs::json_valid(base.to_json()));
    for (const int threads : {2, 8}) {
      const meta::PortfolioResult r =
          runner.run(small_portfolio(encoder_opts(), threads, inject_at(fire_at)));
      EXPECT_EQ(r.canonical_signature(), sig)
          << "fire_at " << fire_at << " threads " << threads;
    }
  }
}

TEST_F(SensitivitySweep, StrictJsonGradientsAndThreadInvariance) {
  meta::SensitivityOptions sopts;
  sopts.encoder = encoder_opts();
  sopts.snr_deltas_db = {-1.0, 1.0};
  sopts.threads = 1;
  const meta::SensitivityReport rep = meta::explore_sensitivity(tmpl_, spec_, sopts);
  ASSERT_TRUE(rep.base.has_solution());
  ASSERT_EQ(rep.points.size(), 2u);
  EXPECT_TRUE(util::obs::json_valid(rep.to_json())) << rep.to_json();
  ASSERT_EQ(rep.gradients.size(), 1u);
  EXPECT_EQ(rep.gradients[0].parameter, "min_snr_db");

  // Loosening the SNR floor can only help (superset feasible region):
  // objective at -1 dB <= base <= objective at +1 dB when both feasible.
  const meta::SensitivityPoint& loose = rep.points[0];
  const meta::SensitivityPoint& tight = rep.points[1];
  ASSERT_EQ(loose.delta, -1.0);
  if (loose.feasible) EXPECT_LE(loose.objective, rep.base.objective + 1e-6);
  if (tight.feasible) EXPECT_GE(tight.objective, rep.base.objective - 1e-6);

  meta::SensitivityOptions threaded = sopts;
  threaded.threads = 4;
  const meta::SensitivityReport rep4 = meta::explore_sensitivity(tmpl_, spec_, threaded);
  ASSERT_EQ(rep4.points.size(), rep.points.size());
  for (size_t i = 0; i < rep.points.size(); ++i) {
    EXPECT_EQ(rep4.points[i].parameter, rep.points[i].parameter);
    EXPECT_EQ(rep4.points[i].status, rep.points[i].status);
    EXPECT_DOUBLE_EQ(rep4.points[i].objective, rep.points[i].objective);
  }
}

}  // namespace
}  // namespace wnet::archex
