#include "core/spec/parser.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "channel/propagation.h"

namespace wnet::archex {
namespace {

class SpecParserTest : public ::testing::Test {
 protected:
  SpecParserTest() : model_(2.4e9, 2.0), lib_(make_reference_library()), tmpl_(model_, lib_) {
    tmpl_.add_node({"s1", {0, 0}, Role::kSensor, NodeKind::kFixed, std::nullopt});
    tmpl_.add_node({"s2", {5, 0}, Role::kSensor, NodeKind::kFixed, std::nullopt});
    tmpl_.add_node({"sink", {20, 0}, Role::kSink, NodeKind::kFixed, std::nullopt});
  }

  channel::LogDistanceModel model_;
  ComponentLibrary lib_;
  NetworkTemplate tmpl_;
};

TEST_F(SpecParserTest, ParsesThePaperStylePatterns) {
  const auto spec = spec::parse(R"(
# data collection requirements
p1 = has_path(s1, sink)
p2 = has_path(s1, sink)
q1 = has_path(s2, sink)
disjoint_links(p1, p2)
max_hops(q1, 4)
min_signal_to_noise(20)
min_network_lifetime(5, 3000)
objective cost=1 energy=0.5
noise_floor(-100)
report_period(30)
)",
                               tmpl_);
  ASSERT_EQ(spec.routes.size(), 2u);
  // Ungrouped route first, then the disjoint group.
  const auto& single = spec.routes[0];
  EXPECT_EQ(single.replicas, 1);
  EXPECT_EQ(single.max_hops, 4);
  EXPECT_EQ(single.source, *tmpl_.find_node("s2"));
  const auto& dual = spec.routes[1];
  EXPECT_EQ(dual.replicas, 2);
  EXPECT_EQ(dual.source, *tmpl_.find_node("s1"));
  EXPECT_EQ(dual.dest, *tmpl_.find_node("sink"));

  EXPECT_DOUBLE_EQ(*spec.link_quality.min_snr_db, 20.0);
  ASSERT_TRUE(spec.lifetime.has_value());
  EXPECT_DOUBLE_EQ(spec.lifetime->min_years, 5.0);
  EXPECT_DOUBLE_EQ(spec.lifetime->battery_mah, 3000.0);
  EXPECT_DOUBLE_EQ(spec.objective.weight_cost, 1.0);
  EXPECT_DOUBLE_EQ(spec.objective.weight_energy, 0.5);
  EXPECT_DOUBLE_EQ(spec.objective.weight_dsod, 0.0);
  EXPECT_DOUBLE_EQ(spec.radio.noise_floor_dbm, -100.0);
  EXPECT_DOUBLE_EQ(spec.radio.tdma.report_period_s, 30.0);
  // SNR 20 over -100 noise floor -> RSS floor -80.
  EXPECT_DOUBLE_EQ(*spec.min_rss_dbm(), -80.0);
}

TEST_F(SpecParserTest, ParsesLocalizationPatterns) {
  const auto spec = spec::parse(R"(
eval_point(1.5, 2.5)
eval_point(3, 4)
min_reachable_devices(3, -80)
objective cost=1 dsod=0.2
)",
                                tmpl_);
  ASSERT_TRUE(spec.localization.has_value());
  EXPECT_EQ(spec.localization->eval_points.size(), 2u);
  EXPECT_DOUBLE_EQ(spec.localization->eval_points[1].y, 4.0);
  EXPECT_EQ(spec.localization->min_anchors, 3);
  EXPECT_DOUBLE_EQ(spec.localization->min_rss_dbm, -80.0);
  EXPECT_DOUBLE_EQ(spec.objective.weight_dsod, 0.2);
}

TEST_F(SpecParserTest, ErrorsCarryLineNumbers) {
  try {
    spec::parse("p1 = has_path(s1, sink)\nbogus_pattern(1)\n", tmpl_);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST_F(SpecParserTest, RejectsMalformedInput) {
  EXPECT_THROW(spec::parse("p1 = has_path(s1)\n", tmpl_), std::runtime_error);
  EXPECT_THROW(spec::parse("p1 = has_path(nope, sink)\n", tmpl_), std::runtime_error);
  EXPECT_THROW(spec::parse("disjoint_links(p1, p2)\n", tmpl_), std::runtime_error);
  EXPECT_THROW(spec::parse("min_signal_to_noise(a)\n", tmpl_), std::runtime_error);
  EXPECT_THROW(spec::parse("objective cost\n", tmpl_), std::runtime_error);
  EXPECT_THROW(spec::parse("objective banana=1\n", tmpl_), std::runtime_error);
  EXPECT_THROW(spec::parse("p1 = has_path(s1, sink)\np1 = has_path(s1, sink)\n", tmpl_),
               std::runtime_error);
  EXPECT_THROW(spec::parse("max_hops(p9, 3)\n", tmpl_), std::runtime_error);
}

TEST_F(SpecParserTest, DisjointGroupsMustShareEndpoints) {
  EXPECT_THROW(spec::parse(R"(
p1 = has_path(s1, sink)
p2 = has_path(s2, sink)
disjoint_links(p1, p2)
)",
                           tmpl_),
               std::runtime_error);
}

TEST_F(SpecParserTest, RouteCannotJoinTwoGroups) {
  EXPECT_THROW(spec::parse(R"(
p1 = has_path(s1, sink)
p2 = has_path(s1, sink)
p3 = has_path(s1, sink)
disjoint_links(p1, p2)
disjoint_links(p2, p3)
)",
                           tmpl_),
               std::runtime_error);
}

TEST_F(SpecParserTest, MaxHopsOnGroupTakesTightest) {
  const auto spec = spec::parse(R"(
p1 = has_path(s1, sink)
p2 = has_path(s1, sink)
max_hops(p1, 5)
max_hops(p2, 3)
disjoint_links(p1, p2)
)",
                                tmpl_);
  ASSERT_EQ(spec.routes.size(), 1u);
  EXPECT_EQ(*spec.routes[0].max_hops, 3);
}

TEST_F(SpecParserTest, EmptySpecParses) {
  const auto spec = spec::parse("\n# nothing\n", tmpl_);
  EXPECT_TRUE(spec.routes.empty());
  EXPECT_FALSE(spec.lifetime.has_value());
}

// Count arguments must be positive integers — the old parser truncated
// `max_hops(p, 3.9)` to 3 and accepted zero/negative bounds, which the
// encoder then turned into silently-wrong (or vacuous) constraints.
TEST_F(SpecParserTest, RejectsFractionalOrNonPositiveCounts) {
  const std::string route = "p1 = has_path(s1, sink)\n";
  for (const char* bad : {"3.9", "0", "-2", "0.5", "1e-3"}) {
    EXPECT_THROW(spec::parse(route + "max_hops(p1, " + bad + ")\n", tmpl_), std::runtime_error)
        << "max_hops bound " << bad;
  }
  for (const char* bad : {"2.5", "0", "-1"}) {
    EXPECT_THROW(spec::parse(std::string("eval_point(1, 1)\nmin_reachable_devices(") + bad +
                                 ", -80)\n",
                             tmpl_),
                 std::runtime_error)
        << "min_reachable_devices count " << bad;
  }
  // The error is line-numbered and names the rule.
  try {
    spec::parse(route + "max_hops(p1, 3.9)\n", tmpl_);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("positive integer"), std::string::npos) << msg;
  }
  // Integral-valued spellings are fine; non-count numbers stay unrestricted.
  const auto spec =
      spec::parse(route + "max_hops(p1, 3.0)\nmin_signal_to_noise(20.5)\n", tmpl_);
  EXPECT_EQ(*spec.routes[0].max_hops, 3);
}

// A call must end at its closing paren: `max_hops(p1, 3) oops` used to
// parse clean with the garbage silently ignored. Comments are stripped
// first, so trailing comments still work.
TEST_F(SpecParserTest, RejectsTrailingGarbageAfterCall) {
  const std::string route = "p1 = has_path(s1, sink)\n";
  EXPECT_THROW(spec::parse(route + "max_hops(p1, 3) oops\n", tmpl_), std::runtime_error);
  EXPECT_THROW(spec::parse(route + "max_hops(p1, 3))\n", tmpl_), std::runtime_error);
  EXPECT_THROW(spec::parse("min_rss(-80) min_rss(-70)\n", tmpl_), std::runtime_error);
  const auto spec = spec::parse(route + "max_hops(p1, 3)   # trailing comment\n", tmpl_);
  EXPECT_EQ(*spec.routes[0].max_hops, 3);
}

// The `objective` keyword must end on a word boundary: a raw prefix match
// used to treat `objectivexyz cost=1` as an objective line.
TEST_F(SpecParserTest, ObjectiveKeywordRequiresWordBoundary) {
  EXPECT_THROW(spec::parse("objectivexyz cost=1\n", tmpl_), std::runtime_error);
  EXPECT_THROW(spec::parse("objective\n", tmpl_), std::runtime_error);  // no terms
  const auto spaced = spec::parse("objective cost=2\n", tmpl_);
  EXPECT_DOUBLE_EQ(spaced.objective.weight_cost, 2.0);
  const auto tabbed = spec::parse("objective\tcost=3\n", tmpl_);
  EXPECT_DOUBLE_EQ(tabbed.objective.weight_cost, 3.0);
}

namespace roundtrip {

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void expect_same_spec(const Specification& a, const Specification& b) {
  ASSERT_EQ(a.routes.size(), b.routes.size());
  for (size_t i = 0; i < a.routes.size(); ++i) {
    EXPECT_EQ(a.routes[i].source, b.routes[i].source);
    EXPECT_EQ(a.routes[i].dest, b.routes[i].dest);
    EXPECT_EQ(a.routes[i].replicas, b.routes[i].replicas);
    EXPECT_EQ(a.routes[i].max_hops, b.routes[i].max_hops);
  }
  EXPECT_EQ(a.link_quality.min_snr_db, b.link_quality.min_snr_db);
  EXPECT_EQ(a.link_quality.min_rss_dbm, b.link_quality.min_rss_dbm);
  EXPECT_EQ(a.lifetime.has_value(), b.lifetime.has_value());
  EXPECT_EQ(a.objective.weight_cost, b.objective.weight_cost);
  EXPECT_EQ(a.objective.weight_energy, b.objective.weight_energy);
  EXPECT_EQ(a.objective.weight_dsod, b.objective.weight_dsod);
  EXPECT_EQ(a.radio.noise_floor_dbm, b.radio.noise_floor_dbm);
  EXPECT_EQ(a.radio.tdma.report_period_s, b.radio.tdma.report_period_s);
}

}  // namespace roundtrip

// Every shipped example spec must parse against the example binary's
// template (replicated here: see examples/spec_driven.cpp), and parsing
// must be a pure function of the text — two parses agree field by field.
TEST(SpecExamples, ShippedExampleSpecsRoundTrip) {
  const std::filesystem::path data_dir =
      std::filesystem::path(WNET_SOURCE_DIR) / "examples" / "data";
  ASSERT_TRUE(std::filesystem::exists(data_dir)) << data_dir;

  const channel::LogDistanceModel model(2.4e9, 2.8);
  const ComponentLibrary lib = make_reference_library();
  NetworkTemplate tmpl(model, lib);
  tmpl.add_node({"sink", {20, 12}, Role::kSink, NodeKind::kFixed, std::nullopt});
  const geom::Vec2 sensor_at[] = {{3, 3}, {37, 3}, {3, 21}, {37, 21}};
  for (int i = 0; i < 4; ++i) {
    tmpl.add_node({"s" + std::to_string(i), sensor_at[i], Role::kSensor, NodeKind::kFixed,
                   std::nullopt});
  }
  int idx = 0;
  for (double x = 5; x < 40.0; x += 10) {
    for (double y : {5.0, 12.0, 19.0}) {
      tmpl.add_node({"r" + std::to_string(idx++), {x, y}, Role::kRelay, NodeKind::kCandidate,
                     std::nullopt});
    }
  }

  int specs_seen = 0;
  for (const auto& entry : std::filesystem::directory_iterator(data_dir)) {
    if (entry.path().extension() != ".spec") continue;
    ++specs_seen;
    const std::string text = roundtrip::slurp(entry.path());
    const Specification first = spec::parse(text, tmpl);
    const Specification second = spec::parse(text, tmpl);
    roundtrip::expect_same_spec(first, second);
    EXPECT_FALSE(first.routes.empty()) << entry.path();
  }
  EXPECT_GE(specs_seen, 1) << "no .spec files under " << data_dir;
}

}  // namespace
}  // namespace wnet::archex
