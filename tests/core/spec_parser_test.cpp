#include "core/spec/parser.h"

#include <gtest/gtest.h>

#include "channel/propagation.h"

namespace wnet::archex {
namespace {

class SpecParserTest : public ::testing::Test {
 protected:
  SpecParserTest() : model_(2.4e9, 2.0), lib_(make_reference_library()), tmpl_(model_, lib_) {
    tmpl_.add_node({"s1", {0, 0}, Role::kSensor, NodeKind::kFixed, std::nullopt});
    tmpl_.add_node({"s2", {5, 0}, Role::kSensor, NodeKind::kFixed, std::nullopt});
    tmpl_.add_node({"sink", {20, 0}, Role::kSink, NodeKind::kFixed, std::nullopt});
  }

  channel::LogDistanceModel model_;
  ComponentLibrary lib_;
  NetworkTemplate tmpl_;
};

TEST_F(SpecParserTest, ParsesThePaperStylePatterns) {
  const auto spec = spec::parse(R"(
# data collection requirements
p1 = has_path(s1, sink)
p2 = has_path(s1, sink)
q1 = has_path(s2, sink)
disjoint_links(p1, p2)
max_hops(q1, 4)
min_signal_to_noise(20)
min_network_lifetime(5, 3000)
objective cost=1 energy=0.5
noise_floor(-100)
report_period(30)
)",
                               tmpl_);
  ASSERT_EQ(spec.routes.size(), 2u);
  // Ungrouped route first, then the disjoint group.
  const auto& single = spec.routes[0];
  EXPECT_EQ(single.replicas, 1);
  EXPECT_EQ(single.max_hops, 4);
  EXPECT_EQ(single.source, *tmpl_.find_node("s2"));
  const auto& dual = spec.routes[1];
  EXPECT_EQ(dual.replicas, 2);
  EXPECT_EQ(dual.source, *tmpl_.find_node("s1"));
  EXPECT_EQ(dual.dest, *tmpl_.find_node("sink"));

  EXPECT_DOUBLE_EQ(*spec.link_quality.min_snr_db, 20.0);
  ASSERT_TRUE(spec.lifetime.has_value());
  EXPECT_DOUBLE_EQ(spec.lifetime->min_years, 5.0);
  EXPECT_DOUBLE_EQ(spec.lifetime->battery_mah, 3000.0);
  EXPECT_DOUBLE_EQ(spec.objective.weight_cost, 1.0);
  EXPECT_DOUBLE_EQ(spec.objective.weight_energy, 0.5);
  EXPECT_DOUBLE_EQ(spec.objective.weight_dsod, 0.0);
  EXPECT_DOUBLE_EQ(spec.radio.noise_floor_dbm, -100.0);
  EXPECT_DOUBLE_EQ(spec.radio.tdma.report_period_s, 30.0);
  // SNR 20 over -100 noise floor -> RSS floor -80.
  EXPECT_DOUBLE_EQ(*spec.min_rss_dbm(), -80.0);
}

TEST_F(SpecParserTest, ParsesLocalizationPatterns) {
  const auto spec = spec::parse(R"(
eval_point(1.5, 2.5)
eval_point(3, 4)
min_reachable_devices(3, -80)
objective cost=1 dsod=0.2
)",
                                tmpl_);
  ASSERT_TRUE(spec.localization.has_value());
  EXPECT_EQ(spec.localization->eval_points.size(), 2u);
  EXPECT_DOUBLE_EQ(spec.localization->eval_points[1].y, 4.0);
  EXPECT_EQ(spec.localization->min_anchors, 3);
  EXPECT_DOUBLE_EQ(spec.localization->min_rss_dbm, -80.0);
  EXPECT_DOUBLE_EQ(spec.objective.weight_dsod, 0.2);
}

TEST_F(SpecParserTest, ErrorsCarryLineNumbers) {
  try {
    spec::parse("p1 = has_path(s1, sink)\nbogus_pattern(1)\n", tmpl_);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST_F(SpecParserTest, RejectsMalformedInput) {
  EXPECT_THROW(spec::parse("p1 = has_path(s1)\n", tmpl_), std::runtime_error);
  EXPECT_THROW(spec::parse("p1 = has_path(nope, sink)\n", tmpl_), std::runtime_error);
  EXPECT_THROW(spec::parse("disjoint_links(p1, p2)\n", tmpl_), std::runtime_error);
  EXPECT_THROW(spec::parse("min_signal_to_noise(a)\n", tmpl_), std::runtime_error);
  EXPECT_THROW(spec::parse("objective cost\n", tmpl_), std::runtime_error);
  EXPECT_THROW(spec::parse("objective banana=1\n", tmpl_), std::runtime_error);
  EXPECT_THROW(spec::parse("p1 = has_path(s1, sink)\np1 = has_path(s1, sink)\n", tmpl_),
               std::runtime_error);
  EXPECT_THROW(spec::parse("max_hops(p9, 3)\n", tmpl_), std::runtime_error);
}

TEST_F(SpecParserTest, DisjointGroupsMustShareEndpoints) {
  EXPECT_THROW(spec::parse(R"(
p1 = has_path(s1, sink)
p2 = has_path(s2, sink)
disjoint_links(p1, p2)
)",
                           tmpl_),
               std::runtime_error);
}

TEST_F(SpecParserTest, RouteCannotJoinTwoGroups) {
  EXPECT_THROW(spec::parse(R"(
p1 = has_path(s1, sink)
p2 = has_path(s1, sink)
p3 = has_path(s1, sink)
disjoint_links(p1, p2)
disjoint_links(p2, p3)
)",
                           tmpl_),
               std::runtime_error);
}

TEST_F(SpecParserTest, MaxHopsOnGroupTakesTightest) {
  const auto spec = spec::parse(R"(
p1 = has_path(s1, sink)
p2 = has_path(s1, sink)
max_hops(p1, 5)
max_hops(p2, 3)
disjoint_links(p1, p2)
)",
                                tmpl_);
  ASSERT_EQ(spec.routes.size(), 1u);
  EXPECT_EQ(*spec.routes[0].max_hops, 3);
}

TEST_F(SpecParserTest, EmptySpecParses) {
  const auto spec = spec::parse("\n# nothing\n", tmpl_);
  EXPECT_TRUE(spec.routes.empty());
  EXPECT_FALSE(spec.lifetime.has_value());
}

}  // namespace
}  // namespace wnet::archex
