#include "core/resilience.h"

#include <gtest/gtest.h>

#include <set>

#include "channel/propagation.h"
#include "core/explorer.h"

namespace wnet::archex {
namespace {

class ResilienceScenario : public ::testing::Test {
 protected:
  ResilienceScenario() : model_(2.4e9, 2.2), lib_(make_reference_library()), tmpl_(model_, lib_) {
    tmpl_.add_node({"s0", {0, 5}, Role::kSensor, NodeKind::kFixed, std::nullopt});
    tmpl_.add_node({"sink", {40, 5}, Role::kSink, NodeKind::kFixed, std::nullopt});
    // Two parallel relay corridors so disjoint routing is possible.
    for (int i = 0; i < 3; ++i) {
      tmpl_.add_node({"ra" + std::to_string(i), {10.0 * (i + 1), 2.0}, Role::kRelay,
                      NodeKind::kCandidate, std::nullopt});
      tmpl_.add_node({"rb" + std::to_string(i), {10.0 * (i + 1), 8.0}, Role::kRelay,
                      NodeKind::kCandidate, std::nullopt});
    }
    spec_.link_quality.min_snr_db = 32.0;  // forces multi-hop over relays
    spec_.objective = {1.0, 0.0, 0.0};
  }

  ExplorationResult solve_with_replicas(int replicas) {
    spec_.routes.clear();
    RouteRequirement r;
    r.source = 0;
    r.dest = 1;
    r.replicas = replicas;
    spec_.routes.push_back(r);
    Explorer ex(tmpl_, spec_);
    milp::SolveOptions so;
    so.time_limit_s = 60.0;
    EncoderOptions eo;
    eo.k_star = 8;
    return ex.explore(eo, so);
  }

  channel::LogDistanceModel model_;
  ComponentLibrary lib_;
  NetworkTemplate tmpl_;
  Specification spec_;
};

TEST_F(ResilienceScenario, SingleRouteIsFragile) {
  const auto res = solve_with_replicas(1);
  ASSERT_TRUE(res.has_solution()) << milp::to_string(res.status);
  // The single route passes through relays; any of them failing kills it.
  ASSERT_GE(res.architecture.routes.at(0).path.hops(), 2);
  const auto rep = analyze_resilience(res.architecture, tmpl_, spec_);
  EXPECT_FALSE(rep.fully_resilient());
  EXPECT_EQ(rep.fragile_routes.size(), 1u);
  EXPECT_TRUE(rep.resilient_routes.empty());
  EXPECT_FALSE(rep.critical_relays.empty());
}

TEST_F(ResilienceScenario, DisjointReplicasReportMatchesPathOverlap) {
  const auto res = solve_with_replicas(2);
  ASSERT_TRUE(res.has_solution()) << milp::to_string(res.status);
  ASSERT_EQ(res.architecture.routes.size(), 2u);
  const auto rep = analyze_resilience(res.architecture, tmpl_, spec_);

  // The paper's disjoint_links guarantees edge-disjoint replicas; single
  // relay failures are survived exactly when the replicas also share no
  // interior node. The report must agree with the geometric truth.
  std::set<int> interior_a, shared;
  const auto& pa = res.architecture.routes[0].path.nodes;
  const auto& pb = res.architecture.routes[1].path.nodes;
  for (size_t i = 1; i + 1 < pa.size(); ++i) interior_a.insert(pa[i]);
  for (size_t i = 1; i + 1 < pb.size(); ++i) {
    if (interior_a.count(pb[i]) != 0) shared.insert(pb[i]);
  }
  if (shared.empty()) {
    EXPECT_TRUE(rep.fully_resilient());
    EXPECT_EQ(rep.resilient_routes.size(), 1u);
  } else {
    EXPECT_EQ(rep.critical_relays, std::vector<int>(shared.begin(), shared.end()));
  }
}

TEST_F(ResilienceScenario, EmptyArchitectureTriviallyResilient) {
  NetworkArchitecture empty;
  const auto rep = analyze_resilience(empty, tmpl_, spec_);
  EXPECT_TRUE(rep.fully_resilient());
}

/// Hand-built architecture with two node-disjoint replicas down the two
/// relay corridors (node ids per fixture: ra_i = 2+2i, rb_i = 3+2i).
NetworkArchitecture two_corridor_arch() {
  NetworkArchitecture arch;
  for (int v : {2, 3, 4, 5, 6, 7}) arch.nodes.push_back({v, 0});
  ChosenRoute a;
  a.route_index = 0;
  a.replica = 0;
  a.path.nodes = {0, 2, 4, 6, 1};
  ChosenRoute b;
  b.route_index = 0;
  b.replica = 1;
  b.path.nodes = {0, 3, 5, 7, 1};
  arch.routes = {a, b};
  return arch;
}

TEST_F(ResilienceScenario, PairFailureBreaksWhatEverySingleFailureSurvives) {
  const NetworkArchitecture arch = two_corridor_arch();
  spec_.routes.clear();
  RouteRequirement r;
  r.source = 0;
  r.dest = 1;
  r.replicas = 2;
  spec_.routes.push_back(r);

  // k = 1: node-disjoint replicas survive every single relay failure.
  faults::FaultModelConfig cfg;
  cfg.max_simultaneous_failures = 1;
  cfg.max_scenarios_per_k = 64;
  cfg.link_cuts = false;
  cfg.fading_draws = 0;
  {
    const faults::FaultModel fm(tmpl_, spec_, cfg);
    const auto scenarios = fm.scenarios(arch);
    EXPECT_EQ(scenarios.size(), 6u);  // one per deployed relay
    const auto rep = faults::run_campaign(arch, tmpl_, spec_, scenarios);
    EXPECT_TRUE(rep.all_passed());
  }

  // k = 2: any pair hitting both corridors kills both replicas at once.
  cfg.max_simultaneous_failures = 2;
  const faults::FaultModel fm(tmpl_, spec_, cfg);
  const auto scenarios = fm.scenarios(arch);
  EXPECT_EQ(scenarios.size(), 6u + 15u);  // C(6,1) + C(6,2), enumerated
  const auto rep = faults::run_campaign(arch, tmpl_, spec_, scenarios);
  EXPECT_FALSE(rep.all_passed());
  // Exactly the 3x3 cross-corridor pairs break the requirement.
  EXPECT_EQ(rep.failed(), 9);
  for (const auto* o : rep.failures()) {
    ASSERT_EQ(o->scenario.failed_nodes.size(), 2u);
    const int lo = o->scenario.failed_nodes[0];
    const int hi = o->scenario.failed_nodes[1];
    EXPECT_NE(lo % 2, hi % 2) << "same-corridor pair cannot break both replicas";
    EXPECT_EQ(o->broken_routes, std::vector<int>{0});
  }
}

TEST_F(ResilienceScenario, LinkCutBreaksSingleReplicaButNotDisjointPair) {
  spec_.routes.clear();
  RouteRequirement r;
  r.source = 0;
  r.dest = 1;
  r.replicas = 2;
  spec_.routes.push_back(r);

  faults::FaultModelConfig cfg;
  cfg.max_simultaneous_failures = 0;  // link cuts only
  cfg.fading_draws = 0;

  // Two disjoint replicas: every single link cut leaves the other intact.
  const NetworkArchitecture arch = two_corridor_arch();
  const faults::FaultModel fm(tmpl_, spec_, cfg);
  {
    const auto scenarios = fm.scenarios(arch);
    EXPECT_EQ(scenarios.size(), 8u);  // 4 hops per corridor
    EXPECT_TRUE(faults::run_campaign(arch, tmpl_, spec_, scenarios).all_passed());
  }

  // Strip the second replica: now every cut along the survivor is fatal.
  NetworkArchitecture lone = arch;
  lone.routes.resize(1);
  const auto scenarios = fm.scenarios(lone);
  EXPECT_EQ(scenarios.size(), 4u);
  const auto rep = faults::run_campaign(lone, tmpl_, spec_, scenarios);
  EXPECT_EQ(rep.failed(), 4);
  for (const auto* o : rep.failures()) {
    EXPECT_EQ(o->scenario.kind, faults::FaultKind::kLinkCut);
    EXPECT_EQ(o->broken_routes, std::vector<int>{0});
  }
}

}  // namespace
}  // namespace wnet::archex
