#include "core/resilience.h"

#include <gtest/gtest.h>

#include <set>

#include "channel/propagation.h"
#include "core/explorer.h"

namespace wnet::archex {
namespace {

class ResilienceScenario : public ::testing::Test {
 protected:
  ResilienceScenario() : model_(2.4e9, 2.2), lib_(make_reference_library()), tmpl_(model_, lib_) {
    tmpl_.add_node({"s0", {0, 5}, Role::kSensor, NodeKind::kFixed, std::nullopt});
    tmpl_.add_node({"sink", {40, 5}, Role::kSink, NodeKind::kFixed, std::nullopt});
    // Two parallel relay corridors so disjoint routing is possible.
    for (int i = 0; i < 3; ++i) {
      tmpl_.add_node({"ra" + std::to_string(i), {10.0 * (i + 1), 2.0}, Role::kRelay,
                      NodeKind::kCandidate, std::nullopt});
      tmpl_.add_node({"rb" + std::to_string(i), {10.0 * (i + 1), 8.0}, Role::kRelay,
                      NodeKind::kCandidate, std::nullopt});
    }
    spec_.link_quality.min_snr_db = 32.0;  // forces multi-hop over relays
    spec_.objective = {1.0, 0.0, 0.0};
  }

  ExplorationResult solve_with_replicas(int replicas) {
    spec_.routes.clear();
    RouteRequirement r;
    r.source = 0;
    r.dest = 1;
    r.replicas = replicas;
    spec_.routes.push_back(r);
    Explorer ex(tmpl_, spec_);
    milp::SolveOptions so;
    so.time_limit_s = 60.0;
    EncoderOptions eo;
    eo.k_star = 8;
    return ex.explore(eo, so);
  }

  channel::LogDistanceModel model_;
  ComponentLibrary lib_;
  NetworkTemplate tmpl_;
  Specification spec_;
};

TEST_F(ResilienceScenario, SingleRouteIsFragile) {
  const auto res = solve_with_replicas(1);
  ASSERT_TRUE(res.has_solution()) << milp::to_string(res.status);
  // The single route passes through relays; any of them failing kills it.
  ASSERT_GE(res.architecture.routes.at(0).path.hops(), 2);
  const auto rep = analyze_resilience(res.architecture, tmpl_, spec_);
  EXPECT_FALSE(rep.fully_resilient());
  EXPECT_EQ(rep.fragile_routes.size(), 1u);
  EXPECT_TRUE(rep.resilient_routes.empty());
  EXPECT_FALSE(rep.critical_relays.empty());
}

TEST_F(ResilienceScenario, DisjointReplicasReportMatchesPathOverlap) {
  const auto res = solve_with_replicas(2);
  ASSERT_TRUE(res.has_solution()) << milp::to_string(res.status);
  ASSERT_EQ(res.architecture.routes.size(), 2u);
  const auto rep = analyze_resilience(res.architecture, tmpl_, spec_);

  // The paper's disjoint_links guarantees edge-disjoint replicas; single
  // relay failures are survived exactly when the replicas also share no
  // interior node. The report must agree with the geometric truth.
  std::set<int> interior_a, shared;
  const auto& pa = res.architecture.routes[0].path.nodes;
  const auto& pb = res.architecture.routes[1].path.nodes;
  for (size_t i = 1; i + 1 < pa.size(); ++i) interior_a.insert(pa[i]);
  for (size_t i = 1; i + 1 < pb.size(); ++i) {
    if (interior_a.count(pb[i]) != 0) shared.insert(pb[i]);
  }
  if (shared.empty()) {
    EXPECT_TRUE(rep.fully_resilient());
    EXPECT_EQ(rep.resilient_routes.size(), 1u);
  } else {
    EXPECT_EQ(rep.critical_relays, std::vector<int>(shared.begin(), shared.end()));
  }
}

TEST_F(ResilienceScenario, EmptyArchitectureTriviallyResilient) {
  NetworkArchitecture empty;
  const auto rep = analyze_resilience(empty, tmpl_, spec_);
  EXPECT_TRUE(rep.fully_resilient());
}

}  // namespace
}  // namespace wnet::archex
