#include <gtest/gtest.h>

#include <random>

#include "channel/propagation.h"
#include "core/explorer.h"
#include "core/solution.h"

namespace wnet::archex {
namespace {

/// Property sweep: on randomized small templates, (a) whatever the
/// approximate encoding returns verifies against the spec, (b) its optimum
/// is never better than the exact full-enumeration optimum, and (c) with a
/// generous K* it matches the exact optimum (the paper's K* -> inf claim).
class RandomScenarioProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomScenarioProperty, ApproxSoundAndConvergesToExact) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 977u + 13u);
  std::uniform_real_distribution<double> ux(0.0, 36.0);
  std::uniform_real_distribution<double> uy(0.0, 18.0);

  const channel::LogDistanceModel model(2.4e9, 2.2);
  const ComponentLibrary lib = make_reference_library();
  NetworkTemplate tmpl(model, lib);

  tmpl.add_node({"sink", {ux(rng), uy(rng)}, Role::kSink, NodeKind::kFixed, std::nullopt});
  const int sensors = 2 + static_cast<int>(rng() % 2u);
  for (int i = 0; i < sensors; ++i) {
    tmpl.add_node({"s" + std::to_string(i), {ux(rng), uy(rng)}, Role::kSensor,
                   NodeKind::kFixed, std::nullopt});
  }
  const int relays = 3 + static_cast<int>(rng() % 3u);
  for (int i = 0; i < relays; ++i) {
    tmpl.add_node({"r" + std::to_string(i), {ux(rng), uy(rng)}, Role::kRelay,
                   NodeKind::kCandidate, std::nullopt});
  }

  Specification spec;
  spec.link_quality.min_snr_db = 24.0 + static_cast<double>(rng() % 8u);
  spec.objective = {1.0, 0.0, 0.0};
  for (int i = 0; i < sensors; ++i) {
    RouteRequirement r;
    r.source = *tmpl.find_node("s" + std::to_string(i));
    r.dest = 0;
    spec.routes.push_back(r);
  }

  Explorer ex(tmpl, spec);
  milp::SolveOptions so;
  so.time_limit_s = 60.0;

  EncoderOptions full;
  full.mode = EncoderOptions::PathMode::kFull;
  const auto exact = ex.explore(full, so);

  EncoderOptions approx;
  approx.k_star = 12;  // generous: covers the path diversity of tiny graphs
  const auto appr = ex.explore(approx, so);

  if (exact.status == milp::SolveStatus::kInfeasible) {
    // A random layout can be unroutable under the SNR bound; the
    // approximation must agree (it may only lose feasibility, never gain).
    EXPECT_FALSE(appr.has_solution()) << "seed " << GetParam();
    return;
  }
  ASSERT_EQ(exact.status, milp::SolveStatus::kOptimal) << "seed " << GetParam();
  ASSERT_TRUE(appr.has_solution()) << "seed " << GetParam();

  const auto rep = verify_architecture(appr.architecture, tmpl, spec);
  EXPECT_TRUE(rep.ok) << "seed " << GetParam()
                      << (rep.violations.empty() ? "" : ": " + rep.violations[0]);

  EXPECT_GE(appr.objective, exact.objective - 1e-6) << "seed " << GetParam();
  if (appr.status == milp::SolveStatus::kOptimal) {
    EXPECT_NEAR(appr.objective, exact.objective, 1e-6) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomScenarioProperty, ::testing::Range(0, 12));

}  // namespace
}  // namespace wnet::archex
