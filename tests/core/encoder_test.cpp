#include "core/encode/encoder.h"

#include <gtest/gtest.h>

#include "channel/propagation.h"
#include "core/explorer.h"
#include "core/solution.h"
#include "milp/solver.h"

namespace wnet::archex {
namespace {

/// Tiny deterministic test bed: two sensors, one sink, four relay
/// candidates in a 30 x 20 m free-space arena. Small enough for the full
/// encoding to solve fast, rich enough to need relays when LQ is strict.
class TinyScenario : public ::testing::Test {
 protected:
  TinyScenario() : model_(2.4e9, 2.0), lib_(make_reference_library()), tmpl_(model_, lib_) {
    tmpl_.add_node({"s0", {0, 10}, Role::kSensor, NodeKind::kFixed, std::nullopt});
    tmpl_.add_node({"s1", {10, 0}, Role::kSensor, NodeKind::kFixed, std::nullopt});
    tmpl_.add_node({"sink", {30, 10}, Role::kSink, NodeKind::kFixed, std::nullopt});
    tmpl_.add_node({"r0", {10, 10}, Role::kRelay, NodeKind::kCandidate, std::nullopt});
    tmpl_.add_node({"r1", {20, 10}, Role::kRelay, NodeKind::kCandidate, std::nullopt});
    tmpl_.add_node({"r2", {15, 5}, Role::kRelay, NodeKind::kCandidate, std::nullopt});
    tmpl_.add_node({"r3", {20, 16}, Role::kRelay, NodeKind::kCandidate, std::nullopt});

    spec_.radio.noise_floor_dbm = -100.0;
    spec_.objective = {1.0, 0.0, 0.0};
    for (const char* s : {"s0", "s1"}) {
      RouteRequirement r;
      r.source = *tmpl_.find_node(s);
      r.dest = *tmpl_.find_node("sink");
      r.replicas = 1;
      spec_.routes.push_back(r);
    }
  }

  ExplorationResult run(EncoderOptions::PathMode mode, int k = 5) {
    EncoderOptions eo;
    eo.mode = mode;
    eo.k_star = k;
    milp::SolveOptions so;
    so.time_limit_s = 60.0;
    Explorer ex(tmpl_, spec_);
    return ex.explore(eo, so);
  }

  channel::LogDistanceModel model_;
  ComponentLibrary lib_;
  NetworkTemplate tmpl_;
  Specification spec_;
};

TEST_F(TinyScenario, ApproxSolvesAndVerifies) {
  spec_.link_quality.min_snr_db = 20.0;
  const auto res = run(EncoderOptions::PathMode::kApprox);
  ASSERT_TRUE(res.has_solution()) << to_string(res.status);
  const auto rep = verify_architecture(res.architecture, tmpl_, spec_);
  EXPECT_TRUE(rep.ok) << (rep.violations.empty() ? "" : rep.violations[0]);
  EXPECT_EQ(res.architecture.routes.size(), 2u);
}

TEST_F(TinyScenario, FullSolvesAndVerifies) {
  spec_.link_quality.min_snr_db = 20.0;
  const auto res = run(EncoderOptions::PathMode::kFull);
  ASSERT_TRUE(res.has_solution()) << to_string(res.status);
  const auto rep = verify_architecture(res.architecture, tmpl_, spec_);
  EXPECT_TRUE(rep.ok) << (rep.violations.empty() ? "" : rep.violations[0]);
}

TEST_F(TinyScenario, FullAndApproxAgreeOnOptimalCost) {
  spec_.link_quality.min_snr_db = 20.0;
  const auto full = run(EncoderOptions::PathMode::kFull);
  const auto approx = run(EncoderOptions::PathMode::kApprox, 8);
  ASSERT_TRUE(full.has_solution());
  ASSERT_TRUE(approx.has_solution());
  // The approximation can only lose candidates, never gain: approx >= full,
  // and on this tiny instance the Yen pool covers the optimum.
  EXPECT_GE(approx.objective, full.objective - 1e-6);
  EXPECT_NEAR(approx.objective, full.objective, 1e-6);
}

TEST_F(TinyScenario, ApproxProblemIsSmaller) {
  spec_.link_quality.min_snr_db = 20.0;
  Encoder full(tmpl_, spec_, {EncoderOptions::PathMode::kFull, 5, 20, true});
  Encoder approx(tmpl_, spec_, {EncoderOptions::PathMode::kApprox, 5, 20, true});
  const auto fs = full.encode().stats;
  const auto as = approx.encode().stats;
  EXPECT_LT(as.num_constrs, fs.num_constrs);
  EXPECT_LT(as.num_vars, fs.num_vars);
}

TEST_F(TinyScenario, StrictLqForcesStrongerOrMoreHardware) {
  spec_.link_quality.min_snr_db = 20.0;
  const double relaxed = run(EncoderOptions::PathMode::kApprox).objective;
  spec_.link_quality.min_snr_db = 45.0;  // forces short hops / strong parts
  const auto strict = run(EncoderOptions::PathMode::kApprox);
  ASSERT_TRUE(strict.has_solution()) << to_string(strict.status);
  EXPECT_GE(strict.objective, relaxed - 1e-9);
  const auto rep = verify_architecture(strict.architecture, tmpl_, spec_);
  EXPECT_TRUE(rep.ok) << (rep.violations.empty() ? "" : rep.violations[0]);
}

TEST_F(TinyScenario, DisjointReplicasAreEdgeDisjoint) {
  spec_.link_quality.min_snr_db = 20.0;
  spec_.routes[0].replicas = 2;
  const auto res = run(EncoderOptions::PathMode::kApprox, 8);
  ASSERT_TRUE(res.has_solution()) << to_string(res.status);
  const auto rep = verify_architecture(res.architecture, tmpl_, spec_);
  EXPECT_TRUE(rep.ok) << (rep.violations.empty() ? "" : rep.violations[0]);
  // Three chosen routes in total (2 + 1).
  EXPECT_EQ(res.architecture.routes.size(), 3u);
}

TEST_F(TinyScenario, MaxHopsHonored) {
  spec_.link_quality.min_snr_db = 20.0;
  spec_.routes[0].max_hops = 2;
  spec_.routes[1].max_hops = 2;
  const auto res = run(EncoderOptions::PathMode::kApprox, 8);
  ASSERT_TRUE(res.has_solution()) << to_string(res.status);
  for (const auto& r : res.architecture.routes) {
    EXPECT_LE(r.path.hops(), 2);
  }
}

TEST_F(TinyScenario, InfeasibleLqReportedInfeasible) {
  spec_.link_quality.min_rss_dbm = 10.0;  // beyond any EIRP at any distance
  const auto res = run(EncoderOptions::PathMode::kApprox);
  EXPECT_FALSE(res.has_solution());
}

TEST_F(TinyScenario, LifetimeRequirementSatisfiedAndVerified) {
  spec_.link_quality.min_snr_db = 20.0;
  spec_.lifetime = LifetimeRequirement{5.0, 3000.0};
  const auto res = run(EncoderOptions::PathMode::kApprox);
  ASSERT_TRUE(res.has_solution()) << to_string(res.status);
  EXPECT_GE(res.architecture.min_lifetime_years, 5.0 - 1e-6);
  const auto rep = verify_architecture(res.architecture, tmpl_, spec_);
  EXPECT_TRUE(rep.ok) << (rep.violations.empty() ? "" : rep.violations[0]);
}

TEST_F(TinyScenario, EnergyObjectivePrefersLowPowerParts) {
  spec_.link_quality.min_snr_db = 20.0;
  spec_.lifetime = LifetimeRequirement{1.0, 3000.0};
  spec_.objective = {1.0, 0.0, 0.0};
  const auto cost_run = run(EncoderOptions::PathMode::kApprox);
  spec_.objective = {0.0, 1.0, 0.0};
  const auto energy_run = run(EncoderOptions::PathMode::kApprox);
  ASSERT_TRUE(cost_run.has_solution());
  ASSERT_TRUE(energy_run.has_solution());
  // Optimizing energy cannot consume more charge than optimizing cost, and
  // the $-optimal design cannot cost more than the energy-optimal one.
  EXPECT_LE(energy_run.architecture.total_charge_per_cycle_mas,
            cost_run.architecture.total_charge_per_cycle_mas + 1e-9);
  EXPECT_LE(cost_run.architecture.total_cost_usd,
            energy_run.architecture.total_cost_usd + 1e-9);
}

TEST_F(TinyScenario, KStarSearchImprovesOrStops) {
  spec_.link_quality.min_snr_db = 20.0;
  Explorer ex(tmpl_, spec_);
  Explorer::KStarSearchOptions ko;
  ko.ladder = {1, 3, 5};
  milp::SolveOptions so;
  so.time_limit_s = 30.0;
  const auto sr = ex.search_k_star(ko, {}, so);
  ASSERT_GT(sr.chosen_k, 0);
  ASSERT_TRUE(sr.best.has_solution());
  // Objective along the trace is non-increasing wherever solved.
  double prev = milp::kInf;
  for (const auto& [k, r] : sr.trace) {
    if (r.has_solution()) {
      EXPECT_LE(r.objective, prev + 1e-6);
      prev = r.objective;
    }
  }
}

TEST_F(TinyScenario, EstimatorTracksRealFullEncoding) {
  spec_.link_quality.min_snr_db = 20.0;
  Encoder full(tmpl_, spec_, {EncoderOptions::PathMode::kFull, 5, 20, true});
  const auto real = full.encode().stats;
  const auto est = full.estimate_full_stats();
  // The estimator mirrors the emitters analytically; allow a small slack
  // for data-dependent skips (empty balance rows, redundant implications).
  EXPECT_NEAR(est.num_vars, real.num_vars, 0.15 * real.num_vars);
  EXPECT_NEAR(est.num_constrs, real.num_constrs, 0.15 * real.num_constrs);
}

TEST_F(TinyScenario, DecodeReportsActiveLinksWithSaneRss) {
  spec_.link_quality.min_snr_db = 20.0;
  const auto res = run(EncoderOptions::PathMode::kApprox);
  ASSERT_TRUE(res.has_solution());
  ASSERT_FALSE(res.architecture.links.empty());
  for (const auto& l : res.architecture.links) {
    EXPECT_GE(l.rss_dbm, -80.0 - 1e-6);  // floor = SNR 20 + noise -100
    EXPECT_LE(l.rss_dbm, 10.0);
  }
}

}  // namespace
}  // namespace wnet::archex
