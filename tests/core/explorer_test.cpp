#include "core/explorer.h"

#include <gtest/gtest.h>

#include "channel/propagation.h"
#include "core/solution.h"

namespace wnet::archex {
namespace {

/// A slightly larger fixture than TinyScenario: three sensors on a 50 m
/// floor strip where direct links fail a 35 dB SNR bound, so routing truly
/// passes through relays and the warm-start heuristic has work to do.
class ExplorerScenario : public ::testing::Test {
 protected:
  ExplorerScenario() : model_(2.4e9, 2.4), lib_(make_reference_library()), tmpl_(model_, lib_) {
    tmpl_.add_node({"sink", {50, 5}, Role::kSink, NodeKind::kFixed, std::nullopt});
    for (int i = 0; i < 3; ++i) {
      tmpl_.add_node({"s" + std::to_string(i), {0.0, 2.0 + 3.0 * i}, Role::kSensor,
                      NodeKind::kFixed, std::nullopt});
    }
    for (int i = 0; i < 8; ++i) {
      tmpl_.add_node({"r" + std::to_string(i), {6.0 + 5.5 * i, 2.0 + (i % 3) * 3.0},
                      Role::kRelay, NodeKind::kCandidate, std::nullopt});
    }
    spec_.link_quality.min_snr_db = 35.0;
    spec_.objective = {1.0, 0.0, 0.0};
    for (int i = 0; i < 3; ++i) {
      RouteRequirement r;
      r.source = *tmpl_.find_node("s" + std::to_string(i));
      r.dest = 0;
      spec_.routes.push_back(r);
    }
  }

  channel::LogDistanceModel model_;
  ComponentLibrary lib_;
  NetworkTemplate tmpl_;
  Specification spec_;
};

TEST_F(ExplorerScenario, MultiHopForcedAndVerified) {
  Explorer ex(tmpl_, spec_);
  milp::SolveOptions so;
  so.time_limit_s = 60.0;
  const auto res = ex.explore({}, so);
  ASSERT_TRUE(res.has_solution()) << milp::to_string(res.status);
  // Direct 50 m links cannot meet 35 dB SNR: every route must be multi-hop.
  for (const auto& r : res.architecture.routes) EXPECT_GE(r.path.hops(), 2);
  const auto rep = verify_architecture(res.architecture, tmpl_, spec_);
  EXPECT_TRUE(rep.ok) << (rep.violations.empty() ? "" : rep.violations[0]);
}

TEST_F(ExplorerScenario, StatsArePopulated) {
  Explorer ex(tmpl_, spec_);
  milp::SolveOptions so;
  so.time_limit_s = 60.0;
  const auto res = ex.explore({}, so);
  ASSERT_TRUE(res.has_solution());
  EXPECT_GT(res.encode_stats.num_vars, 0);
  EXPECT_GT(res.encode_stats.num_constrs, 0);
  EXPECT_GT(res.encode_stats.candidate_paths, 0);
  EXPECT_GE(res.total_time_s, res.solve_stats.time_s - 1e-6);
}

TEST_F(ExplorerScenario, SmallerKStarNeverBeatsLarger) {
  Explorer ex(tmpl_, spec_);
  milp::SolveOptions so;
  so.time_limit_s = 60.0;
  EncoderOptions e1;
  e1.k_star = 1;
  EncoderOptions e8;
  e8.k_star = 8;
  const auto r1 = ex.explore(e1, so);
  const auto r8 = ex.explore(e8, so);
  ASSERT_TRUE(r1.has_solution());
  ASSERT_TRUE(r8.has_solution());
  // Candidate pools are nested in spirit: more candidates, no worse optimum
  // (both solved to proven optimality on this small instance).
  if (r1.status == milp::SolveStatus::kOptimal && r8.status == milp::SolveStatus::kOptimal) {
    EXPECT_LE(r8.objective, r1.objective + 1e-6);
  }
}

TEST_F(ExplorerScenario, ExplicitMipStartPassesThrough) {
  // Solve once, feed the resulting variable assignment back as a MIP start
  // with a zero node budget: the incumbent must be at least that good.
  Explorer ex(tmpl_, spec_);
  milp::SolveOptions so;
  so.time_limit_s = 60.0;
  EncoderOptions eo;
  const auto first = ex.explore(eo, so);
  ASSERT_TRUE(first.has_solution());

  Encoder enc(tmpl_, spec_, eo);
  const auto ep = enc.encode();
  const auto direct = milp::solve(ep.model, so);
  ASSERT_TRUE(direct.has_solution());
  milp::SolveOptions limited = so;
  limited.mip_start = direct.x;
  limited.node_limit = 0;
  limited.root_dive = false;
  const auto seeded = milp::solve(ep.model, limited);
  ASSERT_TRUE(seeded.has_solution());
  EXPECT_LE(seeded.objective, direct.objective + 1e-6);
}

TEST_F(ExplorerScenario, NoRoutesMeansLocalizationOnlyStillRuns) {
  Specification loc_spec;
  loc_spec.objective = {1.0, 0.0, 0.0};
  LocalizationRequirement loc;
  loc.min_anchors = 1;
  loc.min_rss_dbm = -80.0;
  loc.eval_points = {{10, 5}, {30, 5}};
  loc_spec.localization = loc;

  // Reuse the template but give relays anchor duty via a dedicated template.
  NetworkTemplate anchors(model_, lib_);
  for (int i = 0; i < 6; ++i) {
    anchors.add_node({"a" + std::to_string(i), {5.0 + 8.0 * i, 5.0}, Role::kAnchor,
                      NodeKind::kCandidate, std::nullopt});
  }
  Explorer ex(anchors, loc_spec);
  const auto res = ex.explore();
  ASSERT_TRUE(res.has_solution()) << milp::to_string(res.status);
  EXPECT_GE(res.architecture.avg_reachable_anchors, 1.0);
  const auto rep = verify_architecture(res.architecture, anchors, loc_spec);
  EXPECT_TRUE(rep.ok) << (rep.violations.empty() ? "" : rep.violations[0]);
}

TEST_F(ExplorerScenario, DsodObjectiveSelectsServingAnchors) {
  Specification loc_spec;
  loc_spec.objective = {0.0, 0.0, 1.0};
  LocalizationRequirement loc;
  loc.min_anchors = 2;
  loc.min_rss_dbm = -80.0;
  loc.eval_points = {{10, 5}, {20, 5}, {30, 5}};
  loc_spec.localization = loc;

  NetworkTemplate anchors(model_, lib_);
  for (int i = 0; i < 8; ++i) {
    anchors.add_node({"a" + std::to_string(i), {4.0 + 6.0 * i, 4.0 + (i % 2)}, Role::kAnchor,
                      NodeKind::kCandidate, std::nullopt});
  }
  Explorer ex(anchors, loc_spec);
  const auto res = ex.explore();
  ASSERT_TRUE(res.has_solution()) << milp::to_string(res.status);
  EXPECT_GT(res.architecture.dsod, 0.0);
  const auto rep = verify_architecture(res.architecture, anchors, loc_spec);
  EXPECT_TRUE(rep.ok) << (rep.violations.empty() ? "" : rep.violations[0]);
}

}  // namespace
}  // namespace wnet::archex
