// Differential test for the approximate path encoding (paper Sec. 4.2 /
// Algorithm 1) against the exact flow-based encoding: whenever K* is large
// enough to cover every simple path of the template graph, the two MILPs
// optimize over the same feasible set, so their optima must coincide.
// Exercised on >= 20 randomized small templates.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "channel/propagation.h"
#include "core/encode/encoder.h"
#include "core/explorer.h"
#include "graph/digraph.h"
#include "milp/solver.h"

namespace wnet::archex {
namespace {

/// Counts simple paths src -> dst in the (unpruned) template graph. The LQ
/// prefilter only ever removes edges, so this upper-bounds the candidate
/// count the approximate encoder could need.
int count_simple_paths(const graph::Digraph& g, graph::NodeId v, graph::NodeId dst,
                       std::vector<char>& on_path, int cap) {
  if (v == dst) return 1;
  on_path[static_cast<size_t>(v)] = 1;
  int total = 0;
  for (const graph::EdgeId e : g.out_edges(v)) {
    const auto& ed = g.edge(e);
    if (ed.weight == graph::kInfWeight || on_path[static_cast<size_t>(ed.to)]) continue;
    total += count_simple_paths(g, ed.to, dst, on_path, cap);
    if (total > cap) break;
  }
  on_path[static_cast<size_t>(v)] = 0;
  return total;
}

/// One randomized instance: a sensor-to-sink corridor with a handful of
/// candidate relays scattered across it.
struct Instance {
  channel::LogDistanceModel model{2.4e9, 2.2};
  ComponentLibrary lib = make_reference_library();
  NetworkTemplate tmpl{model, lib};
  Specification spec;

  // Built in place: NetworkTemplate references the sibling members (and is
  // immovable anyway — it owns a cache mutex).
  explicit Instance(uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> x(6.0, 24.0);
    std::uniform_real_distribution<double> y(2.0, 8.0);
    tmpl.add_node({"s0", {0, 5}, Role::kSensor, NodeKind::kFixed, std::nullopt});
    tmpl.add_node({"sink", {30, 5}, Role::kSink, NodeKind::kFixed, std::nullopt});
    const int relays = 3 + static_cast<int>(rng() % 3);  // 3..5 candidates
    for (int i = 0; i < relays; ++i) {
      tmpl.add_node({"r" + std::to_string(i), {x(rng), y(rng)}, Role::kRelay,
                     NodeKind::kCandidate, std::nullopt});
    }
    spec.link_quality.min_snr_db = 32.0;
    spec.objective = {1.0, 0.0, 0.0};
    RouteRequirement r;
    r.source = 0;
    r.dest = 1;
    r.replicas = 1;
    spec.routes.push_back(r);
  }
};

TEST(EncoderDifferential, ApproxMatchesFullWhenKStarCoversAllSimplePaths) {
  constexpr int kPathCap = 120;
  int compared = 0;
  int optimal_pairs = 0;
  for (uint64_t seed = 1; seed <= 80 && compared < 24; ++seed) {
    const Instance in(seed);
    const auto g = in.tmpl.build_graph();
    std::vector<char> on_path(static_cast<size_t>(g.num_nodes()), 0);
    const int paths = count_simple_paths(g, 0, 1, on_path, kPathCap);
    if (paths == 0 || paths > kPathCap) continue;  // coverage premise not met

    milp::SolveOptions so;
    so.time_limit_s = 60.0;
    const Explorer ex(in.tmpl, in.spec);

    EncoderOptions approx;  // default kApprox
    approx.k_star = paths;  // covers every simple path of the template graph
    const auto ra = ex.explore(approx, so);

    EncoderOptions full;
    full.mode = EncoderOptions::PathMode::kFull;
    const auto rf = ex.explore(full, so);

    // These instances are tiny; anything short of a proven status would
    // make the comparison vacuous.
    ASSERT_TRUE(rf.status == milp::SolveStatus::kOptimal ||
                rf.status == milp::SolveStatus::kInfeasible)
        << "seed " << seed << ": full status " << milp::to_string(rf.status);

    EXPECT_EQ(ra.has_solution(), rf.has_solution()) << "seed " << seed;
    if (ra.status == milp::SolveStatus::kOptimal && rf.status == milp::SolveStatus::kOptimal) {
      const double tol = 1e-6 * std::max(1.0, std::abs(rf.objective));
      EXPECT_NEAR(ra.objective, rf.objective, tol)
          << "seed " << seed << ": approx (K*=" << paths << ") and full optima diverge";
      // Same optimum should also mean the same deployment cost.
      EXPECT_NEAR(ra.architecture.total_cost_usd, rf.architecture.total_cost_usd, tol);
      ++optimal_pairs;
    }
    ++compared;
  }
  // The issue demands >= 20 covered instances; the seed range is sized so
  // this holds with lots of slack.
  EXPECT_GE(compared, 20);
  // And the equality check must actually have run on most of them.
  EXPECT_GE(optimal_pairs, 15);
}

/// Solves both models and checks they agree on status and optimum.
void expect_same_optimum(const EncodedProblem& a, const EncodedProblem& b,
                         const std::string& label) {
  milp::SolveOptions so;
  so.time_limit_s = 60.0;
  const auto ra = milp::solve(a.model, so);
  const auto rb = milp::solve(b.model, so);
  EXPECT_EQ(ra.status, rb.status) << label;
  if (ra.status == milp::SolveStatus::kOptimal && rb.status == milp::SolveStatus::kOptimal) {
    EXPECT_NEAR(ra.objective, rb.objective, 1e-9 * std::max(1.0, std::abs(rb.objective)))
        << label;
  }
}

void expect_same_shape(const EncodedProblem& inc, const EncodedProblem& fresh,
                       const std::string& label) {
  EXPECT_EQ(inc.stats.num_vars, fresh.stats.num_vars) << label;
  EXPECT_EQ(inc.stats.num_constrs, fresh.stats.num_constrs) << label;
  EXPECT_EQ(inc.stats.nonzeros, fresh.stats.nonzeros) << label;
  EXPECT_EQ(inc.candidates.size(), fresh.candidates.size()) << label;
}

// The IncrementalEncoder contract: delta-extending a session across K*
// rungs yields a model equivalent to a fresh encode at the same options —
// same variable/constraint/nonzero counts and the same optimum — while
// actually reusing candidates, and the all-off extension of a previous
// rung's incumbent stays feasible (the MIP-start bridge).
TEST(EncoderDifferential, IncrementalSessionMatchesFreshAcrossLadder) {
  const std::vector<int> ladder{1, 2, 3, 5, 9};
  int reused_total = 0;
  int bridged = 0;
  for (const uint64_t seed : {3u, 7u, 11u, 19u, 27u}) {
    Instance in(seed);
    in.spec.objective = {1.0, 0.02, 0.0};     // exercise the energy delta
    in.spec.routes[0].replicas = 1 + static_cast<int>(seed % 2);  // disconnect replay
    const EncoderOptions base;
    IncrementalEncoder session(in.tmpl, in.spec, base);

    std::vector<double> carry;
    for (const int k : ladder) {
      auto& ep = session.encode_k(k);
      EncoderOptions fopts = base;
      fopts.k_star = k;
      const auto fresh = Encoder(in.tmpl, in.spec, fopts).encode();
      const std::string label =
          "seed " + std::to_string(seed) + " k=" + std::to_string(k);
      expect_same_shape(ep, fresh, label);

      const auto ext = session.extend_assignment(carry);
      milp::SolveOptions so;
      so.time_limit_s = 60.0;
      if (!ext.empty()) {
        EXPECT_TRUE(ep.model.is_feasible(ext)) << label << ": extended start infeasible";
        so.mip_start = ext;
        ++bridged;
      }
      const auto ri = milp::solve(ep.model, so);
      const auto rf = milp::solve(fresh.model);
      EXPECT_EQ(ri.status, rf.status) << label;
      if (ri.status == milp::SolveStatus::kOptimal &&
          rf.status == milp::SolveStatus::kOptimal) {
        EXPECT_NEAR(ri.objective, rf.objective,
                    1e-9 * std::max(1.0, std::abs(rf.objective)))
            << label;
      }
      if (ri.has_solution()) carry = ri.x;
      reused_total += ep.stats.reused_candidates;
    }
  }
  // The ladder must have reused prior work and bridged at least one
  // incumbent across a rung, or the session silently degenerated into
  // rebuild-every-time.
  EXPECT_GT(reused_total, 0);
  EXPECT_GT(bridged, 0);
}

// The repair-loop path: kAvoid hardenings append in place, a later K* rung
// widens the appended rows, and a kMargin hardening (which retunes the LQ
// prefilter) transparently falls back to a rebuild. Every stop along the
// way must match a fresh encode at identical options.
TEST(EncoderDifferential, IncrementalHardeningAppendsMatchFresh) {
  Instance in(5);
  const EncoderOptions base;
  IncrementalEncoder session(in.tmpl, in.spec, base);
  session.encode_k(4);

  HardeningConstraint avoid;
  avoid.kind = HardeningConstraint::Kind::kAvoid;
  avoid.route_index = 0;
  avoid.nodes = {2};  // first relay candidate
  session.append_hardenings({avoid});

  EncoderOptions fopts = base;
  fopts.k_star = 4;
  fopts.hardening = {avoid};
  {
    auto& ep = session.encode_k(4);
    const auto fresh = Encoder(in.tmpl, in.spec, fopts).encode();
    expect_same_shape(ep, fresh, "after kAvoid append");
    expect_same_optimum(ep, fresh, "after kAvoid append");
    EXPECT_GT(ep.stats.reused_candidates, 0) << "hardening append rebuilt the model";
  }

  {
    auto& ep = session.encode_k(9);  // widened disjunctions + widened avoid row
    fopts.k_star = 9;
    const auto fresh = Encoder(in.tmpl, in.spec, fopts).encode();
    expect_same_shape(ep, fresh, "k grown after hardening");
    expect_same_optimum(ep, fresh, "k grown after hardening");
  }

  HardeningConstraint margin;
  margin.kind = HardeningConstraint::Kind::kMargin;
  margin.links = {{0, 2}};
  margin.margin_db = 3.0;
  session.append_hardenings({margin});
  {
    auto& ep = session.encode_k(9);
    fopts.hardening.push_back(margin);
    const auto fresh = Encoder(in.tmpl, in.spec, fopts).encode();
    expect_same_shape(ep, fresh, "after kMargin rebuild");
    expect_same_optimum(ep, fresh, "after kMargin rebuild");
    EXPECT_EQ(ep.stats.reused_candidates, 0) << "kMargin must force a rebuild";
  }
}

}  // namespace
}  // namespace wnet::archex
