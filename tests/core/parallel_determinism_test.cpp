// The determinism contract of the parallel exploration engine: for ANY
// worker count, Explorer::explore, Explorer::search_k_star,
// Explorer::explore_robust and faults::CampaignRunner must produce results
// byte-identical to the serial run — same objectives, same architectures,
// same JSON reports. These tests pin that promise for 1/2/4/8 threads
// (exact double comparisons are deliberate: "identical", not "close").
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "channel/propagation.h"
#include "core/explorer.h"
#include "core/faults/campaign.h"
#include "core/faults/fault_model.h"

namespace wnet::archex {
namespace {

/// Multi-route fixture: three sensors crossing a relay field, so encoder
/// candidate generation actually has per-route batches to fan out.
class ParallelDeterminism : public ::testing::Test {
 protected:
  ParallelDeterminism() : model_(2.4e9, 2.4), lib_(make_reference_library()), tmpl_(model_, lib_) {
    tmpl_.add_node({"sink", {50, 5}, Role::kSink, NodeKind::kFixed, std::nullopt});
    for (int i = 0; i < 3; ++i) {
      tmpl_.add_node({"s" + std::to_string(i), {0.0, 2.0 + 3.0 * i}, Role::kSensor,
                      NodeKind::kFixed, std::nullopt});
    }
    for (int i = 0; i < 8; ++i) {
      tmpl_.add_node({"r" + std::to_string(i), {6.0 + 5.5 * i, 2.0 + (i % 3) * 3.0},
                      Role::kRelay, NodeKind::kCandidate, std::nullopt});
    }
    spec_.link_quality.min_snr_db = 35.0;
    spec_.objective = {1.0, 0.0, 0.0};
    for (int i = 0; i < 3; ++i) {
      RouteRequirement r;
      r.source = *tmpl_.find_node("s" + std::to_string(i));
      r.dest = 0;
      spec_.routes.push_back(r);
    }
  }

  static void expect_same_architecture(const NetworkArchitecture& a,
                                       const NetworkArchitecture& b) {
    ASSERT_EQ(a.nodes.size(), b.nodes.size());
    for (size_t i = 0; i < a.nodes.size(); ++i) {
      EXPECT_EQ(a.nodes[i].node, b.nodes[i].node);
      EXPECT_EQ(a.nodes[i].component, b.nodes[i].component);
    }
    ASSERT_EQ(a.routes.size(), b.routes.size());
    for (size_t i = 0; i < a.routes.size(); ++i) {
      EXPECT_EQ(a.routes[i].route_index, b.routes[i].route_index);
      EXPECT_EQ(a.routes[i].replica, b.routes[i].replica);
      EXPECT_EQ(a.routes[i].path.nodes, b.routes[i].path.nodes);
    }
    EXPECT_EQ(a.total_cost_usd, b.total_cost_usd);  // exact, not approximate
  }

  channel::LogDistanceModel model_;
  ComponentLibrary lib_;
  NetworkTemplate tmpl_;
  Specification spec_;
};

TEST_F(ParallelDeterminism, ExploreIsThreadCountInvariant) {
  const Explorer ex(tmpl_, spec_);
  milp::SolveOptions so;
  so.time_limit_s = 60.0;

  EncoderOptions serial;
  serial.k_star = 6;
  const auto base = ex.explore(serial, so);
  ASSERT_TRUE(base.has_solution()) << milp::to_string(base.status);

  for (int threads : {2, 4, 8}) {
    EncoderOptions eo = serial;
    eo.threads = threads;
    const auto r = ex.explore(eo, so);
    ASSERT_TRUE(r.has_solution()) << "threads=" << threads;
    EXPECT_EQ(r.status, base.status) << "threads=" << threads;
    EXPECT_EQ(r.objective, base.objective) << "threads=" << threads;
    // Identical candidate lists => identical model => identical counts.
    EXPECT_EQ(r.encode_stats.num_vars, base.encode_stats.num_vars);
    EXPECT_EQ(r.encode_stats.num_constrs, base.encode_stats.num_constrs);
    EXPECT_EQ(r.encode_stats.candidate_paths, base.encode_stats.candidate_paths);
    expect_same_architecture(r.architecture, base.architecture);
  }
}

TEST_F(ParallelDeterminism, KStarLadderSearchIsThreadCountInvariant) {
  const Explorer ex(tmpl_, spec_);
  milp::SolveOptions so;
  so.time_limit_s = 60.0;

  Explorer::KStarSearchOptions ko;
  ko.ladder = {1, 3, 6};
  const auto base = ex.search_k_star(ko, {}, so);
  ASSERT_TRUE(base.best.has_solution());

  for (int threads : {2, 4, 8}) {
    Explorer::KStarSearchOptions kt = ko;
    kt.threads = threads;
    const auto r = ex.search_k_star(kt, {}, so);
    EXPECT_EQ(r.chosen_k, base.chosen_k) << "threads=" << threads;
    EXPECT_EQ(r.best.objective, base.best.objective) << "threads=" << threads;
    // The parallel scan replays the serial selection rule, so even the
    // trace — which rungs were (counted as) visited, in what order, with
    // what objectives — must line up rung for rung.
    ASSERT_EQ(r.trace.size(), base.trace.size()) << "threads=" << threads;
    for (size_t i = 0; i < r.trace.size(); ++i) {
      EXPECT_EQ(r.trace[i].first, base.trace[i].first);
      EXPECT_EQ(r.trace[i].second.objective, base.trace[i].second.objective);
    }
    expect_same_architecture(r.best.architecture, base.best.architecture);
  }
}

TEST_F(ParallelDeterminism, CampaignReportsAreByteIdenticalAcrossThreadCounts) {
  const Explorer ex(tmpl_, spec_);
  milp::SolveOptions so;
  so.time_limit_s = 60.0;
  EncoderOptions eo;
  eo.k_star = 6;
  const auto base = ex.explore(eo, so);
  ASSERT_TRUE(base.has_solution());

  faults::FaultModelConfig fc;
  fc.seed = 5;
  fc.max_simultaneous_failures = 1;
  fc.fading_draws = 64;
  fc.fading_sigma_db = 2.0;
  const faults::FaultModel fm(tmpl_, spec_, fc);
  const auto scenarios = fm.scenarios(base.architecture);
  ASSERT_FALSE(scenarios.empty());

  const auto serial =
      faults::CampaignRunner(tmpl_, spec_).run(base.architecture, scenarios);
  const std::string golden = serial.to_json();
  // The convenience wrapper is the serial runner.
  EXPECT_EQ(faults::run_campaign(base.architecture, tmpl_, spec_, scenarios).to_json(), golden);

  for (int threads : {2, 4, 8}) {
    faults::CampaignOptions copts;
    copts.threads = threads;
    const auto rep =
        faults::CampaignRunner(tmpl_, spec_, copts).run(base.architecture, scenarios);
    EXPECT_EQ(rep.total(), serial.total()) << "threads=" << threads;
    EXPECT_EQ(rep.passed(), serial.passed()) << "threads=" << threads;
    EXPECT_EQ(rep.to_json(), golden) << "threads=" << threads;
  }
}

TEST_F(ParallelDeterminism, ScenarioOutcomesAreOrderIndependent) {
  // Per-scenario fading seeds are keyed on (campaign seed, draw index), so
  // shuffling the evaluation order — which is exactly what a thread pool
  // does — cannot change any outcome. Pin that by reversing the list.
  const Explorer ex(tmpl_, spec_);
  milp::SolveOptions so;
  so.time_limit_s = 60.0;
  const auto base = ex.explore({}, so);
  ASSERT_TRUE(base.has_solution());

  faults::FaultModelConfig fc;
  fc.seed = 9;
  fc.max_simultaneous_failures = 1;
  fc.fading_draws = 32;
  fc.fading_sigma_db = 2.0;
  const auto scenarios = faults::FaultModel(tmpl_, spec_, fc).scenarios(base.architecture);
  auto reversed = scenarios;
  std::reverse(reversed.begin(), reversed.end());

  faults::CampaignOptions copts;
  copts.threads = 4;
  const faults::CampaignRunner runner(tmpl_, spec_, copts);
  const auto fwd = runner.run(base.architecture, scenarios);
  const auto rev = runner.run(base.architecture, reversed);
  EXPECT_EQ(fwd.total(), rev.total());
  EXPECT_EQ(fwd.passed(), rev.passed());
}

TEST_F(ParallelDeterminism, ExploreRobustIsThreadCountInvariant) {
  const Explorer ex(tmpl_, spec_);
  Explorer::RobustExploreOptions ro;
  ro.encoder.k_star = 6;
  ro.solver.time_limit_s = 30.0;
  ro.faults.seed = 3;
  ro.faults.max_simultaneous_failures = 1;
  ro.faults.fading_draws = 16;
  ro.faults.fading_sigma_db = 2.0;
  ro.time_budget_s = 120.0;
  ro.max_repair_iterations = 4;

  const auto base = ex.explore_robust(ro);
  ASSERT_TRUE(base.best.has_solution());
  const std::string golden = base.report.to_json();

  for (int threads : {4}) {  // one parallel config keeps the MILP budget sane
    Explorer::RobustExploreOptions rt = ro;
    rt.threads = threads;
    const auto r = ex.explore_robust(rt);
    EXPECT_EQ(r.iterations, base.iterations) << "threads=" << threads;
    EXPECT_EQ(r.robust, base.robust) << "threads=" << threads;
    EXPECT_EQ(r.hardenings_applied, base.hardenings_applied) << "threads=" << threads;
    EXPECT_EQ(r.raised_routes, base.raised_routes) << "threads=" << threads;
    EXPECT_EQ(r.best.objective, base.best.objective) << "threads=" << threads;
    EXPECT_EQ(r.report.to_json(), golden) << "threads=" << threads;
    expect_same_architecture(r.best.architecture, base.best.architecture);
  }
}

}  // namespace
}  // namespace wnet::archex
