#include <gtest/gtest.h>

#include "channel/propagation.h"
#include "core/library.h"
#include "core/network_template.h"

namespace wnet::archex {
namespace {

TEST(Library, ReferenceLibraryShape) {
  const ComponentLibrary lib = make_reference_library();
  EXPECT_GE(lib.size(), 8);
  EXPECT_FALSE(lib.with_role(Role::kSensor).empty());
  EXPECT_FALSE(lib.with_role(Role::kRelay).empty());
  EXPECT_FALSE(lib.with_role(Role::kSink).empty());
  EXPECT_FALSE(lib.with_role(Role::kAnchor).empty());
  ASSERT_TRUE(lib.find("relay-basic").has_value());
  EXPECT_FALSE(lib.find("quantum-relay").has_value());
  // Sensors are free, relays are not.
  for (int i : lib.with_role(Role::kSensor)) EXPECT_DOUBLE_EQ(lib.at(i).cost_usd, 0.0);
  for (int i : lib.with_role(Role::kRelay)) EXPECT_GT(lib.at(i).cost_usd, 0.0);
  // Best relay EIRP includes PA + antenna.
  EXPECT_DOUBLE_EQ(lib.best_eirp_dbm(Role::kRelay), 7.5);
}

TEST(Library, RejectsMalformedComponents) {
  ComponentLibrary lib;
  EXPECT_THROW(lib.add({"", {Role::kRelay}, 1, 0, 0, {}}), std::invalid_argument);
  EXPECT_THROW(lib.add({"x", {}, 1, 0, 0, {}}), std::invalid_argument);
}

class TemplateTest : public ::testing::Test {
 protected:
  TemplateTest()
      : model_(2.4e9, 2.0), lib_(make_reference_library()), tmpl_(model_, lib_) {}

  channel::LogDistanceModel model_;
  ComponentLibrary lib_;
  NetworkTemplate tmpl_;
};

TEST_F(TemplateTest, AddAndFindNodes) {
  tmpl_.add_node({"a", {0, 0}, Role::kSensor, NodeKind::kFixed, std::nullopt});
  tmpl_.add_node({"b", {10, 0}, Role::kRelay, NodeKind::kCandidate, std::nullopt});
  EXPECT_EQ(tmpl_.num_nodes(), 2);
  EXPECT_EQ(*tmpl_.find_node("a"), 0);
  EXPECT_FALSE(tmpl_.find_node("zzz").has_value());
  EXPECT_THROW(tmpl_.add_node({"a", {1, 1}, Role::kRelay, NodeKind::kCandidate, std::nullopt}),
               std::invalid_argument);
  EXPECT_THROW(tmpl_.add_node({"", {1, 1}, Role::kRelay, NodeKind::kCandidate, std::nullopt}),
               std::invalid_argument);
  EXPECT_THROW(tmpl_.add_node({"c", {1, 1}, Role::kRelay, NodeKind::kCandidate, 999}),
               std::out_of_range);
}

TEST_F(TemplateTest, PathLossSymmetricAndCached) {
  tmpl_.add_node({"a", {0, 0}, Role::kSensor, NodeKind::kFixed, std::nullopt});
  tmpl_.add_node({"b", {20, 0}, Role::kRelay, NodeKind::kCandidate, std::nullopt});
  EXPECT_DOUBLE_EQ(tmpl_.path_loss_db(0, 1), tmpl_.path_loss_db(1, 0));
  EXPECT_NEAR(tmpl_.path_loss_db(0, 1), model_.path_loss_db({0, 0}, {20, 0}), 1e-12);
  EXPECT_THROW(tmpl_.path_loss_db(0, 7), std::out_of_range);
}

TEST_F(TemplateTest, GraphRespectsRolesAndCutoff) {
  tmpl_.add_node({"s", {0, 0}, Role::kSensor, NodeKind::kFixed, std::nullopt});
  tmpl_.add_node({"r", {10, 0}, Role::kRelay, NodeKind::kCandidate, std::nullopt});
  tmpl_.add_node({"k", {20, 0}, Role::kSink, NodeKind::kFixed, std::nullopt});
  const auto g = tmpl_.build_graph();
  // No edges into sensors, none out of sinks.
  for (const auto& e : g.edges()) {
    EXPECT_NE(tmpl_.node(e.to).role, Role::kSensor);
    EXPECT_NE(tmpl_.node(e.from).role, Role::kSink);
  }
  EXPECT_NE(g.find_edge(0, 1), -1);  // sensor -> relay
  EXPECT_NE(g.find_edge(1, 2), -1);  // relay -> sink
  EXPECT_EQ(g.find_edge(2, 1), -1);  // sink never transmits
  EXPECT_EQ(g.find_edge(1, 0), -1);  // nothing back to a sensor

  // A draconian cutoff removes every edge.
  tmpl_.set_link_cutoff_rss_dbm(100.0);
  EXPECT_EQ(tmpl_.build_graph().num_edges(), 0);
}

TEST_F(TemplateTest, BestRssUsesFixedComponentWhenPresent) {
  const int weak = *lib_.find("relay-basic");   // 0 dBm, 0 dBi
  const int strong = *lib_.find("relay-pa-ant");  // 4.5 dBm, 3 dBi
  tmpl_.add_node({"a", {0, 0}, Role::kRelay, NodeKind::kCandidate, weak});
  tmpl_.add_node({"b", {10, 0}, Role::kRelay, NodeKind::kCandidate, std::nullopt});
  tmpl_.add_node({"c", {0, 10}, Role::kRelay, NodeKind::kCandidate, strong});
  // From fixed weak node: EIRP 0; from free node: best relay EIRP 7.5.
  const double pl = tmpl_.path_loss_db(0, 1);
  EXPECT_NEAR(tmpl_.best_rss_dbm(0, 1), 0.0 + 3.0 - pl, 1e-9);  // rx best gain 3
  EXPECT_NEAR(tmpl_.best_rss_dbm(1, 0), 7.5 + 0.0 - pl, 1e-9);  // rx fixed gain 0
  EXPECT_NEAR(tmpl_.best_rss_dbm(1, 2), 7.5 + 3.0 - tmpl_.path_loss_db(1, 2), 1e-9);
}

TEST_F(TemplateTest, NodesWithRole) {
  tmpl_.add_node({"s", {0, 0}, Role::kSensor, NodeKind::kFixed, std::nullopt});
  tmpl_.add_node({"a1", {5, 0}, Role::kAnchor, NodeKind::kCandidate, std::nullopt});
  tmpl_.add_node({"a2", {9, 0}, Role::kAnchor, NodeKind::kCandidate, std::nullopt});
  EXPECT_EQ(tmpl_.nodes_with_role(Role::kAnchor).size(), 2u);
  EXPECT_EQ(tmpl_.nodes_with_role(Role::kSink).size(), 0u);
}

}  // namespace
}  // namespace wnet::archex
