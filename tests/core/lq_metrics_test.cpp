#include <gtest/gtest.h>

#include "channel/link_metrics.h"
#include "channel/propagation.h"
#include "core/explorer.h"
#include "core/solution.h"
#include "core/spec/parser.h"

namespace wnet::archex {
namespace {

TEST(InverseBer, RoundTripsThroughBerCurve) {
  for (const double target : {1e-3, 1e-5, 1e-7}) {
    const double snr = channel::snr_for_ber(channel::Modulation::kQpsk, target);
    EXPECT_LE(channel::bit_error_rate(channel::Modulation::kQpsk, snr), target * 1.001);
    // Slightly below the threshold the BER must exceed the target.
    EXPECT_GT(channel::bit_error_rate(channel::Modulation::kQpsk, snr - 0.01), target);
  }
  // Tighter targets need more SNR; FSK needs more than QPSK.
  EXPECT_GT(channel::snr_for_ber(channel::Modulation::kQpsk, 1e-7),
            channel::snr_for_ber(channel::Modulation::kQpsk, 1e-3));
  EXPECT_GT(channel::snr_for_ber(channel::Modulation::kFsk, 1e-5),
            channel::snr_for_ber(channel::Modulation::kQpsk, 1e-5));
  EXPECT_THROW((void)channel::snr_for_ber(channel::Modulation::kQpsk, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)channel::snr_for_ber(channel::Modulation::kQpsk, 0.6),
               std::invalid_argument);
}

class LqMetricScenario : public ::testing::Test {
 protected:
  LqMetricScenario() : model_(2.4e9, 2.2), lib_(make_reference_library()), tmpl_(model_, lib_) {
    tmpl_.add_node({"s0", {0, 5}, Role::kSensor, NodeKind::kFixed, std::nullopt});
    tmpl_.add_node({"sink", {40, 5}, Role::kSink, NodeKind::kFixed, std::nullopt});
    for (int i = 0; i < 4; ++i) {
      tmpl_.add_node({"r" + std::to_string(i), {8.0 + 8.0 * i, 5.0}, Role::kRelay,
                      NodeKind::kCandidate, std::nullopt});
    }
  }

  channel::LogDistanceModel model_;
  ComponentLibrary lib_;
  NetworkTemplate tmpl_;
};

TEST_F(LqMetricScenario, BerBoundConvertsToRssFloor) {
  Specification spec;
  spec.link_quality.max_ber = 1e-6;
  const auto floor = spec.min_rss_dbm();
  ASSERT_TRUE(floor.has_value());
  EXPECT_NEAR(*floor,
              channel::snr_for_ber(channel::Modulation::kQpsk, 1e-6) - 100.0, 1e-9);
}

TEST_F(LqMetricScenario, BerBoundDrivesExplorationLikeEquivalentSnr) {
  Specification ber_spec;
  ber_spec.objective = {1.0, 0.0, 0.0};
  RouteRequirement r;
  r.source = 0;
  r.dest = 1;
  ber_spec.routes.push_back(r);
  ber_spec.link_quality.max_ber = 1e-9;

  Specification snr_spec = ber_spec;
  snr_spec.link_quality = {};
  snr_spec.link_quality.min_snr_db =
      channel::snr_for_ber(channel::Modulation::kQpsk, 1e-9);

  Explorer ex_ber(tmpl_, ber_spec);
  Explorer ex_snr(tmpl_, snr_spec);
  const auto rb = ex_ber.explore();
  const auto rs = ex_snr.explore();
  ASSERT_TRUE(rb.has_solution());
  ASSERT_TRUE(rs.has_solution());
  EXPECT_NEAR(rb.objective, rs.objective, 1e-6);
  const auto rep = verify_architecture(rb.architecture, tmpl_, ber_spec);
  EXPECT_TRUE(rep.ok) << (rep.violations.empty() ? "" : rep.violations[0]);
}

TEST_F(LqMetricScenario, CsmaLifetimeConstraintBitesHarder) {
  Specification spec;
  spec.objective = {1.0, 0.0, 0.0};
  RouteRequirement r;
  r.source = 0;
  r.dest = 1;
  spec.routes.push_back(r);
  spec.link_quality.min_snr_db = 20.0;
  spec.lifetime = LifetimeRequirement{5.0, 3000.0};

  Explorer ex(tmpl_, spec);
  const auto tdma_run = ex.explore();
  ASSERT_TRUE(tdma_run.has_solution());

  // CSMA with a heavy idle-listening duty makes the 5-year bound
  // unattainable on this battery: the model must come back infeasible.
  spec.radio.mac = RadioConfig::MacProtocol::kCsma;
  spec.radio.csma.idle_listen_duty = 0.5;
  Explorer ex_csma(tmpl_, spec);
  const auto csma_run = ex_csma.explore();
  EXPECT_FALSE(csma_run.has_solution());

  // A light duty cycle is workable again, at equal or higher cost.
  spec.radio.csma.idle_listen_duty = 0.0005;
  Explorer ex_light(tmpl_, spec);
  const auto light_run = ex_light.explore();
  ASSERT_TRUE(light_run.has_solution()) << milp::to_string(light_run.status);
  EXPECT_GE(light_run.objective, tdma_run.objective - 1e-9);
}

TEST_F(LqMetricScenario, SpecParserAcceptsNewPatterns) {
  const auto spec = spec::parse(R"(
p = has_path(s0, sink)
max_bit_error_rate(0.000001)
protocol_csma(0.01, 3)
)",
                                tmpl_);
  ASSERT_TRUE(spec.link_quality.max_ber.has_value());
  EXPECT_DOUBLE_EQ(*spec.link_quality.max_ber, 1e-6);
  EXPECT_EQ(spec.radio.mac, RadioConfig::MacProtocol::kCsma);
  EXPECT_DOUBLE_EQ(spec.radio.csma.idle_listen_duty, 0.01);
  EXPECT_DOUBLE_EQ(spec.radio.csma.mean_backoff_slots, 3.0);
  EXPECT_THROW(spec::parse("max_bit_error_rate(0.7)\n", tmpl_), std::runtime_error);
  EXPECT_THROW(spec::parse("protocol_csma()\n", tmpl_), std::runtime_error);
}

}  // namespace
}  // namespace wnet::archex
