#include "core/workloads/scenarios.h"

#include <gtest/gtest.h>

#include "core/explorer.h"
#include "core/solution.h"

namespace wnet::archex::workloads {
namespace {

TEST(Workloads, DataCollectionDefaultMatchesPaperShape) {
  const auto sc = make_data_collection();
  // 35 sensors + 1 sink + 100 relay candidates = 136 (paper Sec. 4.1).
  EXPECT_EQ(sc->tmpl->num_nodes(), 136);
  EXPECT_EQ(sc->spec.routes.size(), 35u);
  for (const auto& r : sc->spec.routes) EXPECT_EQ(r.replicas, 2);
  EXPECT_DOUBLE_EQ(*sc->spec.link_quality.min_snr_db, 20.0);
  ASSERT_TRUE(sc->spec.lifetime.has_value());
  EXPECT_DOUBLE_EQ(sc->spec.lifetime->min_years, 5.0);
  EXPECT_EQ(sc->spec.radio.tdma.slots_per_superframe, 16);
  EXPECT_EQ(sc->spec.radio.tdma.packet_bytes, 50);
}

TEST(Workloads, DataCollectionIsDeterministicPerSeed) {
  DataCollectionConfig cfg;
  cfg.sensors = 5;
  cfg.relay_grid_x = 4;
  cfg.relay_grid_y = 3;
  const auto a = make_data_collection(cfg);
  const auto b = make_data_collection(cfg);
  ASSERT_EQ(a->tmpl->num_nodes(), b->tmpl->num_nodes());
  for (int i = 0; i < a->tmpl->num_nodes(); ++i) {
    EXPECT_EQ(a->tmpl->node(i).position, b->tmpl->node(i).position);
  }
  cfg.seed = 99;
  const auto c = make_data_collection(cfg);
  bool any_differs = false;
  for (int i = 0; i < a->tmpl->num_nodes(); ++i) {
    if (!(a->tmpl->node(i).position == c->tmpl->node(i).position)) any_differs = true;
  }
  EXPECT_TRUE(any_differs);
}

TEST(Workloads, LocalizationDefaultMatchesPaperShape) {
  const auto sc = make_localization();
  // 150 candidate anchors, 135 evaluation points (paper Sec. 4.2).
  EXPECT_EQ(sc->tmpl->num_nodes(), 150);
  ASSERT_TRUE(sc->spec.localization.has_value());
  EXPECT_EQ(sc->spec.localization->eval_points.size(), 135u);
  EXPECT_EQ(sc->spec.localization->min_anchors, 3);
  EXPECT_DOUBLE_EQ(sc->spec.localization->min_rss_dbm, -80.0);
  EXPECT_TRUE(sc->spec.routes.empty());  // star topology: no multihop routes
}

TEST(Workloads, ScalableRespectsNodeBudget) {
  for (const auto [nodes, devices] : {std::pair{50, 20}, std::pair{100, 50}}) {
    ScalableConfig cfg;
    cfg.total_nodes = nodes;
    cfg.end_devices = devices;
    const auto sc = make_scalable(cfg);
    EXPECT_EQ(sc->tmpl->num_nodes(), nodes) << nodes;
    EXPECT_EQ(static_cast<int>(sc->spec.routes.size()), devices);
  }
}

TEST(Workloads, ScalableRejectsImpossibleSplit) {
  ScalableConfig cfg;
  cfg.total_nodes = 10;
  cfg.end_devices = 10;
  EXPECT_THROW(make_scalable(cfg), std::invalid_argument);
}

TEST(Workloads, SmallScalableInstanceSolvesEndToEnd) {
  ScalableConfig cfg;
  cfg.total_nodes = 18;
  cfg.end_devices = 4;
  const auto sc = make_scalable(cfg);
  Explorer ex(*sc->tmpl, sc->spec);
  EncoderOptions eo;
  eo.k_star = 5;
  milp::SolveOptions so;
  so.time_limit_s = 60.0;
  const auto res = ex.explore(eo, so);
  ASSERT_TRUE(res.has_solution()) << to_string(res.status);
  const auto rep = verify_architecture(res.architecture, *sc->tmpl, sc->spec);
  EXPECT_TRUE(rep.ok) << (rep.violations.empty() ? "" : rep.violations[0]);
  EXPECT_GT(res.architecture.total_cost_usd, 0.0);
  EXPECT_GE(res.architecture.min_lifetime_years, 5.0 - 1e-6);
}

TEST(Workloads, SmallLocalizationInstanceSolvesEndToEnd) {
  LocalizationConfig cfg;
  cfg.anchor_grid_x = 5;
  cfg.anchor_grid_y = 3;
  cfg.eval_grid_x = 4;
  cfg.eval_grid_y = 3;
  cfg.width_m = 40;
  cfg.height_m = 24;
  const auto sc = make_localization(cfg);
  Explorer ex(*sc->tmpl, sc->spec);
  EncoderOptions eo;
  eo.loc_candidates = 8;
  milp::SolveOptions so;
  so.time_limit_s = 60.0;
  const auto res = ex.explore(eo, so);
  ASSERT_TRUE(res.has_solution()) << to_string(res.status);
  const auto rep = verify_architecture(res.architecture, *sc->tmpl, sc->spec);
  EXPECT_TRUE(rep.ok) << (rep.violations.empty() ? "" : rep.violations[0]);
  EXPECT_GE(res.architecture.avg_reachable_anchors, 3.0);
}

}  // namespace
}  // namespace wnet::archex::workloads
