#include "core/analysis.h"

#include <gtest/gtest.h>

#include "channel/propagation.h"
#include "core/explorer.h"

namespace wnet::archex {
namespace {

class AnalysisScenario : public ::testing::Test {
 protected:
  AnalysisScenario() : model_(2.4e9, 2.2), lib_(make_reference_library()), tmpl_(model_, lib_) {
    tmpl_.add_node({"s0", {0, 5}, Role::kSensor, NodeKind::kFixed, std::nullopt});
    tmpl_.add_node({"s1", {0, 9}, Role::kSensor, NodeKind::kFixed, std::nullopt});
    tmpl_.add_node({"sink", {40, 5}, Role::kSink, NodeKind::kFixed, std::nullopt});
    for (int i = 0; i < 4; ++i) {
      tmpl_.add_node({"r" + std::to_string(i), {8.0 + 8.0 * i, 5.0}, Role::kRelay,
                      NodeKind::kCandidate, std::nullopt});
    }
    spec_.link_quality.min_snr_db = 32.0;
    spec_.objective = {1.0, 0.0, 0.0};
    for (int s = 0; s < 2; ++s) {
      RouteRequirement r;
      r.source = s;
      r.dest = 2;
      spec_.routes.push_back(r);
    }
  }

  channel::LogDistanceModel model_;
  ComponentLibrary lib_;
  NetworkTemplate tmpl_;
  Specification spec_;
};

TEST_F(AnalysisScenario, StatsConsistentWithArchitecture) {
  Explorer ex(tmpl_, spec_);
  milp::SolveOptions so;
  so.time_limit_s = 60.0;
  const auto res = ex.explore({}, so);
  ASSERT_TRUE(res.has_solution()) << milp::to_string(res.status);
  const auto st = analyze_architecture(res.architecture, tmpl_, spec_);

  // Histogram covers every route exactly once.
  int routes = 0;
  for (const auto& [hops, count] : st.hop_histogram) {
    EXPECT_GE(hops, 1);
    routes += count;
  }
  EXPECT_EQ(routes, static_cast<int>(res.architecture.routes.size()));

  // Every active link meets the LQ floor: min margin >= 0.
  EXPECT_GE(st.min_link_margin_db, -1e-6);
  EXPECT_GE(st.mean_link_margin_db, st.min_link_margin_db);

  // Component mix sums to deployed node count; cost matches.
  int mix = 0;
  for (const auto& [name, count] : st.component_mix) mix += count;
  EXPECT_EQ(mix, res.architecture.num_nodes());
  EXPECT_DOUBLE_EQ(st.total_cost_usd, res.architecture.total_cost_usd);

  // Some node transmits at least one packet per cycle.
  EXPECT_GE(st.max_tx_load_packets, 1);
  EXPECT_GE(st.bottleneck_node, 0);

  const std::string text = to_string(st);
  EXPECT_NE(text.find("hops:"), std::string::npos);
  EXPECT_NE(text.find("link margin"), std::string::npos);
}

TEST_F(AnalysisScenario, EmptyArchitectureYieldsZeros) {
  NetworkArchitecture empty;
  const auto st = analyze_architecture(empty, tmpl_, spec_);
  EXPECT_TRUE(st.hop_histogram.empty());
  EXPECT_DOUBLE_EQ(st.mean_link_margin_db, 0.0);
  EXPECT_EQ(st.max_tx_load_packets, 0);
  EXPECT_EQ(st.relays_deployed, 0);
}

}  // namespace
}  // namespace wnet::archex
