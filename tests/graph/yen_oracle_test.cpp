// Oracle cross-check for Yen's algorithm (paper Algorithm 1's path
// generator): a brute-force DFS enumerates *all* simple paths of small
// random digraphs, and yen_k_shortest must reproduce exactly the k
// cheapest of them, in cost order, loopless and distinct — for k below,
// at, and above the true path count.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <vector>

#include "graph/connectivity.h"
#include "graph/digraph.h"
#include "graph/yen.h"

namespace wnet::graph {
namespace {

/// All simple paths src -> dst by exhaustive DFS. Costs only — the oracle
/// ranks by total weight, which is the one thing Yen must agree on.
void dfs_all_paths(const Digraph& g, NodeId v, NodeId dst, std::vector<char>& on_path,
                   double cost, std::vector<double>& out) {
  if (v == dst) {
    out.push_back(cost);
    return;
  }
  on_path[static_cast<size_t>(v)] = 1;
  for (const EdgeId e : g.out_edges(v)) {
    const Edge& ed = g.edge(e);
    if (ed.weight == kInfWeight || on_path[static_cast<size_t>(ed.to)]) continue;
    dfs_all_paths(g, ed.to, dst, on_path, cost + ed.weight, out);
  }
  on_path[static_cast<size_t>(v)] = 0;
}

std::vector<double> all_simple_path_costs(const Digraph& g, NodeId src, NodeId dst) {
  std::vector<double> costs;
  std::vector<char> on_path(static_cast<size_t>(g.num_nodes()), 0);
  dfs_all_paths(g, src, dst, on_path, 0.0, costs);
  std::sort(costs.begin(), costs.end());
  return costs;
}

Digraph random_digraph(std::mt19937& rng, int n, double edge_prob) {
  Digraph g(n);
  std::uniform_real_distribution<double> w(0.5, 4.0);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j && coin(rng) < edge_prob) g.add_edge(i, j, w(rng));
    }
  }
  return g;
}

TEST(YenOracle, MatchesBruteForceOnRandomDigraphs) {
  std::mt19937 rng(2026);
  int checked = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 4 + static_cast<int>(rng() % 5);  // 4..8 nodes
    const Digraph g = random_digraph(rng, n, 0.4);
    const NodeId src = 0;
    const NodeId dst = n - 1;

    const auto oracle = all_simple_path_costs(g, src, dst);
    if (oracle.size() > 400) continue;  // keep the exhaustive side cheap

    // Ask for more paths than exist: Yen must find every one, no phantoms.
    const int count = static_cast<int>(oracle.size());
    const auto paths = yen_k_shortest(g, src, dst, count + 5);
    ASSERT_EQ(paths.size(), oracle.size()) << "trial " << trial;

    std::set<std::vector<NodeId>> seen;
    for (size_t i = 0; i < paths.size(); ++i) {
      EXPECT_TRUE(is_valid_simple_path(g, paths[i])) << "trial " << trial << " path " << i;
      EXPECT_EQ(paths[i].nodes.front(), src);
      EXPECT_EQ(paths[i].nodes.back(), dst);
      EXPECT_TRUE(seen.insert(paths[i].nodes).second)
          << "trial " << trial << ": duplicate path at rank " << i;
      // Cost order matches the oracle's sorted enumeration exactly.
      EXPECT_NEAR(paths[i].cost, oracle[i], 1e-9) << "trial " << trial << " rank " << i;
    }

    // Truncated queries return precisely the k cheapest.
    if (count > 2) {
      const int k = count / 2;
      const auto prefix = yen_k_shortest(g, src, dst, k);
      ASSERT_EQ(prefix.size(), static_cast<size_t>(k));
      for (int i = 0; i < k; ++i) {
        EXPECT_NEAR(prefix[static_cast<size_t>(i)].cost, oracle[static_cast<size_t>(i)], 1e-9);
      }
    }
    if (!oracle.empty()) ++checked;
  }
  // The generator's density guarantees plenty of connected instances; if
  // this ever fires, the oracle stopped exercising anything.
  EXPECT_GE(checked, 25);
}

TEST(YenOracle, DenseGraphFullEnumeration) {
  // Complete digraph on 6 nodes: 65 simple paths between any ordered pair.
  // A closed form worth pinning: sum_{k=0..4} 4!/(4-k)!.
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> w(1.0, 2.0);
  Digraph g(6);
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) {
      if (i != j) g.add_edge(i, j, w(rng));
    }
  }
  const auto oracle = all_simple_path_costs(g, 0, 5);
  ASSERT_EQ(oracle.size(), 65u);
  const auto paths = yen_k_shortest(g, 0, 5, 100);
  ASSERT_EQ(paths.size(), 65u);
  for (size_t i = 0; i < paths.size(); ++i) {
    EXPECT_TRUE(is_valid_simple_path(g, paths[i]));
    EXPECT_NEAR(paths[i].cost, oracle[i], 1e-9) << "rank " << i;
  }
}

}  // namespace
}  // namespace wnet::graph
