// Resumable-Yen contract: a YenEnumerator extended K -> K' in any number of
// batches must return byte-identical paths (order, nodes, edges, costs) to a
// fresh yen_k_shortest(K') run. This is what lets the incremental encoder
// keep selector variables stable across K* ladder rungs.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "graph/digraph.h"
#include "graph/yen.h"

namespace wnet::graph {
namespace {

Digraph random_digraph(std::mt19937& rng, int n, double edge_prob) {
  Digraph g(n);
  std::uniform_real_distribution<double> w(0.5, 4.0);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j && coin(rng) < edge_prob) g.add_edge(i, j, w(rng));
    }
  }
  return g;
}

void expect_identical(const std::vector<Path>& a, const std::vector<Path>& b, int trial) {
  ASSERT_EQ(a.size(), b.size()) << "trial " << trial;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].nodes, b[i].nodes) << "trial " << trial << " rank " << i;
    EXPECT_EQ(a[i].edges, b[i].edges) << "trial " << trial << " rank " << i;
    // Bitwise equality: both sides run the exact same arithmetic.
    EXPECT_EQ(a[i].cost, b[i].cost) << "trial " << trial << " rank " << i;
  }
}

TEST(YenResume, ResumedBatchesMatchFreshRuns) {
  std::mt19937 rng(41);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 5 + static_cast<int>(rng() % 5);  // 5..9 nodes
    const Digraph g = random_digraph(rng, n, 0.45);
    const NodeId src = 0;
    const NodeId dst = n - 1;

    YenEnumerator en(g, src, dst);
    // Ladder-style widening, including no-op (same k) and k beyond the
    // number of available paths.
    for (const int k : {1, 3, 3, 5, 10, 20, 100}) {
      const std::vector<Path>& resumed = en.next_batch(k);
      const std::vector<Path> fresh = yen_k_shortest(g, src, dst, k);
      expect_identical(resumed, fresh, trial);
    }
  }
}

TEST(YenResume, EarlierBatchIsPrefixOfLaterBatch) {
  std::mt19937 rng(99);
  const Digraph g = random_digraph(rng, 8, 0.5);
  YenEnumerator en(g, 0, 7);
  const std::vector<Path> small = en.next_batch(4);  // copy before extending
  const std::vector<Path>& big = en.next_batch(12);
  ASSERT_LE(small.size(), big.size());
  for (size_t i = 0; i < small.size(); ++i) {
    EXPECT_EQ(small[i].nodes, big[i].nodes) << "rank " << i;
    EXPECT_EQ(small[i].cost, big[i].cost) << "rank " << i;
  }
}

TEST(YenResume, ExhaustionIsStable) {
  // Tiny graph with exactly two simple paths 0->2: direct and via 1.
  Digraph g(3);
  g.add_edge(0, 2, 5.0);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  YenEnumerator en(g, 0, 2);
  EXPECT_EQ(en.next_batch(10).size(), 2u);
  EXPECT_TRUE(en.exhausted());
  // Asking again must not invent paths or disturb the accepted list.
  EXPECT_EQ(en.next_batch(50).size(), 2u);
  EXPECT_EQ(en.accepted()[0].cost, 2.0);
  EXPECT_EQ(en.accepted()[1].cost, 5.0);
}

TEST(YenResume, UnreachableDestination) {
  Digraph g(3);
  g.add_edge(0, 1, 1.0);  // node 2 unreachable
  YenEnumerator en(g, 0, 2);
  EXPECT_TRUE(en.next_batch(5).empty());
  EXPECT_TRUE(en.exhausted());
  EXPECT_TRUE(en.next_batch(5).empty());
}

}  // namespace
}  // namespace wnet::graph
