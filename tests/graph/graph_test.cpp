#include <gtest/gtest.h>

#include <random>

#include "graph/connectivity.h"
#include "graph/dijkstra.h"
#include "graph/digraph.h"
#include "graph/yen.h"

namespace wnet::graph {
namespace {

/// Small diamond: 0 -> {1, 2} -> 3, plus a slow direct edge 0 -> 3.
Digraph diamond() {
  Digraph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 3, 1.0);
  g.add_edge(0, 2, 1.5);
  g.add_edge(2, 3, 1.5);
  g.add_edge(0, 3, 5.0);
  return g;
}

TEST(Digraph, AddAndFindEdges) {
  Digraph g(3);
  const EdgeId e = g.add_edge(0, 1, 2.5);
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.find_edge(0, 1), e);
  EXPECT_EQ(g.find_edge(1, 0), -1);
  EXPECT_DOUBLE_EQ(g.edge(e).weight, 2.5);
  g.set_weight(e, 7.0);
  EXPECT_DOUBLE_EQ(g.edge(e).weight, 7.0);
}

TEST(Digraph, RejectsBadNodeIds) {
  Digraph g(2);
  EXPECT_THROW(g.add_edge(0, 5, 1.0), std::out_of_range);
  EXPECT_THROW(g.add_edge(-1, 0, 1.0), std::out_of_range);
}

TEST(Dijkstra, FindsShortestPath) {
  const Digraph g = diamond();
  const auto p = shortest_path(g, 0, 3);
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(p->cost, 2.0);
  EXPECT_EQ(p->nodes, (std::vector<NodeId>{0, 1, 3}));
  EXPECT_TRUE(is_valid_simple_path(g, *p));
}

TEST(Dijkstra, UnreachableReturnsNullopt) {
  Digraph g(3);
  g.add_edge(0, 1, 1.0);
  EXPECT_FALSE(shortest_path(g, 0, 2).has_value());
}

TEST(Dijkstra, InfiniteWeightMeansRemoved) {
  Digraph g = diamond();
  g.set_weight(0, kInfWeight);  // remove 0->1
  const auto p = shortest_path(g, 0, 3);
  ASSERT_TRUE(p);
  EXPECT_EQ(p->nodes, (std::vector<NodeId>{0, 2, 3}));
}

TEST(Dijkstra, RespectsBannedNodesAndEdges) {
  const Digraph g = diamond();
  std::vector<char> banned_nodes(4, 0);
  banned_nodes[1] = 1;
  DijkstraOptions opts;
  opts.banned_nodes = &banned_nodes;
  auto p = shortest_path(g, 0, 3, opts);
  ASSERT_TRUE(p);
  EXPECT_EQ(p->nodes, (std::vector<NodeId>{0, 2, 3}));

  std::vector<char> banned_edges(static_cast<size_t>(g.num_edges()), 0);
  banned_edges[2] = 1;  // 0->2
  banned_edges[0] = 1;  // 0->1
  DijkstraOptions opts2;
  opts2.banned_edges = &banned_edges;
  p = shortest_path(g, 0, 3, opts2);
  ASSERT_TRUE(p);
  EXPECT_EQ(p->nodes, (std::vector<NodeId>{0, 3}));
}

TEST(Dijkstra, NegativeWeightThrows) {
  Digraph g(2);
  g.add_edge(0, 1, -1.0);
  EXPECT_THROW(shortest_path(g, 0, 1), std::invalid_argument);
}

TEST(Dijkstra, SingleSourceDistances) {
  const Digraph g = diamond();
  const auto d = shortest_distances(g, 0);
  EXPECT_DOUBLE_EQ(d[0], 0.0);
  EXPECT_DOUBLE_EQ(d[1], 1.0);
  EXPECT_DOUBLE_EQ(d[2], 1.5);
  EXPECT_DOUBLE_EQ(d[3], 2.0);
}

TEST(Yen, EnumeratesInCostOrder) {
  const Digraph g = diamond();
  const auto paths = yen_k_shortest(g, 0, 3, 5);
  ASSERT_EQ(paths.size(), 3u);  // only 3 loopless paths exist
  EXPECT_DOUBLE_EQ(paths[0].cost, 2.0);
  EXPECT_DOUBLE_EQ(paths[1].cost, 3.0);
  EXPECT_DOUBLE_EQ(paths[2].cost, 5.0);
  for (const auto& p : paths) EXPECT_TRUE(is_valid_simple_path(g, p));
}

TEST(Yen, KOneIsDijkstra) {
  const Digraph g = diamond();
  const auto paths = yen_k_shortest(g, 0, 3, 1);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].nodes, shortest_path(g, 0, 3)->nodes);
}

TEST(Yen, NoPathsWhenDisconnected) {
  Digraph g(3);
  g.add_edge(0, 1, 1.0);
  EXPECT_TRUE(yen_k_shortest(g, 0, 2, 4).empty());
  EXPECT_TRUE(yen_k_shortest(g, 0, 2, 0).empty());
}

TEST(Yen, PathsAreDistinctAndLoopless) {
  // Grid-ish graph with many routes.
  const int n = 4;
  Digraph g(n * n);
  auto id = [&](int x, int y) { return y * n + x; };
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      if (x + 1 < n) g.add_edge(id(x, y), id(x + 1, y), 1.0 + 0.01 * y);
      if (y + 1 < n) g.add_edge(id(x, y), id(x, y + 1), 1.0 + 0.01 * x);
    }
  }
  const auto paths = yen_k_shortest(g, id(0, 0), id(n - 1, n - 1), 12);
  ASSERT_GE(paths.size(), 10u);
  for (size_t i = 0; i < paths.size(); ++i) {
    EXPECT_TRUE(is_valid_simple_path(g, paths[i])) << i;
    for (size_t j = i + 1; j < paths.size(); ++j) {
      EXPECT_NE(paths[i].nodes, paths[j].nodes) << i << "," << j;
    }
    if (i > 0) EXPECT_GE(paths[i].cost, paths[i - 1].cost - 1e-12);
  }
}

TEST(Yen, RandomGraphsProperty) {
  std::mt19937 rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 12;
    Digraph g(n);
    std::uniform_real_distribution<double> w(0.5, 3.0);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i != j && rng() % 3 == 0) g.add_edge(i, j, w(rng));
      }
    }
    const auto paths = yen_k_shortest(g, 0, n - 1, 8);
    for (size_t i = 0; i < paths.size(); ++i) {
      EXPECT_TRUE(is_valid_simple_path(g, paths[i]));
      EXPECT_EQ(paths[i].nodes.front(), 0);
      EXPECT_EQ(paths[i].nodes.back(), n - 1);
      if (i > 0) EXPECT_GE(paths[i].cost, paths[i - 1].cost - 1e-12);
    }
  }
}

TEST(Connectivity, ReachabilityAndValidation) {
  Digraph g(5);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  g.add_edge(3, 4, 1);
  EXPECT_TRUE(is_reachable(g, 0, 2));
  EXPECT_FALSE(is_reachable(g, 0, 3));
  EXPECT_FALSE(is_reachable(g, 2, 0));

  Path good;
  good.nodes = {0, 1, 2};
  good.edges = {0, 1};
  EXPECT_TRUE(is_valid_simple_path(g, good));

  Path loop;
  loop.nodes = {0, 1, 0};
  loop.edges = {0, 0};
  EXPECT_FALSE(is_valid_simple_path(g, loop));

  Path mismatched;
  mismatched.nodes = {0, 1, 2};
  mismatched.edges = {0, 2};  // edge 2 is 3->4
  EXPECT_FALSE(is_valid_simple_path(g, mismatched));
}

TEST(Connectivity, IncidenceMatrixSigns) {
  Digraph g(3);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  const auto c = incidence_matrix(g);
  EXPECT_EQ(c[0][0], 1);
  EXPECT_EQ(c[1][0], -1);
  EXPECT_EQ(c[1][1], 1);
  EXPECT_EQ(c[2][1], -1);
  EXPECT_EQ(c[0][1], 0);
}

TEST(PathUtils, SharedEdgesAndDisjointness) {
  Digraph g(4);
  const EdgeId a = g.add_edge(0, 1, 1);
  const EdgeId b = g.add_edge(1, 2, 1);
  const EdgeId c = g.add_edge(0, 2, 1);
  Path p1{{0, 1, 2}, {a, b}, 2.0};
  Path p2{{0, 2}, {c}, 1.0};
  Path p3{{0, 1, 2}, {a, b}, 2.0};
  EXPECT_TRUE(edge_disjoint(p1, p2));
  EXPECT_EQ(shared_edges(p1, p3), 2);
}

}  // namespace
}  // namespace wnet::graph
