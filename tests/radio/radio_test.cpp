#include <gtest/gtest.h>

#include "radio/energy.h"
#include "radio/tdma.h"

namespace wnet::radio {
namespace {

TEST(Tdma, DerivedQuantities) {
  TdmaConfig cfg;  // paper defaults: 16 x 1 ms slots, 50 B @ 250 kbps, 30 s
  EXPECT_DOUBLE_EQ(cfg.superframe_s(), 0.016);
  EXPECT_DOUBLE_EQ(cfg.packet_airtime_s(), 50 * 8.0 / 250e3);  // 1.6 ms
  EXPECT_EQ(cfg.slots_per_packet(), 2);
  EXPECT_NO_THROW(cfg.validate());
}

TEST(Tdma, ValidationCatchesNonsense) {
  TdmaConfig cfg;
  cfg.slots_per_superframe = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.report_period_s = 1e-6;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.packet_bytes = -1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.bitrate_bps = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Energy, SleepOnlyNodeChargeFloor) {
  const TdmaConfig tdma;
  const DeviceCurrents c{30, 25, 8, 0.01};
  const NodeTraffic idle{0, 0, 1.0};
  // Pure sleep: 0.01 mA * 30 s.
  EXPECT_NEAR(charge_per_cycle_mas(c, idle, tdma), 0.01 * 30.0, 1e-12);
}

TEST(Energy, TrafficIncreasesCharge) {
  const TdmaConfig tdma;
  const DeviceCurrents c{30, 25, 8, 0.01};
  const double idle = charge_per_cycle_mas(c, {0, 0, 1.0}, tdma);
  const double one_tx = charge_per_cycle_mas(c, {1, 0, 1.0}, tdma);
  const double one_rx = charge_per_cycle_mas(c, {0, 1, 1.0}, tdma);
  EXPECT_GT(one_tx, idle);
  EXPECT_GT(one_rx, idle);
  // TX draws more than RX for these currents.
  EXPECT_GT(one_tx, one_rx);
  // Retransmissions scale the radio term.
  const double retry = charge_per_cycle_mas(c, {1, 0, 2.0}, tdma);
  EXPECT_GT(retry, one_tx);
}

TEST(Energy, RejectsInvalidTraffic) {
  const TdmaConfig tdma;
  const DeviceCurrents c;
  EXPECT_THROW(charge_per_cycle_mas(c, {-1, 0, 1.0}, tdma), std::invalid_argument);
  EXPECT_THROW(charge_per_cycle_mas(c, {0, 0, 0.5}, tdma), std::invalid_argument);
}

TEST(Energy, LifetimeInRealisticBallpark) {
  // A leaf sensor sending one packet per 30 s on 2xAA should live for
  // years — the regime the paper's Table 1 reports (5-12 y).
  const TdmaConfig tdma;
  const DeviceCurrents c{29, 24, 8, 0.004};
  const double years = lifetime_years(3000.0, c, {1, 0, 1.0}, tdma);
  EXPECT_GT(years, 4.0);
  EXPECT_LT(years, 80.0);
  // A busy relay forwarding 20 sensors lives much shorter.
  const double busy = lifetime_years(3000.0, c, {20, 20, 1.0}, tdma);
  EXPECT_LT(busy, years / 4.0);
  EXPECT_GT(busy, 0.1);
}

TEST(Energy, LifetimeRejectsBadBattery) {
  const TdmaConfig tdma;
  EXPECT_THROW(lifetime_years(0.0, {}, {0, 0, 1.0}, tdma), std::invalid_argument);
}

TEST(Energy, AverageCurrentConsistentWithCharge) {
  const TdmaConfig tdma;
  const DeviceCurrents c{30, 25, 8, 0.01};
  const NodeTraffic t{3, 2, 1.2};
  EXPECT_NEAR(average_current_ma(c, t, tdma) * tdma.report_period_s,
              charge_per_cycle_mas(c, t, tdma), 1e-12);
}

}  // namespace
}  // namespace wnet::radio
