#include "radio/csma.h"

#include <gtest/gtest.h>

namespace wnet::radio {
namespace {

TEST(Csma, IdleListeningDominatesSleep) {
  const TdmaConfig timing;
  const DeviceCurrents c{30, 25, 8, 0.005};
  const CsmaConfig csma{0.02, 2.0};
  const NodeTraffic idle{0, 0, 1.0};
  const double q_tdma = charge_per_cycle_mas(c, idle, timing);
  const double q_csma = charge_per_cycle_csma_mas(c, idle, timing, csma);
  // Duty-cycled listening burns far more than pure sleep.
  EXPECT_GT(q_csma, q_tdma * 5.0);
  // Roughly rx * duty * period.
  EXPECT_NEAR(q_csma, 25.0 * 0.02 * 30.0 + 0.005 * 0.98 * 30.0, 1e-9);
}

TEST(Csma, BackoffChargesTransmitters) {
  const TdmaConfig timing;
  const DeviceCurrents c{30, 25, 8, 0.005};
  const CsmaConfig no_backoff{0.0, 0.0};
  const CsmaConfig heavy_backoff{0.0, 10.0};
  const NodeTraffic t{5, 0, 1.0};
  EXPECT_GT(charge_per_cycle_csma_mas(c, t, timing, heavy_backoff),
            charge_per_cycle_csma_mas(c, t, timing, no_backoff));
  // Receivers are unaffected by the backoff parameter.
  const NodeTraffic rx_only{0, 5, 1.0};
  EXPECT_DOUBLE_EQ(charge_per_cycle_csma_mas(c, rx_only, timing, heavy_backoff),
                   charge_per_cycle_csma_mas(c, rx_only, timing, no_backoff));
}

TEST(Csma, LifetimeShorterThanTdma) {
  const TdmaConfig timing;
  const DeviceCurrents c{29, 24, 8, 0.004};
  const CsmaConfig csma{0.01, 2.0};
  const NodeTraffic t{2, 1, 1.0};
  EXPECT_LT(lifetime_years_csma(3000.0, c, t, timing, csma),
            lifetime_years(3000.0, c, t, timing));
}

TEST(Csma, RejectsBadArguments) {
  const TdmaConfig timing;
  const DeviceCurrents c;
  EXPECT_THROW(charge_per_cycle_csma_mas(c, {-1, 0, 1.0}, timing, {}), std::invalid_argument);
  EXPECT_THROW(charge_per_cycle_csma_mas(c, {0, 0, 0.1}, timing, {}), std::invalid_argument);
  EXPECT_THROW(charge_per_cycle_csma_mas(c, {0, 0, 1.0}, timing, {1.5, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(lifetime_years_csma(0.0, c, {0, 0, 1.0}, timing, {}), std::invalid_argument);
}

}  // namespace
}  // namespace wnet::radio
