#include <gtest/gtest.h>

#include <cmath>

#include "milp/simplex/dual_simplex.h"
#include "milp/solver.h"
#include "milp/test_models.h"

namespace wnet::milp {
namespace {

TEST(MipStart, AcceptedAsIncumbent) {
  // Knapsack where the trivial rounding fails but a known-good start exists.
  Model m;
  const Var a = m.add_binary("a");
  const Var b = m.add_binary("b");
  const Var c = m.add_binary("c");
  m.add_le(2.0 * LinExpr(a) + 3.0 * LinExpr(b) + LinExpr(c), 5.0);
  m.minimize(-5.0 * LinExpr(a) - 4.0 * LinExpr(b) - 3.0 * LinExpr(c));
  SolveOptions opts;
  opts.mip_start = {1.0, 1.0, 0.0};  // value 9, feasible
  opts.node_limit = 0;               // no search at all: only root heuristics
  opts.root_dive = false;
  const auto res = solve(m, opts);
  ASSERT_TRUE(res.has_solution());
  EXPECT_LE(res.objective, -9.0 + 1e-9);
}

TEST(MipStart, InfeasibleStartIgnored) {
  Model m;
  const Var a = m.add_binary("a");
  m.add_le(LinExpr(a), 0.0);
  m.minimize(-1.0 * LinExpr(a));
  SolveOptions opts;
  opts.mip_start = {1.0};  // violates a <= 0
  const auto res = solve(m, opts);
  ASSERT_EQ(res.status, SolveStatus::kOptimal);
  EXPECT_NEAR(res.objective, 0.0, 1e-9);
  EXPECT_NEAR(res.x[0], 0.0, 1e-9);
}

TEST(DualSimplexResolve, TracksBoundChanges) {
  Model m;
  const Var x = m.add_continuous("x", 0.0, 3.0);
  const Var y = m.add_continuous("y", 0.0, 2.0);
  m.add_le(LinExpr(x) + LinExpr(y), 4.0);
  m.minimize(-1.0 * LinExpr(x) - 2.0 * LinExpr(y));
  simplex::StandardLp lp(m);
  simplex::DualSimplex ds(lp);
  auto r1 = ds.solve();
  ASSERT_EQ(r1.status, simplex::LpStatus::kOptimal);
  EXPECT_NEAR(r1.objective, -6.0, 1e-8);

  lp.set_bounds(0, 0.0, 1.0);
  auto r2 = ds.resolve();
  ASSERT_EQ(r2.status, simplex::LpStatus::kOptimal);
  EXPECT_NEAR(r2.objective, -5.0, 1e-8);

  lp.set_bounds(0, 0.0, 3.0);
  auto r3 = ds.resolve();
  ASSERT_EQ(r3.status, simplex::LpStatus::kOptimal);
  EXPECT_NEAR(r3.objective, -6.0, 1e-8);
}

TEST(DualSimplexResolve, DetectsInfeasibilityAfterTightening) {
  Model m;
  const Var x = m.add_continuous("x", 0.0, 10.0);
  m.add_ge(LinExpr(x), 5.0);
  m.minimize(LinExpr(x));
  simplex::StandardLp lp(m);
  simplex::DualSimplex ds(lp);
  ASSERT_EQ(ds.solve().status, simplex::LpStatus::kOptimal);
  lp.set_bounds(0, 0.0, 4.0);
  EXPECT_EQ(ds.resolve().status, simplex::LpStatus::kPrimalInfeasible);
}

TEST(DualSimplexRowAppend, StaleBasisExtendsAcrossAppendedRow) {
  // A basis recorded before a row append is too short for the grown LP.
  // Extended the way the solver's separation path extends it — the new
  // row's slack basic in its own row — it must stay a valid warm start
  // and land on the same optimum as a cold solve of the grown LP.
  Model m;
  const Var x = m.add_continuous("x", 0.0, 3.0);
  const Var y = m.add_continuous("y", 0.0, 2.0);
  m.add_le(LinExpr(x) + LinExpr(y), 4.0);
  m.minimize(-1.0 * LinExpr(x) - 2.0 * LinExpr(y));
  simplex::StandardLp lp(m);
  {
    simplex::DualSimplex ds(lp);
    ASSERT_EQ(ds.solve().status, simplex::LpStatus::kOptimal);
    simplex::Basis stale = ds.basis();  // m = 1: one basic column
    ASSERT_EQ(stale.basic.size(), 1u);

    // Append x <= 1, which the incumbent optimum (2, 2) violates.
    const int r = lp.add_row({{0, 1.0}}, Sense::kLe, 1.0);
    EXPECT_EQ(r, 1);
    EXPECT_EQ(lp.num_rows(), 2);

    stale.status.resize(static_cast<size_t>(lp.num_cols()), simplex::ColStatus::kBasic);
    stale.basic.push_back(lp.num_structural() + r);

    simplex::DualSimplex warm(lp);  // fresh engine: the old one has stale dims
    const auto wres = warm.solve_from(stale);
    ASSERT_EQ(wres.status, simplex::LpStatus::kOptimal);
    EXPECT_NEAR(wres.objective, -5.0, 1e-8);  // x = 1, y = 2
    EXPECT_NEAR(wres.x[0], 1.0, 1e-8);
    EXPECT_NEAR(wres.x[1], 2.0, 1e-8);
  }
  simplex::DualSimplex cold(lp);
  const auto cres = cold.solve();
  ASSERT_EQ(cres.status, simplex::LpStatus::kOptimal);
  EXPECT_NEAR(cres.objective, -5.0, 1e-8);
}

TEST(WarmStartWithCuts, MidTreeRowAppendKeepsWarmAndColdOptimaEqual) {
  // Lazy separation appends rows mid-tree, invalidating every stored
  // parent basis (they are short for the grown LP). Warm-started and cold
  // solves must still both land on the full model's optimum, and the
  // corpus must actually exercise the combination (warm attempts on a
  // solve that appended cut rows).
  int with_both = 0;
  for (unsigned seed = 301; seed <= 312; ++seed) {
    const Model full = tests::random_model(seed, 10, 2, 6);
    std::vector<bool> dropped(6, false);
    dropped[seed % 6] = true;
    dropped[(seed + 3) % 6] = true;
    const Model relaxed = tests::relax(full, dropped);

    SolveOptions warm;
    warm.cuts.separators.push_back(tests::dropped_row_separator(full, dropped));
    SolveOptions cold = warm;
    cold.warm_start = false;

    const MipResult ref = solve(full);
    const MipResult rw = solve(relaxed, warm);
    const MipResult rc = solve(relaxed, cold);
    ASSERT_EQ(rw.status, ref.status) << "seed " << seed;
    ASSERT_EQ(rc.status, ref.status) << "seed " << seed;
    if (ref.has_solution()) {
      const double tol = 1e-6 * std::max(1.0, std::abs(ref.objective));
      EXPECT_NEAR(rw.objective, ref.objective, tol) << "seed " << seed;
      EXPECT_NEAR(rc.objective, ref.objective, tol) << "seed " << seed;
      EXPECT_TRUE(full.is_feasible(rw.x)) << "seed " << seed;
      EXPECT_TRUE(full.is_feasible(rc.x)) << "seed " << seed;
    }
    EXPECT_EQ(rc.stats.warm_attempts, 0) << "seed " << seed;
    if (rw.stats.cuts_lp_rows > 0 && rw.stats.warm_attempts > 0) ++with_both;
  }
  EXPECT_GT(with_both, 0);
}

TEST(SolverStats, ReportsWork) {
  Model m;
  std::vector<Var> xs;
  for (int i = 0; i < 12; ++i) xs.push_back(m.add_binary("x"));
  for (int r = 0; r < 8; ++r) {
    LinExpr e;
    for (int i = r % 3; i < 12; i += 2) e += (1.0 + (i % 4)) * LinExpr(xs[static_cast<size_t>(i)]);
    m.add_ge(std::move(e), 6.0);
  }
  LinExpr obj;
  for (int i = 0; i < 12; ++i) obj += (1.0 + (i * 7) % 5) * LinExpr(xs[static_cast<size_t>(i)]);
  m.minimize(obj);
  const auto res = solve(m);
  ASSERT_EQ(res.status, SolveStatus::kOptimal);
  EXPECT_GT(res.stats.lp_iterations, 0);
  EXPECT_GE(res.stats.time_s, 0.0);
  EXPECT_GE(res.bound, res.stats.root_bound - 1e-9);
  EXPECT_NEAR(res.bound, res.objective, 1e-6 * std::max(1.0, std::abs(res.objective)));
}

TEST(LpTimeLimit, ExpiresGracefully) {
  // A moderately large LP with a zero time budget must come back quickly
  // with kIterLimit rather than hanging.
  Model m;
  std::vector<Var> xs;
  const int n = 40;
  for (int i = 0; i < n; ++i) xs.push_back(m.add_continuous("x", 0.0, 10.0));
  for (int r = 0; r < n; ++r) {
    LinExpr e;
    for (int i = 0; i < n; ++i) {
      if ((i + r) % 3 == 0) e += (1.0 + (i % 5)) * LinExpr(xs[static_cast<size_t>(i)]);
    }
    m.add_ge(std::move(e), 5.0 + r % 7);
  }
  LinExpr obj;
  for (int i = 0; i < n; ++i) obj += LinExpr(xs[static_cast<size_t>(i)]);
  m.minimize(obj);
  simplex::StandardLp lp(m);
  simplex::LpOptions opts;
  opts.time_limit_s = 0.0;
  simplex::DualSimplex ds(lp, opts);
  const auto res = ds.solve();
  EXPECT_TRUE(res.status == simplex::LpStatus::kIterLimit ||
              res.status == simplex::LpStatus::kOptimal);  // tiny LPs may finish in <64 iters
}

}  // namespace
}  // namespace wnet::milp
