#include <gtest/gtest.h>

#include "milp/simplex/dual_simplex.h"
#include "milp/solver.h"

namespace wnet::milp {
namespace {

TEST(MipStart, AcceptedAsIncumbent) {
  // Knapsack where the trivial rounding fails but a known-good start exists.
  Model m;
  const Var a = m.add_binary("a");
  const Var b = m.add_binary("b");
  const Var c = m.add_binary("c");
  m.add_le(2.0 * LinExpr(a) + 3.0 * LinExpr(b) + LinExpr(c), 5.0);
  m.minimize(-5.0 * LinExpr(a) - 4.0 * LinExpr(b) - 3.0 * LinExpr(c));
  SolveOptions opts;
  opts.mip_start = {1.0, 1.0, 0.0};  // value 9, feasible
  opts.node_limit = 0;               // no search at all: only root heuristics
  opts.root_dive = false;
  const auto res = solve(m, opts);
  ASSERT_TRUE(res.has_solution());
  EXPECT_LE(res.objective, -9.0 + 1e-9);
}

TEST(MipStart, InfeasibleStartIgnored) {
  Model m;
  const Var a = m.add_binary("a");
  m.add_le(LinExpr(a), 0.0);
  m.minimize(-1.0 * LinExpr(a));
  SolveOptions opts;
  opts.mip_start = {1.0};  // violates a <= 0
  const auto res = solve(m, opts);
  ASSERT_EQ(res.status, SolveStatus::kOptimal);
  EXPECT_NEAR(res.objective, 0.0, 1e-9);
  EXPECT_NEAR(res.x[0], 0.0, 1e-9);
}

TEST(DualSimplexResolve, TracksBoundChanges) {
  Model m;
  const Var x = m.add_continuous("x", 0.0, 3.0);
  const Var y = m.add_continuous("y", 0.0, 2.0);
  m.add_le(LinExpr(x) + LinExpr(y), 4.0);
  m.minimize(-1.0 * LinExpr(x) - 2.0 * LinExpr(y));
  simplex::StandardLp lp(m);
  simplex::DualSimplex ds(lp);
  auto r1 = ds.solve();
  ASSERT_EQ(r1.status, simplex::LpStatus::kOptimal);
  EXPECT_NEAR(r1.objective, -6.0, 1e-8);

  lp.set_bounds(0, 0.0, 1.0);
  auto r2 = ds.resolve();
  ASSERT_EQ(r2.status, simplex::LpStatus::kOptimal);
  EXPECT_NEAR(r2.objective, -5.0, 1e-8);

  lp.set_bounds(0, 0.0, 3.0);
  auto r3 = ds.resolve();
  ASSERT_EQ(r3.status, simplex::LpStatus::kOptimal);
  EXPECT_NEAR(r3.objective, -6.0, 1e-8);
}

TEST(DualSimplexResolve, DetectsInfeasibilityAfterTightening) {
  Model m;
  const Var x = m.add_continuous("x", 0.0, 10.0);
  m.add_ge(LinExpr(x), 5.0);
  m.minimize(LinExpr(x));
  simplex::StandardLp lp(m);
  simplex::DualSimplex ds(lp);
  ASSERT_EQ(ds.solve().status, simplex::LpStatus::kOptimal);
  lp.set_bounds(0, 0.0, 4.0);
  EXPECT_EQ(ds.resolve().status, simplex::LpStatus::kPrimalInfeasible);
}

TEST(SolverStats, ReportsWork) {
  Model m;
  std::vector<Var> xs;
  for (int i = 0; i < 12; ++i) xs.push_back(m.add_binary("x"));
  for (int r = 0; r < 8; ++r) {
    LinExpr e;
    for (int i = r % 3; i < 12; i += 2) e += (1.0 + (i % 4)) * LinExpr(xs[static_cast<size_t>(i)]);
    m.add_ge(std::move(e), 6.0);
  }
  LinExpr obj;
  for (int i = 0; i < 12; ++i) obj += (1.0 + (i * 7) % 5) * LinExpr(xs[static_cast<size_t>(i)]);
  m.minimize(obj);
  const auto res = solve(m);
  ASSERT_EQ(res.status, SolveStatus::kOptimal);
  EXPECT_GT(res.stats.lp_iterations, 0);
  EXPECT_GE(res.stats.time_s, 0.0);
  EXPECT_GE(res.bound, res.stats.root_bound - 1e-9);
  EXPECT_NEAR(res.bound, res.objective, 1e-6 * std::max(1.0, std::abs(res.objective)));
}

TEST(LpTimeLimit, ExpiresGracefully) {
  // A moderately large LP with a zero time budget must come back quickly
  // with kIterLimit rather than hanging.
  Model m;
  std::vector<Var> xs;
  const int n = 40;
  for (int i = 0; i < n; ++i) xs.push_back(m.add_continuous("x", 0.0, 10.0));
  for (int r = 0; r < n; ++r) {
    LinExpr e;
    for (int i = 0; i < n; ++i) {
      if ((i + r) % 3 == 0) e += (1.0 + (i % 5)) * LinExpr(xs[static_cast<size_t>(i)]);
    }
    m.add_ge(std::move(e), 5.0 + r % 7);
  }
  LinExpr obj;
  for (int i = 0; i < n; ++i) obj += LinExpr(xs[static_cast<size_t>(i)]);
  m.minimize(obj);
  simplex::StandardLp lp(m);
  simplex::LpOptions opts;
  opts.time_limit_s = 0.0;
  simplex::DualSimplex ds(lp, opts);
  const auto res = ds.solve();
  EXPECT_TRUE(res.status == simplex::LpStatus::kIterLimit ||
              res.status == simplex::LpStatus::kOptimal);  // tiny LPs may finish in <64 iters
}

}  // namespace
}  // namespace wnet::milp
