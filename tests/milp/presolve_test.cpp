#include "milp/presolve.h"

#include <gtest/gtest.h>

#include "milp/solver.h"

namespace wnet::milp {
namespace {

TEST(Presolve, TightensSingletonRow) {
  Model m;
  const Var x = m.add_continuous("x", 0.0, 100.0);
  m.add_le(2.0 * LinExpr(x), 10.0);
  const auto res = presolve(m);
  EXPECT_FALSE(res.proven_infeasible);
  EXPECT_GE(res.bounds_tightened, 1);
  EXPECT_DOUBLE_EQ(m.var(x).ub, 5.0);
}

TEST(Presolve, RoundsIntegerBoundsInward) {
  Model m;
  const Var x = m.add_integer("x", 0, 100);
  m.add_le(2.0 * LinExpr(x), 9.0);  // x <= 4.5 -> 4
  presolve(m);
  EXPECT_DOUBLE_EQ(m.var(x).ub, 4.0);
}

TEST(Presolve, PropagatesAcrossRows) {
  Model m;
  const Var x = m.add_continuous("x", 0.0, 100.0);
  const Var y = m.add_continuous("y", 0.0, 100.0);
  m.add_le(LinExpr(x), 3.0);
  m.add_le(LinExpr(y) - LinExpr(x), 0.0);  // y <= x <= 3
  const auto res = presolve(m);
  EXPECT_FALSE(res.proven_infeasible);
  EXPECT_DOUBLE_EQ(m.var(y).ub, 3.0);
}

TEST(Presolve, DetectsInfeasibility) {
  Model m;
  const Var x = m.add_continuous("x", 0.0, 1.0);
  m.add_ge(LinExpr(x), 5.0);
  const auto res = presolve(m);
  EXPECT_TRUE(res.proven_infeasible);
}

TEST(Presolve, EqualityTightensBothSides) {
  Model m;
  const Var x = m.add_continuous("x", -50.0, 50.0);
  const Var y = m.add_continuous("y", 0.0, 2.0);
  m.add_eq(LinExpr(x) - LinExpr(y), 1.0);  // x = 1 + y in [1, 3]
  presolve(m);
  EXPECT_DOUBLE_EQ(m.var(x).lb, 1.0);
  EXPECT_DOUBLE_EQ(m.var(x).ub, 3.0);
}

TEST(Presolve, PreservesOptimum) {
  // Presolving must not change the optimal value.
  Model m;
  const Var x = m.add_integer("x", 0, 50);
  const Var y = m.add_integer("y", 0, 50);
  m.add_ge(3.0 * LinExpr(x) + 2.0 * LinExpr(y), 12.0);
  m.add_le(LinExpr(x) + LinExpr(y), 30.0);
  m.minimize(LinExpr(x) + LinExpr(y));
  Model pre = m;
  presolve(pre);
  const auto r1 = solve(m);
  const auto r2 = solve(pre);
  ASSERT_EQ(r1.status, SolveStatus::kOptimal);
  ASSERT_EQ(r2.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r1.objective, r2.objective, 1e-6);
}

TEST(Presolve, NoChangeOnAlreadyTightModel) {
  Model m;
  const Var x = m.add_binary("x");
  const Var y = m.add_binary("y");
  m.add_le(LinExpr(x) + LinExpr(y), 2.0);  // redundant
  const auto res = presolve(m);
  EXPECT_EQ(res.bounds_tightened, 0);
}

}  // namespace
}  // namespace wnet::milp
