#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "milp/cuts.h"
#include "milp/model.h"
#include "milp/solver.h"
#include "milp/test_models.h"
#include "milp/tol.h"

namespace wnet::milp {
namespace {

using tests::dropped_row_separator;
using tests::relax;

/// Brute-force scan over every binary assignment of a pure-binary model.
/// Calls `fn(point)` for each point feasible in `full`; returns how many
/// feasible points exist.
template <typename Fn>
long for_each_feasible_point(const Model& full, Fn&& fn) {
  const int n = full.num_vars();
  long feasible = 0;
  std::vector<double> point(static_cast<size_t>(n), 0.0);
  for (long mask = 0; mask < (1L << n); ++mask) {
    for (int j = 0; j < n; ++j) point[static_cast<size_t>(j)] = (mask >> j) & 1 ? 1.0 : 0.0;
    if (!full.is_feasible(point)) continue;
    ++feasible;
    fn(point);
  }
  return feasible;
}

/// The cut-safety oracle over a fuzzed corpus: for 220 seeded pure-binary
/// models, drop a random subset of rows, solve the relaxed skeleton with
/// the dropped-row separator, and then
///   1. pin the lazy solve to the true optimum (independent brute force),
///   2. audit EVERY cut ever pooled — active, pooled, or purged — against
///      EVERY integer point feasible for the full model: a cut that
///      separates a feasible integer point would make the solver wrong by
///      construction, so none may exist.
TEST(CutOracle, NoPooledCutSeparatesAFeasibleIntegerPoint) {
  long corpus_pooled = 0;
  int solves_with_cuts = 0;
  int audited_models = 0;
  for (unsigned seed = 1; seed <= 220; ++seed) {
    const int nb = 6 + static_cast<int>(seed % 5);    // 6..10 binaries
    const int rows = 4 + static_cast<int>(seed % 5);  // 4..8 rows
    const Model full = tests::random_model(seed, nb, /*nc=*/0, rows);

    // Deterministic per-seed drop pattern; always at least one row dropped
    // so every instance exercises separation.
    std::mt19937 rng(seed * 7919u + 13u);
    std::bernoulli_distribution drop(0.5);
    std::vector<bool> dropped(static_cast<size_t>(rows), false);
    bool any = false;
    for (size_t r = 0; r < dropped.size(); ++r) any |= (dropped[r] = drop(rng));
    if (!any) dropped[0] = true;

    const Model relaxed = relax(full, dropped);

    CutPool pool;
    SolveOptions lazy;
    lazy.cuts.separators.push_back(dropped_row_separator(full, dropped));
    lazy.cuts.shared_pool = &pool;
    const MipResult lr = solve(relaxed, lazy);

    // Independent ground truth: brute-force the full model's optimum.
    double expect = kInf;
    const long feasible = for_each_feasible_point(full, [&](const std::vector<double>& p) {
      expect = std::min(expect, full.objective().evaluate(p));
    });

    if (feasible == 0) {
      EXPECT_EQ(lr.status, SolveStatus::kInfeasible) << "seed " << seed;
    } else {
      ASSERT_TRUE(lr.has_solution()) << "seed " << seed;
      EXPECT_NEAR(lr.objective, expect, 1e-6 * std::max(1.0, std::abs(expect)))
          << "seed " << seed;
      // The lazily solved point must satisfy the FULL model, dropped rows
      // included — the incumbent gate guarantees it.
      EXPECT_TRUE(full.is_feasible(lr.x)) << "seed " << seed;
    }

    // The oracle proper: no pooled cut may cut off any feasible point.
    for_each_feasible_point(full, [&](const std::vector<double>& p) {
      for (size_t i = 0; i < pool.size(); ++i) {
        EXPECT_LE(pool.violation(i, p), tol::kCutViolation)
            << "seed " << seed << ": cut '" << pool.name(i)
            << "' separates a feasible integer point";
      }
    });

    corpus_pooled += static_cast<long>(pool.size());
    if (lr.stats.cut_rounds > 0) ++solves_with_cuts;
    ++audited_models;
  }
  // The corpus must actually exercise the machinery, not vacuously pass.
  EXPECT_EQ(audited_models, 220);
  EXPECT_GT(corpus_pooled, 100);
  EXPECT_GT(solves_with_cuts, 50);
}

TEST(CutOracle, LazyGateRejectsIntegralPointViolatingDroppedRow) {
  // minimize -x - y with x + y <= 1 dropped: the relaxed root LP is
  // integral at (1, 1), which violates the lazy row. The gate must refuse
  // it, activate the row, and land on the true optimum -1.
  Model full;
  const Var x = full.add_binary("x");
  const Var y = full.add_binary("y");
  full.add_le(LinExpr(x) + LinExpr(y), 1.0);
  full.minimize(-1.0 * LinExpr(x) - 1.0 * LinExpr(y));

  const std::vector<bool> dropped = {true};
  const Model relaxed = relax(full, dropped);
  ASSERT_EQ(relaxed.num_constrs(), 0);

  CutPool pool;
  SolveOptions opts;
  opts.cuts.separators.push_back(dropped_row_separator(full, dropped));
  opts.cuts.shared_pool = &pool;
  const MipResult r = solve(relaxed, opts);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, -1.0, 1e-9);
  EXPECT_TRUE(full.is_feasible(r.x));
  EXPECT_GE(pool.stats().pooled, 1);
  EXPECT_GE(r.stats.cuts_lp_rows, 1);
}

TEST(CutOracle, LazyInfeasibilityIsDetected) {
  // x + y >= 2 kept, x + y <= 1 dropped: the relaxed model is feasible at
  // (1, 1) but the full model is empty. Separation must surface the
  // conflict and report infeasibility, not accept a lazily-invalid point.
  Model full;
  const Var x = full.add_binary("x");
  const Var y = full.add_binary("y");
  full.add_ge(LinExpr(x) + LinExpr(y), 2.0);
  full.add_le(LinExpr(x) + LinExpr(y), 1.0);
  full.minimize(LinExpr(x) + LinExpr(y));

  const std::vector<bool> dropped = {false, true};
  const Model relaxed = relax(full, dropped);

  SolveOptions opts;
  opts.cuts.separators.push_back(dropped_row_separator(full, dropped));
  const MipResult r = solve(relaxed, opts);
  EXPECT_EQ(r.status, SolveStatus::kInfeasible);
  EXPECT_FALSE(r.has_solution());
}

TEST(CutOracle, MipStartViolatingLazyRowIsRejected) {
  // A caller-provided start that satisfies the relaxed skeleton but
  // violates a dropped row must be refused by the gate, counted in
  // lazy_rejections, and must not leak into the reported solution.
  Model full;
  const Var x = full.add_binary("x");
  const Var y = full.add_binary("y");
  full.add_le(LinExpr(x) + LinExpr(y), 1.0);
  full.minimize(-2.0 * LinExpr(x) - 1.0 * LinExpr(y));

  const std::vector<bool> dropped = {true};
  const Model relaxed = relax(full, dropped);

  SolveOptions opts;
  opts.cuts.separators.push_back(dropped_row_separator(full, dropped));
  opts.mip_start = {1.0, 1.0};  // relaxed-feasible, lazily infeasible
  const MipResult r = solve(relaxed, opts);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, -2.0, 1e-9);  // x = 1, y = 0
  EXPECT_TRUE(full.is_feasible(r.x));
  EXPECT_GE(r.stats.lazy_rejections, 1);
}

TEST(CutOracle, SeparationCountersSurfaceInStatsJson) {
  Model full;
  const Var x = full.add_binary("x");
  const Var y = full.add_binary("y");
  full.add_le(LinExpr(x) + LinExpr(y), 1.0);
  full.minimize(-1.0 * LinExpr(x) - 1.0 * LinExpr(y));
  const Model relaxed = relax(full, {true});

  SolveOptions opts;
  opts.cuts.separators.push_back(dropped_row_separator(full, {true}));
  const MipResult r = solve(relaxed, opts);
  ASSERT_TRUE(r.has_solution());
  const std::string js = r.stats.to_json();
  EXPECT_NE(js.find("\"separation\""), std::string::npos);
  EXPECT_NE(js.find("\"cut_rounds\""), std::string::npos);
  EXPECT_NE(js.find("\"cuts_pooled\""), std::string::npos);
  EXPECT_NE(js.find("\"cuts_lp_rows\""), std::string::npos);
  EXPECT_NE(js.find("\"lazy_rejections\""), std::string::npos);
}

TEST(CutOracle, SharedPoolPersistsAcrossSolves) {
  // The same external pool serves two solves; the second reuses the first's
  // rows through dedup instead of double-pooling them, and per-solve stats
  // report deltas, not lifetime totals.
  Model full;
  const Var x = full.add_binary("x");
  const Var y = full.add_binary("y");
  full.add_le(LinExpr(x) + LinExpr(y), 1.0);
  full.minimize(-1.0 * LinExpr(x) - 1.0 * LinExpr(y));
  const Model relaxed = relax(full, {true});

  CutPool pool;
  SolveOptions opts;
  opts.cuts.separators.push_back(dropped_row_separator(full, {true}));
  opts.cuts.shared_pool = &pool;

  const MipResult r1 = solve(relaxed, opts);
  ASSERT_TRUE(r1.has_solution());
  const long pooled_after_first = pool.stats().pooled;
  EXPECT_GE(pooled_after_first, 1);

  const MipResult r2 = solve(relaxed, opts);
  ASSERT_TRUE(r2.has_solution());
  EXPECT_NEAR(r2.objective, r1.objective, 1e-9);
  EXPECT_EQ(pool.stats().pooled, pooled_after_first);  // nothing new pooled
  EXPECT_EQ(r2.stats.cuts_pooled, 0);                  // per-solve delta
  EXPECT_GE(r2.stats.cuts_duplicate, 1);
}

}  // namespace
}  // namespace wnet::milp
