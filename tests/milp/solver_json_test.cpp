#include <gtest/gtest.h>

#include <limits>
#include <random>
#include <string>

#include "core/explorer.h"
#include "milp/model.h"
#include "milp/solver.h"
#include "util/obs/json.h"

namespace wnet::milp {
namespace {

using util::obs::json_error;
using util::obs::json_valid;

/// Regression for the bare-inf/nan telemetry bug: to_json() used to print
/// `"root_bound": inf` (via operator<<), which no JSON parser accepts. Every
/// reachable SolveStatus must now produce strictly valid JSON, both from
/// SolveStats directly and through ExplorationResult::solver_json().
void expect_valid_telemetry(const MipResult& res, SolveStatus want) {
  ASSERT_EQ(res.status, want) << to_string(res.status);

  const std::string stats = res.stats.to_json();
  EXPECT_TRUE(json_valid(stats)) << to_string(want) << ": "
                                 << json_error(stats).value_or("") << "\n" << stats;

  archex::ExplorationResult er;
  er.status = res.status;
  er.objective = res.objective;
  er.solve_stats = res.stats;
  er.total_time_s = res.stats.time_s;
  const std::string doc = er.solver_json();
  EXPECT_TRUE(json_valid(doc)) << to_string(want) << ": "
                               << json_error(doc).value_or("") << "\n" << doc;
  EXPECT_NE(doc.find(to_string(want)), std::string::npos) << doc;
}

TEST(SolverJson, OptimalSolveSerializesValid) {
  Model m;
  const Var a = m.add_binary("a");
  const Var b = m.add_binary("b");
  m.add_le(LinExpr(a) + LinExpr(b), 1.0);
  m.minimize(-2.0 * LinExpr(a) - LinExpr(b));
  expect_valid_telemetry(solve(m), SolveStatus::kOptimal);
}

TEST(SolverJson, InfeasibleSolveSerializesValid) {
  // Infeasible runs are exactly where root_bound stays at its +/-inf
  // sentinel — the historical bare-`inf` emitter.
  Model m;
  const Var x = m.add_integer("x", 0, 10);
  m.add_eq(2.0 * LinExpr(x), 3.0);
  m.minimize(LinExpr(x));
  const auto res = solve(m);
  expect_valid_telemetry(res, SolveStatus::kInfeasible);
  EXPECT_NE(res.stats.to_json().find("\"root_bound\""), std::string::npos);
}

TEST(SolverJson, UnboundedSolveSerializesValid) {
  Model m;
  const Var x = m.add_continuous("x", 0.0, kInf);
  m.minimize(-1.0 * LinExpr(x));
  expect_valid_telemetry(solve(m), SolveStatus::kUnbounded);
}

TEST(SolverJson, FeasibleViaNodeLimitSerializesValid) {
  // A 30-item knapsack big enough that one node cannot close the gap: the
  // root dive's incumbent survives the node-limit stop -> kFeasible.
  Model m;
  std::mt19937 rng(5);
  LinExpr weight, obj;
  for (int i = 0; i < 30; ++i) {
    const Var v = m.add_binary("b" + std::to_string(i));
    weight += (1.0 + static_cast<double>(rng() % 7)) * LinExpr(v);
    obj += -(1.0 + static_cast<double>(rng() % 9)) * LinExpr(v);
  }
  m.add_le(weight, 40.0);
  m.minimize(obj);
  SolveOptions opts;
  opts.node_limit = 1;
  expect_valid_telemetry(solve(m, opts), SolveStatus::kFeasible);
}

TEST(SolverJson, NoSolutionViaCutoffSerializesValid) {
  // Cutoff below the true optimum with a fractional root (so neither the
  // rounded nor the raw LP point becomes an incumbent) prunes everything
  // unseen: the tree exhausts with no incumbent -> kNoSolution.
  Model m;
  const Var x1 = m.add_binary("x1");
  const Var x2 = m.add_binary("x2");
  const Var x3 = m.add_binary("x3");
  m.add_le(2.0 * LinExpr(x1) + 3.0 * LinExpr(x2) + LinExpr(x3), 5.0);
  m.minimize(-5.0 * LinExpr(x1) - 4.0 * LinExpr(x2) - 3.0 * LinExpr(x3));
  SolveOptions opts;
  opts.cutoff = -100.0;
  opts.root_dive = false;
  expect_valid_telemetry(solve(m, opts), SolveStatus::kNoSolution);
}

TEST(SolverJson, NonFiniteRootBoundSerializesAsNullWithSidecar) {
  SolveStats s;
  s.root_bound = std::numeric_limits<double>::infinity();
  s.time_s = std::numeric_limits<double>::quiet_NaN();
  s.incumbent_timeline.push_back({std::numeric_limits<double>::quiet_NaN(), 5,
                                  -std::numeric_limits<double>::infinity()});
  const std::string doc = s.to_json();
  EXPECT_TRUE(json_valid(doc)) << json_error(doc).value_or("") << "\n" << doc;
  EXPECT_NE(doc.find("\"root_bound\": null, \"root_bound_finite\": false"),
            std::string::npos)
      << doc;
  EXPECT_NE(doc.find("\"time_s\": null, \"time_s_finite\": false"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"objective\": null, \"objective_finite\": false"), std::string::npos)
      << doc;
  // No bare inf/nan token anywhere — the original bug.
  EXPECT_EQ(doc.find("inf"), std::string::npos);
  EXPECT_EQ(doc.find("nan"), std::string::npos);
}

TEST(SolverJson, ExplorationResultCarriesEncodeBlock) {
  archex::ExplorationResult er;
  er.status = SolveStatus::kOptimal;
  er.objective = -12.5;
  er.encode_stats.num_vars = 10;
  er.encode_stats.num_constrs = 20;
  er.encode_stats.candidate_paths = 6;
  er.encode_stats.encode_time_s = std::numeric_limits<double>::infinity();
  const std::string doc = er.solver_json();
  EXPECT_TRUE(json_valid(doc)) << json_error(doc).value_or("") << "\n" << doc;
  EXPECT_NE(doc.find("\"encode\": {"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"encode_time_s\": null, \"encode_time_s_finite\": false"),
            std::string::npos)
      << doc;
  EXPECT_NE(doc.find("\"solver\": {"), std::string::npos) << doc;
}

}  // namespace
}  // namespace wnet::milp
