#include "milp/expr.h"

#include <gtest/gtest.h>

#include "milp/model.h"

namespace wnet::milp {
namespace {

TEST(LinExpr, BuildsAndMergesTerms) {
  Var x{0};
  Var y{1};
  LinExpr e = 2.0 * LinExpr(x) + 3.0 * LinExpr(y) + 1.5;
  e.add_term(x, 4.0);
  ASSERT_EQ(e.size(), 2u);
  EXPECT_DOUBLE_EQ(e.terms().at(x), 6.0);
  EXPECT_DOUBLE_EQ(e.terms().at(y), 3.0);
  EXPECT_DOUBLE_EQ(e.constant(), 1.5);
}

TEST(LinExpr, CancellingTermIsErased) {
  Var x{0};
  LinExpr e = LinExpr(x);
  e.add_term(x, -1.0);
  EXPECT_EQ(e.size(), 0u);
}

TEST(LinExpr, ZeroCoefficientNotStored) {
  Var x{0};
  LinExpr e;
  e.add_term(x, 0.0);
  EXPECT_EQ(e.size(), 0u);
}

TEST(LinExpr, ArithmeticOperators) {
  Var x{0};
  Var y{1};
  LinExpr a = LinExpr(x) + LinExpr(y);
  LinExpr b = LinExpr(x) - LinExpr(y);
  LinExpr c = a - b;  // 2y
  EXPECT_EQ(c.size(), 1u);
  EXPECT_DOUBLE_EQ(c.terms().at(y), 2.0);
  LinExpr d = -c;
  EXPECT_DOUBLE_EQ(d.terms().at(y), -2.0);
}

TEST(LinExpr, Evaluate) {
  Var x{0};
  Var y{1};
  LinExpr e = 2.0 * LinExpr(x) - LinExpr(y) + 5.0;
  EXPECT_DOUBLE_EQ(e.evaluate({3.0, 4.0}), 2 * 3 - 4 + 5.0);
}

TEST(LinExpr, InvalidVarThrows) {
  LinExpr e;
  EXPECT_THROW(e.add_term(Var{-1}, 1.0), std::invalid_argument);
}

TEST(Model, AddVarRespectsTypesAndBounds) {
  Model m;
  const Var b = m.add_binary("b");
  const Var c = m.add_continuous("c", -1.0, 2.0);
  const Var i = m.add_integer("i", 0, 9);
  EXPECT_EQ(m.num_vars(), 3);
  EXPECT_EQ(m.var(b).type, VarType::kBinary);
  EXPECT_DOUBLE_EQ(m.var(b).ub, 1.0);
  EXPECT_DOUBLE_EQ(m.var(c).lb, -1.0);
  EXPECT_EQ(m.var(i).type, VarType::kInteger);
}

TEST(Model, AddVarRejectsCrossedBounds) {
  Model m;
  EXPECT_THROW(m.add_continuous("bad", 2.0, 1.0), std::invalid_argument);
}

TEST(Model, ConstraintFoldsConstant) {
  Model m;
  const Var x = m.add_continuous("x", 0, 10);
  const int ci = m.add_le(LinExpr(x) + 3.0, 8.0);
  EXPECT_DOUBLE_EQ(m.constrs()[static_cast<size_t>(ci)].rhs, 5.0);
  EXPECT_DOUBLE_EQ(m.constrs()[static_cast<size_t>(ci)].expr.constant(), 0.0);
}

TEST(Model, FeasibilityCheck) {
  Model m;
  const Var x = m.add_integer("x", 0, 5);
  const Var y = m.add_continuous("y", 0, 5);
  m.add_le(LinExpr(x) + LinExpr(y), 6.0);
  m.add_ge(LinExpr(x) - LinExpr(y), -1.0);
  EXPECT_TRUE(m.is_feasible({2.0, 3.0}));
  EXPECT_FALSE(m.is_feasible({2.5, 3.0}));   // fractional integer
  EXPECT_FALSE(m.is_feasible({5.0, 3.0}));   // violates row 1
  EXPECT_FALSE(m.is_feasible({0.0, 2.0}));   // violates row 2
  EXPECT_FALSE(m.is_feasible({2.0}));        // arity
}

TEST(Model, NonzeroAndIntegerCounts) {
  Model m;
  const Var x = m.add_binary("x");
  const Var y = m.add_continuous("y", 0, 1);
  m.add_le(LinExpr(x) + LinExpr(y), 1.0);
  m.add_le(LinExpr(x), 1.0);
  EXPECT_EQ(m.num_integer_vars(), 1);
  EXPECT_EQ(m.num_nonzeros(), 3u);
}

TEST(Model, UnknownVariableInConstraintThrows) {
  Model m;
  LinExpr e;
  e.add_term(Var{7}, 1.0);
  EXPECT_THROW(m.add_le(std::move(e), 1.0), std::out_of_range);
}

}  // namespace
}  // namespace wnet::milp
