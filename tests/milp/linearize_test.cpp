#include "milp/linearize.h"

#include <gtest/gtest.h>

#include <cmath>

#include "milp/solver.h"

namespace wnet::milp {
namespace {

TEST(Linearize, BinaryProductTruthTable) {
  for (int xv = 0; xv <= 1; ++xv) {
    for (int yv = 0; yv <= 1; ++yv) {
      Model m;
      const Var x = m.add_binary("x");
      const Var y = m.add_binary("y");
      const Var z = product_binary_binary(m, x, y, "z");
      m.add_eq(LinExpr(x), xv);
      m.add_eq(LinExpr(y), yv);
      // Push z in the "wrong" direction so the constraints must pin it.
      m.minimize(xv * yv == 1 ? LinExpr(z) : -1.0 * LinExpr(z));
      const auto res = solve(m);
      ASSERT_EQ(res.status, SolveStatus::kOptimal);
      EXPECT_NEAR(res.x[static_cast<size_t>(z.id)], xv * yv, 1e-6)
          << "x=" << xv << " y=" << yv;
    }
  }
}

TEST(Linearize, BinaryProductRejectsContinuousOperand) {
  Model m;
  const Var x = m.add_binary("x");
  const Var c = m.add_continuous("c", 0, 1);
  EXPECT_THROW(product_binary_binary(m, x, c, "z"), std::invalid_argument);
}

TEST(Linearize, BinaryTimesContinuousBothCases) {
  for (int bv = 0; bv <= 1; ++bv) {
    Model m;
    const Var b = m.add_binary("b");
    const Var c = m.add_continuous("c", -5.0, 8.0);
    const Var w = product_binary_continuous(m, b, c, "w");
    m.add_eq(LinExpr(b), bv);
    m.add_eq(LinExpr(c), 3.5);
    m.minimize(bv == 1 ? -1.0 * LinExpr(w) : LinExpr(w));  // push away from truth
    const auto res = solve(m);
    ASSERT_EQ(res.status, SolveStatus::kOptimal);
    EXPECT_NEAR(res.x[static_cast<size_t>(w.id)], bv * 3.5, 1e-6) << "b=" << bv;
  }
}

TEST(Linearize, BinaryTimesContinuousNegativeValue) {
  Model m;
  const Var b = m.add_binary("b");
  const Var c = m.add_continuous("c", -5.0, 8.0);
  const Var w = product_binary_continuous(m, b, c, "w");
  m.add_eq(LinExpr(b), 1.0);
  m.add_eq(LinExpr(c), -4.0);
  m.minimize(LinExpr(w));
  const auto res = solve(m);
  ASSERT_EQ(res.status, SolveStatus::kOptimal);
  EXPECT_NEAR(res.x[static_cast<size_t>(w.id)], -4.0, 1e-6);
}

TEST(Linearize, ProductRequiresFiniteBounds) {
  Model m;
  const Var b = m.add_binary("b");
  const Var c = m.add_continuous("c", 0.0, kInf);
  EXPECT_THROW(product_binary_continuous(m, b, c, "w"), std::invalid_argument);
}

TEST(Linearize, ExprBounds) {
  Model m;
  const Var x = m.add_continuous("x", -1.0, 2.0);
  const Var y = m.add_continuous("y", 0.0, 3.0);
  const LinExpr e = 2.0 * LinExpr(x) - LinExpr(y) + 1.0;
  EXPECT_DOUBLE_EQ(expr_upper_bound(m, e), 2 * 2 - 0 + 1);
  EXPECT_DOUBLE_EQ(expr_lower_bound(m, e), 2 * -1 - 3 + 1);
}

TEST(Linearize, ExprBoundsInfinite) {
  Model m;
  const Var x = m.add_continuous("x", 0.0, kInf);
  const LinExpr e = LinExpr(x);
  EXPECT_TRUE(std::isinf(expr_upper_bound(m, e)));
  EXPECT_DOUBLE_EQ(expr_lower_bound(m, e), 0.0);
}

TEST(Linearize, ImplyLeEnforcedOnlyWhenActive) {
  // b=1 => x <= 2. With b=1 and minimizing -x, x must stop at 2.
  {
    Model m;
    const Var b = m.add_binary("b");
    const Var x = m.add_continuous("x", 0.0, 10.0);
    imply_le(m, b, LinExpr(x), 2.0, "cap");
    m.add_eq(LinExpr(b), 1.0);
    m.minimize(-1.0 * LinExpr(x));
    const auto res = solve(m);
    ASSERT_EQ(res.status, SolveStatus::kOptimal);
    EXPECT_NEAR(res.x[1], 2.0, 1e-6);
  }
  // With b=0 the cap must not bind.
  {
    Model m;
    const Var b = m.add_binary("b");
    const Var x = m.add_continuous("x", 0.0, 10.0);
    imply_le(m, b, LinExpr(x), 2.0, "cap");
    m.add_eq(LinExpr(b), 0.0);
    m.minimize(-1.0 * LinExpr(x));
    const auto res = solve(m);
    ASSERT_EQ(res.status, SolveStatus::kOptimal);
    EXPECT_NEAR(res.x[1], 10.0, 1e-6);
  }
}

TEST(Linearize, ImplyGeEnforcedOnlyWhenActive) {
  for (int bv = 0; bv <= 1; ++bv) {
    Model m;
    const Var b = m.add_binary("b");
    const Var x = m.add_continuous("x", 0.0, 10.0);
    imply_ge(m, b, LinExpr(x), 7.0, "floor");
    m.add_eq(LinExpr(b), bv);
    m.minimize(LinExpr(x));
    const auto res = solve(m);
    ASSERT_EQ(res.status, SolveStatus::kOptimal);
    EXPECT_NEAR(res.x[1], bv == 1 ? 7.0 : 0.0, 1e-6);
  }
}

TEST(Linearize, ImplyLeRedundantAddsNothing) {
  Model m;
  const Var b = m.add_binary("b");
  const Var x = m.add_continuous("x", 0.0, 2.0);
  const int before = m.num_constrs();
  imply_le(m, b, LinExpr(x), 5.0, "noop");  // always true given bounds
  EXPECT_EQ(m.num_constrs(), before);
}

}  // namespace
}  // namespace wnet::milp
