#include "milp/simplex/dual_simplex.h"

#include <gtest/gtest.h>

#include "milp/model.h"
#include "milp/simplex/standard_lp.h"

namespace wnet::milp::simplex {
namespace {

LpResult solve_lp(const Model& m) {
  StandardLp lp(m);
  DualSimplex ds(lp);
  return ds.solve();
}

TEST(DualSimplex, TrivialBoxProblem) {
  Model m;
  const Var x = m.add_continuous("x", 1.0, 4.0);
  m.minimize(LinExpr(x));
  const auto res = solve_lp(m);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, 1.0, 1e-9);
}

TEST(DualSimplex, TwoVarLp) {
  // min -x - 2y  s.t. x + y <= 4, x <= 3, y <= 2, x,y >= 0. Opt: x=2,y=2 -> -6.
  Model m;
  const Var x = m.add_continuous("x", 0.0, 3.0);
  const Var y = m.add_continuous("y", 0.0, 2.0);
  m.add_le(LinExpr(x) + LinExpr(y), 4.0);
  m.minimize(-1.0 * LinExpr(x) - 2.0 * LinExpr(y));
  const auto res = solve_lp(m);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, -6.0, 1e-8);
  EXPECT_NEAR(res.x[0], 2.0, 1e-8);
  EXPECT_NEAR(res.x[1], 2.0, 1e-8);
}

TEST(DualSimplex, EqualityConstraint) {
  // min x + y  s.t. x + 2y = 3, 0 <= x,y <= 10. Opt: x=0, y=1.5 -> 1.5.
  Model m;
  const Var x = m.add_continuous("x", 0.0, 10.0);
  const Var y = m.add_continuous("y", 0.0, 10.0);
  m.add_eq(LinExpr(x) + 2.0 * LinExpr(y), 3.0);
  m.minimize(LinExpr(x) + LinExpr(y));
  const auto res = solve_lp(m);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, 1.5, 1e-8);
}

TEST(DualSimplex, GreaterEqualRows) {
  // min 2x + 3y  s.t. x + y >= 4, x - y >= -2, 0 <= x,y <= 10.
  // Opt at intersection? Candidates: x=1,y=3 (cost 11), x=4,y=0 (cost 8).
  Model m;
  const Var x = m.add_continuous("x", 0.0, 10.0);
  const Var y = m.add_continuous("y", 0.0, 10.0);
  m.add_ge(LinExpr(x) + LinExpr(y), 4.0);
  m.add_ge(LinExpr(x) - LinExpr(y), -2.0);
  m.minimize(2.0 * LinExpr(x) + 3.0 * LinExpr(y));
  const auto res = solve_lp(m);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, 8.0, 1e-8);
  EXPECT_NEAR(res.x[0], 4.0, 1e-8);
  EXPECT_NEAR(res.x[1], 0.0, 1e-8);
}

TEST(DualSimplex, InfeasibleLp) {
  Model m;
  const Var x = m.add_continuous("x", 0.0, 1.0);
  m.add_ge(LinExpr(x), 2.0);
  m.minimize(LinExpr(x));
  const auto res = solve_lp(m);
  EXPECT_EQ(res.status, LpStatus::kPrimalInfeasible);
}

TEST(DualSimplex, InfeasibleByConflictingRows) {
  Model m;
  const Var x = m.add_continuous("x", 0.0, 10.0);
  const Var y = m.add_continuous("y", 0.0, 10.0);
  m.add_le(LinExpr(x) + LinExpr(y), 1.0);
  m.add_ge(LinExpr(x) + LinExpr(y), 2.0);
  m.minimize(LinExpr(x));
  const auto res = solve_lp(m);
  EXPECT_EQ(res.status, LpStatus::kPrimalInfeasible);
}

TEST(DualSimplex, UnboundedDetectedViaSyntheticBound) {
  Model m;
  const Var x = m.add_continuous("x", 0.0, kInf);
  m.minimize(-1.0 * LinExpr(x));
  const auto res = solve_lp(m);
  EXPECT_EQ(res.status, LpStatus::kUnbounded);
}

TEST(DualSimplex, NegativeLowerBounds) {
  // min x  s.t. x + y >= -5, -10 <= x <= 10, -2 <= y <= 2. Opt: x=-7? No:
  // x >= -5 - y, y max 2 -> x >= -7, within bounds -> obj -7.
  Model m;
  const Var x = m.add_continuous("x", -10.0, 10.0);
  const Var y = m.add_continuous("y", -2.0, 2.0);
  m.add_ge(LinExpr(x) + LinExpr(y), -5.0);
  m.minimize(LinExpr(x));
  const auto res = solve_lp(m);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, -7.0, 1e-8);
}

TEST(DualSimplex, DegenerateLpTerminates) {
  // Many redundant constraints through the same vertex.
  Model m;
  const Var x = m.add_continuous("x", 0.0, 10.0);
  const Var y = m.add_continuous("y", 0.0, 10.0);
  for (int k = 1; k <= 10; ++k) {
    m.add_le(static_cast<double>(k) * LinExpr(x) + static_cast<double>(k) * LinExpr(y),
             4.0 * k);
  }
  m.minimize(-1.0 * LinExpr(x) - LinExpr(y));
  const auto res = solve_lp(m);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, -4.0, 1e-8);
}

TEST(DualSimplex, WarmStartAfterBoundChange) {
  // Solve, tighten a bound, re-solve warm: like one B&B edge.
  Model m;
  const Var x = m.add_continuous("x", 0.0, 3.0);
  const Var y = m.add_continuous("y", 0.0, 2.0);
  m.add_le(LinExpr(x) + LinExpr(y), 4.0);
  m.minimize(-1.0 * LinExpr(x) - 2.0 * LinExpr(y));
  StandardLp lp(m);
  DualSimplex ds(lp);
  auto res = ds.solve();
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  const Basis warm = ds.basis();

  lp.set_bounds(0, 0.0, 1.0);  // x <= 1
  DualSimplex ds2(lp);
  auto res2 = ds2.solve_from(warm);
  ASSERT_EQ(res2.status, LpStatus::kOptimal);
  EXPECT_NEAR(res2.objective, -5.0, 1e-8);  // x=1, y=2
  EXPECT_LE(res2.iterations, res.iterations + 4);
}

TEST(DualSimplex, MediumRandomLpMatchesActivityBounds) {
  // Transportation-style LP with known optimum: min sum of shipments costs,
  // supply/demand balance. 3 suppliers x 4 consumers.
  Model m;
  const double cost[3][4] = {{4, 6, 8, 11}, {5, 3, 7, 9}, {6, 5, 4, 8}};
  const double supply[3] = {40, 50, 30};
  const double demand[4] = {25, 35, 30, 30};
  std::vector<std::vector<Var>> ship(3, std::vector<Var>(4));
  LinExpr obj;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 4; ++j) {
      ship[static_cast<size_t>(i)][static_cast<size_t>(j)] =
          m.add_continuous("s", 0.0, 100.0);
      obj += cost[i][j] * LinExpr(ship[static_cast<size_t>(i)][static_cast<size_t>(j)]);
    }
  }
  for (int i = 0; i < 3; ++i) {
    LinExpr row;
    for (int j = 0; j < 4; ++j) row += LinExpr(ship[static_cast<size_t>(i)][static_cast<size_t>(j)]);
    m.add_le(std::move(row), supply[i]);
  }
  for (int j = 0; j < 4; ++j) {
    LinExpr col;
    for (int i = 0; i < 3; ++i) col += LinExpr(ship[static_cast<size_t>(i)][static_cast<size_t>(j)]);
    m.add_ge(std::move(col), demand[j]);
  }
  m.minimize(obj);
  const auto res = solve_lp(m);
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  // Known optimum (computed by hand / cross-checked): 25*4+15*... verify by
  // weak duality sanity: objective within [sum(min col cost * demand), ...].
  double lo = 0.0;
  for (int j = 0; j < 4; ++j) {
    double c = kInf;
    for (int i = 0; i < 3; ++i) c = std::min(c, cost[i][j]);
    lo += c * demand[j];
  }
  EXPECT_GE(res.objective, lo - 1e-6);
  // Check primal feasibility of the returned point.
  std::vector<double> xs(res.x.begin(), res.x.begin() + 12);
  EXPECT_TRUE(m.is_feasible(xs, 1e-6));
}

}  // namespace
}  // namespace wnet::milp::simplex
