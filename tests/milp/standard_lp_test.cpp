#include "milp/simplex/standard_lp.h"

#include <gtest/gtest.h>

#include <cmath>

namespace wnet::milp::simplex {
namespace {

TEST(StandardLp, LayoutAndSlackRanges) {
  Model m;
  const Var x = m.add_continuous("x", -1.0, 2.0);
  const Var y = m.add_binary("y");
  m.add_le(LinExpr(x) + 2.0 * LinExpr(y), 3.0);   // row 0
  m.add_ge(LinExpr(x) - LinExpr(y), -1.0);        // row 1
  m.add_eq(LinExpr(x), 0.5);                      // row 2
  m.minimize(LinExpr(x) + LinExpr(y) + 7.0);

  const StandardLp lp(m);
  EXPECT_EQ(lp.num_rows(), 3);
  EXPECT_EQ(lp.num_cols(), 2 + 3);
  EXPECT_EQ(lp.num_structural(), 2);
  EXPECT_DOUBLE_EQ(lp.objective_constant(), 7.0);

  // Slack 0 (<=): [0, inf); slack 1 (>=): (-inf, 0]; slack 2 (=): [0, 0].
  EXPECT_DOUBLE_EQ(lp.lb()[2], 0.0);
  EXPECT_TRUE(std::isinf(lp.ub()[2]));
  EXPECT_TRUE(std::isinf(lp.lb()[3]));
  EXPECT_DOUBLE_EQ(lp.ub()[3], 0.0);
  EXPECT_DOUBLE_EQ(lp.lb()[4], 0.0);
  EXPECT_DOUBLE_EQ(lp.ub()[4], 0.0);

  // Slack coefficient +1 in its own row.
  ASSERT_EQ(lp.a().column(2).size(), 1u);
  EXPECT_EQ(lp.a().column(2)[0].row, 0);
  EXPECT_DOUBLE_EQ(lp.a().column(2)[0].value, 1.0);

  // Structural bounds preserved exactly.
  EXPECT_DOUBLE_EQ(lp.lb()[static_cast<size_t>(x.id)], -1.0);
  EXPECT_DOUBLE_EQ(lp.ub()[static_cast<size_t>(y.id)], 1.0);
}

TEST(StandardLp, ClampsOnlyCostSideInfinities) {
  Model m;
  const Var a = m.add_continuous("a", 0.0, kInf);  // c > 0: ub stays inf
  const Var b = m.add_continuous("b", 0.0, kInf);  // c < 0: ub clamped
  const Var c = m.add_continuous("c", -kInf, 0.0); // c > 0: lb clamped
  m.minimize(LinExpr(a) - LinExpr(b) + LinExpr(c));

  const StandardLp lp(m);
  EXPECT_TRUE(std::isinf(lp.ub()[static_cast<size_t>(a.id)]));
  EXPECT_FALSE(lp.ub_synthetic(a.id));
  EXPECT_DOUBLE_EQ(lp.ub()[static_cast<size_t>(b.id)], kBigBound);
  EXPECT_TRUE(lp.ub_synthetic(b.id));
  EXPECT_DOUBLE_EQ(lp.lb()[static_cast<size_t>(c.id)], -kBigBound);
  EXPECT_TRUE(lp.lb_synthetic(c.id));
}

TEST(StandardLp, SetBoundsReclampsAgainstCost) {
  Model m;
  const Var x = m.add_continuous("x", 0.0, 5.0);
  m.minimize(-1.0 * LinExpr(x));
  StandardLp lp(m);
  lp.set_bounds(0, 0.0, kInf);  // cost pushes up: must clamp
  EXPECT_DOUBLE_EQ(lp.ub()[0], kBigBound);
  EXPECT_TRUE(lp.ub_synthetic(0));
  lp.set_bounds(0, 1.0, 4.0);
  EXPECT_FALSE(lp.ub_synthetic(0));
  EXPECT_DOUBLE_EQ(lp.lb()[0], 1.0);
  EXPECT_THROW(lp.set_bounds(0, 5.0, 4.0), std::invalid_argument);
  EXPECT_THROW(lp.set_bounds(99, 0.0, 1.0), std::out_of_range);
}

TEST(StandardLp, ObjectiveValueIncludesConstant) {
  Model m;
  const Var x = m.add_continuous("x", 0.0, 10.0);
  m.minimize(2.0 * LinExpr(x) + 5.0);
  const StandardLp lp(m);
  std::vector<double> point(static_cast<size_t>(lp.num_cols()), 0.0);
  point[0] = 3.0;
  EXPECT_DOUBLE_EQ(lp.objective_value(point), 11.0);
}

TEST(StandardLp, EmptyModel) {
  Model m;
  m.minimize(LinExpr(4.2));
  const StandardLp lp(m);
  EXPECT_EQ(lp.num_rows(), 0);
  EXPECT_EQ(lp.num_cols(), 0);
  EXPECT_DOUBLE_EQ(lp.objective_value({}), 4.2);
}

}  // namespace
}  // namespace wnet::milp::simplex
