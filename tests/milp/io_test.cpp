#include "milp/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace wnet::milp {
namespace {

Model sample_model() {
  Model m;
  const Var x = m.add_continuous("x", 0.0, 4.0);
  const Var y = m.add_binary("y");
  const Var z = m.add_continuous("z", -kInf, kInf);
  m.add_le(LinExpr(x) + 2.0 * LinExpr(y), 5.0);
  m.add_ge(LinExpr(x) - LinExpr(z), -1.0);
  m.add_eq(LinExpr(y) + LinExpr(z), 0.5);
  m.minimize(3.0 * LinExpr(x) - LinExpr(y));
  return m;
}

TEST(MpsWriter, SectionsAndRowTypes) {
  const std::string mps = to_mps_string(sample_model(), "T");
  EXPECT_NE(mps.find("NAME"), std::string::npos);
  EXPECT_NE(mps.find("ROWS"), std::string::npos);
  EXPECT_NE(mps.find(" N  COST"), std::string::npos);
  EXPECT_NE(mps.find(" L  C0"), std::string::npos);
  EXPECT_NE(mps.find(" G  C1"), std::string::npos);
  EXPECT_NE(mps.find(" E  C2"), std::string::npos);
  EXPECT_NE(mps.find("COLUMNS"), std::string::npos);
  EXPECT_NE(mps.find("RHS"), std::string::npos);
  EXPECT_NE(mps.find("BOUNDS"), std::string::npos);
  EXPECT_NE(mps.find("ENDATA"), std::string::npos);
}

TEST(MpsWriter, IntegerMarkersBracketBinaries) {
  const std::string mps = to_mps_string(sample_model());
  const auto org = mps.find("'INTORG'");
  const auto end = mps.find("'INTEND'");
  ASSERT_NE(org, std::string::npos);
  ASSERT_NE(end, std::string::npos);
  EXPECT_LT(org, end);
  // The binary column X1 appears between the markers.
  const auto x1 = mps.find("X1 ", org);
  EXPECT_LT(x1, end);
}

TEST(MpsWriter, FreeVariableMarkedFr) {
  const std::string mps = to_mps_string(sample_model());
  EXPECT_NE(mps.find(" FR BND  X2"), std::string::npos);
}

TEST(MpsWriter, FileRoundTripToDisk) {
  const std::string path = "/tmp/wnet_io_test.mps";
  write_mps_file(sample_model(), path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), to_mps_string(sample_model()));
  std::remove(path.c_str());

  const std::string lp_path = "/tmp/wnet_io_test.lp";
  write_lp_file(sample_model(), lp_path);
  std::ifstream lp_in(lp_path);
  ASSERT_TRUE(lp_in.good());
  std::remove(lp_path.c_str());
}

TEST(MpsWriter, ThrowsOnUnwritablePath) {
  EXPECT_THROW(write_mps_file(sample_model(), "/nonexistent-dir/x.mps"), std::runtime_error);
  EXPECT_THROW(write_lp_file(sample_model(), "/nonexistent-dir/x.lp"), std::runtime_error);
}

}  // namespace
}  // namespace wnet::milp
