#include "milp/simplex/lu.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "milp/simplex/sparse.h"

namespace wnet::milp::simplex {
namespace {

/// Builds a sparse matrix from dense data (rows x cols).
SparseMatrix from_dense(const std::vector<std::vector<double>>& d) {
  const int rows = static_cast<int>(d.size());
  const int cols = rows > 0 ? static_cast<int>(d[0].size()) : 0;
  SparseMatrix a(rows, cols);
  for (int j = 0; j < cols; ++j) {
    std::vector<Entry> col;
    for (int i = 0; i < rows; ++i) {
      if (d[static_cast<size_t>(i)][static_cast<size_t>(j)] != 0.0) {
        col.push_back({i, d[static_cast<size_t>(i)][static_cast<size_t>(j)]});
      }
    }
    a.set_column(j, std::move(col));
  }
  return a;
}

std::vector<double> mat_vec(const std::vector<std::vector<double>>& d,
                            const std::vector<double>& x) {
  std::vector<double> y(d.size(), 0.0);
  for (size_t i = 0; i < d.size(); ++i) {
    for (size_t j = 0; j < x.size(); ++j) y[i] += d[i][j] * x[j];
  }
  return y;
}

std::vector<double> mat_t_vec(const std::vector<std::vector<double>>& d,
                              const std::vector<double>& x) {
  std::vector<double> y(d[0].size(), 0.0);
  for (size_t i = 0; i < d.size(); ++i) {
    for (size_t j = 0; j < y.size(); ++j) y[j] += d[i][j] * x[i];
  }
  return y;
}

TEST(BasisLu, IdentityRoundTrip) {
  const auto a = from_dense({{1, 0, 0}, {0, 1, 0}, {0, 0, 1}});
  BasisLu lu;
  ASSERT_TRUE(lu.factorize(a, {0, 1, 2}));
  std::vector<double> x{3.0, -1.0, 2.0};
  lu.ftran(x);
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], -1.0, 1e-12);
  EXPECT_NEAR(x[2], 2.0, 1e-12);
  std::vector<double> y{1.0, 2.0, 3.0};
  lu.btran(y);
  EXPECT_NEAR(y[2], 3.0, 1e-12);
}

TEST(BasisLu, SolvesGeneralSystem) {
  // B = [[2,1,0],[1,3,1],[0,1,4]] (columns 0..2).
  const std::vector<std::vector<double>> dense{{2, 1, 0}, {1, 3, 1}, {0, 1, 4}};
  const auto a = from_dense(dense);
  BasisLu lu;
  ASSERT_TRUE(lu.factorize(a, {0, 1, 2}));

  const std::vector<double> x_true{1.0, -2.0, 0.5};
  std::vector<double> rhs = mat_vec(dense, x_true);
  lu.ftran(rhs);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(rhs[static_cast<size_t>(i)], x_true[static_cast<size_t>(i)], 1e-10);

  const std::vector<double> y_true{0.5, 1.5, -1.0};
  std::vector<double> c = mat_t_vec(dense, y_true);
  lu.btran(c);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(c[static_cast<size_t>(i)], y_true[static_cast<size_t>(i)], 1e-10);
}

TEST(BasisLu, DetectsSingularBasis) {
  const auto a = from_dense({{1, 2, 3}, {2, 4, 6}, {1, 1, 1}});  // col1 = 2*col0
  BasisLu lu;
  EXPECT_FALSE(lu.factorize(a, {0, 1, 2}));
}

TEST(BasisLu, SubsetOfWiderMatrixAsBasis) {
  // A has 5 columns; basis picks {4, 1, 3}.
  const std::vector<std::vector<double>> dense{
      {1, 0, 2, 0, 1}, {0, 3, 0, 1, 0}, {2, 0, 0, 5, 1}};
  const auto a = from_dense(dense);
  BasisLu lu;
  ASSERT_TRUE(lu.factorize(a, {4, 1, 3}));
  // B = columns 4,1,3: [[1,0,0],[0,3,1],[1,0,5]].
  const std::vector<std::vector<double>> b{{1, 0, 0}, {0, 3, 1}, {1, 0, 5}};
  const std::vector<double> x_true{2.0, 1.0, -1.0};
  std::vector<double> rhs = mat_vec(b, x_true);
  lu.ftran(rhs);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(rhs[static_cast<size_t>(i)], x_true[static_cast<size_t>(i)], 1e-10);
}

TEST(BasisLu, EtaUpdateMatchesRefactorization) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> u(-2.0, 2.0);
  const int m = 12;
  // Random well-conditioned dense-ish matrix with extra columns to swap in.
  std::vector<std::vector<double>> dense(static_cast<size_t>(m),
                                         std::vector<double>(static_cast<size_t>(m) + 4, 0.0));
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m + 4; ++j) {
      if ((i + j) % 3 == 0 || i == j) dense[static_cast<size_t>(i)][static_cast<size_t>(j)] = u(rng);
    }
    dense[static_cast<size_t>(i)][static_cast<size_t>(i)] += 4.0;  // diagonal dominance
  }
  const auto a = from_dense(dense);
  std::vector<int> basis(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) basis[static_cast<size_t>(i)] = i;

  BasisLu lu;
  ASSERT_TRUE(lu.factorize(a, basis));

  // Replace the basis position with the strongest pivot by column m
  // (outside the current basis) so the new basis stays well conditioned.
  const int entering = m;
  std::vector<double> w(static_cast<size_t>(m), 0.0);
  for (const Entry& e : a.column(entering)) w[static_cast<size_t>(e.row)] = e.value;
  lu.ftran(w);
  int pos = 0;
  for (int i = 1; i < m; ++i) {
    if (std::abs(w[static_cast<size_t>(i)]) > std::abs(w[static_cast<size_t>(pos)])) pos = i;
  }
  ASSERT_TRUE(lu.update(pos, w));
  basis[static_cast<size_t>(pos)] = entering;

  BasisLu fresh;
  ASSERT_TRUE(fresh.factorize(a, basis));

  std::vector<double> rhs(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) rhs[static_cast<size_t>(i)] = u(rng);
  std::vector<double> via_eta = rhs;
  std::vector<double> via_fresh = rhs;
  lu.ftran(via_eta);
  fresh.ftran(via_fresh);
  for (int i = 0; i < m; ++i) EXPECT_NEAR(via_eta[static_cast<size_t>(i)], via_fresh[static_cast<size_t>(i)], 1e-8);

  std::vector<double> c(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) c[static_cast<size_t>(i)] = u(rng);
  std::vector<double> bt_eta = c;
  std::vector<double> bt_fresh = c;
  lu.btran(bt_eta);
  fresh.btran(bt_fresh);
  for (int i = 0; i < m; ++i) EXPECT_NEAR(bt_eta[static_cast<size_t>(i)], bt_fresh[static_cast<size_t>(i)], 1e-8);
}

TEST(BasisLu, RandomSparseSystemsProperty) {
  std::mt19937 rng(42);
  std::uniform_real_distribution<double> u(-3.0, 3.0);
  for (int trial = 0; trial < 20; ++trial) {
    const int m = 5 + trial;
    std::vector<std::vector<double>> dense(static_cast<size_t>(m),
                                           std::vector<double>(static_cast<size_t>(m), 0.0));
    for (int i = 0; i < m; ++i) {
      dense[static_cast<size_t>(i)][static_cast<size_t>(i)] = 5.0 + std::abs(u(rng));
      for (int k = 0; k < 3; ++k) {
        const int j = static_cast<int>(rng() % static_cast<unsigned>(m));
        if (j != i) dense[static_cast<size_t>(i)][static_cast<size_t>(j)] = u(rng);
      }
    }
    const auto a = from_dense(dense);
    std::vector<int> basis(static_cast<size_t>(m));
    for (int i = 0; i < m; ++i) basis[static_cast<size_t>(i)] = i;
    BasisLu lu;
    ASSERT_TRUE(lu.factorize(a, basis));
    std::vector<double> x_true(static_cast<size_t>(m));
    for (int i = 0; i < m; ++i) x_true[static_cast<size_t>(i)] = u(rng);
    std::vector<double> rhs = mat_vec(dense, x_true);
    lu.ftran(rhs);
    for (int i = 0; i < m; ++i) {
      EXPECT_NEAR(rhs[static_cast<size_t>(i)], x_true[static_cast<size_t>(i)], 1e-8)
          << "trial " << trial << " row " << i;
    }
  }
}

TEST(BasisLu, FtranUnitMatchesDenseFtranBitwise) {
  // The hyper-sparse single-nonzero path must reproduce the dense ftran()
  // exactly: every iteration it skips operates on an exact zero.
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> u(-3.0, 3.0);
  for (int trial = 0; trial < 15; ++trial) {
    const int m = 6 + trial;
    std::vector<std::vector<double>> dense(static_cast<size_t>(m),
                                           std::vector<double>(static_cast<size_t>(m), 0.0));
    for (int i = 0; i < m; ++i) {
      dense[static_cast<size_t>(i)][static_cast<size_t>(i)] = 4.0 + std::abs(u(rng));
      for (int k = 0; k < 2; ++k) {
        const int j = static_cast<int>(rng() % static_cast<unsigned>(m));
        if (j != i) dense[static_cast<size_t>(i)][static_cast<size_t>(j)] = u(rng);
      }
    }
    const auto a = from_dense(dense);
    std::vector<int> basis(static_cast<size_t>(m));
    for (int i = 0; i < m; ++i) basis[static_cast<size_t>(i)] = i;
    BasisLu lu;
    ASSERT_TRUE(lu.factorize(a, basis));

    // A couple of eta updates so the sweep is exercised too.
    for (int upd = 0; upd < 2; ++upd) {
      std::vector<double> w(static_cast<size_t>(m), 0.0);
      w[static_cast<size_t>((upd * 3) % m)] = 1.0;
      lu.ftran(w);
      int pos = 0;
      for (int i = 1; i < m; ++i) {
        if (std::abs(w[static_cast<size_t>(i)]) > std::abs(w[static_cast<size_t>(pos)])) pos = i;
      }
      ASSERT_TRUE(lu.update(pos, w));
    }

    for (int row = 0; row < m; ++row) {
      const double value = u(rng);
      std::vector<double> via_dense(static_cast<size_t>(m), 0.0);
      via_dense[static_cast<size_t>(row)] = value;
      lu.ftran(via_dense);
      std::vector<double> via_unit(static_cast<size_t>(m), 0.0);
      lu.ftran_unit(via_unit, row, value);
      for (int i = 0; i < m; ++i) {
        EXPECT_EQ(via_unit[static_cast<size_t>(i)], via_dense[static_cast<size_t>(i)])
            << "trial " << trial << " row " << row << " pos " << i;
      }
    }
  }
}

}  // namespace
}  // namespace wnet::milp::simplex
