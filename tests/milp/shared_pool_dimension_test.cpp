#include <gtest/gtest.h>

#include <vector>

#include "milp/cuts.h"
#include "milp/model.h"
#include "milp/solver.h"
#include "milp/tol.h"

// Regression suite for the shared-pool dimension hazard: a CutPool shared
// across solves of different models can hold rows whose variable ids exceed
// a smaller model's column count. Before the guard, violation() indexed the
// LP point out of bounds (an ASan-visible OOB read) and the solver could
// activate a row referencing columns the LP does not have. Now such rows
// are fenced off (violation 0, never selected) and counted in
// SolveStats::cuts_dim_rejected.

namespace wnet::milp {
namespace {

Var v(int id) { return Var{id}; }

Cut make_cut(const std::vector<std::pair<int, double>>& terms, Sense sense, double rhs) {
  Cut c;
  for (const auto& [id, coef] : terms) c.expr.add_term(v(id), coef);
  c.sense = sense;
  c.rhs = rhs;
  return c;
}

/// Knapsack-style binary model over n vars: minimize sum(c_i x_i) subject
/// to sum(x_i) >= need. Optimum picks the `need` cheapest vars.
Model covering_model(int n, int need) {
  Model m;
  LinExpr obj;
  LinExpr cover;
  for (int i = 0; i < n; ++i) {
    const Var x = m.add_binary("x" + std::to_string(i));
    obj.add_term(x, 1.0 + 0.1 * i);
    cover.add_term(x, 1.0);
  }
  m.add_ge(std::move(cover), static_cast<double>(need));
  m.minimize(std::move(obj));
  return m;
}

TEST(SharedPoolDimension, ViolationIsZeroBeyondPointSize) {
  CutPool pool;
  ASSERT_TRUE(pool.add(make_cut({{0, 1.0}, {7, 1.0}}, Sense::kLe, 1.0)));
  ASSERT_EQ(pool.max_var_id(0), 7);
  EXPECT_FALSE(pool.fits(0, 4));
  EXPECT_TRUE(pool.fits(0, 8));

  // A 4-var point cannot evaluate a row touching var 7: explicit reject,
  // not an out-of-bounds read.
  const std::vector<double> x4{1.0, 1.0, 1.0, 1.0};
  EXPECT_EQ(pool.violation(0, x4), 0.0);
  EXPECT_TRUE(pool.select_violated(x4, CutPoolOptions{}, 4).empty());

  // The same row scores normally once the point is wide enough.
  const std::vector<double> x8{1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0};
  EXPECT_GT(pool.violation(0, x8), 0.5);
}

TEST(SharedPoolDimension, SelectionSkipsOversizedRowsWithoutAgingThem) {
  CutPool pool;
  ASSERT_TRUE(pool.add(make_cut({{0, 1.0}, {9, 1.0}}, Sense::kLe, 1.0)));  // oversized
  ASSERT_TRUE(pool.add(make_cut({{0, 1.0}, {1, 1.0}}, Sense::kLe, 1.0)));  // fits

  CutPoolOptions popts;
  popts.max_age = 2;
  const std::vector<double> x{1.0, 1.0};
  const auto sel = pool.select_violated(x, popts, 2);
  ASSERT_EQ(sel.size(), 1u);
  EXPECT_EQ(sel[0], 1u);  // only the fitting row is selectable
  EXPECT_EQ(pool.state(1), CutState::kActive);

  // Many more rounds: the oversized row is invisible — never selected, and
  // (critically) never aged toward purge. It stays pooled for the larger
  // model it came from.
  for (int round = 0; round < 8; ++round) {
    EXPECT_TRUE(pool.select_violated(x, popts, 2).empty()) << "round " << round;
  }
  EXPECT_EQ(pool.state(0), CutState::kPooled);
}

TEST(SharedPoolDimension, GrownModelCutsAreFencedOffSmallerResolve) {
  // One pool shared across a model "ladder" driven in the hazardous
  // direction: solve the LARGE model first (pooling cuts over its high var
  // ids), then re-solve a SMALL model with the same pool. Before the guard
  // this read out of bounds under ASan; now the small solve must match its
  // pool-free optimum and report the fenced rows.
  const Model small = covering_model(4, 2);
  const Model large = covering_model(12, 6);

  CutPool pool;
  // Separator that proposes a globally valid row of whichever model it
  // sees — including one touching the large model's last var.
  const SeparationCallback sep = [](const SeparationContext& ctx, CutPool& p) {
    const int n = static_cast<int>(ctx.x.size());
    if (n >= 12) {
      // sum(x_i) >= need is valid; propose the last-var flavored version
      // x_10 + x_11 <= 2 (trivially valid) plus a binding cover subset.
      (void)p.add(make_cut({{10, 1.0}, {11, 1.0}}, Sense::kLe, 2.0));
      (void)p.add(make_cut({{0, 1.0}, {11, 1.0}}, Sense::kLe, 2.0));
    }
  };

  SolveOptions lopts;
  lopts.cuts.separators.push_back(sep);
  lopts.cuts.shared_pool = &pool;
  const MipResult rl = solve(large, lopts);
  ASSERT_TRUE(rl.has_solution());
  ASSERT_GT(pool.size(), 0u);

  // Baseline small-model optimum without any pool.
  const MipResult base = solve(small);
  ASSERT_TRUE(base.has_solution());

  SolveOptions sopts;
  sopts.cuts.separators.push_back(sep);  // proposes nothing for n=4
  sopts.cuts.shared_pool = &pool;
  const MipResult rs = solve(small, sopts);
  ASSERT_TRUE(rs.has_solution());
  EXPECT_NEAR(rs.objective, base.objective, 1e-9);
  EXPECT_GT(rs.stats.cuts_dim_rejected, 0);
}

TEST(SharedPoolDimension, LadderGrowthKeepsEarlierCutsUsable) {
  // The intended sharing direction: cuts pooled on a small model stay
  // usable when the model grows (var ids are stable under appends). The
  // grown solve must report zero dimension rejections for them.
  const Model small = covering_model(4, 2);
  const Model large = covering_model(12, 6);

  CutPool pool;
  const SeparationCallback sep = [](const SeparationContext& ctx, CutPool& p) {
    if (static_cast<int>(ctx.x.size()) >= 4) {
      (void)p.add(make_cut({{0, 1.0}, {3, 1.0}}, Sense::kLe, 2.0));
    }
  };

  SolveOptions sopts;
  sopts.cuts.separators.push_back(sep);
  sopts.cuts.shared_pool = &pool;
  const MipResult rs = solve(small, sopts);
  ASSERT_TRUE(rs.has_solution());
  ASSERT_GT(pool.size(), 0u);

  SolveOptions lopts;
  lopts.cuts.shared_pool = &pool;
  const MipResult rl = solve(large, lopts);
  ASSERT_TRUE(rl.has_solution());
  EXPECT_EQ(rl.stats.cuts_dim_rejected, 0);

  const MipResult base = solve(large);
  ASSERT_TRUE(base.has_solution());
  EXPECT_NEAR(rl.objective, base.objective, 1e-9);
}

}  // namespace
}  // namespace wnet::milp
