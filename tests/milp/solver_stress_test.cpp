#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "milp/model.h"
#include "milp/solver.h"
#include "milp/tol.h"
#include "milp/test_models.h"

namespace wnet::milp {
namespace {

using tests::oracle_optimum;
using tests::random_model;

TEST(SolverStress, RandomMixedBinaryVsBruteForce) {
  int solved = 0;
  for (unsigned seed = 1; seed <= 34; ++seed) {
    const int nb = 6 + static_cast<int>(seed % 7);       // 6..12 binaries
    const int nc = static_cast<int>(seed % 4);           // 0..3 continuous
    const int rows = 3 + static_cast<int>(seed % 6);     // 3..8 rows
    const Model m = random_model(seed, nb, nc, rows);

    double expect = 0.0;
    const bool feasible = oracle_optimum(m, &expect);

    const MipResult r = solve(m);
    if (!feasible) {
      EXPECT_EQ(r.status, SolveStatus::kInfeasible) << "seed " << seed;
      continue;
    }
    ASSERT_TRUE(r.has_solution()) << "seed " << seed;
    EXPECT_NEAR(r.objective, expect, 1e-6 * std::max(1.0, std::abs(expect)))
        << "seed " << seed;
    EXPECT_TRUE(m.is_feasible(r.x)) << "seed " << seed;
    ++solved;
  }
  // The generator must not degenerate into all-infeasible instances.
  EXPECT_GE(solved, 20);
}

TEST(SolverStress, WarmVsColdSameOptimaFewerIterations) {
  long warm_iters = 0;
  long cold_iters = 0;
  for (unsigned seed = 101; seed <= 112; ++seed) {
    const Model m = random_model(seed, 10, 2, 6);

    SolveOptions warm;
    SolveOptions cold;
    cold.warm_start = false;
    const MipResult rw = solve(m, warm);
    const MipResult rc = solve(m, cold);

    ASSERT_EQ(rw.status, rc.status) << "seed " << seed;
    if (rw.has_solution()) {
      EXPECT_NEAR(rw.objective, rc.objective, 1e-6 * std::max(1.0, std::abs(rc.objective)))
          << "seed " << seed;
    }
    warm_iters += rw.stats.lp_iterations;
    cold_iters += rc.stats.lp_iterations;
    EXPECT_EQ(rc.stats.warm_attempts, 0) << "seed " << seed;
  }
  EXPECT_LT(warm_iters, cold_iters);
}

TEST(SolverStress, DeterministicAcrossRepeatedSolves) {
  const Model m = random_model(7, 11, 2, 7);
  const MipResult first = solve(m);
  for (int rep = 0; rep < 3; ++rep) {
    const MipResult r = solve(m);
    ASSERT_EQ(r.status, first.status);
    EXPECT_EQ(r.stats.nodes, first.stats.nodes);
    EXPECT_EQ(r.stats.lp_iterations, first.stats.lp_iterations);
    if (first.has_solution()) {
      EXPECT_EQ(r.objective, first.objective);
      EXPECT_EQ(r.x, first.x);
    }
  }
}

TEST(SolverStress, LowestIndexTieBreak) {
  // The root LP optimum is uniquely (0.5, 0.5, 0.5): maximizing
  // x1 + 0.6y under x1 <= x2, x1 + x2 <= 1, y <= x2 trades x1 against y
  // through x2 and peaks at x2 = 0.5. All three variables are fractional
  // at distance 0.5, so every branching score ties and the solver must
  // take the lowest index, x1. Its down-child LP (x1 = 0) is integral at
  // (0, 1, 1) — the optimum — and its up-child is infeasible, so the
  // lowest-index choice shows up as exactly one branching, one incumbent,
  // and three nodes. Branching on x2 instead would pass through the
  // inferior incumbent (0,0,0) first (two incumbents); branching on y
  // leaves x1, x2 fractional in both children (more nodes).
  Model m;
  const Var x1 = m.add_binary("x1");
  const Var x2 = m.add_binary("x2");
  const Var y = m.add_binary("y");
  m.add_le(LinExpr(x1) + LinExpr(x2), 1.0);
  m.add_le(LinExpr(x1) - LinExpr(x2), 0.0);
  m.add_le(LinExpr(y) - LinExpr(x2), 0.0);
  m.minimize(-1.0 * LinExpr(x1) - 0.6 * LinExpr(y));
  SolveOptions opts;
  opts.root_dive = false;  // keep the branching decision observable
  const MipResult r = solve(m, opts);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, -0.6, 1e-9);
  EXPECT_NEAR(r.x[0], 0.0, 1e-9);
  EXPECT_NEAR(r.x[1], 1.0, 1e-9);
  EXPECT_NEAR(r.x[2], 1.0, 1e-9);
  EXPECT_EQ(r.stats.fractional_branches, 1);
  EXPECT_EQ(r.stats.incumbents, 1);
  EXPECT_EQ(r.stats.nodes, 3);
}

TEST(SolverStress, PropagationPrunesWithoutLpWork) {
  // x + y >= 2 and x + y <= 1 over binaries: activity bounds alone prove
  // infeasibility, so the root must be pruned before any simplex pivot.
  Model m;
  const Var x = m.add_binary("x");
  const Var y = m.add_binary("y");
  m.add_ge(LinExpr(x) + LinExpr(y), 2.0);
  m.add_le(LinExpr(x) + LinExpr(y), 1.0);
  m.minimize(LinExpr(x) + LinExpr(y));
  const MipResult r = solve(m);
  EXPECT_EQ(r.status, SolveStatus::kInfeasible);
  EXPECT_GE(r.stats.propagation_prunes, 1);
  EXPECT_EQ(r.stats.lp_iterations, 0);
}

TEST(SolverStress, PropagationTightensChainImplications) {
  // Branching on z forces x and y through 2x + 2y <= 4z once z = 0; with
  // propagation on, some node records tightenings on a model the solver
  // must still get right.
  Model m;
  const Var z = m.add_binary("z");
  std::vector<Var> xs;
  for (int i = 0; i < 6; ++i) xs.push_back(m.add_binary("x" + std::to_string(i)));
  LinExpr link;
  for (const Var& v : xs) link += LinExpr(v);
  m.add_le(std::move(link) - 6.0 * LinExpr(z), 0.0);  // sum x_i <= 6 z
  LinExpr obj = 5.0 * LinExpr(z);
  for (const Var& v : xs) obj += -2.0 * LinExpr(v);
  m.minimize(std::move(obj));  // worth opening z: -12 + 5 < 0
  const MipResult r = solve(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, -7.0, 1e-6);
}

TEST(SolverStress, IncumbentTimelineIsImprovingAndMonotone) {
  const Model m = random_model(55, 12, 2, 6);
  const MipResult r = solve(m);
  if (!r.has_solution()) GTEST_SKIP() << "instance infeasible";
  const auto& tl = r.stats.incumbent_timeline;
  ASSERT_EQ(static_cast<long>(tl.size()), r.stats.incumbents);
  ASSERT_FALSE(tl.empty());
  for (size_t i = 1; i < tl.size(); ++i) {
    EXPECT_LT(tl[i].objective, tl[i - 1].objective);
    EXPECT_GE(tl[i].time_s, tl[i - 1].time_s);
    EXPECT_GE(tl[i].nodes, tl[i - 1].nodes);
  }
  EXPECT_NEAR(tl.back().objective, r.objective, 1e-9);
}

TEST(SolverStress, TinyIterationBudgetEscalatesAndRecovers) {
  // A 1-pivot budget forces the escalating retry path on essentially every
  // node; the fix that restores the budget after each escalation must not
  // change the final answer.
  const Model m = random_model(3, 9, 1, 5);
  SolveOptions normal;
  const MipResult ref = solve(m, normal);

  SolveOptions strangled = normal;
  strangled.lp.max_iters = 1;
  const MipResult r = solve(m, strangled);
  ASSERT_EQ(r.status, ref.status);
  if (ref.has_solution()) {
    EXPECT_NEAR(r.objective, ref.objective, 1e-6 * std::max(1.0, std::abs(ref.objective)));
  }
  EXPECT_GE(r.stats.numerical_failures, 1);
}

TEST(SolverStress, StatsJsonContainsCounters) {
  const Model m = random_model(9, 8, 0, 4);
  const MipResult r = solve(m);
  const std::string js = r.stats.to_json();
  EXPECT_NE(js.find("\"nodes\""), std::string::npos);
  EXPECT_NE(js.find("\"lp_iterations\""), std::string::npos);
  EXPECT_NE(js.find("\"warm_start_hit_rate\""), std::string::npos);
  EXPECT_NE(js.find("\"incumbent_timeline\""), std::string::npos);
}

// --- Cutoff tie semantics -------------------------------------------------
//
// The cutoff contract is inclusive: passing a best-known objective as the
// cutoff must get kFeasible/kOptimal back when the optimum equals it, not
// kNoSolution. The historic bug pruned tie-equal integral points before
// checking integrality: min y+z s.t. y+z >= 1 has a fractional root LP
// (0.5, 0.5), the dive fixes one var, the child LP lands integral exactly
// at the cutoff — and was dropped.

/// min y + z  s.t.  y + z >= 1, binaries. Optimum 1, attained only at a
/// point whose objective ties any cutoff of 1.
Model tie_model() {
  Model m;
  const Var y = m.add_binary("y");
  const Var z = m.add_binary("z");
  m.add_ge(LinExpr(y) + LinExpr(z), 1.0);
  m.minimize(LinExpr(y) + LinExpr(z));
  return m;
}

TEST(CutoffTie, TieEqualOptimumIsFoundWithoutStart) {
  const Model m = tie_model();
  SolveOptions opts;
  opts.cutoff = 1.0;  // exactly the optimum
  const MipResult r = solve(m, opts);
  ASSERT_TRUE(r.has_solution());
  EXPECT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 1.0, 1e-9);
}

TEST(CutoffTie, TieEqualMipStartIsAccepted) {
  const Model m = tie_model();
  SolveOptions opts;
  opts.cutoff = 1.0;
  opts.mip_start = {1.0, 0.0};
  const MipResult r = solve(m, opts);
  ASSERT_TRUE(r.has_solution());
  EXPECT_NEAR(r.objective, 1.0, 1e-9);
  EXPECT_TRUE(r.stats.mip_start_used);
}

TEST(CutoffTie, StrictlyBelowOptimumStaysNoSolution) {
  // The other side of the tie must hold too: a cutoff strictly below the
  // optimum (beyond tolerance) proves "nothing better exists".
  const Model m = tie_model();
  SolveOptions opts;
  opts.cutoff = 1.0 - 1e-3;
  const MipResult r = solve(m, opts);
  EXPECT_EQ(r.status, SolveStatus::kNoSolution);
  EXPECT_FALSE(r.has_solution());
  // The exhausted-under-cutoff proof publishes the cutoff as the bound.
  EXPECT_NEAR(r.bound, opts.cutoff, 1e-9);
}

TEST(CutoffTie, RandomModelsTieCutoffNeverLosesTheOptimum) {
  int checked = 0;
  for (unsigned seed = 1; seed <= 20; ++seed) {
    const Model m = random_model(seed, 7, 0, 5);
    const MipResult ref = solve(m);
    if (!ref.has_solution()) continue;

    SolveOptions opts;
    opts.cutoff = ref.objective;  // inclusive tie on every instance
    const MipResult r = solve(m, opts);
    ASSERT_TRUE(r.has_solution()) << "seed " << seed;
    EXPECT_NEAR(r.objective, ref.objective, 1e-6 * std::max(1.0, std::abs(ref.objective)))
        << "seed " << seed;
    ++checked;
  }
  EXPECT_GE(checked, 10);
}

// --- relative_gap edge cases ----------------------------------------------

TEST(RelativeGap, NegativeObjectivesUseMagnitudeFloor) {
  // Minimization with negative cost: incumbent -100, bound -110. The old
  // |incumbent|-only denominator was fine here, but an incumbent near zero
  // with a large-magnitude negative bound exploded. The denominator honors
  // max(1, |incumbent|, |bound|).
  EXPECT_NEAR(relative_gap(-100.0, -110.0), 10.0 / 110.0, 1e-12);
  EXPECT_NEAR(relative_gap(-0.5, -10.0), 9.5 / 10.0, 1e-12);
  EXPECT_NEAR(relative_gap(0.0, -4.0), 1.0, 1e-12);
}

TEST(RelativeGap, BoundOvershootReadsAsProvenOptimal) {
  // Cut-tightened duals can nudge the bound a rounding error past the
  // incumbent; that is a proof, not a negative gap.
  EXPECT_EQ(relative_gap(5.0, 5.0), 0.0);
  EXPECT_EQ(relative_gap(5.0, 5.0 + 1e-13), 0.0);
  EXPECT_EQ(relative_gap(-7.0, -7.0 + 1e-13), 0.0);
  EXPECT_GE(relative_gap(5.0, 5.0 - 1e-6), 0.0);
}

TEST(RelativeGap, MissingSidesAreInfinite) {
  EXPECT_EQ(relative_gap(kInf, 0.0), kInf);
  EXPECT_EQ(relative_gap(0.0, -kInf), kInf);
  EXPECT_EQ(relative_gap(kInf, -kInf), kInf);
  const double nan = std::nan("");
  EXPECT_EQ(relative_gap(nan, 0.0), kInf);
  EXPECT_EQ(relative_gap(0.0, nan), kInf);
}

TEST(RelativeGap, PositiveCaseMatchesDefinition) {
  EXPECT_NEAR(relative_gap(10.0, 5.0), 0.5, 1e-12);
  EXPECT_NEAR(relative_gap(0.5, 0.25), 0.25, 1e-12);
}

}  // namespace
}  // namespace wnet::milp
