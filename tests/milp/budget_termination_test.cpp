// Budget and termination behavior of the MILP core: zero/tiny wall-clock
// budgets never borrow extra time, every early stop reports a structured
// TerminationReason with a valid anytime certificate (incumbent, global
// dual bound, gap), and growing the budget can only shrink the gap.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "core/encode/encoder.h"
#include "core/workloads/scenarios.h"
#include "milp/simplex/dual_simplex.h"
#include "milp/simplex/standard_lp.h"
#include "milp/solver.h"
#include "util/obs/json.h"

namespace wnet::milp {
namespace {

using util::exec::TerminationReason;

/// A knapsack family hard enough that branch-and-bound actually branches.
Model make_hard_knapsack(uint32_t seed, int n, int rows) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> w(1, 9);
  std::uniform_int_distribution<int> p(1, 20);
  Model m;
  std::vector<Var> xs;
  xs.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) xs.push_back(m.add_binary("x"));
  for (int r = 0; r < rows; ++r) {
    LinExpr e;
    int total = 0;
    for (int i = 0; i < n; ++i) {
      const int wi = w(rng);
      total += wi;
      e += static_cast<double>(wi) * LinExpr(xs[static_cast<size_t>(i)]);
    }
    m.add_le(std::move(e), std::floor(0.4 * total));
  }
  LinExpr obj;
  for (int i = 0; i < n; ++i) {
    obj += -static_cast<double>(p(rng)) * LinExpr(xs[static_cast<size_t>(i)]);
  }
  m.minimize(obj);
  return m;
}

/// The paper's Table-3-style wireless encoding (positive objective).
Model make_table3(int nodes, int devices, int kstar) {
  archex::workloads::ScalableConfig cfg;
  cfg.total_nodes = nodes;
  cfg.end_devices = devices;
  const auto sc = archex::workloads::make_scalable(cfg);
  archex::EncoderOptions eopts;
  eopts.k_star = kstar;
  archex::Encoder enc(*sc->tmpl, sc->spec, eopts);
  return enc.encode().model;
}

TEST(BudgetTermination, ZeroTimeLimitReturnsInstantlyWithDeadlineReason) {
  const Model m = make_hard_knapsack(7, 30, 6);
  SolveOptions opts;
  opts.time_limit_s = 0.0;
  const MipResult res = solve(m, opts);
  EXPECT_EQ(res.status, SolveStatus::kNoSolution);
  EXPECT_EQ(res.stats.termination, TerminationReason::kDeadline);
  // The regression this pins: the old per-node `std::max(1.0, remaining)`
  // floor silently granted a zero-budget solve a full second of LP work.
  EXPECT_EQ(res.stats.nodes, 0);
  EXPECT_LT(res.stats.time_s, 0.5);
  // The stats JSON must stay strictly valid even for a stopped empty run.
  EXPECT_TRUE(util::obs::json_valid(res.stats.to_json()))
      << util::obs::json_error(res.stats.to_json()).value_or("");
}

TEST(BudgetTermination, TinyBudgetIsNeverExtendedByRetryFloors) {
  const Model m = make_table3(50, 20, 6);  // seconds of work at full budget
  SolveOptions opts;
  opts.time_limit_s = 0.05;
  const MipResult res = solve(m, opts);
  // Must come back promptly: no retry path may re-floor the remaining
  // budget to 1s+ once the deadline is (nearly) spent. Generous margin so
  // a slow CI machine doesn't flap — the old floors overshot by >= 1s.
  EXPECT_LT(res.stats.time_s, 0.75);
  EXPECT_EQ(res.stats.termination, TerminationReason::kDeadline);
  EXPECT_TRUE(util::obs::json_valid(res.stats.to_json()));
}

TEST(BudgetTermination, CancelledTokenStopsTheSolveWithCancelledReason) {
  const Model m = make_hard_knapsack(8, 30, 6);
  util::exec::CancellationSource src;
  src.cancel();  // tripped before the solve even starts
  SolveOptions opts;
  opts.exec.token = src.token();
  const MipResult res = solve(m, opts);
  EXPECT_EQ(res.status, SolveStatus::kNoSolution);
  EXPECT_EQ(res.stats.termination, TerminationReason::kCancelled);
  EXPECT_EQ(res.stats.nodes, 0);
}

TEST(BudgetTermination, NodeBudgetStopsWithNodeLimitReasonAndSoundBound) {
  const Model m = make_table3(30, 10, 6);

  // Reference optimum for the certificate check.
  const MipResult full = solve(m, {});
  ASSERT_EQ(full.status, SolveStatus::kOptimal);

  SolveOptions opts;
  opts.exec.budget = std::make_shared<util::exec::ResourceBudget>(
      /*max_bb_nodes=*/20, /*max_yen_candidates=*/-1, /*max_encode_rows=*/-1);
  const MipResult res = solve(m, opts);
  EXPECT_EQ(res.stats.termination, TerminationReason::kNodeLimit);
  EXPECT_LE(res.stats.nodes, 21);
  // Anytime soundness: the reported bound must still be a valid global
  // lower bound on the true optimum, and any incumbent an upper bound.
  EXPECT_LE(res.stats.bound, full.objective + 1e-6);
  if (res.has_solution()) {
    EXPECT_GE(res.objective, full.objective - 1e-6);
    EXPECT_GE(res.stats.gap, 0.0);
  }
  EXPECT_TRUE(util::obs::json_valid(res.stats.to_json()));
}

TEST(BudgetTermination, GapIsMonotoneInTheNodeBudget) {
  // Growing the budget can only improve the anytime certificate: on the
  // deterministic solver, a larger node limit extends the smaller run's
  // search verbatim, so the dual bound only rises, the incumbent only
  // falls, and the relative gap only shrinks.
  const Model m = make_table3(30, 10, 6);
  const MipResult full = solve(m, {});
  ASSERT_EQ(full.status, SolveStatus::kOptimal);

  double prev_gap = kInf;
  double prev_bound = -kInf;
  for (long nodes : {5L, 20L, 80L, 320L, 100000L}) {
    SolveOptions opts;
    opts.node_limit = nodes;
    const MipResult res = solve(m, opts);
    EXPECT_GE(res.stats.bound, prev_bound - 1e-9) << "node_limit=" << nodes;
    EXPECT_LE(res.stats.gap, prev_gap + 1e-9) << "node_limit=" << nodes;
    EXPECT_LE(res.stats.bound, full.objective + 1e-6) << "node_limit=" << nodes;
    prev_bound = res.stats.bound;
    prev_gap = res.stats.gap;
  }
  EXPECT_EQ(prev_gap, 0.0);  // the last rung proves optimality
}

TEST(BudgetTermination, RelativeGapDefinition) {
  EXPECT_EQ(relative_gap(kInf, 10.0), kInf);    // no incumbent
  EXPECT_EQ(relative_gap(10.0, -kInf), kInf);   // no bound
  EXPECT_EQ(relative_gap(10.0, 10.0), 0.0);     // closed
  EXPECT_EQ(relative_gap(10.0, 12.0), 0.0);     // bound overshoot clamps to 0
  EXPECT_NEAR(relative_gap(10.0, 5.0), 0.5, 1e-12);
  EXPECT_NEAR(relative_gap(0.5, 0.25), 0.25, 1e-12);  // |inc| < 1: absolute scale
}

/// A dense LP that needs well over 64 pivots, so the dual simplex's
/// in-run (iter & 63) == 63 control check actually executes.
Model make_big_lp(int n) {
  // Sliding-window covering rows: every row needs several of its own
  // variables raised, so the pivot count grows ~linearly with n instead of
  // collapsing onto a few shared columns.
  Model m;
  std::vector<Var> xs;
  xs.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) xs.push_back(m.add_continuous("x", 0.0, 1.0));
  for (int r = 0; r + 4 < n; ++r) {
    LinExpr e;
    for (int j = 0; j < 5; ++j) e += LinExpr(xs[static_cast<size_t>(r + j)]);
    m.add_ge(std::move(e), 3.0);
  }
  LinExpr obj;
  for (int i = 0; i < n; ++i) {
    obj += (1.0 + static_cast<double>(i % 7)) * LinExpr(xs[static_cast<size_t>(i)]);
  }
  m.minimize(obj);
  return m;
}

TEST(BudgetTermination, DualSimplexDistinguishesTimeLimitFromIterLimit) {
  const Model m = make_big_lp(300);
  const simplex::StandardLp lp(m);

  // Sanity: unconstrained, this LP takes > 64 pivots (the check cadence).
  {
    simplex::DualSimplex ds(lp);
    const auto res = ds.solve();
    ASSERT_EQ(res.status, simplex::LpStatus::kOptimal);
    ASSERT_GT(res.iterations, 64);
  }
  // Expired wall clock -> kTimeLimit, NOT kIterLimit: the two reasons map
  // to different TerminationReasons and only kIterLimit warrants the
  // numerical-retry escalation in the MIP layer.
  {
    simplex::LpOptions o;
    o.time_limit_s = 0.0;
    simplex::DualSimplex ds(lp, o);
    EXPECT_EQ(ds.solve().status, simplex::LpStatus::kTimeLimit);
  }
  // Exhausted pivot budget still reports kIterLimit.
  {
    simplex::LpOptions o;
    o.max_iters = 10;
    simplex::DualSimplex ds(lp, o);
    EXPECT_EQ(ds.solve().status, simplex::LpStatus::kIterLimit);
  }
}

TEST(BudgetTermination, DualSimplexHonorsCancellationToken) {
  const Model m = make_big_lp(300);
  const simplex::StandardLp lp(m);
  util::exec::CancellationSource src;
  src.cancel();
  simplex::LpOptions o;
  o.cancel = src.token();
  simplex::DualSimplex ds(lp, o);
  EXPECT_EQ(ds.solve().status, simplex::LpStatus::kCancelled);
}

}  // namespace
}  // namespace wnet::milp
