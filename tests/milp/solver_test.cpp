#include "milp/solver.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "milp/model.h"

namespace wnet::milp {
namespace {

TEST(MipSolver, PureLpPassThrough) {
  Model m;
  const Var x = m.add_continuous("x", 0.0, 3.0);
  const Var y = m.add_continuous("y", 0.0, 2.0);
  m.add_le(LinExpr(x) + LinExpr(y), 4.0);
  m.minimize(-1.0 * LinExpr(x) - 2.0 * LinExpr(y));
  const auto res = solve(m);
  ASSERT_EQ(res.status, SolveStatus::kOptimal);
  EXPECT_NEAR(res.objective, -6.0, 1e-6);
}

TEST(MipSolver, SimpleKnapsack) {
  // max 10a + 6b + 4c s.t. a+b+c <= 2 (binary)  ->  min negated.
  Model m;
  const Var a = m.add_binary("a");
  const Var b = m.add_binary("b");
  const Var c = m.add_binary("c");
  m.add_le(LinExpr(a) + LinExpr(b) + LinExpr(c), 2.0);
  m.minimize(-10.0 * LinExpr(a) - 6.0 * LinExpr(b) - 4.0 * LinExpr(c));
  const auto res = solve(m);
  ASSERT_EQ(res.status, SolveStatus::kOptimal);
  EXPECT_NEAR(res.objective, -16.0, 1e-6);
  EXPECT_NEAR(res.x[0], 1.0, 1e-6);
  EXPECT_NEAR(res.x[1], 1.0, 1e-6);
  EXPECT_NEAR(res.x[2], 0.0, 1e-6);
}

TEST(MipSolver, WeightedKnapsackNeedsBranching) {
  // max 5x1 + 4x2 + 3x3  s.t. 2x1 + 3x2 + x3 <= 5, binaries.
  // Subsets: {x1,x2} weight 5 value 9; {x1,x3} weight 3 value 8;
  // {x2,x3} weight 4 value 7; all three weight 6 infeasible. Optimum 9.
  Model m;
  const Var x1 = m.add_binary("x1");
  const Var x2 = m.add_binary("x2");
  const Var x3 = m.add_binary("x3");
  m.add_le(2.0 * LinExpr(x1) + 3.0 * LinExpr(x2) + LinExpr(x3), 5.0);
  m.minimize(-5.0 * LinExpr(x1) - 4.0 * LinExpr(x2) - 3.0 * LinExpr(x3));
  const auto res = solve(m);
  ASSERT_EQ(res.status, SolveStatus::kOptimal);
  EXPECT_NEAR(res.objective, -9.0, 1e-6);
}

TEST(MipSolver, IntegerVariablesGeneralBounds) {
  // min x + y s.t. 3x + 2y >= 12, x,y integer in [0,10].
  // Candidates: x=4,y=0 (4); x=2,y=3 (5); x=0,y=6 (6); x=3, y=2 (5) ... best 4.
  Model m;
  const Var x = m.add_integer("x", 0, 10);
  const Var y = m.add_integer("y", 0, 10);
  m.add_ge(3.0 * LinExpr(x) + 2.0 * LinExpr(y), 12.0);
  m.minimize(LinExpr(x) + LinExpr(y));
  const auto res = solve(m);
  ASSERT_EQ(res.status, SolveStatus::kOptimal);
  EXPECT_NEAR(res.objective, 4.0, 1e-6);
}

TEST(MipSolver, InfeasibleIntegerProgram) {
  // 2x = 3 with x integer.
  Model m;
  const Var x = m.add_integer("x", 0, 10);
  m.add_eq(2.0 * LinExpr(x), 3.0);
  m.minimize(LinExpr(x));
  const auto res = solve(m);
  EXPECT_EQ(res.status, SolveStatus::kInfeasible);
}

TEST(MipSolver, InfeasibleLpRelaxation) {
  Model m;
  const Var x = m.add_binary("x");
  m.add_ge(LinExpr(x), 2.0);
  m.minimize(LinExpr(x));
  const auto res = solve(m);
  EXPECT_EQ(res.status, SolveStatus::kInfeasible);
}

TEST(MipSolver, EqualityConstrainedAssignment) {
  // 3x3 assignment problem with known optimum.
  const double cost[3][3] = {{4, 2, 8}, {4, 3, 7}, {3, 1, 6}};
  Model m;
  std::vector<std::vector<Var>> a(3, std::vector<Var>(3));
  LinExpr obj;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      a[static_cast<size_t>(i)][static_cast<size_t>(j)] = m.add_binary("a");
      obj += cost[i][j] * LinExpr(a[static_cast<size_t>(i)][static_cast<size_t>(j)]);
    }
  }
  for (int i = 0; i < 3; ++i) {
    LinExpr row, col;
    for (int j = 0; j < 3; ++j) {
      row += LinExpr(a[static_cast<size_t>(i)][static_cast<size_t>(j)]);
      col += LinExpr(a[static_cast<size_t>(j)][static_cast<size_t>(i)]);
    }
    m.add_eq(std::move(row), 1.0);
    m.add_eq(std::move(col), 1.0);
  }
  m.minimize(obj);
  const auto res = solve(m);
  ASSERT_EQ(res.status, SolveStatus::kOptimal);
  // Optimal assignment: (0,1)=2? Let's enumerate: perms of {0,1,2}:
  // 012: 4+3+6=13; 021: 4+7+1=12; 102: 2+4+6=12; 120: 2+7+3=12;
  // 201: 8+4+1=13; 210: 8+3+3=14. Min = 12.
  EXPECT_NEAR(res.objective, 12.0, 1e-6);
}

TEST(MipSolver, BigMIndicatorStructure) {
  // y >= x - M(1-b): if b then y >= x. Minimizing y with b forced on.
  Model m;
  const Var b = m.add_binary("b");
  const Var x = m.add_continuous("x", 0.0, 10.0);
  const Var y = m.add_continuous("y", 0.0, 10.0);
  m.add_ge(LinExpr(b), 1.0);
  m.add_ge(LinExpr(x), 7.0);
  m.add_ge(LinExpr(y) - LinExpr(x) - 10.0 * LinExpr(b), -10.0);  // y >= x - 10(1-b)
  m.minimize(LinExpr(y));
  const auto res = solve(m);
  ASSERT_EQ(res.status, SolveStatus::kOptimal);
  EXPECT_NEAR(res.objective, 7.0, 1e-6);
}

TEST(MipSolver, RespectsTimeLimitGracefully) {
  Model m;
  // A small but nontrivial set covering-ish model; limit time to 0 seconds:
  // must return promptly without crashing.
  std::vector<Var> xs;
  for (int i = 0; i < 20; ++i) xs.push_back(m.add_binary("x"));
  for (int r = 0; r < 15; ++r) {
    LinExpr e;
    for (int i = 0; i < 20; i += (r % 3) + 1) e += LinExpr(xs[static_cast<size_t>(i)]);
    m.add_ge(std::move(e), 2.0);
  }
  LinExpr obj;
  for (int i = 0; i < 20; ++i) obj += (1.0 + i % 5) * LinExpr(xs[static_cast<size_t>(i)]);
  m.minimize(obj);
  SolveOptions opts;
  opts.time_limit_s = 0.0;
  const auto res = solve(m, opts);
  // Either got lucky at the root or stopped early; both acceptable.
  SUCCEED() << to_string(res.status);
}

/// Brute force over all integer assignments (vars all integer, small boxes).
double brute_force_min(const Model& m) {
  const int n = m.num_vars();
  std::vector<double> x(static_cast<size_t>(n));
  std::vector<int> lo(static_cast<size_t>(n)), hi(static_cast<size_t>(n));
  for (int j = 0; j < n; ++j) {
    lo[static_cast<size_t>(j)] = static_cast<int>(std::ceil(m.vars()[static_cast<size_t>(j)].lb));
    hi[static_cast<size_t>(j)] = static_cast<int>(std::floor(m.vars()[static_cast<size_t>(j)].ub));
  }
  double best = kInf;
  std::vector<int> cur(static_cast<size_t>(n));
  for (int j = 0; j < n; ++j) cur[static_cast<size_t>(j)] = lo[static_cast<size_t>(j)];
  while (true) {
    for (int j = 0; j < n; ++j) x[static_cast<size_t>(j)] = cur[static_cast<size_t>(j)];
    if (m.is_feasible(x, 1e-9)) best = std::min(best, m.objective().evaluate(x));
    int j = 0;
    while (j < n) {
      if (++cur[static_cast<size_t>(j)] <= hi[static_cast<size_t>(j)]) break;
      cur[static_cast<size_t>(j)] = lo[static_cast<size_t>(j)];
      ++j;
    }
    if (j == n) break;
  }
  return best;
}

class RandomMipProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomMipProperty, MatchesBruteForce) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  std::uniform_int_distribution<int> coef(-4, 4);
  std::uniform_int_distribution<int> nvars(3, 6);
  std::uniform_int_distribution<int> nrows(2, 6);

  Model m;
  const int n = nvars(rng);
  std::vector<Var> xs;
  for (int j = 0; j < n; ++j) xs.push_back(m.add_integer("x", 0, 3));
  const int rows = nrows(rng);
  for (int r = 0; r < rows; ++r) {
    LinExpr e;
    bool nonzero = false;
    for (int j = 0; j < n; ++j) {
      const int c = coef(rng);
      if (c != 0) {
        e.add_term(xs[static_cast<size_t>(j)], c);
        nonzero = true;
      }
    }
    if (!nonzero) continue;
    const int rhs = coef(rng) + 3;
    const int sense = static_cast<int>(rng() % 3);
    if (sense == 0) {
      m.add_le(std::move(e), rhs);
    } else if (sense == 1) {
      m.add_ge(std::move(e), -rhs);
    } else {
      m.add_le(std::move(e), rhs + 4);
    }
  }
  LinExpr obj;
  for (int j = 0; j < n; ++j) obj += static_cast<double>(coef(rng)) * LinExpr(xs[static_cast<size_t>(j)]);
  m.minimize(obj);

  const double expect = brute_force_min(m);
  const auto res = solve(m);
  if (expect == kInf) {
    EXPECT_EQ(res.status, SolveStatus::kInfeasible) << "seed " << GetParam();
  } else {
    ASSERT_EQ(res.status, SolveStatus::kOptimal) << "seed " << GetParam();
    EXPECT_NEAR(res.objective, expect, 1e-6) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMipProperty, ::testing::Range(0, 40));

TEST(MipSolver, RecoversFromLpIterationStarvation) {
  // Regression for numerical-failure handling: with a starved per-LP
  // iteration budget the old single x2 retry still hit the limit and the
  // solve aborted with kNoSolution. Escalating cold retries (x10 per
  // attempt) must recover the node LP and still prove optimality.
  Model m;
  const Var x1 = m.add_binary("x1");
  const Var x2 = m.add_binary("x2");
  const Var x3 = m.add_binary("x3");
  m.add_le(2.0 * LinExpr(x1) + 3.0 * LinExpr(x2) + LinExpr(x3), 5.0);
  m.minimize(-5.0 * LinExpr(x1) - 4.0 * LinExpr(x2) - 3.0 * LinExpr(x3));

  SolveOptions opts;
  opts.lp.max_iters = 1;
  const auto res = solve(m, opts);
  ASSERT_EQ(res.status, SolveStatus::kOptimal);
  EXPECT_NEAR(res.objective, -9.0, 1e-6);
  EXPECT_GT(res.stats.numerical_failures, 0);
}

TEST(MipSolver, RetryEscalationIsBounded) {
  // With escalation disabled entirely the starved solve must fail the same
  // way the pre-hardening solver did — proving the retries are what save
  // RecoversFromLpIterationStarvation, and that the knob bounds the work.
  Model m;
  const Var x1 = m.add_binary("x1");
  const Var x2 = m.add_binary("x2");
  m.add_le(LinExpr(x1) + LinExpr(x2), 1.0);
  m.minimize(-2.0 * LinExpr(x1) - LinExpr(x2));

  SolveOptions opts;
  opts.lp.max_iters = 1;
  opts.max_numerical_retries = 0;
  const auto res = solve(m, opts);
  EXPECT_FALSE(res.has_solution());
  EXPECT_GT(res.stats.numerical_failures, 0);
}

}  // namespace
}  // namespace wnet::milp
