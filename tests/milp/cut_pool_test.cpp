#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "milp/cuts.h"
#include "milp/model.h"
#include "milp/tol.h"

namespace wnet::milp {
namespace {

Var v(int id) { return Var{id}; }

Cut make_cut(const std::vector<std::pair<int, double>>& terms, Sense sense, double rhs,
             const std::string& name = "") {
  Cut c;
  for (const auto& [id, coef] : terms) c.expr.add_term(v(id), coef);
  c.sense = sense;
  c.rhs = rhs;
  c.name = name;
  return c;
}

TEST(CutPool, ExactDuplicateIsRejected) {
  CutPool pool;
  EXPECT_TRUE(pool.add(make_cut({{0, 1.0}, {1, 1.0}}, Sense::kLe, 1.0)));
  EXPECT_FALSE(pool.add(make_cut({{0, 1.0}, {1, 1.0}}, Sense::kLe, 1.0)));
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.stats().proposed, 2);
  EXPECT_EQ(pool.stats().pooled, 1);
  EXPECT_EQ(pool.stats().duplicates, 1);
}

TEST(CutPool, EpsilonPerturbedDuplicateIsRejected) {
  // Separators rebuild rows from floating-point arithmetic, so the "same"
  // cut arrives perturbed in the last bits. The pool must not compare raw
  // doubles: a sub-tolerance perturbation on any coefficient or the rhs is
  // still the same cut.
  CutPool pool;
  ASSERT_TRUE(pool.add(make_cut({{0, 1.0}, {3, -0.5}}, Sense::kLe, 1.0)));
  EXPECT_FALSE(pool.add(make_cut({{0, 1.0}, {3, -0.5 + 1e-10}}, Sense::kLe, 1.0)));
  EXPECT_FALSE(pool.add(make_cut({{0, 1.0 - 1e-10}, {3, -0.5}}, Sense::kLe, 1.0)));
  EXPECT_FALSE(pool.add(make_cut({{0, 1.0}, {3, -0.5}}, Sense::kLe, 1.0 + 1e-10)));
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.stats().duplicates, 3);
}

TEST(CutPool, ScaledDuplicateIsRejected) {
  // 2x + 2y <= 2 is x + y <= 1; normalization (max |coef| = 1) must unify
  // them even though no raw coefficient matches.
  CutPool pool;
  ASSERT_TRUE(pool.add(make_cut({{0, 1.0}, {1, 1.0}}, Sense::kLe, 1.0)));
  EXPECT_FALSE(pool.add(make_cut({{0, 2.0}, {1, 2.0}}, Sense::kLe, 2.0)));
  EXPECT_FALSE(pool.add(make_cut({{0, 0.5}, {1, 0.5}}, Sense::kLe, 0.5)));
  EXPECT_EQ(pool.size(), 1u);
}

TEST(CutPool, GeNormalizesToLeAndDedups) {
  // x + y >= 1 negates to -x - y <= -1; proposing either form twice over
  // pools exactly one row, stored as kLe.
  CutPool pool;
  ASSERT_TRUE(pool.add(make_cut({{0, 1.0}, {1, 1.0}}, Sense::kGe, 1.0)));
  EXPECT_FALSE(pool.add(make_cut({{0, -1.0}, {1, -1.0}}, Sense::kLe, -1.0)));
  EXPECT_FALSE(pool.add(make_cut({{0, 2.0}, {1, 2.0}}, Sense::kGe, 2.0)));
  ASSERT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.sense(0), Sense::kLe);
  EXPECT_DOUBLE_EQ(pool.rhs(0), -1.0);
}

TEST(CutPool, ConstantFoldsIntoRhs) {
  // (x + y + 0.5) <= 1.5 is x + y <= 1.
  CutPool pool;
  Cut c = make_cut({{0, 1.0}, {1, 1.0}}, Sense::kLe, 1.5);
  c.expr += LinExpr(0.5);
  ASSERT_TRUE(pool.add(std::move(c)));
  EXPECT_FALSE(pool.add(make_cut({{0, 1.0}, {1, 1.0}}, Sense::kLe, 1.0)));
  EXPECT_DOUBLE_EQ(pool.rhs(0), 1.0);
}

TEST(CutPool, LargePerturbationIsANewCut) {
  CutPool pool;
  ASSERT_TRUE(pool.add(make_cut({{0, 1.0}, {1, 1.0}}, Sense::kLe, 1.0)));
  // Shifted rhs, changed coefficient, and different support are all new.
  EXPECT_TRUE(pool.add(make_cut({{0, 1.0}, {1, 1.0}}, Sense::kLe, 2.0)));
  EXPECT_TRUE(pool.add(make_cut({{0, 1.0}, {1, 0.5}}, Sense::kLe, 1.0)));
  EXPECT_TRUE(pool.add(make_cut({{0, 1.0}, {2, 1.0}}, Sense::kLe, 1.0)));
  EXPECT_EQ(pool.size(), 4u);
  EXPECT_EQ(pool.stats().duplicates, 0);
}

TEST(CutPool, ViolationIsNormalizedAndSigned) {
  CutPool pool;
  // 4x <= 2 normalizes to x <= 0.5; at x = 1 the normalized violation is
  // 0.5 regardless of the proposed scaling.
  ASSERT_TRUE(pool.add(make_cut({{0, 4.0}}, Sense::kLe, 2.0)));
  EXPECT_NEAR(pool.violation(0, {1.0}), 0.5, 1e-12);
  EXPECT_NEAR(pool.violation(0, {0.0}), -0.5, 1e-12);  // satisfied: negative
  EXPECT_NEAR(pool.max_violation({1.0}), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(pool.max_violation({0.0}), 0.0);  // clamped at 0
}

TEST(CutPool, SelectOrdersByViolationAndCaps) {
  CutPool pool;
  ASSERT_TRUE(pool.add(make_cut({{0, 1.0}}, Sense::kLe, 0.1, "weak")));
  ASSERT_TRUE(pool.add(make_cut({{1, 1.0}}, Sense::kLe, 0.5, "mid")));
  ASSERT_TRUE(pool.add(make_cut({{2, 1.0}}, Sense::kLe, 0.9, "strong_rhs")));

  CutPoolOptions opts;
  opts.max_cuts_per_round = 2;
  const std::vector<double> x = {1.0, 1.0, 1.0};  // violations 0.9, 0.5, 0.1
  const std::vector<size_t> picked = pool.select_violated(x, opts);
  ASSERT_EQ(picked.size(), 2u);
  EXPECT_EQ(pool.name(picked[0]), "weak");  // most violated first
  EXPECT_EQ(pool.name(picked[1]), "mid");
  EXPECT_EQ(pool.state(picked[0]), CutState::kActive);
  EXPECT_EQ(pool.state(2), CutState::kPooled);  // capped out, still pooled

  // An active cut is never re-selected, even while still violated.
  const std::vector<size_t> again = pool.select_violated(x, opts);
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(pool.name(again[0]), "strong_rhs");
}

TEST(CutPool, UnviolatedCutsAgeOutAndStayReadable) {
  CutPool pool;
  ASSERT_TRUE(pool.add(make_cut({{0, 1.0}}, Sense::kLe, 5.0, "never_tight")));
  CutPoolOptions opts;
  opts.max_age = 3;
  const std::vector<double> x = {0.0};
  for (int round = 0; round < 3; ++round) {
    EXPECT_TRUE(pool.select_violated(x, opts).empty());
    EXPECT_EQ(pool.state(0), CutState::kPooled) << "round " << round;
  }
  EXPECT_TRUE(pool.select_violated(x, opts).empty());  // age 4 > 3: purged
  EXPECT_EQ(pool.state(0), CutState::kPurged);
  EXPECT_EQ(pool.stats().purged, 1);

  // Purged cuts never come back even if they turn violated later...
  EXPECT_TRUE(pool.select_violated({10.0}, opts).empty());
  // ...but stay readable for the safety oracle.
  EXPECT_GT(pool.violation(0, {10.0}), 0.0);
  EXPECT_GT(pool.max_violation({10.0}), 0.0);
}

TEST(CutPool, EqualitySenseUsesAbsoluteViolation) {
  CutPool pool;
  ASSERT_TRUE(pool.add(make_cut({{0, 1.0}}, Sense::kEq, 1.0)));
  EXPECT_NEAR(pool.violation(0, {0.25}), 0.75, 1e-12);
  EXPECT_NEAR(pool.violation(0, {1.75}), 0.75, 1e-12);
  EXPECT_NEAR(pool.violation(0, {1.0}), 0.0, 1e-12);
}

}  // namespace
}  // namespace wnet::milp
