#pragma once

/// Shared random-model generator and brute-force oracle for the milp test
/// layer. Used by the solver stress tests and by the cut-safety oracle
/// tests, which need the same corpus so that lazily separated solves are
/// audited against exactly the instances the solver is known to get right.

#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "milp/cuts.h"
#include "milp/model.h"
#include "milp/solver.h"
#include "milp/tol.h"

namespace wnet::milp::tests {

/// Random mixed-binary minimization model: `nb` binaries, `nc` continuous
/// variables in [0, 5], `rows` inequality constraints with small integer
/// coefficients. Deterministic per seed.
inline Model random_model(unsigned seed, int nb, int nc, int rows) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> coef(-5, 5);
  std::uniform_real_distribution<double> obj(-10.0, 10.0);
  std::uniform_int_distribution<int> sense_pick(0, 2);

  Model m;
  std::vector<Var> vars;
  vars.reserve(static_cast<size_t>(nb + nc));
  for (int i = 0; i < nb; ++i) vars.push_back(m.add_binary("b" + std::to_string(i)));
  for (int i = 0; i < nc; ++i) vars.push_back(m.add_continuous("c" + std::to_string(i), 0.0, 5.0));

  LinExpr objective;
  for (const Var& v : vars) objective += obj(rng) * LinExpr(v);
  m.minimize(std::move(objective));

  for (int r = 0; r < rows; ++r) {
    LinExpr e;
    double lo = 0.0;  // row activity range over the box, to pick a sane rhs
    double hi = 0.0;
    for (const Var& v : vars) {
      const int a = coef(rng);
      if (a == 0) continue;
      e += static_cast<double>(a) * LinExpr(v);
      const double cap = m.var(v).ub;
      lo += a > 0 ? 0.0 : a * cap;
      hi += a > 0 ? a * cap : 0.0;
    }
    // Bias the rhs toward the permissive half of the activity range so most
    // instances are feasible (a uniform draw leaves ~2/3 of the joint
    // instances empty); the remainder still exercises the infeasible path.
    const double mid = 0.5 * (lo + hi);
    std::uniform_real_distribution<double> le_rhs(mid, hi);
    std::uniform_real_distribution<double> ge_rhs(lo, mid);
    const bool is_le = sense_pick(rng) != 1;
    const double rhs = std::round(is_le ? le_rhs(rng) : ge_rhs(rng));
    if (is_le) {
      m.add_le(std::move(e), rhs);
    } else {
      m.add_ge(std::move(e), rhs);
    }
  }
  return m;
}

/// Brute-force oracle: enumerate every binary assignment, fix the binaries
/// and solve the continuous remainder as an LP (the solver's root LP is
/// integral once every integer variable is fixed, so no branching logic is
/// exercised). Returns true and the optimum when some assignment is
/// feasible.
inline bool oracle_optimum(const Model& m, double* best) {
  std::vector<int> bins;
  for (int j = 0; j < m.num_vars(); ++j) {
    if (m.vars()[static_cast<size_t>(j)].type != VarType::kContinuous) bins.push_back(j);
  }
  bool found = false;
  *best = kInf;
  for (long mask = 0; mask < (1L << bins.size()); ++mask) {
    Model fixed = m;
    for (size_t k = 0; k < bins.size(); ++k) {
      const double v = (mask >> k) & 1 ? 1.0 : 0.0;
      fixed.set_bounds(Var{bins[k]}, v, v);
    }
    SolveOptions lp_only;
    lp_only.root_dive = false;
    const MipResult r = solve(fixed, lp_only);
    if (r.has_solution() && r.objective < *best) {
      *best = r.objective;
      found = true;
    }
  }
  return found;
}

/// Copy of `full` with the rows flagged in `dropped` omitted: the relaxed
/// skeleton a lazy encoder would hand the solver.
inline Model relax(const Model& full, const std::vector<bool>& dropped) {
  Model m;
  for (const VarData& vd : full.vars()) m.add_var(vd.name, vd.type, vd.lb, vd.ub);
  m.minimize(full.objective());
  for (size_t r = 0; r < full.constrs().size(); ++r) {
    if (dropped[r]) continue;
    const Constraint& c = full.constrs()[r];
    m.add_constr(c.expr, c.sense, c.rhs, c.name);
  }
  return m;
}

/// Separator recovering the dropped rows on demand: proposes every dropped
/// row the current point violates, exactly as the encoder-side lazy
/// callbacks rebuild their omitted families. Complete at any point, which
/// is what makes the solver's incumbent gate sound.
inline SeparationCallback dropped_row_separator(const Model& full, std::vector<bool> dropped) {
  return [full, dropped](const SeparationContext& ctx, CutPool& pool) {
    for (size_t r = 0; r < full.constrs().size(); ++r) {
      if (!dropped[r]) continue;
      const Constraint& c = full.constrs()[r];
      const double act = c.expr.evaluate(ctx.x);
      const bool violated = c.sense == Sense::kLe   ? act > c.rhs + tol::kCutViolation
                            : c.sense == Sense::kGe ? act < c.rhs - tol::kCutViolation
                                                    : std::abs(act - c.rhs) > tol::kCutViolation;
      if (!violated) continue;
      Cut cut;
      cut.expr = c.expr;
      cut.sense = c.sense;
      cut.rhs = c.rhs;
      cut.name = "lazy_row_" + std::to_string(r);
      pool.add(std::move(cut));
    }
  };
}

}  // namespace wnet::milp::tests
