// The solve daemon's contracts, pinned in-process:
//   - the canonical sub-object of every result is byte-identical across
//     1/2/4/8 worker threads and across cache states (serial reference vs
//     concurrent, cold vs warm);
//   - a duplicated request answers from the session cache with the same
//     canonical result and strictly lower wall clock;
//   - admission control rejects queue overflow and duplicate ids with
//     structured events, and cancel-by-id yields a deterministic partial
//     result without disturbing concurrent requests;
//   - every emitted line is strict RFC 8259 JSON.
#include "server/solve_service.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "channel/propagation.h"
#include "geometry/floorplan.h"
#include "server/session_cache.h"
#include "util/obs/json.h"

namespace wnet::server {
namespace {

using util::obs::JsonValue;
using util::obs::json_parse;
using util::obs::json_valid;

/// Small enough to solve in milliseconds, rich enough that higher K* rungs
/// change the model (two sensors crossing a relay corridor).
std::unique_ptr<archex::workloads::Scenario> make_tiny_scenario() {
  using namespace archex;
  auto sc = std::make_unique<workloads::Scenario>();
  sc->plan = geom::make_office_floor(40.0, 12.0);
  sc->model = std::make_unique<channel::MultiWallModel>(2.4e9, 2.4, sc->plan);
  sc->library = make_reference_library();
  sc->tmpl = std::make_unique<NetworkTemplate>(*sc->model, sc->library);
  sc->tmpl->add_node({"sink", {38.0, 6.0}, Role::kSink, NodeKind::kFixed, std::nullopt});
  for (int i = 0; i < 2; ++i) {
    sc->tmpl->add_node({"s" + std::to_string(i), {2.0, 3.0 + 6.0 * i}, Role::kSensor,
                        NodeKind::kFixed, std::nullopt});
  }
  for (int i = 0; i < 6; ++i) {
    sc->tmpl->add_node({"r" + std::to_string(i), {8.0 + 5.0 * i, 3.0 + (i % 2) * 6.0},
                        Role::kRelay, NodeKind::kCandidate, std::nullopt});
  }
  sc->spec.link_quality.min_snr_db = 35.0;
  sc->spec.objective = {1.0, 0.0, 0.0};
  for (int i = 0; i < 2; ++i) {
    RouteRequirement r;
    r.source = *sc->tmpl->find_node("s" + std::to_string(i));
    r.dest = 0;
    sc->spec.routes.push_back(r);
  }
  return sc;
}

/// Thread-safe line collector with typed helpers over the event stream.
class Collector {
 public:
  EventSink sink() {
    return [this](const std::string& line) {
      const std::lock_guard<std::mutex> lock(mu_);
      lines_.push_back(line);
    };
  }

  [[nodiscard]] std::vector<std::string> lines() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return lines_;
  }

  /// The first event of `kind` for request `id` (parsed), or nullopt.
  [[nodiscard]] std::optional<JsonValue> event(const std::string& kind,
                                              const std::string& id) const {
    for (const std::string& line : lines()) {
      const std::optional<JsonValue> v = json_parse(line);
      if (!v) continue;
      if (v->get_string("event", "") == kind && v->get_string("id", "") == id) return v;
    }
    return std::nullopt;
  }

  /// The canonical sub-object of `id`'s result, as raw JSON text (the byte
  /// string the differential contract is defined over).
  [[nodiscard]] std::string canonical_of(const std::string& id) const {
    for (const std::string& line : lines()) {
      const std::optional<JsonValue> v = json_parse(line);
      if (!v || v->get_string("event", "") != "result" || v->get_string("id", "") != id) continue;
      const size_t start = line.find("\"canonical\": ");
      const size_t end = line.find(", \"cache_hit\":");
      EXPECT_NE(start, std::string::npos) << line;
      EXPECT_NE(end, std::string::npos) << line;
      return line.substr(start + 13, end - (start + 13));
    }
    return {};
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::string> lines_;
};

Request solve_request(const std::string& id, std::vector<int> ladder,
                      const std::string& tenant = "") {
  Request r;
  r.id = id;
  r.tenant = tenant;
  r.template_key = "tiny";
  r.ladder = std::move(ladder);
  r.time_limit_s = 60.0;
  return r;
}

class SolveServiceTest : public ::testing::Test {
 protected:
  SolveServiceTest() { registry_.register_scenario("tiny", make_tiny_scenario()); }

  TemplateRegistry registry_;
};

TEST_F(SolveServiceTest, CanonicalResultsAreWorkerCountAndCacheStateInvariant) {
  // The same request mix on every worker count; within one run the repeated
  // key ("a" then "a2") also exercises warm-vs-cold inside the run.
  const auto batch = [&](SolveService& svc) {
    ASSERT_TRUE(svc.submit(solve_request("a", {1, 3}, "t1")));
    ASSERT_TRUE(svc.submit(solve_request("a2", {1, 3}, "t2")));
    ASSERT_TRUE(svc.submit(solve_request("b", {1, 2, 4}, "t1")));
    Request obj = solve_request("c", {1, 3}, "t2");
    obj.objective = archex::Objective{1.0, 0.1, 0.0};
    ASSERT_TRUE(svc.submit(obj));
    svc.wait_idle();
  };

  std::map<std::string, std::string> reference;
  for (const int workers : {1, 2, 4, 8}) {
    Collector out;
    ServiceConfig cfg;
    cfg.workers = workers;
    SolveService svc(registry_, cfg, out.sink());
    batch(svc);
    svc.shutdown();
    for (const std::string id : {"a", "a2", "b", "c"}) {
      const std::string canonical = out.canonical_of(id);
      ASSERT_FALSE(canonical.empty()) << "workers=" << workers << " id=" << id;
      EXPECT_TRUE(json_valid(canonical)) << canonical;
      if (workers == 1) {
        reference[id] = canonical;
      } else {
        // Byte-identical, not merely equivalent.
        EXPECT_EQ(canonical, reference[id]) << "workers=" << workers << " id=" << id;
      }
    }
    for (const std::string& line : out.lines()) {
      EXPECT_TRUE(json_valid(line)) << line;
    }
  }
  // The objective override must actually change the answer's key (sanity
  // that the differential is not comparing four copies of one solve).
  EXPECT_NE(reference["a"], reference["b"]);
}

TEST_F(SolveServiceTest, DuplicateRequestAnswersFromCacheFasterWithIdenticalResult) {
  Collector out;
  ServiceConfig cfg;
  cfg.workers = 1;
  SolveService svc(registry_, cfg, out.sink());
  ASSERT_TRUE(svc.submit(solve_request("cold", {1, 3})));
  svc.wait_idle();
  ASSERT_TRUE(svc.submit(solve_request("warm", {1, 3})));
  svc.wait_idle();
  svc.shutdown();

  const std::optional<JsonValue> cold = out.event("result", "cold");
  const std::optional<JsonValue> warm = out.event("result", "warm");
  ASSERT_TRUE(cold.has_value());
  ASSERT_TRUE(warm.has_value());
  EXPECT_FALSE(cold->get_bool("cache_hit", true));
  EXPECT_TRUE(warm->get_bool("cache_hit", false));
  EXPECT_EQ(warm->get_number("reused_rungs", 0.0), 2.0);
  EXPECT_EQ(out.canonical_of("warm"), out.canonical_of("cold"));
  // The acceptance bar: answered from cache with strictly lower wall clock.
  EXPECT_LT(*warm->get_number("wall_time_s"), *cold->get_number("wall_time_s"));

  // Warm rung events replay with cache_hit: true.
  const std::optional<JsonValue> rung = out.event("rung", "warm");
  ASSERT_TRUE(rung.has_value());
  EXPECT_TRUE(rung->get_bool("cache_hit", false));
}

TEST_F(SolveServiceTest, ExtendedLadderResumesFromCachedPrefix) {
  Collector out;
  ServiceConfig cfg;
  cfg.workers = 1;
  SolveService svc(registry_, cfg, out.sink());
  ASSERT_TRUE(svc.submit(solve_request("short", {1, 2})));
  svc.wait_idle();
  ASSERT_TRUE(svc.submit(solve_request("long", {1, 2, 4})));
  svc.wait_idle();

  // Reference: the same long ladder solved cold in a fresh service.
  Collector ref_out;
  SolveService ref(registry_, cfg, ref_out.sink());
  ASSERT_TRUE(ref.submit(solve_request("long", {1, 2, 4})));
  ref.wait_idle();

  EXPECT_EQ(out.canonical_of("long"), ref_out.canonical_of("long"));
  const std::optional<JsonValue> result = out.event("result", "long");
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->get_bool("cache_hit", false));
  // Rungs 1 and 2 replay; only the stop rule decides whether rung 4 runs.
  EXPECT_GE(result->get_number("reused_rungs", 0.0), 2.0);
}

TEST_F(SolveServiceTest, AdmissionControlRejectsOverflowAndDuplicates) {
  Collector out;
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.queue_limit = 2;
  cfg.start_paused = true;  // admission decisions independent of solve speed
  SolveService svc(registry_, cfg, out.sink());

  EXPECT_TRUE(svc.submit(solve_request("q1", {1})));
  EXPECT_FALSE(svc.submit(solve_request("q1", {1})));  // duplicate id
  EXPECT_TRUE(svc.submit(solve_request("q2", {1})));
  EXPECT_FALSE(svc.submit(solve_request("q3", {1})));  // queue full

  const std::optional<JsonValue> dup = out.event("rejected", "q1");
  ASSERT_TRUE(dup.has_value());
  EXPECT_EQ(dup->get_string("reason", ""), "duplicate_id");
  const std::optional<JsonValue> full = out.event("rejected", "q3");
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(full->get_string("reason", ""), "queue_full");

  svc.resume();
  svc.wait_idle();
  svc.shutdown();
  EXPECT_TRUE(out.event("result", "q1").has_value());
  EXPECT_TRUE(out.event("result", "q2").has_value());
}

TEST_F(SolveServiceTest, CancelledRequestYieldsStructuredPartialResultWithoutDisturbingOthers) {
  Collector out;
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.start_paused = true;
  SolveService svc(registry_, cfg, out.sink());
  ASSERT_TRUE(svc.submit(solve_request("doomed", {1, 3})));
  ASSERT_TRUE(svc.submit(solve_request("survivor", {1, 3})));
  EXPECT_TRUE(svc.cancel("doomed"));
  EXPECT_FALSE(svc.cancel("nonexistent"));
  svc.resume();
  svc.wait_idle();
  svc.shutdown();

  // The cancelled request still answers — as a structured partial result.
  const std::string cancelled = out.canonical_of("doomed");
  ASSERT_FALSE(cancelled.empty());
  const std::optional<JsonValue> doc = json_parse(cancelled);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->get_string("termination", ""), "cancelled");
  EXPECT_EQ(doc->get_number("chosen_k", -1.0), 0.0);

  // The concurrent request is untouched: identical to a solo reference run.
  Collector ref_out;
  ServiceConfig ref_cfg;
  ref_cfg.workers = 1;
  SolveService ref(registry_, ref_cfg, ref_out.sink());
  ASSERT_TRUE(ref.submit(solve_request("survivor", {1, 3})));
  ref.wait_idle();
  EXPECT_EQ(out.canonical_of("survivor"), ref_out.canonical_of("survivor"));
}

TEST_F(SolveServiceTest, DeadlineStoppedRequestReportsStructuredPartialResult) {
  Collector out;
  ServiceConfig cfg;
  cfg.workers = 1;
  SolveService svc(registry_, cfg, out.sink());
  Request r = solve_request("rushed", {1, 3});
  r.time_limit_s = 1e-9;  // expires before the first rung
  ASSERT_TRUE(svc.submit(r));
  svc.wait_idle();
  svc.shutdown();
  const std::optional<JsonValue> doc = json_parse(out.canonical_of("rushed"));
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->get_string("termination", ""), "deadline");
}

TEST_F(SolveServiceTest, BadSpecTextFailsWithLineNumberedError) {
  Collector out;
  ServiceConfig cfg;
  cfg.workers = 1;
  SolveService svc(registry_, cfg, out.sink());
  Request r = solve_request("badspec", {1});
  r.spec_text = "p1 = has_path(s0, sink)\nmax_hops(p1, 3.9)\n";
  ASSERT_TRUE(svc.submit(r));  // admission does not parse spec text
  svc.wait_idle();
  svc.shutdown();
  const std::optional<JsonValue> failed = out.event("failed", "badspec");
  ASSERT_TRUE(failed.has_value());
  const std::string error = failed->get_string("error", "");
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_NE(error.find("positive integer"), std::string::npos) << error;
}

TEST_F(SolveServiceTest, SubmitLineParsesAndRejectsStructurally) {
  Collector out;
  ServiceConfig cfg;
  cfg.workers = 1;
  SolveService svc(registry_, cfg, out.sink());

  EXPECT_TRUE(svc.submit_line("not json"));
  EXPECT_TRUE(svc.submit_line(R"({"op": "solve"})"));                        // missing id
  EXPECT_TRUE(svc.submit_line(R"({"op": "solve", "id": "x"})"));             // missing template
  EXPECT_TRUE(svc.submit_line(R"({"op": "frobnicate", "id": "y"})"));        // unknown op
  EXPECT_TRUE(svc.submit_line(
      R"({"op": "solve", "id": "z", "template": "tiny", "ladder": [1, 1]})"));  // not increasing
  EXPECT_TRUE(svc.submit_line(
      R"({"op": "solve", "id": "w", "template": "tiny", "ladder": [2.5]})"));   // fractional
  int rejected = 0;
  for (const std::string& line : out.lines()) {
    const std::optional<JsonValue> v = json_parse(line);
    ASSERT_TRUE(v.has_value()) << line;
    if (v->get_string("event", "") == "rejected") {
      ++rejected;
      EXPECT_EQ(v->get_string("reason", ""), "bad_request");
    }
  }
  EXPECT_EQ(rejected, 6);

  EXPECT_TRUE(svc.submit_line(R"({"op": "stats"})"));
  svc.shutdown();
  bool saw_stats = false;
  for (const std::string& line : out.lines()) {
    const std::optional<JsonValue> v = json_parse(line);
    if (v && v->get_string("event", "") == "stats") {
      saw_stats = true;
      EXPECT_GE(v->get_number("rejected", -1.0), 6.0);
    }
  }
  EXPECT_TRUE(saw_stats);
}

TEST_F(SolveServiceTest, RegistryKnowsBuiltinsAndCacheKeyIsContentAddressed) {
  TemplateRegistry reg;
  EXPECT_TRUE(reg.known("data_collection"));
  EXPECT_TRUE(reg.known("localization"));
  EXPECT_TRUE(reg.known("scalable:40x15"));
  EXPECT_FALSE(reg.known("scalable:40x"));
  EXPECT_FALSE(reg.known("scalable:40x15 "));
  EXPECT_FALSE(reg.known("scalable:15x40"));  // devices >= nodes
  EXPECT_FALSE(reg.known("office"));
  const archex::workloads::Scenario* a = reg.get("scalable:40x15");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, reg.get("scalable:40x15"));  // cached, stable pointer

  const std::string k1 = make_cache_key("tiny", "", 1.0, 0.0, 0.0);
  EXPECT_EQ(k1, make_cache_key("tiny", "", 1.0, 0.0, 0.0));
  EXPECT_NE(k1, make_cache_key("tiny", "", 1.0, 0.1, 0.0));
  EXPECT_NE(k1, make_cache_key("tiny", "objective cost=1", 1.0, 0.0, 0.0));
  EXPECT_NE(k1, make_cache_key("tiny2", "", 1.0, 0.0, 0.0));
  EXPECT_NE(cache_key_hash(k1), cache_key_hash(make_cache_key("tiny2", "", 1.0, 0.0, 0.0)));
}

TEST_F(SolveServiceTest, SessionCacheEvictsLeastRecentlyUsedUnderByteBudget) {
  SessionCache cache(1);  // 1-byte budget: everything real is over it
  auto entry = std::make_unique<CachedSession>();
  entry->rung_ks.push_back(1);
  entry->rung_results.emplace_back();
  cache.checkin("k1", std::move(entry));  // larger than the budget: dropped
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.checkout("k1"), nullptr);
  EXPECT_EQ(cache.stats().misses, 1);
}

}  // namespace
}  // namespace wnet::server
