#include <gtest/gtest.h>

#include "channel/propagation.h"

namespace wnet::channel {
namespace {

TEST(ItuIndoor, MatchesClosedForm) {
  const ItuIndoorModel m(2.4e9, 30.0);
  // PL(d) = 20 log10(2400) + 30 log10(d) - 28.
  const double fixed = 20.0 * std::log10(2400.0) - 28.0;
  EXPECT_NEAR(m.path_loss_db({0, 0}, {1, 0}), fixed, 1e-9);
  EXPECT_NEAR(m.path_loss_db({0, 0}, {10, 0}), fixed + 30.0, 1e-9);
  // 30 dB per decade: steeper than free space, shallower than n=4.
  EXPECT_NEAR(m.path_loss_db({0, 0}, {100, 0}) - m.path_loss_db({0, 0}, {10, 0}), 30.0, 1e-9);
}

TEST(ItuIndoor, RejectsBadParams) {
  EXPECT_THROW(ItuIndoorModel(0.0), std::invalid_argument);
  EXPECT_THROW(ItuIndoorModel(2.4e9, -1.0), std::invalid_argument);
}

TEST(TwoRay, FreeSpaceBelowCrossover) {
  const TwoRayModel m(2.4e9, 1.5, 1.5);
  const FreeSpaceModel fs(2.4e9);
  const double dc = m.crossover_distance_m();
  EXPECT_GT(dc, 100.0);  // ~226 m at 2.4 GHz with 1.5 m antennas
  EXPECT_NEAR(m.path_loss_db({0, 0}, {dc / 2, 0}), fs.path_loss_db({0, 0}, {dc / 2, 0}), 1e-9);
}

TEST(TwoRay, FourthPowerBeyondCrossover) {
  const TwoRayModel m(2.4e9, 1.5, 1.5);
  const double dc = m.crossover_distance_m();
  const double pl1 = m.path_loss_db({0, 0}, {2 * dc, 0});
  const double pl2 = m.path_loss_db({0, 0}, {20 * dc, 0});
  EXPECT_NEAR(pl2 - pl1, 40.0, 1e-9);  // 40 dB per decade
  // Taller antennas reduce loss in the far regime.
  const TwoRayModel tall(2.4e9, 10.0, 10.0);
  EXPECT_LT(tall.path_loss_db({0, 0}, {2000 + 2 * dc, 0}),
            m.path_loss_db({0, 0}, {2000 + 2 * dc, 0}));
}

TEST(TwoRay, RejectsBadHeights) {
  EXPECT_THROW(TwoRayModel(2.4e9, 0.0, 1.0), std::invalid_argument);
}

TEST(Models, RelativeSeverityAtOfficeScale) {
  // At 30 m indoors: free space < ITU office < log-distance n=3.5-ish.
  const FreeSpaceModel fs(2.4e9);
  const ItuIndoorModel itu(2.4e9);
  const LogDistanceModel ld(2.4e9, 3.5);
  const geom::Vec2 a{0, 0};
  const geom::Vec2 b{30, 0};
  EXPECT_LT(fs.path_loss_db(a, b), itu.path_loss_db(a, b));
  EXPECT_LT(itu.path_loss_db(a, b), ld.path_loss_db(a, b));
}

}  // namespace
}  // namespace wnet::channel
