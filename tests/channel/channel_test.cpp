#include <gtest/gtest.h>

#include "channel/link_budget.h"
#include "channel/link_metrics.h"
#include "channel/propagation.h"

namespace wnet::channel {
namespace {

TEST(FreeSpace, MatchesClosedForm) {
  const FreeSpaceModel m(2.4e9);
  // FSPL at 1 m, 2.4 GHz is ~40.05 dB.
  EXPECT_NEAR(m.path_loss_db({0, 0}, {1, 0}), 40.05, 0.05);
  // +20 dB per decade of distance.
  EXPECT_NEAR(m.path_loss_db({0, 0}, {10, 0}) - m.path_loss_db({0, 0}, {1, 0}), 20.0, 1e-9);
}

TEST(FreeSpace, ClampsBelowOneMeter) {
  const FreeSpaceModel m(2.4e9);
  EXPECT_DOUBLE_EQ(m.path_loss_db({0, 0}, {0.1, 0}), m.path_loss_db({0, 0}, {1, 0}));
}

TEST(FreeSpace, RejectsBadFrequency) {
  EXPECT_THROW(FreeSpaceModel(0.0), std::invalid_argument);
}

TEST(LogDistance, ExponentControlsSlope) {
  const LogDistanceModel m(2.4e9, 3.0);
  EXPECT_NEAR(m.path_loss_db({0, 0}, {10, 0}) - m.path_loss_db({0, 0}, {1, 0}), 30.0, 1e-9);
  // Exponent 2 coincides with free space.
  const LogDistanceModel fs_like(2.4e9, 2.0);
  const FreeSpaceModel fs(2.4e9);
  EXPECT_NEAR(fs_like.path_loss_db({0, 0}, {25, 0}), fs.path_loss_db({0, 0}, {25, 0}), 1e-9);
}

TEST(LogDistance, RejectsBadParams) {
  EXPECT_THROW(LogDistanceModel(2.4e9, 0.0), std::invalid_argument);
  EXPECT_THROW(LogDistanceModel(2.4e9, 2.0, -1.0), std::invalid_argument);
}

TEST(MultiWall, AddsWallLosses) {
  geom::FloorPlan plan(20, 10);
  plan.add_wall({5, 0}, {5, 10}, geom::WallMaterial::kConcrete);
  const LogDistanceModel base(2.4e9, 2.8);
  const MultiWallModel mw(2.4e9, 2.8, plan);
  const geom::Vec2 a{1, 5};
  const geom::Vec2 b{9, 5};
  EXPECT_NEAR(mw.path_loss_db(a, b) - base.path_loss_db(a, b),
              geom::default_wall_loss_db(geom::WallMaterial::kConcrete), 1e-9);
  // Same side of the wall: no extra loss.
  EXPECT_NEAR(mw.path_loss_db({1, 5}, {4, 5}), base.path_loss_db({1, 5}, {4, 5}), 1e-9);
}

TEST(LinkBudget, RssAndSnr) {
  LinkBudget lb;
  lb.tx_power_dbm = 4.5;
  lb.tx_gain_dbi = 3.0;
  lb.rx_gain_dbi = 1.0;
  lb.path_loss_db = 70.0;
  EXPECT_DOUBLE_EQ(lb.rss_dbm(), 4.5 + 3.0 + 1.0 - 70.0);
  EXPECT_DOUBLE_EQ(lb.snr_db(-100.0), lb.rss_dbm() + 100.0);
}

TEST(Ber, MonotoneDecreasingInSnr) {
  double prev = 1.0;
  for (double snr = -10; snr <= 20; snr += 2) {
    const double ber = bit_error_rate(Modulation::kQpsk, snr);
    EXPECT_LE(ber, prev);
    prev = ber;
  }
  // At 20 dB SNR, QPSK BER is essentially zero.
  EXPECT_LT(bit_error_rate(Modulation::kQpsk, 20.0), 1e-12);
  // At very low SNR it approaches 1/2.
  EXPECT_GT(bit_error_rate(Modulation::kQpsk, -20.0), 0.3);
}

TEST(Ber, FskWorseThanPsk) {
  for (double snr = 0; snr <= 12; snr += 3) {
    EXPECT_GE(bit_error_rate(Modulation::kFsk, snr), bit_error_rate(Modulation::kBpsk, snr));
  }
}

TEST(Per, PacketErrorRateBounds) {
  EXPECT_DOUBLE_EQ(packet_error_rate(0.0, 50), 0.0);
  EXPECT_NEAR(packet_error_rate(1.0, 50), 1.0, 1e-12);
  // 400-bit packet at BER 1e-3: PER = 1 - (1-1e-3)^400 ~ 0.33.
  EXPECT_NEAR(packet_error_rate(1e-3, 50), 1.0 - std::pow(1.0 - 1e-3, 400), 1e-12);
  EXPECT_THROW((void)packet_error_rate(0.5, 0), std::invalid_argument);
}

TEST(Etx, ExpectedTransmissions) {
  EXPECT_DOUBLE_EQ(expected_transmissions(0.0), 1.0);
  EXPECT_DOUBLE_EQ(expected_transmissions(0.5), 2.0);
  EXPECT_DOUBLE_EQ(expected_transmissions(1.0, 100.0), 100.0);  // clamped
}

TEST(Etx, CleanLinkCostsOneTransmission) {
  EXPECT_NEAR(etx_from_snr(Modulation::kQpsk, 20.0, 50), 1.0, 1e-9);
  EXPECT_GT(etx_from_snr(Modulation::kQpsk, 3.0, 50), 1.5);
}

TEST(EtxStaircase, ConservativeUpperApproximation) {
  const auto table = build_etx_staircase(Modulation::kQpsk, 50, 0.0, 20.0, 41);
  ASSERT_EQ(table.size(), 41u);
  // Staircase is non-increasing in SNR.
  for (size_t i = 1; i < table.size(); ++i) EXPECT_LE(table[i].etx, table[i - 1].etx + 1e-12);
  // Lookup never underestimates the true ETX inside the range.
  for (double snr = 0.0; snr <= 20.0; snr += 0.37) {
    EXPECT_GE(etx_staircase_lookup(table, snr) + 1e-9,
              etx_from_snr(Modulation::kQpsk, snr, 50))
        << "snr " << snr;
  }
  // Below the range: worst case of the table.
  EXPECT_DOUBLE_EQ(etx_staircase_lookup(table, -5.0), table.front().etx);
}

TEST(EtxStaircase, RejectsBadArguments) {
  EXPECT_THROW(build_etx_staircase(Modulation::kQpsk, 50, 0.0, 20.0, 1), std::invalid_argument);
  EXPECT_THROW(build_etx_staircase(Modulation::kQpsk, 50, 5.0, 5.0, 4), std::invalid_argument);
  EXPECT_THROW(etx_staircase_lookup({}, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace wnet::channel
