#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace wnet::util {
namespace {

TEST(ResolveThreads, ExplicitPassesThroughAutoFloorsAtOne) {
  EXPECT_EQ(resolve_threads(1), 1);
  EXPECT_EQ(resolve_threads(5), 5);
  // 0 and negatives mean "auto": whatever the hardware reports, but >= 1.
  EXPECT_GE(resolve_threads(0), 1);
  EXPECT_GE(resolve_threads(-3), 1);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    EXPECT_EQ(pool.size(), 3);
    for (int i = 0; i < 64; ++i) pool.submit([&count] { count.fetch_add(1); });
  }  // workers finish the queue before joining
  EXPECT_EQ(count.load(), 64);
}

TEST(ParallelExecutor, SerialModeHasNoPool) {
  const ParallelExecutor serial(1);
  EXPECT_TRUE(serial.serial());
  EXPECT_EQ(serial.threads(), 1);
  const ParallelExecutor threaded(4);
  EXPECT_FALSE(threaded.serial());
  EXPECT_EQ(threaded.threads(), 4);
}

TEST(ParallelExecutor, ForEachCoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    const ParallelExecutor exec(threads);
    const int n = 257;  // deliberately not a multiple of any worker count
    std::vector<std::atomic<int>> hits(n);
    exec.for_each(n, [&hits](int i) { hits[static_cast<size_t>(i)].fetch_add(1); });
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(ParallelExecutor, HandlesEmptyAndTinyRanges) {
  const ParallelExecutor exec(4);
  int calls = 0;
  std::mutex mu;
  exec.for_each(0, [&](int) {
    const std::lock_guard<std::mutex> lk(mu);
    ++calls;
  });
  EXPECT_EQ(calls, 0);
  // Fewer items than workers: still every index exactly once.
  exec.for_each(2, [&](int) {
    const std::lock_guard<std::mutex> lk(mu);
    ++calls;
  });
  EXPECT_EQ(calls, 2);
}

TEST(ParallelExecutor, MapIsIndexOrderedForEveryThreadCount) {
  const auto expect = [](const std::vector<int>& out) {
    for (int i = 0; i < static_cast<int>(out.size()); ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i * i);
  };
  for (int threads : {1, 2, 4, 8}) {
    const ParallelExecutor exec(threads);
    expect(exec.map<int>(100, [](int i) { return i * i; }));
  }
}

TEST(ParallelExecutor, ExecutorIsReusableAcrossCalls) {
  const ParallelExecutor exec(3);
  for (int round = 0; round < 5; ++round) {
    const auto out = exec.map<int>(17, [round](int i) { return i + round; });
    for (int i = 0; i < 17; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i + round);
  }
}

TEST(ParallelExecutor, LowestIndexExceptionWins) {
  for (int threads : {1, 4}) {
    const ParallelExecutor exec(threads);
    try {
      exec.for_each(16, [](int i) {
        if (i == 3 || i == 7) throw std::runtime_error("boom " + std::to_string(i));
      });
      FAIL() << "expected an exception (threads=" << threads << ")";
    } catch (const std::runtime_error& e) {
      // The contract: the first exception in *index* order is rethrown,
      // independent of which worker hit its throw first.
      EXPECT_STREQ(e.what(), "boom 3") << "threads=" << threads;
    }
  }
}

TEST(ParallelExecutor, SurvivesAnExceptionAndKeepsWorking) {
  const ParallelExecutor exec(4);
  EXPECT_THROW(exec.for_each(8, [](int i) {
    if (i == 0) throw std::logic_error("first");
  }),
               std::logic_error);
  const auto out = exec.map<int>(8, [](int i) { return 2 * i; });
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], 2 * i);
}

}  // namespace
}  // namespace wnet::util
