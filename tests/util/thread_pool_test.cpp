#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/obs/trace.h"

namespace wnet::util {
namespace {

TEST(ResolveThreads, ExplicitPassesThroughAutoFloorsAtOne) {
  EXPECT_EQ(resolve_threads(1), 1);
  EXPECT_EQ(resolve_threads(5), 5);
  // 0 and negatives mean "auto": whatever the hardware reports, but >= 1.
  EXPECT_GE(resolve_threads(0), 1);
  EXPECT_GE(resolve_threads(-3), 1);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    EXPECT_EQ(pool.size(), 3);
    for (int i = 0; i < 64; ++i) pool.submit([&count] { count.fetch_add(1); });
  }  // workers finish the queue before joining
  EXPECT_EQ(count.load(), 64);
}

TEST(ParallelExecutor, SerialModeHasNoPool) {
  const ParallelExecutor serial(1);
  EXPECT_TRUE(serial.serial());
  EXPECT_EQ(serial.threads(), 1);
  const ParallelExecutor threaded(4);
  EXPECT_FALSE(threaded.serial());
  EXPECT_EQ(threaded.threads(), 4);
}

TEST(ParallelExecutor, ForEachCoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    const ParallelExecutor exec(threads);
    const int n = 257;  // deliberately not a multiple of any worker count
    std::vector<std::atomic<int>> hits(n);
    exec.for_each(n, [&hits](int i) { hits[static_cast<size_t>(i)].fetch_add(1); });
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(ParallelExecutor, HandlesEmptyAndTinyRanges) {
  const ParallelExecutor exec(4);
  int calls = 0;
  std::mutex mu;
  exec.for_each(0, [&](int) {
    const std::lock_guard<std::mutex> lk(mu);
    ++calls;
  });
  EXPECT_EQ(calls, 0);
  // Fewer items than workers: still every index exactly once.
  exec.for_each(2, [&](int) {
    const std::lock_guard<std::mutex> lk(mu);
    ++calls;
  });
  EXPECT_EQ(calls, 2);
}

TEST(ParallelExecutor, MapIsIndexOrderedForEveryThreadCount) {
  const auto expect = [](const std::vector<int>& out) {
    for (int i = 0; i < static_cast<int>(out.size()); ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i * i);
  };
  for (int threads : {1, 2, 4, 8}) {
    const ParallelExecutor exec(threads);
    expect(exec.map<int>(100, [](int i) { return i * i; }));
  }
}

TEST(ParallelExecutor, ExecutorIsReusableAcrossCalls) {
  const ParallelExecutor exec(3);
  for (int round = 0; round < 5; ++round) {
    const auto out = exec.map<int>(17, [round](int i) { return i + round; });
    for (int i = 0; i < 17; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i + round);
  }
}

TEST(ParallelExecutor, LowestIndexExceptionWins) {
  for (int threads : {1, 4}) {
    const ParallelExecutor exec(threads);
    try {
      exec.for_each(16, [](int i) {
        if (i == 3 || i == 7) throw std::runtime_error("boom " + std::to_string(i));
      });
      FAIL() << "expected an exception (threads=" << threads << ")";
    } catch (const std::runtime_error& e) {
      // The contract: the first exception in *index* order is rethrown,
      // independent of which worker hit its throw first.
      EXPECT_STREQ(e.what(), "boom 3") << "threads=" << threads;
    }
  }
}

TEST(ParallelExecutor, MultipleThrowersStillRethrowLowestAndRunEveryOtherIndex) {
  // Audit of the catch(...) in for_each: a throwing index must never abort
  // its siblings, and with several throwers the rethrown exception is still
  // the lowest-index one — the same one a serial loop would surface first.
  // (threads=1 has no pool, so plain serial throw-on-first semantics apply
  // there; the run-everything guarantee is the pooled path's contract.)
  for (int threads : {2, 4, 8}) {
    const int n = 16;
    std::vector<std::atomic<int>> ran(n);
    const ParallelExecutor exec(threads);
    try {
      exec.for_each(n, [&ran](int i) {
        ran[static_cast<size_t>(i)].fetch_add(1);
        if (i == 3 || i == 7 || i == 11) throw std::runtime_error(std::to_string(i));
      });
      FAIL() << "expected an exception (threads=" << threads << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "3") << "threads=" << threads;
    }
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(ran[static_cast<size_t>(i)].load(), 1) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(ParallelExecutor, SuppressedExceptionsAreCountedAndSurvivorWorkIsKept) {
  // C++ can only propagate one of the three exceptions; the other two must
  // not vanish silently. With the recorder on, for_each reports them to the
  // observability layer, and counters recorded by non-throwing tasks before
  // the rethrow are all retained.
  obs::TraceRecorder& rec = obs::TraceRecorder::global();
  rec.clear();
  rec.set_enabled(true);

  const ParallelExecutor exec(4);
  const int n = 12;
  try {
    exec.for_each(n, [&rec](int i) {
      if (i == 3 || i == 7 || i == 11) throw std::runtime_error(std::to_string(i));
      rec.counter_add("test.task." + std::to_string(i), 1.0);
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "3");
  }

  // 3 throwers, 1 rethrown => 2 suppressed.
  EXPECT_EQ(rec.counter_total("thread_pool.suppressed_exceptions"), 2.0);
  for (int i = 0; i < n; ++i) {
    if (i == 3 || i == 7 || i == 11) continue;
    EXPECT_EQ(rec.counter_total("test.task." + std::to_string(i)), 1.0) << "i=" << i;
  }

  rec.set_enabled(false);
  rec.clear();
}

TEST(ParallelExecutor, SingleExceptionSuppressesNothing) {
  obs::TraceRecorder& rec = obs::TraceRecorder::global();
  rec.clear();
  rec.set_enabled(true);
  const ParallelExecutor exec(4);
  EXPECT_THROW(exec.for_each(8, [](int i) {
    if (i == 5) throw std::runtime_error("only");
  }),
               std::runtime_error);
  EXPECT_EQ(rec.counter_total("thread_pool.suppressed_exceptions"), 0.0);
  rec.set_enabled(false);
  rec.clear();
}

TEST(ParallelExecutor, SurvivesAnExceptionAndKeepsWorking) {
  const ParallelExecutor exec(4);
  EXPECT_THROW(exec.for_each(8, [](int i) {
    if (i == 0) throw std::logic_error("first");
  }),
               std::logic_error);
  const auto out = exec.map<int>(8, [](int i) { return 2 * i; });
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], 2 * i);
}

// Suppressed sibling exceptions used to be recorded only while tracing was
// enabled; a long-lived server with tracing off saw nothing. The count now
// surfaces through the rethrow path (out-param, written before the throw)
// and the process-wide total, with no tracing involved.
TEST(ParallelExecutor, SuppressedCountSurfacesWithoutTracing) {
  const ParallelExecutor exec(4);
  const long total_before = suppressed_exception_total();
  long suppressed = -1;
  try {
    exec.for_each(12, [](int i) {
      if (i == 2 || i == 6 || i == 9) throw std::runtime_error(std::to_string(i));
    }, &suppressed);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "2");  // lowest index rethrown
  }
  EXPECT_EQ(suppressed, 2);  // 3 throwers, 1 rethrown
  EXPECT_EQ(suppressed_exception_total() - total_before, 2);

  // Clean runs and single-thrower runs report zero.
  suppressed = -1;
  exec.for_each(8, [](int) {}, &suppressed);
  EXPECT_EQ(suppressed, 0);
  suppressed = -1;
  EXPECT_THROW(exec.for_each(8, [](int i) {
    if (i == 5) throw std::runtime_error("only");
  }, &suppressed),
               std::runtime_error);
  EXPECT_EQ(suppressed, 0);

  // The serial path throws eagerly (later indices never run): always 0.
  const ParallelExecutor serial(1);
  suppressed = -1;
  EXPECT_THROW(serial.for_each(8, [](int i) {
    if (i == 1) throw std::runtime_error("serial");
  }, &suppressed),
               std::runtime_error);
  EXPECT_EQ(suppressed, 0);
}

}  // namespace
}  // namespace wnet::util
