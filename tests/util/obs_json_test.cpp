#include "util/obs/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "core/faults/campaign.h"
#include "milp/solver.h"

namespace wnet::util::obs {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

TEST(JsonWriter, FlatObjectMatchesRepoStyle) {
  JsonWriter w;
  w.begin_object();
  w.field("name", "alpha");
  w.field("count", 42);
  w.field("ok", true);
  w.field("ratio", 0.5);
  w.key("missing").null_value();
  w.end_object();
  EXPECT_EQ(w.take(),
            "{\"name\": \"alpha\", \"count\": 42, \"ok\": true, \"ratio\": 0.5, "
            "\"missing\": null}");
}

TEST(JsonWriter, NestedArraysAndObjects) {
  JsonWriter w;
  w.begin_object();
  w.key("rows").begin_array();
  w.begin_array().value(1).value(2).end_array();
  w.begin_array().value(3).end_array();
  w.end_array();
  w.key("meta").begin_object();
  w.field("empty", false);
  w.end_object();
  w.end_object();
  const std::string doc = w.take();
  EXPECT_EQ(doc, "{\"rows\": [[1, 2], [3]], \"meta\": {\"empty\": false}}");
  EXPECT_TRUE(json_valid(doc));
}

TEST(JsonWriter, EscapesControlCharactersQuotesAndBackslash) {
  JsonWriter w;
  w.begin_object();
  w.field("s", "a\"b\\c\n\t\r\b\f\x01z");
  w.end_object();
  const std::string doc = w.take();
  EXPECT_EQ(doc, "{\"s\": \"a\\\"b\\\\c\\n\\t\\r\\b\\f\\u0001z\"}");
  EXPECT_TRUE(json_valid(doc));
  // UTF-8 multibyte sequences pass through untouched.
  EXPECT_EQ(JsonWriter::escape("µs → done"), "µs → done");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_array();
  w.value(kInf);
  w.value(-kInf);
  w.value(kNan);
  w.value(1.5);
  w.end_array();
  EXPECT_EQ(w.take(), "[null, null, null, 1.5]");
}

TEST(JsonWriter, NumberFieldAddsFiniteSidecarOnlyWhenNonFinite) {
  JsonWriter w;
  w.begin_object();
  w.number_field("good", 2.25);
  w.number_field("bad", kInf);
  w.number_field("worse", kNan);
  w.end_object();
  const std::string doc = w.take();
  EXPECT_EQ(doc,
            "{\"good\": 2.25, \"bad\": null, \"bad_finite\": false, "
            "\"worse\": null, \"worse_finite\": false}");
  EXPECT_TRUE(json_valid(doc));
}

TEST(JsonWriter, FormatDoubleIsShortestRoundTrip) {
  EXPECT_EQ(JsonWriter::format_double(0.1), "0.1");
  EXPECT_EQ(JsonWriter::format_double(-2.5), "-2.5");
  EXPECT_EQ(JsonWriter::format_double(0.0), "0");
  EXPECT_EQ(JsonWriter::format_double(-0.0), "0");
  EXPECT_EQ(JsonWriter::format_double(kInf), "null");
  EXPECT_EQ(JsonWriter::format_double(kNan), "null");
  // Round-trip exactness for an awkward value.
  const double v = 0.1 + 0.2;
  EXPECT_EQ(std::stod(JsonWriter::format_double(v)), v);
}

TEST(JsonWriter, RawEmbedsNestedDocuments) {
  JsonWriter inner;
  inner.begin_object();
  inner.field("k", 3);
  inner.end_object();
  const std::string nested = inner.take();

  JsonWriter w;
  w.begin_object();
  w.key("solver").raw(nested);
  w.field("after", 1);
  w.end_object();
  const std::string doc = w.take();
  EXPECT_EQ(doc, "{\"solver\": {\"k\": 3}, \"after\": 1}");
  EXPECT_TRUE(json_valid(doc));
}

TEST(JsonWriter, StructuralMisuseThrows) {
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.value(1), std::logic_error);  // value without key
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.end_array(), std::logic_error);  // mismatched close
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW((void)w.take(), std::logic_error);  // scope still open
  }
  {
    JsonWriter w;
    w.begin_array();
    w.end_array();
    EXPECT_THROW(w.begin_object(), std::logic_error);  // second top-level value
  }
  {
    JsonWriter w;
    EXPECT_THROW((void)w.take(), std::logic_error);  // nothing written
  }
}

TEST(JsonValidator, AcceptsStrictJson) {
  for (const char* ok : {
           "{}",
           "[]",
           "null",
           "true",
           "-0.5",
           "0",
           "1e9",
           "1.25E-3",
           "\"\"",
           "\"\\u00e9\\n\"",
           "  {\"a\": [1, 2, {\"b\": null}], \"c\": \"x\"}  \n",
           "[-1, 0.0, 12345678901234567890]",
       }) {
    EXPECT_TRUE(json_valid(ok)) << ok << " -> " << json_error(ok).value_or("");
  }
}

TEST(JsonValidator, RejectsWhatPythonJsonToolRejects) {
  for (const char* bad : {
           "",
           "   ",
           "{",
           "[1, 2",
           "{\"a\": 1,}",        // trailing comma
           "[1, 2,]",            // trailing comma
           "{'a': 1}",           // single quotes
           "{\"a\" 1}",          // missing colon
           "{1: 2}",             // non-string key
           "inf",                // bare non-finite
           "-inf",
           "nan",
           "NaN",
           "Infinity",
           "[inf]",
           "{\"x\": nan}",
           "01",                 // leading zero
           "+1",                 // leading plus
           ".5",                 // missing integer part
           "1.",                 // missing fraction digits
           "1e",                 // missing exponent digits
           "-",                  // lone minus
           "\"\x01\"",           // unescaped control char in string
           "\"unterminated",
           "\"bad \\x escape\"",
           "{} extra",           // trailing garbage
           "[1] [2]",
           "tru",
           "nulll",
       }) {
    EXPECT_FALSE(json_valid(bad)) << "accepted: " << bad;
  }
}

TEST(JsonValidator, ErrorsCarryByteOffsets) {
  const auto err = json_error("{\"a\": 1,}");
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("byte 8"), std::string::npos) << *err;
}

// ---------------------------------------------------------------------------
// Fuzz: randomly generated documents through the writer must always satisfy
// the strict validator, whatever strings and numbers they carry.

void fuzz_value(JsonWriter& w, std::mt19937& rng, int depth) {
  std::uniform_int_distribution<int> kind(0, depth >= 4 ? 4 : 6);
  std::uniform_real_distribution<double> num(-1e18, 1e18);
  std::uniform_int_distribution<int> len(0, 12);
  std::uniform_int_distribution<int> ch(0, 255);
  switch (kind(rng)) {
    case 0:
      w.null_value();
      break;
    case 1:
      w.value(rng() % 2 == 0);
      break;
    case 2: {
      // Mix finite, huge, subnormal and non-finite doubles.
      const int pick = static_cast<int>(rng() % 6);
      const double v = pick == 0   ? kInf
                       : pick == 1 ? kNan
                       : pick == 2 ? std::numeric_limits<double>::denorm_min()
                       : pick == 3 ? std::numeric_limits<double>::max()
                                   : num(rng);
      w.value(v);
      break;
    }
    case 3: {
      std::string s;
      const int n = len(rng);
      for (int i = 0; i < n; ++i) s.push_back(static_cast<char>(ch(rng)));
      w.value(s);
      break;
    }
    case 4:
      w.value(static_cast<long long>(rng()) - static_cast<long long>(rng()));
      break;
    case 5: {
      w.begin_array();
      const int n = len(rng) / 3;
      for (int i = 0; i < n; ++i) fuzz_value(w, rng, depth + 1);
      w.end_array();
      break;
    }
    default: {
      w.begin_object();
      const int n = len(rng) / 3;
      for (int i = 0; i < n; ++i) {
        std::string k;
        const int kl = 1 + len(rng) / 4;
        for (int j = 0; j < kl; ++j) k.push_back(static_cast<char>(ch(rng)));
        w.key(k);
        fuzz_value(w, rng, depth + 1);
      }
      w.end_object();
      break;
    }
  }
}

TEST(JsonFuzz, RandomWriterDocumentsAlwaysValidate) {
  std::mt19937 rng(20260805);
  for (int round = 0; round < 500; ++round) {
    JsonWriter w;
    fuzz_value(w, rng, 0);
    const std::string doc = w.take();
    const auto err = json_error(doc);
    EXPECT_FALSE(err.has_value()) << "round " << round << ": " << err.value_or("") << "\n" << doc;
  }
}

milp::SolveStats fuzz_stats(std::mt19937& rng) {
  std::uniform_real_distribution<double> num(-1e12, 1e12);
  const auto weird = [&](int pick) {
    return pick == 0 ? kInf : pick == 1 ? -kInf : pick == 2 ? kNan : num(rng);
  };
  milp::SolveStats s;
  s.nodes = static_cast<long>(rng() % 1000000);
  s.lp_iterations = static_cast<long>(rng());
  s.time_s = weird(static_cast<int>(rng() % 8));
  s.root_bound = weird(static_cast<int>(rng() % 4));  // frequently non-finite
  s.numerical_failures = static_cast<long>(rng() % 100);
  s.warm_attempts = static_cast<long>(rng() % 1000);
  s.warm_fallbacks = static_cast<long>(rng() % 50);
  s.cold_solves = static_cast<long>(rng() % 1000);
  s.incumbents = static_cast<long>(rng() % 20);
  s.mip_start_used = rng() % 2 == 0;
  const int timeline = static_cast<int>(rng() % 40);
  for (int i = 0; i < timeline; ++i) {
    milp::IncumbentEvent ev;
    ev.time_s = weird(static_cast<int>(rng() % 10));
    ev.nodes = static_cast<long>(rng() % 100000);
    ev.objective = weird(static_cast<int>(rng() % 6));
    s.incumbent_timeline.push_back(ev);
  }
  return s;
}

TEST(JsonFuzz, RandomSolveStatsAlwaysSerializeValid) {
  std::mt19937 rng(7);
  for (int round = 0; round < 200; ++round) {
    const std::string doc = fuzz_stats(rng).to_json();
    const auto err = json_error(doc);
    EXPECT_FALSE(err.has_value()) << "round " << round << ": " << err.value_or("") << "\n" << doc;
  }
}

TEST(JsonFuzz, RandomCampaignReportsAlwaysSerializeValid) {
  using archex::faults::CampaignReport;
  using archex::faults::FaultKind;
  using archex::faults::ScenarioOutcome;
  std::mt19937 rng(99);
  std::uniform_real_distribution<double> db(-50.0, 50.0);
  for (int round = 0; round < 200; ++round) {
    CampaignReport rep;
    const int n = static_cast<int>(rng() % 30);
    for (int i = 0; i < n; ++i) {
      ScenarioOutcome o;
      o.scenario.id = i;
      o.scenario.kind = static_cast<FaultKind>(rng() % 3);
      o.scenario.fading_seed = rng();
      o.passed = rng() % 3 != 0;
      if (!o.passed) {
        const int broken = 1 + static_cast<int>(rng() % 4);
        for (int b = 0; b < broken; ++b) o.broken_routes.push_back(static_cast<int>(rng() % 8));
        o.worst_shortfall_db = rng() % 5 == 0 ? kInf : db(rng);
      }
      const int nodes = static_cast<int>(rng() % 3);
      for (int v = 0; v < nodes; ++v) o.scenario.failed_nodes.push_back(static_cast<int>(rng() % 20));
      const int cuts = static_cast<int>(rng() % 3);
      for (int c = 0; c < cuts; ++c) {
        const int a = static_cast<int>(rng() % 20);
        o.scenario.cut_links.emplace_back(a, a + 1 + static_cast<int>(rng() % 5));
      }
      rep.outcomes.push_back(std::move(o));
    }
    const std::string doc = rep.to_json();
    const auto err = json_error(doc);
    EXPECT_FALSE(err.has_value()) << "round " << round << ": " << err.value_or("") << "\n" << doc;
  }
}

// --- json_parse: the read side added for the solve daemon ----------------

TEST(JsonParse, RoundTripsWriterOutputExactly) {
  JsonWriter w;
  w.begin_object()
      .field("s", "a \"quoted\" \\ line\nnext")
      .field("n", -12.5)
      .field("i", 42)
      .field("b", true);
  w.key("arr").begin_array().value(1).value("two").null_value().end_array();
  w.key("nested").begin_object().field("inner", 0.125).end_object();
  const std::string doc = w.end_object().take();

  std::string error;
  const auto v = json_parse(doc, &error);
  ASSERT_TRUE(v.has_value()) << error;
  ASSERT_TRUE(v->is_object());
  EXPECT_EQ(v->get_string("s", ""), "a \"quoted\" \\ line\nnext");
  EXPECT_EQ(v->get_number("n", 0.0), -12.5);
  EXPECT_EQ(v->get_number("i", 0.0), 42.0);
  EXPECT_TRUE(v->get_bool("b", false));
  const JsonValue* arr = v->find("arr");
  ASSERT_NE(arr, nullptr);
  ASSERT_TRUE(arr->is_array());
  ASSERT_EQ(arr->items().size(), 3u);
  EXPECT_EQ(arr->items()[0].as_number(), 1.0);
  EXPECT_EQ(arr->items()[1].as_string(), "two");
  EXPECT_TRUE(arr->items()[2].is_null());
  const JsonValue* nested = v->find("nested");
  ASSERT_NE(nested, nullptr);
  EXPECT_EQ(nested->get_number("inner", 0.0), 0.125);
}

TEST(JsonParse, AcceptsExactlyWhatTheValidatorAccepts) {
  const char* cases[] = {
      "null",
      "true",
      "[1, 2, 3]",
      "{\"a\": [{}]}",
      "-0.5e2",
      "\"\\u00e9\\u20ac\"",
      "\"\\ud83d\\ude00\"",  // surrogate pair
      "  {\"k\": \"v\"}  ",
  };
  for (const char* text : cases) {
    EXPECT_TRUE(json_parse(text).has_value()) << text;
    EXPECT_FALSE(json_error(text).has_value()) << text;
  }
  const char* bad[] = {
      "",
      "{",
      "[1,]",
      "{'a': 1}",
      "{\"a\": 01}",
      "Infinity",
      "nan",
      "[1] trailing",
      "\"\\ud83d\"",     // lone surrogate
      "\"unterminated",
      "{\"a\" 1}",
  };
  for (const char* text : bad) {
    std::string error;
    EXPECT_FALSE(json_parse(text, &error).has_value()) << text;
    EXPECT_FALSE(error.empty()) << text;
    EXPECT_TRUE(json_error(text).has_value()) << text;
  }
}

TEST(JsonParse, EscapeAndUtf8Decoding) {
  const auto v = json_parse(R"("a\tb\u0041\u00e9")");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_string(), "a\tbA\xc3\xa9");
}

TEST(JsonParse, TypedLookupsDistinguishMissingFromWrongKind) {
  const auto v = json_parse(R"({"s": "x", "n": 3})");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->get_string("s"), "x");
  EXPECT_FALSE(v->get_string("n").has_value());      // wrong kind
  EXPECT_FALSE(v->get_string("missing").has_value());
  EXPECT_EQ(v->get_number("n"), 3.0);
  EXPECT_FALSE(v->get_number("s").has_value());
  EXPECT_EQ(v->get_number("s", 7.0), 7.0);  // fallback form
  EXPECT_EQ(v->find("nope"), nullptr);
}

}  // namespace
}  // namespace wnet::util::obs
