#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/strings.h"
#include "util/table.h"

namespace wnet::util {
namespace {

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("\t x \n"), "x");
}

TEST(Strings, Split) {
  EXPECT_EQ(split("a, b , c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a", ','), (std::vector<std::string>{"a"}));
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(Strings, SplitWs) {
  EXPECT_EQ(split_ws("  a  b\tc\n"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_TRUE(starts_with("x", ""));
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(*parse_double("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*parse_double(" -2 "), -2.0);
  EXPECT_FALSE(parse_double("3.5x").has_value());
  EXPECT_FALSE(parse_double("").has_value());
  EXPECT_FALSE(parse_double("abc").has_value());
}

TEST(Strings, ParseLong) {
  EXPECT_EQ(*parse_long("42"), 42);
  EXPECT_EQ(*parse_long("-7"), -7);
  EXPECT_FALSE(parse_long("4.2").has_value());
  EXPECT_FALSE(parse_long("").has_value());
}

TEST(Strings, ToLower) { EXPECT_EQ(to_lower("AbC-9"), "abc-9"); }

TEST(Table, RendersAlignedRowsAndCsv) {
  Table t({"Name", "Value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Name"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("Name,Value"), std::string::npos);
  EXPECT_NE(csv.find("b,22222"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, FmtDoubleTrimsZeros) {
  EXPECT_EQ(fmt_double(1.5, 2), "1.5");
  EXPECT_EQ(fmt_double(2.0, 2), "2");
  EXPECT_EQ(fmt_double(1.2345, 2), "1.23");
  EXPECT_EQ(fmt_double(-0.5, 1), "-0.5");
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
  Rng c(8);
  bool differs = false;
  Rng a2(7);
  for (int i = 0; i < 10; ++i) {
    if (a2.uniform(0, 1) != c.uniform(0, 1)) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, RangesRespected) {
  Rng r(3);
  for (int i = 0; i < 200; ++i) {
    const double v = r.uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
    const int k = r.uniform_int(-2, 2);
    EXPECT_GE(k, -2);
    EXPECT_LE(k, 2);
  }
}

TEST(Stopwatch, MeasuresElapsed) {
  Stopwatch sw;
  const double t0 = sw.seconds();
  EXPECT_GE(t0, 0.0);
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(sw.seconds(), t0);
  sw.reset();
  EXPECT_LT(sw.seconds(), 1.0);
  EXPECT_GE(sw.millis(), 0.0);
}

}  // namespace
}  // namespace wnet::util
