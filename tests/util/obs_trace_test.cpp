#include "util/obs/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/obs/json.h"
#include "util/thread_pool.h"

namespace wnet::util::obs {
namespace {

/// Every test drives the process-global recorder, so each one starts from a
/// clean, disabled slate and leaves it that way (other tests — solver,
/// explorer — must see a disabled recorder).
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::global().clear();
    TraceRecorder::global().set_enabled(true);
  }
  void TearDown() override {
    TraceRecorder::global().set_enabled(false);
    TraceRecorder::global().clear();
  }
};

TEST_F(TraceTest, ScopedSpanRecordsOneCompleteEventWithArgs) {
  {
    ScopedSpan span("encode/full", "encode");
    span.arg("k_star", 5.0);
    span.arg("vars", 120.0);
  }
  const auto events = TraceRecorder::global().snapshot();
  ASSERT_EQ(events.size(), 1u);
  const TraceEvent& e = events[0];
  EXPECT_EQ(e.phase, TraceEvent::Phase::kComplete);
  EXPECT_EQ(e.name, "encode/full");
  EXPECT_EQ(e.cat, "encode");
  EXPECT_GE(e.dur_us, 0.0);
  ASSERT_EQ(e.args.size(), 2u);
  EXPECT_EQ(e.args[0].first, "k_star");
  EXPECT_EQ(e.args[0].second, 5.0);
  EXPECT_EQ(e.args[1].first, "vars");
}

TEST_F(TraceTest, DisabledRecorderRecordsNothingAndSpansAreInactive) {
  TraceRecorder::global().set_enabled(false);
  {
    ScopedSpan span("milp/solve", "milp");
    EXPECT_FALSE(span.active());
    span.arg("nodes", 1.0);
  }
  TraceRecorder::global().record_counter("c", 1.0);
  TraceRecorder::global().counter_add("t", 1.0);
  EXPECT_EQ(TraceRecorder::global().num_events(), 0u);
  EXPECT_EQ(TraceRecorder::global().counter_total("t"), 0.0);
}

TEST_F(TraceTest, CountersAccumulateAndExportInFooter) {
  TraceRecorder::global().counter_add("encode.reused_candidates", 40.0);
  TraceRecorder::global().counter_add("encode.reused_candidates", 2.0);
  TraceRecorder::global().record_counter("milp/open_nodes", 7.0);
  EXPECT_EQ(TraceRecorder::global().counter_total("encode.reused_candidates"), 42.0);

  const std::string doc = TraceRecorder::global().chrome_trace_json();
  ASSERT_TRUE(json_valid(doc)) << json_error(doc).value_or("") << "\n" << doc;
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(doc.find("\"encode.reused_candidates\": 42"), std::string::npos);
}

TEST_F(TraceTest, EventsExportInRecordingOrder) {
  for (int i = 0; i < 10; ++i) {
    ScopedSpan span("kstar/rung", "explore");
    span.arg("k", static_cast<double>(i));
  }
  const auto events = TraceRecorder::global().snapshot();
  ASSERT_EQ(events.size(), 10u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, static_cast<long>(i));
    EXPECT_EQ(events[i].args[0].second, static_cast<double>(i));
  }
}

TEST_F(TraceTest, ChromeTraceJsonIsStrictlyValidWithHostileNames) {
  {
    ScopedSpan span("weird \"name\"\nwith\tcontrol", "cat\\slash");
    span.arg("µ-arg", 1.0);
  }
  const std::string doc = TraceRecorder::global().chrome_trace_json();
  EXPECT_TRUE(json_valid(doc)) << json_error(doc).value_or("") << "\n" << doc;
}

TEST_F(TraceTest, ConcurrentSpansAndCountersAreAllRecorded) {
  const ParallelExecutor exec(4);
  const int n = 200;
  exec.for_each(n, [](int i) {
    ScopedSpan span("encode/yen_route", "encode");
    span.arg("route", static_cast<double>(i));
    TraceRecorder::global().counter_add("test.total", 1.0);
  });
  EXPECT_EQ(TraceRecorder::global().num_events(), static_cast<size_t>(n));
  EXPECT_EQ(TraceRecorder::global().counter_total("test.total"), static_cast<double>(n));

  // Every index appears exactly once, and seq numbers are a permutation-free
  // 0..n-1 run regardless of which worker recorded which event.
  std::vector<int> seen(static_cast<size_t>(n), 0);
  const auto events = TraceRecorder::global().snapshot();
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, static_cast<long>(i));
    seen[static_cast<size_t>(events[i].args[0].second)]++;
  }
  for (int i = 0; i < n; ++i) EXPECT_EQ(seen[static_cast<size_t>(i)], 1) << i;

  const std::string doc = TraceRecorder::global().chrome_trace_json();
  EXPECT_TRUE(json_valid(doc)) << json_error(doc).value_or("");
}

TEST_F(TraceTest, WriteChromeTraceRoundTripsThroughAFile) {
  {
    ScopedSpan span("faults/campaign", "faults");
    span.arg("scenarios", 12.0);
  }
  const std::string path = ::testing::TempDir() + "wnet_trace_test.json";
  ASSERT_TRUE(TraceRecorder::global().write_chrome_trace(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string doc = ss.str();
  EXPECT_TRUE(json_valid(doc)) << json_error(doc).value_or("");
  EXPECT_NE(doc.find("faults/campaign"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(TraceTest, WriteChromeTraceFailsCleanlyOnBadPath) {
  EXPECT_FALSE(TraceRecorder::global().write_chrome_trace("/nonexistent-dir/x/trace.json"));
}

TEST_F(TraceTest, ClearDropsEventsAndTotals) {
  { ScopedSpan span("milp/root_lp", "milp"); }
  TraceRecorder::global().counter_add("x", 3.0);
  TraceRecorder::global().clear();
  EXPECT_EQ(TraceRecorder::global().num_events(), 0u);
  EXPECT_EQ(TraceRecorder::global().counter_total("x"), 0.0);
  EXPECT_TRUE(TraceRecorder::global().counter_totals().empty());
}

}  // namespace
}  // namespace wnet::util::obs
