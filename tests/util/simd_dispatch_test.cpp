/// Differential tests for the runtime SIMD dispatch layer: every compiled
/// kernel variant must be bit-identical to the scalar reference — that is
/// the contract that lets the repo's byte-identical report guarantee span
/// dispatch levels. Each kernel is driven over a large randomized corpus
/// under every supported level and compared bitwise (not within-epsilon)
/// against the scalar result; the LU and full-solver replays then confirm
/// the identity survives composition through the simplex stack.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <random>
#include <vector>

#include "geometry/floorplan.h"
#include "geometry/segment.h"
#include "milp/simplex/lu.h"
#include "milp/simplex/sparse.h"
#include "milp/solver.h"
#include "milp/test_models.h"
#include "util/simd/simd.h"

namespace wnet::util::simd {
namespace {

uint64_t bits(double d) {
  uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

/// All supported levels other than scalar — the variants under test.
std::vector<Level> vector_levels() {
  std::vector<Level> out;
  for (Level l : supported_levels()) {
    if (l != Level::kScalar) out.push_back(l);
  }
  return out;
}

/// Random sparse column: `len` distinct row indices below `dim` (sorted,
/// as CSC columns are) with signed values spanning many magnitudes.
struct SparseColumn {
  std::vector<int32_t> rows;
  std::vector<double> values;
};

SparseColumn random_column(std::mt19937_64& rng, int dim, int len) {
  std::vector<int> all(static_cast<size_t>(dim));
  std::iota(all.begin(), all.end(), 0);
  std::shuffle(all.begin(), all.end(), rng);
  all.resize(static_cast<size_t>(len));
  std::sort(all.begin(), all.end());
  std::uniform_real_distribution<double> mag(-8.0, 8.0);
  SparseColumn c;
  for (int r : all) {
    c.rows.push_back(static_cast<int32_t>(r));
    c.values.push_back(std::ldexp(mag(rng), static_cast<int>(mag(rng))));
  }
  return c;
}

std::vector<double> random_dense(std::mt19937_64& rng, int n) {
  std::uniform_real_distribution<double> mag(-8.0, 8.0);
  std::vector<double> v(static_cast<size_t>(n));
  for (double& x : v) x = std::ldexp(mag(rng), static_cast<int>(mag(rng)));
  return v;
}

TEST(SimdDispatch, ScalarAlwaysSupported) {
  const std::vector<Level> levels = supported_levels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), Level::kScalar);
  EXPECT_EQ(widest_supported(), levels.back());
}

TEST(SimdDispatch, LevelNamesRoundTrip) {
  for (Level l : {Level::kScalar, Level::kSse2, Level::kAvx2, Level::kNeon}) {
    Level parsed;
    ASSERT_TRUE(parse_level(level_name(l), &parsed)) << level_name(l);
    EXPECT_EQ(parsed, l);
  }
  Level ignored;
  EXPECT_FALSE(parse_level("avx512", &ignored));
  EXPECT_FALSE(parse_level("", &ignored));
}

TEST(SimdDispatch, ScopedLevelRestores) {
  const Level before = active_level();
  {
    ScopedLevel forced(Level::kScalar);
    ASSERT_TRUE(forced.ok());
    EXPECT_EQ(active_level(), Level::kScalar);
  }
  EXPECT_EQ(active_level(), before);
}

TEST(SimdDispatch, UnsupportedLevelRejected) {
#if defined(__aarch64__)
  const Level foreign = Level::kAvx2;
#else
  const Level foreign = Level::kNeon;
#endif
  const Level before = active_level();
  EXPECT_FALSE(set_level(foreign));
  EXPECT_EQ(active_level(), before);
}

TEST(SimdDispatch, GatherDotBitwiseEqualAcrossLevels) {
  std::mt19937_64 rng(20260808);
  const int kDim = 512;
  for (int trial = 0; trial < 1000; ++trial) {
    const int len = static_cast<int>(rng() % 65);  // 0..64 covers tails 0..3
    const SparseColumn c = random_column(rng, kDim, len);
    const std::vector<double> dense = random_dense(rng, kDim);
    ScopedLevel scalar(Level::kScalar);
    const double ref = kernels().gather_dot(c.rows.data(), c.values.data(), len,
                                            dense.data());
    for (Level l : vector_levels()) {
      ScopedLevel forced(l);
      ASSERT_TRUE(forced.ok());
      const double got = kernels().gather_dot(c.rows.data(), c.values.data(), len,
                                              dense.data());
      ASSERT_EQ(bits(ref), bits(got))
          << level_name(l) << " trial " << trial << " len " << len;
    }
  }
}

TEST(SimdDispatch, ScatterAxpyBitwiseEqualAcrossLevels) {
  std::mt19937_64 rng(777);
  const int kDim = 512;
  std::uniform_real_distribution<double> sc(-4.0, 4.0);
  for (int trial = 0; trial < 1000; ++trial) {
    const int len = static_cast<int>(rng() % 65);
    const SparseColumn c = random_column(rng, kDim, len);
    const std::vector<double> base = random_dense(rng, kDim);
    const double scale = sc(rng);
    std::vector<double> ref = base;
    {
      ScopedLevel scalar(Level::kScalar);
      kernels().scatter_axpy(c.rows.data(), c.values.data(), len, scale, ref.data());
    }
    for (Level l : vector_levels()) {
      ScopedLevel forced(l);
      ASSERT_TRUE(forced.ok());
      std::vector<double> got = base;
      kernels().scatter_axpy(c.rows.data(), c.values.data(), len, scale, got.data());
      for (int i = 0; i < kDim; ++i) {
        ASSERT_EQ(bits(ref[static_cast<size_t>(i)]), bits(got[static_cast<size_t>(i)]))
            << level_name(l) << " trial " << trial << " row " << i;
      }
    }
  }
}

TEST(SimdDispatch, DenseAxpyBitwiseEqualAcrossLevels) {
  std::mt19937_64 rng(31337);
  std::uniform_real_distribution<double> sc(-4.0, 4.0);
  for (int trial = 0; trial < 1000; ++trial) {
    const int n = static_cast<int>(rng() % 130);
    const std::vector<double> x = random_dense(rng, n);
    const std::vector<double> base = random_dense(rng, n);
    const double a = sc(rng);
    std::vector<double> ref = base;
    {
      ScopedLevel scalar(Level::kScalar);
      kernels().dense_axpy(ref.data(), x.data(), a, n);
    }
    for (Level l : vector_levels()) {
      ScopedLevel forced(l);
      ASSERT_TRUE(forced.ok());
      std::vector<double> got = base;
      kernels().dense_axpy(got.data(), x.data(), a, n);
      for (int i = 0; i < n; ++i) {
        ASSERT_EQ(bits(ref[static_cast<size_t>(i)]), bits(got[static_cast<size_t>(i)]))
            << level_name(l) << " trial " << trial << " i " << i;
      }
    }
  }
}

TEST(SimdDispatch, RowActivityBitwiseEqualAcrossLevels) {
  std::mt19937_64 rng(4242);
  const int kDim = 300;
  for (int trial = 0; trial < 1000; ++trial) {
    const int len = static_cast<int>(rng() % 49);
    const SparseColumn c = random_column(rng, kDim, len);
    std::vector<double> lb = random_dense(rng, kDim);
    std::vector<double> ub = lb;
    for (double& u : ub) u += 1.0;
    double ref_lo = 0.0, ref_hi = 0.0;
    {
      ScopedLevel scalar(Level::kScalar);
      kernels().row_activity(c.rows.data(), c.values.data(), len, lb.data(), ub.data(),
                             &ref_lo, &ref_hi);
    }
    for (Level l : vector_levels()) {
      ScopedLevel forced(l);
      ASSERT_TRUE(forced.ok());
      double lo = 0.0, hi = 0.0;
      kernels().row_activity(c.rows.data(), c.values.data(), len, lb.data(), ub.data(),
                             &lo, &hi);
      ASSERT_EQ(bits(ref_lo), bits(lo)) << level_name(l) << " trial " << trial;
      ASSERT_EQ(bits(ref_hi), bits(hi)) << level_name(l) << " trial " << trial;
    }
  }
}

TEST(SimdDispatch, PairDistancesBitwiseEqualAcrossLevels) {
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> pos(-100.0, 100.0);
  for (int trial = 0; trial < 500; ++trial) {
    const int n = static_cast<int>(rng() % 70);
    std::vector<double> xs(static_cast<size_t>(n)), ys(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      xs[static_cast<size_t>(i)] = pos(rng);
      ys[static_cast<size_t>(i)] = pos(rng);
    }
    const double x0 = pos(rng), y0 = pos(rng);
    std::vector<double> ref(static_cast<size_t>(n)), got(static_cast<size_t>(n));
    {
      ScopedLevel scalar(Level::kScalar);
      kernels().pair_distances(xs.data(), ys.data(), n, x0, y0, ref.data());
    }
    for (Level l : vector_levels()) {
      ScopedLevel forced(l);
      ASSERT_TRUE(forced.ok());
      kernels().pair_distances(xs.data(), ys.data(), n, x0, y0, got.data());
      for (int i = 0; i < n; ++i) {
        ASSERT_EQ(bits(ref[static_cast<size_t>(i)]), bits(got[static_cast<size_t>(i)]))
            << level_name(l) << " trial " << trial << " i " << i;
      }
    }
    // The kernel must also reproduce Vec2::dist exactly (the propagation
    // batch API's bit-identity hinges on it).
    for (int i = 0; i < n; ++i) {
      const geom::Vec2 a{x0, y0};
      const geom::Vec2 b{xs[static_cast<size_t>(i)], ys[static_cast<size_t>(i)]};
      ASSERT_EQ(bits(a.dist(b)), bits(ref[static_cast<size_t>(i)]));
    }
  }
}

TEST(SimdDispatch, SegmentClassifyMatchesScalarAndOracle) {
  std::mt19937_64 rng(2718);
  // Half the corpus on a coarse integer grid to force collinear/touching
  // configurations (class 2), half continuous for the decisive fast path.
  std::uniform_real_distribution<double> cont(-10.0, 10.0);
  std::uniform_int_distribution<int> grid(-4, 4);
  constexpr double kEps = 1e-12;
  for (int trial = 0; trial < 1000; ++trial) {
    const bool coarse = (trial % 2) == 0;
    const auto coord = [&] {
      return coarse ? static_cast<double>(grid(rng)) : cont(rng);
    };
    const double sax = coord(), say = coord(), sbx = coord(), sby = coord();
    const int n = static_cast<int>(rng() % 10);
    std::vector<double> wax(static_cast<size_t>(n)), way(static_cast<size_t>(n)),
        wbx(static_cast<size_t>(n)), wby(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      wax[static_cast<size_t>(i)] = coord();
      way[static_cast<size_t>(i)] = coord();
      wbx[static_cast<size_t>(i)] = coord();
      wby[static_cast<size_t>(i)] = coord();
    }
    std::vector<uint8_t> ref(static_cast<size_t>(n), 0), got(static_cast<size_t>(n), 0);
    {
      ScopedLevel scalar(Level::kScalar);
      kernels().segment_classify(sax, say, sbx, sby, wax.data(), way.data(), wbx.data(),
                                 wby.data(), n, kEps, ref.data());
    }
    for (Level l : vector_levels()) {
      ScopedLevel forced(l);
      ASSERT_TRUE(forced.ok());
      kernels().segment_classify(sax, say, sbx, sby, wax.data(), way.data(), wbx.data(),
                                 wby.data(), n, kEps, got.data());
      for (int i = 0; i < n; ++i) {
        ASSERT_EQ(ref[static_cast<size_t>(i)], got[static_cast<size_t>(i)])
            << level_name(l) << " trial " << trial << " i " << i;
      }
    }
    // Resolution against the exact oracle: class 0/1 must already be the
    // answer; class 2 defers to segments_intersect.
    const geom::Segment link{{sax, say}, {sbx, sby}};
    for (int i = 0; i < n; ++i) {
      const geom::Segment wall{{wax[static_cast<size_t>(i)], way[static_cast<size_t>(i)]},
                               {wbx[static_cast<size_t>(i)], wby[static_cast<size_t>(i)]}};
      const bool oracle = geom::segments_intersect(link, wall);
      const uint8_t c = ref[static_cast<size_t>(i)];
      const bool resolved = c == 1 || (c == 2 && oracle);
      ASSERT_EQ(oracle, resolved) << "trial " << trial << " wall " << i
                                  << " class " << static_cast<int>(c);
    }
  }
}

TEST(SimdDispatch, LuSolvesBitwiseEqualAcrossLevels) {
  using milp::simplex::BasisLu;
  using milp::simplex::Entry;
  using milp::simplex::SparseMatrix;
  std::mt19937_64 rng(5150);
  std::uniform_real_distribution<double> val(-3.0, 3.0);
  for (int trial = 0; trial < 60; ++trial) {
    const int m = 8 + static_cast<int>(rng() % 40);
    // Diagonally dominant random matrix: always factorizable, enough
    // off-diagonal fill to make the L/U kernel passes non-trivial.
    SparseMatrix a(m, 0);
    for (int j = 0; j < m; ++j) {
      std::vector<Entry> col;
      for (int i = 0; i < m; ++i) {
        if (i == j) {
          col.push_back({i, static_cast<double>(m) + val(rng)});
        } else if (rng() % 4 == 0) {
          col.push_back({i, val(rng)});
        }
      }
      a.add_column(col);
    }
    std::vector<int> basis(static_cast<size_t>(m));
    std::iota(basis.begin(), basis.end(), 0);

    const std::vector<double> rhs = random_dense(rng, m);
    const int unit_row = static_cast<int>(rng() % static_cast<uint64_t>(m));
    const double unit_val = val(rng) + 4.0;

    std::vector<double> ref_f, ref_u, ref_b;
    int ref_updates = 0;
    {
      ScopedLevel scalar(Level::kScalar);
      BasisLu lu;
      ASSERT_TRUE(lu.factorize(a, basis));
      ref_f = rhs;
      lu.ftran(ref_f);
      // Exercise the eta file too: replace a basis position by the ftran
      // image, then solve again through the update.
      ASSERT_TRUE(lu.update(trial % m, ref_f));
      ref_updates = lu.num_updates();
      ref_u.assign(static_cast<size_t>(m), 0.0);
      lu.ftran_unit(ref_u, unit_row, unit_val);
      ref_b = rhs;
      lu.btran(ref_b);
    }
    for (Level l : vector_levels()) {
      ScopedLevel forced(l);
      ASSERT_TRUE(forced.ok());
      BasisLu lu;
      ASSERT_TRUE(lu.factorize(a, basis));
      std::vector<double> f = rhs;
      lu.ftran(f);
      ASSERT_TRUE(lu.update(trial % m, f));
      ASSERT_EQ(lu.num_updates(), ref_updates);
      std::vector<double> u(static_cast<size_t>(m), 0.0);
      lu.ftran_unit(u, unit_row, unit_val);
      std::vector<double> b = rhs;
      lu.btran(b);
      for (int i = 0; i < m; ++i) {
        ASSERT_EQ(bits(ref_f[static_cast<size_t>(i)]), bits(f[static_cast<size_t>(i)]))
            << level_name(l) << " ftran trial " << trial << " i " << i;
        ASSERT_EQ(bits(ref_u[static_cast<size_t>(i)]), bits(u[static_cast<size_t>(i)]))
            << level_name(l) << " ftran_unit trial " << trial << " i " << i;
        ASSERT_EQ(bits(ref_b[static_cast<size_t>(i)]), bits(b[static_cast<size_t>(i)]))
            << level_name(l) << " btran trial " << trial << " i " << i;
      }
    }
  }
}

TEST(SimdDispatch, FloorPlanCrossingsInvariantAcrossLevels) {
  const geom::FloorPlan plan = geom::make_office_floor(80.0, 45.0, 8);
  std::mt19937_64 rng(60221023);
  std::uniform_real_distribution<double> px(0.0, 80.0), py(0.0, 45.0);
  for (int trial = 0; trial < 200; ++trial) {
    const geom::Vec2 a{px(rng), py(rng)};
    const geom::Vec2 b{px(rng), py(rng)};
    double ref_loss;
    int ref_crossed;
    {
      ScopedLevel scalar(Level::kScalar);
      ref_loss = plan.wall_loss_db(a, b);
      ref_crossed = plan.walls_crossed(a, b);
    }
    for (Level l : vector_levels()) {
      ScopedLevel forced(l);
      ASSERT_TRUE(forced.ok());
      ASSERT_EQ(bits(ref_loss), bits(plan.wall_loss_db(a, b))) << level_name(l);
      ASSERT_EQ(ref_crossed, plan.walls_crossed(a, b)) << level_name(l);
    }
  }
}

/// End-to-end replay: the full branch-and-bound (presolve, propagation,
/// dual simplex with warm starts, cuts) must produce identical results and
/// identical search statistics under forced-scalar and forced-widest
/// dispatch — the solver-level corollary of the kernel bit-identity.
TEST(SimdDispatch, SolverReplayIdenticalScalarVsWidest) {
  const Level widest = widest_supported();
  if (widest == Level::kScalar) {
    GTEST_SKIP() << "host has no vector ISA compiled in";
  }
  for (unsigned seed = 1; seed <= 12; ++seed) {
    const milp::Model m = milp::tests::random_model(seed, 6, 4, 8);
    milp::SolveOptions opts;
    milp::MipResult ref, got;
    {
      ScopedLevel scalar(Level::kScalar);
      ref = milp::solve(m, opts);
      EXPECT_EQ(ref.stats.simd_level, "scalar");
    }
    {
      ScopedLevel forced(widest);
      ASSERT_TRUE(forced.ok());
      got = milp::solve(m, opts);
      EXPECT_EQ(got.stats.simd_level, level_name(widest));
    }
    ASSERT_EQ(ref.status, got.status) << "seed " << seed;
    ASSERT_EQ(bits(ref.objective), bits(got.objective)) << "seed " << seed;
    ASSERT_EQ(bits(ref.bound), bits(got.bound)) << "seed " << seed;
    ASSERT_EQ(ref.stats.nodes, got.stats.nodes) << "seed " << seed;
    ASSERT_EQ(ref.stats.lp_iterations, got.stats.lp_iterations) << "seed " << seed;
    ASSERT_EQ(ref.stats.propagation_tightenings, got.stats.propagation_tightenings)
        << "seed " << seed;
    ASSERT_EQ(ref.stats.propagation_prunes, got.stats.propagation_prunes)
        << "seed " << seed;
    ASSERT_EQ(ref.stats.incumbents, got.stats.incumbents) << "seed " << seed;
    ASSERT_EQ(ref.x.size(), got.x.size()) << "seed " << seed;
    for (size_t i = 0; i < ref.x.size(); ++i) {
      ASSERT_EQ(bits(ref.x[i]), bits(got.x[i])) << "seed " << seed << " var " << i;
    }
  }
}

}  // namespace
}  // namespace wnet::util::simd
