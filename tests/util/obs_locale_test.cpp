#include <gtest/gtest.h>

#include <clocale>
#include <limits>
#include <locale>
#include <sstream>
#include <string>

#include "core/faults/campaign.h"
#include "milp/solver.h"
#include "util/obs/json.h"
#include "util/obs/trace.h"

namespace wnet::util::obs {
namespace {

/// A numpunct facet with a comma decimal point and dot thousands grouping —
/// the de_DE shape that broke iostream/printf-based emitters. Installing it
/// as the GLOBAL C++ locale (plus setlocale for the C library, when the
/// system ships such a locale) is the worst case a long-running host app can
/// inflict on us.
class CommaDecimal : public std::numpunct<char> {
 protected:
  char do_decimal_point() const override { return ','; }
  char do_thousands_sep() const override { return '.'; }
  std::string do_grouping() const override { return "\3"; }
};

/// RAII: swaps in the hostile locale for one scope, always restores.
class HostileLocaleScope {
 public:
  HostileLocaleScope()
      : saved_cpp_(std::locale()), saved_c_(std::setlocale(LC_ALL, nullptr)) {
    std::locale::global(std::locale(std::locale::classic(), new CommaDecimal));
    // Best effort only — minimal containers usually lack de_DE; the facet
    // above covers the C++ side either way.
    c_locale_applied_ = std::setlocale(LC_ALL, "de_DE.UTF-8") != nullptr;
    if (!c_locale_applied_) std::setlocale(LC_ALL, saved_c_.c_str());
  }
  ~HostileLocaleScope() {
    std::locale::global(saved_cpp_);
    std::setlocale(LC_ALL, saved_c_.c_str());
  }
  [[nodiscard]] bool c_locale_applied() const { return c_locale_applied_; }

 private:
  std::locale saved_cpp_;
  std::string saved_c_;
  bool c_locale_applied_ = false;
};

milp::SolveStats reference_stats() {
  milp::SolveStats s;
  s.nodes = 1234;
  s.lp_iterations = 56789;
  s.time_s = 1234.5625;           // exact in binary: byte-stable everywhere
  s.root_bound = -std::numeric_limits<double>::infinity();
  s.warm_attempts = 100;
  s.warm_fallbacks = 3;
  s.cold_solves = 17;
  s.incumbents = 2;
  s.incumbent_timeline.push_back({0.125, 10, -1546.75});
  s.incumbent_timeline.push_back({0.5, 200, -1700.0625});
  return s;
}

archex::faults::CampaignReport reference_report() {
  using archex::faults::FaultKind;
  archex::faults::ScenarioOutcome bad;
  bad.scenario.id = 7;
  bad.scenario.kind = FaultKind::kFading;
  bad.scenario.fading_seed = 42;
  bad.passed = false;
  bad.broken_routes = {0, 2};
  bad.worst_shortfall_db = 3.25;
  archex::faults::CampaignReport rep;
  rep.outcomes.push_back({});
  rep.outcomes.push_back(bad);
  return rep;
}

TEST(LocaleImmunity, SanityTheFacetReallyBreaksIostreams) {
  const HostileLocaleScope hostile;
  std::ostringstream oss;
  oss.imbue(std::locale());  // the now-global comma locale
  oss << 1234.5;
  // This is the bug class the writer exists to fix: "1.234,5" is not JSON.
  EXPECT_EQ(oss.str(), "1.234,5");
}

TEST(LocaleImmunity, SolveStatsJsonIsByteIdenticalUnderCommaLocale) {
  const milp::SolveStats s = reference_stats();
  const std::string classic = s.to_json();
  ASSERT_TRUE(json_valid(classic)) << json_error(classic).value_or("");
  EXPECT_NE(classic.find("\"time_s\": 1234.5625"), std::string::npos) << classic;
  EXPECT_NE(classic.find("\"root_bound\": null, \"root_bound_finite\": false"),
            std::string::npos)
      << classic;

  const HostileLocaleScope hostile;
  EXPECT_EQ(s.to_json(), classic);
}

TEST(LocaleImmunity, CampaignReportJsonIsByteIdenticalUnderCommaLocale) {
  const archex::faults::CampaignReport rep = reference_report();
  const std::string classic = rep.to_json();
  ASSERT_TRUE(json_valid(classic)) << json_error(classic).value_or("");
  EXPECT_NE(classic.find("\"worst_shortfall_db\": 3.25"), std::string::npos) << classic;

  const HostileLocaleScope hostile;
  EXPECT_EQ(rep.to_json(), classic);
}

TEST(LocaleImmunity, TraceExportIsByteIdenticalUnderCommaLocale) {
  TraceRecorder& rec = TraceRecorder::global();
  rec.clear();
  rec.set_enabled(true);
  rec.record_complete("milp/solve", "milp", 1.5, 2048.25, {{"nodes", 1234.5}});
  rec.record_counter("milp/open_nodes", 17.75);
  rec.counter_add("encode.reused_candidates", 1000.5);
  rec.set_enabled(false);

  const std::string classic = rec.chrome_trace_json();
  ASSERT_TRUE(json_valid(classic)) << json_error(classic).value_or("");

  {
    const HostileLocaleScope hostile;
    EXPECT_EQ(rec.chrome_trace_json(), classic);
  }
  rec.clear();
}

TEST(LocaleImmunity, WriterRoundTripsUnderCommaLocale) {
  const HostileLocaleScope hostile;
  JsonWriter w;
  w.begin_object();
  w.number_field("v", 0.1);
  w.field("big", 1234567.875);
  w.end_object();
  const std::string doc = w.take();
  EXPECT_EQ(doc, "{\"v\": 0.1, \"big\": 1234567.875}");
  EXPECT_TRUE(json_valid(doc));
}

}  // namespace
}  // namespace wnet::util::obs
