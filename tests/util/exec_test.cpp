// Unit tests for the execution-control primitives (util/exec): Deadline
// arithmetic, linked cancellation tokens, resource budgets and the
// deterministic checkpoint-injection harness.
#include "util/exec/exec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>

namespace wnet::util::exec {
namespace {

TEST(Deadline, DefaultIsInfinite) {
  const Deadline d;
  EXPECT_FALSE(d.finite());
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(std::isinf(d.remaining_s()));
  EXPECT_GT(d.remaining_s(), 0.0);
}

TEST(Deadline, HugeOrNonFiniteSecondsMeanInfinite) {
  EXPECT_FALSE(Deadline::after(1e30).finite());  // LpOptions sentinel
  EXPECT_FALSE(Deadline::after(std::numeric_limits<double>::infinity()).finite());
  EXPECT_FALSE(Deadline::after(std::nan("")).finite());
  EXPECT_TRUE(Deadline::after(1.0).finite());
}

TEST(Deadline, ExpiresAndReportsNonPositiveRemaining) {
  const Deadline d = Deadline::after(0.0);
  EXPECT_TRUE(d.finite());
  EXPECT_TRUE(d.expired());
  EXPECT_LE(d.remaining_s(), 0.0);

  const Deadline far = Deadline::after(3600.0);
  EXPECT_FALSE(far.expired());
  EXPECT_GT(far.remaining_s(), 3500.0);
}

TEST(Deadline, TightenedTakesTheEarlierDeadline) {
  const Deadline infinite;
  // Infinite tightened by a finite limit becomes finite.
  const Deadline t1 = infinite.tightened(10.0);
  EXPECT_TRUE(t1.finite());
  EXPECT_LE(t1.remaining_s(), 10.0);

  // A finite deadline tightened by a *larger* limit is unchanged (earlier
  // wins), and tightening by infinity is a no-op.
  const Deadline near = Deadline::after(1.0);
  EXPECT_LE(near.tightened(100.0).remaining_s(), 1.0);
  EXPECT_TRUE(near.tightened(1e30).finite());
  EXPECT_LE(near.tightened(1e30).remaining_s(), 1.0);

  // Tightening by a smaller limit moves the deadline in.
  const Deadline far = Deadline::after(100.0);
  EXPECT_LE(far.tightened(1.0).remaining_s(), 1.0);
}

TEST(CancellationToken, DefaultTokenCannotBeCancelled) {
  const CancellationToken t;
  EXPECT_FALSE(t.can_be_cancelled());
  EXPECT_FALSE(t.cancelled());
}

TEST(CancellationToken, SourceCancelTripsItsToken) {
  CancellationSource src;
  const CancellationToken t = src.token();
  EXPECT_TRUE(t.can_be_cancelled());
  EXPECT_FALSE(t.cancelled());
  src.cancel();
  EXPECT_TRUE(t.cancelled());
  EXPECT_TRUE(src.cancelled());
}

TEST(CancellationToken, ParentCancelPropagatesToLinkedChildren) {
  CancellationSource parent;
  CancellationSource child(parent.token());
  CancellationSource grandchild(child.token());
  EXPECT_FALSE(grandchild.token().cancelled());

  parent.cancel();
  EXPECT_TRUE(child.token().cancelled());
  EXPECT_TRUE(grandchild.token().cancelled());
}

TEST(CancellationToken, ChildCancelLeavesParentAlive) {
  CancellationSource parent;
  CancellationSource child(parent.token());
  child.cancel();
  EXPECT_TRUE(child.token().cancelled());
  EXPECT_FALSE(parent.token().cancelled());
}

TEST(CancellationToken, CancelIsVisibleAcrossThreads) {
  CancellationSource src;
  const CancellationToken t = src.token();
  std::thread canceller([&src] { src.cancel(); });
  canceller.join();
  EXPECT_TRUE(t.cancelled());
}

TEST(ResourceBudget, NegativeCapsAreUnlimited) {
  ResourceBudget b;  // all caps -1
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(b.charge_bb_nodes());
  EXPECT_TRUE(b.charge_yen_candidates(1000));
  EXPECT_TRUE(b.charge_encode_rows(1000000));
  EXPECT_FALSE(b.exhausted());
  EXPECT_EQ(b.bb_nodes_used(), 1000);
}

TEST(ResourceBudget, ChargeRefusesTheUnitThatExceedsTheCap) {
  ResourceBudget b(/*max_bb_nodes=*/3, /*max_yen_candidates=*/-1, /*max_encode_rows=*/-1);
  EXPECT_TRUE(b.charge_bb_nodes());
  EXPECT_TRUE(b.charge_bb_nodes());
  EXPECT_TRUE(b.charge_bb_nodes());
  EXPECT_FALSE(b.charge_bb_nodes());  // 4th unit refused
  EXPECT_TRUE(b.exhausted());
}

TEST(ResourceBudget, ExhaustionIsSticky_AcrossResources) {
  ResourceBudget b(/*max_bb_nodes=*/1, /*max_yen_candidates=*/-1, /*max_encode_rows=*/-1);
  EXPECT_TRUE(b.charge_bb_nodes());
  EXPECT_FALSE(b.charge_bb_nodes());
  // Once exhausted, every further charge is refused, even on other
  // resources with headroom — the request as a whole is over budget.
  EXPECT_FALSE(b.charge_yen_candidates());
  EXPECT_FALSE(b.charge_encode_rows(1));
}

TEST(ExecControl, DefaultControlNeverStops) {
  const ExecControl ctl;
  TerminationReason why = TerminationReason::kCompleted;
  EXPECT_FALSE(ctl.stopped(&why));
  EXPECT_FALSE(ctl.checkpoint(&why));
  EXPECT_EQ(why, TerminationReason::kCompleted);
}

TEST(ExecControl, StoppedPrefersCancellationOverDeadline) {
  CancellationSource src;
  ExecControl ctl;
  ctl.deadline = Deadline::after(0.0);  // already expired
  ctl.token = src.token();

  TerminationReason why = TerminationReason::kCompleted;
  EXPECT_TRUE(ctl.stopped(&why));
  EXPECT_EQ(why, TerminationReason::kDeadline);

  src.cancel();
  EXPECT_TRUE(ctl.stopped(&why));
  EXPECT_EQ(why, TerminationReason::kCancelled);  // most specific reason wins
}

TEST(ExecControl, InjectorFiresAtTheNthCheckpoint) {
  CancellationSource src;
  ExecControl ctl;
  ctl.token = src.token();
  ctl.injector = std::make_shared<CheckpointInjector>(3, src);

  TerminationReason why = TerminationReason::kCompleted;
  EXPECT_FALSE(ctl.checkpoint(&why));  // checkpoint 1
  EXPECT_FALSE(ctl.checkpoint(&why));  // checkpoint 2
  EXPECT_TRUE(ctl.checkpoint(&why));   // checkpoint 3: fires, then observes
  EXPECT_EQ(why, TerminationReason::kCancelled);
  EXPECT_EQ(ctl.injector->checkpoints_seen(), 3);
}

TEST(ExecControl, WorkerViewStripsTheInjectorButKeepsTheRest) {
  CancellationSource src;
  ExecControl ctl;
  ctl.deadline = Deadline::after(3600.0);
  ctl.token = src.token();
  ctl.budget = std::make_shared<ResourceBudget>(10, -1, -1);
  ctl.injector = std::make_shared<CheckpointInjector>(1, src);

  const ExecControl worker = ctl.worker_view();
  EXPECT_EQ(worker.injector, nullptr);
  EXPECT_EQ(worker.budget, ctl.budget);  // same shared budget
  EXPECT_TRUE(worker.deadline.finite());

  // A worker checkpoint must not advance the injection count (stopped()
  // polling is all workers do); the spine's injector still fires at 1.
  TerminationReason why = TerminationReason::kCompleted;
  EXPECT_FALSE(worker.checkpoint(&why));
  EXPECT_EQ(ctl.injector->checkpoints_seen(), 0);
  EXPECT_TRUE(ctl.checkpoint(&why));
  EXPECT_EQ(why, TerminationReason::kCancelled);
  EXPECT_TRUE(worker.stopped(&why));  // shared token: workers observe it
}

TEST(ExecControl, TightenedCombinesWithExistingDeadline) {
  ExecControl ctl;
  ctl.deadline = Deadline::after(100.0);
  const ExecControl tight = ctl.tightened(1.0);
  EXPECT_LE(tight.deadline.remaining_s(), 1.0);
  EXPECT_GT(ctl.deadline.remaining_s(), 50.0);  // original untouched
}

TEST(TerminationReason, ToStringCoversEveryReason) {
  EXPECT_STREQ(to_string(TerminationReason::kCompleted), "completed");
  EXPECT_STREQ(to_string(TerminationReason::kDeadline), "deadline");
  EXPECT_STREQ(to_string(TerminationReason::kCancelled), "cancelled");
  EXPECT_STREQ(to_string(TerminationReason::kNodeLimit), "node-limit");
  EXPECT_STREQ(to_string(TerminationReason::kNumerical), "numerical");
  EXPECT_STREQ(to_string(TerminationReason::kInfeasible), "infeasible");
}

}  // namespace
}  // namespace wnet::util::exec
