#!/usr/bin/env bash
# Tier-1 verify (ROADMAP.md): plain build + ctest, then the same suite under
# ASan+UBSan so fault-injection code paths are memory-checked too.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j

cmake -B build-asan -S . -DWNET_SANITIZE=ON
cmake --build build-asan -j
# Leak checking needs ptrace, which container runtimes often deny; ASan's
# memory-error detection is unaffected by turning it off.
ASAN_OPTIONS=detect_leaks=0 ctest --test-dir build-asan --output-on-failure -j
