#!/usr/bin/env python3
"""Integration smoke for the wnetd solve daemon (CI "server smoke" job).

Drives the real binary over its stdin/stdout JSONL wire protocol and checks
the contracts the unit tests pin in-process:

  phase 1  serial reference: one worker, a request plus its exact duplicate.
           The duplicate must be a cache hit with a byte-identical canonical
           object and strictly lower wall clock.
  phase 2  concurrency: four workers, several concurrent requests, one of
           them cancelled mid-solve. The cancelled request must still emit a
           structured result (termination "cancelled"), and every surviving
           request's canonical object must match the phase-1 serial
           reference byte for byte.
  phase 3  admission: one worker, queue limit 1, dispatch saturated by a
           long request -> the overflow request is rejected with a
           structured queue_full event; a duplicate id is rejected with
           duplicate_id.

Every line the daemon writes (all phases) must re-parse as strict JSON.

Usage: server_smoke.py path/to/wnetd
"""

import json
import subprocess
import sys
import time

FAILURES = []


def check(cond, label):
    tag = "ok" if cond else "FAIL"
    print(f"  [{tag}] {label}")
    if not cond:
        FAILURES.append(label)


def run_daemon(binary, args, lines, delays=None, timeout=120):
    """Feed request lines (with optional per-line delays) and collect events."""
    proc = subprocess.Popen(
        [binary] + args,
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        text=True,
    )
    delays = delays or [0.0] * len(lines)
    try:
        for line, delay in zip(lines, delays):
            if delay:
                time.sleep(delay)
            proc.stdin.write(line + "\n")
            proc.stdin.flush()
        proc.stdin.close()
    except BrokenPipeError:
        pass  # daemon already drained a shutdown request
    out = proc.stdout.read()
    proc.wait(timeout=timeout)
    check(proc.returncode == 0, f"daemon exit code 0 (got {proc.returncode})")
    events = []
    for raw in out.splitlines():
        try:
            events.append(json.loads(raw))
        except json.JSONDecodeError:
            check(False, f"line is strict JSON: {raw[:120]!r}")
    return out, events


def result_of(events, rid):
    for e in events:
        if e.get("event") == "result" and e.get("id") == rid:
            return e
    return None


def canonical_text(raw_out, rid):
    """Raw canonical substring of a result line, for byte comparison."""
    for line in raw_out.splitlines():
        if f'"id": "{rid}"' in line and '"event": "result"' in line:
            a = line.find('"canonical": ')
            b = line.rfind(', "cache_hit":')
            if a >= 0 and b > a:
                return line[a + len('"canonical": '):b]
    return None


def solve(rid, ladder=(1, 3), **kw):
    req = {"op": "solve", "id": rid, "template": "scalable:30x10",
           "ladder": list(ladder)}
    req.update(kw)
    return json.dumps(req)


def main():
    if len(sys.argv) != 2:
        print(__doc__)
        return 2
    wnetd = sys.argv[1]

    print("phase 1: serial reference + cache-hit duplicate")
    out1, ev1 = run_daemon(wnetd, ["--workers", "1"], [
        solve("ref"),
        solve("dup"),
        json.dumps({"op": "stats"}),
        json.dumps({"op": "shutdown"}),
    ])
    ref, dup = result_of(ev1, "ref"), result_of(ev1, "dup")
    check(ref is not None and dup is not None, "both results emitted")
    if ref and dup:
        check(not ref["cache_hit"], "first request is a cold miss")
        check(dup["cache_hit"], "duplicate request is a cache hit")
        check(dup["reused_rungs"] == 2, "duplicate replayed both rungs")
        check(canonical_text(out1, "ref") == canonical_text(out1, "dup"),
              "duplicate canonical is byte-identical")
        check(dup["wall_time_s"] < ref["wall_time_s"],
              f"warm wall {dup['wall_time_s']:.2e}s < cold {ref['wall_time_s']:.2e}s")
    check(any(e.get("event") == "stats" for e in ev1), "stats event answered")
    check(any(e.get("event") == "shutdown" for e in ev1), "shutdown event emitted")
    reference = canonical_text(out1, "ref")

    print("phase 2: concurrent requests + mid-solve cancel")
    # Three normal requests and one long one that gets cancelled after it has
    # had time to start. use_cache off so every solve is a real computation.
    lines = [
        solve("a", use_cache=False),
        solve("b", use_cache=False),
        solve("victim", ladder=(1, 3, 5, 8, 12, 16), use_cache=False),
        solve("c", use_cache=False),
        json.dumps({"op": "cancel", "id": "victim"}),
        json.dumps({"op": "shutdown"}),
    ]
    out2, ev2 = run_daemon(wnetd, ["--workers", "4"], lines,
                           delays=[0, 0, 0, 0, 0.05, 0])
    for rid in ("a", "b", "c"):
        r = result_of(ev2, rid)
        check(r is not None, f"survivor {rid} emitted a result")
        check(canonical_text(out2, rid) == reference,
              f"survivor {rid} canonical matches the serial reference")
    victim = result_of(ev2, "victim")
    check(victim is not None, "cancelled request still emitted a result")
    if victim:
        term = victim["canonical"]["termination"]
        check(term in ("cancelled", "completed"),
              f"victim termination is structured (got {term!r})")
    check(any(e.get("event") == "cancel_ack" for e in ev2), "cancel acknowledged")

    print("phase 3: admission control")
    # One worker, queue depth 1: a long-running request occupies the worker,
    # the next queues, the one after that must be rejected queue_full. A
    # reused id is rejected duplicate_id.
    lines = [
        solve("slow", ladder=(1, 3, 5, 8, 12), use_cache=False),
        solve("queued", use_cache=False),
        solve("overflow", use_cache=False),
        solve("slow"),  # id still queued or running -> duplicate_id
        json.dumps({"op": "shutdown"}),
    ]
    _, ev3 = run_daemon(wnetd, ["--workers", "1", "--queue", "1"], lines,
                        delays=[0, 0.05, 0, 0, 0])
    rejects = {e["id"]: e["reason"] for e in ev3 if e.get("event") == "rejected"}
    check(rejects.get("overflow") == "queue_full", "overflow rejected queue_full")
    check(rejects.get("slow") == "duplicate_id", "reused id rejected duplicate_id")
    check(result_of(ev3, "slow") is not None and result_of(ev3, "queued") is not None,
          "admitted requests still completed")

    if FAILURES:
        print(f"\n{len(FAILURES)} check(s) failed:")
        for f in FAILURES:
            print(f"  - {f}")
        return 1
    print("\nall checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
