// Exploration-as-a-service quickstart: embed the solve daemon's SolveService
// in-process (the wnetd binary is the same engine behind stdin/stdout).
//
//   ./service_quickstart
//
// Submits three requests against a built-in paper workload and prints the
// JSONL event stream as it arrives:
//
//   1. "first"  — a cold solve of the scalable:30x10 instance, ladder {1, 3}
//   2. "again"  — the identical request; answered from the session cache
//                 (watch cache_hit and wall_time_s in its result event)
//   3. "longer" — extends the ladder to {1, 3, 5}; the cached session is
//                 resumed, so only the new rung costs anything
//
#include <cstdio>

#include "server/protocol.h"
#include "server/solve_service.h"

using namespace wnet::server;

int main() {
  TemplateRegistry registry;  // built-ins resolve lazily, on first use

  ServiceConfig cfg;
  cfg.workers = 2;
  SolveService service(registry, cfg,
                       [](const std::string& line) { std::printf("%s\n", line.c_str()); });

  // Requests normally arrive as JSONL lines over stdin; submit_line is the
  // exact wire path wnetd uses.
  service.submit_line(
      R"({"op": "solve", "id": "first", "template": "scalable:30x10", "ladder": [1, 3]})");
  service.wait_idle();

  service.submit_line(
      R"({"op": "solve", "id": "again", "template": "scalable:30x10", "ladder": [1, 3]})");
  service.wait_idle();

  service.submit_line(
      R"({"op": "solve", "id": "longer", "template": "scalable:30x10", "ladder": [1, 3, 5]})");
  service.wait_idle();

  service.submit_line(R"({"op": "stats"})");
  service.shutdown();
  return 0;
}
