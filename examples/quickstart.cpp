// Quickstart: build a small wireless-network template in code, state the
// requirements in the pattern language, and let the explorer pick the
// topology and components.
//
//   ./quickstart
//
#include <cstdio>

#include "channel/propagation.h"
#include "core/explorer.h"
#include "core/render.h"
#include "core/spec/parser.h"

using namespace wnet;

int main() {
  // 1. Channel and component library.
  const channel::LogDistanceModel channel_model(2.4e9, /*exponent=*/2.2);
  const archex::ComponentLibrary library = archex::make_reference_library();

  // 2. Template: two fixed sensors, one fixed base station, four candidate
  //    relay sites on a 30 x 20 m floor.
  archex::NetworkTemplate tmpl(channel_model, library);
  tmpl.add_node({"s0", {0, 10}, archex::Role::kSensor, archex::NodeKind::kFixed, std::nullopt});
  tmpl.add_node({"s1", {10, 0}, archex::Role::kSensor, archex::NodeKind::kFixed, std::nullopt});
  tmpl.add_node({"sink", {30, 10}, archex::Role::kSink, archex::NodeKind::kFixed, std::nullopt});
  tmpl.add_node({"r0", {10, 10}, archex::Role::kRelay, archex::NodeKind::kCandidate, std::nullopt});
  tmpl.add_node({"r1", {20, 10}, archex::Role::kRelay, archex::NodeKind::kCandidate, std::nullopt});
  tmpl.add_node({"r2", {15, 5}, archex::Role::kRelay, archex::NodeKind::kCandidate, std::nullopt});
  tmpl.add_node({"r3", {20, 16}, archex::Role::kRelay, archex::NodeKind::kCandidate, std::nullopt});

  // 3. Requirements, in the paper's pattern language.
  const auto spec = archex::spec::parse(R"(
p1 = has_path(s0, sink)
p2 = has_path(s0, sink)
disjoint_links(p1, p2)          # fault tolerance for s0
q1 = has_path(s1, sink)
min_signal_to_noise(20)         # dB on every active link
min_network_lifetime(5, 3000)   # years on 2xAA
objective cost=1
)",
                                        tmpl);

  // 4. Explore: Algorithm 1 encoding with K* = 8 candidates per route.
  archex::Explorer explorer(tmpl, spec);
  archex::EncoderOptions eopts;
  eopts.k_star = 8;
  milp::SolveOptions sopts;
  sopts.time_limit_s = 60.0;
  const auto result = explorer.explore(eopts, sopts);

  std::printf("status: %s\n", milp::to_string(result.status));
  if (!result.has_solution()) return 1;
  std::printf("objective ($): %.2f\n", result.objective);
  std::printf("MILP: %d vars, %d constraints, solved in %.2fs (%ld B&B nodes)\n",
              result.encode_stats.num_vars, result.encode_stats.num_constrs,
              result.solve_stats.time_s, result.solve_stats.nodes);
  std::printf("%s", archex::describe(result.architecture, tmpl).c_str());

  // 5. Independent verification of every requirement.
  const auto report = archex::verify_architecture(result.architecture, tmpl, spec);
  std::printf("verification: %s\n", report.ok ? "all requirements satisfied" : "VIOLATIONS");
  for (const auto& v : report.violations) std::printf("  - %s\n", v.c_str());
  return report.ok ? 0 : 1;
}
