// File-driven workflow, mirroring the paper's tool inputs: a floor plan
// file (the paper uses SVG; we use the plain-text format), a component
// library, and a pattern-based specification file.
//
//   ./spec_driven [floorplan_path] [spec_path]
//
// Defaults to the files in examples/data/.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "channel/propagation.h"
#include "core/explorer.h"
#include "core/render.h"
#include "core/spec/parser.h"

using namespace wnet;
using namespace wnet::archex;

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string plan_path = argc > 1 ? argv[1] : "examples/data/office.floorplan";
  const std::string spec_path = argc > 2 ? argv[2] : "examples/data/office.spec";

  const geom::FloorPlan plan = geom::parse_floorplan(slurp(plan_path));
  const channel::MultiWallModel model(2.4e9, 2.8, plan);
  const ComponentLibrary library = make_reference_library();

  // Template: four sensors in room corners, a sink in the corridor, and a
  // relay candidate per room plus corridor positions.
  NetworkTemplate tmpl(model, library);
  tmpl.add_node({"sink", {plan.width() / 2, plan.height() / 2}, Role::kSink, NodeKind::kFixed,
                 std::nullopt});
  const geom::Vec2 sensor_at[] = {{3, 3}, {37, 3}, {3, 21}, {37, 21}};
  for (int i = 0; i < 4; ++i) {
    tmpl.add_node({"s" + std::to_string(i), sensor_at[i], Role::kSensor, NodeKind::kFixed,
                   std::nullopt});
  }
  int idx = 0;
  for (double x = 5; x < plan.width(); x += 10) {
    for (double y : {5.0, 12.0, 19.0}) {
      tmpl.add_node({"r" + std::to_string(idx++), {x, y}, Role::kRelay, NodeKind::kCandidate,
                     std::nullopt});
    }
  }

  const Specification spec = spec::parse(slurp(spec_path), tmpl);
  std::printf("loaded %s (%zu walls) and %s (%zu routes)\n", plan_path.c_str(),
              plan.walls().size(), spec_path.c_str(), spec.routes.size());

  Explorer explorer(tmpl, spec);
  milp::SolveOptions sopts;
  sopts.time_limit_s = 60.0;
  const auto result = explorer.explore({}, sopts);
  std::printf("status: %s, objective $%.0f, %.1fs\n", milp::to_string(result.status),
              result.objective, result.total_time_s);
  if (!result.has_solution()) return 1;
  std::printf("%s", describe(result.architecture, tmpl).c_str());

  const auto report = verify_architecture(result.architecture, tmpl, spec);
  std::printf("verification: %s\n", report.ok ? "OK" : "FAILED");
  for (const auto& v : report.violations) std::printf("  - %s\n", v.c_str());

  std::ofstream("spec_driven_topology.svg") << render_svg(result.architecture, tmpl, plan, spec);
  std::printf("wrote spec_driven_topology.svg\n");
  return report.ok ? 0 : 1;
}
