// Counterexample-guided robust synthesis on the data-collection workload
// (paper Sec. 4.1 + the robustness extension in core/faults/): explore,
// replay a deterministic fault-injection campaign — k=1 and k=2
// simultaneous relay failures, link cuts, and 100 Monte-Carlo shadowing
// draws — and let the repair loop harden the design until the campaign
// passes or the budget runs out. For a fixed seed the whole run, including
// every fading realization, is reproducible bit-for-bit.
//
//   ./robust_data_collection [sensors] [grid_x] [grid_y] [seed] [budget_s] [threads]
//
// `threads` (default 1, 0 = all cores) fans the per-iteration campaign
// scoring and the encoder's candidate generation across workers; the
// report is bit-identical for every value.
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/explorer.h"
#include "core/workloads/scenarios.h"
#include "util/exec/exec.h"
#include "util/thread_pool.h"

using namespace wnet;
using namespace wnet::archex;

int main(int argc, char** argv) {
  // Ctrl-C / SIGTERM trip the repair loop's cancellation token: the run
  // stops at the next checkpoint and still prints + dumps the best-so-far
  // architecture and partial campaign report.
  util::exec::install_interrupt_handlers();

  workloads::DataCollectionConfig cfg;
  cfg.sensors = argc > 1 ? std::atoi(argv[1]) : 6;
  cfg.relay_grid_x = argc > 2 ? std::atoi(argv[2]) : 5;
  cfg.relay_grid_y = argc > 3 ? std::atoi(argv[3]) : 3;
  cfg.route_replicas = 1;  // let the repair loop discover the redundancy
  const auto seed = static_cast<uint64_t>(argc > 4 ? std::atoll(argv[4]) : 1);
  const double budget_s = argc > 5 ? std::atof(argv[5]) : 180.0;
  const int threads = util::resolve_threads(argc > 6 ? std::atoi(argv[6]) : 1);

  const auto sc = workloads::make_data_collection(cfg);
  std::printf("template: %d nodes, %zu routes | campaign seed %llu\n", sc->tmpl->num_nodes(),
              sc->spec.routes.size(), static_cast<unsigned long long>(seed));

  const Explorer explorer(*sc->tmpl, sc->spec);
  Explorer::RobustExploreOptions ro;
  ro.encoder.k_star = 8;
  ro.solver.time_limit_s = 60.0;
  ro.faults.seed = seed;
  ro.faults.max_simultaneous_failures = 2;  // k = 1 and k = 2 relay failures
  ro.faults.fading_draws = 100;
  ro.faults.fading_sigma_db = 2.0;
  ro.time_budget_s = budget_s;
  ro.max_repair_iterations = 8;
  ro.max_extra_replicas = 1;
  ro.threads = threads;
  ro.solver.exec.token = util::exec::interrupt_token();

  const auto res = explorer.explore_robust(ro);
  if (res.termination != util::exec::TerminationReason::kCompleted) {
    std::printf("stopped early (%s)%s — reporting best-so-far\n",
                util::exec::to_string(res.termination),
                util::exec::interrupt_signal() != 0 ? " by signal" : "");
  }
  if (!res.best.has_solution()) {
    std::printf("no architecture found (%s)\n", milp::to_string(res.best.status));
    return 1;
  }

  std::printf("iterations: %d | hardenings applied: %d | replica raises: %zu\n", res.iterations,
              res.hardenings_applied, res.raised_routes.size());
  std::printf("campaign: %d/%d scenarios pass (%.1f%%) -> %s after %.1fs\n", res.report.passed(),
              res.report.total(), 100.0 * res.report.pass_rate(),
              res.robust ? "ROBUST" : "best effort", res.total_time_s);
  std::printf("cost: $%.0f | deployed nodes: %d | routes: %zu\n",
              res.best.architecture.total_cost_usd, res.best.architecture.num_nodes(),
              res.best.architecture.routes.size());
  for (const auto* f : res.report.failures()) {
    std::printf("  still failing: %s\n", f->scenario.describe(*sc->tmpl).c_str());
  }

  std::ofstream("robust_campaign.json") << res.report.to_json();
  std::printf("wrote robust_campaign.json\n");
  return 0;
}
