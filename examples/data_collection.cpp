// Data-collection WSN design (paper Sec. 4.1): synthesize relay placement,
// routing, and component sizing for an indoor periodic data-collection
// network, then render the Fig. 1b-style topology to SVG.
//
//   ./data_collection [sensors] [grid_x] [grid_y] [k_star] [time_limit_s]
//
// Defaults are scaled down from the paper's 136-node floor so the example
// finishes in seconds; pass "35 10 10" for the paper-size template.
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/analysis.h"
#include "core/explorer.h"
#include "core/render.h"
#include "core/resilience.h"
#include "core/workloads/scenarios.h"
#include "util/exec/exec.h"

using namespace wnet;
using namespace wnet::archex;

int main(int argc, char** argv) {
  // Ctrl-C / SIGTERM cancel the solve cooperatively: the run returns its
  // best incumbent (if any) instead of dying mid-branch-and-bound.
  util::exec::install_interrupt_handlers();

  workloads::DataCollectionConfig cfg;
  cfg.sensors = argc > 1 ? std::atoi(argv[1]) : 10;
  cfg.relay_grid_x = argc > 2 ? std::atoi(argv[2]) : 6;
  cfg.relay_grid_y = argc > 3 ? std::atoi(argv[3]) : 4;
  const int k_star = argc > 4 ? std::atoi(argv[4]) : 10;
  const double time_limit = argc > 5 ? std::atof(argv[5]) : 120.0;

  const auto sc = workloads::make_data_collection(cfg);
  std::printf("template: %d nodes (%d sensors, %d relay candidates), %zu routes\n",
              sc->tmpl->num_nodes(), cfg.sensors,
              cfg.relay_grid_x * cfg.relay_grid_y, sc->spec.routes.size());

  Explorer explorer(*sc->tmpl, sc->spec);
  EncoderOptions eopts;
  eopts.k_star = k_star;
  milp::SolveOptions sopts;
  sopts.time_limit_s = time_limit;
  sopts.exec.token = util::exec::interrupt_token();
  eopts.exec.token = util::exec::interrupt_token();
  const auto result = explorer.explore(eopts, sopts);

  std::printf("status: %s after %.1fs (%d vars, %d constraints, %ld nodes)\n",
              milp::to_string(result.status), result.total_time_s, result.encode_stats.num_vars,
              result.encode_stats.num_constrs, result.solve_stats.nodes);
  if (result.termination != util::exec::TerminationReason::kCompleted) {
    std::printf("stopped early (%s) — best-so-far below\n",
                util::exec::to_string(result.termination));
  }
  if (!result.has_solution()) return 1;

  const auto& arch = result.architecture;
  std::printf("dollar cost: $%.0f | deployed nodes: %d | lifetime min %.2fy avg %.2fy\n",
              arch.total_cost_usd, arch.num_nodes(), arch.min_lifetime_years,
              arch.avg_lifetime_years);

  const auto report = verify_architecture(arch, *sc->tmpl, sc->spec);
  std::printf("verification: %s\n", report.ok ? "OK" : "FAILED");
  for (const auto& v : report.violations) std::printf("  - %s\n", v.c_str());

  std::printf("%s", to_string(analyze_architecture(arch, *sc->tmpl, sc->spec)).c_str());
  const auto resilience = analyze_resilience(arch, *sc->tmpl, sc->spec);
  std::printf("resilience: %zu/%zu route requirements survive any single relay failure\n",
              resilience.resilient_routes.size(), sc->spec.routes.size());

  std::ofstream("data_collection_topology.svg")
      << render_svg(arch, *sc->tmpl, sc->plan, sc->spec);
  std::printf("wrote data_collection_topology.svg\n");
  return report.ok ? 0 : 1;
}
