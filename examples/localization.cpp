// Localization-network design (paper Sec. 4.2): place RSS-ranging anchors
// so every evaluation point hears at least N of them, minimizing dollar
// cost or the DSOD accuracy surrogate.
//
//   ./localization [anchor_gx] [anchor_gy] [eval_gx] [eval_gy] [objective]
//
// objective: "cost" (default), "dsod", or "both".
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "core/explorer.h"
#include "core/render.h"
#include "core/workloads/scenarios.h"

using namespace wnet;
using namespace wnet::archex;

int main(int argc, char** argv) {
  workloads::LocalizationConfig cfg;
  cfg.anchor_grid_x = argc > 1 ? std::atoi(argv[1]) : 8;
  cfg.anchor_grid_y = argc > 2 ? std::atoi(argv[2]) : 5;
  cfg.eval_grid_x = argc > 3 ? std::atoi(argv[3]) : 7;
  cfg.eval_grid_y = argc > 4 ? std::atoi(argv[4]) : 5;
  const char* objective = argc > 5 ? argv[5] : "cost";

  const auto sc = workloads::make_localization(cfg);
  if (std::strcmp(objective, "dsod") == 0) {
    sc->spec.objective = {0.0, 0.0, 1.0};
  } else if (std::strcmp(objective, "both") == 0) {
    sc->spec.objective = {1.0, 0.0, 1.0};
  }

  std::printf("template: %d anchor candidates, %zu eval points, objective=%s\n",
              sc->tmpl->num_nodes(), sc->spec.localization->eval_points.size(), objective);

  Explorer explorer(*sc->tmpl, sc->spec);
  EncoderOptions eopts;
  eopts.loc_candidates = 20;
  milp::SolveOptions sopts;
  sopts.time_limit_s = 120.0;
  const auto result = explorer.explore(eopts, sopts);

  std::printf("status: %s after %.1fs (%d vars, %d constraints)\n",
              milp::to_string(result.status), result.total_time_s, result.encode_stats.num_vars,
              result.encode_stats.num_constrs);
  if (!result.has_solution()) return 1;

  const auto& arch = result.architecture;
  std::printf("anchors placed: %d | $%.0f | avg reachable anchors per point: %.2f | DSOD %.1f\n",
              arch.num_nodes(), arch.total_cost_usd, arch.avg_reachable_anchors, arch.dsod);

  const auto report = verify_architecture(arch, *sc->tmpl, sc->spec);
  std::printf("verification: %s\n", report.ok ? "OK" : "FAILED");
  for (const auto& v : report.violations) std::printf("  - %s\n", v.c_str());

  std::ofstream("localization_placement.svg")
      << render_svg(arch, *sc->tmpl, sc->plan, sc->spec);
  std::printf("wrote localization_placement.svg\n");
  return report.ok ? 0 : 1;
}
