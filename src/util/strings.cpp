#include "util/strings.h"

#include <cctype>
#include <charconv>

namespace wnet::util {

std::string_view trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (true) {
    size_t next = s.find(sep, pos);
    if (next == std::string_view::npos) {
      out.emplace_back(trim(s.substr(pos)));
      break;
    }
    out.emplace_back(trim(s.substr(pos, next - pos)));
    pos = next + 1;
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t b = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > b) out.emplace_back(s.substr(b, i - b));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::optional<double> parse_double(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  double value = 0;
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(s.data(), end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

std::optional<long> parse_long(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  long value = 0;
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(s.data(), end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace wnet::util
