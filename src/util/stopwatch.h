#pragma once

#include <chrono>

namespace wnet::util {

/// Monotonic wall-clock stopwatch used by solvers and benchmark harnesses.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch from zero.
  void reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace wnet::util
