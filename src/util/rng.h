#pragma once

#include <cstdint>
#include <random>

namespace wnet::util {

/// Deterministic seeded RNG wrapper; all workload generators take one of
/// these so every experiment is reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Bernoulli draw with probability p of true.
  bool chance(double p) { return std::bernoulli_distribution(p)(engine_); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace wnet::util
