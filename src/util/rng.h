#pragma once

#include <cstdint>
#include <random>

namespace wnet::util {

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixing function.
/// Used wherever a value must be hashed into an independent-looking seed
/// deterministically (fault scenarios, per-link shadowing draws) without
/// dragging in a stateful engine.
[[nodiscard]] constexpr uint64_t splitmix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Deterministic seeded RNG wrapper; all workload generators take one of
/// these so every experiment is reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Bernoulli draw with probability p of true.
  bool chance(double p) { return std::bernoulli_distribution(p)(engine_); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace wnet::util
