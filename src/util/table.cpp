#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace wnet::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table::add_row: arity mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (size_t c = 0; c < r.size(); ++c) width[c] = std::max(width[c], r[c].size());
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (size_t c = 0; c < r.size(); ++c) {
      os << r[c] << std::string(width[c] - r[c].size(), ' ');
      if (c + 1 < r.size()) os << "  ";
    }
    os << '\n';
  };
  emit(header_);
  size_t total = 0;
  for (size_t c = 0; c < width.size(); ++c) total += width[c] + (c + 1 < width.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (size_t c = 0; c < r.size(); ++c) {
      os << r[c];
      if (c + 1 < r.size()) os << ',';
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::string fmt_double(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

}  // namespace wnet::util
