#pragma once

#include <string>
#include <vector>

namespace wnet::util {

/// Right-padded ASCII table printer used by the benchmark harnesses to emit
/// rows in the same layout as the paper's tables.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Renders the table with a separator line under the header.
  [[nodiscard]] std::string to_string() const;

  /// Renders as comma-separated values (for machine post-processing).
  [[nodiscard]] std::string to_csv() const;

  [[nodiscard]] size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant decimals, trimming zeros.
[[nodiscard]] std::string fmt_double(double v, int digits = 2);

}  // namespace wnet::util
