#include "util/thread_pool.h"

#include <atomic>
#include <algorithm>
#include <exception>
#include <stdexcept>

#include "util/obs/trace.h"

namespace wnet::util {

namespace {
std::atomic<long> g_suppressed_total{0};
}  // namespace

long suppressed_exception_total() { return g_suppressed_total.load(std::memory_order_relaxed); }

int resolve_threads(int requested) {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) throw std::invalid_argument("ThreadPool: need >= 1 thread");
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions are the closure's responsibility (see for_each)
  }
}

ParallelExecutor::ParallelExecutor(int threads) : threads_(std::max(1, threads)) {
  if (threads_ > 1) pool_ = std::make_unique<ThreadPool>(threads_);
}

ParallelExecutor::~ParallelExecutor() = default;

void ParallelExecutor::for_each(int n, const std::function<void(int)>& fn,
                                long* suppressed_out) const {
  if (suppressed_out != nullptr) *suppressed_out = 0;
  if (n <= 0) return;
  if (pool_ == nullptr) {
    // Serial: the first exception propagates eagerly, later indices never
    // run, so nothing is ever suppressed.
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }

  // Shared cursor: workers claim indices one at a time, so load balances
  // whatever the per-index cost skew. Each index runs exactly once; slot
  // ownership (not completion order) carries the results, which is what
  // makes the merge deterministic. Exceptions are kept per index and the
  // lowest-index one is rethrown — the same exception a serial run would
  // surface first.
  struct Join {
    std::atomic<int> next{0};
    std::atomic<int> done{0};
    std::mutex mu;
    std::condition_variable cv;
    std::vector<std::exception_ptr> errors;
  };
  const auto join = std::make_shared<Join>();
  join->errors.assign(static_cast<size_t>(n), nullptr);

  const int tasks = std::min(pool_->size(), n);
  for (int t = 0; t < tasks; ++t) {
    pool_->submit([join, n, &fn] {
      for (;;) {
        const int i = join->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        try {
          fn(i);
        } catch (...) {
          join->errors[static_cast<size_t>(i)] = std::current_exception();
        }
        if (join->done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
          const std::lock_guard<std::mutex> lock(join->mu);
          join->cv.notify_all();
        }
      }
    });
  }

  std::unique_lock<std::mutex> lock(join->mu);
  join->cv.wait(lock, [&] { return join->done.load(std::memory_order_acquire) == n; });

  // Rethrow contract: every index runs to completion (a throwing index
  // never aborts its siblings — their slot-owned results survive intact),
  // and the LOWEST-index exception is rethrown, i.e. the same one a serial
  // loop would have surfaced first. Additional exceptions are necessarily
  // dropped — C++ can only propagate one — but never silently: the count is
  // written to `suppressed_out` and the process-wide total BEFORE the
  // rethrow (so it survives the unwind and is visible from server
  // telemetry even with tracing off), and mirrored to the trace counter
  // when a recorder is active.
  long failed = 0;
  for (const std::exception_ptr& e : join->errors) {
    if (e) ++failed;
  }
  const long suppressed = failed > 1 ? failed - 1 : 0;
  if (suppressed_out != nullptr) *suppressed_out = suppressed;
  if (suppressed > 0) {
    g_suppressed_total.fetch_add(suppressed, std::memory_order_relaxed);
    obs::TraceRecorder::global().counter_add("thread_pool.suppressed_exceptions",
                                             static_cast<double>(suppressed));
  }
  for (const std::exception_ptr& e : join->errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace wnet::util
