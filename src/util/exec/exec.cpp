#include "util/exec/exec.h"

#include <algorithm>
#include <csignal>

namespace wnet::util::exec {

const char* to_string(TerminationReason r) {
  switch (r) {
    case TerminationReason::kCompleted: return "completed";
    case TerminationReason::kDeadline: return "deadline";
    case TerminationReason::kCancelled: return "cancelled";
    case TerminationReason::kNodeLimit: return "node-limit";
    case TerminationReason::kNumerical: return "numerical";
    case TerminationReason::kInfeasible: return "infeasible";
  }
  return "unknown";
}

Deadline Deadline::after(double seconds) {
  if (!(seconds < 1e29)) return {};  // non-finite or sentinel-huge: infinite
  Deadline d;
  d.finite_ = true;
  d.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(seconds));
  return d;
}

double Deadline::remaining_s() const {
  if (!finite_) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double>(at_ - Clock::now()).count();
}

Deadline Deadline::tightened(double seconds) const {
  const Deadline other = Deadline::after(seconds);
  if (!finite_) return other;
  if (!other.finite_) return *this;
  Deadline d;
  d.finite_ = true;
  d.at_ = std::min(at_, other.at_);
  return d;
}

RequestControl make_request_control(double time_limit_s, const CancellationToken& parent,
                                    long max_bb_nodes, long max_yen_candidates,
                                    long max_encode_rows) {
  RequestControl rc{CancellationSource(parent), {}};
  rc.control.deadline = Deadline::after(time_limit_s);
  rc.control.token = rc.source.token();
  rc.control.budget =
      std::make_shared<ResourceBudget>(max_bb_nodes, max_yen_candidates, max_encode_rows);
  return rc;
}

namespace {

/// Static so the signal handler needs no capture; the source's cancel() is
/// one relaxed atomic store, which is async-signal-safe.
CancellationSource& interrupt_source() {
  static CancellationSource source;
  return source;
}

std::atomic<int> g_interrupt_signal{0};

extern "C" void handle_interrupt(int sig) {
  g_interrupt_signal.store(sig, std::memory_order_relaxed);
  interrupt_source().cancel();
}

}  // namespace

const CancellationToken& interrupt_token() {
  static const CancellationToken token = interrupt_source().token();
  return token;
}

void install_interrupt_handlers() {
  (void)interrupt_token();  // materialize the source before any signal
  std::signal(SIGINT, handle_interrupt);
  std::signal(SIGTERM, handle_interrupt);
}

int interrupt_signal() { return g_interrupt_signal.load(std::memory_order_relaxed); }

}  // namespace wnet::util::exec
