#pragma once

// Unified execution control for every long-running loop in the pipeline:
// a monotonic Deadline, a thread-safe CancellationToken with child/linked
// tokens, a ResourceBudget over the non-wall-clock resources a request
// consumes (B&B nodes, Yen candidates, encode rows), and the structured
// TerminationReason every solve/explore/campaign entry point reports.
//
// The pieces travel together as one ExecControl value embedded in the
// options struct of each subsystem (milp::SolveOptions, EncoderOptions,
// CampaignOptions). Copies are cheap (a time point plus two shared_ptrs),
// and the default-constructed control never stops anything, so existing
// callers are unaffected.
//
// Determinism contract: checkpoint() — the counting probe for the
// deterministic cancellation-injection harness — may only be called from
// the serial spine of a computation (the B&B node loop, ladder rung
// boundaries, robust repair iterations, encoder phases). Code that can run
// on worker-pool threads must poll stopped() on a worker_view() copy, which
// strips the injector. Because injected cancellation then fires only at
// spine checkpoints, and the spine blocks on fork-join joins, worker tasks
// never observe the token flipping mid-task — so serial and threaded runs
// degrade identically under injection. Real cancellation (a SIGINT) can
// flip anywhere; every interleaving still yields a *valid* partial result,
// just not a bit-reproducible one.

#include <atomic>
#include <limits>
#include <memory>
#include <chrono>

namespace wnet::util::exec {

/// Why a solve/explore/campaign returned. `kCompleted` covers every natural
/// ending that is not an infeasibility proof (optimal, gap closed, campaign
/// finished); the other values are the structured anytime-contract reasons.
enum class TerminationReason {
  kCompleted,   ///< ran to its natural end
  kDeadline,    ///< wall-clock deadline / time limit expired
  kCancelled,   ///< cancellation token tripped (signal, caller, injection)
  kNodeLimit,   ///< a ResourceBudget or node limit was exhausted
  kNumerical,   ///< numerical trouble stopped the computation
  kInfeasible,  ///< proven infeasible (a result, but reported in-band)
};

[[nodiscard]] const char* to_string(TerminationReason r);

/// Monotonic wall-clock deadline. Default-constructed = never expires.
class Deadline {
 public:
  Deadline() = default;

  /// Deadline `seconds` from now (steady clock). Non-finite or huge values
  /// (>= 1e29, e.g. LpOptions' 1e30 sentinel) mean "infinite".
  [[nodiscard]] static Deadline after(double seconds);

  [[nodiscard]] static Deadline infinite() { return {}; }

  [[nodiscard]] bool finite() const { return finite_; }

  /// Seconds until expiry; +inf when infinite, <= 0 once expired.
  [[nodiscard]] double remaining_s() const;

  [[nodiscard]] bool expired() const { return finite_ && remaining_s() <= 0.0; }

  /// The tighter of this deadline and `seconds` from now — how a nested
  /// solve inherits "my own limit, but never past the request's".
  [[nodiscard]] Deadline tightened(double seconds) const;

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point at_{};
  bool finite_ = false;
};

namespace detail {
/// Shared cancellation state: one atomic flag plus a parent link, so a
/// child token is cancelled whenever any ancestor is. cancel() is a single
/// relaxed store — async-signal-safe by construction.
struct CancelState {
  std::atomic<bool> flag{false};
  std::shared_ptr<const CancelState> parent;
};
}  // namespace detail

/// Copyable, thread-safe cancellation handle. The default-constructed token
/// can never be cancelled (the no-op control every API defaults to).
class CancellationToken {
 public:
  CancellationToken() = default;

  [[nodiscard]] bool cancelled() const {
    for (const detail::CancelState* s = state_.get(); s != nullptr; s = s->parent.get()) {
      if (s->flag.load(std::memory_order_relaxed)) return true;
    }
    return false;
  }

  /// False for the default token: polling it is provably a no-op.
  [[nodiscard]] bool can_be_cancelled() const { return state_ != nullptr; }

 private:
  friend class CancellationSource;
  std::shared_ptr<const detail::CancelState> state_;
};

/// Owner side of a token. A source constructed from a parent token yields
/// *linked* child tokens: cancelling the parent cancels every child (so one
/// request-level cancel stops all its worker-pool tasks), while cancelling
/// the child leaves the parent alive.
class CancellationSource {
 public:
  CancellationSource() : state_(std::make_shared<detail::CancelState>()) {}

  explicit CancellationSource(const CancellationToken& parent)
      : state_(std::make_shared<detail::CancelState>()) {
    state_->parent = parent.state_;
  }

  /// Trips the token (and every linked child). Safe from any thread and
  /// from signal handlers: one relaxed atomic store, no locks.
  void cancel() { state_->flag.store(true, std::memory_order_relaxed); }

  [[nodiscard]] bool cancelled() const {
    return CancellationToken{token()}.cancelled();
  }

  [[nodiscard]] CancellationToken token() const {
    CancellationToken t;
    t.state_ = state_;
    return t;
  }

 private:
  std::shared_ptr<detail::CancelState> state_;
};

/// Caps on the non-wall-clock resources one request may consume, shared
/// (via ExecControl's shared_ptr) across every component the request
/// touches. Negative caps mean unlimited. Charging is thread-safe; under
/// threaded candidate generation the exact point where a cap bites may vary
/// with the thread count — for bit-reproducible early stops use the
/// checkpoint-injection harness instead.
class ResourceBudget {
 public:
  ResourceBudget() = default;
  ResourceBudget(long max_bb_nodes, long max_yen_candidates, long max_encode_rows,
                 long max_meta_iterations = -1)
      : max_bb_nodes_(max_bb_nodes),
        max_yen_candidates_(max_yen_candidates),
        max_encode_rows_(max_encode_rows),
        max_meta_iterations_(max_meta_iterations) {}

  /// Each charge_* records usage and returns false once the cap is passed
  /// (the n-th unit that would exceed the cap is refused).
  bool charge_bb_nodes(long n = 1) { return charge(used_bb_nodes_, max_bb_nodes_, n); }
  bool charge_yen_candidates(long n = 1) {
    return charge(used_yen_candidates_, max_yen_candidates_, n);
  }
  bool charge_encode_rows(long n) { return charge(used_encode_rows_, max_encode_rows_, n); }
  /// Metaheuristic iterations (one tabu move evaluation round); meters the
  /// meta layer the way charge_bb_nodes meters the exact search.
  bool charge_meta_iterations(long n = 1) {
    return charge(used_meta_iterations_, max_meta_iterations_, n);
  }

  /// True once any charge was refused. Serial spines poll this after a
  /// fork-join section to turn worker-side refusals into a termination.
  [[nodiscard]] bool exhausted() const {
    return exhausted_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] long bb_nodes_used() const { return used_bb_nodes_.load(std::memory_order_relaxed); }
  [[nodiscard]] long yen_candidates_used() const {
    return used_yen_candidates_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] long encode_rows_used() const {
    return used_encode_rows_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] long meta_iterations_used() const {
    return used_meta_iterations_.load(std::memory_order_relaxed);
  }

 private:
  bool charge(std::atomic<long>& used, long cap, long n) {
    const long total = used.fetch_add(n, std::memory_order_relaxed) + n;
    if (cap >= 0 && total > cap) {
      exhausted_.store(true, std::memory_order_relaxed);
      return false;
    }
    return !exhausted_.load(std::memory_order_relaxed);
  }

  long max_bb_nodes_ = -1;
  long max_yen_candidates_ = -1;
  long max_encode_rows_ = -1;
  long max_meta_iterations_ = -1;
  std::atomic<long> used_bb_nodes_{0};
  std::atomic<long> used_yen_candidates_{0};
  std::atomic<long> used_encode_rows_{0};
  std::atomic<long> used_meta_iterations_{0};
  std::atomic<bool> exhausted_{false};
};

/// Test-only harness: trips a CancellationSource at the N-th checkpoint.
/// Checkpoints are counted only by ExecControl::checkpoint(), which by
/// contract runs on the serial spine — so the count, and therefore the
/// exact cancellation point, is deterministic for any worker-thread count.
class CheckpointInjector {
 public:
  CheckpointInjector(long fire_at_checkpoint, CancellationSource source)
      : fire_at_(fire_at_checkpoint), source_(std::move(source)) {}

  void on_checkpoint() {
    if (count_.fetch_add(1, std::memory_order_relaxed) + 1 == fire_at_) source_.cancel();
  }

  [[nodiscard]] long checkpoints_seen() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::atomic<long> count_{0};
  long fire_at_;
  CancellationSource source_;
};

/// The bundle every long-running API accepts: deadline + token + budget
/// (+ optional injection harness). Value-semantic and cheap to copy.
class ExecControl {
 public:
  Deadline deadline;
  CancellationToken token;
  std::shared_ptr<ResourceBudget> budget;
  std::shared_ptr<CheckpointInjector> injector;

  /// Poll-only probe, safe from worker threads: cancellation first (the
  /// most specific reason), then the deadline.
  [[nodiscard]] bool stopped(TerminationReason* why = nullptr) const {
    if (token.cancelled()) {
      if (why != nullptr) *why = TerminationReason::kCancelled;
      return true;
    }
    if (deadline.expired()) {
      if (why != nullptr) *why = TerminationReason::kDeadline;
      return true;
    }
    return false;
  }

  /// Counting probe for the serial spine only: advances the injection
  /// counter (possibly tripping the token), then polls.
  bool checkpoint(TerminationReason* why = nullptr) const {
    if (injector) injector->on_checkpoint();
    return stopped(why);
  }

  /// Copy for code that may run on worker-pool threads: same deadline,
  /// token and budget, but checkpoints no longer count (see the class
  /// comment's determinism contract).
  [[nodiscard]] ExecControl worker_view() const {
    ExecControl c = *this;
    c.injector.reset();
    return c;
  }

  /// Copy whose deadline is the tighter of ours and `seconds` from now.
  [[nodiscard]] ExecControl tightened(double seconds) const {
    ExecControl c = *this;
    c.deadline = deadline.tightened(seconds);
    return c;
  }
};

/// Owner + bundle pair for one admitted server request: `source` is the
/// handle the daemon keeps for cancel-by-request-id, `control` is what
/// travels into the solve (deadline `time_limit_s` from admission, a token
/// linked to `parent` so one daemon-wide cancel stops every in-flight
/// request, and a fresh ResourceBudget over the request's own caps).
struct RequestControl {
  CancellationSource source;
  ExecControl control;
};

[[nodiscard]] RequestControl make_request_control(double time_limit_s,
                                                  const CancellationToken& parent,
                                                  long max_bb_nodes = -1,
                                                  long max_yen_candidates = -1,
                                                  long max_encode_rows = -1);

/// Process-wide interrupt plumbing for CLI/bench binaries:
/// install_interrupt_handlers() routes SIGINT and SIGTERM to a static
/// CancellationSource whose token this returns, so a Ctrl-C trips every
/// control derived from it and the binary emits its partial report instead
/// of dying mid-write. Idempotent; the token outlives main().
[[nodiscard]] const CancellationToken& interrupt_token();
void install_interrupt_handlers();

/// 0 until a handled signal arrived, then the last signal number (what a
/// bench prints next to its partial report).
[[nodiscard]] int interrupt_signal();

}  // namespace wnet::util::exec
