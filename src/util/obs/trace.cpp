#include "util/obs/trace.h"

#include <fstream>

#include "util/obs/json.h"

namespace wnet::util::obs {

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder instance;
  return instance;
}

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

void TraceRecorder::set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

void TraceRecorder::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  totals_.clear();
  tids_.clear();
  next_seq_ = 0;
}

double TraceRecorder::now_us() const {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - epoch_)
      .count();
}

int TraceRecorder::tid_locked(std::thread::id id) {
  const auto it = tids_.find(id);
  if (it != tids_.end()) return it->second;
  const int dense = static_cast<int>(tids_.size());
  tids_.emplace(id, dense);
  return dense;
}

void TraceRecorder::record_complete(std::string name, std::string cat, double start_us,
                                    double dur_us,
                                    std::vector<std::pair<std::string, double>> args) {
  if (!enabled()) return;
  TraceEvent e;
  e.phase = TraceEvent::Phase::kComplete;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.ts_us = start_us;
  e.dur_us = dur_us;
  e.args = std::move(args);
  const std::lock_guard<std::mutex> lock(mu_);
  e.tid = tid_locked(std::this_thread::get_id());
  e.seq = next_seq_++;
  events_.push_back(std::move(e));
}

void TraceRecorder::record_counter(std::string name, double value) {
  if (!enabled()) return;
  TraceEvent e;
  e.phase = TraceEvent::Phase::kCounter;
  e.name = std::move(name);
  e.ts_us = now_us();
  e.counter_value = value;
  const std::lock_guard<std::mutex> lock(mu_);
  e.tid = tid_locked(std::this_thread::get_id());
  e.seq = next_seq_++;
  events_.push_back(std::move(e));
}

void TraceRecorder::counter_add(const std::string& name, double delta) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mu_);
  totals_[name] += delta;
}

double TraceRecorder::counter_total(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = totals_.find(name);
  return it == totals_.end() ? 0.0 : it->second;
}

std::map<std::string, double> TraceRecorder::counter_totals() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return totals_;
}

size_t TraceRecorder::num_events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_;  // already in seq order: appends happen under the mutex
}

std::string TraceRecorder::chrome_trace_json() const {
  std::vector<TraceEvent> events;
  std::map<std::string, double> totals;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    events = events_;
    totals = totals_;
  }

  JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();
  for (const TraceEvent& e : events) {
    w.begin_object();
    w.field("name", e.name);
    if (!e.cat.empty()) w.field("cat", e.cat);
    w.field("ph", e.phase == TraceEvent::Phase::kComplete ? "X" : "C");
    w.number_field("ts", e.ts_us);
    if (e.phase == TraceEvent::Phase::kComplete) w.number_field("dur", e.dur_us);
    w.field("pid", 1);
    w.field("tid", e.tid);
    w.key("args").begin_object();
    if (e.phase == TraceEvent::Phase::kCounter) {
      w.number_field("value", e.counter_value);
    }
    for (const auto& [k, v] : e.args) w.number_field(k, v);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.field("displayTimeUnit", "ms");
  w.key("otherData").begin_object();
  w.key("counter_totals").begin_object();
  for (const auto& [k, v] : totals) w.number_field(k, v);
  w.end_object();
  w.end_object();
  w.end_object();
  return w.take();
}

bool TraceRecorder::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << chrome_trace_json() << "\n";
  return static_cast<bool>(out);
}

ScopedSpan::ScopedSpan(std::string_view name, std::string_view cat)
    : active_(TraceRecorder::global().enabled()) {
  if (!active_) return;
  name_ = name;
  cat_ = cat;
  start_us_ = TraceRecorder::global().now_us();
}

void ScopedSpan::arg(std::string_view key, double v) {
  if (active_) args_.emplace_back(std::string(key), v);
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  TraceRecorder& rec = TraceRecorder::global();
  rec.record_complete(std::move(name_), std::move(cat_), start_us_,
                      rec.now_us() - start_us_, std::move(args_));
}

}  // namespace wnet::util::obs
