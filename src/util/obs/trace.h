#pragma once

// Structured tracing for the exploration pipeline: scoped spans and named
// counters collected into a process-wide recorder and exported in the Chrome
// trace_event format, so a `--trace out.json` run opens directly in
// chrome://tracing or https://ui.perfetto.dev.
//
// Design:
//   - Off by default and cheap when off: every instrumentation site guards
//     on one relaxed atomic load; ScopedSpan is a no-op object when the
//     recorder is disabled at construction.
//   - Thread-safe: spans and counters are recorded from encoder worker
//     threads and the main loop alike. Each record takes the mutex once.
//   - Deterministic export: events carry a sequence number assigned under
//     the recorder mutex and are exported in that order (the same
//     slot-owns-result idea as the PR 2 parallel merge: ordering comes from
//     explicitly assigned indices, never from map iteration or completion
//     races). Thread ids are densified in first-seen order for display.
//
// Span taxonomy (see README "Observability"):
//   encode/full        one fresh encoding pass            (args: k_star, vars, constrs)
//   encode/yen_route   per-route Yen enumeration          (args: route, replicas, candidates)
//   encode/delta       incremental delta-extension        (args: from_k, to_k, reused)
//   kstar/rung         one K* ladder rung, encode + solve (args: k)
//   milp/solve         one branch-and-bound run           (args: nodes, lp_iterations)
//   milp/root_lp       the root LP solve
//   milp/node_lp       sampled node LPs (1 in 64)         (args: node, depth)
//   robust/iteration   one repair-loop iteration          (args: iter, hardenings)
//   faults/campaign    one fault-injection campaign       (args: scenarios)

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace wnet::util::obs {

struct TraceEvent {
  enum class Phase { kComplete, kCounter };

  Phase phase = Phase::kComplete;
  std::string name;
  std::string cat;
  double ts_us = 0.0;   ///< start, µs since the recorder epoch
  double dur_us = 0.0;  ///< kComplete only
  double counter_value = 0.0;  ///< kCounter only
  int tid = 0;          ///< dense thread index, first-seen order
  long seq = 0;         ///< global recording order (export order)
  std::vector<std::pair<std::string, double>> args;
};

class TraceRecorder {
 public:
  /// The process-wide recorder every instrumentation site reports to.
  [[nodiscard]] static TraceRecorder& global();

  void set_enabled(bool on);
  [[nodiscard]] bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drops all recorded events and counter totals (the epoch is kept).
  void clear();

  /// µs since the recorder's epoch (steady clock).
  [[nodiscard]] double now_us() const;

  /// Records a completed span ("X" phase). No-op when disabled.
  void record_complete(std::string name, std::string cat, double start_us, double dur_us,
                       std::vector<std::pair<std::string, double>> args = {});

  /// Records a timestamped counter sample ("C" phase) — these render as
  /// stacked counter tracks in Perfetto. No-op when disabled.
  void record_counter(std::string name, double value);

  /// Accumulates into a named aggregate total (exported once, in the trace
  /// footer). No-op when disabled.
  void counter_add(const std::string& name, double delta);

  [[nodiscard]] double counter_total(const std::string& name) const;
  [[nodiscard]] std::map<std::string, double> counter_totals() const;
  [[nodiscard]] size_t num_events() const;
  /// Copy of all events in recording (seq) order.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// Full document in Chrome trace_event JSON ("traceEvents" array plus the
  /// aggregate counter totals under "otherData"). Always strictly valid.
  [[nodiscard]] std::string chrome_trace_json() const;

  /// Writes chrome_trace_json() to `path`; false on I/O failure.
  bool write_chrome_trace(const std::string& path) const;

 private:
  TraceRecorder();
  int tid_locked(std::thread::id id);

  mutable std::mutex mu_;
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  std::vector<TraceEvent> events_;
  std::map<std::string, double> totals_;
  std::map<std::thread::id, int> tids_;
  long next_seq_ = 0;
};

/// RAII span: captures the start time at construction and records one
/// complete event at destruction. Decides enablement once, at construction.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name, std::string_view cat = "wnet");
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan();

  /// Attaches a numeric argument (shown in the Perfetto detail pane); may
  /// be called any time before destruction.
  void arg(std::string_view key, double v);

  [[nodiscard]] bool active() const { return active_; }

 private:
  bool active_;
  double start_us_ = 0.0;
  std::string name_;
  std::string cat_;
  std::vector<std::pair<std::string, double>> args_;
};

}  // namespace wnet::util::obs
