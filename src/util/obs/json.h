#pragma once

// Correct-by-construction JSON emission and strict validation.
//
// Every machine-readable report in the repo (SolveStats telemetry, explorer
// runs, fault campaigns, bench --json gates, Chrome traces) goes through
// JsonWriter instead of hand-rolled ostringstream concatenation, which fixes
// two real bug classes at the root:
//   - non-finite doubles: `operator<<` prints bare `inf` / `nan`, which is
//     not JSON. The writer emits `null` instead, and number_field() adds a
//     sidecar `"<key>_finite": false` so consumers can tell "missing" from
//     "was infinite".
//   - locale fragility: iostream/printf numeric formatting follows the
//     process locale (a comma decimal point under de_DE breaks every parser
//     downstream). The writer formats through std::to_chars, which is
//     locale-independent by specification and round-trips exactly.
//
// Output style is compact-with-spaces — `{"a": 1, "b": [1, 2]}` — matching
// the repo's existing emitters and the sscanf-based baseline loaders.
//
// json_error() is the matching strict RFC 8259 validator used by tests and
// fuzz harnesses; it accepts exactly what python -m json.tool accepts.

#include <charconv>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace wnet::util::obs {

/// Streaming JSON writer with structural checking: mismatched begin/end,
/// values without keys inside objects, or multiple top-level values throw
/// std::logic_error (programmer error, never data-dependent).
class JsonWriter {
 public:
  JsonWriter() = default;

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Starts a member inside the current object; the next value() call (or
  /// begin_object/begin_array) supplies its value.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(bool b);
  /// Non-finite doubles become null (see number_field for the sidecar).
  JsonWriter& value(double v);
  template <class T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  JsonWriter& value(T v) {
    char buf[32];
    const auto r = std::to_chars(buf, buf + sizeof(buf), v);
    scalar(std::string_view(buf, static_cast<size_t>(r.ptr - buf)));
    return *this;
  }
  JsonWriter& null_value();

  /// Embeds a pre-serialized JSON value verbatim (e.g. a nested report that
  /// was itself produced by a JsonWriter).
  JsonWriter& raw(std::string_view json);

  /// key + value in one call, for any value() overload.
  template <class T>
  JsonWriter& field(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  /// Numeric member that survives non-finite inputs: finite doubles emit
  /// normally; inf/nan emit `"k": null, "k_finite": false` so strict parsers
  /// stay happy and consumers can still detect the condition.
  JsonWriter& number_field(std::string_view k, double v);

  /// Finishes the document and returns it. Throws if any scope is open or
  /// nothing was written.
  [[nodiscard]] std::string take();

  /// Locale-independent shortest-round-trip formatting ("null" when
  /// non-finite). Exposed for callers that format numbers outside a
  /// document (e.g. table cells that must stay byte-stable under locales).
  [[nodiscard]] static std::string format_double(double v);

  /// JSON string escaping (quotes, backslash, control characters; UTF-8
  /// bytes pass through). Returns the body without surrounding quotes.
  [[nodiscard]] static std::string escape(std::string_view s);

 private:
  struct Frame {
    bool is_object = false;
    bool has_items = false;
    bool key_pending = false;
  };

  void pre_value();              ///< comma/key bookkeeping before any value
  void scalar(std::string_view literal);

  std::string out_;
  std::vector<Frame> stack_;
  bool done_ = false;  ///< a complete top-level value has been written
};

/// Strict RFC 8259 validation: returns std::nullopt when `text` is exactly
/// one valid JSON value (plus surrounding whitespace), or a human-readable
/// error with byte offset otherwise. Rejects everything Python's json.tool
/// rejects: bare inf/nan, trailing commas, single quotes, leading zeros,
/// unescaped control characters, trailing garbage.
[[nodiscard]] std::optional<std::string> json_error(std::string_view text);

[[nodiscard]] inline bool json_valid(std::string_view text) {
  return !json_error(text).has_value();
}

}  // namespace wnet::util::obs
