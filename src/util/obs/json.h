#pragma once

// Correct-by-construction JSON emission and strict validation.
//
// Every machine-readable report in the repo (SolveStats telemetry, explorer
// runs, fault campaigns, bench --json gates, Chrome traces) goes through
// JsonWriter instead of hand-rolled ostringstream concatenation, which fixes
// two real bug classes at the root:
//   - non-finite doubles: `operator<<` prints bare `inf` / `nan`, which is
//     not JSON. The writer emits `null` instead, and number_field() adds a
//     sidecar `"<key>_finite": false` so consumers can tell "missing" from
//     "was infinite".
//   - locale fragility: iostream/printf numeric formatting follows the
//     process locale (a comma decimal point under de_DE breaks every parser
//     downstream). The writer formats through std::to_chars, which is
//     locale-independent by specification and round-trips exactly.
//
// Output style is compact-with-spaces — `{"a": 1, "b": [1, 2]}` — matching
// the repo's existing emitters and the sscanf-based baseline loaders.
//
// json_error() is the matching strict RFC 8259 validator used by tests and
// fuzz harnesses; it accepts exactly what python -m json.tool accepts.

#include <charconv>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace wnet::util::obs {

/// Streaming JSON writer with structural checking: mismatched begin/end,
/// values without keys inside objects, or multiple top-level values throw
/// std::logic_error (programmer error, never data-dependent).
class JsonWriter {
 public:
  JsonWriter() = default;

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Starts a member inside the current object; the next value() call (or
  /// begin_object/begin_array) supplies its value.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(bool b);
  /// Non-finite doubles become null (see number_field for the sidecar).
  JsonWriter& value(double v);
  template <class T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  JsonWriter& value(T v) {
    char buf[32];
    const auto r = std::to_chars(buf, buf + sizeof(buf), v);
    scalar(std::string_view(buf, static_cast<size_t>(r.ptr - buf)));
    return *this;
  }
  JsonWriter& null_value();

  /// Embeds a pre-serialized JSON value verbatim (e.g. a nested report that
  /// was itself produced by a JsonWriter).
  JsonWriter& raw(std::string_view json);

  /// key + value in one call, for any value() overload.
  template <class T>
  JsonWriter& field(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  /// Numeric member that survives non-finite inputs: finite doubles emit
  /// normally; inf/nan emit `"k": null, "k_finite": false` so strict parsers
  /// stay happy and consumers can still detect the condition.
  JsonWriter& number_field(std::string_view k, double v);

  /// Finishes the document and returns it. Throws if any scope is open or
  /// nothing was written.
  [[nodiscard]] std::string take();

  /// Locale-independent shortest-round-trip formatting ("null" when
  /// non-finite). Exposed for callers that format numbers outside a
  /// document (e.g. table cells that must stay byte-stable under locales).
  [[nodiscard]] static std::string format_double(double v);

  /// JSON string escaping (quotes, backslash, control characters; UTF-8
  /// bytes pass through). Returns the body without surrounding quotes.
  [[nodiscard]] static std::string escape(std::string_view s);

 private:
  struct Frame {
    bool is_object = false;
    bool has_items = false;
    bool key_pending = false;
  };

  void pre_value();              ///< comma/key bookkeeping before any value
  void scalar(std::string_view literal);

  std::string out_;
  std::vector<Frame> stack_;
  bool done_ = false;  ///< a complete top-level value has been written
};

/// Strict RFC 8259 validation: returns std::nullopt when `text` is exactly
/// one valid JSON value (plus surrounding whitespace), or a human-readable
/// error with byte offset otherwise. Rejects everything Python's json.tool
/// rejects: bare inf/nan, trailing commas, single quotes, leading zeros,
/// unescaped control characters, trailing garbage.
[[nodiscard]] std::optional<std::string> json_error(std::string_view text);

[[nodiscard]] inline bool json_valid(std::string_view text) {
  return !json_error(text).has_value();
}

/// A parsed JSON value tree — the read side of the obs layer, added for the
/// solve daemon's line-delimited request protocol. json_parse() accepts
/// exactly the grammar json_error() accepts (strict RFC 8259: no bare
/// inf/nan, no trailing garbage, full escape decoding including surrogate
/// pairs), so anything the daemon admits could have been produced by the
/// JsonWriter and vice versa.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_number() const { return num_; }
  [[nodiscard]] const std::string& as_string() const { return str_; }
  [[nodiscard]] const std::vector<JsonValue>& items() const { return items_; }
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// First member named `key`, or nullptr (objects only).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  // Typed member lookups with defaults: the convenience layer request
  // parsing is written against. Missing member -> `fallback`; a member of
  // the wrong kind -> nullopt from the optional-returning forms.
  [[nodiscard]] std::optional<std::string> get_string(std::string_view key) const;
  [[nodiscard]] std::optional<double> get_number(std::string_view key) const;
  [[nodiscard]] std::string get_string(std::string_view key, const std::string& fallback) const;
  [[nodiscard]] double get_number(std::string_view key, double fallback) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool fallback) const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Strict parse of exactly one JSON value (same grammar as json_error).
/// Returns nullopt and fills `error` (if non-null) with a human-readable
/// message + byte offset on any violation.
[[nodiscard]] std::optional<JsonValue> json_parse(std::string_view text,
                                                  std::string* error = nullptr);

}  // namespace wnet::util::obs
