#include "util/obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace wnet::util::obs {

// --------------------------------------------------------------- JsonWriter

JsonWriter& JsonWriter::begin_object() {
  pre_value();
  out_ += '{';
  stack_.push_back({/*is_object=*/true, false, false});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || !stack_.back().is_object || stack_.back().key_pending) {
    throw std::logic_error("JsonWriter: end_object outside an object or after a dangling key");
  }
  stack_.pop_back();
  out_ += '}';
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  pre_value();
  out_ += '[';
  stack_.push_back({/*is_object=*/false, false, false});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back().is_object) {
    throw std::logic_error("JsonWriter: end_array outside an array");
  }
  stack_.pop_back();
  out_ += ']';
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (stack_.empty() || !stack_.back().is_object || stack_.back().key_pending) {
    throw std::logic_error("JsonWriter: key() outside an object or twice in a row");
  }
  if (stack_.back().has_items) out_ += ", ";
  stack_.back().has_items = true;
  stack_.back().key_pending = true;
  out_ += '"';
  out_ += escape(k);
  out_ += "\": ";
  return *this;
}

void JsonWriter::pre_value() {
  if (stack_.empty()) {
    if (done_) throw std::logic_error("JsonWriter: second top-level value");
    return;
  }
  Frame& top = stack_.back();
  if (top.is_object) {
    if (!top.key_pending) throw std::logic_error("JsonWriter: value in object without key()");
    top.key_pending = false;
    return;
  }
  if (top.has_items) out_ += ", ";
  top.has_items = true;
}

void JsonWriter::scalar(std::string_view literal) {
  pre_value();
  out_ += literal;
  if (stack_.empty()) done_ = true;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  pre_value();
  out_ += '"';
  out_ += escape(s);
  out_ += '"';
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  scalar(b ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  scalar(format_double(v));
  return *this;
}

JsonWriter& JsonWriter::null_value() {
  scalar("null");
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  scalar(json);
  return *this;
}

JsonWriter& JsonWriter::number_field(std::string_view k, double v) {
  key(k);
  value(v);
  if (!std::isfinite(v)) {
    key(std::string(k) + "_finite");
    value(false);
  }
  return *this;
}

std::string JsonWriter::take() {
  if (!stack_.empty()) throw std::logic_error("JsonWriter: take() with open scopes");
  if (!done_) throw std::logic_error("JsonWriter: take() before any value");
  return std::move(out_);
}

std::string JsonWriter::format_double(double v) {
  if (!std::isfinite(v)) return "null";
  // std::to_chars is locale-independent and prints the shortest string that
  // round-trips; "-0" is normalized so byte-stability doesn't depend on the
  // sign of a zero that compares equal.
  if (v == 0.0) return "0";
  char buf[32];
  const auto r = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, static_cast<size_t>(r.ptr - buf));
}

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  static const char* hex = "0123456789abcdef";
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (u < 0x20) {
          out += "\\u00";
          out += hex[u >> 4];
          out += hex[u & 0xF];
        } else {
          out += c;  // UTF-8 bytes pass through unmodified
        }
    }
  }
  return out;
}

// ---------------------------------------------------- strict RFC 8259 parse

namespace {

/// Recursive-descent validator over the raw bytes; no value tree is built.
class Checker {
 public:
  explicit Checker(std::string_view s) : s_(s) {}

  std::optional<std::string> run() {
    skip_ws();
    if (auto e = parse_value(0)) return e;
    skip_ws();
    if (pos_ != s_.size()) return err("trailing garbage after top-level value");
    return std::nullopt;
  }

 private:
  static constexpr int kMaxDepth = 256;

  std::optional<std::string> err(const std::string& what) const {
    return what + " at byte " + std::to_string(pos_);
  }

  [[nodiscard]] bool eof() const { return pos_ >= s_.size(); }
  [[nodiscard]] char peek() const { return s_[pos_]; }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' || peek() == '\r')) ++pos_;
  }

  bool consume(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  std::optional<std::string> parse_value(int depth) {
    if (depth > kMaxDepth) return err("nesting too deep");
    if (eof()) return err("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return parse_string();
      case 't': return consume("true") ? std::nullopt : err("invalid literal");
      case 'f': return consume("false") ? std::nullopt : err("invalid literal");
      case 'n': return consume("null") ? std::nullopt : err("invalid literal");
      default: return parse_number();
    }
  }

  std::optional<std::string> parse_object(int depth) {
    ++pos_;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return std::nullopt;
    }
    for (;;) {
      skip_ws();
      if (eof() || peek() != '"') return err("expected object key string");
      if (auto e = parse_string()) return e;
      skip_ws();
      if (eof() || peek() != ':') return err("expected ':' after key");
      ++pos_;
      skip_ws();
      if (auto e = parse_value(depth + 1)) return e;
      skip_ws();
      if (eof()) return err("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return std::nullopt;
      }
      return err("expected ',' or '}' in object");
    }
  }

  std::optional<std::string> parse_array(int depth) {
    ++pos_;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return std::nullopt;
    }
    for (;;) {
      skip_ws();
      if (auto e = parse_value(depth + 1)) return e;
      skip_ws();
      if (eof()) return err("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return std::nullopt;
      }
      return err("expected ',' or ']' in array");
    }
  }

  std::optional<std::string> parse_string() {
    ++pos_;  // '"'
    while (!eof()) {
      const auto u = static_cast<unsigned char>(peek());
      if (u < 0x20) return err("unescaped control character in string");
      if (peek() == '"') {
        ++pos_;
        return std::nullopt;
      }
      if (peek() == '\\') {
        ++pos_;
        if (eof()) return err("truncated escape");
        const char e = peek();
        if (e == 'u') {
          ++pos_;
          uint32_t cp = 0;
          if (auto err4 = hex4(&cp)) return err4;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (eof() || peek() != '\\' || pos_ + 1 >= s_.size() || s_[pos_ + 1] != 'u') {
              return err("lone high surrogate");
            }
            pos_ += 2;
            uint32_t lo = 0;
            if (auto err4 = hex4(&lo)) return err4;
            if (lo < 0xDC00 || lo > 0xDFFF) return err("invalid low surrogate");
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return err("lone low surrogate");
          }
          continue;
        }
        if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' && e != 'n' && e != 'r' &&
            e != 't') {
          return err("invalid escape character");
        }
      }
      ++pos_;
    }
    return err("unterminated string");
  }

  std::optional<std::string> hex4(uint32_t* out) {
    *out = 0;
    for (int i = 0; i < 4; ++i, ++pos_) {
      if (eof() || !std::isxdigit(static_cast<unsigned char>(peek()))) {
        return err("invalid \\u escape");
      }
      const char c = peek();
      const uint32_t d = (c >= '0' && c <= '9') ? static_cast<uint32_t>(c - '0')
                                                : static_cast<uint32_t>((c | 0x20) - 'a' + 10);
      *out = (*out << 4) | d;
    }
    return std::nullopt;
  }

  std::optional<std::string> parse_number() {
    // number = [-] int [frac] [exp]; leading zeros, '+', bare '.', and the
    // inf/nan spellings are all rejected here.
    const auto digit = [this] { return !eof() && peek() >= '0' && peek() <= '9'; };
    if (!eof() && peek() == '-') ++pos_;
    if (!digit()) return err("invalid number");
    if (peek() == '0') {
      ++pos_;
    } else {
      while (digit()) ++pos_;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (!digit()) return err("digits required after decimal point");
      while (digit()) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (!digit()) return err("digits required in exponent");
      while (digit()) ++pos_;
    }
    return std::nullopt;
  }

  std::string_view s_;
  size_t pos_ = 0;
};

}  // namespace

std::optional<std::string> json_error(std::string_view text) { return Checker(text).run(); }

// ------------------------------------------------------- JsonValue / parse

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::optional<std::string> JsonValue::get_string(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr || !v->is_string()) return std::nullopt;
  return v->as_string();
}

std::optional<double> JsonValue::get_number(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr || !v->is_number()) return std::nullopt;
  return v->as_number();
}

std::string JsonValue::get_string(std::string_view key, const std::string& fallback) const {
  return get_string(key).value_or(fallback);
}

double JsonValue::get_number(std::string_view key, double fallback) const {
  return get_number(key).value_or(fallback);
}

bool JsonValue::get_bool(std::string_view key, bool fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_bool() ? v->as_bool() : fallback;
}

/// Recursive-descent parser building a JsonValue tree. Mirrors Checker's
/// grammar exactly; the two stay in lockstep so json_parse succeeds iff
/// json_error returns nullopt.
class JsonParser {
 public:
  explicit JsonParser(std::string_view s) : s_(s) {}

  std::optional<JsonValue> run(std::string* error) {
    JsonValue out;
    skip_ws();
    if (!parse_value(0, &out)) {
      if (error != nullptr) *error = err_;
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != s_.size()) {
      set_err("trailing garbage after top-level value");
      if (error != nullptr) *error = err_;
      return std::nullopt;
    }
    return out;
  }

 private:
  static constexpr int kMaxDepth = 256;

  bool set_err(const std::string& what) {
    err_ = what + " at byte " + std::to_string(pos_);
    return false;
  }

  [[nodiscard]] bool eof() const { return pos_ >= s_.size(); }
  [[nodiscard]] char peek() const { return s_[pos_]; }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' || peek() == '\r')) ++pos_;
  }

  bool consume(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool parse_value(int depth, JsonValue* out) {
    if (depth > kMaxDepth) return set_err("nesting too deep");
    if (eof()) return set_err("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(depth, out);
      case '[': return parse_array(depth, out);
      case '"':
        out->kind_ = JsonValue::Kind::kString;
        return parse_string(&out->str_);
      case 't':
        if (!consume("true")) return set_err("invalid literal");
        out->kind_ = JsonValue::Kind::kBool;
        out->bool_ = true;
        return true;
      case 'f':
        if (!consume("false")) return set_err("invalid literal");
        out->kind_ = JsonValue::Kind::kBool;
        out->bool_ = false;
        return true;
      case 'n':
        if (!consume("null")) return set_err("invalid literal");
        out->kind_ = JsonValue::Kind::kNull;
        return true;
      default: return parse_number(out);
    }
  }

  bool parse_object(int depth, JsonValue* out) {
    out->kind_ = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (eof() || peek() != '"') return set_err("expected object key string");
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (eof() || peek() != ':') return set_err("expected ':' after key");
      ++pos_;
      skip_ws();
      JsonValue member;
      if (!parse_value(depth + 1, &member)) return false;
      out->members_.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (eof()) return set_err("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return set_err("expected ',' or '}' in object");
    }
  }

  bool parse_array(int depth, JsonValue* out) {
    out->kind_ = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      JsonValue item;
      if (!parse_value(depth + 1, &item)) return false;
      out->items_.push_back(std::move(item));
      skip_ws();
      if (eof()) return set_err("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return set_err("expected ',' or ']' in array");
    }
  }

  static void append_utf8(std::string* out, uint32_t cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool parse_hex4(uint32_t* out) {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i, ++pos_) {
      if (eof() || !std::isxdigit(static_cast<unsigned char>(peek()))) {
        return set_err("invalid \\u escape");
      }
      const char c = peek();
      v = v * 16 + static_cast<uint32_t>(c <= '9'   ? c - '0'
                                         : c <= 'F' ? c - 'A' + 10
                                                    : c - 'a' + 10);
    }
    *out = v;
    return true;
  }

  bool parse_string(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (!eof()) {
      const auto u = static_cast<unsigned char>(peek());
      if (u < 0x20) return set_err("unescaped control character in string");
      if (peek() == '"') {
        ++pos_;
        return true;
      }
      if (peek() == '\\') {
        ++pos_;
        if (eof()) return set_err("truncated escape");
        const char e = peek();
        ++pos_;
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            uint32_t cp = 0;
            if (!parse_hex4(&cp)) return false;
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              // High surrogate: must be followed by \uDC00..\uDFFF.
              if (eof() || peek() != '\\' || pos_ + 1 >= s_.size() || s_[pos_ + 1] != 'u') {
                return set_err("lone high surrogate");
              }
              pos_ += 2;
              uint32_t lo = 0;
              if (!parse_hex4(&lo)) return false;
              if (lo < 0xDC00 || lo > 0xDFFF) return set_err("invalid low surrogate");
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
              return set_err("lone low surrogate");
            }
            append_utf8(out, cp);
            break;
          }
          default: return set_err("invalid escape character");
        }
        continue;
      }
      out->push_back(peek());
      ++pos_;
    }
    return set_err("unterminated string");
  }

  bool parse_number(JsonValue* out) {
    const size_t start = pos_;
    const auto digit = [this] { return !eof() && peek() >= '0' && peek() <= '9'; };
    if (!eof() && peek() == '-') ++pos_;
    if (!digit()) return set_err("invalid number");
    if (peek() == '0') {
      ++pos_;
    } else {
      while (digit()) ++pos_;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (!digit()) return set_err("digits required after decimal point");
      while (digit()) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (!digit()) return set_err("digits required in exponent");
      while (digit()) ++pos_;
    }
    out->kind_ = JsonValue::Kind::kNumber;
    double v = 0.0;
    const char* first = s_.data() + start;
    const char* last = s_.data() + pos_;
    const auto r = std::from_chars(first, last, v);
    if (r.ec != std::errc{} && r.ec != std::errc::result_out_of_range) {
      return set_err("number out of range");
    }
    out->num_ = v;
    return true;
  }

  std::string_view s_;
  size_t pos_ = 0;
  std::string err_;
};

std::optional<JsonValue> json_parse(std::string_view text, std::string* error) {
  return JsonParser(text).run(error);
}

}  // namespace wnet::util::obs
