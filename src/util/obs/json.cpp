#include "util/obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace wnet::util::obs {

// --------------------------------------------------------------- JsonWriter

JsonWriter& JsonWriter::begin_object() {
  pre_value();
  out_ += '{';
  stack_.push_back({/*is_object=*/true, false, false});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || !stack_.back().is_object || stack_.back().key_pending) {
    throw std::logic_error("JsonWriter: end_object outside an object or after a dangling key");
  }
  stack_.pop_back();
  out_ += '}';
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  pre_value();
  out_ += '[';
  stack_.push_back({/*is_object=*/false, false, false});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back().is_object) {
    throw std::logic_error("JsonWriter: end_array outside an array");
  }
  stack_.pop_back();
  out_ += ']';
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (stack_.empty() || !stack_.back().is_object || stack_.back().key_pending) {
    throw std::logic_error("JsonWriter: key() outside an object or twice in a row");
  }
  if (stack_.back().has_items) out_ += ", ";
  stack_.back().has_items = true;
  stack_.back().key_pending = true;
  out_ += '"';
  out_ += escape(k);
  out_ += "\": ";
  return *this;
}

void JsonWriter::pre_value() {
  if (stack_.empty()) {
    if (done_) throw std::logic_error("JsonWriter: second top-level value");
    return;
  }
  Frame& top = stack_.back();
  if (top.is_object) {
    if (!top.key_pending) throw std::logic_error("JsonWriter: value in object without key()");
    top.key_pending = false;
    return;
  }
  if (top.has_items) out_ += ", ";
  top.has_items = true;
}

void JsonWriter::scalar(std::string_view literal) {
  pre_value();
  out_ += literal;
  if (stack_.empty()) done_ = true;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  pre_value();
  out_ += '"';
  out_ += escape(s);
  out_ += '"';
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  scalar(b ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  scalar(format_double(v));
  return *this;
}

JsonWriter& JsonWriter::null_value() {
  scalar("null");
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  scalar(json);
  return *this;
}

JsonWriter& JsonWriter::number_field(std::string_view k, double v) {
  key(k);
  value(v);
  if (!std::isfinite(v)) {
    key(std::string(k) + "_finite");
    value(false);
  }
  return *this;
}

std::string JsonWriter::take() {
  if (!stack_.empty()) throw std::logic_error("JsonWriter: take() with open scopes");
  if (!done_) throw std::logic_error("JsonWriter: take() before any value");
  return std::move(out_);
}

std::string JsonWriter::format_double(double v) {
  if (!std::isfinite(v)) return "null";
  // std::to_chars is locale-independent and prints the shortest string that
  // round-trips; "-0" is normalized so byte-stability doesn't depend on the
  // sign of a zero that compares equal.
  if (v == 0.0) return "0";
  char buf[32];
  const auto r = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, static_cast<size_t>(r.ptr - buf));
}

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  static const char* hex = "0123456789abcdef";
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (u < 0x20) {
          out += "\\u00";
          out += hex[u >> 4];
          out += hex[u & 0xF];
        } else {
          out += c;  // UTF-8 bytes pass through unmodified
        }
    }
  }
  return out;
}

// ---------------------------------------------------- strict RFC 8259 parse

namespace {

/// Recursive-descent validator over the raw bytes; no value tree is built.
class Checker {
 public:
  explicit Checker(std::string_view s) : s_(s) {}

  std::optional<std::string> run() {
    skip_ws();
    if (auto e = parse_value(0)) return e;
    skip_ws();
    if (pos_ != s_.size()) return err("trailing garbage after top-level value");
    return std::nullopt;
  }

 private:
  static constexpr int kMaxDepth = 256;

  std::optional<std::string> err(const std::string& what) const {
    return what + " at byte " + std::to_string(pos_);
  }

  [[nodiscard]] bool eof() const { return pos_ >= s_.size(); }
  [[nodiscard]] char peek() const { return s_[pos_]; }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' || peek() == '\r')) ++pos_;
  }

  bool consume(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  std::optional<std::string> parse_value(int depth) {
    if (depth > kMaxDepth) return err("nesting too deep");
    if (eof()) return err("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return parse_string();
      case 't': return consume("true") ? std::nullopt : err("invalid literal");
      case 'f': return consume("false") ? std::nullopt : err("invalid literal");
      case 'n': return consume("null") ? std::nullopt : err("invalid literal");
      default: return parse_number();
    }
  }

  std::optional<std::string> parse_object(int depth) {
    ++pos_;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return std::nullopt;
    }
    for (;;) {
      skip_ws();
      if (eof() || peek() != '"') return err("expected object key string");
      if (auto e = parse_string()) return e;
      skip_ws();
      if (eof() || peek() != ':') return err("expected ':' after key");
      ++pos_;
      skip_ws();
      if (auto e = parse_value(depth + 1)) return e;
      skip_ws();
      if (eof()) return err("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return std::nullopt;
      }
      return err("expected ',' or '}' in object");
    }
  }

  std::optional<std::string> parse_array(int depth) {
    ++pos_;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return std::nullopt;
    }
    for (;;) {
      skip_ws();
      if (auto e = parse_value(depth + 1)) return e;
      skip_ws();
      if (eof()) return err("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return std::nullopt;
      }
      return err("expected ',' or ']' in array");
    }
  }

  std::optional<std::string> parse_string() {
    ++pos_;  // '"'
    while (!eof()) {
      const auto u = static_cast<unsigned char>(peek());
      if (u < 0x20) return err("unescaped control character in string");
      if (peek() == '"') {
        ++pos_;
        return std::nullopt;
      }
      if (peek() == '\\') {
        ++pos_;
        if (eof()) return err("truncated escape");
        const char e = peek();
        if (e == 'u') {
          ++pos_;
          for (int i = 0; i < 4; ++i, ++pos_) {
            if (eof() || !std::isxdigit(static_cast<unsigned char>(peek()))) {
              return err("invalid \\u escape");
            }
          }
          continue;
        }
        if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' && e != 'n' && e != 'r' &&
            e != 't') {
          return err("invalid escape character");
        }
      }
      ++pos_;
    }
    return err("unterminated string");
  }

  std::optional<std::string> parse_number() {
    // number = [-] int [frac] [exp]; leading zeros, '+', bare '.', and the
    // inf/nan spellings are all rejected here.
    const auto digit = [this] { return !eof() && peek() >= '0' && peek() <= '9'; };
    if (!eof() && peek() == '-') ++pos_;
    if (!digit()) return err("invalid number");
    if (peek() == '0') {
      ++pos_;
    } else {
      while (digit()) ++pos_;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (!digit()) return err("digits required after decimal point");
      while (digit()) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (!digit()) return err("digits required in exponent");
      while (digit()) ++pos_;
    }
    return std::nullopt;
  }

  std::string_view s_;
  size_t pos_ = 0;
};

}  // namespace

std::optional<std::string> json_error(std::string_view text) { return Checker(text).run(); }

}  // namespace wnet::util::obs
