/// SSE2 kernels (baseline x86-64 — always CPU-supported there). Four
/// logical lanes are carried in two 128-bit registers: {lane0, lane1} and
/// {lane2, lane3}, reduced as (lane0 + lane2) + (lane1 + lane3), matching
/// the scalar reference bit-for-bit. Compiled with -ffp-contract=off; SSE2
/// has no FMA, so every multiply-add is two roundings by construction.

#if defined(__x86_64__) || defined(__i386__) || defined(_M_X64)

#include <emmintrin.h>

#include <cmath>

#include "util/simd/simd.h"

namespace wnet::util::simd {
namespace {

inline __m128d neg(__m128d x) {
  const __m128d sign = _mm_castsi128_pd(_mm_set_epi32(0x80000000, 0, 0x80000000, 0));
  return _mm_xor_pd(x, sign);
}

double gather_dot(const int32_t* rows, const double* values, int n,
                  const double* dense) {
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128d d01 = _mm_set_pd(dense[rows[i + 1]], dense[rows[i]]);
    const __m128d d23 = _mm_set_pd(dense[rows[i + 3]], dense[rows[i + 2]]);
    acc01 = _mm_add_pd(acc01, _mm_mul_pd(_mm_loadu_pd(values + i), d01));
    acc23 = _mm_add_pd(acc23, _mm_mul_pd(_mm_loadu_pd(values + i + 2), d23));
  }
  double lanes[4];
  _mm_storeu_pd(lanes, acc01);
  _mm_storeu_pd(lanes + 2, acc23);
  for (int l = 0; i < n; ++i, ++l) lanes[l] += values[i] * dense[rows[i]];
  return (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
}

void scatter_axpy(const int32_t* rows, const double* values, int n,
                  double scale, double* dense) {
  const __m128d s = _mm_set1_pd(scale);
  int i = 0;
  double prod[4];
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_pd(prod, _mm_mul_pd(s, _mm_loadu_pd(values + i)));
    _mm_storeu_pd(prod + 2, _mm_mul_pd(s, _mm_loadu_pd(values + i + 2)));
    dense[rows[i]] += prod[0];
    dense[rows[i + 1]] += prod[1];
    dense[rows[i + 2]] += prod[2];
    dense[rows[i + 3]] += prod[3];
  }
  for (; i < n; ++i) dense[rows[i]] += scale * values[i];
}

void dense_axpy(double* y, const double* x, double a, int n) {
  const __m128d s = _mm_set1_pd(a);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128d y01 = _mm_add_pd(_mm_loadu_pd(y + i), _mm_mul_pd(s, _mm_loadu_pd(x + i)));
    const __m128d y23 =
        _mm_add_pd(_mm_loadu_pd(y + i + 2), _mm_mul_pd(s, _mm_loadu_pd(x + i + 2)));
    _mm_storeu_pd(y + i, y01);
    _mm_storeu_pd(y + i + 2, y23);
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void row_activity(const int32_t* cols, const double* coef, int n,
                  const double* lb, const double* ub, double* act_lo,
                  double* act_hi) {
  __m128d lo01 = _mm_setzero_pd(), lo23 = _mm_setzero_pd();
  __m128d hi01 = _mm_setzero_pd(), hi23 = _mm_setzero_pd();
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128d a01 = _mm_loadu_pd(coef + i);
    const __m128d a23 = _mm_loadu_pd(coef + i + 2);
    const __m128d lb01 = _mm_set_pd(lb[cols[i + 1]], lb[cols[i]]);
    const __m128d lb23 = _mm_set_pd(lb[cols[i + 3]], lb[cols[i + 2]]);
    const __m128d ub01 = _mm_set_pd(ub[cols[i + 1]], ub[cols[i]]);
    const __m128d ub23 = _mm_set_pd(ub[cols[i + 3]], ub[cols[i + 2]]);
    const __m128d pl01 = _mm_mul_pd(a01, lb01), pu01 = _mm_mul_pd(a01, ub01);
    const __m128d pl23 = _mm_mul_pd(a23, lb23), pu23 = _mm_mul_pd(a23, ub23);
    lo01 = _mm_add_pd(lo01, _mm_min_pd(pl01, pu01));
    lo23 = _mm_add_pd(lo23, _mm_min_pd(pl23, pu23));
    hi01 = _mm_add_pd(hi01, _mm_max_pd(pl01, pu01));
    hi23 = _mm_add_pd(hi23, _mm_max_pd(pl23, pu23));
  }
  double lo[4], hi[4];
  _mm_storeu_pd(lo, lo01);
  _mm_storeu_pd(lo + 2, lo23);
  _mm_storeu_pd(hi, hi01);
  _mm_storeu_pd(hi + 2, hi23);
  for (int l = 0; i < n; ++i, ++l) {
    const double pl = coef[i] * lb[cols[i]];
    const double pu = coef[i] * ub[cols[i]];
    lo[l] += pl < pu ? pl : pu;
    hi[l] += pl > pu ? pl : pu;
  }
  *act_lo = (lo[0] + lo[2]) + (lo[1] + lo[3]);
  *act_hi = (hi[0] + hi[2]) + (hi[1] + hi[3]);
}

void segment_classify(double sax, double say, double sbx, double sby,
                      const double* wax, const double* way, const double* wbx,
                      const double* wby, int n, double eps, uint8_t* out) {
  const double dlx = sbx - sax;
  const double dly = sby - say;
  const double nl = std::sqrt(dlx * dlx + dly * dly);
  const __m128d vsax = _mm_set1_pd(sax), vsay = _mm_set1_pd(say);
  const __m128d vsbx = _mm_set1_pd(sbx), vsby = _mm_set1_pd(sby);
  const __m128d vdlx = _mm_set1_pd(dlx), vdly = _mm_set1_pd(dly);
  const __m128d vnl = _mm_set1_pd(nl);
  const __m128d veps = _mm_set1_pd(eps);
  const __m128d one = _mm_set1_pd(1.0);
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d ax = _mm_loadu_pd(wax + i), ay = _mm_loadu_pd(way + i);
    const __m128d bx = _mm_loadu_pd(wbx + i), by = _mm_loadu_pd(wby + i);
    const __m128d r1x = _mm_sub_pd(ax, vsax), r1y = _mm_sub_pd(ay, vsay);
    const __m128d r2x = _mm_sub_pd(bx, vsax), r2y = _mm_sub_pd(by, vsay);
    const __m128d c1 = _mm_sub_pd(_mm_mul_pd(vdlx, r1y), _mm_mul_pd(vdly, r1x));
    const __m128d c2 = _mm_sub_pd(_mm_mul_pd(vdlx, r2y), _mm_mul_pd(vdly, r2x));
    const __m128d n1 =
        _mm_sqrt_pd(_mm_add_pd(_mm_mul_pd(r1x, r1x), _mm_mul_pd(r1y, r1y)));
    const __m128d n2 =
        _mm_sqrt_pd(_mm_add_pd(_mm_mul_pd(r2x, r2x), _mm_mul_pd(r2y, r2y)));
    const __m128d dwx = _mm_sub_pd(bx, ax), dwy = _mm_sub_pd(by, ay);
    const __m128d r3x = _mm_sub_pd(vsax, ax), r3y = _mm_sub_pd(vsay, ay);
    const __m128d r4x = _mm_sub_pd(vsbx, ax), r4y = _mm_sub_pd(vsby, ay);
    const __m128d c3 = _mm_sub_pd(_mm_mul_pd(dwx, r3y), _mm_mul_pd(dwy, r3x));
    const __m128d c4 = _mm_sub_pd(_mm_mul_pd(dwx, r4y), _mm_mul_pd(dwy, r4x));
    const __m128d nw =
        _mm_sqrt_pd(_mm_add_pd(_mm_mul_pd(dwx, dwx), _mm_mul_pd(dwy, dwy)));
    const __m128d n3 =
        _mm_sqrt_pd(_mm_add_pd(_mm_mul_pd(r3x, r3x), _mm_mul_pd(r3y, r3y)));
    const __m128d n4 =
        _mm_sqrt_pd(_mm_add_pd(_mm_mul_pd(r4x, r4x), _mm_mul_pd(r4y, r4y)));
    const __m128d t1 = _mm_mul_pd(veps, _mm_max_pd(_mm_max_pd(one, vnl), n1));
    const __m128d t2 = _mm_mul_pd(veps, _mm_max_pd(_mm_max_pd(one, vnl), n2));
    const __m128d t3 = _mm_mul_pd(veps, _mm_max_pd(_mm_max_pd(one, nw), n3));
    const __m128d t4 = _mm_mul_pd(veps, _mm_max_pd(_mm_max_pd(one, nw), n4));
    const __m128d g1 = _mm_cmpgt_pd(c1, t1), l1 = _mm_cmplt_pd(c1, neg(t1));
    const __m128d g2 = _mm_cmpgt_pd(c2, t2), l2 = _mm_cmplt_pd(c2, neg(t2));
    const __m128d g3 = _mm_cmpgt_pd(c3, t3), l3 = _mm_cmplt_pd(c3, neg(t3));
    const __m128d g4 = _mm_cmpgt_pd(c4, t4), l4 = _mm_cmplt_pd(c4, neg(t4));
    const __m128d nz = _mm_and_pd(_mm_and_pd(_mm_or_pd(g1, l1), _mm_or_pd(g2, l2)),
                                  _mm_and_pd(_mm_or_pd(g3, l3), _mm_or_pd(g4, l4)));
    const __m128d diff12 = _mm_or_pd(_mm_and_pd(g1, l2), _mm_and_pd(l1, g2));
    const __m128d diff34 = _mm_or_pd(_mm_and_pd(g3, l4), _mm_and_pd(l3, g4));
    const __m128d crossm = _mm_and_pd(diff12, diff34);
    const int nzm = _mm_movemask_pd(nz);
    const int crm = _mm_movemask_pd(crossm);
    for (int l = 0; l < 2; ++l) {
      out[i + l] = ((nzm >> l) & 1) == 0 ? uint8_t{2}
                                         : (((crm >> l) & 1) ? uint8_t{1} : uint8_t{0});
    }
  }
  // Scalar tail, identical formulas (element-wise kernel — bit-exact).
  for (; i < n; ++i) {
    const double ax = wax[i], ay = way[i], bx = wbx[i], by = wby[i];
    const double r1x = ax - sax, r1y = ay - say;
    const double r2x = bx - sax, r2y = by - say;
    const double c1 = dlx * r1y - dly * r1x;
    const double c2 = dlx * r2y - dly * r2x;
    const double n1 = std::sqrt(r1x * r1x + r1y * r1y);
    const double n2 = std::sqrt(r2x * r2x + r2y * r2y);
    const double dwx = bx - ax, dwy = by - ay;
    const double r3x = sax - ax, r3y = say - ay;
    const double r4x = sbx - ax, r4y = sby - ay;
    const double c3 = dwx * r3y - dwy * r3x;
    const double c4 = dwx * r4y - dwy * r4x;
    const double nw = std::sqrt(dwx * dwx + dwy * dwy);
    const double n3 = std::sqrt(r3x * r3x + r3y * r3y);
    const double n4 = std::sqrt(r4x * r4x + r4y * r4y);
    const auto scale_of = [](double dn, double rn) {
      const double m = 1.0 > dn ? 1.0 : dn;
      return m > rn ? m : rn;
    };
    const double t1 = eps * scale_of(nl, n1), t2 = eps * scale_of(nl, n2);
    const double t3 = eps * scale_of(nw, n3), t4 = eps * scale_of(nw, n4);
    const bool g1 = c1 > t1, l1 = c1 < -t1;
    const bool g2 = c2 > t2, l2 = c2 < -t2;
    const bool g3 = c3 > t3, l3 = c3 < -t3;
    const bool g4 = c4 > t4, l4 = c4 < -t4;
    const bool zero_any =
        (!g1 && !l1) || (!g2 && !l2) || (!g3 && !l3) || (!g4 && !l4);
    const bool diff12 = (g1 && l2) || (l1 && g2);
    const bool diff34 = (g3 && l4) || (l3 && g4);
    out[i] = zero_any ? uint8_t{2} : (diff12 && diff34 ? uint8_t{1} : uint8_t{0});
  }
}

void pair_distances(const double* xs, const double* ys, int n, double x0,
                    double y0, double* out) {
  const __m128d vx0 = _mm_set1_pd(x0), vy0 = _mm_set1_pd(y0);
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d dx = _mm_sub_pd(_mm_loadu_pd(xs + i), vx0);
    const __m128d dy = _mm_sub_pd(_mm_loadu_pd(ys + i), vy0);
    _mm_storeu_pd(out + i,
                  _mm_sqrt_pd(_mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy))));
  }
  for (; i < n; ++i) {
    const double dx = xs[i] - x0;
    const double dy = ys[i] - y0;
    out[i] = std::sqrt(dx * dx + dy * dy);
  }
}

}  // namespace

namespace detail {
const Kernels kSse2Kernels = {
    gather_dot, scatter_axpy, dense_axpy, row_activity, segment_classify,
    pair_distances,
};
}  // namespace detail

}  // namespace wnet::util::simd

#endif  // x86
