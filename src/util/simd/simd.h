#pragma once

/// Runtime CPU-dispatched SIMD kernels for the hot inner loops: simplex
/// gather dot-products and scatter updates (SparseMatrix / BasisLu), the
/// presolve row-activity accumulation, wall-crossing segment classification
/// and batched path-loss distance evaluation.
///
/// Dispatch model
/// --------------
/// A single function-pointer table (`Kernels`) is selected once per process:
/// the widest ISA the host supports among the variants compiled in (AVX2 >
/// SSE2 > scalar on x86-64, NEON > scalar on aarch64), overridable with the
/// `WNET_SIMD` environment variable (`scalar`, `sse2`, `avx2`, `neon`) or
/// programmatically via `set_level()`. The scalar variant is always
/// available and is the reference implementation.
///
/// Determinism contract
/// --------------------
/// Every kernel is specified as a fixed computation over four logical
/// lanes with a fixed reduction order, and every ISA variant implements
/// that specification operation-for-operation. Outputs are therefore
/// bit-identical across scalar/SSE2/AVX2/NEON — the repo's byte-identical
/// report guarantee extends across dispatch levels, not just thread counts.
/// Concretely:
///
///  - Accumulating kernels (`gather_dot`, `row_activity`): logical lane
///    `l` sums the elements `i` with `i % 4 == l` in increasing `i`; the
///    final reduction is `(lane0 + lane2) + (lane1 + lane3)` (the natural
///    order for a 256-bit extract-high/add-low as well as for two 128-bit
///    registers). The tail (`n % 4` trailing elements) is folded into
///    lanes `0..n%4-1` after the vector loop, exactly one extra addend per
///    lane.
///  - Element-wise kernels (`scatter_axpy`, `dense_axpy`, `pair_distances`,
///    `segment_classify`): one IEEE rounding per arithmetic step, never
///    fused. All kernel translation units are compiled with
///    `-ffp-contract=off` and the vector variants use explicit non-FMA
///    instructions, so a multiply-add is always round(round(a*b) + c).
///  - min/max follow the x86 MINPD/MAXPD selection rule
///    `min(x,y) = x < y ? x : y` (second operand on ties/NaN); the NEON
///    variant implements this with compare+select rather than `vminq_f64`.

#include <cstdint>
#include <string>
#include <vector>

namespace wnet::util::simd {

/// Dispatch levels, ordered narrow to wide. kNeon and kSse2/kAvx2 are
/// mutually exclusive per architecture; only levels compiled in AND
/// supported by the host CPU are selectable.
enum class Level : int {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
  kNeon = 3,
};

/// Kernel table. All pointers are always non-null.
struct Kernels {
  /// Σ values[i] * dense[rows[i]] with the 4-lane accumulation order.
  double (*gather_dot)(const int32_t* rows, const double* values, int n,
                       const double* dense);

  /// dense[rows[i]] += scale * values[i] for each i. Row indices must be
  /// distinct (CSC columns / LU columns are); each element performs one
  /// rounded multiply then one rounded add.
  void (*scatter_axpy)(const int32_t* rows, const double* values, int n,
                       double scale, double* dense);

  /// y[i] += a * x[i] for i in [0, n); branchless, one mul + one add per
  /// element regardless of zeros.
  void (*dense_axpy)(double* y, const double* x, double a, int n);

  /// Row-activity range for presolve: accumulates
  ///   lo_lane += min(a*lb, a*ub),  hi_lane += max(a*lb, a*ub)
  /// over the row's columns with the 4-lane order, where lb/ub are
  /// gathered via cols[i]. min/max use the MINPD selection rule.
  void (*row_activity)(const int32_t* cols, const double* coef, int n,
                       const double* lb, const double* ub, double* act_lo,
                       double* act_hi);

  /// Classifies each wall segment (wa[i] -> wb[i]) against the link
  /// segment (sa -> sb) using the repo's eps-scaled orientation test:
  ///   out[i] = 0  definitely no proper crossing
  ///   out[i] = 1  definitely a proper crossing (all four orientations
  ///               nonzero and o1 != o2 && o3 != o4)
  ///   out[i] = 2  some orientation is zero within tolerance — caller
  ///               must fall back to the exact scalar segments_intersect.
  void (*segment_classify)(double sax, double say, double sbx, double sby,
                           const double* wax, const double* way,
                           const double* wbx, const double* wby, int n,
                           double eps, uint8_t* out);

  /// out[i] = sqrt((xs[i]-x0)^2 + (ys[i]-y0)^2), one rounding per step
  /// (sub, mul, add, IEEE sqrt — bit-exact on every ISA).
  void (*pair_distances)(const double* xs, const double* ys, int n, double x0,
                         double y0, double* out);
};

/// The active kernel table (never null; scalar before first dispatch
/// resolution completes). Cheap: one atomic acquire load.
const Kernels& kernels();

/// Currently active dispatch level.
Level active_level();

/// Forces a dispatch level. Returns false (and leaves the level unchanged)
/// if the level was not compiled in or the host CPU lacks it. Thread-safe,
/// but intended for startup / tests — switching mid-solve is benign for
/// correctness (all levels are bit-identical) yet confusing for telemetry.
bool set_level(Level level);

/// Levels usable on this host (compiled in + CPU-supported), narrow to wide.
std::vector<Level> supported_levels();

/// Widest usable level on this host.
Level widest_supported();

/// "scalar" / "sse2" / "avx2" / "neon".
const char* level_name(Level level);

/// Inverse of level_name; returns false on unknown names.
bool parse_level(const std::string& name, Level* out);

/// RAII forcing of a dispatch level (tests, benchmark pairs). Restores the
/// previous level on destruction. `ok()` is false if the level was
/// unavailable, in which case nothing changed.
class ScopedLevel {
 public:
  explicit ScopedLevel(Level level) : prev_(active_level()), ok_(set_level(level)) {}
  ~ScopedLevel() {
    if (ok_) set_level(prev_);
  }
  ScopedLevel(const ScopedLevel&) = delete;
  ScopedLevel& operator=(const ScopedLevel&) = delete;
  [[nodiscard]] bool ok() const { return ok_; }

 private:
  Level prev_;
  bool ok_;
};

namespace detail {
/// Per-ISA tables, defined in the kernels_<isa>.cpp translation units.
/// Declared unconditionally (the extern declarations also give the
/// definitions external linkage); the dispatcher only references the ones
/// whose TUs are compiled in, gated by WNET_SIMD_HAVE_* defines.
extern const Kernels kScalarKernels;
extern const Kernels kSse2Kernels;
extern const Kernels kAvx2Kernels;
extern const Kernels kNeonKernels;
}  // namespace detail

}  // namespace wnet::util::simd
