/// NEON (aarch64) kernels. float64x2_t is 2-wide, so the four logical
/// lanes live in two registers — {lane0, lane1} and {lane2, lane3} — and
/// reduce as (lane0 + lane2) + (lane1 + lane3), matching the scalar
/// reference. min/max deliberately use compare+select (vclt/vbsl) instead
/// of vminq_f64/vmaxq_f64: the NEON min/max instructions order -0.0 below
/// +0.0, which differs from the x86 MINPD selection rule the determinism
/// contract pins. Compiled with -ffp-contract=off so vmul+vadd never fuse
/// into vfma.

#if defined(__aarch64__)

#include <arm_neon.h>

#include <cmath>

#include "util/simd/simd.h"

namespace wnet::util::simd {
namespace {

inline float64x2_t gather2(const double* base, int32_t i0, int32_t i1) {
  return vcombine_f64(vld1_f64(base + i0), vld1_f64(base + i1));
}

double gather_dot(const int32_t* rows, const double* values, int n,
                  const double* dense) {
  float64x2_t acc01 = vdupq_n_f64(0.0);
  float64x2_t acc23 = vdupq_n_f64(0.0);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const float64x2_t d01 = gather2(dense, rows[i], rows[i + 1]);
    const float64x2_t d23 = gather2(dense, rows[i + 2], rows[i + 3]);
    acc01 = vaddq_f64(acc01, vmulq_f64(vld1q_f64(values + i), d01));
    acc23 = vaddq_f64(acc23, vmulq_f64(vld1q_f64(values + i + 2), d23));
  }
  double lanes[4];
  vst1q_f64(lanes, acc01);
  vst1q_f64(lanes + 2, acc23);
  for (int l = 0; i < n; ++i, ++l) lanes[l] += values[i] * dense[rows[i]];
  return (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
}

void scatter_axpy(const int32_t* rows, const double* values, int n,
                  double scale, double* dense) {
  const float64x2_t s = vdupq_n_f64(scale);
  int i = 0;
  double prod[4];
  for (; i + 4 <= n; i += 4) {
    vst1q_f64(prod, vmulq_f64(s, vld1q_f64(values + i)));
    vst1q_f64(prod + 2, vmulq_f64(s, vld1q_f64(values + i + 2)));
    dense[rows[i]] += prod[0];
    dense[rows[i + 1]] += prod[1];
    dense[rows[i + 2]] += prod[2];
    dense[rows[i + 3]] += prod[3];
  }
  for (; i < n; ++i) dense[rows[i]] += scale * values[i];
}

void dense_axpy(double* y, const double* x, double a, int n) {
  const float64x2_t s = vdupq_n_f64(a);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f64(y + i, vaddq_f64(vld1q_f64(y + i), vmulq_f64(s, vld1q_f64(x + i))));
    vst1q_f64(y + i + 2,
              vaddq_f64(vld1q_f64(y + i + 2), vmulq_f64(s, vld1q_f64(x + i + 2))));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

// MINPD-rule select: min(x, y) = x < y ? x : y (second operand on ties).
inline float64x2_t min_sel(float64x2_t x, float64x2_t y) {
  return vbslq_f64(vcltq_f64(x, y), x, y);
}
inline float64x2_t max_sel(float64x2_t x, float64x2_t y) {
  return vbslq_f64(vcgtq_f64(x, y), x, y);
}

void row_activity(const int32_t* cols, const double* coef, int n,
                  const double* lb, const double* ub, double* act_lo,
                  double* act_hi) {
  float64x2_t lo01 = vdupq_n_f64(0.0), lo23 = vdupq_n_f64(0.0);
  float64x2_t hi01 = vdupq_n_f64(0.0), hi23 = vdupq_n_f64(0.0);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const float64x2_t a01 = vld1q_f64(coef + i);
    const float64x2_t a23 = vld1q_f64(coef + i + 2);
    const float64x2_t pl01 = vmulq_f64(a01, gather2(lb, cols[i], cols[i + 1]));
    const float64x2_t pu01 = vmulq_f64(a01, gather2(ub, cols[i], cols[i + 1]));
    const float64x2_t pl23 = vmulq_f64(a23, gather2(lb, cols[i + 2], cols[i + 3]));
    const float64x2_t pu23 = vmulq_f64(a23, gather2(ub, cols[i + 2], cols[i + 3]));
    lo01 = vaddq_f64(lo01, min_sel(pl01, pu01));
    lo23 = vaddq_f64(lo23, min_sel(pl23, pu23));
    hi01 = vaddq_f64(hi01, max_sel(pl01, pu01));
    hi23 = vaddq_f64(hi23, max_sel(pl23, pu23));
  }
  double lo[4], hi[4];
  vst1q_f64(lo, lo01);
  vst1q_f64(lo + 2, lo23);
  vst1q_f64(hi, hi01);
  vst1q_f64(hi + 2, hi23);
  for (int l = 0; i < n; ++i, ++l) {
    const double pl = coef[i] * lb[cols[i]];
    const double pu = coef[i] * ub[cols[i]];
    lo[l] += pl < pu ? pl : pu;
    hi[l] += pl > pu ? pl : pu;
  }
  *act_lo = (lo[0] + lo[2]) + (lo[1] + lo[3]);
  *act_hi = (hi[0] + hi[2]) + (hi[1] + hi[3]);
}

void segment_classify(double sax, double say, double sbx, double sby,
                      const double* wax, const double* way, const double* wbx,
                      const double* wby, int n, double eps, uint8_t* out) {
  const double dlx = sbx - sax;
  const double dly = sby - say;
  const double nl = std::sqrt(dlx * dlx + dly * dly);
  const float64x2_t vsax = vdupq_n_f64(sax), vsay = vdupq_n_f64(say);
  const float64x2_t vsbx = vdupq_n_f64(sbx), vsby = vdupq_n_f64(sby);
  const float64x2_t vdlx = vdupq_n_f64(dlx), vdly = vdupq_n_f64(dly);
  const float64x2_t one = vdupq_n_f64(1.0);
  const float64x2_t base_l = max_sel(one, vdupq_n_f64(nl));
  const float64x2_t veps = vdupq_n_f64(eps);
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t ax = vld1q_f64(wax + i), ay = vld1q_f64(way + i);
    const float64x2_t bx = vld1q_f64(wbx + i), by = vld1q_f64(wby + i);
    const float64x2_t r1x = vsubq_f64(ax, vsax), r1y = vsubq_f64(ay, vsay);
    const float64x2_t r2x = vsubq_f64(bx, vsax), r2y = vsubq_f64(by, vsay);
    const float64x2_t c1 = vsubq_f64(vmulq_f64(vdlx, r1y), vmulq_f64(vdly, r1x));
    const float64x2_t c2 = vsubq_f64(vmulq_f64(vdlx, r2y), vmulq_f64(vdly, r2x));
    const float64x2_t n1 =
        vsqrtq_f64(vaddq_f64(vmulq_f64(r1x, r1x), vmulq_f64(r1y, r1y)));
    const float64x2_t n2 =
        vsqrtq_f64(vaddq_f64(vmulq_f64(r2x, r2x), vmulq_f64(r2y, r2y)));
    const float64x2_t dwx = vsubq_f64(bx, ax), dwy = vsubq_f64(by, ay);
    const float64x2_t r3x = vsubq_f64(vsax, ax), r3y = vsubq_f64(vsay, ay);
    const float64x2_t r4x = vsubq_f64(vsbx, ax), r4y = vsubq_f64(vsby, ay);
    const float64x2_t c3 = vsubq_f64(vmulq_f64(dwx, r3y), vmulq_f64(dwy, r3x));
    const float64x2_t c4 = vsubq_f64(vmulq_f64(dwx, r4y), vmulq_f64(dwy, r4x));
    const float64x2_t nw =
        vsqrtq_f64(vaddq_f64(vmulq_f64(dwx, dwx), vmulq_f64(dwy, dwy)));
    const float64x2_t n3 =
        vsqrtq_f64(vaddq_f64(vmulq_f64(r3x, r3x), vmulq_f64(r3y, r3y)));
    const float64x2_t n4 =
        vsqrtq_f64(vaddq_f64(vmulq_f64(r4x, r4x), vmulq_f64(r4y, r4y)));
    const float64x2_t base_w = max_sel(one, nw);
    const float64x2_t t1 = vmulq_f64(veps, max_sel(base_l, n1));
    const float64x2_t t2 = vmulq_f64(veps, max_sel(base_l, n2));
    const float64x2_t t3 = vmulq_f64(veps, max_sel(base_w, n3));
    const float64x2_t t4 = vmulq_f64(veps, max_sel(base_w, n4));
    const uint64x2_t g1 = vcgtq_f64(c1, t1), l1 = vcltq_f64(c1, vnegq_f64(t1));
    const uint64x2_t g2 = vcgtq_f64(c2, t2), l2 = vcltq_f64(c2, vnegq_f64(t2));
    const uint64x2_t g3 = vcgtq_f64(c3, t3), l3 = vcltq_f64(c3, vnegq_f64(t3));
    const uint64x2_t g4 = vcgtq_f64(c4, t4), l4 = vcltq_f64(c4, vnegq_f64(t4));
    const uint64x2_t nz = vandq_u64(vandq_u64(vorrq_u64(g1, l1), vorrq_u64(g2, l2)),
                                    vandq_u64(vorrq_u64(g3, l3), vorrq_u64(g4, l4)));
    const uint64x2_t diff12 = vorrq_u64(vandq_u64(g1, l2), vandq_u64(l1, g2));
    const uint64x2_t diff34 = vorrq_u64(vandq_u64(g3, l4), vandq_u64(l3, g4));
    const uint64x2_t crossm = vandq_u64(diff12, diff34);
    const uint64_t nz0 = vgetq_lane_u64(nz, 0), nz1 = vgetq_lane_u64(nz, 1);
    const uint64_t cr0 = vgetq_lane_u64(crossm, 0), cr1 = vgetq_lane_u64(crossm, 1);
    out[i] = nz0 == 0 ? uint8_t{2} : (cr0 ? uint8_t{1} : uint8_t{0});
    out[i + 1] = nz1 == 0 ? uint8_t{2} : (cr1 ? uint8_t{1} : uint8_t{0});
  }
  for (; i < n; ++i) {
    const double ax = wax[i], ay = way[i], bx = wbx[i], by = wby[i];
    const double r1x = ax - sax, r1y = ay - say;
    const double r2x = bx - sax, r2y = by - say;
    const double c1 = dlx * r1y - dly * r1x;
    const double c2 = dlx * r2y - dly * r2x;
    const double n1 = std::sqrt(r1x * r1x + r1y * r1y);
    const double n2 = std::sqrt(r2x * r2x + r2y * r2y);
    const double dwx = bx - ax, dwy = by - ay;
    const double r3x = sax - ax, r3y = say - ay;
    const double r4x = sbx - ax, r4y = sby - ay;
    const double c3 = dwx * r3y - dwy * r3x;
    const double c4 = dwx * r4y - dwy * r4x;
    const double nw = std::sqrt(dwx * dwx + dwy * dwy);
    const double n3 = std::sqrt(r3x * r3x + r3y * r3y);
    const double n4 = std::sqrt(r4x * r4x + r4y * r4y);
    const auto scale_of = [](double dn, double rn) {
      const double m = 1.0 > dn ? 1.0 : dn;
      return m > rn ? m : rn;
    };
    const double t1 = eps * scale_of(nl, n1), t2 = eps * scale_of(nl, n2);
    const double t3 = eps * scale_of(nw, n3), t4 = eps * scale_of(nw, n4);
    const bool g1 = c1 > t1, l1 = c1 < -t1;
    const bool g2 = c2 > t2, l2 = c2 < -t2;
    const bool g3 = c3 > t3, l3 = c3 < -t3;
    const bool g4 = c4 > t4, l4 = c4 < -t4;
    const bool zero_any =
        (!g1 && !l1) || (!g2 && !l2) || (!g3 && !l3) || (!g4 && !l4);
    const bool diff12 = (g1 && l2) || (l1 && g2);
    const bool diff34 = (g3 && l4) || (l3 && g4);
    out[i] = zero_any ? uint8_t{2} : (diff12 && diff34 ? uint8_t{1} : uint8_t{0});
  }
}

void pair_distances(const double* xs, const double* ys, int n, double x0,
                    double y0, double* out) {
  const float64x2_t vx0 = vdupq_n_f64(x0), vy0 = vdupq_n_f64(y0);
  int i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t dx = vsubq_f64(vld1q_f64(xs + i), vx0);
    const float64x2_t dy = vsubq_f64(vld1q_f64(ys + i), vy0);
    vst1q_f64(out + i, vsqrtq_f64(vaddq_f64(vmulq_f64(dx, dx), vmulq_f64(dy, dy))));
  }
  for (; i < n; ++i) {
    const double dx = xs[i] - x0;
    const double dy = ys[i] - y0;
    out[i] = std::sqrt(dx * dx + dy * dy);
  }
}

}  // namespace

namespace detail {
const Kernels kNeonKernels = {
    gather_dot, scatter_axpy, dense_axpy, row_activity, segment_classify,
    pair_distances,
};
}  // namespace detail

}  // namespace wnet::util::simd

#endif  // __aarch64__
