/// Scalar reference kernels. These spell out the canonical 4-logical-lane
/// semantics every vector variant must reproduce bit-for-bit; the TU is
/// compiled with -ffp-contract=off and -fno-tree-vectorize so the
/// "scalar" dispatch level (and the benchmark baselines) are honest
/// unvectorized, uncontracted code.

#include <cmath>

#include "util/simd/simd.h"

namespace wnet::util::simd {
namespace {

double gather_dot(const int32_t* rows, const double* values, int n,
                  const double* dense) {
  double lanes[4] = {0.0, 0.0, 0.0, 0.0};
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    lanes[0] += values[i] * dense[rows[i]];
    lanes[1] += values[i + 1] * dense[rows[i + 1]];
    lanes[2] += values[i + 2] * dense[rows[i + 2]];
    lanes[3] += values[i + 3] * dense[rows[i + 3]];
  }
  for (int l = 0; i < n; ++i, ++l) lanes[l] += values[i] * dense[rows[i]];
  return (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
}

void scatter_axpy(const int32_t* rows, const double* values, int n,
                  double scale, double* dense) {
  for (int i = 0; i < n; ++i) dense[rows[i]] += scale * values[i];
}

void dense_axpy(double* y, const double* x, double a, int n) {
  for (int i = 0; i < n; ++i) y[i] += a * x[i];
}

void row_activity(const int32_t* cols, const double* coef, int n,
                  const double* lb, const double* ub, double* act_lo,
                  double* act_hi) {
  double lo[4] = {0.0, 0.0, 0.0, 0.0};
  double hi[4] = {0.0, 0.0, 0.0, 0.0};
  // MINPD selection rule: min(x, y) = x < y ? x : y (second operand on
  // ties), symmetric for max. Matches _mm_min_pd / compare+select on NEON.
  const auto term = [&](int i, double* lo_lane, double* hi_lane) {
    const double pl = coef[i] * lb[cols[i]];
    const double pu = coef[i] * ub[cols[i]];
    *lo_lane += pl < pu ? pl : pu;
    *hi_lane += pl > pu ? pl : pu;
  };
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    term(i, &lo[0], &hi[0]);
    term(i + 1, &lo[1], &hi[1]);
    term(i + 2, &lo[2], &hi[2]);
    term(i + 3, &lo[3], &hi[3]);
  }
  for (int l = 0; i < n; ++i, ++l) term(i, &lo[l], &hi[l]);
  *act_lo = (lo[0] + lo[2]) + (lo[1] + lo[3]);
  *act_hi = (hi[0] + hi[2]) + (hi[1] + hi[3]);
}

void segment_classify(double sax, double say, double sbx, double sby,
                      const double* wax, const double* way, const double* wbx,
                      const double* wby, int n, double eps, uint8_t* out) {
  // Link direction and its length are loop constants.
  const double dlx = sbx - sax;
  const double dly = sby - say;
  const double nl = std::sqrt(dlx * dlx + dly * dly);
  for (int i = 0; i < n; ++i) {
    const double ax = wax[i], ay = way[i], bx = wbx[i], by = wby[i];
    // o1 = orientation(s.a, s.b, w.a), o2 = orientation(s.a, s.b, w.b)
    const double r1x = ax - sax, r1y = ay - say;
    const double r2x = bx - sax, r2y = by - say;
    const double c1 = dlx * r1y - dly * r1x;
    const double c2 = dlx * r2y - dly * r2x;
    const double n1 = std::sqrt(r1x * r1x + r1y * r1y);
    const double n2 = std::sqrt(r2x * r2x + r2y * r2y);
    // o3 = orientation(w.a, w.b, s.a), o4 = orientation(w.a, w.b, s.b)
    const double dwx = bx - ax, dwy = by - ay;
    const double r3x = sax - ax, r3y = say - ay;
    const double r4x = sbx - ax, r4y = sby - ay;
    const double c3 = dwx * r3y - dwy * r3x;
    const double c4 = dwx * r4y - dwy * r4x;
    const double nw = std::sqrt(dwx * dwx + dwy * dwy);
    const double n3 = std::sqrt(r3x * r3x + r3y * r3y);
    const double n4 = std::sqrt(r4x * r4x + r4y * r4y);
    // scale = max(max(1, |dir|), |rel|) with MAXPD selection order.
    const auto scale_of = [](double dir_n, double rel_n) {
      const double m = 1.0 > dir_n ? 1.0 : dir_n;
      return m > rel_n ? m : rel_n;
    };
    const double t1 = eps * scale_of(nl, n1);
    const double t2 = eps * scale_of(nl, n2);
    const double t3 = eps * scale_of(nw, n3);
    const double t4 = eps * scale_of(nw, n4);
    const bool g1 = c1 > t1, l1 = c1 < -t1;
    const bool g2 = c2 > t2, l2 = c2 < -t2;
    const bool g3 = c3 > t3, l3 = c3 < -t3;
    const bool g4 = c4 > t4, l4 = c4 < -t4;
    const bool zero_any = (!g1 && !l1) || (!g2 && !l2) || (!g3 && !l3) || (!g4 && !l4);
    const bool diff12 = (g1 && l2) || (l1 && g2);
    const bool diff34 = (g3 && l4) || (l3 && g4);
    out[i] = zero_any ? uint8_t{2} : (diff12 && diff34 ? uint8_t{1} : uint8_t{0});
  }
}

void pair_distances(const double* xs, const double* ys, int n, double x0,
                    double y0, double* out) {
  for (int i = 0; i < n; ++i) {
    const double dx = xs[i] - x0;
    const double dy = ys[i] - y0;
    out[i] = std::sqrt(dx * dx + dy * dy);
  }
}

}  // namespace

namespace detail {
const Kernels kScalarKernels = {
    gather_dot, scatter_axpy, dense_axpy, row_activity, segment_classify,
    pair_distances,
};
}  // namespace detail

}  // namespace wnet::util::simd
