/// AVX2 kernels. One 256-bit register carries all four logical lanes;
/// the reduction (lane0 + lane2) + (lane1 + lane3) is exactly the
/// low128+high128 add followed by a horizontal pair add. Compiled with
/// -mavx2 (NOT -mfma) and -ffp-contract=off, so multiply-adds stay two
/// roundings and match the scalar reference bit-for-bit.

#if defined(__x86_64__) || defined(__i386__) || defined(_M_X64)

#include <immintrin.h>

#include <cmath>

#include "util/simd/simd.h"

namespace wnet::util::simd {
namespace {

inline double reduce_lanes(__m256d acc) {
  // {l0+l2, l1+l3} then (l0+l2) + (l1+l3).
  const __m128d lohi = _mm_add_pd(_mm256_castpd256_pd128(acc),
                                  _mm256_extractf128_pd(acc, 1));
  return _mm_cvtsd_f64(_mm_add_sd(lohi, _mm_unpackhi_pd(lohi, lohi)));
}

double gather_dot(const int32_t* rows, const double* values, int n,
                  const double* dense) {
  __m256d acc = _mm256_setzero_pd();
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i idx = _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows + i));
    const __m256d d = _mm256_i32gather_pd(dense, idx, 8);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_loadu_pd(values + i), d));
  }
  if (i == n) return reduce_lanes(acc);
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  for (int l = 0; i < n; ++i, ++l) lanes[l] += values[i] * dense[rows[i]];
  return (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
}

void scatter_axpy(const int32_t* rows, const double* values, int n,
                  double scale, double* dense) {
  const __m256d s = _mm256_set1_pd(scale);
  int i = 0;
  alignas(32) double prod[4];
  for (; i + 4 <= n; i += 4) {
    _mm256_store_pd(prod, _mm256_mul_pd(s, _mm256_loadu_pd(values + i)));
    dense[rows[i]] += prod[0];
    dense[rows[i + 1]] += prod[1];
    dense[rows[i + 2]] += prod[2];
    dense[rows[i + 3]] += prod[3];
  }
  for (; i < n; ++i) dense[rows[i]] += scale * values[i];
}

void dense_axpy(double* y, const double* x, double a, int n) {
  const __m256d s = _mm256_set1_pd(a);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d r =
        _mm256_add_pd(_mm256_loadu_pd(y + i), _mm256_mul_pd(s, _mm256_loadu_pd(x + i)));
    _mm256_storeu_pd(y + i, r);
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void row_activity(const int32_t* cols, const double* coef, int n,
                  const double* lb, const double* ub, double* act_lo,
                  double* act_hi) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i idx = _mm_loadu_si128(reinterpret_cast<const __m128i*>(cols + i));
    const __m256d a = _mm256_loadu_pd(coef + i);
    const __m256d pl = _mm256_mul_pd(a, _mm256_i32gather_pd(lb, idx, 8));
    const __m256d pu = _mm256_mul_pd(a, _mm256_i32gather_pd(ub, idx, 8));
    acc_lo = _mm256_add_pd(acc_lo, _mm256_min_pd(pl, pu));
    acc_hi = _mm256_add_pd(acc_hi, _mm256_max_pd(pl, pu));
  }
  alignas(32) double lo[4], hi[4];
  _mm256_store_pd(lo, acc_lo);
  _mm256_store_pd(hi, acc_hi);
  for (int l = 0; i < n; ++i, ++l) {
    const double pl = coef[i] * lb[cols[i]];
    const double pu = coef[i] * ub[cols[i]];
    lo[l] += pl < pu ? pl : pu;
    hi[l] += pl > pu ? pl : pu;
  }
  *act_lo = (lo[0] + lo[2]) + (lo[1] + lo[3]);
  *act_hi = (hi[0] + hi[2]) + (hi[1] + hi[3]);
}

void segment_classify(double sax, double say, double sbx, double sby,
                      const double* wax, const double* way, const double* wbx,
                      const double* wby, int n, double eps, uint8_t* out) {
  const double dlx = sbx - sax;
  const double dly = sby - say;
  const double nl = std::sqrt(dlx * dlx + dly * dly);
  const __m256d vsax = _mm256_set1_pd(sax), vsay = _mm256_set1_pd(say);
  const __m256d vsbx = _mm256_set1_pd(sbx), vsby = _mm256_set1_pd(sby);
  const __m256d vdlx = _mm256_set1_pd(dlx), vdly = _mm256_set1_pd(dly);
  const __m256d base_l = _mm256_max_pd(_mm256_set1_pd(1.0), _mm256_set1_pd(nl));
  const __m256d veps = _mm256_set1_pd(eps);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d signmask = _mm256_set1_pd(-0.0);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d ax = _mm256_loadu_pd(wax + i), ay = _mm256_loadu_pd(way + i);
    const __m256d bx = _mm256_loadu_pd(wbx + i), by = _mm256_loadu_pd(wby + i);
    const __m256d r1x = _mm256_sub_pd(ax, vsax), r1y = _mm256_sub_pd(ay, vsay);
    const __m256d r2x = _mm256_sub_pd(bx, vsax), r2y = _mm256_sub_pd(by, vsay);
    const __m256d c1 =
        _mm256_sub_pd(_mm256_mul_pd(vdlx, r1y), _mm256_mul_pd(vdly, r1x));
    const __m256d c2 =
        _mm256_sub_pd(_mm256_mul_pd(vdlx, r2y), _mm256_mul_pd(vdly, r2x));
    const __m256d n1 = _mm256_sqrt_pd(
        _mm256_add_pd(_mm256_mul_pd(r1x, r1x), _mm256_mul_pd(r1y, r1y)));
    const __m256d n2 = _mm256_sqrt_pd(
        _mm256_add_pd(_mm256_mul_pd(r2x, r2x), _mm256_mul_pd(r2y, r2y)));
    const __m256d dwx = _mm256_sub_pd(bx, ax), dwy = _mm256_sub_pd(by, ay);
    const __m256d r3x = _mm256_sub_pd(vsax, ax), r3y = _mm256_sub_pd(vsay, ay);
    const __m256d r4x = _mm256_sub_pd(vsbx, ax), r4y = _mm256_sub_pd(vsby, ay);
    const __m256d c3 =
        _mm256_sub_pd(_mm256_mul_pd(dwx, r3y), _mm256_mul_pd(dwy, r3x));
    const __m256d c4 =
        _mm256_sub_pd(_mm256_mul_pd(dwx, r4y), _mm256_mul_pd(dwy, r4x));
    const __m256d nw = _mm256_sqrt_pd(
        _mm256_add_pd(_mm256_mul_pd(dwx, dwx), _mm256_mul_pd(dwy, dwy)));
    const __m256d n3 = _mm256_sqrt_pd(
        _mm256_add_pd(_mm256_mul_pd(r3x, r3x), _mm256_mul_pd(r3y, r3y)));
    const __m256d n4 = _mm256_sqrt_pd(
        _mm256_add_pd(_mm256_mul_pd(r4x, r4x), _mm256_mul_pd(r4y, r4y)));
    const __m256d base_w = _mm256_max_pd(one, nw);
    const __m256d t1 = _mm256_mul_pd(veps, _mm256_max_pd(base_l, n1));
    const __m256d t2 = _mm256_mul_pd(veps, _mm256_max_pd(base_l, n2));
    const __m256d t3 = _mm256_mul_pd(veps, _mm256_max_pd(base_w, n3));
    const __m256d t4 = _mm256_mul_pd(veps, _mm256_max_pd(base_w, n4));
    const __m256d g1 = _mm256_cmp_pd(c1, t1, _CMP_GT_OQ);
    const __m256d l1 = _mm256_cmp_pd(c1, _mm256_xor_pd(t1, signmask), _CMP_LT_OQ);
    const __m256d g2 = _mm256_cmp_pd(c2, t2, _CMP_GT_OQ);
    const __m256d l2 = _mm256_cmp_pd(c2, _mm256_xor_pd(t2, signmask), _CMP_LT_OQ);
    const __m256d g3 = _mm256_cmp_pd(c3, t3, _CMP_GT_OQ);
    const __m256d l3 = _mm256_cmp_pd(c3, _mm256_xor_pd(t3, signmask), _CMP_LT_OQ);
    const __m256d g4 = _mm256_cmp_pd(c4, t4, _CMP_GT_OQ);
    const __m256d l4 = _mm256_cmp_pd(c4, _mm256_xor_pd(t4, signmask), _CMP_LT_OQ);
    const __m256d nz =
        _mm256_and_pd(_mm256_and_pd(_mm256_or_pd(g1, l1), _mm256_or_pd(g2, l2)),
                      _mm256_and_pd(_mm256_or_pd(g3, l3), _mm256_or_pd(g4, l4)));
    const __m256d diff12 =
        _mm256_or_pd(_mm256_and_pd(g1, l2), _mm256_and_pd(l1, g2));
    const __m256d diff34 =
        _mm256_or_pd(_mm256_and_pd(g3, l4), _mm256_and_pd(l3, g4));
    const __m256d crossm = _mm256_and_pd(diff12, diff34);
    const int nzm = _mm256_movemask_pd(nz);
    const int crm = _mm256_movemask_pd(crossm);
    for (int l = 0; l < 4; ++l) {
      out[i + l] = ((nzm >> l) & 1) == 0 ? uint8_t{2}
                                         : (((crm >> l) & 1) ? uint8_t{1} : uint8_t{0});
    }
  }
  for (; i < n; ++i) {
    const double ax = wax[i], ay = way[i], bx = wbx[i], by = wby[i];
    const double r1x = ax - sax, r1y = ay - say;
    const double r2x = bx - sax, r2y = by - say;
    const double c1 = dlx * r1y - dly * r1x;
    const double c2 = dlx * r2y - dly * r2x;
    const double n1 = std::sqrt(r1x * r1x + r1y * r1y);
    const double n2 = std::sqrt(r2x * r2x + r2y * r2y);
    const double dwx = bx - ax, dwy = by - ay;
    const double r3x = sax - ax, r3y = say - ay;
    const double r4x = sbx - ax, r4y = sby - ay;
    const double c3 = dwx * r3y - dwy * r3x;
    const double c4 = dwx * r4y - dwy * r4x;
    const double nw = std::sqrt(dwx * dwx + dwy * dwy);
    const double n3 = std::sqrt(r3x * r3x + r3y * r3y);
    const double n4 = std::sqrt(r4x * r4x + r4y * r4y);
    const auto scale_of = [](double dn, double rn) {
      const double m = 1.0 > dn ? 1.0 : dn;
      return m > rn ? m : rn;
    };
    const double t1 = eps * scale_of(nl, n1), t2 = eps * scale_of(nl, n2);
    const double t3 = eps * scale_of(nw, n3), t4 = eps * scale_of(nw, n4);
    const bool g1 = c1 > t1, l1 = c1 < -t1;
    const bool g2 = c2 > t2, l2 = c2 < -t2;
    const bool g3 = c3 > t3, l3 = c3 < -t3;
    const bool g4 = c4 > t4, l4 = c4 < -t4;
    const bool zero_any =
        (!g1 && !l1) || (!g2 && !l2) || (!g3 && !l3) || (!g4 && !l4);
    const bool diff12 = (g1 && l2) || (l1 && g2);
    const bool diff34 = (g3 && l4) || (l3 && g4);
    out[i] = zero_any ? uint8_t{2} : (diff12 && diff34 ? uint8_t{1} : uint8_t{0});
  }
}

void pair_distances(const double* xs, const double* ys, int n, double x0,
                    double y0, double* out) {
  const __m256d vx0 = _mm256_set1_pd(x0), vy0 = _mm256_set1_pd(y0);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d dx = _mm256_sub_pd(_mm256_loadu_pd(xs + i), vx0);
    const __m256d dy = _mm256_sub_pd(_mm256_loadu_pd(ys + i), vy0);
    _mm256_storeu_pd(
        out + i,
        _mm256_sqrt_pd(_mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy))));
  }
  for (; i < n; ++i) {
    const double dx = xs[i] - x0;
    const double dy = ys[i] - y0;
    out[i] = std::sqrt(dx * dx + dy * dy);
  }
}

}  // namespace

namespace detail {
const Kernels kAvx2Kernels = {
    gather_dot, scatter_axpy, dense_axpy, row_activity, segment_classify,
    pair_distances,
};
}  // namespace detail

}  // namespace wnet::util::simd

#endif  // x86
