/// Runtime dispatch for the SIMD kernel table. Resolution order: the
/// WNET_SIMD environment variable if set to a level this build + CPU can
/// run (unknown or unavailable values fall back with a one-line stderr
/// warning — never a crash), otherwise the widest supported level.

#include "util/simd/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace wnet::util::simd {
namespace {

bool level_compiled(Level level) {
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kSse2:
#if defined(WNET_SIMD_HAVE_SSE2)
      return true;
#else
      return false;
#endif
    case Level::kAvx2:
#if defined(WNET_SIMD_HAVE_AVX2)
      return true;
#else
      return false;
#endif
    case Level::kNeon:
#if defined(WNET_SIMD_HAVE_NEON)
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool cpu_supports(Level level) {
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kSse2:
#if defined(__x86_64__) || defined(_M_X64)
      return true;  // SSE2 is part of the x86-64 baseline.
#else
      return false;
#endif
    case Level::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Level::kNeon:
#if defined(__aarch64__)
      return true;  // AdvSIMD is mandatory on aarch64.
#else
      return false;
#endif
  }
  return false;
}

const Kernels* table_for(Level level) {
  switch (level) {
#if defined(WNET_SIMD_HAVE_SSE2)
    case Level::kSse2:
      return &detail::kSse2Kernels;
#endif
#if defined(WNET_SIMD_HAVE_AVX2)
    case Level::kAvx2:
      return &detail::kAvx2Kernels;
#endif
#if defined(WNET_SIMD_HAVE_NEON)
    case Level::kNeon:
      return &detail::kNeonKernels;
#endif
    default:
      return &detail::kScalarKernels;
  }
}

std::atomic<const Kernels*> g_table{&detail::kScalarKernels};
std::atomic<Level> g_level{Level::kScalar};
std::once_flag g_init_once;

void init_dispatch() {
  Level chosen = widest_supported();
  const char* env = std::getenv("WNET_SIMD");
  if (env != nullptr && env[0] != '\0') {
    Level requested;
    if (!parse_level(env, &requested)) {
      std::fprintf(stderr,
                   "[wnet.simd] WNET_SIMD=%s not recognized; using %s\n", env,
                   level_name(chosen));
    } else if (!level_compiled(requested) || !cpu_supports(requested)) {
      std::fprintf(stderr,
                   "[wnet.simd] WNET_SIMD=%s unavailable on this build/CPU; "
                   "using %s\n",
                   env, level_name(chosen));
    } else {
      chosen = requested;
    }
  }
  g_table.store(table_for(chosen), std::memory_order_release);
  g_level.store(chosen, std::memory_order_release);
}

void ensure_init() { std::call_once(g_init_once, init_dispatch); }

}  // namespace

const Kernels& kernels() {
  ensure_init();
  return *g_table.load(std::memory_order_acquire);
}

Level active_level() {
  ensure_init();
  return g_level.load(std::memory_order_acquire);
}

bool set_level(Level level) {
  ensure_init();
  if (!level_compiled(level) || !cpu_supports(level)) return false;
  g_table.store(table_for(level), std::memory_order_release);
  g_level.store(level, std::memory_order_release);
  return true;
}

std::vector<Level> supported_levels() {
  std::vector<Level> out;
  for (Level level : {Level::kScalar, Level::kSse2, Level::kAvx2, Level::kNeon}) {
    if (level_compiled(level) && cpu_supports(level)) out.push_back(level);
  }
  return out;
}

Level widest_supported() {
  Level widest = Level::kScalar;
  for (Level level : supported_levels()) widest = level;
  return widest;
}

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSse2:
      return "sse2";
    case Level::kAvx2:
      return "avx2";
    case Level::kNeon:
      return "neon";
  }
  return "scalar";
}

bool parse_level(const std::string& name, Level* out) {
  if (name == "scalar") {
    *out = Level::kScalar;
  } else if (name == "sse2") {
    *out = Level::kSse2;
  } else if (name == "avx2") {
    *out = Level::kAvx2;
  } else if (name == "neon") {
    *out = Level::kNeon;
  } else {
    return false;
  }
  return true;
}

}  // namespace wnet::util::simd
