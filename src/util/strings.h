#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace wnet::util {

/// Removes leading and trailing whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Splits `s` on `sep`, trimming each piece; empty pieces are kept.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Splits on arbitrary runs of whitespace; empty pieces are dropped.
[[nodiscard]] std::vector<std::string> split_ws(std::string_view s);

/// True if `s` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Parses a double; returns nullopt on any trailing garbage.
[[nodiscard]] std::optional<double> parse_double(std::string_view s);

/// Parses a non-negative integer; returns nullopt on any trailing garbage.
[[nodiscard]] std::optional<long> parse_long(std::string_view s);

/// Lower-cases ASCII.
[[nodiscard]] std::string to_lower(std::string_view s);

}  // namespace wnet::util
