#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace wnet::util {

/// Resolves a thread-count request: values >= 1 pass through, anything else
/// (0, negative) means "auto" — the hardware concurrency, floored at 1.
[[nodiscard]] int resolve_threads(int requested);

/// Process-wide count of parallel-task exceptions that were suppressed
/// because a lower-index sibling's exception was rethrown instead (C++ can
/// only propagate one). Always maintained — unlike the
/// `thread_pool.suppressed_exceptions` trace counter, which records only
/// while tracing is enabled — so long-lived servers can surface multi-
/// failure requests in telemetry alone.
[[nodiscard]] long suppressed_exception_total();

/// Fixed-size worker pool over a FIFO task queue. Tasks are opaque
/// void() closures; completion signalling is the caller's business
/// (ParallelExecutor below layers deterministic fan-out/join on top).
/// The destructor drains nothing: it stops accepting work, wakes the
/// workers, and joins them after the queue empties.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. Must not be called after destruction began.
  void submit(std::function<void()> task);

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Deterministic parallel-for over an index range, with a serial fallback.
/// `threads <= 1` runs everything inline on the calling thread — the
/// zero-dependency default every caller starts from. With more threads the
/// executor owns a ThreadPool and hands out indices through a shared
/// cursor, so any thread count covers every index exactly once.
///
/// Determinism contract: results must be keyed by index (see map()), never
/// by completion order. The first exception (lowest index) thrown by any
/// task is rethrown on the calling thread after all tasks finish.
class ParallelExecutor {
 public:
  explicit ParallelExecutor(int threads = 1);
  ~ParallelExecutor();

  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  [[nodiscard]] int threads() const { return threads_; }
  [[nodiscard]] bool serial() const { return pool_ == nullptr; }

  /// Runs fn(i) for every i in [0, n), blocking until all complete.
  ///
  /// When more than one task throws, only the lowest-index exception can
  /// propagate; the others are suppressed. `suppressed_out` (if non-null)
  /// receives the number of suppressed sibling exceptions — written BEFORE
  /// the rethrow, so a caller's catch block can read it — and the same
  /// count is added to the process-wide suppressed_exception_total(),
  /// independent of whether tracing is enabled. 0 on a clean run or when
  /// only one task threw. The serial path throws eagerly (later indices
  /// never run), so it always reports 0.
  void for_each(int n, const std::function<void(int)>& fn, long* suppressed_out = nullptr) const;

  /// Index-ordered map: out[i] = fn(i). The merge is deterministic by
  /// construction — slot i is written only by the task that claimed i —
  /// so results are identical for every thread count.
  template <typename T, typename Fn>
  [[nodiscard]] std::vector<T> map(int n, Fn&& fn) const {
    std::vector<T> out(static_cast<size_t>(n > 0 ? n : 0));
    for_each(n, [&](int i) { out[static_cast<size_t>(i)] = fn(i); });
    return out;
  }

 private:
  int threads_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace wnet::util
