#include "graph/connectivity.h"

#include <deque>
#include <set>

namespace wnet::graph {

std::vector<char> reachable_from(const Digraph& g, NodeId src) {
  std::vector<char> seen(static_cast<size_t>(g.num_nodes()), 0);
  if (src < 0 || src >= g.num_nodes()) return seen;
  std::deque<NodeId> frontier{src};
  seen[static_cast<size_t>(src)] = 1;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (EdgeId eid : g.out_edges(u)) {
      const Edge& e = g.edge(eid);
      if (e.weight == kInfWeight) continue;
      if (!seen[static_cast<size_t>(e.to)]) {
        seen[static_cast<size_t>(e.to)] = 1;
        frontier.push_back(e.to);
      }
    }
  }
  return seen;
}

bool is_reachable(const Digraph& g, NodeId src, NodeId dst) {
  if (dst < 0 || dst >= g.num_nodes()) return false;
  return reachable_from(g, src)[static_cast<size_t>(dst)] != 0;
}

bool is_valid_simple_path(const Digraph& g, const Path& p) {
  if (p.nodes.empty()) return false;
  if (p.edges.size() + 1 != p.nodes.size()) return false;
  std::set<NodeId> seen;
  for (NodeId v : p.nodes) {
    if (v < 0 || v >= g.num_nodes()) return false;
    if (!seen.insert(v).second) return false;  // repeated node => loop
  }
  for (size_t i = 0; i < p.edges.size(); ++i) {
    const EdgeId eid = p.edges[i];
    if (eid < 0 || eid >= g.num_edges()) return false;
    const Edge& e = g.edge(eid);
    if (e.from != p.nodes[i] || e.to != p.nodes[i + 1]) return false;
  }
  return true;
}

bool path_uses_node(const Path& p, NodeId v) {
  for (NodeId n : p.nodes) {
    if (n == v) return true;
  }
  return false;
}

bool path_uses_link(const Path& p, NodeId a, NodeId b) {
  for (size_t i = 0; i + 1 < p.nodes.size(); ++i) {
    const NodeId u = p.nodes[i];
    const NodeId w = p.nodes[i + 1];
    if ((u == a && w == b) || (u == b && w == a)) return true;
  }
  return false;
}

std::vector<std::vector<int>> incidence_matrix(const Digraph& g) {
  std::vector<std::vector<int>> c(static_cast<size_t>(g.num_nodes()),
                                  std::vector<int>(static_cast<size_t>(g.num_edges()), 0));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& ed = g.edge(e);
    c[static_cast<size_t>(ed.from)][static_cast<size_t>(e)] = 1;
    c[static_cast<size_t>(ed.to)][static_cast<size_t>(e)] = -1;
  }
  return c;
}

}  // namespace wnet::graph
