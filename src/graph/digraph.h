#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace wnet::graph {

using NodeId = int;
using EdgeId = int;

inline constexpr double kInfWeight = std::numeric_limits<double>::infinity();

/// A directed edge with a mutable weight (shortest-path routines treat
/// weight == kInfWeight as "removed", which is how Algorithm 1 disconnects
/// paths without rebuilding the graph).
struct Edge {
  NodeId from = -1;
  NodeId to = -1;
  double weight = 0.0;
};

/// Directed weighted graph over dense node ids [0, num_nodes).
///
/// Edges are stored in insertion order with stable EdgeIds plus a per-node
/// out-adjacency index; this keeps Yen's repeated edge-removal cheap (weight
/// overrides) and lets callers map EdgeIds back to template links.
class Digraph {
 public:
  explicit Digraph(int num_nodes = 0) : out_(static_cast<size_t>(num_nodes)) {}

  /// Adds a directed edge and returns its id. O(1).
  EdgeId add_edge(NodeId from, NodeId to, double weight);

  [[nodiscard]] int num_nodes() const { return static_cast<int>(out_.size()); }
  [[nodiscard]] int num_edges() const { return static_cast<int>(edges_.size()); }

  [[nodiscard]] const Edge& edge(EdgeId e) const { return edges_[static_cast<size_t>(e)]; }
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }

  /// Out-edges of `v` as EdgeIds.
  [[nodiscard]] const std::vector<EdgeId>& out_edges(NodeId v) const {
    return out_[static_cast<size_t>(v)];
  }

  /// Overrides the weight of an edge (kInfWeight removes it logically).
  void set_weight(EdgeId e, double w) { edges_[static_cast<size_t>(e)].weight = w; }

  /// Finds the edge id from `from` to `to`, or -1 if absent (first match).
  [[nodiscard]] EdgeId find_edge(NodeId from, NodeId to) const;

  /// Adds a node, returning its id.
  NodeId add_node();

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_;
};

/// A path as a node sequence plus the edge ids connecting them
/// (edges.size() == nodes.size() - 1) and its total weight.
struct Path {
  std::vector<NodeId> nodes;
  std::vector<EdgeId> edges;
  double cost = 0.0;

  [[nodiscard]] bool empty() const { return nodes.empty(); }
  /// Number of hops (edges).
  [[nodiscard]] int hops() const { return static_cast<int>(edges.size()); }

  friend bool operator==(const Path& a, const Path& b) { return a.nodes == b.nodes; }
};

/// True if the two paths share no edge (by edge id).
[[nodiscard]] bool edge_disjoint(const Path& a, const Path& b);

/// Number of edges the two paths share.
[[nodiscard]] int shared_edges(const Path& a, const Path& b);

}  // namespace wnet::graph
