#include "graph/dijkstra.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace wnet::graph {

namespace {

struct QueueItem {
  double dist;
  NodeId node;
  friend bool operator>(const QueueItem& a, const QueueItem& b) { return a.dist > b.dist; }
};

}  // namespace

std::optional<Path> shortest_path(const Digraph& g, NodeId src, NodeId dst,
                                  const DijkstraOptions& opts) {
  const int n = g.num_nodes();
  if (src < 0 || src >= n || dst < 0 || dst >= n) {
    throw std::out_of_range("shortest_path: node id out of range");
  }
  std::vector<double> dist(static_cast<size_t>(n), kInfWeight);
  std::vector<EdgeId> pred_edge(static_cast<size_t>(n), -1);
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> pq;
  dist[static_cast<size_t>(src)] = 0.0;
  pq.push({0.0, src});

  const auto node_banned = [&](NodeId v) {
    return opts.banned_nodes != nullptr && v != src &&
           (*opts.banned_nodes)[static_cast<size_t>(v)] != 0;
  };
  const auto edge_banned = [&](EdgeId e) {
    return opts.banned_edges != nullptr && (*opts.banned_edges)[static_cast<size_t>(e)] != 0;
  };

  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[static_cast<size_t>(u)]) continue;  // stale entry
    if (u == dst) break;
    for (EdgeId eid : g.out_edges(u)) {
      if (edge_banned(eid)) continue;
      const Edge& e = g.edge(eid);
      if (e.weight == kInfWeight) continue;
      if (e.weight < 0) throw std::invalid_argument("shortest_path: negative edge weight");
      if (node_banned(e.to)) continue;
      const double nd = d + e.weight;
      if (nd < dist[static_cast<size_t>(e.to)]) {
        dist[static_cast<size_t>(e.to)] = nd;
        pred_edge[static_cast<size_t>(e.to)] = eid;
        pq.push({nd, e.to});
      }
    }
  }

  if (dist[static_cast<size_t>(dst)] == kInfWeight) return std::nullopt;

  Path p;
  p.cost = dist[static_cast<size_t>(dst)];
  for (NodeId v = dst; v != src;) {
    const EdgeId eid = pred_edge[static_cast<size_t>(v)];
    p.edges.push_back(eid);
    p.nodes.push_back(v);
    v = g.edge(eid).from;
  }
  p.nodes.push_back(src);
  std::reverse(p.nodes.begin(), p.nodes.end());
  std::reverse(p.edges.begin(), p.edges.end());
  return p;
}

std::vector<double> shortest_distances(const Digraph& g, NodeId src) {
  const int n = g.num_nodes();
  if (src < 0 || src >= n) throw std::out_of_range("shortest_distances: bad source");
  std::vector<double> dist(static_cast<size_t>(n), kInfWeight);
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> pq;
  dist[static_cast<size_t>(src)] = 0.0;
  pq.push({0.0, src});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[static_cast<size_t>(u)]) continue;
    for (EdgeId eid : g.out_edges(u)) {
      const Edge& e = g.edge(eid);
      if (e.weight == kInfWeight) continue;
      const double nd = d + e.weight;
      if (nd < dist[static_cast<size_t>(e.to)]) {
        dist[static_cast<size_t>(e.to)] = nd;
        pq.push({nd, e.to});
      }
    }
  }
  return dist;
}

}  // namespace wnet::graph
