#include "graph/yen.h"

#include <algorithm>
#include <utility>

#include "graph/dijkstra.h"

namespace wnet::graph {

YenEnumerator::YenEnumerator(const Digraph& g, NodeId src, NodeId dst)
    : g_(g),
      src_(src),
      dst_(dst),
      banned_edges_(static_cast<size_t>(g.num_edges()), 0),
      banned_nodes_(static_cast<size_t>(g.num_nodes()), 0) {}

const std::vector<Path>& YenEnumerator::next_batch(int k) {
  return next_batch(k, util::exec::ExecControl{});
}

const std::vector<Path>& YenEnumerator::next_batch(int k, const util::exec::ExecControl& ctl) {
  if (!started_) {
    started_ = true;
    auto first = shortest_path(g_, src_, dst_);
    if (!first) {
      exhausted_ = true;
    } else {
      accepted_keys_.insert(first->nodes);
      result_.push_back(std::move(*first));
      deviation_.push_back(0);
    }
  }
  while (!exhausted_ && static_cast<int>(result_.size()) < k) {
    // Stop checks leave exhausted_ false: the enumeration is interrupted,
    // not finished, and resumes on the next call. This runs on worker-pool
    // threads, so it polls only (no checkpoint counting).
    if (ctl.stopped()) break;
    if (ctl.budget && !ctl.budget->charge_yen_candidates()) break;
    // The newest accepted path is spur-scanned lazily, right before the next
    // pop: the scan's accepted-set context is then identical whether the
    // enumeration runs in one batch or resumes across several.
    if (scanned_ + 1 == result_.size()) {
      spur_scan(scanned_);
      ++scanned_;
    }
    if (candidates_.empty()) {
      exhausted_ = true;
      break;
    }
    const auto best = candidates_.begin();
    accepted_keys_.insert(best->first.nodes);
    result_.push_back(best->first);
    deviation_.push_back(best->second);
    candidates_.erase(best);
  }
  return result_;
}

void YenEnumerator::spur_scan(size_t path_index) {
  const Path& prev = result_[path_index];
  if (prev.nodes.size() < 2) return;

  // Cumulative root-prefix costs: prefix_cost_[i] = cost of prev.edges[0..i).
  prefix_cost_.assign(prev.nodes.size(), 0.0);
  for (size_t j = 0; j + 1 < prev.nodes.size(); ++j) {
    prefix_cost_[j + 1] = prefix_cost_[j] + g_.edge(prev.edges[j]).weight;
  }

  // Lawler: spur indices below the deviation point were already scanned by
  // the path this one deviated from, under the same root prefix.
  const size_t start = deviation_[path_index];
  for (size_t j = 0; j < start; ++j) banned_nodes_[static_cast<size_t>(prev.nodes[j])] = 1;
  for (size_t i = start; i + 1 < prev.nodes.size(); ++i) {
    const NodeId spur = prev.nodes[i];
    if (i > start) banned_nodes_[static_cast<size_t>(prev.nodes[i - 1])] = 1;

    // Ban the edges that accepted paths take out of the same root prefix
    // (prev.nodes[0..i]) and the root nodes themselves.
    for (const Path& p : result_) {
      if (p.nodes.size() > i &&
          std::equal(prev.nodes.begin(), prev.nodes.begin() + static_cast<long>(i) + 1,
                     p.nodes.begin())) {
        if (i < p.edges.size()) {
          const auto e = static_cast<size_t>(p.edges[i]);
          if (!banned_edges_[e]) {
            banned_edges_[e] = 1;
            touched_edges_.push_back(p.edges[i]);
          }
        }
      }
    }
    DijkstraOptions opts;
    opts.banned_edges = &banned_edges_;
    opts.banned_nodes = &banned_nodes_;
    auto spur_path = shortest_path(g_, spur, dst_, opts);

    for (const EdgeId e : touched_edges_) banned_edges_[static_cast<size_t>(e)] = 0;
    touched_edges_.clear();

    if (!spur_path) continue;

    // Total = root + spur.
    Path total;
    total.nodes.assign(prev.nodes.begin(), prev.nodes.begin() + static_cast<long>(i));
    total.nodes.insert(total.nodes.end(), spur_path->nodes.begin(), spur_path->nodes.end());
    total.edges.assign(prev.edges.begin(), prev.edges.begin() + static_cast<long>(i));
    total.edges.insert(total.edges.end(), spur_path->edges.begin(), spur_path->edges.end());
    total.cost = spur_path->cost + prefix_cost_[i];

    // Skip candidates already accepted (the map dedups pending ones, keeping
    // the smallest deviation index so no spur scan is skipped unsoundly).
    if (accepted_keys_.find(total.nodes) == accepted_keys_.end()) {
      auto [it, inserted] = candidates_.try_emplace(std::move(total), i);
      if (!inserted && i < it->second) it->second = i;
    }
  }

  // Root-node bans accumulate across spur indices; clear them all here.
  for (size_t j = 0; j + 1 < prev.nodes.size(); ++j) {
    banned_nodes_[static_cast<size_t>(prev.nodes[j])] = 0;
  }
}

std::vector<Path> yen_k_shortest(const Digraph& g, NodeId src, NodeId dst, int k) {
  if (k <= 0) return {};
  YenEnumerator en(g, src, dst);
  return en.next_batch(k);
}

}  // namespace wnet::graph
