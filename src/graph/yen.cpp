#include "graph/yen.h"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "graph/dijkstra.h"

namespace wnet::graph {

namespace {

/// Candidate ordering: by cost, ties broken by node sequence so the result
/// order is deterministic across runs.
struct CandidateLess {
  bool operator()(const Path& a, const Path& b) const {
    if (a.cost != b.cost) return a.cost < b.cost;
    return a.nodes < b.nodes;
  }
};

}  // namespace

std::vector<Path> yen_k_shortest(const Digraph& g, NodeId src, NodeId dst, int k) {
  if (k <= 0) return {};
  std::vector<Path> result;
  auto first = shortest_path(g, src, dst);
  if (!first) return {};
  result.push_back(std::move(*first));

  std::set<Path, CandidateLess> candidates;
  std::vector<char> banned_edges(static_cast<size_t>(g.num_edges()), 0);
  std::vector<char> banned_nodes(static_cast<size_t>(g.num_nodes()), 0);

  while (static_cast<int>(result.size()) < k) {
    const Path& prev = result.back();
    // For every spur node in the previous path, ban the edges that earlier
    // accepted paths take out of the same root prefix, ban the root nodes,
    // and search for a deviation.
    for (size_t i = 0; i + 1 < prev.nodes.size(); ++i) {
      const NodeId spur = prev.nodes[i];

      std::fill(banned_edges.begin(), banned_edges.end(), 0);
      std::fill(banned_nodes.begin(), banned_nodes.end(), 0);

      // Root path: prev.nodes[0..i], prev.edges[0..i-1].
      for (const Path& p : result) {
        if (p.nodes.size() > i &&
            std::equal(prev.nodes.begin(), prev.nodes.begin() + static_cast<long>(i) + 1,
                       p.nodes.begin())) {
          if (i < p.edges.size()) banned_edges[static_cast<size_t>(p.edges[i])] = 1;
        }
      }
      for (size_t j = 0; j < i; ++j) banned_nodes[static_cast<size_t>(prev.nodes[j])] = 1;

      DijkstraOptions opts;
      opts.banned_edges = &banned_edges;
      opts.banned_nodes = &banned_nodes;
      auto spur_path = shortest_path(g, spur, dst, opts);
      if (!spur_path) continue;

      // Total = root + spur.
      Path total;
      total.nodes.assign(prev.nodes.begin(), prev.nodes.begin() + static_cast<long>(i));
      total.nodes.insert(total.nodes.end(), spur_path->nodes.begin(), spur_path->nodes.end());
      total.edges.assign(prev.edges.begin(), prev.edges.begin() + static_cast<long>(i));
      total.edges.insert(total.edges.end(), spur_path->edges.begin(), spur_path->edges.end());
      total.cost = spur_path->cost;
      for (size_t j = 0; j < i; ++j) total.cost += g.edge(prev.edges[j]).weight;

      // Skip candidates already accepted (set dedups pending ones).
      if (std::find(result.begin(), result.end(), total) == result.end()) {
        candidates.insert(std::move(total));
      }
    }
    if (candidates.empty()) break;
    result.push_back(*candidates.begin());
    candidates.erase(candidates.begin());
  }
  return result;
}

}  // namespace wnet::graph
