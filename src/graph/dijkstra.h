#pragma once

#include <optional>
#include <vector>

#include "graph/digraph.h"

namespace wnet::graph {

/// Options restricting the search; Yen's spur computation uses these to ban
/// root-path nodes and individual edges without mutating the graph.
struct DijkstraOptions {
  /// Edges whose ids are flagged true here are skipped.
  const std::vector<char>* banned_edges = nullptr;
  /// Nodes flagged true here are skipped (source exempt).
  const std::vector<char>* banned_nodes = nullptr;
};

/// Single-pair Dijkstra over non-negative weights. Returns the shortest
/// path from `src` to `dst`, or nullopt if unreachable. Edges with infinite
/// weight are treated as absent.
[[nodiscard]] std::optional<Path> shortest_path(const Digraph& g, NodeId src, NodeId dst,
                                                const DijkstraOptions& opts = {});

/// Single-source Dijkstra: distance to every node (kInfWeight if
/// unreachable).
[[nodiscard]] std::vector<double> shortest_distances(const Digraph& g, NodeId src);

}  // namespace wnet::graph
