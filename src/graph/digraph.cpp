#include "graph/digraph.h"

#include <algorithm>
#include <stdexcept>

namespace wnet::graph {

EdgeId Digraph::add_edge(NodeId from, NodeId to, double weight) {
  if (from < 0 || from >= num_nodes() || to < 0 || to >= num_nodes()) {
    throw std::out_of_range("Digraph::add_edge: node id out of range");
  }
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back({from, to, weight});
  out_[static_cast<size_t>(from)].push_back(id);
  return id;
}

EdgeId Digraph::find_edge(NodeId from, NodeId to) const {
  if (from < 0 || from >= num_nodes()) return -1;
  for (EdgeId e : out_[static_cast<size_t>(from)]) {
    if (edges_[static_cast<size_t>(e)].to == to) return e;
  }
  return -1;
}

NodeId Digraph::add_node() {
  out_.emplace_back();
  return static_cast<NodeId>(out_.size() - 1);
}

bool edge_disjoint(const Path& a, const Path& b) { return shared_edges(a, b) == 0; }

int shared_edges(const Path& a, const Path& b) {
  int n = 0;
  for (EdgeId ea : a.edges) {
    if (std::find(b.edges.begin(), b.edges.end(), ea) != b.edges.end()) ++n;
  }
  return n;
}

}  // namespace wnet::graph
