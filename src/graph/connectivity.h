#pragma once

#include <vector>

#include "graph/digraph.h"

namespace wnet::graph {

/// Nodes reachable from `src` over finite-weight edges (BFS).
[[nodiscard]] std::vector<char> reachable_from(const Digraph& g, NodeId src);

/// True if `dst` is reachable from `src`.
[[nodiscard]] bool is_reachable(const Digraph& g, NodeId src, NodeId dst);

/// Validates a path against the graph: consecutive edges connect, nodes are
/// distinct (loopless), and every edge id matches its endpoints. Used by the
/// encoders as a defensive check and heavily in tests.
[[nodiscard]] bool is_valid_simple_path(const Digraph& g, const Path& p);

/// True if `v` appears anywhere on the path (endpoints included).
[[nodiscard]] bool path_uses_node(const Path& p, NodeId v);

/// True if some hop of the path connects `a` and `b` in either direction —
/// the membership test fault campaigns use for (undirected) link cuts.
[[nodiscard]] bool path_uses_link(const Path& p, NodeId a, NodeId b);

/// Dense incidence matrix of the template (rows = nodes, cols = edges;
/// +1 at the source row, -1 at the destination row). This is the `c` matrix
/// of constraint (1a) in the paper.
[[nodiscard]] std::vector<std::vector<int>> incidence_matrix(const Digraph& g);

}  // namespace wnet::graph
