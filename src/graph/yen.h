#pragma once

#include <vector>

#include "graph/digraph.h"

namespace wnet::graph {

/// Yen's algorithm [Yen 1971]: the K shortest *loopless* paths from `src`
/// to `dst` in non-decreasing order of cost. Returns fewer than K paths if
/// the graph does not contain that many distinct loopless paths.
///
/// This is the routine Algorithm 1 of the paper calls "KShortest": the
/// template edges are weighted by estimated link path loss and the K best
/// candidates per required route are kept for the symbolic encoding.
[[nodiscard]] std::vector<Path> yen_k_shortest(const Digraph& g, NodeId src, NodeId dst, int k);

}  // namespace wnet::graph
