#pragma once

#include <cstddef>
#include <map>
#include <unordered_set>
#include <vector>

#include "graph/digraph.h"
#include "util/exec/exec.h"

namespace wnet::graph {

/// Resumable Yen enumerator [Yen 1971] with Lawler's deviation-index
/// optimization: enumerates the K shortest *loopless* paths from `src` to
/// `dst` in non-decreasing (cost, node-sequence) order, and keeps the
/// accepted-path list and the candidate pool alive between calls so
/// `next_batch(K')` after `next_batch(K)` derives only the K'-K new paths.
/// Previously returned paths are never removed or reordered, so the encoder
/// can widen a route's candidate set across K* ladder rungs and reuse every
/// path (and every selector variable) it already has.
class YenEnumerator {
 public:
  /// Copies the graph so later mutations of the caller's graph (e.g. the
  /// disjoint-replica disconnect step) do not perturb resumed batches.
  YenEnumerator(const Digraph& g, NodeId src, NodeId dst);

  /// Extends the accepted list to min(k, #loopless paths) paths and returns
  /// it. The first K entries are identical to what any earlier, smaller
  /// batch returned.
  const std::vector<Path>& next_batch(int k);

  /// Controlled variant: polls `ctl` before each accepted path and charges
  /// one Yen candidate per acceptance against `ctl.budget`. On a stop
  /// (deadline, cancellation, budget refusal) it returns whatever is
  /// accepted so far WITHOUT marking the enumerator exhausted — a later call
  /// with a live control resumes exactly where this one stopped. Because a
  /// path's spur scan runs lazily before the next pop, partial batches stay
  /// bit-identical to the uncontrolled enumeration's prefix.
  const std::vector<Path>& next_batch(int k, const util::exec::ExecControl& ctl);

  [[nodiscard]] const std::vector<Path>& accepted() const { return result_; }

  /// True once the graph holds no further loopless src->dst paths.
  [[nodiscard]] bool exhausted() const { return exhausted_; }

 private:
  /// Candidate ordering: by cost, ties broken by node sequence so the
  /// result order is deterministic across runs.
  struct CandidateLess {
    bool operator()(const Path& a, const Path& b) const {
      if (a.cost != b.cost) return a.cost < b.cost;
      return a.nodes < b.nodes;
    }
  };

  struct NodeSeqHash {
    size_t operator()(const std::vector<NodeId>& v) const {
      size_t h = 1469598103934665603ull;
      for (const NodeId n : v) {
        h ^= static_cast<size_t>(n) + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      }
      return h;
    }
  };

  void spur_scan(size_t path_index);

  Digraph g_;
  NodeId src_;
  NodeId dst_;
  std::vector<Path> result_;
  /// Parallel to result_: index where each path deviates from the path whose
  /// spur scan produced it. Lawler: spur scans may start there because
  /// earlier spur indices were already covered by the parent's scan.
  std::vector<size_t> deviation_;
  /// Pending candidates keyed by (cost, nodes); the mapped value is the
  /// smallest deviation index among the scans that produced the path.
  std::map<Path, size_t, CandidateLess> candidates_;
  std::unordered_set<std::vector<NodeId>, NodeSeqHash> accepted_keys_;
  std::vector<char> banned_edges_;
  std::vector<char> banned_nodes_;
  std::vector<EdgeId> touched_edges_;
  std::vector<double> prefix_cost_;
  size_t scanned_ = 0;  ///< result_[0..scanned_) have had their spur scans
  bool started_ = false;
  bool exhausted_ = false;
};

/// Yen's algorithm: the K shortest *loopless* paths from `src` to `dst` in
/// non-decreasing order of cost. Returns fewer than K paths if the graph
/// does not contain that many distinct loopless paths.
///
/// This is the routine Algorithm 1 of the paper calls "KShortest": the
/// template edges are weighted by estimated link path loss and the K best
/// candidates per required route are kept for the symbolic encoding. Thin
/// wrapper over a single-use YenEnumerator.
[[nodiscard]] std::vector<Path> yen_k_shortest(const Digraph& g, NodeId src, NodeId dst, int k);

}  // namespace wnet::graph
