#pragma once

#include "channel/propagation.h"

namespace wnet::channel {

/// Link-budget arithmetic for constraint (2a) of the paper:
///   RSS_ij = -PL_ij + tx_i + g_i + g_j   (all in dB / dBm)
/// The paper writes "+PL" with PL implicitly negative; we keep path loss
/// positive and subtract, which is the conventional sign.
struct LinkBudget {
  double tx_power_dbm = 0.0;   ///< transmit power of the TX node
  double tx_gain_dbi = 0.0;    ///< TX antenna gain
  double rx_gain_dbi = 0.0;    ///< RX antenna gain
  double path_loss_db = 0.0;   ///< propagation loss (positive)

  /// Received signal strength in dBm.
  [[nodiscard]] double rss_dbm() const {
    return tx_power_dbm + tx_gain_dbi + rx_gain_dbi - path_loss_db;
  }

  /// Signal-to-noise ratio in dB given a noise floor in dBm.
  [[nodiscard]] double snr_db(double noise_floor_dbm) const {
    return rss_dbm() - noise_floor_dbm;
  }
};

}  // namespace wnet::channel
