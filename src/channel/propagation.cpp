#include "channel/propagation.h"

#include <cmath>
#include <stdexcept>

#include "util/rng.h"
#include "util/simd/simd.h"

namespace wnet::channel {

namespace {

/// FSPL constant: 20log10(4*pi/c) = -147.55 dB with d in meters, f in Hz.
constexpr double kFsplConst = -147.55221677811664;

double fspl_db(double d_m, double f_hz) {
  // Clamp below 1 m: the far-field formula is meaningless at d -> 0 and a
  // floor keeps RSS finite for co-located template nodes.
  const double d = std::max(d_m, 1.0);
  return 20.0 * std::log10(d) + 20.0 * std::log10(f_hz) + kFsplConst;
}

}  // namespace

void PropagationModel::path_loss_batch(geom::Vec2 tx, const double* xs,
                                       const double* ys, int n, double* out) const {
  for (int i = 0; i < n; ++i) out[i] = path_loss_db(tx, {xs[i], ys[i]});
}

FreeSpaceModel::FreeSpaceModel(double frequency_hz) : frequency_hz_(frequency_hz) {
  if (frequency_hz <= 0) throw std::invalid_argument("FreeSpaceModel: frequency must be > 0");
}

double FreeSpaceModel::path_loss_db(geom::Vec2 tx, geom::Vec2 rx) const {
  return fspl_db(tx.dist(rx), frequency_hz_);
}

void FreeSpaceModel::path_loss_batch(geom::Vec2 tx, const double* xs,
                                     const double* ys, int n, double* out) const {
  // Distances via the SIMD kernel (bit-identical to Vec2::dist — squaring
  // absorbs the reversed subtraction direction exactly), log tail scalar.
  util::simd::kernels().pair_distances(xs, ys, n, tx.x, tx.y, out);
  for (int i = 0; i < n; ++i) out[i] = fspl_db(out[i], frequency_hz_);
}

LogDistanceModel::LogDistanceModel(double frequency_hz, double exponent, double d0_m)
    : pl_d0_db_(fspl_db(d0_m, frequency_hz)), exponent_(exponent), d0_m_(d0_m) {
  if (frequency_hz <= 0) throw std::invalid_argument("LogDistanceModel: frequency must be > 0");
  if (exponent <= 0) throw std::invalid_argument("LogDistanceModel: exponent must be > 0");
  if (d0_m <= 0) throw std::invalid_argument("LogDistanceModel: d0 must be > 0");
}

double LogDistanceModel::path_loss_db(geom::Vec2 tx, geom::Vec2 rx) const {
  const double d = std::max(tx.dist(rx), d0_m_);
  return pl_d0_db_ + 10.0 * exponent_ * std::log10(d / d0_m_);
}

void LogDistanceModel::path_loss_batch(geom::Vec2 tx, const double* xs,
                                       const double* ys, int n, double* out) const {
  util::simd::kernels().pair_distances(xs, ys, n, tx.x, tx.y, out);
  for (int i = 0; i < n; ++i) {
    const double d = std::max(out[i], d0_m_);
    out[i] = pl_d0_db_ + 10.0 * exponent_ * std::log10(d / d0_m_);
  }
}

MultiWallModel::MultiWallModel(double frequency_hz, double exponent,
                               const geom::FloorPlan& plan, double d0_m)
    : base_(frequency_hz, exponent, d0_m), plan_(&plan) {}

double MultiWallModel::path_loss_db(geom::Vec2 tx, geom::Vec2 rx) const {
  return base_.path_loss_db(tx, rx) + plan_->wall_loss_db(tx, rx);
}

void MultiWallModel::path_loss_batch(geom::Vec2 tx, const double* xs,
                                     const double* ys, int n, double* out) const {
  base_.path_loss_batch(tx, xs, ys, n, out);
  // wall_loss_db itself runs the SIMD wall-classify kernel over the plan.
  for (int i = 0; i < n; ++i) out[i] += plan_->wall_loss_db(tx, {xs[i], ys[i]});
}

namespace {

/// Position hash at millimeter resolution: links between the same physical
/// endpoints always map to the same fade, independent of float noise.
uint64_t point_key(geom::Vec2 p) {
  const auto qx = static_cast<uint64_t>(static_cast<int64_t>(std::llround(p.x * 1000.0)));
  const auto qy = static_cast<uint64_t>(static_cast<int64_t>(std::llround(p.y * 1000.0)));
  return util::splitmix64(qx ^ util::splitmix64(qy));
}

}  // namespace

ShadowingModel::ShadowingModel(const PropagationModel& base, double sigma_db, uint64_t seed)
    : base_(&base), sigma_db_(sigma_db), seed_(seed) {
  if (sigma_db < 0) throw std::invalid_argument("ShadowingModel: sigma must be >= 0");
}

double ShadowingModel::shadowing_db(geom::Vec2 tx, geom::Vec2 rx) const {
  if (sigma_db_ == 0.0) return 0.0;
  // Commutative endpoint combination makes the fade symmetric; Box-Muller
  // over splitmix-derived uniforms keeps it platform-deterministic (no
  // std::distribution implementation variance).
  const uint64_t a = point_key(tx);
  const uint64_t b = point_key(rx);
  const uint64_t pair = (a ^ b) + util::splitmix64(a + b);
  const uint64_t h1 = util::splitmix64(seed_ ^ pair);
  const uint64_t h2 = util::splitmix64(h1);
  constexpr double kScale = 1.0 / 9007199254740992.0;  // 2^-53
  const double u1 = (static_cast<double>(h1 >> 11) + 0.5) * kScale;  // (0, 1)
  const double u2 = static_cast<double>(h2 >> 11) * kScale;          // [0, 1)
  return sigma_db_ * std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double ShadowingModel::path_loss_db(geom::Vec2 tx, geom::Vec2 rx) const {
  return base_->path_loss_db(tx, rx) + shadowing_db(tx, rx);
}

void ShadowingModel::path_loss_batch(geom::Vec2 tx, const double* xs,
                                     const double* ys, int n, double* out) const {
  base_->path_loss_batch(tx, xs, ys, n, out);
  for (int i = 0; i < n; ++i) out[i] += shadowing_db(tx, {xs[i], ys[i]});
}

ItuIndoorModel::ItuIndoorModel(double frequency_hz, double power_coefficient)
    : fixed_term_db_(20.0 * std::log10(frequency_hz / 1e6) - 28.0), n_(power_coefficient) {
  if (frequency_hz <= 0) throw std::invalid_argument("ItuIndoorModel: frequency must be > 0");
  if (power_coefficient <= 0) {
    throw std::invalid_argument("ItuIndoorModel: power coefficient must be > 0");
  }
}

double ItuIndoorModel::path_loss_db(geom::Vec2 tx, geom::Vec2 rx) const {
  const double d = std::max(tx.dist(rx), 1.0);
  return fixed_term_db_ + n_ * std::log10(d);
}

void ItuIndoorModel::path_loss_batch(geom::Vec2 tx, const double* xs,
                                     const double* ys, int n, double* out) const {
  util::simd::kernels().pair_distances(xs, ys, n, tx.x, tx.y, out);
  for (int i = 0; i < n; ++i) {
    const double d = std::max(out[i], 1.0);
    out[i] = fixed_term_db_ + n_ * std::log10(d);
  }
}

TwoRayModel::TwoRayModel(double frequency_hz, double tx_height_m, double rx_height_m)
    : fspl_(frequency_hz),
      heights_term_db_(20.0 * std::log10(tx_height_m * rx_height_m)),
      crossover_m_(4.0 * M_PI * tx_height_m * rx_height_m * frequency_hz / 299792458.0) {
  if (tx_height_m <= 0 || rx_height_m <= 0) {
    throw std::invalid_argument("TwoRayModel: antenna heights must be > 0");
  }
}

double TwoRayModel::path_loss_db(geom::Vec2 tx, geom::Vec2 rx) const {
  const double d = std::max(tx.dist(rx), 1.0);
  if (d <= crossover_m_) return fspl_.path_loss_db(tx, rx);
  return 40.0 * std::log10(d) - heights_term_db_;
}

}  // namespace wnet::channel
