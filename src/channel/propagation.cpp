#include "channel/propagation.h"

#include <cmath>
#include <stdexcept>

namespace wnet::channel {

namespace {

/// FSPL constant: 20log10(4*pi/c) = -147.55 dB with d in meters, f in Hz.
constexpr double kFsplConst = -147.55221677811664;

double fspl_db(double d_m, double f_hz) {
  // Clamp below 1 m: the far-field formula is meaningless at d -> 0 and a
  // floor keeps RSS finite for co-located template nodes.
  const double d = std::max(d_m, 1.0);
  return 20.0 * std::log10(d) + 20.0 * std::log10(f_hz) + kFsplConst;
}

}  // namespace

FreeSpaceModel::FreeSpaceModel(double frequency_hz) : frequency_hz_(frequency_hz) {
  if (frequency_hz <= 0) throw std::invalid_argument("FreeSpaceModel: frequency must be > 0");
}

double FreeSpaceModel::path_loss_db(geom::Vec2 tx, geom::Vec2 rx) const {
  return fspl_db(tx.dist(rx), frequency_hz_);
}

LogDistanceModel::LogDistanceModel(double frequency_hz, double exponent, double d0_m)
    : pl_d0_db_(fspl_db(d0_m, frequency_hz)), exponent_(exponent), d0_m_(d0_m) {
  if (frequency_hz <= 0) throw std::invalid_argument("LogDistanceModel: frequency must be > 0");
  if (exponent <= 0) throw std::invalid_argument("LogDistanceModel: exponent must be > 0");
  if (d0_m <= 0) throw std::invalid_argument("LogDistanceModel: d0 must be > 0");
}

double LogDistanceModel::path_loss_db(geom::Vec2 tx, geom::Vec2 rx) const {
  const double d = std::max(tx.dist(rx), d0_m_);
  return pl_d0_db_ + 10.0 * exponent_ * std::log10(d / d0_m_);
}

MultiWallModel::MultiWallModel(double frequency_hz, double exponent,
                               const geom::FloorPlan& plan, double d0_m)
    : base_(frequency_hz, exponent, d0_m), plan_(&plan) {}

double MultiWallModel::path_loss_db(geom::Vec2 tx, geom::Vec2 rx) const {
  return base_.path_loss_db(tx, rx) + plan_->wall_loss_db(tx, rx);
}

ItuIndoorModel::ItuIndoorModel(double frequency_hz, double power_coefficient)
    : fixed_term_db_(20.0 * std::log10(frequency_hz / 1e6) - 28.0), n_(power_coefficient) {
  if (frequency_hz <= 0) throw std::invalid_argument("ItuIndoorModel: frequency must be > 0");
  if (power_coefficient <= 0) {
    throw std::invalid_argument("ItuIndoorModel: power coefficient must be > 0");
  }
}

double ItuIndoorModel::path_loss_db(geom::Vec2 tx, geom::Vec2 rx) const {
  const double d = std::max(tx.dist(rx), 1.0);
  return fixed_term_db_ + n_ * std::log10(d);
}

TwoRayModel::TwoRayModel(double frequency_hz, double tx_height_m, double rx_height_m)
    : fspl_(frequency_hz),
      heights_term_db_(20.0 * std::log10(tx_height_m * rx_height_m)),
      crossover_m_(4.0 * M_PI * tx_height_m * rx_height_m * frequency_hz / 299792458.0) {
  if (tx_height_m <= 0 || rx_height_m <= 0) {
    throw std::invalid_argument("TwoRayModel: antenna heights must be > 0");
  }
}

double TwoRayModel::path_loss_db(geom::Vec2 tx, geom::Vec2 rx) const {
  const double d = std::max(tx.dist(rx), 1.0);
  if (d <= crossover_m_) return fspl_.path_loss_db(tx, rx);
  return 40.0 * std::log10(d) - heights_term_db_;
}

}  // namespace wnet::channel
