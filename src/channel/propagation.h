#pragma once

#include <cstdint>
#include <memory>

#include "geometry/floorplan.h"
#include "geometry/vec2.h"

namespace wnet::channel {

/// A propagation model predicts path loss (dB, positive) between two points.
/// The paper's tool supports several models "with different complexity" and
/// uses the multi-wall model (log-distance + per-wall attenuation) for its
/// experiments; all three are provided here.
class PropagationModel {
 public:
  virtual ~PropagationModel() = default;

  /// Path loss in dB (positive; larger = worse) from `tx` to `rx`.
  [[nodiscard]] virtual double path_loss_db(geom::Vec2 tx, geom::Vec2 rx) const = 0;

  /// Batch evaluation: out[i] = path loss from `tx` to (xs[i], ys[i]).
  /// Bit-identical to calling path_loss_db per point — overrides route the
  /// distance computation through the SIMD pair-distance kernel (whose
  /// subtract/square/sum/sqrt sequence reproduces Vec2::dist exactly) and
  /// keep the transcendental tail scalar per point. The base implementation
  /// is a plain loop for models without a vectorized form.
  virtual void path_loss_batch(geom::Vec2 tx, const double* xs, const double* ys,
                               int n, double* out) const;
};

/// Free-space path loss: FSPL(d) = 20log10(d) + 20log10(f) - 147.55 dB.
class FreeSpaceModel final : public PropagationModel {
 public:
  /// `frequency_hz` e.g. 2.4e9 for the paper's 2.4 GHz networks.
  explicit FreeSpaceModel(double frequency_hz);

  [[nodiscard]] double path_loss_db(geom::Vec2 tx, geom::Vec2 rx) const override;

  void path_loss_batch(geom::Vec2 tx, const double* xs, const double* ys, int n,
                       double* out) const override;

  [[nodiscard]] double frequency_hz() const { return frequency_hz_; }

 private:
  double frequency_hz_;
};

/// Classical log-distance model:
///   PL(d) = PL(d0) + 10 n log10(d / d0)
/// with PL(d0) anchored to free space at the reference distance d0.
class LogDistanceModel final : public PropagationModel {
 public:
  LogDistanceModel(double frequency_hz, double exponent, double d0_m = 1.0);

  [[nodiscard]] double path_loss_db(geom::Vec2 tx, geom::Vec2 rx) const override;

  void path_loss_batch(geom::Vec2 tx, const double* xs, const double* ys, int n,
                       double* out) const override;

  [[nodiscard]] double exponent() const { return exponent_; }

 private:
  double pl_d0_db_;
  double exponent_;
  double d0_m_;
};

/// Multi-wall model: log-distance plus the summed attenuation of every wall
/// crossed by the straight-line link (COST-231 style). This is the model
/// used for all of the paper's experiments.
class MultiWallModel final : public PropagationModel {
 public:
  /// Keeps a reference to `plan`; the floor plan must outlive the model.
  MultiWallModel(double frequency_hz, double exponent, const geom::FloorPlan& plan,
                 double d0_m = 1.0);

  [[nodiscard]] double path_loss_db(geom::Vec2 tx, geom::Vec2 rx) const override;

  void path_loss_batch(geom::Vec2 tx, const double* xs, const double* ys, int n,
                       double* out) const override;

 private:
  LogDistanceModel base_;
  const geom::FloorPlan* plan_;
};

/// ITU-R P.1238 indoor model (single floor):
///   PL = 20 log10(f_MHz) + N log10(d) - 28 dB,
/// with the distance-power coefficient N ~ 30 for 2.4 GHz offices. One of
/// the "several models with different complexity" the paper's tool offers.
class ItuIndoorModel final : public PropagationModel {
 public:
  explicit ItuIndoorModel(double frequency_hz, double power_coefficient = 30.0);

  [[nodiscard]] double path_loss_db(geom::Vec2 tx, geom::Vec2 rx) const override;

  void path_loss_batch(geom::Vec2 tx, const double* xs, const double* ys, int n,
                       double* out) const override;

 private:
  double fixed_term_db_;
  double n_;
};

/// Log-normal shadowing decorator: adds a zero-mean Gaussian offset
/// (standard deviation `sigma_db`) to the base model's path loss. The
/// offset is a pure function of (seed, endpoint pair) — symmetric in tx/rx
/// and stable across calls — so one ShadowingModel instance is one frozen
/// fading realization and Monte-Carlo campaigns drawing many instances
/// with derived seeds are reproducible bit-for-bit.
class ShadowingModel final : public PropagationModel {
 public:
  /// Keeps a reference to `base`; it must outlive the decorator.
  ShadowingModel(const PropagationModel& base, double sigma_db, uint64_t seed);

  [[nodiscard]] double path_loss_db(geom::Vec2 tx, geom::Vec2 rx) const override;

  void path_loss_batch(geom::Vec2 tx, const double* xs, const double* ys, int n,
                       double* out) const override;

  /// The shadowing offset alone (dB, positive = deeper fade).
  [[nodiscard]] double shadowing_db(geom::Vec2 tx, geom::Vec2 rx) const;

  [[nodiscard]] double sigma_db() const { return sigma_db_; }

 private:
  const PropagationModel* base_;
  double sigma_db_;
  uint64_t seed_;
};

/// Two-ray ground-reflection model: free space up to the crossover distance
/// d_c = 4 pi h_t h_r / lambda, then PL = 40 log10(d) - 20 log10(h_t h_r)
/// (the classic d^4 regime). Relevant for outdoor/fixed-height deployments.
class TwoRayModel final : public PropagationModel {
 public:
  TwoRayModel(double frequency_hz, double tx_height_m = 1.5, double rx_height_m = 1.5);

  [[nodiscard]] double path_loss_db(geom::Vec2 tx, geom::Vec2 rx) const override;

  [[nodiscard]] double crossover_distance_m() const { return crossover_m_; }

 private:
  FreeSpaceModel fspl_;
  double heights_term_db_;
  double crossover_m_;
};

}  // namespace wnet::channel
