#pragma once

#include <vector>

namespace wnet::channel {

/// Modulation schemes with closed-form AWGN BER curves. The paper's
/// experiments use QPSK at 250 kbps / 2.4 GHz (802.15.4-class radios).
enum class Modulation { kBpsk, kQpsk, kFsk };

/// Bit error rate for the given modulation at SNR (dB), assuming the
/// bandwidth/bit-rate factor is folded into the noise floor (Eb/N0 ~ SNR).
[[nodiscard]] double bit_error_rate(Modulation mod, double snr_db);

/// Packet error rate for a packet of `packet_bytes` at the given BER,
/// assuming independent bit errors: PER = 1 - (1 - BER)^(8 * bytes).
[[nodiscard]] double packet_error_rate(double ber, int packet_bytes);

/// Expected number of transmissions until first success (the paper's ETX):
/// 1 / (1 - PER), clamped to `max_etx` as PER -> 1.
[[nodiscard]] double expected_transmissions(double per, double max_etx = 100.0);

/// Convenience: ETX directly from SNR, modulation, and packet size.
[[nodiscard]] double etx_from_snr(Modulation mod, double snr_db, int packet_bytes,
                                  double max_etx = 100.0);

/// Inverse BER curve: the minimum SNR (dB) at which the modulation achieves
/// `target_ber` or better. Solved by bisection on the monotone BER curve;
/// lets BER-style link-quality requirements compile to the same RSS bound
/// machinery as SNR ones (paper: "ArchEx also supports other link quality
/// metrics, such as bit error rate").
[[nodiscard]] double snr_for_ber(Modulation mod, double target_ber);

/// One breakpoint of a piecewise-constant ETX(SNR) staircase.
struct EtxBreakpoint {
  double snr_db;  ///< staircase step location
  double etx;     ///< ETX value for snr >= snr_db (until the next breakpoint)
};

/// Builds a conservative piecewise-constant upper approximation of
/// ETX(SNR) over [snr_min_db, snr_max_db] with `steps` samples. This is the
/// "piecewise-linear encoding" the paper alludes to for MILP-compatible
/// energy constraints: within each SNR bin the worst-case (largest) ETX is
/// used so the MILP never underestimates energy.
[[nodiscard]] std::vector<EtxBreakpoint> build_etx_staircase(Modulation mod, int packet_bytes,
                                                             double snr_min_db,
                                                             double snr_max_db, int steps,
                                                             double max_etx = 100.0);

/// Looks up the staircase value for a given SNR (first breakpoint whose
/// snr_db <= snr, scanning from the highest). Below the lowest breakpoint
/// returns the worst-case ETX of the table.
[[nodiscard]] double etx_staircase_lookup(const std::vector<EtxBreakpoint>& table,
                                          double snr_db);

}  // namespace wnet::channel
