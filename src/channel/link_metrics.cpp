#include "channel/link_metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wnet::channel {

namespace {

/// Gaussian Q-function via erfc.
double q_func(double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); }

double db_to_linear(double db) { return std::pow(10.0, db / 10.0); }

}  // namespace

double bit_error_rate(Modulation mod, double snr_db) {
  const double snr = db_to_linear(snr_db);
  switch (mod) {
    case Modulation::kBpsk:
    case Modulation::kQpsk:
      // Per-bit error probability Q(sqrt(2 Eb/N0)); QPSK matches BPSK per
      // bit with Gray coding.
      return q_func(std::sqrt(2.0 * snr));
    case Modulation::kFsk:
      // Non-coherent binary FSK.
      return 0.5 * std::exp(-snr / 2.0);
  }
  return 0.5;
}

double packet_error_rate(double ber, int packet_bytes) {
  if (packet_bytes <= 0) throw std::invalid_argument("packet_error_rate: bytes must be > 0");
  const double ber_c = std::clamp(ber, 0.0, 1.0);
  return 1.0 - std::pow(1.0 - ber_c, 8.0 * packet_bytes);
}

double expected_transmissions(double per, double max_etx) {
  const double per_c = std::clamp(per, 0.0, 1.0);
  if (per_c >= 1.0 - 1.0 / max_etx) return max_etx;
  return 1.0 / (1.0 - per_c);
}

double etx_from_snr(Modulation mod, double snr_db, int packet_bytes, double max_etx) {
  return expected_transmissions(packet_error_rate(bit_error_rate(mod, snr_db), packet_bytes),
                                max_etx);
}

double snr_for_ber(Modulation mod, double target_ber) {
  if (target_ber <= 0.0 || target_ber >= 0.5) {
    throw std::invalid_argument("snr_for_ber: target must be in (0, 0.5)");
  }
  double lo = -30.0;
  double hi = 40.0;
  if (bit_error_rate(mod, hi) > target_ber) {
    throw std::invalid_argument("snr_for_ber: target unreachable below 40 dB SNR");
  }
  // BER is monotone non-increasing in SNR: bisect to ~1e-6 dB.
  for (int it = 0; it < 60; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (bit_error_rate(mod, mid) > target_ber) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

std::vector<EtxBreakpoint> build_etx_staircase(Modulation mod, int packet_bytes,
                                               double snr_min_db, double snr_max_db, int steps,
                                               double max_etx) {
  if (steps < 2) throw std::invalid_argument("build_etx_staircase: need >= 2 steps");
  if (snr_max_db <= snr_min_db) {
    throw std::invalid_argument("build_etx_staircase: empty SNR range");
  }
  std::vector<EtxBreakpoint> table;
  table.reserve(static_cast<size_t>(steps));
  const double width = (snr_max_db - snr_min_db) / (steps - 1);
  for (int i = 0; i < steps; ++i) {
    const double snr = snr_min_db + i * width;
    // Conservative: the ETX assigned to bin [snr, snr+width) is the value at
    // the *left* edge, where ETX(SNR) is largest (ETX is non-increasing).
    table.push_back({snr, etx_from_snr(mod, snr, packet_bytes, max_etx)});
  }
  return table;
}

double etx_staircase_lookup(const std::vector<EtxBreakpoint>& table, double snr_db) {
  if (table.empty()) throw std::invalid_argument("etx_staircase_lookup: empty table");
  double value = table.front().etx;  // worst case below the lowest breakpoint
  for (const auto& bp : table) {
    if (snr_db >= bp.snr_db) {
      value = bp.etx;
    } else {
      break;
    }
  }
  return value;
}

}  // namespace wnet::channel
