#include "core/library.h"

#include <algorithm>
#include <stdexcept>

namespace wnet::archex {

const char* role_name(Role r) {
  switch (r) {
    case Role::kSensor: return "sensor";
    case Role::kRelay: return "relay";
    case Role::kSink: return "sink";
    case Role::kAnchor: return "anchor";
  }
  return "?";
}

bool Component::has_role(Role r) const {
  return std::find(roles.begin(), roles.end(), r) != roles.end();
}

int ComponentLibrary::add(Component c) {
  if (c.name.empty()) throw std::invalid_argument("ComponentLibrary: unnamed component");
  if (c.roles.empty()) throw std::invalid_argument("ComponentLibrary: component without roles");
  parts_.push_back(std::move(c));
  return static_cast<int>(parts_.size()) - 1;
}

std::vector<int> ComponentLibrary::with_role(Role r) const {
  std::vector<int> out;
  for (int i = 0; i < size(); ++i) {
    if (parts_[static_cast<size_t>(i)].has_role(r)) out.push_back(i);
  }
  return out;
}

std::optional<int> ComponentLibrary::find(const std::string& name) const {
  for (int i = 0; i < size(); ++i) {
    if (parts_[static_cast<size_t>(i)].name == name) return i;
  }
  return std::nullopt;
}

double ComponentLibrary::best_eirp_dbm(Role r) const {
  double best = -1e9;
  for (const Component& c : parts_) {
    if (c.has_role(r)) best = std::max(best, c.tx_power_dbm + c.antenna_gain_dbi);
  }
  return best;
}

ComponentLibrary make_reference_library() {
  ComponentLibrary lib;

  // Sensors are given (fixed positions, zero cost in the paper's Table 1
  // experiments); the variants differ in radio strength so sizing still has
  // a choice to make on the sensor side of each link.
  lib.add({"sensor-std", {Role::kSensor}, 0.0, 0.0, 0.0, {29.0, 24.0, 8.0, 0.004}});
  lib.add({"sensor-pa", {Role::kSensor}, 0.0, 4.5, 0.0, {34.0, 24.0, 8.0, 0.004}});

  // Relay variants: the cost / TX power / current trade-off that drives the
  // paper's $-vs-energy tension. "lp" parts draw less current but cost more.
  lib.add({"relay-basic", {Role::kRelay, Role::kAnchor}, 20.0, 0.0, 0.0,
           {29.0, 24.0, 8.0, 0.004}});
  lib.add({"relay-pa", {Role::kRelay, Role::kAnchor}, 28.0, 4.5, 0.0,
           {34.0, 24.0, 8.0, 0.004}});
  lib.add({"relay-ant", {Role::kRelay, Role::kAnchor}, 35.0, 0.0, 3.0,
           {29.0, 24.0, 8.0, 0.004}});
  lib.add({"relay-pa-ant", {Role::kRelay, Role::kAnchor}, 45.0, 4.5, 3.0,
           {34.0, 24.0, 8.0, 0.004}});
  lib.add({"relay-lp", {Role::kRelay, Role::kAnchor}, 38.0, 0.0, 0.0,
           {24.0, 19.0, 4.0, 0.001}});
  lib.add({"relay-lp-pa-ant", {Role::kRelay, Role::kAnchor}, 60.0, 4.5, 3.0,
           {27.0, 19.0, 4.0, 0.001}});

  // Base stations: mains-powered (huge effective battery is modeled by the
  // scenario, not the part), with and without a high-gain antenna.
  lib.add({"sink-std", {Role::kSink}, 80.0, 4.5, 0.0, {34.0, 24.0, 20.0, 20.0}});
  lib.add({"sink-ant", {Role::kSink}, 110.0, 4.5, 5.0, {34.0, 24.0, 20.0, 20.0}});

  return lib;
}

}  // namespace wnet::archex
