#pragma once

#include <optional>
#include <string>
#include <vector>

#include "channel/link_metrics.h"
#include "geometry/vec2.h"
#include "radio/csma.h"
#include "radio/tdma.h"

namespace wnet::archex {

/// has_path(A, B) [+ disjoint_links + max_hops]: require `replicas`
/// edge-disjoint routes from node `source` to node `dest` (paper
/// constraints (1a)-(1e)).
struct RouteRequirement {
  int source = -1;
  int dest = -1;
  int replicas = 1;           ///< number of required edge-disjoint routes
  std::optional<int> max_hops;
};

/// min_signal_to_noise / min_rss / max_bit_error_rate: link quality bound
/// applied to every active link (paper constraints (2a)-(2b)). At most one
/// of the bounds is set; SNR and BER bounds are converted to an RSS floor
/// through the noise floor and the modulation's (inverse) BER curve.
struct LinkQualityRequirement {
  std::optional<double> min_snr_db;
  std::optional<double> min_rss_dbm;
  std::optional<double> max_ber;
};

/// min_network_lifetime(years): every battery-powered node must survive at
/// least this long under the TDMA traffic induced by the routing (paper
/// constraints (3a)-(3b)).
struct LifetimeRequirement {
  double min_years = 5.0;
  double battery_mah = 3000.0;  ///< the paper's two AA cells of 1500 mAh
};

/// min_reachable_devices(N, rss*): every evaluation location must be
/// covered by at least N selected anchors with RSS >= rss* (paper
/// constraints (4a)-(4b)).
struct LocalizationRequirement {
  std::vector<geom::Vec2> eval_points;
  int min_anchors = 3;
  double min_rss_dbm = -80.0;
};

/// Weighted-sum objective (paper Sec. 2, "Cost function"). Weights the
/// user does not set default to zero.
struct Objective {
  double weight_cost = 1.0;    ///< dollar cost of selected components
  double weight_energy = 0.0;  ///< total network charge per cycle (mA*s)
  double weight_dsod = 0.0;    ///< difference-of-sum-of-distances (localization)
};

/// Physical-layer / protocol configuration shared by all constraints.
struct RadioConfig {
  enum class MacProtocol { kTdma, kCsma };

  radio::TdmaConfig tdma;  ///< timing base (slot, period, packet, bitrate)
  MacProtocol mac = MacProtocol::kTdma;
  radio::CsmaConfig csma;  ///< used when mac == kCsma
  channel::Modulation modulation = channel::Modulation::kQpsk;
  double noise_floor_dbm = -100.0;
};

/// A complete problem specification: everything the paper's pattern file
/// expresses. Produced either programmatically or by spec::parse().
struct Specification {
  std::vector<RouteRequirement> routes;
  LinkQualityRequirement link_quality;
  std::optional<LifetimeRequirement> lifetime;
  std::optional<LocalizationRequirement> localization;
  Objective objective;
  RadioConfig radio;

  /// The effective RSS floor implied by the LQ requirement (converting SNR
  /// bounds through the noise floor and BER bounds through the inverse BER
  /// curve); nullopt if no LQ bound is set.
  [[nodiscard]] std::optional<double> min_rss_dbm() const {
    if (link_quality.min_rss_dbm) return link_quality.min_rss_dbm;
    if (link_quality.min_snr_db) return *link_quality.min_snr_db + radio.noise_floor_dbm;
    if (link_quality.max_ber) {
      return channel::snr_for_ber(radio.modulation, *link_quality.max_ber) +
             radio.noise_floor_dbm;
    }
    return std::nullopt;
  }
};

}  // namespace wnet::archex
