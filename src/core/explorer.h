#pragma once

#include <utility>
#include <vector>

#include "core/encode/encoder.h"
#include "core/solution.h"
#include "milp/solver.h"

namespace wnet::archex {

/// End-to-end result of one exploration run: encode -> solve -> decode.
struct ExplorationResult {
  milp::SolveStatus status = milp::SolveStatus::kNoSolution;
  NetworkArchitecture architecture;  ///< valid when a solution exists
  double objective = 0.0;
  EncodeStats encode_stats;
  milp::SolveStats solve_stats;
  double total_time_s = 0.0;

  [[nodiscard]] bool has_solution() const {
    return status == milp::SolveStatus::kOptimal || status == milp::SolveStatus::kFeasible;
  }
};

/// The top-level design-space explorer — the ArchEx flow of the paper:
/// compile the specification to a MILP with the chosen path encoding,
/// solve, decode the optimal architecture.
class Explorer {
 public:
  Explorer(const NetworkTemplate& tmpl, const Specification& spec);

  [[nodiscard]] ExplorationResult explore(const EncoderOptions& eopts = {},
                                          const milp::SolveOptions& sopts = {}) const;

  /// Systematic K* selection (paper Sec. 4.3): explore with increasing K*
  /// until the run time exceeds `time_threshold_s` or the objective stops
  /// improving by more than `min_improvement` (relative).
  struct KStarSearchOptions {
    std::vector<int> ladder = {1, 3, 5, 10, 20};
    double time_threshold_s = 600.0;
    double min_improvement = 1e-3;
  };
  struct KStarSearchResult {
    int chosen_k = 0;
    ExplorationResult best;
    std::vector<std::pair<int, ExplorationResult>> trace;
  };
  [[nodiscard]] KStarSearchResult search_k_star(const KStarSearchOptions& kopts,
                                                EncoderOptions eopts = {},
                                                const milp::SolveOptions& sopts = {}) const;
  [[nodiscard]] KStarSearchResult search_k_star() const {
    return search_k_star(KStarSearchOptions{});
  }

 private:
  const NetworkTemplate* tmpl_;
  const Specification* spec_;
};

}  // namespace wnet::archex
