#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/encode/encoder.h"
#include "core/faults/campaign.h"
#include "core/faults/fault_model.h"
#include "core/solution.h"
#include "milp/solver.h"

namespace wnet::archex {

/// End-to-end result of one exploration run: encode -> solve -> decode.
struct ExplorationResult {
  milp::SolveStatus status = milp::SolveStatus::kNoSolution;
  NetworkArchitecture architecture;  ///< valid when a solution exists
  double objective = 0.0;
  EncodeStats encode_stats;
  milp::SolveStats solve_stats;
  double total_time_s = 0.0;

  /// Why the run ended (anytime contract): kCompleted for a natural finish,
  /// otherwise the stop reason from whichever stage stopped first (an
  /// aborted encode never reaches the solver). `bound` and `gap` carry the
  /// matching optimality certificate: -inf/+inf when the run stopped before
  /// the solver proved anything.
  util::exec::TerminationReason termination = util::exec::TerminationReason::kCompleted;
  double bound = -milp::kInf;
  double gap = milp::kInf;

  [[nodiscard]] bool has_solution() const {
    return status == milp::SolveStatus::kOptimal || status == milp::SolveStatus::kFeasible;
  }

  /// Machine-readable run telemetry: status, objective and encode sizes
  /// wrapped around milp::SolveStats::to_json() (nodes, LP iterations,
  /// warm-start hit rate, propagation fixings, incumbent timeline). This is
  /// the JSON the `solver_profile` bench and the `--solver-json` flags emit.
  [[nodiscard]] std::string solver_json() const;
};

/// The top-level design-space explorer — the ArchEx flow of the paper:
/// compile the specification to a MILP with the chosen path encoding,
/// solve, decode the optimal architecture.
class Explorer {
 public:
  Explorer(const NetworkTemplate& tmpl, const Specification& spec);

  [[nodiscard]] const NetworkTemplate& tmpl() const { return *tmpl_; }
  [[nodiscard]] const Specification& spec() const { return *spec_; }

  [[nodiscard]] ExplorationResult explore(const EncoderOptions& eopts = {},
                                          const milp::SolveOptions& sopts = {}) const;

  /// Encode-only entry point: the compiled problem without solving it. The
  /// meta layer (tabu search, portfolio, sensitivity) encodes once and then
  /// runs many solves against the same EncodedProblem.
  [[nodiscard]] EncodedProblem encode(const EncoderOptions& eopts = {}) const;

  /// Systematic K* selection (paper Sec. 4.3): explore with increasing K*
  /// until the run time exceeds `time_threshold_s` or the objective stops
  /// improving by more than `min_improvement` (relative).
  struct KStarSearchOptions {
    std::vector<int> ladder = {1, 3, 5, 10, 20};
    double time_threshold_s = 600.0;
    double min_improvement = 1e-3;
    /// Worker threads: > 1 evaluates every ladder rung concurrently, then
    /// replays the serial selection scan (same improvement rule, same
    /// tie-break order) over the per-rung results — chosen_k, best and the
    /// trace come out identical to a serial run. The serial path evaluates
    /// rungs lazily and keeps its early exit.
    int threads = 1;
    /// Serial path only: carry one IncrementalEncoder session across the
    /// ladder. Each rung delta-extends the previous model (resumable Yen,
    /// appended selectors/rows) instead of re-encoding, installs the
    /// previous rung's incumbent as a MIP start, and — because a successful
    /// delta makes the feasible set a superset of the previous rung's — its
    /// objective as a primal cutoff. chosen_k and objectives match the
    /// non-incremental scan; tie-broken architectures may differ. Ignored
    /// when threads > 1 (speculative rungs are independent by design).
    bool incremental = true;
  };
  struct KStarSearchResult {
    int chosen_k = 0;
    ExplorationResult best;
    std::vector<std::pair<int, ExplorationResult>> trace;
    /// kCompleted when the ladder ran to its natural stop rule; kDeadline /
    /// kCancelled / kNodeLimit when `sopts.exec` (the request control the
    /// scan checkpoints on) cut the search short. `best` and `trace` remain
    /// valid partial results either way.
    util::exec::TerminationReason termination = util::exec::TerminationReason::kCompleted;
  };
  [[nodiscard]] KStarSearchResult search_k_star(const KStarSearchOptions& kopts,
                                                EncoderOptions eopts = {},
                                                const milp::SolveOptions& sopts = {}) const;
  [[nodiscard]] KStarSearchResult search_k_star() const {
    return search_k_star(KStarSearchOptions{});
  }

  /// Incumbent carried across the rungs of one incremental ladder: the
  /// previous rung's assignment (extended over appended variables as a MIP
  /// start) and its objective (installed as a primal cutoff). Starts empty;
  /// explore_rung updates it whenever a rung finds a solution.
  struct RungCarry {
    std::vector<double> x;
    double objective = milp::kInf;
  };

  /// One rung of an incremental K* ladder against a caller-owned session:
  /// delta-extends (or builds) the session's model to k_star = k, installs
  /// the carried incumbent as MIP start + cutoff (falling back to the
  /// fixed-routing heuristic when the carry does not extend), solves, and
  /// updates `carry` on success. This is the building block search_k_star's
  /// serial incremental path and the solve daemon's session cache share:
  /// the daemon keeps the session (and the carry) alive across requests so
  /// repeated or extended ladders resume instead of re-deriving.
  ///
  /// The session must have been constructed against this explorer's
  /// template and specification; its options govern lazy separation and
  /// encoding mode. Respects `sopts.exec` for cancellation/deadlines — on a
  /// stopped encode the rung reports the reason and never solves.
  [[nodiscard]] ExplorationResult explore_rung(IncrementalEncoder& session, int k,
                                               RungCarry& carry,
                                               const milp::SolveOptions& sopts) const;

  /// Counterexample-guided robust exploration (core/faults/robust.cpp).
  struct RobustExploreOptions {
    EncoderOptions encoder;
    milp::SolveOptions solver;
    faults::FaultModelConfig faults;

    /// Repair-loop budget: the loop stops after this many encode/solve/
    /// campaign iterations even if counterexamples remain.
    int max_repair_iterations = 8;
    /// Wall-clock budget across ALL iterations (encode + solve + campaign).
    /// Solver time limits shrink to the remaining budget; once it is spent
    /// the loop returns the best architecture found so far.
    double time_budget_s = 300.0;
    /// How far the repair loop may raise a route's replica count above the
    /// specification when hardening alone is infeasible.
    int max_extra_replicas = 1;
    /// Worker threads for the per-iteration fault campaigns (scenario
    /// scoring via faults::CampaignRunner) and for candidate generation
    /// inside the encoder. Reports and repair trajectories are identical
    /// for every value; <= 1 is fully serial.
    int threads = 1;
    /// Carry one IncrementalEncoder session across repair iterations:
    /// kAvoid hardenings append rows to the standing model in place, while
    /// kMargin hardenings and replica raises transparently rebuild. No
    /// primal cutoff is carried — a hardened optimum may legitimately be
    /// worse than its predecessor.
    bool incremental = true;
  };

  struct RobustExplorationResult {
    /// Best architecture found, ranked by campaign pass rate then objective.
    ExplorationResult best;
    /// Campaign report for `best` (machine-readable via to_json()).
    faults::CampaignReport report;
    int iterations = 0;
    bool robust = false;  ///< true iff `best` passes every scenario
    int hardenings_applied = 0;
    std::vector<int> raised_routes;  ///< routes whose N_rep the loop raised
    double total_time_s = 0.0;
    /// Why the repair loop returned. kCompleted covers the natural endings
    /// (campaign passed, iteration cap, nothing left to raise); kDeadline /
    /// kCancelled / kNodeLimit mean `ropts.solver.exec` (tightened by
    /// time_budget_s) stopped it — `best` and `report` remain the valid
    /// partial result found so far.
    util::exec::TerminationReason termination = util::exec::TerminationReason::kCompleted;
  };

  /// Explore, replay a deterministic fault-injection campaign against the
  /// result, turn every failure into encoder hardening constraints (avoid
  /// failed element sets, demand fading margins), and re-solve with a warm
  /// restart — iterating until the campaign passes or budgets run out.
  /// Degrades gracefully: always returns the best architecture seen.
  [[nodiscard]] RobustExplorationResult explore_robust(
      const RobustExploreOptions& ropts) const;
  [[nodiscard]] RobustExplorationResult explore_robust() const {
    return explore_robust(RobustExploreOptions{});
  }

 private:
  const NetworkTemplate* tmpl_;
  const Specification* spec_;
};

/// Fixes every candidate selector to the `picked` assignment (exactly one
/// candidate per (route, replica) group) and briefly solves the remaining
/// sizing-only MILP. Building block for warm starts: both the fixed-routing
/// primal heuristic and explore_robust's repair restarts go through here.
/// Returns the full variable assignment, or empty if the restricted model
/// has no solution.
[[nodiscard]] std::vector<double> solve_with_fixed_selectors(
    const EncodedProblem& ep,
    const std::map<std::pair<int, int>, const CandidatePath*>& picked,
    const milp::SolveOptions& sopts);

}  // namespace wnet::archex
