#include "core/network_template.h"

#include <stdexcept>

namespace wnet::archex {

NetworkTemplate::NetworkTemplate(const channel::PropagationModel& model,
                                 const ComponentLibrary& library)
    : model_(&model), library_(&library) {}

int NetworkTemplate::add_node(TemplateNode n) {
  if (n.name.empty()) throw std::invalid_argument("NetworkTemplate: unnamed node");
  if (find_node(n.name)) throw std::invalid_argument("NetworkTemplate: duplicate node " + n.name);
  if (n.fixed_component && (*n.fixed_component < 0 || *n.fixed_component >= library_->size())) {
    throw std::out_of_range("NetworkTemplate: fixed component out of range");
  }
  nodes_.push_back(std::move(n));
  cache_valid_ = false;
  return static_cast<int>(nodes_.size()) - 1;
}

std::optional<int> NetworkTemplate::find_node(const std::string& name) const {
  for (int i = 0; i < num_nodes(); ++i) {
    if (nodes_[static_cast<size_t>(i)].name == name) return i;
  }
  return std::nullopt;
}

std::vector<int> NetworkTemplate::nodes_with_role(Role r) const {
  std::vector<int> out;
  for (int i = 0; i < num_nodes(); ++i) {
    if (nodes_[static_cast<size_t>(i)].role == r) out.push_back(i);
  }
  return out;
}

void NetworkTemplate::ensure_pl_cache() const {
  if (cache_valid_.load(std::memory_order_acquire)) return;
  const std::lock_guard<std::mutex> lock(cache_mu_);
  if (cache_valid_.load(std::memory_order_relaxed)) return;
  const size_t n = nodes_.size();
  pl_cache_.assign(n * n, 0.0);
  // One batched model call per source row over the j > i suffix (the
  // positions are gathered once into SoA arrays); bit-identical to the old
  // pairwise loop — see PropagationModel::path_loss_batch.
  std::vector<double> xs(n), ys(n);
  for (size_t i = 0; i < n; ++i) {
    xs[i] = nodes_[i].position.x;
    ys[i] = nodes_[i].position.y;
  }
  std::vector<double> row(n);
  for (size_t i = 0; i + 1 < n; ++i) {
    const int len = static_cast<int>(n - i - 1);
    model_->path_loss_batch(nodes_[i].position, xs.data() + i + 1, ys.data() + i + 1,
                            len, row.data());
    for (size_t j = i + 1; j < n; ++j) {
      const double pl = row[j - i - 1];
      pl_cache_[i * n + j] = pl;
      pl_cache_[j * n + i] = pl;
    }
  }
  cache_valid_.store(true, std::memory_order_release);
}

double NetworkTemplate::path_loss_db(int i, int j) const {
  if (i < 0 || j < 0 || i >= num_nodes() || j >= num_nodes()) {
    throw std::out_of_range("NetworkTemplate::path_loss_db");
  }
  ensure_pl_cache();
  return pl_cache_[static_cast<size_t>(i) * nodes_.size() + static_cast<size_t>(j)];
}

double NetworkTemplate::best_rss_dbm(int i, int j) const {
  const TemplateNode& tx = node(i);
  const TemplateNode& rx = node(j);
  double tx_eirp;
  double rx_gain;
  if (tx.fixed_component) {
    const Component& c = library_->at(*tx.fixed_component);
    tx_eirp = c.tx_power_dbm + c.antenna_gain_dbi;
  } else {
    tx_eirp = library_->best_eirp_dbm(tx.role);
  }
  if (rx.fixed_component) {
    rx_gain = library_->at(*rx.fixed_component).antenna_gain_dbi;
  } else {
    rx_gain = 0.0;
    for (const Component& c : library_->parts()) {
      if (c.has_role(rx.role)) rx_gain = std::max(rx_gain, c.antenna_gain_dbi);
    }
  }
  return tx_eirp + rx_gain - path_loss_db(i, j);
}

graph::Digraph NetworkTemplate::build_graph() const {
  graph::Digraph g(num_nodes());
  for (int i = 0; i < num_nodes(); ++i) {
    for (int j = 0; j < num_nodes(); ++j) {
      if (i == j) continue;
      // Data flows out of sensors and into sinks, never the reverse.
      if (node(j).role == Role::kSensor) continue;
      if (node(i).role == Role::kSink) continue;
      if (best_rss_dbm(i, j) < cutoff_rss_dbm_) continue;
      g.add_edge(i, j, path_loss_db(i, j));
    }
  }
  return g;
}

}  // namespace wnet::archex
