#include "core/explorer.h"

#include <cmath>
#include <map>
#include <memory>
#include <set>

#include "core/encode/separation.h"
#include "graph/digraph.h"
#include "util/obs/json.h"
#include "util/obs/trace.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace wnet::archex {

Explorer::Explorer(const NetworkTemplate& tmpl, const Specification& spec)
    : tmpl_(&tmpl), spec_(&spec) {}

std::string ExplorationResult::solver_json() const {
  // The objective is non-finite on infeasible/unbounded runs; the obs
  // writer turns it into null + an "objective_finite": false sidecar
  // instead of emitting invalid bare inf/nan.
  util::obs::JsonWriter w;
  w.begin_object();
  w.field("status", milp::to_string(status));
  w.number_field("objective", objective);
  w.number_field("total_time_s", total_time_s);
  w.field("termination", util::exec::to_string(termination));
  w.number_field("bound", bound);
  w.number_field("gap", gap);
  w.key("encode").begin_object();
  w.field("vars", encode_stats.num_vars);
  w.field("constrs", encode_stats.num_constrs);
  w.field("nonzeros", encode_stats.nonzeros);
  w.field("candidate_paths", encode_stats.candidate_paths);
  w.field("lazy_rows_omitted", encode_stats.lazy_rows_omitted);
  w.number_field("encode_time_s", encode_stats.encode_time_s);
  w.field("reused_candidates", encode_stats.reused_candidates);
  w.number_field("delta_encode_time_s", encode_stats.delta_encode_time_s);
  w.field("termination", util::exec::to_string(encode_stats.termination));
  w.end_object();
  w.key("solver").raw(solve_stats.to_json());
  w.end_object();
  return w.take();
}

namespace {

/// Fixed-routing warm start (the paper's K* = 1 regime as a primal
/// heuristic): greedily select the lowest-path-loss candidate per replica
/// group, respecting edge-disjointness within a route, fix those selectors,
/// and solve the remaining sizing-only MILP briefly. Its solution seeds the
/// main search as an incumbent. Returns empty on any failure.
std::vector<double> fixed_routing_start(const EncodedProblem& ep,
                                        const milp::SolveOptions& sopts) {
  if (ep.candidates.empty()) return {};

  std::map<std::pair<int, int>, const CandidatePath*> picked;
  std::set<std::pair<int, int>> groups;
  for (const auto& c : ep.candidates) groups.insert({c.route_index, c.replica});

  for (const auto& g : groups) {
    const CandidatePath* best = nullptr;
    for (const auto& c : ep.candidates) {
      if (c.route_index != g.first || c.replica != g.second) continue;
      bool clash = false;
      for (const auto& [og, oc] : picked) {
        if (og.first == g.first && og.second != g.second &&
            graph::shared_edges(c.path, oc->path) > 0) {
          clash = true;
          break;
        }
      }
      if (clash) continue;
      if (best == nullptr || c.path.cost < best->path.cost) best = &c;
    }
    if (best == nullptr) return {};  // no disjoint pick: skip the heuristic
    picked[g] = best;
  }

  return solve_with_fixed_selectors(ep, picked, sopts);
}

}  // namespace

std::vector<double> solve_with_fixed_selectors(
    const EncodedProblem& ep,
    const std::map<std::pair<int, int>, const CandidatePath*>& picked,
    const milp::SolveOptions& sopts) {
  milp::Model restricted = ep.model;
  for (const auto& c : ep.candidates) {
    const auto it = picked.find({c.route_index, c.replica});
    const bool on = it != picked.end() && it->second == &c;
    restricted.set_bounds(c.selector, on ? 1.0 : 0.0, on ? 1.0 : 0.0);
  }
  milp::SolveOptions wopts = sopts;
  // The probe gets a slice of the solve budget, but never more than the
  // caller's own limit or what is actually left on the request deadline —
  // the old unconditional 5s floor could hand an almost-exhausted run a
  // fresh five seconds of warm-start work.
  const double slice = std::min(30.0, std::max(5.0, 0.2 * sopts.time_limit_s));
  const double cap = std::min(sopts.time_limit_s, std::max(0.0, sopts.exec.deadline.remaining_s()));
  wopts.time_limit_s = std::min(slice, cap);
  wopts.rel_gap = std::max(sopts.rel_gap, 0.01);
  wopts.mip_start.clear();
  // The caller's cutoff describes the FULL model's incumbent, but this
  // probe solves a restriction whose optimum may legitimately tie it (the
  // restriction that produced the incumbent) or sit above it. Keeping the
  // cutoff here used to flip such probes to kNoSolution and silently drop
  // the warm start; the restricted solve must run uncut.
  wopts.cutoff = milp::kInf;
  // Likewise the bound-feedback hook: a restricted model's dual bound is
  // not a bound on the full problem, so it must never be published as one.
  wopts.on_bound_improved = nullptr;
  const milp::MipResult wres = milp::solve(restricted, wopts);
  return wres.has_solution() ? wres.x : std::vector<double>{};
}

EncodedProblem Explorer::encode(const EncoderOptions& eopts) const {
  Encoder enc(*tmpl_, *spec_, eopts);
  return enc.encode();
}

ExplorationResult Explorer::explore(const EncoderOptions& eopts,
                                    const milp::SolveOptions& sopts) const {
  util::Stopwatch clock;
  ExplorationResult out;

  Encoder enc(*tmpl_, *spec_, eopts);
  EncodedProblem ep = enc.encode();
  out.encode_stats = ep.stats;
  if (ep.stats.termination != util::exec::TerminationReason::kCompleted) {
    // The encode aborted: its partial model must not be solved. Report the
    // stop reason with the empty anytime certificate.
    out.termination = ep.stats.termination;
    out.total_time_s = clock.seconds();
    return out;
  }

  milp::SolveOptions main_opts = sopts;
  if (eopts.lazy_separation) {
    // The omitted row families come back as separation callbacks. They are
    // installed before the warm-start probe runs so the probe's restricted
    // solve (same var ids) is gated by the same lazy constraints and never
    // hands back a lazily-infeasible seed.
    LazySeparation(*tmpl_, ep).install(main_opts);
  }
  if (main_opts.mip_start.empty()) {
    main_opts.mip_start = fixed_routing_start(ep, main_opts);
  }
  const milp::MipResult res = milp::solve(ep.model, main_opts);
  out.status = res.status;
  out.solve_stats = res.stats;
  out.termination = res.stats.termination;
  out.bound = res.stats.bound;
  out.gap = res.stats.gap;
  if (res.has_solution()) {
    out.objective = res.objective;
    out.architecture = decode_solution(ep, *tmpl_, *spec_, res.x);
  }
  out.total_time_s = clock.seconds();
  return out;
}

ExplorationResult Explorer::explore_rung(IncrementalEncoder& session, int k, RungCarry& carry,
                                         const milp::SolveOptions& sopts) const {
  util::Stopwatch rung_clock;
  util::obs::ScopedSpan rung_span("kstar/rung", "explore");
  rung_span.arg("k", k);
  ExplorationResult er;
  EncodedProblem& ep = session.encode_k(k);
  er.encode_stats = ep.stats;
  if (ep.stats.termination != util::exec::TerminationReason::kCompleted) {
    // Stopped (or aborted) encode: report the reason, never solve.
    er.termination = ep.stats.termination;
    er.total_time_s = rung_clock.seconds();
    return er;
  }
  milp::SolveOptions so = sopts;
  if (session.options().lazy_separation) {
    // Rebuilt per rung: a delta extend grows the candidate list, and the
    // separator snapshot must cover every selector of the current model.
    LazySeparation(*tmpl_, ep).install(so);
  }
  if (so.mip_start.empty()) {
    std::vector<double> ext = session.extend_assignment(carry.x);
    if (!ext.empty()) {
      so.mip_start = std::move(ext);
      so.cutoff = carry.objective;
    } else {
      so.mip_start = fixed_routing_start(ep, so);
    }
  }
  const milp::MipResult res = milp::solve(ep.model, so);
  er.status = res.status;
  er.solve_stats = res.stats;
  er.termination = res.stats.termination;
  er.bound = res.stats.bound;
  er.gap = res.stats.gap;
  if (res.has_solution()) {
    er.objective = res.objective;
    er.architecture = decode_solution(ep, *tmpl_, *spec_, res.x);
    carry.x = res.x;
    carry.objective = res.objective;
  }
  er.total_time_s = rung_clock.seconds();
  return er;
}

Explorer::KStarSearchResult Explorer::search_k_star(const KStarSearchOptions& kopts,
                                                    EncoderOptions eopts,
                                                    const milp::SolveOptions& sopts) const {
  KStarSearchResult out;
  eopts.mode = EncoderOptions::PathMode::kApprox;
  const int n = static_cast<int>(kopts.ladder.size());

  // Parallel mode speculatively evaluates every rung up front (each rung
  // is an independent encode + solve); the serial selection scan below
  // then consumes rung i from `evaluated[i]` instead of exploring lazily.
  // Selection order, improvement rule and tie-breaks are shared with the
  // serial path verbatim, so the winner is identical for any thread count
  // — parallelism buys wall clock at the price of evaluating rungs a
  // serial run would have skipped after its early exit.
  std::vector<ExplorationResult> evaluated;
  if (kopts.threads > 1) {
    const util::ParallelExecutor exec(kopts.threads);
    evaluated = exec.map<ExplorationResult>(n, [&](int i) {
      EncoderOptions eo = eopts;
      eo.k_star = kopts.ladder[static_cast<size_t>(i)];
      // Speculative rungs run on worker threads: strip the checkpoint
      // injector (poll-only), per the exec determinism contract.
      eo.exec = eo.exec.worker_view();
      milp::SolveOptions so = sopts;
      so.exec = so.exec.worker_view();
      util::obs::ScopedSpan rung_span("kstar/rung", "explore");
      rung_span.arg("k", eo.k_star);
      return explore(eo, so);
    });
  }

  // Serial incremental mode: one encoding session spans the ladder, so a
  // rung delta-extends the previous model instead of re-running Yen and
  // rebuilding. Cross-solve reuse rides along: the previous incumbent,
  // zero-extended over the appended variables, seeds the solve, and its
  // objective becomes a primal cutoff (sound because a successful delta
  // grows the feasible set — the optimum can only improve).
  std::unique_ptr<IncrementalEncoder> session;
  if (kopts.threads <= 1 && kopts.incremental) {
    session = std::make_unique<IncrementalEncoder>(*tmpl_, *spec_, eopts);
  }
  RungCarry carry;

  double best_obj = milp::kInf;
  for (int i = 0; i < n; ++i) {
    // Scan-boundary checkpoint on the serial spine (rung solves themselves
    // poll the same token): a stop keeps everything scanned so far.
    util::exec::TerminationReason scan_why = util::exec::TerminationReason::kCompleted;
    if (sopts.exec.checkpoint(&scan_why)) {
      out.termination = scan_why;
      break;
    }
    const int k = kopts.ladder[static_cast<size_t>(i)];
    ExplorationResult r;
    if (kopts.threads > 1) {
      r = std::move(evaluated[static_cast<size_t>(i)]);
    } else if (session) {
      r = explore_rung(*session, k, carry, sopts);
    } else {
      eopts.k_star = k;
      util::obs::ScopedSpan rung_span("kstar/rung", "explore");
      rung_span.arg("k", k);
      r = explore(eopts, sopts);
    }
    out.trace.emplace_back(k, r);
    const util::exec::TerminationReason rung_term = r.termination;
    const bool improved =
        r.has_solution() &&
        (best_obj == milp::kInf ||
         r.objective < best_obj - kopts.min_improvement * std::max(1.0, std::abs(best_obj)));
    if (improved) {
      best_obj = r.objective;
      out.chosen_k = k;
      out.best = std::move(r);
    }
    // A rung cut short by the request control ends the ladder with that
    // reason — later rungs would be cut the same way. This outranks the
    // natural stop rules below, which describe a *finished* search.
    if (rung_term == util::exec::TerminationReason::kDeadline ||
        rung_term == util::exec::TerminationReason::kCancelled ||
        rung_term == util::exec::TerminationReason::kNodeLimit) {
      out.termination = rung_term;
      break;
    }
    if (!improved && out.chosen_k != 0) {
      break;  // no meaningful improvement: stop the ladder (Sec. 4.3 rule)
    }
    if (out.trace.back().second.total_time_s > kopts.time_threshold_s) break;
  }
  return out;
}

}  // namespace wnet::archex
