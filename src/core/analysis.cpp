#include "core/analysis.h"

#include <algorithm>
#include <sstream>

#include "milp/model.h"
#include "util/table.h"

namespace wnet::archex {

ArchitectureStats analyze_architecture(const NetworkArchitecture& arch,
                                       const NetworkTemplate& tmpl,
                                       const Specification& spec) {
  ArchitectureStats st;
  st.total_cost_usd = arch.total_cost_usd;

  for (const auto& r : arch.routes) ++st.hop_histogram[r.path.hops()];

  const double floor = spec.min_rss_dbm().value_or(0.0);
  double margin_sum = 0.0;
  st.min_link_margin_db = milp::kInf;
  for (const auto& l : arch.links) {
    const double margin = l.rss_dbm - floor;
    margin_sum += margin;
    st.min_link_margin_db = std::min(st.min_link_margin_db, margin);
  }
  st.mean_link_margin_db = arch.links.empty() ? 0.0 : margin_sum / arch.links.size();
  if (arch.links.empty()) st.min_link_margin_db = 0.0;

  for (const auto& d : arch.nodes) {
    ++st.component_mix[tmpl.library().at(d.component).name];
    if (tmpl.node(d.node).kind == NodeKind::kCandidate &&
        tmpl.node(d.node).role == Role::kRelay) {
      ++st.relays_deployed;
    }
  }

  // Traffic concentration: TX packets per cycle per node.
  std::map<int, int> tx_load;
  for (const auto& r : arch.routes) {
    const auto& ns = r.path.nodes;
    for (size_t k = 0; k + 1 < ns.size(); ++k) ++tx_load[ns[k]];
  }
  for (const auto& [node, load] : tx_load) {
    if (load > st.max_tx_load_packets) {
      st.max_tx_load_packets = load;
      st.bottleneck_node = node;
    }
  }
  return st;
}

std::string to_string(const ArchitectureStats& st) {
  std::ostringstream os;
  os << "stats: $" << util::fmt_double(st.total_cost_usd, 0) << ", " << st.relays_deployed
     << " relays deployed\n";
  os << "  hops:";
  for (const auto& [hops, count] : st.hop_histogram) os << ' ' << hops << "x" << count;
  os << "\n  link margin over LQ floor: mean " << util::fmt_double(st.mean_link_margin_db, 1)
     << " dB, min " << util::fmt_double(st.min_link_margin_db, 1) << " dB\n";
  os << "  components:";
  for (const auto& [name, count] : st.component_mix) os << ' ' << name << "x" << count;
  os << "\n  busiest node: " << st.bottleneck_node << " (" << st.max_tx_load_packets
     << " TX packets/cycle)\n";
  return os.str();
}

}  // namespace wnet::archex
