#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/network_template.h"
#include "core/requirements.h"
#include "core/solution.h"

namespace wnet::archex::faults {

/// What a scenario breaks. Node failures and link cuts model hardware death
/// and persistent obstructions; fading scenarios freeze one Monte-Carlo
/// shadowing realization of the whole floor (channel::ShadowingModel).
enum class FaultKind { kNodeFailure, kLinkCut, kFading };

[[nodiscard]] const char* to_string(FaultKind k);

/// One deterministic failure scenario to replay against an architecture.
struct FaultScenario {
  int id = 0;
  FaultKind kind = FaultKind::kNodeFailure;

  /// kNodeFailure: template nodes that die simultaneously.
  std::vector<int> failed_nodes;
  /// kLinkCut: undirected links (normalized lo<hi endpoint pairs) that die.
  std::vector<std::pair<int, int>> cut_links;
  /// kFading: frozen shadowing realization (seed + sigma in dB).
  uint64_t fading_seed = 0;
  double fading_sigma_db = 0.0;

  [[nodiscard]] std::string describe(const NetworkTemplate& tmpl) const;
};

/// Campaign composition knobs. Everything downstream of `seed` is
/// deterministic: same seed + same architecture => identical scenario list.
struct FaultModelConfig {
  uint64_t seed = 1;

  /// Generate all j-simultaneous relay-failure scenarios for j = 1..k
  /// (sampled once a level exceeds `max_scenarios_per_k`).
  int max_simultaneous_failures = 2;
  int max_scenarios_per_k = 128;

  /// Cut every distinct link used by a synthesized route (capped).
  bool link_cuts = true;
  int max_link_scenarios = 128;

  /// Monte-Carlo shadowing draws (skipped when the spec has no LQ floor —
  /// without a floor a fade cannot break any requirement).
  int fading_draws = 100;
  double fading_sigma_db = 4.0;
};

/// Generates failure scenarios targeting a synthesized architecture: the
/// fault candidates are the relays it actually deployed and the links its
/// routes actually use — the elements whose loss can break a requirement.
/// Fixed infrastructure (sensors, sinks) is assumed fault-free, matching
/// the paper's framing of redundancy as relay-level resiliency.
class FaultModel {
 public:
  FaultModel(const NetworkTemplate& tmpl, const Specification& spec,
             FaultModelConfig cfg = {});

  [[nodiscard]] std::vector<FaultScenario> scenarios(const NetworkArchitecture& arch) const;

  [[nodiscard]] const FaultModelConfig& config() const { return cfg_; }

 private:
  const NetworkTemplate* tmpl_;
  const Specification* spec_;
  FaultModelConfig cfg_;
};

}  // namespace wnet::archex::faults
