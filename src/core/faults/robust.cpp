// Counterexample-guided robust exploration: Explorer::explore_robust.
//
// The loop alternates synthesis and falsification. Each iteration encodes
// the (possibly hardened) specification, solves with a repair warm start
// seeded from the previous architecture, replays the deterministic fault
// campaign against the decoded result, and folds every failure back into
// the encoder as hardening constraints:
//
//   node failure / link cut that broke route r  ->  kAvoid(r, failed set)
//   fading draw that sank links below the floor ->  kMargin(links, shortfall)
//
// When the hardened model turns infeasible (no candidate can dodge the
// failed set), the loop raises the broken routes' replica counts — bounded
// by max_extra_replicas — and retries. It stops on a fully passing
// campaign, on budget exhaustion, or when counterexamples stop being new,
// and always returns the best architecture seen (pass rate, then cost).

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "core/encode/separation.h"
#include "core/explorer.h"
#include "core/faults/campaign.h"
#include "core/faults/fault_model.h"
#include "graph/connectivity.h"
#include "graph/digraph.h"
#include "util/obs/trace.h"
#include "util/stopwatch.h"

namespace wnet::archex {

namespace {

bool path_avoids(const graph::Path& p, const HardeningConstraint& h) {
  for (int v : h.nodes) {
    if (graph::path_uses_node(p, v)) return false;
  }
  for (const auto& [a, b] : h.links) {
    if (graph::path_uses_link(p, a, b)) return false;
  }
  return true;
}

/// Stable identity of a hardening, for the cross-iteration dedupe set.
std::string hardening_key(const HardeningConstraint& h) {
  std::ostringstream os;
  os << (h.kind == HardeningConstraint::Kind::kAvoid ? "A" : "M") << h.route_index << ":";
  for (int v : h.nodes) os << "n" << v;
  for (const auto& [a, b] : h.links) os << "l" << a << "-" << b;
  return os.str();
}

/// Turns one campaign's failures into hardening constraints. Structural
/// failures become per-route avoidance demands; fading failures become
/// link margins sized to the observed shortfall plus 1 dB of slack (the
/// encoder keeps the max margin per link, so repeats only tighten).
std::vector<HardeningConstraint> derive_hardenings(const faults::CampaignReport& report) {
  std::vector<HardeningConstraint> out;
  for (const faults::ScenarioOutcome* o : report.failures()) {
    if (o->scenario.kind == faults::FaultKind::kFading) {
      if (o->weak_links.empty()) continue;
      HardeningConstraint h;
      h.kind = HardeningConstraint::Kind::kMargin;
      h.links = o->weak_links;
      h.margin_db = std::ceil(o->worst_shortfall_db) + 1.0;
      out.push_back(std::move(h));
      continue;
    }
    for (int ri : o->broken_routes) {
      HardeningConstraint h;
      h.kind = HardeningConstraint::Kind::kAvoid;
      h.route_index = ri;
      h.nodes = o->scenario.failed_nodes;
      h.links = o->scenario.cut_links;
      out.push_back(std::move(h));
    }
  }
  return out;
}

/// Repair warm start: map the previous architecture's routes onto the new
/// candidate sets by path equality, fill gaps (new replicas, regenerated
/// candidates) greedily, then swap replicas until every kAvoid hardening
/// has a compliant pick — keeping replicas of a route edge-disjoint
/// throughout. Returns empty (no warm start) if the mapping cannot be
/// repaired; the main solve then simply starts cold.
std::vector<double> repair_start(const EncodedProblem& ep, const NetworkArchitecture& prev,
                                 const std::vector<HardeningConstraint>& hardening,
                                 const milp::SolveOptions& sopts) {
  if (ep.candidates.empty()) return {};

  std::map<std::pair<int, int>, std::vector<const CandidatePath*>> groups;
  for (const auto& c : ep.candidates) groups[{c.route_index, c.replica}].push_back(&c);

  std::map<std::pair<int, int>, const graph::Path*> prev_paths;
  for (const auto& r : prev.routes) prev_paths[{r.route_index, r.replica}] = &r.path;

  std::map<std::pair<int, int>, const CandidatePath*> picked;
  const auto disjoint_with_route = [&](const std::pair<int, int>& g,
                                       const CandidatePath* c) {
    for (const auto& [og, oc] : picked) {
      if (og.first == g.first && og.second != g.second &&
          graph::shared_edges(c->path, oc->path) > 0) {
        return false;
      }
    }
    return true;
  };

  // Pass 1: keep every previous route that still exists verbatim among the
  // candidates (hardening may have regenerated or filtered the sets).
  for (const auto& [g, cands] : groups) {
    const auto it = prev_paths.find(g);
    if (it == prev_paths.end()) continue;
    for (const CandidatePath* c : cands) {
      if (c->path.nodes == it->second->nodes) {
        picked[g] = c;
        break;
      }
    }
  }

  // Pass 2: fill unpicked groups greedily by cost, preferring candidates
  // that satisfy every avoidance hardening on their route.
  for (const auto& [g, cands] : groups) {
    if (picked.count(g)) continue;
    const CandidatePath* best = nullptr;
    bool best_avoids = false;
    for (const CandidatePath* c : cands) {
      if (!disjoint_with_route(g, c)) continue;
      bool avoids = true;
      for (const auto& h : hardening) {
        if (h.kind == HardeningConstraint::Kind::kAvoid && h.route_index == g.first &&
            !path_avoids(c->path, h)) {
          avoids = false;
          break;
        }
      }
      if (best == nullptr || (avoids && !best_avoids) ||
          (avoids == best_avoids && c->path.cost < best->path.cost)) {
        best = c;
        best_avoids = avoids;
      }
    }
    if (best == nullptr) return {};
    picked[g] = best;
  }

  // Pass 3: every avoidance hardening needs >= 1 compliant replica on its
  // route. Swap the cheapest offender to a compliant disjoint candidate.
  for (const auto& h : hardening) {
    if (h.kind != HardeningConstraint::Kind::kAvoid) continue;
    bool satisfied = false;
    for (const auto& [g, c] : picked) {
      if (g.first == h.route_index && path_avoids(c->path, h)) {
        satisfied = true;
        break;
      }
    }
    if (satisfied) continue;
    bool repaired = false;
    for (auto& [g, c] : picked) {
      if (g.first != h.route_index) continue;
      const CandidatePath* old = c;
      c = nullptr;  // exclude self from the disjointness check
      const CandidatePath* swap = nullptr;
      for (const CandidatePath* cand : groups.at(g)) {
        if (!path_avoids(cand->path, h) || !disjoint_with_route(g, cand)) continue;
        if (swap == nullptr || cand->path.cost < swap->path.cost) swap = cand;
      }
      c = swap != nullptr ? swap : old;
      if (swap != nullptr) {
        repaired = true;
        break;
      }
    }
    if (!repaired) return {};  // irreparable by swapping: go cold
  }

  std::map<std::pair<int, int>, const CandidatePath*> final_picks;
  for (const auto& [g, c] : picked) {
    if (c != nullptr) final_picks[g] = c;
  }
  return solve_with_fixed_selectors(ep, final_picks, sopts);
}

}  // namespace

Explorer::RobustExplorationResult Explorer::explore_robust(
    const RobustExploreOptions& ropts) const {
  util::Stopwatch clock;
  RobustExplorationResult out;

  // One request control for the whole loop: the caller's exec, its deadline
  // tightened to time_budget_s from entry. The serial spine (this loop, the
  // encoder phases, the solver node loop) checkpoints on it; the campaign's
  // scenario workers get a poll-only view.
  using util::exec::TerminationReason;
  const util::exec::ExecControl ec = ropts.solver.exec.tightened(ropts.time_budget_s);

  EncoderOptions eopts = ropts.encoder;
  eopts.threads = std::max(eopts.threads, ropts.threads);
  eopts.exec = ec;
  Specification spec = *spec_;  // mutable: repair may raise replica counts
  std::vector<int> extra(spec.routes.size(), 0);
  const faults::FaultModel fmodel(*tmpl_, spec, ropts.faults);
  faults::CampaignOptions copts;
  copts.threads = ropts.threads;
  copts.exec = ec;

  std::set<std::string> seen;
  for (const auto& h : eopts.hardening) seen.insert(hardening_key(h));

  // Incremental mode carries one encoding session across iterations: the
  // common repair step — fold kAvoid hardenings back in — appends rows to
  // the standing model instead of re-running Yen and rebuilding. kMargin
  // hardenings (which retune the LQ prefilter) and replica raises
  // invalidate the session; it rebuilds transparently on the next encode.
  std::unique_ptr<IncrementalEncoder> session;
  if (ropts.incremental && eopts.mode == EncoderOptions::PathMode::kApprox) {
    session = std::make_unique<IncrementalEncoder>(*tmpl_, spec, eopts);
  }

  // Raises N_rep on every listed route still under the extra-replica cap;
  // returns false when no route can be raised any further.
  const auto raise_replicas = [&](const std::set<int>& routes) {
    bool any = false;
    for (int ri : routes) {
      if (ri < 0 || ri >= static_cast<int>(spec.routes.size())) continue;
      if (extra[static_cast<size_t>(ri)] >= ropts.max_extra_replicas) continue;
      ++extra[static_cast<size_t>(ri)];
      ++spec.routes[static_cast<size_t>(ri)].replicas;
      out.raised_routes.push_back(ri);
      any = true;
    }
    if (any && session) session->invalidate();  // spec changed out of band
    return any;
  };

  double best_rate = -1.0;
  NetworkArchitecture prev_arch;
  bool have_prev = false;
  std::set<int> prev_broken;

  for (int iter = 0; iter < ropts.max_repair_iterations; ++iter) {
    // Spine checkpoint per repair iteration. The first iteration still runs
    // on a merely-expired deadline (a tiny budget still produces one
    // attempt, whose solver stops on its own deadline), but a cancelled
    // token stops even before it.
    TerminationReason why = TerminationReason::kCompleted;
    if (ec.checkpoint(&why) && (iter > 0 || why == TerminationReason::kCancelled)) {
      out.termination = why;
      break;
    }
    const double remaining = std::max(0.0, ec.deadline.remaining_s());
    out.iterations = iter + 1;
    util::obs::ScopedSpan iter_span("robust/iteration", "robust");
    iter_span.arg("iter", iter);
    iter_span.arg("hardenings", static_cast<double>(eopts.hardening.size()));

    milp::SolveOptions sopts = ropts.solver;
    sopts.exec = ec;
    // True remaining budget, not the old 1s floor that granted time past
    // exhaustion; milp::solve itself reports kDeadline at zero.
    sopts.time_limit_s = std::min(sopts.time_limit_s, remaining);

    EncodedProblem fresh_ep;
    if (!session) fresh_ep = Encoder(*tmpl_, spec, eopts).encode();
    EncodedProblem& ep = session ? session->encode_k(eopts.k_star) : fresh_ep;
    if (ep.stats.termination != TerminationReason::kCompleted) {
      // Aborted encode: the partial model must not be solved.
      out.termination = ep.stats.termination;
      break;
    }
    if (eopts.lazy_separation) {
      // Rebuilt per iteration: hardening folds and replica raises change
      // the candidate set, and the separator snapshot must match the model
      // being solved. Installed before the repair probe so its restricted
      // solve is gated by the same lazy constraints.
      LazySeparation(*tmpl_, ep).install(sopts);
    }
    if (have_prev && sopts.mip_start.empty()) {
      sopts.mip_start = repair_start(ep, prev_arch, eopts.hardening, sopts);
    }

    const util::Stopwatch iter_clock;
    const milp::MipResult res = milp::solve(ep.model, sopts);

    if (!res.has_solution() && (res.stats.termination == TerminationReason::kDeadline ||
                                res.stats.termination == TerminationReason::kCancelled ||
                                res.stats.termination == TerminationReason::kNodeLimit)) {
      // The solver was stopped, not defeated: an empty result here says
      // nothing about feasibility, so do NOT escalate replicas off it.
      out.termination = res.stats.termination;
      break;
    }
    if (!res.has_solution()) {
      // Hardened model is infeasible: no candidate set can dodge the failed
      // elements at the current redundancy. Raise N_rep on the hardened
      // routes and re-encode; if nothing can be raised, settle for the
      // best architecture found so far.
      std::set<int> targets;
      for (const auto& h : eopts.hardening) {
        if (h.kind == HardeningConstraint::Kind::kAvoid) targets.insert(h.route_index);
      }
      if (!raise_replicas(targets)) break;
      continue;
    }

    ExplorationResult er;
    er.status = res.status;
    er.encode_stats = ep.stats;
    er.solve_stats = res.stats;
    er.termination = res.stats.termination;
    er.bound = res.stats.bound;
    er.gap = res.stats.gap;
    er.objective = res.objective;
    er.architecture = decode_solution(ep, *tmpl_, spec, res.x);
    er.total_time_s = iter_clock.seconds();

    const auto report = faults::CampaignRunner(*tmpl_, spec, copts)
                            .run(er.architecture, fmodel.scenarios(er.architecture));
    const double rate = report.pass_rate();
    if (rate > best_rate + 1e-12 ||
        (rate > best_rate - 1e-12 && out.best.has_solution() &&
         er.objective < out.best.objective - 1e-9) ||
        !out.best.has_solution()) {
      best_rate = rate;
      out.report = report;
      prev_arch = er.architecture;
      out.best = std::move(er);
      have_prev = true;
    }
    if (report.termination != TerminationReason::kCompleted) {
      // Stopped campaign: unreplayed scenarios produce no failures, so the
      // hardening derivation below would see "nothing left to fix" and end
      // the loop as if it had converged. Surface the real reason instead.
      out.termination = report.termination;
      break;
    }
    if (report.all_passed()) {
      out.robust = true;
      break;
    }

    // Fold fresh counterexamples into the encoder; when every failure has
    // already been hardened against (the model simply cannot satisfy
    // them), escalate to more replicas on the still-broken routes.
    std::set<int> broken;
    for (const faults::ScenarioOutcome* o : report.failures()) {
      broken.insert(o->broken_routes.begin(), o->broken_routes.end());
    }
    std::vector<HardeningConstraint> fresh;
    for (auto& h : derive_hardenings(report)) {
      if (seen.insert(hardening_key(h)).second) fresh.push_back(std::move(h));
    }
    if (fresh.empty()) {
      if (!raise_replicas(broken)) break;
      prev_broken = std::move(broken);
      continue;
    }
    out.hardenings_applied += static_cast<int>(fresh.size());
    if (session) session->append_hardenings(fresh);  // kAvoid appends in place
    for (auto& h : fresh) eopts.hardening.push_back(std::move(h));

    // A route that keeps failing across consecutive iterations is chasing
    // its tail — each repair just shifts the single point of failure
    // somewhere new. Avoidance alone will not converge there; add
    // redundancy right away instead of exhausting the iteration budget.
    std::set<int> repeat_broken;
    for (int ri : broken) {
      if (prev_broken.count(ri) != 0) repeat_broken.insert(ri);
    }
    if (!repeat_broken.empty()) raise_replicas(repeat_broken);
    prev_broken = std::move(broken);
  }

  out.total_time_s = clock.seconds();
  return out;
}

}  // namespace wnet::archex
