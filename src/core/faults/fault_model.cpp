#include "core/faults/fault_model.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "util/rng.h"

namespace wnet::archex::faults {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kNodeFailure: return "node";
    case FaultKind::kLinkCut: return "link";
    case FaultKind::kFading: return "fading";
  }
  return "unknown";
}

std::string FaultScenario::describe(const NetworkTemplate& tmpl) const {
  std::ostringstream os;
  switch (kind) {
    case FaultKind::kNodeFailure: {
      os << "fail";
      for (int v : failed_nodes) os << " " << tmpl.node(v).name;
      break;
    }
    case FaultKind::kLinkCut: {
      os << "cut";
      for (const auto& [a, b] : cut_links) {
        os << " " << tmpl.node(a).name << "--" << tmpl.node(b).name;
      }
      break;
    }
    case FaultKind::kFading:
      os << "fading sigma=" << fading_sigma_db << "dB seed=" << fading_seed;
      break;
  }
  return os.str();
}

namespace {

/// Number of k-subsets of n, saturating well above any scenario cap.
long long binomial_capped(int n, int k, long long cap) {
  long long c = 1;
  for (int i = 0; i < k; ++i) {
    c = c * (n - i) / (i + 1);
    if (c > cap) return cap + 1;
  }
  return c;
}

/// All (or, above the cap, a seeded sample of) k-subsets of `pool`,
/// emitted in deterministic order.
std::vector<std::vector<int>> k_subsets(const std::vector<int>& pool, int k, int cap,
                                        uint64_t seed) {
  std::vector<std::vector<int>> out;
  const int n = static_cast<int>(pool.size());
  if (k <= 0 || k > n || cap <= 0) return out;

  if (binomial_capped(n, k, cap) <= cap) {
    // Lexicographic enumeration over index combinations.
    std::vector<int> idx(static_cast<size_t>(k));
    for (int i = 0; i < k; ++i) idx[static_cast<size_t>(i)] = i;
    while (true) {
      std::vector<int> subset;
      subset.reserve(static_cast<size_t>(k));
      for (int i : idx) subset.push_back(pool[static_cast<size_t>(i)]);
      out.push_back(std::move(subset));
      int pos = k - 1;
      while (pos >= 0 && idx[static_cast<size_t>(pos)] == n - k + pos) --pos;
      if (pos < 0) break;
      ++idx[static_cast<size_t>(pos)];
      for (int i = pos + 1; i < k; ++i) {
        idx[static_cast<size_t>(i)] = idx[static_cast<size_t>(i - 1)] + 1;
      }
    }
    return out;
  }

  // Too many to enumerate: draw `cap` distinct subsets with a seeded RNG.
  util::Rng rng(seed);
  std::set<std::vector<int>> seen;
  int guard = 0;
  while (static_cast<int>(out.size()) < cap && ++guard < cap * 64) {
    std::set<int> pick;
    while (static_cast<int>(pick.size()) < k) {
      pick.insert(pool[static_cast<size_t>(rng.uniform_int(0, n - 1))]);
    }
    std::vector<int> subset(pick.begin(), pick.end());
    if (seen.insert(subset).second) out.push_back(std::move(subset));
  }
  return out;
}

}  // namespace

FaultModel::FaultModel(const NetworkTemplate& tmpl, const Specification& spec,
                       FaultModelConfig cfg)
    : tmpl_(&tmpl), spec_(&spec), cfg_(cfg) {}

std::vector<FaultScenario> FaultModel::scenarios(const NetworkArchitecture& arch) const {
  std::vector<FaultScenario> out;
  int next_id = 0;

  // Deployed candidate relays, sorted for deterministic enumeration.
  std::vector<int> relays;
  for (const auto& d : arch.nodes) {
    if (tmpl_->node(d.node).kind == NodeKind::kCandidate) relays.push_back(d.node);
  }
  std::sort(relays.begin(), relays.end());
  relays.erase(std::unique(relays.begin(), relays.end()), relays.end());

  for (int k = 1; k <= cfg_.max_simultaneous_failures; ++k) {
    const uint64_t level_seed = util::splitmix64(cfg_.seed ^ static_cast<uint64_t>(k));
    for (auto& subset : k_subsets(relays, k, cfg_.max_scenarios_per_k, level_seed)) {
      FaultScenario sc;
      sc.id = next_id++;
      sc.kind = FaultKind::kNodeFailure;
      sc.failed_nodes = std::move(subset);
      out.push_back(std::move(sc));
    }
  }

  if (cfg_.link_cuts) {
    std::set<std::pair<int, int>> links;
    for (const auto& r : arch.routes) {
      const auto& ns = r.path.nodes;
      for (size_t i = 0; i + 1 < ns.size(); ++i) {
        links.insert({std::min(ns[i], ns[i + 1]), std::max(ns[i], ns[i + 1])});
      }
    }
    int emitted = 0;
    for (const auto& l : links) {
      if (emitted++ >= cfg_.max_link_scenarios) break;
      FaultScenario sc;
      sc.id = next_id++;
      sc.kind = FaultKind::kLinkCut;
      sc.cut_links.push_back(l);
      out.push_back(std::move(sc));
    }
  }

  // Fading can only break a requirement when an RSS floor exists to dip
  // below, so skip the draws entirely otherwise.
  if (cfg_.fading_draws > 0 && cfg_.fading_sigma_db > 0.0 && spec_->min_rss_dbm()) {
    // Each draw's realization is keyed on (campaign seed, draw index) via a
    // double splitmix64 — no shared RNG stream, so scenario outcomes do not
    // depend on the order (or the thread) in which they are evaluated, and
    // distinct campaign seeds can never alias onto shifted copies of the
    // same draw sequence (the old additive form `seed + C * (d+1)` did).
    const uint64_t stream = util::splitmix64(cfg_.seed);
    for (int d = 0; d < cfg_.fading_draws; ++d) {
      FaultScenario sc;
      sc.id = next_id++;
      sc.kind = FaultKind::kFading;
      sc.fading_seed = util::splitmix64(stream ^ static_cast<uint64_t>(d));
      sc.fading_sigma_db = cfg_.fading_sigma_db;
      out.push_back(std::move(sc));
    }
  }
  return out;
}

}  // namespace wnet::archex::faults
