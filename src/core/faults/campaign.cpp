#include "core/faults/campaign.h"

#include <algorithm>
#include <memory>

#include "channel/propagation.h"
#include "graph/connectivity.h"
#include "util/obs/json.h"
#include "util/obs/trace.h"
#include "util/thread_pool.h"

namespace wnet::archex::faults {

namespace {

/// Realized RSS of one route hop under an arbitrary propagation model
/// (mirrors decode_solution's link budget, with the model overridable so
/// fading scenarios can swap in a ShadowingModel).
double hop_rss_dbm(const NetworkArchitecture& arch, const NetworkTemplate& tmpl,
                   const channel::PropagationModel& model, int from, int to) {
  double rss = -model.path_loss_db(tmpl.node(from).position, tmpl.node(to).position);
  const int ct = arch.component_of(from);
  const int cr = arch.component_of(to);
  if (ct >= 0) {
    const Component& c = tmpl.library().at(ct);
    rss += c.tx_power_dbm + c.antenna_gain_dbi;
  }
  if (cr >= 0) rss += tmpl.library().at(cr).antenna_gain_dbi;
  return rss;
}

bool replica_survives_nodes(const ChosenRoute& r, const std::vector<int>& failed) {
  for (int v : failed) {
    if (graph::path_uses_node(r.path, v)) return false;
  }
  return true;
}

bool replica_survives_cuts(const ChosenRoute& r,
                           const std::vector<std::pair<int, int>>& cuts) {
  for (const auto& [a, b] : cuts) {
    if (graph::path_uses_link(r.path, a, b)) return false;
  }
  return true;
}

/// Fading survival: every hop of the replica must still clear the LQ floor
/// under the scenario's frozen shadowing realization. Reports the links
/// that dipped below and the deepest shortfall for the repair loop.
bool replica_survives_fading(const ChosenRoute& r, const NetworkArchitecture& arch,
                             const NetworkTemplate& tmpl,
                             const channel::PropagationModel& faded, double rss_floor,
                             ScenarioOutcome& out) {
  bool ok = true;
  const auto& ns = r.path.nodes;
  for (size_t i = 0; i + 1 < ns.size(); ++i) {
    const double rss = hop_rss_dbm(arch, tmpl, faded, ns[i], ns[i + 1]);
    if (rss < rss_floor - 1e-9) {
      ok = false;
      out.weak_links.emplace_back(std::min(ns[i], ns[i + 1]), std::max(ns[i], ns[i + 1]));
      out.worst_shortfall_db = std::max(out.worst_shortfall_db, rss_floor - rss);
    }
  }
  return ok;
}

/// One scenario's verdict: a pure function of (architecture, scenario) —
/// fading realizations are frozen by the scenario's own seed, so outcomes
/// are independent of evaluation order and safe to compute concurrently.
ScenarioOutcome evaluate_scenario(const NetworkArchitecture& arch, const NetworkTemplate& tmpl,
                                  const Specification& spec, const FaultScenario& sc) {
  ScenarioOutcome out;
  out.scenario = sc;
  const auto rss_floor = spec.min_rss_dbm();

  // Fading scenarios share one frozen realization across all routes.
  std::unique_ptr<channel::ShadowingModel> faded;
  if (sc.kind == FaultKind::kFading && rss_floor) {
    faded = std::make_unique<channel::ShadowingModel>(tmpl.channel_model(), sc.fading_sigma_db,
                                                      sc.fading_seed);
  }

  for (size_t ri = 0; ri < spec.routes.size(); ++ri) {
    bool any_exists = false;
    bool any_survives = false;
    for (const auto& r : arch.routes) {
      if (r.route_index != static_cast<int>(ri)) continue;
      any_exists = true;
      bool ok = true;
      switch (sc.kind) {
        case FaultKind::kNodeFailure:
          ok = replica_survives_nodes(r, sc.failed_nodes);
          break;
        case FaultKind::kLinkCut:
          ok = replica_survives_cuts(r, sc.cut_links);
          break;
        case FaultKind::kFading:
          ok = faded == nullptr ||
               replica_survives_fading(r, arch, tmpl, *faded, *rss_floor, out);
          break;
      }
      if (ok) {
        any_survives = true;
        // Keep scanning fading replicas so weak_links records every
        // offender; for structural faults the first survivor settles it.
        if (sc.kind != FaultKind::kFading) break;
      }
    }
    if (any_exists && !any_survives) out.broken_routes.push_back(static_cast<int>(ri));
  }

  out.passed = out.broken_routes.empty();
  if (out.passed) {
    // Weak links on routes that still had a surviving replica are not
    // counterexamples; drop them so reports stay actionable.
    out.weak_links.clear();
    out.worst_shortfall_db = 0.0;
  } else {
    std::sort(out.weak_links.begin(), out.weak_links.end());
    out.weak_links.erase(std::unique(out.weak_links.begin(), out.weak_links.end()),
                         out.weak_links.end());
  }
  return out;
}

}  // namespace

int CampaignReport::evaluated() const {
  int n = 0;
  for (const auto& o : outcomes) n += o.evaluated ? 1 : 0;
  return n;
}

int CampaignReport::passed() const {
  int n = 0;
  for (const auto& o : outcomes) n += (o.evaluated && o.passed) ? 1 : 0;
  return n;
}

std::vector<const ScenarioOutcome*> CampaignReport::failures() const {
  std::vector<const ScenarioOutcome*> out;
  for (const auto& o : outcomes) {
    if (o.evaluated && !o.passed) out.push_back(&o);
  }
  return out;
}

std::vector<int> CampaignReport::broken_per_route(int num_routes) const {
  std::vector<int> counts(static_cast<size_t>(std::max(0, num_routes)), 0);
  for (const auto& o : outcomes) {
    for (int ri : o.broken_routes) {
      if (ri >= 0 && ri < num_routes) ++counts[static_cast<size_t>(ri)];
    }
  }
  return counts;
}

std::string CampaignReport::to_json() const {
  int num_routes = 0;
  for (const auto& o : outcomes) {
    for (int ri : o.broken_routes) num_routes = std::max(num_routes, ri + 1);
  }

  util::obs::JsonWriter w;
  w.begin_object();
  w.field("total", total());
  w.field("evaluated", evaluated());
  w.field("passed", passed());
  w.field("failed", failed());
  w.field("termination", util::exec::to_string(termination));

  w.key("by_kind").begin_object();
  for (FaultKind k : {FaultKind::kNodeFailure, FaultKind::kLinkCut, FaultKind::kFading}) {
    int tot = 0, pass = 0;
    for (const auto& o : outcomes) {
      if (o.scenario.kind != k) continue;
      ++tot;
      pass += (o.evaluated && o.passed) ? 1 : 0;
    }
    if (tot == 0) continue;
    w.key(to_string(k)).begin_object();
    w.field("total", tot);
    w.field("passed", pass);
    w.end_object();
  }
  w.end_object();

  w.key("broken_per_route").begin_array();
  for (int count : broken_per_route(num_routes)) w.value(count);
  w.end_array();

  w.key("failures").begin_array();
  for (const auto& o : outcomes) {
    if (o.passed || !o.evaluated) continue;
    w.begin_object();
    w.field("id", o.scenario.id);
    w.field("kind", to_string(o.scenario.kind));
    if (!o.scenario.failed_nodes.empty()) {
      w.key("nodes").begin_array();
      for (int v : o.scenario.failed_nodes) w.value(v);
      w.end_array();
    }
    if (!o.scenario.cut_links.empty()) {
      w.key("links").begin_array();
      for (const auto& [a, b] : o.scenario.cut_links) {
        w.begin_array().value(a).value(b).end_array();
      }
      w.end_array();
    }
    if (o.scenario.kind == FaultKind::kFading) {
      w.field("fading_seed", o.scenario.fading_seed);
      w.number_field("worst_shortfall_db", o.worst_shortfall_db);
    }
    w.key("broken_routes").begin_array();
    for (int ri : o.broken_routes) w.value(ri);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

CampaignRunner::CampaignRunner(const NetworkTemplate& tmpl, const Specification& spec,
                               CampaignOptions opts)
    : tmpl_(&tmpl), spec_(&spec), opts_(opts) {}

CampaignReport CampaignRunner::run(const NetworkArchitecture& arch,
                                   const std::vector<FaultScenario>& scenarios) const {
  CampaignReport rep;
  util::obs::ScopedSpan span("faults/campaign", "faults");
  span.arg("scenarios", static_cast<double>(scenarios.size()));
  // Workers poll a stripped view: a stop yields unevaluated placeholder
  // outcomes (scenario kept, verdict unknown) instead of silent gaps.
  const util::exec::ExecControl ctl = opts_.exec.worker_view();
  const util::ParallelExecutor exec(opts_.threads);
  rep.outcomes = exec.map<ScenarioOutcome>(
      static_cast<int>(scenarios.size()), [&](int i) {
        if (ctl.stopped()) {
          ScenarioOutcome skipped;
          skipped.scenario = scenarios[static_cast<size_t>(i)];
          skipped.passed = false;
          skipped.evaluated = false;
          return skipped;
        }
        return evaluate_scenario(arch, *tmpl_, *spec_, scenarios[static_cast<size_t>(i)]);
      });
  // One spine checkpoint per campaign, after the join: records why the run
  // (or the request around it) stopped.
  util::exec::TerminationReason why = util::exec::TerminationReason::kCompleted;
  if (opts_.exec.checkpoint(&why)) rep.termination = why;
  return rep;
}

CampaignReport run_campaign(const NetworkArchitecture& arch, const NetworkTemplate& tmpl,
                            const Specification& spec,
                            const std::vector<FaultScenario>& scenarios) {
  return CampaignRunner(tmpl, spec).run(arch, scenarios);
}

}  // namespace wnet::archex::faults
