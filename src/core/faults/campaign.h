#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/faults/fault_model.h"
#include "core/network_template.h"
#include "core/requirements.h"
#include "core/solution.h"
#include "util/exec/exec.h"

namespace wnet::archex::faults {

/// Verdict of one scenario replay. A route *requirement* survives a
/// scenario if at least one of its synthesized replicas stays functional —
/// the same semantics analyze_resilience has always used, generalized from
/// single relay failures to arbitrary fault sets.
struct ScenarioOutcome {
  FaultScenario scenario;
  bool passed = true;
  /// False when the campaign stopped (deadline/cancellation) before this
  /// scenario was replayed: its verdict is unknown, and it counts as
  /// neither passed nor failed. `passed` is false for such outcomes.
  bool evaluated = true;
  /// Requirement indices with no surviving replica under this scenario.
  std::vector<int> broken_routes;
  /// Fading failures only: route links that dipped below the LQ floor,
  /// and the deepest shortfall (dB) observed among them. These are the
  /// counterexample the repair loop turns into margin hardenings.
  std::vector<std::pair<int, int>> weak_links;
  double worst_shortfall_db = 0.0;
};

/// Aggregate result of an injection campaign over one architecture.
struct CampaignReport {
  std::vector<ScenarioOutcome> outcomes;

  /// Why the campaign returned; on anything but kCompleted the report is a
  /// valid partial result whose unevaluated outcomes are marked as such.
  util::exec::TerminationReason termination = util::exec::TerminationReason::kCompleted;

  [[nodiscard]] int total() const { return static_cast<int>(outcomes.size()); }
  [[nodiscard]] int evaluated() const;  ///< scenarios actually replayed
  [[nodiscard]] int passed() const;     ///< evaluated and survived
  [[nodiscard]] int failed() const { return evaluated() - passed(); }
  /// Only a fully evaluated campaign can certify robustness.
  [[nodiscard]] bool all_passed() const {
    return evaluated() == total() && passed() == total();
  }
  /// Unevaluated scenarios count against the rate (conservative): a stopped
  /// campaign certifies only what it actually replayed.
  [[nodiscard]] double pass_rate() const {
    return total() == 0 ? 1.0 : static_cast<double>(passed()) / total();
  }
  [[nodiscard]] std::vector<const ScenarioOutcome*> failures() const;

  /// Scenarios broken per route requirement (index -> count).
  [[nodiscard]] std::vector<int> broken_per_route(int num_routes) const;

  /// Machine-readable report: totals, per-kind and per-requirement
  /// breakdowns, and the full failure list with the failed element sets.
  [[nodiscard]] std::string to_json() const;
};

/// Knobs of the campaign replay engine itself (scenario *content* lives in
/// FaultModelConfig). `threads <= 1` is the serial path.
struct CampaignOptions {
  int threads = 1;  ///< worker count; <= 1 replays scenarios inline
  /// Request-level execution control. Scenario workers poll a worker_view()
  /// copy — a stop marks remaining scenarios unevaluated instead of
  /// replaying them — and the runner checkpoints once per run() on the
  /// serial spine, recording the reason on CampaignReport::termination.
  util::exec::ExecControl exec;
};

/// Replays fault scenarios against an architecture and scores survival of
/// each route requirement. Purely analytical (no solver); cost is
/// O(scenarios x route links), and scenarios are independent of each other
/// — each one is a pure function of (architecture, scenario) — so the
/// runner scores them across a worker pool and merges outcomes by scenario
/// index. The report is bit-identical for every thread count.
class CampaignRunner {
 public:
  CampaignRunner(const NetworkTemplate& tmpl, const Specification& spec,
                 CampaignOptions opts = {});

  [[nodiscard]] CampaignReport run(const NetworkArchitecture& arch,
                                   const std::vector<FaultScenario>& scenarios) const;

  [[nodiscard]] const CampaignOptions& options() const { return opts_; }

 private:
  const NetworkTemplate* tmpl_;
  const Specification* spec_;
  CampaignOptions opts_;
};

/// Serial convenience wrapper around CampaignRunner.
[[nodiscard]] CampaignReport run_campaign(const NetworkArchitecture& arch,
                                          const NetworkTemplate& tmpl,
                                          const Specification& spec,
                                          const std::vector<FaultScenario>& scenarios);

}  // namespace wnet::archex::faults
