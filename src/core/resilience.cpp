#include "core/resilience.h"

#include <algorithm>
#include <set>

namespace wnet::archex {

ResilienceReport analyze_resilience(const NetworkArchitecture& arch,
                                    const NetworkTemplate& tmpl, const Specification& spec) {
  ResilienceReport rep;

  // Deployed relays (candidate nodes only; fixed infrastructure is assumed
  // fault-free).
  std::vector<int> relays;
  for (const auto& d : arch.nodes) {
    if (tmpl.node(d.node).kind == NodeKind::kCandidate) relays.push_back(d.node);
  }

  std::set<int> fragile;
  std::set<int> critical;
  for (int failed : relays) {
    for (size_t ri = 0; ri < spec.routes.size(); ++ri) {
      bool any_survives = false;
      bool any_exists = false;
      for (const auto& r : arch.routes) {
        if (r.route_index != static_cast<int>(ri)) continue;
        any_exists = true;
        const auto& ns = r.path.nodes;
        if (std::find(ns.begin(), ns.end(), failed) == ns.end()) {
          any_survives = true;
          break;
        }
      }
      if (any_exists && !any_survives) {
        fragile.insert(static_cast<int>(ri));
        critical.insert(failed);
      }
    }
  }

  rep.critical_relays.assign(critical.begin(), critical.end());
  rep.fragile_routes.assign(fragile.begin(), fragile.end());
  for (size_t ri = 0; ri < spec.routes.size(); ++ri) {
    if (fragile.count(static_cast<int>(ri)) == 0) {
      rep.resilient_routes.push_back(static_cast<int>(ri));
    }
  }
  return rep;
}

}  // namespace wnet::archex
