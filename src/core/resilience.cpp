#include "core/resilience.h"

#include <set>

#include "core/faults/campaign.h"
#include "core/faults/fault_model.h"

namespace wnet::archex {

ResilienceReport analyze_resilience(const NetworkArchitecture& arch,
                                    const NetworkTemplate& tmpl, const Specification& spec) {
  // The classic single-failure sweep is now one (exhaustive, k=1,
  // nodes-only) configuration of the general fault-injection campaign.
  faults::FaultModelConfig cfg;
  cfg.max_simultaneous_failures = 1;
  cfg.max_scenarios_per_k = tmpl.num_nodes();  // enumerate every deployed relay
  cfg.link_cuts = false;
  cfg.fading_draws = 0;
  const faults::FaultModel model(tmpl, spec, cfg);
  const auto report = faults::run_campaign(arch, tmpl, spec, model.scenarios(arch));

  ResilienceReport rep;
  std::set<int> critical;
  std::set<int> fragile;
  for (const auto& o : report.outcomes) {
    if (o.passed) continue;
    critical.insert(o.scenario.failed_nodes.at(0));
    fragile.insert(o.broken_routes.begin(), o.broken_routes.end());
  }
  rep.critical_relays.assign(critical.begin(), critical.end());
  rep.fragile_routes.assign(fragile.begin(), fragile.end());
  for (size_t ri = 0; ri < spec.routes.size(); ++ri) {
    if (fragile.count(static_cast<int>(ri)) == 0) {
      rep.resilient_routes.push_back(static_cast<int>(ri));
    }
  }
  return rep;
}

}  // namespace wnet::archex
