#pragma once

#include <string>

#include "core/network_template.h"
#include "core/requirements.h"
#include "core/solution.h"
#include "geometry/floorplan.h"

namespace wnet::archex {

/// Human-readable architecture summary (deployed nodes with components,
/// routes, headline metrics) for examples and logs.
[[nodiscard]] std::string describe(const NetworkArchitecture& arch, const NetworkTemplate& tmpl);

/// Renders a Fig. 1-style plot: the floor plan, every template node
/// (sensors green, sinks red, candidates hollow), the deployed nodes
/// (filled, sized by component strength) and the active links. Evaluation
/// points, when present in the spec, are drawn as small crosses.
[[nodiscard]] std::string render_svg(const NetworkArchitecture& arch, const NetworkTemplate& tmpl,
                                     const geom::FloorPlan& plan, const Specification& spec);

/// Renders just the template (Fig. 1a): fixed nodes and candidate sites.
[[nodiscard]] std::string render_template_svg(const NetworkTemplate& tmpl,
                                              const geom::FloorPlan& plan,
                                              const Specification& spec);

}  // namespace wnet::archex
