#include "core/render.h"

#include <sstream>

#include "geometry/svg.h"
#include "util/table.h"

namespace wnet::archex {

namespace {

const char* node_color(Role r) {
  switch (r) {
    case Role::kSensor: return "#2e8b57";
    case Role::kSink: return "#c0392b";
    case Role::kRelay: return "#2c5aa0";
    case Role::kAnchor: return "#8e44ad";
  }
  return "black";
}

void draw_template_nodes(geom::SvgCanvas& canvas, const NetworkTemplate& tmpl,
                         const NetworkArchitecture* arch) {
  for (int i = 0; i < tmpl.num_nodes(); ++i) {
    const auto& nd = tmpl.node(i);
    const bool used = arch != nullptr && arch->node_is_used(i);
    if (nd.kind == NodeKind::kFixed) {
      if (nd.role == Role::kSink) {
        canvas.draw_square(nd.position, 5, node_color(nd.role));
      } else {
        canvas.draw_circle(nd.position, 4, node_color(nd.role));
      }
    } else if (used) {
      canvas.draw_circle(nd.position, 4, node_color(nd.role));
    } else {
      canvas.draw_circle(nd.position, 2, "white", "#aaaaaa");
    }
  }
}

void draw_eval_points(geom::SvgCanvas& canvas, const Specification& spec) {
  if (!spec.localization) return;
  for (const auto& p : spec.localization->eval_points) {
    canvas.draw_line({p.x - 0.5, p.y}, {p.x + 0.5, p.y}, "#e67e22", 1.0);
    canvas.draw_line({p.x, p.y - 0.5}, {p.x, p.y + 0.5}, "#e67e22", 1.0);
  }
}

}  // namespace

std::string describe(const NetworkArchitecture& arch, const NetworkTemplate& tmpl) {
  std::ostringstream os;
  os << "architecture: " << arch.nodes.size() << " nodes, " << arch.links.size() << " links, "
     << arch.routes.size() << " routes\n";
  os << "  cost: $" << arch.total_cost_usd;
  if (arch.min_lifetime_years > 0.0 && arch.min_lifetime_years < 1e9) {
    os << ", lifetime (min/avg): " << util::fmt_double(arch.min_lifetime_years, 2) << "/"
       << util::fmt_double(arch.avg_lifetime_years, 2) << " y";
  }
  if (arch.avg_reachable_anchors > 0) {
    os << ", avg reachable anchors: " << util::fmt_double(arch.avg_reachable_anchors, 2);
  }
  os << "\n  deployed:";
  for (const auto& d : arch.nodes) {
    if (tmpl.node(d.node).kind == NodeKind::kFixed) continue;
    os << ' ' << tmpl.node(d.node).name << '=' << tmpl.library().at(d.component).name;
  }
  os << "\n  routes:\n";
  for (const auto& r : arch.routes) {
    os << "    [" << r.route_index << '.' << r.replica << "]";
    for (int v : r.path.nodes) os << ' ' << tmpl.node(v).name;
    os << '\n';
  }
  return os.str();
}

std::string render_svg(const NetworkArchitecture& arch, const NetworkTemplate& tmpl,
                       const geom::FloorPlan& plan, const Specification& spec) {
  geom::SvgCanvas canvas(plan.width(), plan.height());
  canvas.draw_floorplan(plan);
  draw_eval_points(canvas, spec);
  for (const auto& l : arch.links) {
    canvas.draw_line(tmpl.node(l.from).position, tmpl.node(l.to).position, "#2c5aa0", 1.2);
  }
  draw_template_nodes(canvas, tmpl, &arch);
  return canvas.to_string();
}

std::string render_template_svg(const NetworkTemplate& tmpl, const geom::FloorPlan& plan,
                                const Specification& spec) {
  geom::SvgCanvas canvas(plan.width(), plan.height());
  canvas.draw_floorplan(plan);
  draw_eval_points(canvas, spec);
  draw_template_nodes(canvas, tmpl, nullptr);
  return canvas.to_string();
}

}  // namespace wnet::archex
