#include "core/meta/sensitivity.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <utility>

#include "core/encode/separation.h"
#include "milp/tol.h"
#include "util/obs/json.h"
#include "util/thread_pool.h"

namespace wnet::archex::meta {

namespace {

using Clock = std::chrono::steady_clock;

struct Perturbation {
  std::string parameter;
  double delta = 0.0;
  double value = 0.0;
};

/// Applies one perturbation to a copy of the base spec.
Specification perturbed_spec(const Specification& base, const Perturbation& p) {
  Specification s = base;
  if (p.parameter == "min_snr_db") {
    s.link_quality.min_snr_db = p.value;
  } else if (p.parameter == "min_rss_dbm") {
    s.link_quality.min_rss_dbm = p.value;
  } else if (p.parameter == "min_years") {
    s.lifetime->min_years = p.value;
  }
  return s;
}

/// Matches the base architecture's chosen paths into the perturbed
/// encoding's candidate groups (by node sequence). Returns the fixed
/// assignment, or an empty map when any group has no matching candidate.
std::map<std::pair<int, int>, const CandidatePath*> match_base_routes(
    const EncodedProblem& ep, const NetworkArchitecture& base) {
  std::map<std::pair<int, int>, const CandidatePath*> picked;
  std::map<std::pair<int, int>, const graph::Path*> want;
  for (const ChosenRoute& r : base.routes) want[{r.route_index, r.replica}] = &r.path;

  std::map<std::pair<int, int>, bool> groups;
  for (const CandidatePath& c : ep.candidates) {
    const std::pair<int, int> key{c.route_index, c.replica};
    groups[key] = true;
    const auto it = want.find(key);
    if (it != want.end() && picked.count(key) == 0 && c.path.nodes == it->second->nodes) {
      picked[key] = &c;
    }
  }
  if (picked.size() != groups.size()) picked.clear();
  return picked;
}

}  // namespace

SensitivityReport explore_sensitivity(const NetworkTemplate& tmpl, const Specification& spec,
                                      const SensitivityOptions& opts) {
  const auto t0 = Clock::now();
  SensitivityReport rep;

  const Explorer ex(tmpl, spec);
  rep.base = ex.explore(opts.encoder, opts.solver);

  // Deterministic point list: link-quality deltas first (in option order),
  // then lifetime deltas.
  std::vector<Perturbation> points;
  if (spec.link_quality.min_snr_db) {
    for (const double d : opts.snr_deltas_db) {
      points.push_back({"min_snr_db", d, *spec.link_quality.min_snr_db + d});
    }
  } else if (spec.link_quality.min_rss_dbm) {
    for (const double d : opts.snr_deltas_db) {
      points.push_back({"min_rss_dbm", d, *spec.link_quality.min_rss_dbm + d});
    }
  }
  if (spec.lifetime) {
    for (const double d : opts.lifetime_deltas_years) {
      points.push_back({"min_years", d, spec.lifetime->min_years + d});
    }
  }

  util::exec::TerminationReason why = util::exec::TerminationReason::kCompleted;
  if (opts.solver.exec.checkpoint(&why)) {
    rep.termination = why;
    rep.total_time_s = std::chrono::duration<double>(Clock::now() - t0).count();
    return rep;
  }

  const util::ParallelExecutor pexec(opts.threads);
  rep.points = pexec.map<SensitivityPoint>(static_cast<int>(points.size()), [&](int i) {
    const Perturbation& p = points[static_cast<size_t>(i)];
    SensitivityPoint pt;
    pt.parameter = p.parameter;
    pt.delta = p.delta;
    pt.value = p.value;
    const auto pt0 = Clock::now();

    const Specification pspec = perturbed_spec(spec, p);
    const Explorer pex(tmpl, pspec);
    EncoderOptions eopts = opts.encoder;
    eopts.exec = opts.solver.exec.worker_view();
    const EncodedProblem ep = pex.encode(eopts);
    if (ep.stats.termination != util::exec::TerminationReason::kCompleted) {
      pt.time_s = std::chrono::duration<double>(Clock::now() - pt0).count();
      return pt;
    }
    const LazySeparation lazy(tmpl, ep);

    milp::SolveOptions mo = opts.solver;
    mo.exec = opts.solver.exec.worker_view();
    lazy.install(mo);

    // Warm start: complete the base topology into a full assignment of the
    // perturbed model. No cutoff — the perturbed optimum may be worse.
    if (rep.base.has_solution()) {
      const auto picked = match_base_routes(ep, rep.base.architecture);
      if (!picked.empty()) {
        mo.mip_start = solve_with_fixed_selectors(ep, picked, mo);
      }
    }

    const milp::MipResult res = milp::solve(ep.model, mo);
    pt.status = res.status;
    pt.feasible = res.has_solution();
    if (pt.feasible) pt.objective = res.objective;
    pt.bound = res.bound;
    pt.gap = res.stats.gap;
    pt.warm_used = res.stats.mip_start_used;
    pt.time_s = std::chrono::duration<double>(Clock::now() - pt0).count();
    return pt;
  });
  if (opts.solver.exec.stopped(&why)) rep.termination = why;

  // Gradients per parameter: central difference over the closest feasible
  // bracketing deltas, one-sided against the base otherwise.
  std::vector<std::string> params;
  for (const SensitivityPoint& pt : rep.points) {
    if (std::find(params.begin(), params.end(), pt.parameter) == params.end()) {
      params.push_back(pt.parameter);
    }
  }
  for (const std::string& param : params) {
    SensitivityGradient g;
    g.parameter = param;
    const SensitivityPoint* lo = nullptr;  // closest feasible delta < 0
    const SensitivityPoint* hi = nullptr;  // closest feasible delta > 0
    for (const SensitivityPoint& pt : rep.points) {
      if (pt.parameter != param) continue;
      if (pt.feasible) {
        if (pt.delta < 0 && (lo == nullptr || pt.delta > lo->delta)) lo = &pt;
        if (pt.delta > 0 && (hi == nullptr || pt.delta < hi->delta)) hi = &pt;
      } else {
        if (pt.delta > 0 && (!g.cliff_tighter || pt.delta < *g.cliff_tighter)) {
          g.cliff_tighter = pt.delta;
        }
        if (pt.delta < 0 && (!g.cliff_looser || pt.delta > *g.cliff_looser)) {
          g.cliff_looser = pt.delta;
        }
      }
    }
    if (lo != nullptr && hi != nullptr) {
      g.cost_per_unit = (hi->objective - lo->objective) / (hi->delta - lo->delta);
    } else if (rep.base.has_solution()) {
      const SensitivityPoint* side = hi != nullptr ? hi : lo;
      if (side != nullptr && std::abs(side->delta) > 0) {
        g.cost_per_unit = (side->objective - rep.base.objective) / side->delta;
      }
    }
    rep.gradients.push_back(std::move(g));
  }

  rep.total_time_s = std::chrono::duration<double>(Clock::now() - t0).count();
  return rep;
}

std::string SensitivityReport::to_json() const {
  util::obs::JsonWriter w;
  w.begin_object();
  w.key("base")
      .begin_object()
      .field("status", milp::to_string(base.status))
      .field("termination", util::exec::to_string(base.termination));
  w.number_field("objective", base.has_solution() ? base.objective : milp::kInf);
  w.number_field("bound", base.bound);
  w.number_field("gap", base.gap);
  w.number_field("total_time_s", base.total_time_s);
  w.end_object();

  w.key("points").begin_array();
  for (const SensitivityPoint& pt : points) {
    w.begin_object()
        .field("parameter", pt.parameter)
        .field("delta", pt.delta)
        .field("value", pt.value)
        .field("status", milp::to_string(pt.status))
        .field("feasible", pt.feasible)
        .field("warm_used", pt.warm_used);
    w.number_field("objective", pt.feasible ? pt.objective : milp::kInf);
    w.number_field("bound", pt.bound);
    w.number_field("gap", pt.gap);
    w.number_field("time_s", pt.time_s);
    w.end_object();
  }
  w.end_array();

  w.key("gradients").begin_array();
  for (const SensitivityGradient& g : gradients) {
    w.begin_object().field("parameter", g.parameter);
    w.key("cost_per_unit");
    if (g.cost_per_unit) {
      w.value(*g.cost_per_unit);
    } else {
      w.null_value();
    }
    w.key("cliff_tighter");
    if (g.cliff_tighter) {
      w.value(*g.cliff_tighter);
    } else {
      w.null_value();
    }
    w.key("cliff_looser");
    if (g.cliff_looser) {
      w.value(*g.cliff_looser);
    } else {
      w.null_value();
    }
    w.end_object();
  }
  w.end_array();

  w.field("termination", util::exec::to_string(termination));
  w.number_field("total_time_s", total_time_s);
  w.end_object();
  return w.take();
}

}  // namespace wnet::archex::meta
