#pragma once

/// Tabu search over direct topology assignments (PAPERS.md: "Tabu Search
/// for Tactical Wireless Network Design", Zaid & Hertz).
///
/// The search state is one Yen candidate per (route, replica) group of the
/// encoded problem, plus optional per-node component overrides. A state is
/// evaluated by fixing the matching selector (and mapping) binaries and
/// solving the remaining sizing-only MILP with a tight budget — the same
/// restriction the explorer's fixed-routing warm start solves, so every
/// tabu incumbent is a genuine full-model assignment the exact solver can
/// adopt as a MIP start.
///
/// Move set (all sampled, seeded, deterministic):
///  - reroute: move one group to a different Yen candidate;
///  - swap replica placement: exchange the paths of two replica groups of
///    the same route (when each group's list carries the other's path);
///  - toggle component: force a different library component on a node used
///    by the current topology.
///
/// Tabu tenure bans reversing a move for `tenure` iterations; aspiration
/// on the objective overrides the ban when a move beats the global best.
/// Stalls trigger seeded restarts. The search is resumable: run(n) advances
/// n iterations and may be called again, which is how the portfolio runner
/// interleaves it with MILP rungs; between runs the MILP's proven dual
/// bound arrives via set_aspiration_bound() and stops the walk as soon as
/// its incumbent is certified optimal.
///
/// Determinism: everything is driven by the seeded Rng and the restricted
/// MILP solves (themselves deterministic), so a TabuSearch advanced by the
/// same run() schedule visits the same states for any thread count. The
/// exec control is only ever polled (stopped()), never checkpointed — the
/// search runs on portfolio worker threads.

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "core/encode/encoded_problem.h"
#include "milp/cuts.h"
#include "milp/solver.h"
#include "util/exec/exec.h"

namespace wnet::archex::meta {

struct TabuOptions {
  uint64_t seed = 1;
  /// Iterations a reversed move stays banned.
  int tenure = 7;
  /// Candidate moves sampled (and evaluated) per iteration.
  int neighborhood = 12;
  /// Non-improving iterations before a seeded restart.
  int stall_before_restart = 20;
  int max_restarts = 6;

  /// Budget of one restricted sizing solve. The node limit keeps a single
  /// evaluation cheap; the restriction usually solves at the root.
  double eval_time_limit_s = 5.0;
  long eval_node_limit = 64;
  double eval_rel_gap = 1e-6;

  /// Polled (never checkpointed) between iterations and inside every
  /// restricted solve. Pass a worker_view() when running off-spine.
  util::exec::ExecControl exec;

  /// Separators for lazily encoded models: the restricted solves must be
  /// gated by the same omitted row families as the exact member, or a tabu
  /// incumbent could violate a lazy constraint. The search keeps a private
  /// pool so evaluations reuse each other's cuts without ever touching a
  /// pool owned by a concurrently running solver.
  std::vector<milp::SeparationCallback> separators;
};

struct TabuStats {
  long iterations = 0;
  long evaluations = 0;   ///< restricted MILP solves (cache misses)
  long cache_hits = 0;
  long restarts = 0;
  long moves_reroute = 0;
  long moves_swap = 0;
  long moves_toggle = 0;
  long infeasible_evals = 0;
  long aspiration_overrides = 0;  ///< tabu moves admitted by aspiration
  long adopted_incumbents = 0;    ///< external (MILP) incumbents adopted
};

/// Seeded tabu-search explorer over one EncodedProblem. Not thread-safe;
/// the portfolio runs it from exactly one member task per rung.
class TabuSearch {
 public:
  TabuSearch(const EncodedProblem& ep, TabuOptions opts);

  /// False when the problem has no candidate selectors to search over
  /// (full-path encoding mode): run() is then a no-op.
  [[nodiscard]] bool runnable() const { return !groups_.empty(); }

  /// Advances up to `iterations` move rounds (resumable). The first call
  /// also evaluates the greedy initial assignment — run(0) performs exactly
  /// that probe and nothing else, which is how the portfolio stamps its
  /// first incumbent before any local-search work.
  /// Returns true when the
  /// best incumbent improved during this call. Returns early when the
  /// incumbent is certified against the aspiration bound, the exec control
  /// stops, or the meta-iteration budget runs out.
  bool run(int iterations);

  [[nodiscard]] bool has_incumbent() const { return best_feasible_; }
  [[nodiscard]] double best_objective() const { return best_obj_; }
  /// Full model-variable assignment of the best incumbent (empty until one
  /// exists). Directly usable as milp::SolveOptions::mip_start.
  [[nodiscard]] const std::vector<double>& best_x() const { return best_x_; }

  /// Installs the MILP's proven global lower bound as the aspiration
  /// level: once best_objective() is within `rel_gap` of it, the incumbent
  /// is optimal and the walk stops. Monotone (only tightens upward).
  void set_aspiration_bound(double global_lower_bound);
  [[nodiscard]] double aspiration_bound() const { return aspiration_bound_; }

  /// True once the best incumbent is proven optimal against the installed
  /// aspiration bound (within rel_gap semantics of milp::relative_gap).
  [[nodiscard]] bool certified() const;

  /// Adopts an external full-model incumbent (the MILP member's) when it
  /// improves on ours: the walk re-anchors on its topology. The assignment
  /// is recovered from the selector values; x must cover the model's vars.
  void adopt_incumbent(const std::vector<double>& x, double objective);

  [[nodiscard]] const TabuStats& stats() const { return stats_; }
  /// Why the last run() returned: kCompleted covers the iteration count
  /// running out or certification; otherwise the exec stop reason.
  [[nodiscard]] util::exec::TerminationReason termination() const { return termination_; }

 private:
  struct EvalResult {
    bool feasible = false;
    double objective = 0.0;
    std::vector<double> x;
  };
  struct Move {
    enum class Kind : uint8_t { kReroute, kSwap, kToggle };
    Kind kind = Kind::kReroute;
    int group = -1, member = -1;      ///< reroute: group -> its member index
    int group_b = -1, member_b = -1;  ///< swap: second leg
    int node = -1, component = -1;    ///< toggle
  };

  /// Assignment = member index per group + component overrides; the hash
  /// keys the evaluation cache.
  [[nodiscard]] uint64_t state_hash() const;
  [[nodiscard]] const EvalResult& evaluate_current();
  void apply(const Move& m);
  void undo(const Move& m, const std::vector<int>& prev_assign,
            const std::map<int, int>& prev_overrides);
  [[nodiscard]] std::vector<Move> sample_moves(class MoveSampler& rng);
  void greedy_initial_assignment();
  void seeded_restart();

  const EncodedProblem* ep_;
  TabuOptions opts_;

  /// (route, replica) groups in deterministic order with their candidate
  /// member indices (into ep_->candidates).
  std::vector<std::pair<int, int>> group_keys_;
  std::vector<std::vector<int>> groups_;
  std::map<std::pair<int, int>, int> group_index_;

  std::vector<int> assignment_;        ///< member index per group
  std::map<int, int> overrides_;       ///< node -> forced library component
  std::vector<double> current_x_;      ///< last feasible eval of the current state
  bool current_feasible_ = false;
  double current_obj_ = 0.0;

  bool best_feasible_ = false;
  double best_obj_ = milp::kInf;
  std::vector<double> best_x_;

  double aspiration_bound_ = -milp::kInf;
  util::exec::TerminationReason termination_ = util::exec::TerminationReason::kCompleted;

  /// Move-reversal bans: key -> iteration index until which it is banned.
  std::unordered_map<uint64_t, long> tabu_;
  long iteration_ = 0;
  int stall_ = 0;
  int restarts_ = 0;
  uint64_t rng_stream_ = 0;  ///< advances per iteration: sampling is
                             ///< position-keyed, independent of history

  std::unordered_map<uint64_t, EvalResult> cache_;
  milp::CutPool eval_pool_;  ///< private: shared across evals, never across threads

  TabuStats stats_;
};

}  // namespace wnet::archex::meta
