#include "core/meta/portfolio.h"

#include <algorithm>
#include <chrono>

#include "core/encode/separation.h"
#include "core/solution.h"
#include "milp/tol.h"
#include "util/obs/json.h"
#include "util/thread_pool.h"

namespace wnet::archex::meta {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

void write_architecture(util::obs::JsonWriter& w, const NetworkArchitecture& arch) {
  w.begin_object();
  w.key("nodes").begin_array();
  for (const DeployedNode& n : arch.nodes) {
    w.begin_object().field("node", n.node).field("component", n.component).end_object();
  }
  w.end_array();
  w.key("routes").begin_array();
  for (const ChosenRoute& r : arch.routes) {
    w.begin_object().field("route", r.route_index).field("replica", r.replica);
    w.key("path").begin_array();
    for (const int n : r.path.nodes) w.value(n);
    w.end_array().end_object();
  }
  w.end_array();
  w.number_field("total_cost_usd", arch.total_cost_usd);
  w.number_field("min_lifetime_years", arch.min_lifetime_years);
  w.end_object();
}

void write_tabu_stats(util::obs::JsonWriter& w, const TabuStats& s) {
  w.begin_object()
      .field("iterations", s.iterations)
      .field("evaluations", s.evaluations)
      .field("cache_hits", s.cache_hits)
      .field("restarts", s.restarts)
      .field("moves_reroute", s.moves_reroute)
      .field("moves_swap", s.moves_swap)
      .field("moves_toggle", s.moves_toggle)
      .field("infeasible_evals", s.infeasible_evals)
      .field("aspiration_overrides", s.aspiration_overrides)
      .field("adopted_incumbents", s.adopted_incumbents)
      .end_object();
}

}  // namespace

std::string PortfolioResult::to_json() const {
  util::obs::JsonWriter w;
  w.begin_object();
  w.field("status", milp::to_string(status));
  w.field("termination", util::exec::to_string(termination));
  w.number_field("objective", has_solution() ? objective : milp::kInf);
  w.number_field("bound", bound);
  w.number_field("gap", gap);
  w.field("rungs", rungs);
  w.field("winner", winner);
  w.field("first_member", first_member);
  w.field("certified_by", certified_by);
  w.number_field("first_incumbent_s", first_incumbent_s);
  w.number_field("time_to_proof_s", time_to_proof_s);
  w.number_field("encode_time_s", encode_time_s);
  w.number_field("total_time_s", total_time_s);
  w.field("milp_nodes_total", milp_nodes_total);
  w.key("bound_timeline").begin_array();
  for (const double b : bound_timeline) w.value(b);
  w.end_array();
  w.key("tabu_stats");
  write_tabu_stats(w, tabu_stats);
  w.key("milp_stats").raw(milp_stats.to_json());
  w.key("encode")
      .begin_object()
      .field("num_vars", encode_stats.num_vars)
      .field("num_constrs", encode_stats.num_constrs)
      .field("candidate_paths", encode_stats.candidate_paths)
      .field("lazy_rows_omitted", encode_stats.lazy_rows_omitted)
      .end_object();
  if (has_solution()) {
    w.key("architecture");
    write_architecture(w, architecture);
  } else {
    w.key("architecture").null_value();
  }
  w.end_object();
  return w.take();
}

std::string PortfolioResult::canonical_signature() const {
  // Deterministic fields only: no wall-clock members, no timing-derived
  // telemetry. Doubles go through the writer's shortest-round-trip
  // formatting, so equal values produce equal bytes.
  util::obs::JsonWriter w;
  w.begin_object();
  w.field("status", milp::to_string(status));
  w.field("termination", util::exec::to_string(termination));
  w.number_field("objective", has_solution() ? objective : milp::kInf);
  w.number_field("bound", bound);
  w.number_field("gap", gap);
  w.field("rungs", rungs);
  w.field("winner", winner);
  w.field("first_member", first_member);
  w.field("certified_by", certified_by);
  w.field("milp_nodes_total", milp_nodes_total);
  w.key("bound_timeline").begin_array();
  for (const double b : bound_timeline) w.value(b);
  w.end_array();
  w.key("tabu_stats");
  write_tabu_stats(w, tabu_stats);
  if (has_solution()) {
    w.key("architecture");
    write_architecture(w, architecture);
  } else {
    w.key("architecture").null_value();
  }
  w.end_object();
  return w.take();
}

PortfolioResult PortfolioRunner::run(const PortfolioOptions& opts) const {
  const auto t0 = Clock::now();
  PortfolioResult out;

  // `solver.time_limit_s` is the TOTAL portfolio budget, not a per-rung
  // allowance: one deadline fixed here governs the encoder, every rung's
  // MILP call and the tabu member's evaluations, so a run can never cost
  // max_rungs times the requested limit.
  util::exec::ExecControl spine = opts.solver.exec;
  spine.deadline = spine.deadline.tightened(opts.solver.time_limit_s);

  Explorer ex(*tmpl_, *spec_);
  EncoderOptions eopts = opts.encoder;
  eopts.exec = spine;  // the encoder checkpoints on the spine control
  const EncodedProblem ep = ex.encode(eopts);
  out.encode_stats = ep.stats;
  out.encode_time_s = ep.stats.encode_time_s;
  if (ep.stats.termination != util::exec::TerminationReason::kCompleted) {
    out.termination = ep.stats.termination;
    out.total_time_s = seconds_since(t0);
    return out;
  }

  const LazySeparation lazy(*tmpl_, ep);

  TabuOptions topts = opts.tabu;
  topts.exec = spine.worker_view();
  if (!lazy.empty()) topts.separators.push_back(lazy.callback());
  TabuSearch tabu(ep, topts);

  milp::CutPool pool;  // portfolio-owned; only the MILP member touches it

  bool have_inc = false;
  double best_obj = milp::kInf;
  std::vector<double> best_x;
  double global_bound = -milp::kInf;

  const auto merge_incumbent = [&](double obj, const std::vector<double>& x,
                                   const char* member) {
    // Strict improvement only: a tie keeps the earlier holder, so
    // attribution never depends on member finishing order.
    if (have_inc && obj >= best_obj - milp::tol::kObjImprove) return;
    have_inc = true;
    best_obj = obj;
    best_x = x;
    out.winner = member;
    if (out.first_member == "none") {
      out.first_member = member;
      out.first_incumbent_s = seconds_since(t0);
    }
  };

  // Rung 0: tabu alone. Its first evaluation is the fixed-routing probe the
  // plain explorer solves before its root LP, so a feasible instance yields
  // an incumbent here, before any exact tree work starts. The probe is run
  // and merged on its own (run(0)) so the first-incumbent clock stops the
  // moment the greedy evaluation returns, not after a full iteration round.
  if (tabu.runnable()) {
    tabu.run(0);
    if (tabu.has_incumbent()) merge_incumbent(tabu.best_objective(), tabu.best_x(), "tabu");
    tabu.run(opts.tabu_iterations_per_rung);
    if (tabu.has_incumbent()) merge_incumbent(tabu.best_objective(), tabu.best_x(), "tabu");
    out.tabu_stats = tabu.stats();
  }

  const util::ParallelExecutor pexec(opts.threads);

  for (int r = 1; r <= opts.max_rungs; ++r) {
    util::exec::TerminationReason why = util::exec::TerminationReason::kCompleted;
    if (spine.checkpoint(&why)) {
      out.termination = why;
      break;
    }

    milp::SolveOptions mo = opts.solver;
    mo.exec = spine.worker_view();
    mo.node_limit = std::min(opts.solver.node_limit,
                             opts.milp_base_nodes << std::min(r - 1, 30));
    mo.mip_start = best_x;
    mo.cutoff = have_inc ? best_obj : milp::kInf;
    lazy.install(mo);
    mo.cuts.shared_pool = &pool;
    std::vector<double> rung_bounds;  // written only inside the MILP member task
    mo.on_bound_improved = [&rung_bounds](double b) { rung_bounds.push_back(b); };

    // Race the two members. They share no mutable state, so parallel and
    // serial execution produce identical results (determinism contract).
    milp::MipResult mres;
    pexec.for_each(2, [&](int i) {
      if (i == 0) {
        mres = milp::solve(ep.model, mo);
      } else if (tabu.runnable() && !tabu.certified()) {
        tabu.run(opts.tabu_iterations_per_rung);
      }
    });
    ++out.rungs;
    out.milp_stats = mres.stats;
    out.milp_nodes_total += mres.stats.nodes;
    out.tabu_stats = tabu.stats();

    // Serial merge in fixed order: MILP first, then tabu.
    if (mres.has_solution()) merge_incumbent(mres.objective, mres.x, "milp");
    if (tabu.has_incumbent()) merge_incumbent(tabu.best_objective(), tabu.best_x(), "tabu");

    // Bound feedback: rung-local improvements in order, then the member's
    // final bound. With a cutoff and no better solution the MILP's bound is
    // the cutoff itself — "nothing beats the incumbent" is the proof.
    rung_bounds.push_back(mres.bound);
    for (const double b : rung_bounds) {
      if (b > global_bound + milp::tol::kObjImprove && b > -milp::kInf && b < milp::kInf) {
        global_bound = b;
        out.bound_timeline.push_back(b);
      }
    }
    if (tabu.runnable()) {
      if (global_bound > -milp::kInf) tabu.set_aspiration_bound(global_bound);
      if (mres.has_solution()) tabu.adopt_incumbent(mres.x, mres.objective);
      out.tabu_stats = tabu.stats();
    }

    if (mres.status == milp::SolveStatus::kInfeasible && !have_inc) {
      out.status = milp::SolveStatus::kInfeasible;
      out.termination = util::exec::TerminationReason::kInfeasible;
      break;
    }

    const double gap = have_inc ? milp::relative_gap(best_obj, global_bound) : milp::kInf;
    if (have_inc && (mres.status == milp::SolveStatus::kOptimal || gap <= opts.solver.rel_gap)) {
      out.status = milp::SolveStatus::kOptimal;
      out.certified_by = "milp";
      out.time_to_proof_s = seconds_since(t0);
      break;
    }

    // A member hitting the request-level deadline/cancellation ends the
    // race; a node-limit exit just escalates into the next rung.
    if (mres.stats.termination == util::exec::TerminationReason::kDeadline ||
        mres.stats.termination == util::exec::TerminationReason::kCancelled) {
      out.termination = mres.stats.termination;
      break;
    }
    if (tabu.termination() == util::exec::TerminationReason::kDeadline ||
        tabu.termination() == util::exec::TerminationReason::kCancelled) {
      out.termination = tabu.termination();
      break;
    }
  }

  if (out.status != milp::SolveStatus::kOptimal &&
      out.status != milp::SolveStatus::kInfeasible) {
    out.status = have_inc ? milp::SolveStatus::kFeasible : milp::SolveStatus::kNoSolution;
  }
  if (have_inc) {
    out.objective = best_obj;
    out.architecture = decode_solution(ep, *tmpl_, *spec_, best_x);
  }
  out.bound = global_bound;
  out.gap = have_inc ? milp::relative_gap(best_obj, global_bound) : milp::kInf;
  out.total_time_s = seconds_since(t0);
  return out;
}

}  // namespace wnet::archex::meta
