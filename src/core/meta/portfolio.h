#pragma once

/// Portfolio racing: the tabu-search explorer (core/meta/tabu.h) and the
/// exact MILP member (milp::solve over the same EncodedProblem) advance in
/// alternating rungs under one util::exec::ExecControl, exchanging what
/// each is best at:
///
///  - tabu -> MILP: the best tabu incumbent enters each MILP rung as
///    `mip_start` (a tree-free incumbent) and its objective as `cutoff`
///    (prunes everything at or above it);
///  - MILP -> tabu: the proven global dual bound flows back as the tabu
///    aspiration level (certifying the heuristic incumbent optimal the
///    moment the gap closes), and a better MILP incumbent re-anchors the
///    walk via adopt_incumbent().
///
/// Rung 0 runs the tabu member alone: its first restricted evaluation is
/// exactly the fixed-routing warm-start probe the plain explorer pays for
/// *before* its root LP, so the portfolio's first incumbent lands strictly
/// earlier than MILP-only whenever that probe is feasible. MILP rungs then
/// escalate their node budget geometrically (256, 512, ...) until the run
/// is certified, proven infeasible, or stopped.
///
/// Determinism: the rung schedule, member options and merge order are pure
/// functions of PortfolioOptions. The two members of a rung share no
/// mutable state (the MILP member uses the portfolio's cut pool, the tabu
/// member its own private one; the model is const), so running them on a
/// ParallelExecutor with any thread count — or serially — produces
/// byte-identical canonical reports. The spine checkpoints once per rung;
/// members only ever poll a worker_view().

#include <string>
#include <vector>

#include "core/explorer.h"
#include "core/meta/tabu.h"
#include "milp/cuts.h"
#include "util/exec/exec.h"

namespace wnet::archex::meta {

struct PortfolioOptions {
  EncoderOptions encoder;
  /// Base options for the MILP member. `solver.exec` is the request-level
  /// control the portfolio spine checkpoints on; members get worker views.
  /// `solver.rel_gap` is the certification threshold; `solver.node_limit`
  /// caps any single rung's escalated budget; mip_start/cutoff/shared_pool
  /// are owned by the portfolio and overwritten per rung.
  milp::SolveOptions solver;
  TabuOptions tabu;

  /// Worker threads for the per-rung member race; <= 1 runs the members
  /// serially in merge order (identical results by the determinism
  /// contract above).
  int threads = 2;
  int max_rungs = 12;
  int tabu_iterations_per_rung = 6;
  /// First MILP rung's node budget; doubles every rung up to
  /// `solver.node_limit`.
  long milp_base_nodes = 256;
};

/// Combined anytime certificate of one portfolio run.
struct PortfolioResult {
  milp::SolveStatus status = milp::SolveStatus::kNoSolution;
  NetworkArchitecture architecture;  ///< valid when has_solution()
  double objective = 0.0;
  double bound = -milp::kInf;  ///< best proven global dual bound
  double gap = milp::kInf;
  util::exec::TerminationReason termination = util::exec::TerminationReason::kCompleted;

  int rungs = 0;  ///< MILP rungs run (rung 0, tabu-only, not counted)
  /// Per-member attribution: which member holds the final incumbent
  /// ("tabu" / "milp" / "none"), which produced the first one, and what
  /// certified optimality ("milp" when the tree closed or the cutoff was
  /// proven unbeatable; "" when uncertified).
  std::string winner = "none";
  std::string first_member = "none";
  std::string certified_by;

  double first_incumbent_s = -1.0;  ///< wall clock to first incumbent (<0: none)
  double time_to_proof_s = -1.0;    ///< wall clock to certification (<0: none)
  double encode_time_s = 0.0;
  double total_time_s = 0.0;

  EncodeStats encode_stats;
  milp::SolveStats milp_stats;  ///< last MILP rung's stats
  TabuStats tabu_stats;
  long milp_nodes_total = 0;  ///< B&B nodes across all MILP rungs
  /// Proven-bound trajectory at rung granularity (values only — no wall
  /// clock — so the timeline is thread-count invariant).
  std::vector<double> bound_timeline;

  [[nodiscard]] bool has_solution() const {
    return status == milp::SolveStatus::kOptimal || status == milp::SolveStatus::kFeasible;
  }

  /// Strict-JSON report (util::obs::JsonWriter): status, certificate,
  /// attribution, timings, member stats, bound timeline.
  [[nodiscard]] std::string to_json() const;

  /// Deterministic fingerprint for the thread-sweep byte-identity gate:
  /// every field above EXCEPT wall-clock times, serialized canonically.
  /// Equal signatures mean the runs found the same incumbent, bound,
  /// attribution and search trajectory.
  [[nodiscard]] std::string canonical_signature() const;
};

/// Runs the tabu/MILP portfolio over one problem. Encodes once, then races.
class PortfolioRunner {
 public:
  PortfolioRunner(const NetworkTemplate& tmpl, const Specification& spec)
      : tmpl_(&tmpl), spec_(&spec) {}
  explicit PortfolioRunner(const Explorer& ex) : tmpl_(&ex.tmpl()), spec_(&ex.spec()) {}

  [[nodiscard]] PortfolioResult run(const PortfolioOptions& opts = {}) const;

 private:
  const NetworkTemplate* tmpl_;
  const Specification* spec_;
};

}  // namespace wnet::archex::meta
