#pragma once

/// Sensitivity sweep around a solved instance: perturb the requirement
/// thresholds (link-quality floor, lifetime) by a grid of deltas, re-solve
/// each perturbed specification, and report how cost and feasibility react.
///
/// Each perturbation reuses the base solve's incumbent as a warm start:
/// the base architecture's chosen paths are matched (by node sequence)
/// into the perturbed encoding's candidate groups and completed into a
/// full assignment via solve_with_fixed_selectors — the same probe the
/// fixed-routing heuristic uses. No primal cutoff is carried: a perturbed
/// optimum may legitimately be worse than the base one, so a cutoff would
/// be unsound.
///
/// The report carries per-point rows plus central-difference cost
/// gradients over the smallest feasible +/- delta pair (one-sided when
/// only one side is feasible) and the feasibility cliff — the tightest
/// perturbation that turned the instance infeasible. to_json() is strict
/// JSON via util::obs::JsonWriter.

#include <optional>
#include <string>
#include <vector>

#include "core/explorer.h"
#include "util/exec/exec.h"

namespace wnet::archex::meta {

struct SensitivityOptions {
  EncoderOptions encoder;
  /// Per-point solver options; `solver.exec` is the request control (the
  /// sweep spine checkpoints between points, workers poll a view).
  milp::SolveOptions solver;

  /// Deltas (dB) applied to the active link-quality threshold (min_snr_db
  /// or min_rss_dbm — whichever the spec sets; skipped for max_ber specs
  /// and specs with no link-quality bound). 0 need not be listed; the base
  /// point is always solved.
  std::vector<double> snr_deltas_db = {-2.0, -1.0, 1.0, 2.0};
  /// Deltas (years) applied to lifetime.min_years when the spec has one.
  std::vector<double> lifetime_deltas_years;

  /// Worker threads for the per-point solves (deterministic: results are
  /// keyed by point index).
  int threads = 1;
};

/// One perturbed solve.
struct SensitivityPoint {
  std::string parameter;  ///< "min_snr_db" | "min_rss_dbm" | "min_years"
  double delta = 0.0;
  double value = 0.0;  ///< perturbed absolute threshold
  milp::SolveStatus status = milp::SolveStatus::kNoSolution;
  double objective = 0.0;
  double bound = -milp::kInf;
  double gap = milp::kInf;
  bool feasible = false;
  bool warm_used = false;  ///< base incumbent matched and accepted as MIP start
  double time_s = 0.0;
};

/// Per-parameter cost gradient: d(objective)/d(threshold), central
/// difference over the closest feasible bracketing deltas (one-sided when
/// only one side exists; absent when no feasible neighbor exists).
struct SensitivityGradient {
  std::string parameter;
  std::optional<double> cost_per_unit;
  /// Tightest delta (smallest |delta|) that made the instance infeasible,
  /// per direction; absent when every swept point stayed feasible.
  std::optional<double> cliff_tighter;
  std::optional<double> cliff_looser;
};

struct SensitivityReport {
  ExplorationResult base;  ///< the unperturbed solve the sweep pivots on
  std::vector<SensitivityPoint> points;
  std::vector<SensitivityGradient> gradients;
  util::exec::TerminationReason termination = util::exec::TerminationReason::kCompleted;
  double total_time_s = 0.0;

  [[nodiscard]] std::string to_json() const;
};

/// Solves the base instance, then sweeps every configured perturbation.
/// Points whose solve was skipped by cancellation report kNoSolution with
/// feasible=false; the report's termination says why.
[[nodiscard]] SensitivityReport explore_sensitivity(const NetworkTemplate& tmpl,
                                                    const Specification& spec,
                                                    const SensitivityOptions& opts = {});

}  // namespace wnet::archex::meta
