#include "core/meta/tabu.h"

#include <algorithm>
#include <set>

#include "graph/digraph.h"
#include "milp/tol.h"
#include "util/rng.h"

namespace wnet::archex::meta {

/// Seeded per-iteration sampler. A fresh one is derived for every
/// iteration from (seed, iteration index), so the sampled neighborhood at
/// iteration k is the same no matter how run() calls were chunked.
class MoveSampler : public util::Rng {
 public:
  using util::Rng::Rng;
};

namespace {

uint64_t mix3(uint64_t a, uint64_t b, uint64_t c) {
  return util::splitmix64(a ^ util::splitmix64(b ^ util::splitmix64(c)));
}

bool same_path(const graph::Path& a, const graph::Path& b) {
  return a.nodes == b.nodes;
}

}  // namespace

TabuSearch::TabuSearch(const EncodedProblem& ep, TabuOptions opts)
    : ep_(&ep), opts_(std::move(opts)) {
  // Deterministic group order: std::map over (route, replica).
  std::map<std::pair<int, int>, std::vector<int>> by_group;
  for (size_t i = 0; i < ep_->candidates.size(); ++i) {
    const CandidatePath& c = ep_->candidates[i];
    by_group[{c.route_index, c.replica}].push_back(static_cast<int>(i));
  }
  for (auto& [key, members] : by_group) {
    group_index_[key] = static_cast<int>(group_keys_.size());
    group_keys_.push_back(key);
    groups_.push_back(std::move(members));
  }
}

uint64_t TabuSearch::state_hash() const {
  uint64_t h = 14695981039346656037ull;
  const auto mixin = [&h](uint64_t v) {
    h ^= util::splitmix64(v);
    h *= 1099511628211ull;
  };
  for (const int a : assignment_) mixin(static_cast<uint64_t>(a) + 1);
  mixin(0x5eedull);
  for (const auto& [node, comp] : overrides_) {
    mixin(static_cast<uint64_t>(node) + 1);
    mixin(static_cast<uint64_t>(comp) + 1);
  }
  return h;
}

const TabuSearch::EvalResult& TabuSearch::evaluate_current() {
  const uint64_t key = state_hash();
  if (const auto it = cache_.find(key); it != cache_.end()) {
    ++stats_.cache_hits;
    return it->second;
  }
  ++stats_.evaluations;

  // Nodes the selected topology actually touches: component overrides are
  // only meaningful (and only safely feasible) on those.
  std::set<int> used;
  for (size_t g = 0; g < groups_.size(); ++g) {
    const CandidatePath& c =
        ep_->candidates[static_cast<size_t>(groups_[g][static_cast<size_t>(assignment_[g])])];
    used.insert(c.path.nodes.begin(), c.path.nodes.end());
  }

  milp::Model restricted = ep_->model;
  for (size_t g = 0; g < groups_.size(); ++g) {
    for (size_t m = 0; m < groups_[g].size(); ++m) {
      const CandidatePath& c = ep_->candidates[static_cast<size_t>(groups_[g][m])];
      const bool on = static_cast<int>(m) == assignment_[g];
      restricted.set_bounds(c.selector, on ? 1.0 : 0.0, on ? 1.0 : 0.0);
    }
  }
  for (const auto& [node, comp] : overrides_) {
    if (used.count(node) == 0) continue;
    if (ep_->mapping.count({comp, node}) == 0) continue;
    for (const auto& [ck, var] : ep_->mapping) {
      if (ck.second != node) continue;
      const bool on = ck.first == comp;
      restricted.set_bounds(var, on ? 1.0 : 0.0, on ? 1.0 : 0.0);
    }
  }

  milp::SolveOptions so;
  so.time_limit_s = opts_.eval_time_limit_s;
  so.node_limit = opts_.eval_node_limit;
  so.rel_gap = opts_.eval_rel_gap;
  so.exec = opts_.exec;
  so.collect_timeline = false;
  // The restriction must satisfy the same lazily omitted families as the
  // exact member; the private pool carries their cuts across evaluations.
  so.cuts.separators = opts_.separators;
  so.cuts.shared_pool = &eval_pool_;
  const milp::MipResult res = milp::solve(restricted, so);

  EvalResult ev;
  ev.feasible = res.has_solution();
  if (ev.feasible) {
    ev.objective = res.objective;
    ev.x = res.x;
  } else {
    ++stats_.infeasible_evals;
  }
  return cache_.emplace(key, std::move(ev)).first->second;
}

void TabuSearch::greedy_initial_assignment() {
  assignment_.assign(groups_.size(), 0);
  overrides_.clear();
  // Lowest-cost candidate per group, edge-disjoint against the groups of
  // the same route already placed (mirrors the explorer's fixed-routing
  // heuristic); falls back to the group's first member when every
  // candidate clashes.
  std::map<int, std::vector<size_t>> placed_by_route;  // route -> groups done
  for (size_t g = 0; g < groups_.size(); ++g) {
    const int route = group_keys_[g].first;
    int best = -1;
    double best_cost = 0.0;
    for (size_t m = 0; m < groups_[g].size(); ++m) {
      const CandidatePath& c = ep_->candidates[static_cast<size_t>(groups_[g][m])];
      bool clash = false;
      for (const size_t og : placed_by_route[route]) {
        const CandidatePath& oc = ep_->candidates[static_cast<size_t>(
            groups_[og][static_cast<size_t>(assignment_[og])])];
        if (graph::shared_edges(c.path, oc.path) > 0) {
          clash = true;
          break;
        }
      }
      if (clash) continue;
      if (best < 0 || c.path.cost < best_cost) {
        best = static_cast<int>(m);
        best_cost = c.path.cost;
      }
    }
    assignment_[g] = best >= 0 ? best : 0;
    placed_by_route[route].push_back(g);
  }
}

void TabuSearch::seeded_restart() {
  ++restarts_;
  ++stats_.restarts;
  MoveSampler rng(mix3(opts_.seed, 0x5274ull, static_cast<uint64_t>(restarts_)));
  for (size_t g = 0; g < groups_.size(); ++g) {
    assignment_[g] = rng.uniform_int(0, static_cast<int>(groups_[g].size()) - 1);
  }
  overrides_.clear();
  tabu_.clear();
  stall_ = 0;
}

std::vector<TabuSearch::Move> TabuSearch::sample_moves(MoveSampler& rng) {
  std::vector<Move> moves;
  moves.reserve(static_cast<size_t>(opts_.neighborhood));

  // Groups with any alternative to move to, and routes with >= 2 replica
  // groups (swap candidates).
  std::vector<int> movable;
  for (size_t g = 0; g < groups_.size(); ++g) {
    if (groups_[g].size() > 1) movable.push_back(static_cast<int>(g));
  }
  std::map<int, std::vector<int>> route_groups;
  for (size_t g = 0; g < groups_.size(); ++g) {
    route_groups[group_keys_[g].first].push_back(static_cast<int>(g));
  }
  std::vector<int> swap_routes;
  for (const auto& [route, gs] : route_groups) {
    if (gs.size() >= 2) swap_routes.push_back(route);
  }
  // Nodes used by the current topology that offer more than one component.
  std::set<int> used;
  for (size_t g = 0; g < groups_.size(); ++g) {
    const CandidatePath& c =
        ep_->candidates[static_cast<size_t>(groups_[g][static_cast<size_t>(assignment_[g])])];
    used.insert(c.path.nodes.begin(), c.path.nodes.end());
  }
  std::map<int, std::vector<int>> node_components;
  for (const auto& [ck, var] : ep_->mapping) {
    if (used.count(ck.second) != 0) node_components[ck.second].push_back(ck.first);
  }
  std::vector<int> toggle_nodes;
  for (const auto& [node, comps] : node_components) {
    if (comps.size() >= 2) toggle_nodes.push_back(node);
  }

  for (int s = 0; s < opts_.neighborhood; ++s) {
    const int roll = rng.uniform_int(0, 9);
    if (roll < 6 && !movable.empty()) {
      // Reroute one requirement through an alternative Yen candidate.
      const int g = movable[static_cast<size_t>(
          rng.uniform_int(0, static_cast<int>(movable.size()) - 1))];
      const int n_members = static_cast<int>(groups_[static_cast<size_t>(g)].size());
      int m = rng.uniform_int(0, n_members - 2);
      if (m >= assignment_[static_cast<size_t>(g)]) ++m;  // skip the current member
      Move mv;
      mv.kind = Move::Kind::kReroute;
      mv.group = g;
      mv.member = m;
      moves.push_back(mv);
    } else if (roll < 8 && !swap_routes.empty()) {
      // Swap replica placement: exchange the two groups' paths, when each
      // group's candidate list carries the other's path.
      const int route = swap_routes[static_cast<size_t>(
          rng.uniform_int(0, static_cast<int>(swap_routes.size()) - 1))];
      const std::vector<int>& gs = route_groups[route];
      const int ia = rng.uniform_int(0, static_cast<int>(gs.size()) - 1);
      int ib = rng.uniform_int(0, static_cast<int>(gs.size()) - 2);
      if (ib >= ia) ++ib;
      const int ga = gs[static_cast<size_t>(ia)], gb = gs[static_cast<size_t>(ib)];
      const graph::Path& pa = ep_->candidates[static_cast<size_t>(
          groups_[static_cast<size_t>(ga)][static_cast<size_t>(assignment_[static_cast<size_t>(ga)])])].path;
      const graph::Path& pb = ep_->candidates[static_cast<size_t>(
          groups_[static_cast<size_t>(gb)][static_cast<size_t>(assignment_[static_cast<size_t>(gb)])])].path;
      int ma = -1, mb = -1;
      for (size_t m = 0; m < groups_[static_cast<size_t>(ga)].size(); ++m) {
        if (same_path(ep_->candidates[static_cast<size_t>(groups_[static_cast<size_t>(ga)][m])].path, pb)) {
          ma = static_cast<int>(m);
          break;
        }
      }
      for (size_t m = 0; m < groups_[static_cast<size_t>(gb)].size(); ++m) {
        if (same_path(ep_->candidates[static_cast<size_t>(groups_[static_cast<size_t>(gb)][m])].path, pa)) {
          mb = static_cast<int>(m);
          break;
        }
      }
      if (ma < 0 || mb < 0 || ma == assignment_[static_cast<size_t>(ga)]) continue;
      Move mv;
      mv.kind = Move::Kind::kSwap;
      mv.group = ga;
      mv.member = ma;
      mv.group_b = gb;
      mv.member_b = mb;
      moves.push_back(mv);
    } else if (!toggle_nodes.empty()) {
      // Toggle the library component of a node the topology uses.
      const int node = toggle_nodes[static_cast<size_t>(
          rng.uniform_int(0, static_cast<int>(toggle_nodes.size()) - 1))];
      const std::vector<int>& comps = node_components[node];
      const int comp =
          comps[static_cast<size_t>(rng.uniform_int(0, static_cast<int>(comps.size()) - 1))];
      const auto cur = overrides_.find(node);
      if (cur != overrides_.end() && cur->second == comp) continue;
      Move mv;
      mv.kind = Move::Kind::kToggle;
      mv.node = node;
      mv.component = comp;
      moves.push_back(mv);
    }
  }
  return moves;
}

void TabuSearch::apply(const Move& m) {
  switch (m.kind) {
    case Move::Kind::kReroute:
      assignment_[static_cast<size_t>(m.group)] = m.member;
      break;
    case Move::Kind::kSwap:
      assignment_[static_cast<size_t>(m.group)] = m.member;
      assignment_[static_cast<size_t>(m.group_b)] = m.member_b;
      break;
    case Move::Kind::kToggle:
      overrides_[m.node] = m.component;
      break;
  }
}

void TabuSearch::undo(const Move& m, const std::vector<int>& prev_assign,
                      const std::map<int, int>& prev_overrides) {
  (void)m;
  assignment_ = prev_assign;
  overrides_ = prev_overrides;
}

namespace {

/// Ban keys describe target states: applying a move bans the key that
/// would take the state back, and a sampled move is tabu when its own
/// target key is banned.
uint64_t reroute_key(int group, int member) {
  return mix3(0x01, static_cast<uint64_t>(group), static_cast<uint64_t>(member) + 1);
}
uint64_t toggle_key(int node, int component) {
  return mix3(0x02, static_cast<uint64_t>(node), static_cast<uint64_t>(component) + 2);
}

}  // namespace

bool TabuSearch::run(int iterations) {
  termination_ = util::exec::TerminationReason::kCompleted;
  if (!runnable() || iterations < 0) return false;
  bool improved_any = false;

  // First call: place and evaluate the greedy initial assignment.
  if (assignment_.empty()) {
    greedy_initial_assignment();
    const EvalResult& ev = evaluate_current();
    current_feasible_ = ev.feasible;
    if (ev.feasible) {
      current_obj_ = ev.objective;
      current_x_ = ev.x;
      best_feasible_ = true;
      best_obj_ = ev.objective;
      best_x_ = ev.x;
      improved_any = true;
    }
  }

  for (int it = 0; it < iterations; ++it) {
    if (certified()) break;
    util::exec::TerminationReason why = util::exec::TerminationReason::kCompleted;
    if (opts_.exec.stopped(&why)) {
      termination_ = why;
      break;
    }
    if (opts_.exec.budget != nullptr && !opts_.exec.budget->charge_meta_iterations()) {
      termination_ = util::exec::TerminationReason::kNodeLimit;
      break;
    }
    ++iteration_;
    ++stats_.iterations;

    MoveSampler rng(mix3(opts_.seed, 0x7AB0ull, static_cast<uint64_t>(iteration_)));
    const std::vector<Move> moves = sample_moves(rng);

    const std::vector<int> prev_assign = assignment_;
    const std::map<int, int> prev_overrides = overrides_;

    int chosen = -1;
    bool chosen_feasible = false;
    bool chosen_was_tabu = false;
    double chosen_obj = milp::kInf;
    std::vector<Move> kept;
    kept.reserve(moves.size());
    for (const Move& m : moves) {
      bool is_tabu = false;
      switch (m.kind) {
        case Move::Kind::kReroute: {
          const auto it2 = tabu_.find(reroute_key(m.group, m.member));
          is_tabu = it2 != tabu_.end() && it2->second > iteration_;
          break;
        }
        case Move::Kind::kSwap: {
          const auto ia = tabu_.find(reroute_key(m.group, m.member));
          const auto ib = tabu_.find(reroute_key(m.group_b, m.member_b));
          is_tabu = (ia != tabu_.end() && ia->second > iteration_) ||
                    (ib != tabu_.end() && ib->second > iteration_);
          break;
        }
        case Move::Kind::kToggle: {
          const auto it2 = tabu_.find(toggle_key(m.node, m.component));
          is_tabu = it2 != tabu_.end() && it2->second > iteration_;
          break;
        }
      }
      apply(m);
      const EvalResult& ev = evaluate_current();
      undo(m, prev_assign, prev_overrides);

      // Aspiration on the objective: a tabu move that beats the global
      // best is always admissible.
      const bool aspires =
          ev.feasible && (!best_feasible_ || ev.objective < best_obj_ - milp::tol::kObjImprove);
      if (is_tabu && !aspires) continue;
      const bool better =
          chosen < 0 ||
          (ev.feasible && !chosen_feasible) ||
          (ev.feasible == chosen_feasible && ev.feasible &&
           ev.objective < chosen_obj - milp::tol::kObjImprove);
      if (better) {
        chosen = static_cast<int>(kept.size());
        chosen_feasible = ev.feasible;
        chosen_obj = ev.objective;
        chosen_was_tabu = is_tabu;
      }
      kept.push_back(m);
    }

    if (chosen < 0) {
      ++stall_;
    } else {
      const Move& m = kept[static_cast<size_t>(chosen)];
      if (chosen_was_tabu) ++stats_.aspiration_overrides;
      // Ban the reversal before mutating the state (the keys describe the
      // pre-move configuration).
      const long until = iteration_ + opts_.tenure;
      switch (m.kind) {
        case Move::Kind::kReroute:
          tabu_[reroute_key(m.group, prev_assign[static_cast<size_t>(m.group)])] = until;
          ++stats_.moves_reroute;
          break;
        case Move::Kind::kSwap:
          tabu_[reroute_key(m.group, prev_assign[static_cast<size_t>(m.group)])] = until;
          tabu_[reroute_key(m.group_b, prev_assign[static_cast<size_t>(m.group_b)])] = until;
          ++stats_.moves_swap;
          break;
        case Move::Kind::kToggle: {
          const auto cur = prev_overrides.find(m.node);
          tabu_[toggle_key(m.node, cur != prev_overrides.end() ? cur->second : -1)] = until;
          ++stats_.moves_toggle;
          break;
        }
      }
      apply(m);
      const EvalResult& ev = evaluate_current();
      current_feasible_ = ev.feasible;
      if (ev.feasible) {
        current_obj_ = ev.objective;
        current_x_ = ev.x;
      }
      if (ev.feasible && (!best_feasible_ || ev.objective < best_obj_ - milp::tol::kObjImprove)) {
        best_feasible_ = true;
        best_obj_ = ev.objective;
        best_x_ = ev.x;
        stall_ = 0;
        improved_any = true;
      } else {
        ++stall_;
      }
    }

    if (stall_ >= opts_.stall_before_restart && restarts_ < opts_.max_restarts) {
      seeded_restart();
      const EvalResult& ev = evaluate_current();
      current_feasible_ = ev.feasible;
      if (ev.feasible) {
        current_obj_ = ev.objective;
        current_x_ = ev.x;
        if (!best_feasible_ || ev.objective < best_obj_ - milp::tol::kObjImprove) {
          best_feasible_ = true;
          best_obj_ = ev.objective;
          best_x_ = ev.x;
          improved_any = true;
        }
      }
    }
  }
  return improved_any;
}

void TabuSearch::set_aspiration_bound(double global_lower_bound) {
  aspiration_bound_ = std::max(aspiration_bound_, global_lower_bound);
}

bool TabuSearch::certified() const {
  if (!best_feasible_ || !(aspiration_bound_ > -milp::kInf)) return false;
  return milp::relative_gap(best_obj_, aspiration_bound_) <= opts_.eval_rel_gap;
}

void TabuSearch::adopt_incumbent(const std::vector<double>& x, double objective) {
  if (!runnable()) return;
  if (static_cast<int>(x.size()) < ep_->model.num_vars()) return;
  if (best_feasible_ && objective >= best_obj_ - milp::tol::kObjImprove) return;
  ++stats_.adopted_incumbents;
  best_feasible_ = true;
  best_obj_ = objective;
  best_x_.assign(x.begin(), x.begin() + ep_->model.num_vars());

  // Re-anchor the walk on the adopted topology when its selector pattern
  // maps cleanly onto the group structure.
  std::vector<int> derived(groups_.size(), -1);
  for (size_t g = 0; g < groups_.size(); ++g) {
    for (size_t m = 0; m < groups_[g].size(); ++m) {
      const CandidatePath& c = ep_->candidates[static_cast<size_t>(groups_[g][m])];
      if (x[static_cast<size_t>(c.selector.id)] > 0.5) {
        derived[g] = static_cast<int>(m);
        break;
      }
    }
    if (derived[g] < 0) return;  // keep best_*, leave the walk where it is
  }
  assignment_ = std::move(derived);
  overrides_.clear();
  current_feasible_ = true;
  current_obj_ = objective;
  current_x_ = best_x_;
  stall_ = 0;
}

}  // namespace wnet::archex::meta
