#pragma once

#include <atomic>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "channel/propagation.h"
#include "core/library.h"
#include "geometry/vec2.h"
#include "graph/digraph.h"

namespace wnet::archex {

/// How a template node participates in the design space.
enum class NodeKind {
  kFixed,      ///< must be used (sensors, base stations)
  kCandidate,  ///< may be used (relay / anchor candidate locations)
};

/// One node of the template T: a named location with a role and a flag for
/// whether its placement is a design decision.
struct TemplateNode {
  std::string name;
  geom::Vec2 position;
  Role role = Role::kRelay;
  NodeKind kind = NodeKind::kCandidate;
  /// Optional pre-decided component (library index); sizing is then fixed.
  std::optional<int> fixed_component;
};

/// The template T = (V, E): nodes with candidate locations plus the
/// potential-link structure. Edges are implicit — every ordered pair whose
/// best-case link budget clears `link_cutoff_rss_dbm` is a potential link —
/// and materialized into a graph::Digraph weighted by path loss, which is
/// exactly what Algorithm 1 consumes.
class NetworkTemplate {
 public:
  /// `model` must outlive the template; path losses are computed lazily and
  /// cached on first use.
  NetworkTemplate(const channel::PropagationModel& model, const ComponentLibrary& library);

  int add_node(TemplateNode n);

  [[nodiscard]] int num_nodes() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] const TemplateNode& node(int i) const { return nodes_.at(static_cast<size_t>(i)); }
  [[nodiscard]] const std::vector<TemplateNode>& nodes() const { return nodes_; }
  [[nodiscard]] std::optional<int> find_node(const std::string& name) const;
  [[nodiscard]] const ComponentLibrary& library() const { return *library_; }
  [[nodiscard]] const channel::PropagationModel& channel_model() const { return *model_; }

  /// Node indices with the given role.
  [[nodiscard]] std::vector<int> nodes_with_role(Role r) const;

  /// Path loss (dB) between nodes i and j (cached, symmetric by model).
  [[nodiscard]] double path_loss_db(int i, int j) const;

  /// Best achievable RSS on link i->j: best TX-side EIRP of i's role plus
  /// best RX gain of j's role minus path loss. Used to prune hopeless links.
  [[nodiscard]] double best_rss_dbm(int i, int j) const;

  /// Sets the feasibility cutoff: ordered pairs whose best_rss is below
  /// this never become edges (default -95 dBm, just above thermal floors).
  void set_link_cutoff_rss_dbm(double v) { cutoff_rss_dbm_ = v; }
  [[nodiscard]] double link_cutoff_rss_dbm() const { return cutoff_rss_dbm_; }

  /// Materializes the potential-link graph: one directed edge per feasible
  /// ordered pair, weighted by path loss. Sensor nodes get no incoming
  /// edges and sink nodes no outgoing ones (data-collection semantics).
  /// The EdgeId order is deterministic; encoders key edge variables on it.
  [[nodiscard]] graph::Digraph build_graph() const;

 private:
  void ensure_pl_cache() const;

  const channel::PropagationModel* model_;
  const ComponentLibrary* library_;
  std::vector<TemplateNode> nodes_;
  double cutoff_rss_dbm_ = -95.0;
  /// Concurrent explorers share one template, so the lazy build is guarded:
  /// the atomic flag makes the hot (already-built) path lock-free and the
  /// mutex serializes the one-time fill.
  mutable std::vector<double> pl_cache_;  ///< row-major n*n, NaN = not built
  mutable std::atomic<bool> cache_valid_ = false;
  mutable std::mutex cache_mu_;
};

}  // namespace wnet::archex
