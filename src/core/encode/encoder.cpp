#include "core/encode/encoder.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <set>
#include <tuple>
#include <stdexcept>
#include <utility>

#include "channel/link_metrics.h"
#include "graph/connectivity.h"
#include "graph/yen.h"
#include "milp/linearize.h"
#include "util/obs/trace.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace wnet::archex {

namespace {

using graph::Digraph;
using graph::Path;
using milp::LinExpr;
using milp::Model;
using milp::Var;

using EdgeKey = std::pair<int, int>;
using util::exec::TerminationReason;

/// Per-cycle charge coefficients of one component under the TDMA model:
///   Q = A * (weighted TX count) + B * (weighted RX count) + S
/// where the weights fold in the per-edge ETX (see etx_for_edge).
struct ChargeCoefs {
  double a_tx;   ///< mA*s per expected transmission
  double b_rx;   ///< mA*s per expected reception
  double s0;     ///< sleep floor over the whole cycle
};

ChargeCoefs charge_coefs(const Component& c, const RadioConfig& radio) {
  const radio::TdmaConfig& tdma = radio.tdma;
  const double airtime = tdma.packet_airtime_s();
  const double awake = tdma.slots_per_packet() * tdma.slot_s;
  if (radio.mac == RadioConfig::MacProtocol::kCsma) {
    // Contention MAC: carrier-sense listen per attempt, and the idle
    // baseline is duty-cycled listening rather than pure sleep.
    const double duty = radio.csma.idle_listen_duty;
    const double baseline = c.currents.rx_ma * duty + c.currents.sleep_ma * (1.0 - duty);
    const double backoff_s = radio.csma.mean_backoff_slots * tdma.slot_s;
    return {
        c.currents.tx_ma * airtime + c.currents.rx_ma * backoff_s +
            (c.currents.active_ma - baseline) * awake,
        c.currents.rx_ma * airtime + (c.currents.active_ma - baseline) * awake,
        baseline * tdma.report_period_s,
    };
  }
  return {
      c.currents.tx_ma * airtime + (c.currents.active_ma - c.currents.sleep_ma) * awake,
      c.currents.rx_ma * airtime + (c.currents.active_ma - c.currents.sleep_ma) * awake,
      c.currents.sleep_ma * tdma.report_period_s,
  };
}

/// Whole encoding pass, kept as one stateful builder so the full and
/// approximate modes share every non-path emitter verbatim.
class Build {
 public:
  Build(const NetworkTemplate& tmpl, const Specification& spec, const EncoderOptions& opts)
      : t_(tmpl), s_(spec), o_(opts), g_(tmpl.build_graph()) {}

  EncodedProblem run() {
    execute();
    return std::move(p_);
  }

  /// Full build, leaving the problem (and the resumable bookkeeping) inside
  /// the builder so an incremental session can delta-extend it later.
  void execute() {
    util::Stopwatch clock;
    util::obs::ScopedSpan span("encode/full", "encode");
    span.arg("k_star", o_.k_star);
    collect_margins();
    if (gate()) determine_scope();
    if (gate()) emit_sizing();
    if (gate()) emit_edges_and_paths();
    if (gate()) emit_hardening();
    if (gate()) emit_link_quality();
    if (gate()) emit_energy();
    if (gate()) emit_localization();
    if (gate()) emit_objective();
    gate();  // charge the last phase's rows and pick up a late stop
    encoded_k_ = o_.k_star;
    refresh_stats();
    p_.stats.termination = stop_why_;
    p_.stats.encode_time_s = clock.seconds();
    p_.stats.reused_candidates = 0;
    p_.stats.delta_encode_time_s = 0.0;
    span.arg("vars", p_.stats.num_vars);
    span.arg("constrs", p_.stats.num_constrs);
    span.arg("candidates", p_.stats.candidate_paths);
  }

  [[nodiscard]] EncodedProblem& problem() { return p_; }

  /// Serial-spine gate between encoding phases: charges the rows emitted
  /// since the previous gate, counts one checkpoint, and latches the first
  /// stop reason. Once false it stays false, so the remaining phases are
  /// skipped and the partial model carries stats.termination.
  bool gate() {
    if (o_.exec.budget) {
      const long rows = static_cast<long>(p_.model.constrs().size());
      const bool ok = o_.exec.budget->charge_encode_rows(rows - charged_rows_);
      charged_rows_ = rows;
      if (!ok && stop_why_ == TerminationReason::kCompleted) {
        stop_why_ = TerminationReason::kNodeLimit;
      }
    }
    if (stop_why_ != TerminationReason::kCompleted) return false;
    TerminationReason why = TerminationReason::kCompleted;
    if (o_.exec.checkpoint(&why)) {
      stop_why_ = why;
    } else if (o_.exec.budget && o_.exec.budget->exhausted()) {
      // Worker-side refusals (Yen candidate caps) surface here, on the
      // spine, after the fork-join section that produced them.
      stop_why_ = TerminationReason::kNodeLimit;
    }
    return stop_why_ == TerminationReason::kCompleted;
  }

  /// Delta-extends an approximate encoding from the last encoded K* to
  /// `new_k`, appending only new candidates, variables and rows. Returns
  /// false when the delta cannot reproduce a fresh encode at `new_k`
  /// exactly (the caller then rebuilds from scratch):
  ///  - the disjoint-disconnect step would remove a different path, shifting
  ///    a later replica's base graph;
  ///  - a previously-empty (route, replica) group or unsatisfiable kAvoid
  ///    hardening gains compliant candidates (their explicit-infeasibility
  ///    zero variables would no longer exist in a fresh encode);
  ///  - a relay-cover cut's minimum drops to zero (a fresh encode omits the
  ///    row entirely).
  /// On success, `new_var_defaults_` holds one all-off default per appended
  /// variable, in variable-id order.
  bool extend_to_k(int new_k);

  /// Appends rows for o_.hardening[first..] (all must be kAvoid): same rows
  /// a fresh encode would emit, over the current candidate set.
  void append_avoid_hardenings(size_t first);

  /// Extends an assignment for the model as it stood before the last
  /// successful extend_to_k: appended selectors/mappings/edges go to 0 and
  /// each appended RSS variable is solved from its own equality row (it may
  /// reference mapping variables that are active in `prev`). Returns empty
  /// when `prev` does not match the pre-delta variable count.
  [[nodiscard]] std::vector<double> extend_assignment(const std::vector<double>& prev) const {
    if (prev.size() + new_var_defaults_.size() != static_cast<size_t>(p_.model.num_vars())) {
      return {};
    }
    std::vector<double> out = prev;
    out.insert(out.end(), new_var_defaults_.begin(), new_var_defaults_.end());
    for (const EdgeKey& key : delta_edges_) {
      const Var rss = p_.rss.at(key);
      const auto& cn = p_.model.constrs()[static_cast<size_t>(rss_row_.at(key))];
      // Row is  sum(gains * m) - rss = rhs  =>  rss = sum - rhs.
      double sum = 0.0;
      for (const auto& [v, c] : cn.expr.terms()) {
        if (v.id == rss.id) continue;
        sum += c * out[static_cast<size_t>(v.id)];
      }
      out[static_cast<size_t>(rss.id)] = sum - cn.rhs;
    }
    return out;
  }

  [[nodiscard]] int encoded_k() const { return encoded_k_; }

 private:
  void refresh_stats() {
    p_.stats.num_vars = p_.model.num_vars();
    p_.stats.num_constrs = p_.model.num_constrs();
    p_.stats.nonzeros = p_.model.num_nonzeros();
    p_.stats.candidate_paths = static_cast<int>(p_.candidates.size());
  }
  // ----------------------------------------------------------- hardening
  /// Folds kMargin hardenings into one per-link headroom map (max wins),
  /// consulted by both the LQ prefilter and the LQ implication.
  void collect_margins() {
    for (const auto& hc : o_.hardening) {
      if (hc.kind != HardeningConstraint::Kind::kMargin || hc.margin_db <= 0.0) continue;
      for (const auto& [a, b] : hc.links) {
        const EdgeKey key{std::min(a, b), std::max(a, b)};
        auto [it, fresh] = lq_margin_.try_emplace(key, hc.margin_db);
        if (!fresh) it->second = std::max(it->second, hc.margin_db);
      }
    }
  }

  [[nodiscard]] double margin_for(int i, int j) const {
    const auto it = lq_margin_.find({std::min(i, j), std::max(i, j)});
    return it == lq_margin_.end() ? 0.0 : it->second;
  }

  [[nodiscard]] static bool path_avoids(const Path& p, const HardeningConstraint& hc) {
    for (int v : hc.nodes) {
      if (graph::path_uses_node(p, v)) return false;
    }
    for (const auto& [a, b] : hc.links) {
      if (graph::path_uses_link(p, a, b)) return false;
    }
    return true;
  }

  /// kAvoid hardenings: per constraint, at least one replica of the route
  /// must avoid the failed element set. In approx mode this is a cover over
  /// the route's compliant candidate selectors; in full mode an indicator
  /// per replica certifies its x^pi touches nothing forbidden.
  void emit_hardening() {
    for (size_t hi = 0; hi < o_.hardening.size(); ++hi) emit_one_hardening(hi);
  }

  void emit_one_hardening(size_t hi) {
    const auto& hc = o_.hardening[hi];
    const std::string tag = "harden" + std::to_string(hi);
    {
      if (hc.kind != HardeningConstraint::Kind::kAvoid) return;
      if (hc.route_index < 0 || hc.route_index >= static_cast<int>(s_.routes.size())) return;

      if (o_.mode == EncoderOptions::PathMode::kApprox) {
        LinExpr ok;
        bool any = false;
        for (const auto& c : p_.candidates) {
          if (c.route_index != hc.route_index || !path_avoids(c.path, hc)) continue;
          ok += LinExpr(c.selector);
          any = true;
        }
        if (!any) {
          // No candidate can dodge the failed set: the hardening is
          // unsatisfiable under this K*/replica budget. Encode the verdict
          // explicitly so the repair loop sees infeasible, not a silently
          // dropped constraint.
          const Var zero = p_.model.add_binary(tag + "_unsat");
          p_.model.set_bounds(zero, 0.0, 0.0);
          ok += LinExpr(zero);
        }
        const int row = p_.model.add_ge(std::move(ok), 1.0, tag);
        avoid_rows_.push_back({hi, row, !any});
      } else {
        LinExpr ok;
        for (size_t pi = 0; pi < p_.full_path_edges.size(); ++pi) {
          if (p_.full_path_ids[pi].first != hc.route_index) continue;
          LinExpr forbidden;
          bool touched = false;
          for (const auto& [key, x] : p_.full_path_edges[pi]) {
            bool bad = false;
            for (int v : hc.nodes) bad = bad || key.first == v || key.second == v;
            for (const auto& [a, b] : hc.links) {
              bad = bad || (key.first == a && key.second == b) ||
                    (key.first == b && key.second == a);
            }
            if (bad) {
              forbidden += LinExpr(x);
              touched = true;
            }
          }
          const Var a = p_.model.add_binary(tag + "_ok_p" + std::to_string(pi));
          if (touched) {
            milp::imply_le(p_.model, a, forbidden, 0.0, tag + "_clean_p" + std::to_string(pi));
          }
          ok += LinExpr(a);
        }
        p_.model.add_ge(std::move(ok), 1.0, tag);
      }
    }
  }

  // ---------------------------------------------------------------- scope
  void determine_scope() {
    if (o_.mode == EncoderOptions::PathMode::kFull) {
      for (int i = 0; i < t_.num_nodes(); ++i) node_in_scope_.insert(i);
      for (const auto& e : g_.edges()) scope_edges_.insert({e.from, e.to});
    } else {
      generate_candidates();
      for (const auto& cand : pending_candidates_) {
        for (size_t k = 0; k + 1 < cand.path.nodes.size(); ++k) {
          scope_edges_.insert({cand.path.nodes[k], cand.path.nodes[k + 1]});
        }
        for (int v : cand.path.nodes) node_in_scope_.insert(v);
      }
    }
    // Fixed nodes and anchors participate regardless of routing.
    for (int i = 0; i < t_.num_nodes(); ++i) {
      const auto& nd = t_.node(i);
      if (nd.kind == NodeKind::kFixed || nd.role == Role::kAnchor) node_in_scope_.insert(i);
    }
    // Route endpoints must exist even if no candidate survived (the model
    // must then come out infeasible, not silently shrunk).
    for (const auto& r : s_.routes) {
      node_in_scope_.insert(r.source);
      node_in_scope_.insert(r.dest);
    }
  }

  // ------------------------------------------------------- Algorithm 1
  struct PendingCandidate {
    Path path;
    int route_index;
    int replica;
  };

  /// Resumable Yen state for one (route, replica) group: the enumerator
  /// keeps the accepted list and candidate pool alive across K* rungs, so a
  /// later extend_to_k only derives the new paths.
  struct RepState {
    std::unique_ptr<graph::YenEnumerator> en;
    size_t consumed = 0;  ///< raw (pre-hop-filter) paths already taken
    /// Edges disconnected before this replica started, sorted. A delta is
    /// only valid if replaying the disconnect step over the extended batches
    /// bans exactly the same edges — otherwise a fresh encode would have run
    /// this replica's Yen on a different graph.
    std::vector<graph::EdgeId> banned_before;
  };
  struct RouteState {
    std::vector<RepState> reps;
    int k_per_rep = 0;
  };

  /// From the *filtered* batch of one replica group, the edges that
  /// DisconnectMinDisjointPath removes before the next group (the path
  /// sharing the most edges with its batch; first max wins).
  [[nodiscard]] static std::vector<graph::EdgeId> disconnect_edges(
      const std::vector<Path>& paths) {
    size_t worst = 0;
    int worst_shared = -1;
    for (size_t a = 0; a < paths.size(); ++a) {
      int shared = 0;
      for (size_t b = 0; b < paths.size(); ++b) {
        if (a != b) shared += graph::shared_edges(paths[a], paths[b]);
      }
      if (shared > worst_shared) {
        worst_shared = shared;
        worst = a;
      }
    }
    return paths[worst].edges;
  }

  [[nodiscard]] std::vector<Path> hop_filtered(std::vector<Path> paths, int ri) const {
    const auto& route = s_.routes[static_cast<size_t>(ri)];
    if (route.max_hops) {
      std::erase_if(paths, [&](const Path& p) { return p.hops() > *route.max_hops; });
    }
    return paths;
  }

  /// Yen batches for one route, on a private copy of the prefiltered graph
  /// (DisconnectMinDisjointPath mutates weights between replica groups).
  /// Pure apart from the copy, so routes can run on any thread.
  [[nodiscard]] std::pair<std::vector<PendingCandidate>, RouteState> route_candidates(
      const Digraph& base, int ri) const {
    std::vector<PendingCandidate> out;
    RouteState st;
    // Runs on worker-pool threads: poll-only control (no checkpoint
    // counting), per the exec determinism contract.
    const util::exec::ExecControl ctl = o_.exec.worker_view();
    Digraph work = base;
    std::vector<graph::EdgeId> banned;  // cumulative, sorted
    const auto& route = s_.routes[static_cast<size_t>(ri)];
    const int nrep = std::max(1, route.replicas);
    // Runs on encoder worker threads, so traces show the Yen fan-out lanes.
    util::obs::ScopedSpan span("encode/yen_route", "encode");
    span.arg("route", ri);
    span.arg("replicas", nrep);
    // BalanceData: split K* into Nrep groups of K with Nrep*K >= K*.
    st.k_per_rep = std::max(1, (o_.k_star + nrep - 1) / nrep);

    for (int rep = 0; rep < nrep; ++rep) {
      if (ctl.stopped()) break;  // the spine gate reports the reason
      RepState rp;
      rp.banned_before = banned;
      rp.en = std::make_unique<graph::YenEnumerator>(work, route.source, route.dest);
      auto paths = hop_filtered(rp.en->next_batch(st.k_per_rep, ctl), ri);
      rp.consumed = rp.en->accepted().size();
      st.reps.push_back(std::move(rp));
      for (const Path& p : paths) {
        out.push_back({p, ri, rep});
      }
      if (o_.disjoint_strategy == EncoderOptions::DisjointStrategy::kNone) continue;
      if (rep + 1 < nrep && !paths.empty()) {
        // DisconnectMinDisjointPath: remove the path sharing the most
        // edges with its batch so the next group starts fresh.
        for (graph::EdgeId e : disconnect_edges(paths)) {
          work.set_weight(e, graph::kInfWeight);
          banned.push_back(e);
        }
        std::sort(banned.begin(), banned.end());
        banned.erase(std::unique(banned.begin(), banned.end()), banned.end());
      }
    }
    span.arg("candidates", static_cast<double>(out.size()));
    return {std::move(out), std::move(st)};
  }

  void generate_candidates() {
    Digraph base = g_;
    const auto rss_floor = s_.min_rss_dbm();

    // LQ prefilter: links that cannot meet the bound (including any fading
    // margin hardened onto them) even with the best components never become
    // candidates.
    if (o_.lq_prefilter && rss_floor) {
      for (int e = 0; e < base.num_edges(); ++e) {
        const auto& ed = base.edge(e);
        if (t_.best_rss_dbm(ed.from, ed.to) < *rss_floor + margin_for(ed.from, ed.to)) {
          base.set_weight(e, graph::kInfWeight);
        }
      }
    }

    // Routes are independent Yen sweeps; fan them out and merge the batches
    // back in route order, so the candidate list (and every variable name
    // and constraint downstream) is identical for any thread count.
    const util::ParallelExecutor exec(o_.threads);
    auto per_route = exec.map<std::pair<std::vector<PendingCandidate>, RouteState>>(
        static_cast<int>(s_.routes.size()),
        [&](int ri) { return route_candidates(base, ri); });
    for (auto& [batch, st] : per_route) {
      for (auto& pc : batch) pending_candidates_.push_back(std::move(pc));
      route_states_.push_back(std::move(st));
    }
  }

  // --------------------------------------------------------------- sizing
  [[nodiscard]] std::vector<int> compatible_components(int node) const {
    const auto& nd = t_.node(node);
    if (nd.fixed_component) return {*nd.fixed_component};
    return t_.library().with_role(nd.role);
  }

  void emit_sizing() {
    p_.node_used.assign(static_cast<size_t>(t_.num_nodes()), Var{});
    for (int i : node_in_scope_) emit_sizing_node(i);
  }

  void emit_sizing_node(int i) {
    const auto& nd = t_.node(i);
    const Var u = p_.model.add_binary("u_" + nd.name);
    p_.model.set_branch_priority(u, 1);
    p_.node_used[static_cast<size_t>(i)] = u;
    if (nd.kind == NodeKind::kFixed) p_.model.set_bounds(u, 1.0, 1.0);

    LinExpr sum;
    for (int c : compatible_components(i)) {
      const Var m = p_.model.add_binary("m_" + t_.library().at(c).name + "_" + nd.name);
      p_.mapping[{c, i}] = m;
      sum += LinExpr(m);
    }
    sum -= LinExpr(u);
    p_.model.add_eq(std::move(sum), 0.0, "sizing_" + nd.name);
  }

  // ------------------------------------------------------ edges and paths
  Var edge_var(int from, int to) {
    const EdgeKey key{from, to};
    auto it = p_.edge_active.find(key);
    if (it != p_.edge_active.end()) return it->second;
    const Var e = p_.model.add_binary("e_" + t_.node(from).name + "_" + t_.node(to).name);
    p_.model.set_branch_priority(e, 2);
    p_.edge_active[key] = e;
    // A link needs both endpoints deployed. Lazy mode leaves these pure
    // implication rows to the separator too — two per scoped edge, they are
    // the largest skeleton family at scale.
    if (o_.lazy_separation) {
      p_.stats.lazy_rows_omitted += 2;
    } else {
      p_.model.add_le(LinExpr(e) - LinExpr(p_.node_used[static_cast<size_t>(from)]), 0.0);
      p_.model.add_le(LinExpr(e) - LinExpr(p_.node_used[static_cast<size_t>(to)]), 0.0);
    }
    return e;
  }

  void emit_edges_and_paths() {
    for (const EdgeKey& k : scope_edges_) edge_var(k.first, k.second);
    if (o_.mode == EncoderOptions::PathMode::kFull) {
      emit_full_paths();
    } else {
      emit_approx_paths();
    }
    emit_node_upper_links();
  }

  void emit_approx_paths() {
    // Selector binaries.
    for (auto& pc : pending_candidates_) {
      const Var y = p_.model.add_binary("y_r" + std::to_string(pc.route_index) + "_rep" +
                                        std::to_string(pc.replica) + "_" +
                                        std::to_string(p_.candidates.size()));
      p_.model.set_branch_priority(y, 3);  // structural decisions branch first
      p_.candidates.push_back({std::move(pc.path), y, pc.route_index, pc.replica});
    }
    pending_candidates_.clear();

    // Group selection: exactly one candidate per (route, replica) group.
    // Equality (rather than >= 1) is lossless — dropping a surplus path
    // only relaxes the remaining constraints — and it licenses the
    // aggregated implications below, which tighten the LP relaxation
    // substantially (a fractional unit of path mass forces a full unit of
    // edge/node mass instead of 1/K of it).
    for (size_t ri = 0; ri < s_.routes.size(); ++ri) {
      const int nrep = std::max(1, s_.routes[ri].replicas);
      for (int rep = 0; rep < nrep; ++rep) {
        LinExpr any;
        bool has = false;
        for (const auto& c : p_.candidates) {
          if (c.route_index == static_cast<int>(ri) && c.replica == rep) {
            any += LinExpr(c.selector);
            has = true;
          }
        }
        if (!has) {
          // No surviving candidate: the requirement is unsatisfiable under
          // this K*; encode that verdict explicitly.
          const Var zero = p_.model.add_binary("no_candidate");
          p_.model.set_bounds(zero, 0.0, 0.0);
          any += LinExpr(zero);
          group_unsat_.insert({static_cast<int>(ri), rep});
        }
        group_row_[{static_cast<int>(ri), rep}] =
            p_.model.add_eq(std::move(any), 1.0,
                            "route" + std::to_string(ri) + "_rep" + std::to_string(rep));
      }
    }

    // Edge activation, aggregated per group: since exactly one candidate
    // of a group is chosen, e_ij >= sum of the group's selectors using ij
    // is valid and dominates the per-candidate form y <= e.
    std::map<EdgeKey, LinExpr> users;
    std::map<std::tuple<int, int, int, int>, LinExpr> group_edge;   // (route, rep, i, j)
    std::map<std::tuple<int, int, int>, LinExpr> group_node;        // (route, rep, node)
    for (const auto& c : p_.candidates) {
      for (size_t k = 0; k + 1 < c.path.nodes.size(); ++k) {
        const EdgeKey key{c.path.nodes[k], c.path.nodes[k + 1]};
        users[key] += LinExpr(c.selector);
        group_edge[{c.route_index, c.replica, key.first, key.second}] += LinExpr(c.selector);
      }
      for (int v : c.path.nodes) {
        if (t_.node(v).kind == NodeKind::kFixed) continue;  // u already 1
        group_node[{c.route_index, c.replica, v}] += LinExpr(c.selector);
      }
    }
    // Lazy mode keeps the relaxed skeleton only: the group linking rows
    // (the dominant family at scale) are skipped here and recovered on
    // demand by the LazySeparation callbacks during the solve.
    if (o_.lazy_separation) {
      p_.stats.lazy_rows_omitted +=
          static_cast<int>(group_edge.size() + group_node.size());
    } else {
      for (auto& [key, expr] : group_edge) {
        expr -= LinExpr(p_.edge_active.at({std::get<2>(key), std::get<3>(key)}));
        group_edge_row_[key] = p_.model.add_le(std::move(expr), 0.0);  // group path mass <= e
      }
      for (auto& [key, expr] : group_node) {
        expr -= LinExpr(p_.node_used[static_cast<size_t>(std::get<2>(key))]);
        group_node_row_[key] = p_.model.add_le(std::move(expr), 0.0);  // group path mass <= u
      }
    }
    for (auto& [key, expr] : users) {
      expr -= LinExpr(p_.edge_active.at(key));
      users_row_[key] = p_.model.add_ge(std::move(expr), 0.0);  // e <= sum of users
    }

    // Relay-cover cuts: whichever candidate a group picks, it deploys at
    // least h_g = min-over-candidates relay count, all drawn from the
    // union of the group's relay sets. Redundant for integer solutions
    // but lifts the LP bound (fractional path mass can no longer spread
    // relay usage below the unavoidable minimum).
    {
      for (const auto& c : p_.candidates) {
        auto [it, fresh] = cover_data_.try_emplace({c.route_index, c.replica},
                                                   std::set<int>{}, INT32_MAX);
        int relays = 0;
        for (int v : c.path.nodes) {
          if (t_.node(v).kind == NodeKind::kFixed) continue;
          it->second.first.insert(v);
          ++relays;
        }
        it->second.second = std::min(it->second.second, relays);
      }
      for (const auto& [key, uc] : cover_data_) {
        if (uc.second <= 0 || uc.first.empty()) continue;
        LinExpr sum;
        for (int v : uc.first) sum += LinExpr(p_.node_used[static_cast<size_t>(v)]);
        cover_row_[key] = p_.model.add_ge(
            std::move(sum), static_cast<double>(uc.second),
            "cover_r" + std::to_string(key.first) + "_" + std::to_string(key.second));
      }
    }

    // Disjointness of chosen replicas (the (1d) analog on candidates):
    // same-route candidates from different groups sharing an edge conflict.
    // Lazy mode counts the O(K^2) pairs instead of emitting them.
    for (size_t a = 0; a < p_.candidates.size(); ++a) {
      for (size_t b = a + 1; b < p_.candidates.size(); ++b) {
        const auto& ca = p_.candidates[a];
        const auto& cb = p_.candidates[b];
        if (ca.route_index != cb.route_index || ca.replica == cb.replica) continue;
        if (graph::shared_edges(ca.path, cb.path) > 0) {
          if (o_.lazy_separation) {
            ++p_.stats.lazy_rows_omitted;
          } else {
            p_.model.add_le(LinExpr(ca.selector) + LinExpr(cb.selector), 1.0);
          }
        }
      }
    }
  }

  void emit_full_paths() {
    // Per required path replica: x^pi variables over every template edge,
    // flow balance (1a), loop limits (1c), edge linking (1b), hops (1e).
    std::vector<std::vector<size_t>> route_paths(s_.routes.size());
    for (size_t ri = 0; ri < s_.routes.size(); ++ri) {
      const auto& route = s_.routes[ri];
      const int nrep = std::max(1, route.replicas);
      for (int rep = 0; rep < nrep; ++rep) {
        const size_t pi = p_.full_path_edges.size();
        route_paths[ri].push_back(pi);
        p_.full_path_edges.emplace_back();
        p_.full_path_ids.emplace_back(static_cast<int>(ri), rep);
        auto& xmap = p_.full_path_edges.back();
        const std::string tag = "p" + std::to_string(pi);

        for (const auto& e : g_.edges()) {
          const Var x = p_.model.add_binary("x_" + tag + "_" + std::to_string(e.from) + "_" +
                                            std::to_string(e.to));
          xmap[{e.from, e.to}] = x;
          // (1b) x <= e.
          p_.model.add_le(LinExpr(x) - LinExpr(p_.edge_active.at({e.from, e.to})), 0.0);
        }

        // (1a) balance; (1c) degree limits.
        for (int v = 0; v < t_.num_nodes(); ++v) {
          LinExpr balance;
          LinExpr outdeg;
          LinExpr indeg;
          bool touched = false;
          for (const auto& [key, x] : xmap) {
            if (key.first == v) {
              balance += LinExpr(x);
              outdeg += LinExpr(x);
              touched = true;
            }
            if (key.second == v) {
              balance -= LinExpr(x);
              indeg += LinExpr(x);
              touched = true;
            }
          }
          const double z = v == route.source ? 1.0 : (v == route.dest ? -1.0 : 0.0);
          if (!touched) {
            if (z != 0.0) {
              // Endpoint with no incident edges: infeasible by construction.
              const Var zero = p_.model.add_binary("iso_" + tag);
              p_.model.set_bounds(zero, 0.0, 0.0);
              p_.model.add_ge(LinExpr(zero), 1.0);
            }
            continue;
          }
          p_.model.add_eq(std::move(balance), z, "bal_" + tag + "_" + std::to_string(v));
          p_.model.add_le(std::move(outdeg), 1.0);
          p_.model.add_le(std::move(indeg), 1.0);
        }

        // (1e) hop bound.
        if (route.max_hops) {
          LinExpr hops;
          for (const auto& [key, x] : xmap) hops += LinExpr(x);
          p_.model.add_le(std::move(hops), static_cast<double>(*route.max_hops));
        }
      }
      // (1d) pairwise edge-disjointness between replicas.
      for (size_t a = 0; a < route_paths[ri].size(); ++a) {
        for (size_t b = a + 1; b < route_paths[ri].size(); ++b) {
          const auto& xa = p_.full_path_edges[route_paths[ri][a]];
          const auto& xb = p_.full_path_edges[route_paths[ri][b]];
          for (const auto& [key, va] : xa) {
            p_.model.add_le(LinExpr(va) + LinExpr(xb.at(key)), 1.0);
          }
        }
      }
    }

    // e <= sum of path usages (no phantom edges).
    for (const auto& [key, e] : p_.edge_active) {
      LinExpr sum;
      for (const auto& xmap : p_.full_path_edges) {
        auto it = xmap.find(key);
        if (it != xmap.end()) sum += LinExpr(it->second);
      }
      sum -= LinExpr(e);
      p_.model.add_ge(std::move(sum), 0.0);
    }
  }

  void emit_node_upper_links() {
    // A candidate node may only be "used" when something uses it: an
    // incident active edge now, or a localization reach var added later.
    // Collect incident edges here; emit_localization() extends the expr.
    for (int i : node_in_scope_) {
      if (t_.node(i).kind == NodeKind::kFixed) continue;
      LinExpr& users = node_users_[i];
      for (const auto& [key, e] : p_.edge_active) {
        if (key.first == i || key.second == i) users += LinExpr(e);
      }
    }
  }

  void finalize_node_upper_links() {
    for (auto& [i, users] : node_users_) {
      users -= LinExpr(p_.node_used[static_cast<size_t>(i)]);
      used_ub_row_[i] = p_.model.add_ge(std::move(users), 0.0, "used_ub_" + t_.node(i).name);
    }
    node_users_.clear();
  }

  // --------------------------------------------------------- link quality
  void emit_link_quality() {
    for (const auto& [key, e] : p_.edge_active) emit_lq_edge(key, e);
  }

  void emit_lq_edge(const EdgeKey& key, Var e) {
    const auto rss_floor = s_.min_rss_dbm();
    const auto [i, j] = key;
    const double pl = t_.path_loss_db(i, j);
    // RSS = -PL + sum_c m_ci (tx_c + g_c) + sum_c m_cj g_c  (2a).
    LinExpr rhs = LinExpr(-pl);
    double lo = -pl;
    double hi = -pl;
    double tx_lo = milp::kInf, tx_hi = -milp::kInf;
    for (int c : compatible_components(i)) {
      const Component& comp = t_.library().at(c);
      const double gain = comp.tx_power_dbm + comp.antenna_gain_dbi;
      rhs += gain * LinExpr(p_.mapping.at({c, i}));
      tx_lo = std::min(tx_lo, gain);
      tx_hi = std::max(tx_hi, gain);
    }
    double rx_lo = milp::kInf, rx_hi = -milp::kInf;
    for (int c : compatible_components(j)) {
      const double gain = t_.library().at(c).antenna_gain_dbi;
      rhs += gain * LinExpr(p_.mapping.at({c, j}));
      rx_lo = std::min(rx_lo, gain);
      rx_hi = std::max(rx_hi, gain);
    }
    lo += std::min(tx_lo, 0.0) + std::min(rx_lo, 0.0);
    hi += std::max(tx_hi, 0.0) + std::max(rx_hi, 0.0);

    const Var rss = p_.model.add_continuous(
        "rss_" + t_.node(i).name + "_" + t_.node(j).name, lo, hi);
    p_.rss[key] = rss;
    rhs -= LinExpr(rss);
    rss_row_[key] = p_.model.add_eq(std::move(rhs), 0.0);
    // (2b): active link must clear the bound, plus any fading-hardening
    // headroom the repair loop demanded for this link.
    if (rss_floor) {
      milp::imply_ge(p_.model, e, LinExpr(rss), *rss_floor + margin_for(i, j),
                     "lq_" + t_.node(i).name + "_" + t_.node(j).name);
    }
  }

  // -------------------------------------------------------------- energy
  /// Conservative per-edge ETX: evaluated at the lowest SNR the admitted
  /// design can exhibit on this link (the LQ floor if enforced, otherwise
  /// the worst component choice), so the MILP never underestimates energy.
  [[nodiscard]] double etx_for_edge(int i, int j) const {
    double worst_rss = milp::kInf;
    for (int c : compatible_components(i)) {
      const Component& comp = t_.library().at(c);
      worst_rss = std::min(worst_rss, comp.tx_power_dbm + comp.antenna_gain_dbi);
    }
    worst_rss += -t_.path_loss_db(i, j);  // RX gain >= 0 conservatively omitted
    const auto rss_floor = s_.min_rss_dbm();
    if (rss_floor) worst_rss = std::max(worst_rss, *rss_floor);
    const double snr = worst_rss - s_.radio.noise_floor_dbm;
    return channel::etx_from_snr(s_.radio.modulation, snr, s_.radio.tdma.packet_bytes);
  }

  [[nodiscard]] bool energy_enabled() const {
    return s_.lifetime || s_.objective.weight_energy != 0.0;
  }

  [[nodiscard]] double energy_fmax() const {
    int total_paths = 0;
    for (const auto& r : s_.routes) total_paths += std::max(1, r.replicas);
    return std::max(1, total_paths) * 100.0;  // ETX-weighted cap
  }

  /// TX / RX ETX weights one candidate's path induces on node i.
  [[nodiscard]] std::pair<double, double> candidate_traffic(const Path& path, int i) const {
    double tx_w = 0.0, rx_w = 0.0;
    for (size_t k = 0; k + 1 < path.nodes.size(); ++k) {
      if (path.nodes[k] == i) tx_w += etx_for_edge(i, path.nodes[k + 1]);
      if (path.nodes[k + 1] == i) rx_w += etx_for_edge(path.nodes[k], i);
    }
    return {tx_w, rx_w};
  }

  /// Creates ftx/frx for node i and ties them to the routing mass in
  /// tx_expr/rx_expr (equality rows recorded for incremental widening),
  /// plus the per-component lifetime implications.
  void emit_energy_node(int i, LinExpr tx_expr, LinExpr rx_expr) {
    const auto& nd = t_.node(i);
    const double fmax = energy_fmax();
    const Var ftx = p_.model.add_continuous("ftx_" + nd.name, 0.0, fmax);
    const Var frx = p_.model.add_continuous("frx_" + nd.name, 0.0, fmax);
    tx_expr -= LinExpr(ftx);
    rx_expr -= LinExpr(frx);
    const int tx_row = p_.model.add_eq(std::move(tx_expr), 0.0);
    const int rx_row = p_.model.add_eq(std::move(rx_expr), 0.0);
    node_traffic_vars_[i] = {ftx, frx};
    traffic_rows_[i] = {tx_row, rx_row};

    if (s_.lifetime) {
      // (3a): per admitted component, charge per cycle within budget.
      const radio::TdmaConfig& tdma = s_.radio.tdma;
      const double battery_mas = s_.lifetime->battery_mah * 3600.0;
      const double cap = battery_mas * tdma.report_period_s /
                         (s_.lifetime->min_years * radio::kSecondsPerYear);
      for (int c : compatible_components(i)) {
        const auto cc = charge_coefs(t_.library().at(c), s_.radio);
        milp::imply_le(p_.model, p_.mapping.at({c, i}),
                       cc.a_tx * LinExpr(ftx) + cc.b_rx * LinExpr(frx), cap - cc.s0,
                       "life_" + t_.library().at(c).name + "_" + nd.name);
      }
    }
  }

  void emit_energy() {
    if (!energy_enabled()) return;
    s_.radio.tdma.validate();

    for (int i : node_in_scope_) {
      const auto& nd = t_.node(i);
      if (nd.role == Role::kSink) continue;  // mains powered
      // Weighted TX / RX counts induced by routing through node i.
      LinExpr tx_expr;
      LinExpr rx_expr;
      bool touched = false;
      if (o_.mode == EncoderOptions::PathMode::kApprox) {
        for (const auto& c : p_.candidates) {
          const auto [tx_w, rx_w] = candidate_traffic(c.path, i);
          if (tx_w > 0) tx_expr += tx_w * LinExpr(c.selector);
          if (rx_w > 0) rx_expr += rx_w * LinExpr(c.selector);
          touched = touched || tx_w > 0 || rx_w > 0;
        }
      } else {
        for (const auto& xmap : p_.full_path_edges) {
          for (const auto& [key, x] : xmap) {
            if (key.first == i) {
              tx_expr += etx_for_edge(key.first, key.second) * LinExpr(x);
              touched = true;
            }
            if (key.second == i) {
              rx_expr += etx_for_edge(key.first, key.second) * LinExpr(x);
              touched = true;
            }
          }
        }
      }
      if (!touched && s_.objective.weight_energy == 0.0) continue;
      emit_energy_node(i, std::move(tx_expr), std::move(rx_expr));
    }
  }

  // -------------------------------------------------------- localization
  void emit_localization() {
    if (s_.localization) {
      const auto& loc = *s_.localization;
      const auto anchors = t_.nodes_with_role(Role::kAnchor);
      for (size_t pj = 0; pj < loc.eval_points.size(); ++pj) {
        const geom::Vec2 pt = loc.eval_points[pj];

        // Candidate anchors for this point, nearest (in path loss) first.
        std::vector<std::pair<double, int>> ranked;
        for (int i : anchors) {
          ranked.emplace_back(t_.channel_model().path_loss_db(t_.node(i).position, pt), i);
        }
        std::sort(ranked.begin(), ranked.end());
        size_t limit = ranked.size();
        if (o_.mode == EncoderOptions::PathMode::kApprox && o_.loc_candidates > 0) {
          limit = std::min<size_t>(limit, static_cast<size_t>(o_.loc_candidates));
        }

        LinExpr coverage;
        bool any = false;
        for (size_t r = 0; r < limit; ++r) {
          const auto [pl, i] = ranked[r];
          // Components of i able to reach the point at the required RSS.
          LinExpr reaching;
          bool reachable = false;
          for (int c : compatible_components(i)) {
            const Component& comp = t_.library().at(c);
            if (comp.tx_power_dbm + comp.antenna_gain_dbi - pl >= loc.min_rss_dbm) {
              reaching += LinExpr(p_.mapping.at({c, i}));
              reachable = true;
            }
          }
          if (!reachable) continue;
          const Var rij = p_.model.add_binary("r_" + t_.node(i).name + "_p" + std::to_string(pj));
          p_.reach[{i, static_cast<int>(pj)}] = rij;
          // (4a) both ways: r_ij = (a reaching component is deployed at i).
          // The lower links make r an honest reachability indicator, so the
          // DSOD objective charges every deployed anchor its full
          // point-distance mass (favoring few, strong, central anchors —
          // the paper's observed Table 2 behavior) instead of letting the
          // solver cherry-pick serving anchors.
          for (const auto& [v, coef] : reaching.terms()) {
            p_.model.add_le(LinExpr(v) - LinExpr(rij), 0.0);
          }
          reaching -= LinExpr(rij);
          p_.model.add_ge(std::move(reaching), 0.0);
          coverage += LinExpr(rij);
          any = true;
          auto it = node_users_.find(i);
          if (it != node_users_.end()) it->second += LinExpr(rij);
        }
        if (!any) {
          const Var zero = p_.model.add_binary("unreachable_p" + std::to_string(pj));
          p_.model.set_bounds(zero, 0.0, 0.0);
          coverage += LinExpr(zero);
        }
        // (4b): at least N anchors cover this point.
        p_.model.add_ge(std::move(coverage), static_cast<double>(loc.min_anchors),
                        "cover_p" + std::to_string(pj));
      }
    }
    finalize_node_upper_links();
  }

  // ----------------------------------------------------------- objective
  /// q_i >= charge-per-cycle of the admitted component; feeds the energy
  /// objective term. Split from rebuild_objective so a delta pass can add q
  /// variables for nodes that gained traffic without touching old ones.
  void emit_energy_objective_var(int i) {
    const auto& [ftx, frx] = node_traffic_vars_.at(i);
    double qmax = 0.0;
    for (int c : compatible_components(i)) {
      const auto cc = charge_coefs(t_.library().at(c), s_.radio);
      qmax = std::max(qmax, cc.a_tx * p_.model.var(ftx).ub + cc.b_rx * p_.model.var(frx).ub + cc.s0);
    }
    const Var q = p_.model.add_continuous("q_" + t_.node(i).name, 0.0, qmax);
    for (int c : compatible_components(i)) {
      const auto cc = charge_coefs(t_.library().at(c), s_.radio);
      milp::imply_ge(p_.model, p_.mapping.at({c, i}),
                     LinExpr(q) - cc.a_tx * LinExpr(ftx) - cc.b_rx * LinExpr(frx), cc.s0,
                     "q_lb_" + t_.node(i).name);
    }
    q_var_[i] = q;
  }

  void emit_objective() {
    if (s_.objective.weight_energy != 0.0) {
      for (const auto& entry : node_traffic_vars_) emit_energy_objective_var(entry.first);
    }
    rebuild_objective();
  }

  /// Recomputes the whole objective from the decode tables. LinExpr merges
  /// terms by variable, so rebuilding after a delta yields exactly what a
  /// fresh encode would produce.
  void rebuild_objective() {
    LinExpr obj;
    if (s_.objective.weight_cost != 0.0) {
      for (const auto& [key, m] : p_.mapping) {
        const double cost = t_.library().at(key.first).cost_usd;
        if (cost != 0.0) obj += s_.objective.weight_cost * cost * LinExpr(m);
      }
    }
    if (s_.objective.weight_energy != 0.0) {
      for (const auto& [i, q] : q_var_) {
        obj += s_.objective.weight_energy * LinExpr(q);
      }
    }
    if (s_.objective.weight_dsod != 0.0 && s_.localization) {
      for (const auto& [key, rij] : p_.reach) {
        const auto [i, pj] = key;
        const double d =
            t_.node(i).position.dist(s_.localization->eval_points[static_cast<size_t>(pj)]);
        obj += s_.objective.weight_dsod * d * LinExpr(rij);
      }
    }
    p_.model.minimize(std::move(obj));
  }

  const NetworkTemplate& t_;
  const Specification& s_;
  const EncoderOptions& o_;
  Digraph g_;
  EncodedProblem p_;
  std::set<int> node_in_scope_;
  std::set<EdgeKey> scope_edges_;
  std::vector<PendingCandidate> pending_candidates_;
  std::map<int, LinExpr> node_users_;
  std::map<int, std::pair<Var, Var>> node_traffic_vars_;
  std::map<EdgeKey, double> lq_margin_;  ///< undirected (lo,hi) -> headroom dB

  // ------------------------------------------- incremental-session state
  // Row-index bookkeeping recorded during the fresh build so extend_to_k
  // can widen existing constraints in place instead of re-emitting them.
  struct AvoidRow {
    size_t hardening_index;
    int row;
    bool unsat;  ///< row holds a pinned-zero var: no candidate complied
  };
  int encoded_k_ = -1;                           ///< K* the model currently encodes
  std::vector<RouteState> route_states_;         ///< per route, resumable Yen state
  std::map<std::pair<int, int>, int> group_row_;                 ///< (route, rep) -> eq row
  std::set<std::pair<int, int>> group_unsat_;                    ///< groups with pinned-zero var
  std::map<EdgeKey, int> users_row_;                             ///< e <= sum users rows
  std::map<std::tuple<int, int, int, int>, int> group_edge_row_; ///< (route,rep,i,j) -> LE row
  std::map<std::tuple<int, int, int>, int> group_node_row_;      ///< (route,rep,node) -> LE row
  std::map<std::pair<int, int>, std::pair<std::set<int>, int>> cover_data_;  ///< -> (union, h)
  std::map<std::pair<int, int>, int> cover_row_;                 ///< (route, rep) -> GE row
  std::map<int, int> used_ub_row_;                               ///< node -> GE row
  std::map<EdgeKey, int> rss_row_;                               ///< edge -> RSS eq row
  std::map<int, std::pair<int, int>> traffic_rows_;              ///< node -> (tx eq, rx eq)
  std::vector<EdgeKey> delta_edges_;  ///< edges appended by the last extend_to_k
  std::map<int, Var> q_var_;                                     ///< node -> q objective var
  std::vector<AvoidRow> avoid_rows_;                             ///< kAvoid hardening rows
  std::vector<double> new_var_defaults_;  ///< per delta-appended var, id order
  TerminationReason stop_why_ = TerminationReason::kCompleted;  ///< first stop, latched
  long charged_rows_ = 0;  ///< constraint rows already charged to the budget
};

bool Build::extend_to_k(int new_k) {
  if (o_.mode != EncoderOptions::PathMode::kApprox) return false;
  if (new_k < encoded_k_) return false;  // shrinking never deltas
  if (new_k == encoded_k_) {
    new_var_defaults_.clear();
    delta_edges_.clear();
    return true;
  }
  util::Stopwatch clock;
  // Failed deltas record a span without the trailing "reused" arg — the
  // caller rebuilds, and the rebuild shows up as its own encode/full span.
  util::obs::ScopedSpan span("encode/delta", "encode");
  span.arg("from_k", encoded_k_);
  span.arg("to_k", new_k);
  const int prev_candidates = static_cast<int>(p_.candidates.size());
  const int vars_before = p_.model.num_vars();

  // Phase A: advance the resumable Yen enumerators and replay the
  // disjoint-disconnect step over the extended batches. No model mutation
  // happens here, so any `false` return leaves the MILP untouched and the
  // caller simply rebuilds.
  std::vector<PendingCandidate> fresh;
  for (size_t ri = 0; ri < route_states_.size(); ++ri) {
    RouteState& st = route_states_[ri];
    const auto& route = s_.routes[ri];
    const int nrep = std::max(1, route.replicas);
    const int new_kpr = std::max(1, (new_k + nrep - 1) / nrep);
    if (new_kpr == st.k_per_rep) continue;  // K grew too little to matter here
    if (new_kpr < st.k_per_rep) return false;
    std::vector<graph::EdgeId> banned;  // cumulative bans, recomputed
    for (int rep = 0; rep < nrep; ++rep) {
      RepState& rp = st.reps[static_cast<size_t>(rep)];
      if (rp.banned_before != banned) return false;  // disconnect drift
      const auto& batch = rp.en->next_batch(new_kpr);
      std::vector<Path> raw_new(batch.begin() + static_cast<std::ptrdiff_t>(rp.consumed),
                                batch.end());
      for (Path& p : hop_filtered(std::move(raw_new), static_cast<int>(ri))) {
        fresh.push_back({std::move(p), static_cast<int>(ri), rep});
      }
      rp.consumed = batch.size();
      if (o_.disjoint_strategy == EncoderOptions::DisjointStrategy::kNone) continue;
      if (rep + 1 < nrep) {
        const auto paths = hop_filtered(batch, static_cast<int>(ri));
        if (!paths.empty()) {
          for (graph::EdgeId e : disconnect_edges(paths)) banned.push_back(e);
          std::sort(banned.begin(), banned.end());
          banned.erase(std::unique(banned.begin(), banned.end()), banned.end());
        }
      }
    }
    st.k_per_rep = new_kpr;
  }

  // Phase A2: a delta must reproduce a fresh encode at new_k exactly.
  // Structures that a fresh encode would *not* emit anymore (pinned-zero
  // infeasibility markers, collapsed cover cuts) cannot be retracted from
  // the model, so their appearance forces a rebuild.
  for (const auto& pc : fresh) {
    if (group_unsat_.count({pc.route_index, pc.replica})) return false;
  }
  for (const auto& ar : avoid_rows_) {
    if (!ar.unsat) continue;
    const auto& hc = o_.hardening[ar.hardening_index];
    for (const auto& pc : fresh) {
      if (pc.route_index == hc.route_index && path_avoids(pc.path, hc)) return false;
    }
  }
  {
    std::map<std::pair<int, int>, int> fresh_h;
    for (const auto& pc : fresh) {
      int relays = 0;
      for (int v : pc.path.nodes) {
        if (t_.node(v).kind != NodeKind::kFixed) ++relays;
      }
      auto [it, first] = fresh_h.try_emplace({pc.route_index, pc.replica}, relays);
      if (!first) it->second = std::min(it->second, relays);
    }
    for (const auto& [key, h] : fresh_h) {
      auto row = cover_row_.find(key);
      if (row != cover_row_.end() && std::min(cover_data_.at(key).second, h) <= 0) return false;
    }
  }

  // Phase B: append-only mutation. Every grown constraint relaxes for the
  // all-off extension of a previous assignment, so a prior incumbent plus
  // new_var_defaults_ stays feasible (the MIP-start bridge relies on this).
  std::set<int> new_nodes;
  std::set<EdgeKey> new_edges;
  for (const auto& pc : fresh) {
    for (size_t k = 0; k + 1 < pc.path.nodes.size(); ++k) {
      const EdgeKey key{pc.path.nodes[k], pc.path.nodes[k + 1]};
      if (!scope_edges_.count(key)) new_edges.insert(key);
    }
    for (int v : pc.path.nodes) {
      if (!node_in_scope_.count(v)) new_nodes.insert(v);
    }
  }
  node_in_scope_.insert(new_nodes.begin(), new_nodes.end());
  scope_edges_.insert(new_edges.begin(), new_edges.end());

  for (int v : new_nodes) emit_sizing_node(v);

  std::map<int, LinExpr> new_users;
  for (const EdgeKey& key : new_edges) {
    const Var e = edge_var(key.first, key.second);
    for (const int endpoint : {key.first, key.second}) {
      if (t_.node(endpoint).kind == NodeKind::kFixed) continue;
      auto it = used_ub_row_.find(endpoint);
      if (it != used_ub_row_.end()) {
        p_.model.add_terms_to_constr(it->second, LinExpr(e));
      } else {
        new_users[endpoint] += LinExpr(e);
      }
    }
  }
  for (auto& [v, users] : new_users) {
    users -= LinExpr(p_.node_used[static_cast<size_t>(v)]);
    used_ub_row_[v] = p_.model.add_ge(std::move(users), 0.0, "used_ub_" + t_.node(v).name);
  }

  for (const EdgeKey& key : new_edges) emit_lq_edge(key, p_.edge_active.at(key));

  const size_t first_new = p_.candidates.size();
  for (auto& pc : fresh) {
    const Var y = p_.model.add_binary("y_r" + std::to_string(pc.route_index) + "_rep" +
                                      std::to_string(pc.replica) + "_" +
                                      std::to_string(p_.candidates.size()));
    p_.model.set_branch_priority(y, 3);
    p_.candidates.push_back({std::move(pc.path), y, pc.route_index, pc.replica});
  }

  // Widen the group disjunctions and the edge/node linking rows.
  std::map<std::pair<int, int>, LinExpr> group_delta;
  std::map<EdgeKey, LinExpr> users_delta;
  std::map<std::tuple<int, int, int, int>, LinExpr> ge_delta;
  std::map<std::tuple<int, int, int>, LinExpr> gn_delta;
  for (size_t ci = first_new; ci < p_.candidates.size(); ++ci) {
    const auto& c = p_.candidates[ci];
    group_delta[{c.route_index, c.replica}] += LinExpr(c.selector);
    for (size_t k = 0; k + 1 < c.path.nodes.size(); ++k) {
      const EdgeKey key{c.path.nodes[k], c.path.nodes[k + 1]};
      users_delta[key] += LinExpr(c.selector);
      ge_delta[{c.route_index, c.replica, key.first, key.second}] += LinExpr(c.selector);
    }
    for (int v : c.path.nodes) {
      if (t_.node(v).kind == NodeKind::kFixed) continue;
      gn_delta[{c.route_index, c.replica, v}] += LinExpr(c.selector);
    }
  }
  for (const auto& [key, d] : group_delta) p_.model.add_terms_to_constr(group_row_.at(key), d);
  for (auto& [key, d] : users_delta) {
    auto it = users_row_.find(key);
    if (it != users_row_.end()) {
      p_.model.add_terms_to_constr(it->second, d);
    } else {
      d -= LinExpr(p_.edge_active.at(key));
      users_row_[key] = p_.model.add_ge(std::move(d), 0.0);
    }
  }
  // Lazy mode: the group linking maps are empty by construction (the fresh
  // encode skipped the family), so the delta skips it identically and only
  // counts the rows a non-lazy delta would have created.
  if (o_.lazy_separation) {
    for (const auto& [key, d] : ge_delta) {
      if (!group_edge_row_.count(key)) ++p_.stats.lazy_rows_omitted;
    }
    for (const auto& [key, d] : gn_delta) {
      if (!group_node_row_.count(key)) ++p_.stats.lazy_rows_omitted;
    }
  } else {
    for (auto& [key, d] : ge_delta) {
      auto it = group_edge_row_.find(key);
      if (it != group_edge_row_.end()) {
        p_.model.add_terms_to_constr(it->second, d);
      } else {
        d -= LinExpr(p_.edge_active.at({std::get<2>(key), std::get<3>(key)}));
        group_edge_row_[key] = p_.model.add_le(std::move(d), 0.0);
      }
    }
    for (auto& [key, d] : gn_delta) {
      auto it = group_node_row_.find(key);
      if (it != group_node_row_.end()) {
        p_.model.add_terms_to_constr(it->second, d);
      } else {
        d -= LinExpr(p_.node_used[static_cast<size_t>(std::get<2>(key))]);
        group_node_row_[key] = p_.model.add_le(std::move(d), 0.0);
      }
    }
  }

  // Cover cuts: grow the union, lower the minimum.
  {
    std::map<std::pair<int, int>, std::pair<std::set<int>, int>> delta_cover;
    for (size_t ci = first_new; ci < p_.candidates.size(); ++ci) {
      const auto& c = p_.candidates[ci];
      auto [it, was_fresh] = delta_cover.try_emplace({c.route_index, c.replica},
                                                     std::set<int>{}, INT32_MAX);
      int relays = 0;
      for (int v : c.path.nodes) {
        if (t_.node(v).kind == NodeKind::kFixed) continue;
        it->second.first.insert(v);
        ++relays;
      }
      it->second.second = std::min(it->second.second, relays);
    }
    for (const auto& [key, uc] : delta_cover) {
      auto& data = cover_data_.at(key);  // group had candidates (unsat checked)
      auto row = cover_row_.find(key);
      LinExpr grown;
      bool any_new_node = false;
      for (int v : uc.first) {
        if (data.first.insert(v).second) {
          grown += LinExpr(p_.node_used[static_cast<size_t>(v)]);
          any_new_node = true;
        }
      }
      const int h_new = std::min(data.second, uc.second);
      if (row != cover_row_.end()) {
        if (any_new_node) p_.model.add_terms_to_constr(row->second, grown);
        if (h_new != data.second) {
          p_.model.set_constr_rhs(row->second, static_cast<double>(h_new));
        }
      }
      data.second = h_new;
    }
  }

  // Cross-replica disjointness for every pair touching a new candidate
  // (lazy mode: counted, not emitted — same gating as the fresh encode).
  for (size_t a = first_new; a < p_.candidates.size(); ++a) {
    for (size_t b = 0; b < a; ++b) {
      const auto& ca = p_.candidates[a];
      const auto& cb = p_.candidates[b];
      if (ca.route_index != cb.route_index || ca.replica == cb.replica) continue;
      if (graph::shared_edges(ca.path, cb.path) > 0) {
        if (o_.lazy_separation) {
          ++p_.stats.lazy_rows_omitted;
        } else {
          p_.model.add_le(LinExpr(ca.selector) + LinExpr(cb.selector), 1.0);
        }
      }
    }
  }

  // Satisfiable kAvoid hardenings gain their new compliant selectors.
  for (const auto& ar : avoid_rows_) {
    if (ar.unsat) continue;
    const auto& hc = o_.hardening[ar.hardening_index];
    LinExpr add;
    bool any = false;
    for (size_t ci = first_new; ci < p_.candidates.size(); ++ci) {
      const auto& c = p_.candidates[ci];
      if (c.route_index != hc.route_index || !path_avoids(c.path, hc)) continue;
      add += LinExpr(c.selector);
      any = true;
    }
    if (any) p_.model.add_terms_to_constr(ar.row, add);
  }

  // Energy: new candidates add routing mass; nodes gaining traffic for the
  // first time get their flow variables (and q objective vars) now.
  if (energy_enabled()) {
    std::map<int, LinExpr> tx_delta;
    std::map<int, LinExpr> rx_delta;
    std::set<int> touched;
    for (size_t ci = first_new; ci < p_.candidates.size(); ++ci) {
      const auto& c = p_.candidates[ci];
      for (int v : c.path.nodes) {
        if (t_.node(v).role == Role::kSink) continue;
        const auto [tx_w, rx_w] = candidate_traffic(c.path, v);
        if (tx_w > 0) tx_delta[v] += tx_w * LinExpr(c.selector);
        if (rx_w > 0) rx_delta[v] += rx_w * LinExpr(c.selector);
        if (tx_w > 0 || rx_w > 0) touched.insert(v);
      }
    }
    std::vector<int> gained;
    for (int v : touched) {
      auto it = traffic_rows_.find(v);
      if (it != traffic_rows_.end()) {
        if (tx_delta.count(v)) p_.model.add_terms_to_constr(it->second.first, tx_delta[v]);
        if (rx_delta.count(v)) p_.model.add_terms_to_constr(it->second.second, rx_delta[v]);
      } else {
        emit_energy_node(v, std::move(tx_delta[v]), std::move(rx_delta[v]));
        gained.push_back(v);
      }
    }
    if (s_.objective.weight_energy != 0.0) {
      // A fresh encode emits flow vars even for untouched battery nodes
      // when energy enters the objective.
      for (int v : new_nodes) {
        if (t_.node(v).role == Role::kSink || traffic_rows_.count(v)) continue;
        emit_energy_node(v, LinExpr(), LinExpr());
        gained.push_back(v);
      }
      for (int v : gained) emit_energy_objective_var(v);
    }
  }

  rebuild_objective();

  new_var_defaults_.assign(static_cast<size_t>(p_.model.num_vars() - vars_before), 0.0);
  // Appended RSS values depend on the previous assignment (a new edge may
  // attach to an already-deployed node whose mapping binaries are 1), so
  // extend_assignment derives them from the recorded equality rows.
  delta_edges_.assign(new_edges.begin(), new_edges.end());
  encoded_k_ = new_k;
  refresh_stats();
  p_.stats.reused_candidates = prev_candidates;
  p_.stats.delta_encode_time_s = clock.seconds();
  p_.stats.encode_time_s = clock.seconds();
  span.arg("reused", prev_candidates);
  util::obs::TraceRecorder::global().counter_add("encode.reused_candidates", prev_candidates);
  return true;
}

void Build::append_avoid_hardenings(size_t first) {
  util::Stopwatch clock;
  new_var_defaults_.clear();
  delta_edges_.clear();
  for (size_t hi = first; hi < o_.hardening.size(); ++hi) emit_one_hardening(hi);
  refresh_stats();
  p_.stats.reused_candidates = static_cast<int>(p_.candidates.size());
  p_.stats.delta_encode_time_s = clock.seconds();
  p_.stats.encode_time_s = clock.seconds();
}

}  // namespace

Encoder::Encoder(const NetworkTemplate& tmpl, const Specification& spec, EncoderOptions opts)
    : tmpl_(&tmpl), spec_(&spec), opts_(opts) {
  for (const auto& r : spec.routes) {
    if (r.source < 0 || r.source >= tmpl.num_nodes() || r.dest < 0 ||
        r.dest >= tmpl.num_nodes()) {
      throw std::out_of_range("Encoder: route endpoint outside template");
    }
  }
}

EncodedProblem Encoder::encode() const {
  Build b(*tmpl_, *spec_, opts_);
  return b.run();
}

struct IncrementalEncoder::Impl {
  const NetworkTemplate* tmpl = nullptr;
  const Specification* spec = nullptr;
  EncoderOptions opts;
  std::unique_ptr<Build> build;
  bool dirty = false;
  bool last_was_delta = false;

  void rebuild() {
    build = std::make_unique<Build>(*tmpl, *spec, opts);
    build->execute();
    dirty = false;
    last_was_delta = false;
  }
};

IncrementalEncoder::IncrementalEncoder(const NetworkTemplate& tmpl, const Specification& spec,
                                       EncoderOptions base)
    : impl_(std::make_unique<Impl>()) {
  for (const auto& r : spec.routes) {
    if (r.source < 0 || r.source >= tmpl.num_nodes() || r.dest < 0 ||
        r.dest >= tmpl.num_nodes()) {
      throw std::out_of_range("IncrementalEncoder: route endpoint outside template");
    }
  }
  impl_->tmpl = &tmpl;
  impl_->spec = &spec;
  impl_->opts = std::move(base);
}

IncrementalEncoder::~IncrementalEncoder() = default;

EncodedProblem& IncrementalEncoder::encode_k(int k) {
  auto& im = *impl_;
  // Deltas are atomic: a stop observed here leaves the standing model
  // intact (a half-appended delta would be unusable), marks its stats with
  // the reason, and returns. The caller sees termination != kCompleted and
  // reports instead of solving.
  util::exec::TerminationReason why = util::exec::TerminationReason::kCompleted;
  if (im.build != nullptr && im.opts.exec.checkpoint(&why)) {
    im.build->problem().stats.termination = why;
    im.last_was_delta = false;
    return im.build->problem();
  }
  im.opts.k_star = k;  // the live Build reads options through this object
  if (!im.build || im.dirty || im.opts.mode != EncoderOptions::PathMode::kApprox) {
    im.rebuild();
  } else if (k != im.build->encoded_k()) {
    if (im.build->extend_to_k(k)) {
      im.last_was_delta = true;
    } else {
      im.rebuild();
    }
  }
  return im.build->problem();
}

void IncrementalEncoder::append_hardenings(const std::vector<HardeningConstraint>& fresh) {
  auto& im = *impl_;
  const size_t first = im.opts.hardening.size();
  bool all_avoid = true;
  for (const auto& hc : fresh) {
    all_avoid = all_avoid && hc.kind == HardeningConstraint::Kind::kAvoid;
  }
  im.opts.hardening.insert(im.opts.hardening.end(), fresh.begin(), fresh.end());
  im.last_was_delta = false;
  if (im.build && !im.dirty && all_avoid &&
      im.opts.mode == EncoderOptions::PathMode::kApprox) {
    // Pure row appends over the existing candidate set.
    im.build->append_avoid_hardenings(first);
  } else {
    // kMargin retunes the LQ prefilter (and thus the Yen graph): rebuild.
    im.dirty = true;
  }
}

void IncrementalEncoder::invalidate() {
  impl_->dirty = true;
  impl_->last_was_delta = false;
}

void IncrementalEncoder::set_exec(const util::exec::ExecControl& exec) {
  impl_->opts.exec = exec;
}

EncodedProblem& IncrementalEncoder::problem() {
  if (!impl_->build) throw std::logic_error("IncrementalEncoder::problem() before encode_k()");
  return impl_->build->problem();
}

const EncoderOptions& IncrementalEncoder::options() const { return impl_->opts; }

std::vector<double> IncrementalEncoder::extend_assignment(const std::vector<double>& prev) const {
  const auto& im = *impl_;
  if (!im.build || !im.last_was_delta) return {};
  return im.build->extend_assignment(prev);
}

EncodeStats Encoder::estimate_full_stats() const {
  // Mirrors emit_full_paths() & friends analytically; cross-checked against
  // the real encoder in tests (tolerance documented there).
  const Digraph g = tmpl_->build_graph();
  const long n = tmpl_->num_nodes();
  const long e = g.num_edges();
  long paths = 0;
  long disjoint_pairs = 0;
  long hop_rows = 0;
  for (const auto& r : spec_->routes) {
    const long rep = std::max(1, r.replicas);
    paths += rep;
    disjoint_pairs += rep * (rep - 1) / 2;
    if (r.max_hops) hop_rows += rep;
  }

  long vars = 0;
  long cons = 0;
  // Sizing: every node in scope; average compat size.
  long compat_total = 0;
  for (int i = 0; i < n; ++i) {
    const auto& nd = tmpl_->node(i);
    compat_total += nd.fixed_component ? 1
                                       : static_cast<long>(tmpl_->library().with_role(nd.role).size());
  }
  vars += n + compat_total;  // u_i + m_ci
  cons += n;                 // sizing equalities
  // Edges: e vars + 2 endpoint links + e<=sum(x).
  vars += e;
  cons += 3 * e;
  // Node upper links (candidates only).
  long cand_nodes = 0;
  for (int i = 0; i < n; ++i) {
    if (tmpl_->node(i).kind != NodeKind::kFixed) ++cand_nodes;
  }
  cons += cand_nodes;
  // Paths: per path, e vars x; (1b) e rows; (1a)+(1c): ~3 rows per node
  // with incident edges (use all nodes as the paper's n^2+3n bound does).
  vars += paths * e;
  cons += paths * (e + 3 * n) + hop_rows;
  cons += disjoint_pairs * e;
  // LQ: rss var + equality (+ implication when a bound is set) per edge.
  vars += e;
  cons += (spec_->min_rss_dbm() ? 2L : 1L) * e;
  // Energy: 2 vars + 2 equalities + |compat| implications per battery node.
  if (spec_->lifetime || spec_->objective.weight_energy != 0.0) {
    long battery = 0;
    long battery_compat = 0;
    for (int i = 0; i < n; ++i) {
      const auto& nd = tmpl_->node(i);
      if (nd.role == Role::kSink) continue;
      ++battery;
      battery_compat += nd.fixed_component
                            ? 1
                            : static_cast<long>(tmpl_->library().with_role(nd.role).size());
    }
    vars += 2 * battery;
    cons += 2 * battery + (spec_->lifetime ? battery_compat : 0);
  }
  // Localization: full mode uses every anchor per point.
  if (spec_->localization) {
    const long anchors = static_cast<long>(tmpl_->nodes_with_role(Role::kAnchor).size());
    const long pts = static_cast<long>(spec_->localization->eval_points.size());
    vars += anchors * pts;
    cons += anchors * pts + pts;
  }

  EncodeStats st;
  st.num_vars = static_cast<int>(std::min<long>(vars, INT32_MAX));
  st.num_constrs = static_cast<int>(std::min<long>(cons, INT32_MAX));
  return st;
}

}  // namespace wnet::archex
