#pragma once

#include <map>
#include <utility>
#include <vector>

#include "graph/digraph.h"
#include "milp/model.h"
#include "util/exec/exec.h"

namespace wnet::archex {

/// Sizes of the generated MILP (the quantity Tables 3-4 of the paper track)
/// plus encoding-time bookkeeping.
struct EncodeStats {
  int num_vars = 0;
  int num_constrs = 0;
  size_t nonzeros = 0;
  double encode_time_s = 0.0;
  int candidate_paths = 0;  ///< approx mode: total Yen candidates kept

  /// Rows skipped by EncoderOptions::lazy_separation (group edge/node
  /// linking + pairwise disjointness), recoverable on demand by the
  /// LazySeparation callbacks. 0 when lazy mode is off.
  int lazy_rows_omitted = 0;

  /// kCompleted for a fully built model. Anything else means the encode
  /// aborted early (deadline, cancellation, budget): the remaining phases
  /// were skipped and the partial model MUST NOT be solved — callers report
  /// the reason instead.
  util::exec::TerminationReason termination = util::exec::TerminationReason::kCompleted;

  // Incremental-session telemetry (IncrementalEncoder; zero for fresh
  // one-shot encodes).
  int reused_candidates = 0;         ///< candidates carried over from the previous rung
  double delta_encode_time_s = 0.0;  ///< time spent appending the delta (not rebuilding)
};

/// One Yen candidate kept by Algorithm 1: a concrete loopless path plus the
/// binary selecting it into the topology.
struct CandidatePath {
  graph::Path path;
  milp::Var selector;
  int route_index = -1;  ///< index into Specification::routes
  int replica = 0;       ///< which disjoint replica group it belongs to
};

/// The encoder's output: the MILP plus every table needed to decode a
/// solver assignment back into a network architecture.
struct EncodedProblem {
  milp::Model model;

  /// u_i per template node; invalid Var means the node is out of scope
  /// (provably unused) and should decode as unused.
  std::vector<milp::Var> node_used;

  /// m_{c,i}: (library component index, template node) -> binary.
  std::map<std::pair<int, int>, milp::Var> mapping;

  /// e_{ij}: (from, to) -> binary, for edges in scope.
  std::map<std::pair<int, int>, milp::Var> edge_active;

  /// RSS_{ij} continuous vars for edges in scope (empty if no LQ bound).
  std::map<std::pair<int, int>, milp::Var> rss;

  /// Approx mode: all candidate paths with their selectors.
  std::vector<CandidatePath> candidates;

  /// Full mode: per required path replica, the map (i,j) -> x^pi_ij, plus
  /// which (route, replica) it encodes.
  std::vector<std::map<std::pair<int, int>, milp::Var>> full_path_edges;
  std::vector<std::pair<int, int>> full_path_ids;

  /// r_{ij}: (anchor node, eval point index) -> binary (localization).
  std::map<std::pair<int, int>, milp::Var> reach;

  EncodeStats stats;
};

}  // namespace wnet::archex
