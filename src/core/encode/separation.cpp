#include "core/encode/separation.h"

#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "graph/connectivity.h"
#include "milp/tol.h"

namespace wnet::archex {

struct LazySeparation::Snapshot {
  /// Same-route, different-replica candidate pair sharing at least one
  /// edge: chosen together they violate replica disjointness.
  struct Conflict {
    milp::Var ya, yb;
    std::string name;
  };

  /// One omitted linking row: sum(members) <= target (e_ij or u_v).
  struct Link {
    milp::Var target;
    std::vector<milp::Var> members;
    std::string name;
  };

  std::vector<Conflict> conflicts;
  std::vector<Link> links;
};

LazySeparation::LazySeparation(const NetworkTemplate& tmpl, const EncodedProblem& ep) {
  auto snap = std::make_shared<Snapshot>();

  // Pairwise disjointness conflicts, in (a, b) index order — the same scan
  // (and therefore the same row set) the upfront encoder runs.
  for (size_t a = 0; a < ep.candidates.size(); ++a) {
    for (size_t b = a + 1; b < ep.candidates.size(); ++b) {
      const CandidatePath& ca = ep.candidates[a];
      const CandidatePath& cb = ep.candidates[b];
      if (ca.route_index != cb.route_index || ca.replica == cb.replica) continue;
      if (graph::shared_edges(ca.path, cb.path) > 0) {
        snap->conflicts.push_back({ca.selector, cb.selector,
                                   "lzd_" + std::to_string(a) + "_" + std::to_string(b)});
      }
    }
  }

  // Group edge/node linking incidence, keyed exactly like the upfront
  // group_edge / group_node rows; std::map iteration keeps the order
  // deterministic.
  std::map<std::tuple<int, int, int, int>, std::vector<milp::Var>> ge;
  std::map<std::tuple<int, int, int>, std::vector<milp::Var>> gn;
  for (const CandidatePath& c : ep.candidates) {
    for (size_t k = 0; k + 1 < c.path.nodes.size(); ++k) {
      ge[{c.route_index, c.replica, c.path.nodes[k], c.path.nodes[k + 1]}].push_back(
          c.selector);
    }
    for (const int v : c.path.nodes) {
      if (tmpl.node(v).kind == NodeKind::kFixed) continue;  // u is already 1
      gn[{c.route_index, c.replica, v}].push_back(c.selector);
    }
  }
  for (auto& [key, members] : ge) {
    const auto& [route, rep, i, j] = key;
    snap->links.push_back({ep.edge_active.at({i, j}), std::move(members),
                           "lge_r" + std::to_string(route) + "_p" + std::to_string(rep) +
                               "_" + std::to_string(i) + "_" + std::to_string(j)});
  }
  for (auto& [key, members] : gn) {
    const auto& [route, rep, v] = key;
    const milp::Var u = ep.node_used[static_cast<size_t>(v)];
    if (!u.valid()) continue;  // out-of-scope node: nothing to link
    snap->links.push_back({u, std::move(members),
                           "lgn_r" + std::to_string(route) + "_p" + std::to_string(rep) +
                               "_" + std::to_string(v)});
  }

  // Edge-endpoint implications e_ij <= u_i, e_ij <= u_j — the Link shape
  // with a single member. Links into fixed nodes are skipped: their u is
  // pinned to 1 by bounds, so the row can never be violated.
  for (const auto& [key, e] : ep.edge_active) {
    for (const int v : {key.first, key.second}) {
      if (tmpl.node(v).kind == NodeKind::kFixed) continue;
      const milp::Var u = ep.node_used[static_cast<size_t>(v)];
      if (!u.valid()) continue;
      snap->links.push_back({u, {e},
                             "lep_" + std::to_string(key.first) + "_" +
                                 std::to_string(key.second) + "_" + std::to_string(v)});
    }
  }

  snap_ = std::move(snap);
}

milp::SeparationCallback LazySeparation::callback() const {
  // The lambda owns the snapshot: safe after this object, the template and
  // the EncodedProblem are gone.
  std::shared_ptr<const Snapshot> snap = snap_;
  return [snap](const milp::SeparationContext& ctx, milp::CutPool& pool) {
    const std::vector<double>& x = ctx.x;
    for (const Snapshot::Conflict& cf : snap->conflicts) {
      if (x[static_cast<size_t>(cf.ya.id)] + x[static_cast<size_t>(cf.yb.id)] >
          1.0 + milp::tol::kCutViolation) {
        milp::Cut cut;
        cut.expr = milp::LinExpr(cf.ya) + milp::LinExpr(cf.yb);
        cut.sense = milp::Sense::kLe;
        cut.rhs = 1.0;
        cut.name = cf.name;
        pool.add(std::move(cut));
      }
    }
    for (const Snapshot::Link& ln : snap->links) {
      double mass = 0.0;
      for (const milp::Var y : ln.members) mass += x[static_cast<size_t>(y.id)];
      if (mass > x[static_cast<size_t>(ln.target.id)] + milp::tol::kCutViolation) {
        milp::Cut cut;
        for (const milp::Var y : ln.members) cut.expr.add_term(y, 1.0);
        cut.expr.add_term(ln.target, -1.0);
        cut.sense = milp::Sense::kLe;
        cut.rhs = 0.0;
        cut.name = ln.name;
        pool.add(std::move(cut));
      }
    }
  };
}

bool LazySeparation::empty() const {
  return snap_->conflicts.empty() && snap_->links.empty();
}

void LazySeparation::install(milp::SolveOptions& opts) const {
  if (empty()) return;
  opts.cuts.separators.push_back(callback());
}

size_t LazySeparation::family_size() const {
  return snap_->conflicts.size() + snap_->links.size();
}

}  // namespace wnet::archex
