#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "core/encode/encoded_problem.h"
#include "core/network_template.h"
#include "core/requirements.h"
#include "util/exec/exec.h"

namespace wnet::archex {

/// A counterexample-derived hardening constraint, fed back into the encoder
/// by Explorer::explore_robust when a fault scenario breaks a requirement.
struct HardeningConstraint {
  enum class Kind {
    /// Route `route_index` must keep at least one replica whose path avoids
    /// every listed node and (undirected) link — forbids sole reliance on a
    /// failed element set. If no candidate can comply, the model encodes
    /// that verdict as infeasible (the repair loop then raises N_rep).
    kAvoid,
    /// The listed links must clear the LQ floor with `margin_db` extra
    /// headroom — hardens against the fading realization that broke them.
    /// Only meaningful when the spec sets an LQ bound.
    kMargin,
  };

  Kind kind = Kind::kAvoid;
  int route_index = -1;                    ///< kAvoid: which requirement
  std::vector<int> nodes;                  ///< kAvoid: nodes to avoid
  std::vector<std::pair<int, int>> links;  ///< failed links, undirected
  double margin_db = 0.0;                  ///< kMargin: extra headroom (dB)
};

/// Encoder configuration. `kFull` is the paper's exact flow-based encoding
/// (constraints (1a)-(1e) over all template edges); `kApprox` is Algorithm 1
/// (Yen's K-shortest candidates, symbolic path selectors, routing
/// constraints omitted by construction).
struct EncoderOptions {
  enum class PathMode { kFull, kApprox };
  PathMode mode = PathMode::kApprox;

  /// K*: total candidate paths generated per required route (approx mode).
  int k_star = 10;

  /// Candidate anchors considered per evaluation point (approx pruning of
  /// the reachability matrix, paper Sec. 4.2); <= 0 means all anchors.
  int loc_candidates = 20;

  /// Drop links whose best-case RSS misses the LQ bound before running
  /// Yen ("we can disregard links with path loss below a threshold").
  bool lq_prefilter = true;

  /// How Algorithm 1 guarantees disjoint replicas between Yen batches.
  enum class DisjointStrategy {
    kDisconnectMinDisjoint,  ///< the paper's DisconnectMinDisjointPath
    kNone,                   ///< ablation: rerun Yen on the intact graph
  };
  DisjointStrategy disjoint_strategy = DisjointStrategy::kDisconnectMinDisjoint;

  /// Lazy separation (approx mode only): emit just the relaxed skeleton —
  /// selector disjunctions, sizing, LQ, users rows, cover cuts — and omit
  /// the two row families that dominate model size at scale: the per-group
  /// edge/node linking rows (path mass <= e, <= u) and the O(K^2) pairwise
  /// cross-replica disjointness rows. The omitted families are recovered on
  /// demand during the solve by the LazySeparation callbacks
  /// (core/encode/separation.h), which MUST be installed in
  /// SolveOptions::cuts for the solution to be correct; Explorer does this
  /// automatically. Ignored in kFull mode. The incremental session gates
  /// its deltas identically, so delta == fresh still holds.
  bool lazy_separation = false;

  /// Robustness hardenings accumulated by the explore_robust repair loop.
  /// kMargin entries also tighten the LQ prefilter, so Yen stops proposing
  /// links that cannot carry the required headroom.
  std::vector<HardeningConstraint> hardening;

  /// Request-level execution control. The serial spine checkpoints between
  /// encoding phases; the per-route Yen workers poll a worker_view() copy
  /// and charge Yen candidates / encode rows against `exec.budget`. On any
  /// stop the encode aborts — remaining phases are skipped and
  /// EncodeStats::termination records why (see its contract).
  util::exec::ExecControl exec;

  /// Worker threads for candidate generation: the per-route Yen batches are
  /// independent (each route works on a private copy of the prefiltered
  /// graph), so they run concurrently and merge in route order. The
  /// candidate list — and therefore the whole encoding — is identical for
  /// every value. <= 1 runs serial; 0 is NOT auto here, callers resolve.
  int threads = 1;
};

/// Compiles (template, specification) into a MILP. Stateless apart from
/// the inputs; encode() may be called repeatedly.
class Encoder {
 public:
  Encoder(const NetworkTemplate& tmpl, const Specification& spec, EncoderOptions opts = {});

  /// Builds the full MILP plus decode tables.
  [[nodiscard]] EncodedProblem encode() const;

  /// Closed-form size estimate of the FULL encoding without building it —
  /// the paper reports "estimated, for larger instances" counts in Table 3
  /// precisely because materializing 10^7 constraints is itself expensive.
  /// Cross-validated against encode() in tests.
  [[nodiscard]] EncodeStats estimate_full_stats() const;

 private:
  const NetworkTemplate* tmpl_;
  const Specification* spec_;
  EncoderOptions opts_;
};

/// Encoding session that carries state across the closely related solves of
/// a K* ladder or a robust-repair loop. Where a fresh Encoder re-runs Yen
/// and rebuilds the whole MILP per rung, the session keeps one resumable
/// YenEnumerator per (route, replica) and *appends* to the existing model:
/// new candidate selector binaries, their linking rows, and the widened
/// group disjunctions when K* grows (`encode_k`), or new hardening rows in
/// the repair loop (`append_hardenings`).
///
/// Determinism contract: the delta-extended model is equivalent to a fresh
/// encode at the same options — same variable/constraint/nonzero counts and
/// the same optimum (variable order, and hence names, may differ; tests pin
/// the equivalence). Whenever a change cannot be expressed as a pure append
/// (kMargin hardenings retune the LQ prefilter, replica raises change the
/// spec, the disjoint-disconnect step shifts a replica's base graph), the
/// session transparently falls back to a full rebuild, so callers never
/// need to reason about which case they are in.
class IncrementalEncoder {
 public:
  /// The session keeps references to `tmpl` and `spec`: both must outlive
  /// it, and spec mutations (e.g. replica raises) require invalidate().
  IncrementalEncoder(const NetworkTemplate& tmpl, const Specification& spec,
                     EncoderOptions base);
  ~IncrementalEncoder();
  IncrementalEncoder(const IncrementalEncoder&) = delete;
  IncrementalEncoder& operator=(const IncrementalEncoder&) = delete;

  /// Encodes (or delta-extends) to k_star = k and returns the session's
  /// problem. Same k with no pending changes is a no-op.
  EncodedProblem& encode_k(int k);

  /// Appends hardening constraints to the session options and, when they
  /// are all kAvoid, to the existing model in place; kMargin entries mark
  /// the session for a fresh rebuild on the next encode_k.
  void append_hardenings(const std::vector<HardeningConstraint>& fresh);

  /// Marks the session dirty after out-of-band changes the session cannot
  /// see (e.g. the caller mutated the spec's replica counts).
  void invalidate();

  /// Replaces the session's execution control. A cached session outlives
  /// the request that created it; the next request must attach its OWN
  /// deadline/token/budget before delta-extending, or a stale (possibly
  /// already-tripped) control from the previous request would govern the
  /// new work. The live Build reads options through the session, so the
  /// new control takes effect immediately.
  void set_exec(const util::exec::ExecControl& exec);

  [[nodiscard]] EncodedProblem& problem();
  [[nodiscard]] const EncoderOptions& options() const;

  /// Extends an assignment for the model as it stood *before* the last
  /// encode_k to the current model: variable ids are stable under deltas,
  /// appended selectors/mappings/edges go to 0, and each appended RSS
  /// variable is solved from its own equality row (a new edge may attach to
  /// an already-deployed node whose mapping binaries are active in `prev`).
  /// The result stays feasible because every grown constraint relaxes for
  /// the all-off extension. Returns empty when the last encode was a
  /// rebuild (ids are not comparable).
  [[nodiscard]] std::vector<double> extend_assignment(const std::vector<double>& prev) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace wnet::archex
