#pragma once

#include "core/encode/encoded_problem.h"
#include "core/network_template.h"
#include "core/requirements.h"

namespace wnet::archex {

/// Encoder configuration. `kFull` is the paper's exact flow-based encoding
/// (constraints (1a)-(1e) over all template edges); `kApprox` is Algorithm 1
/// (Yen's K-shortest candidates, symbolic path selectors, routing
/// constraints omitted by construction).
struct EncoderOptions {
  enum class PathMode { kFull, kApprox };
  PathMode mode = PathMode::kApprox;

  /// K*: total candidate paths generated per required route (approx mode).
  int k_star = 10;

  /// Candidate anchors considered per evaluation point (approx pruning of
  /// the reachability matrix, paper Sec. 4.2); <= 0 means all anchors.
  int loc_candidates = 20;

  /// Drop links whose best-case RSS misses the LQ bound before running
  /// Yen ("we can disregard links with path loss below a threshold").
  bool lq_prefilter = true;

  /// How Algorithm 1 guarantees disjoint replicas between Yen batches.
  enum class DisjointStrategy {
    kDisconnectMinDisjoint,  ///< the paper's DisconnectMinDisjointPath
    kNone,                   ///< ablation: rerun Yen on the intact graph
  };
  DisjointStrategy disjoint_strategy = DisjointStrategy::kDisconnectMinDisjoint;
};

/// Compiles (template, specification) into a MILP. Stateless apart from
/// the inputs; encode() may be called repeatedly.
class Encoder {
 public:
  Encoder(const NetworkTemplate& tmpl, const Specification& spec, EncoderOptions opts = {});

  /// Builds the full MILP plus decode tables.
  [[nodiscard]] EncodedProblem encode() const;

  /// Closed-form size estimate of the FULL encoding without building it —
  /// the paper reports "estimated, for larger instances" counts in Table 3
  /// precisely because materializing 10^7 constraints is itself expensive.
  /// Cross-validated against encode() in tests.
  [[nodiscard]] EncodeStats estimate_full_stats() const;

 private:
  const NetworkTemplate* tmpl_;
  const Specification* spec_;
  EncoderOptions opts_;
};

}  // namespace wnet::archex
