#pragma once

/// Lazy separators for the approx encoder's omitted row families.
///
/// With EncoderOptions::lazy_separation the encoder emits only the relaxed
/// skeleton; the two families it skips are recovered here, on demand,
/// inside the branch-and-bound:
///
///  - pairwise cross-replica disjointness: y_a + y_b <= 1 for same-route
///    candidates of different replica groups sharing an edge;
///  - group edge/node linking: sum of a group's selectors using edge (i,j)
///    <= e_ij, and through relay v <= u_v.
///
/// The callbacks propose exactly the rows the upfront encoder would have
/// built (full member lists, not support-restricted sub-rows), so the cut
/// pool's tolerance-aware dedup unifies repeats and the lazy model
/// converges to the upfront one on the active set. At any integer point
/// every violated family member is found by a full scan, which is what
/// makes the solver's incumbent gate sound: an accepted incumbent satisfies
/// the entire omitted family, not just the rows separated so far.

#include <memory>

#include "core/encode/encoded_problem.h"
#include "core/network_template.h"
#include "milp/cuts.h"
#include "milp/solver.h"

namespace wnet::archex {

/// Separation callbacks for one encoded problem. The constructor snapshots
/// everything it needs (var ids, conflict pairs, linking incidence), so the
/// callback outlives both the template and the EncodedProblem; rebuild it
/// after any delta encode (candidate lists grow between rungs).
class LazySeparation {
 public:
  LazySeparation(const NetworkTemplate& tmpl, const EncodedProblem& ep);

  /// One combined deterministic callback covering both families.
  [[nodiscard]] milp::SeparationCallback callback() const;

  /// True when there is nothing to separate (full mode, no candidates, or
  /// no omitted rows).
  [[nodiscard]] bool empty() const;

  /// Appends the callback to `opts.cuts.separators` (no-op when empty()).
  void install(milp::SolveOptions& opts) const;

  /// Omitted rows this instance can recover (conflict pairs + linking rows).
  [[nodiscard]] size_t family_size() const;

 private:
  struct Snapshot;
  std::shared_ptr<const Snapshot> snap_;
};

}  // namespace wnet::archex
