#pragma once

#include <optional>
#include <string>
#include <vector>

#include "radio/energy.h"

namespace wnet::archex {

/// Functional role a node plays in the network. A library component can
/// implement one or more roles (e.g. a radio module usable as relay or
/// anchor).
enum class Role { kSensor, kRelay, kSink, kAnchor };

[[nodiscard]] const char* role_name(Role r);

/// A library component ("device" in the paper): a purchasable part with
/// functional and extra-functional attributes. Mirrors the paper's library
/// schema: cost, TX power, antenna gain, and operating-mode currents, based
/// on commercial 2.4 GHz WSN transceivers.
struct Component {
  std::string name;
  std::vector<Role> roles;
  double cost_usd = 0.0;
  double tx_power_dbm = 0.0;
  double antenna_gain_dbi = 0.0;
  radio::DeviceCurrents currents;

  [[nodiscard]] bool has_role(Role r) const;
};

/// The component library L. Lookup is by index; encoders iterate the
/// role-compatible subset per template node.
class ComponentLibrary {
 public:
  int add(Component c);

  [[nodiscard]] const Component& at(int idx) const { return parts_.at(static_cast<size_t>(idx)); }
  [[nodiscard]] int size() const { return static_cast<int>(parts_.size()); }
  [[nodiscard]] const std::vector<Component>& parts() const { return parts_; }

  /// Indices of components implementing `r`.
  [[nodiscard]] std::vector<int> with_role(Role r) const;

  /// Index of the component named `name`, if present.
  [[nodiscard]] std::optional<int> find(const std::string& name) const;

  /// Largest TX power + antenna gain over components with role `r`
  /// (best-case link budget, used for candidate pruning).
  [[nodiscard]] double best_eirp_dbm(Role r) const;

 private:
  std::vector<Component> parts_;
};

/// The reference library used by all experiments: one zero-cost sensor
/// class (the paper's sensors "have zero cost" — they are given), several
/// relay variants trading dollar cost against TX power / antenna gain /
/// current draw, sink and anchor parts. Values are CC2530-class.
[[nodiscard]] ComponentLibrary make_reference_library();

}  // namespace wnet::archex
