#include "core/solution.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include "channel/link_metrics.h"
#include "graph/connectivity.h"

namespace wnet::archex {

namespace {

bool on(const std::vector<double>& x, milp::Var v) {
  return v.valid() && x.at(static_cast<size_t>(v.id)) > 0.5;
}

/// Realized RSS of a link given the decoded sizing.
double realized_rss(const NetworkArchitecture& arch, const NetworkTemplate& tmpl, int from,
                    int to) {
  const int ct = arch.component_of(from);
  const int cr = arch.component_of(to);
  double rss = -tmpl.path_loss_db(from, to);
  if (ct >= 0) {
    const Component& c = tmpl.library().at(ct);
    rss += c.tx_power_dbm + c.antenna_gain_dbi;
  }
  if (cr >= 0) rss += tmpl.library().at(cr).antenna_gain_dbi;
  return rss;
}

}  // namespace

bool NetworkArchitecture::node_is_used(int node) const { return component_of(node) >= 0; }

int NetworkArchitecture::component_of(int node) const {
  for (const auto& d : nodes) {
    if (d.node == node) return d.component;
  }
  return -1;
}

NetworkArchitecture decode_solution(const EncodedProblem& ep, const NetworkTemplate& tmpl,
                                    const Specification& spec, const std::vector<double>& x) {
  NetworkArchitecture arch;

  // --- Sizing map.
  for (const auto& [key, m] : ep.mapping) {
    if (on(x, m)) {
      arch.nodes.push_back({key.second, key.first});
      arch.total_cost_usd += tmpl.library().at(key.first).cost_usd;
    }
  }

  // --- Routes.
  if (!ep.candidates.empty()) {
    // Approximate mode: one chosen candidate per (route, replica) group
    // (the cheapest if the solver left several on).
    std::map<std::pair<int, int>, const CandidatePath*> chosen;
    for (const auto& c : ep.candidates) {
      if (!on(x, c.selector)) continue;
      auto& slot = chosen[{c.route_index, c.replica}];
      if (slot == nullptr || c.path.cost < slot->path.cost) slot = &c;
    }
    for (const auto& [key, c] : chosen) {
      arch.routes.push_back({key.first, key.second, c->path});
    }
  } else {
    // Full mode: walk x^pi from the source.
    for (size_t pi = 0; pi < ep.full_path_edges.size(); ++pi) {
      const auto& xmap = ep.full_path_edges[pi];
      const auto [ri, rep] = ep.full_path_ids[pi];
      const auto& route = spec.routes.at(static_cast<size_t>(ri));
      graph::Path path;
      path.nodes.push_back(route.source);
      int cur = route.source;
      // Bounded walk; (1c) guarantees out-degree <= 1 per node.
      for (int guard = 0; guard <= tmpl.num_nodes(); ++guard) {
        if (cur == route.dest) break;
        int next = -1;
        for (const auto& [key, xv] : xmap) {
          if (key.first == cur && on(x, xv)) {
            next = key.second;
            break;
          }
        }
        if (next == -1) break;
        path.nodes.push_back(next);
        path.cost += tmpl.path_loss_db(cur, next);
        cur = next;
      }
      arch.routes.push_back({ri, rep, std::move(path)});
    }
  }

  // --- Links.
  for (const auto& [key, e] : ep.edge_active) {
    if (on(x, e)) {
      arch.links.push_back({key.first, key.second, realized_rss(arch, tmpl, key.first, key.second)});
    }
  }

  // --- Lifetime / energy, recomputed from the decoded design.
  const double battery = spec.lifetime ? spec.lifetime->battery_mah : 3000.0;
  double lifetime_sum = 0.0;
  int battery_nodes = 0;
  arch.min_lifetime_years = milp::kInf;
  for (const auto& d : arch.nodes) {
    if (tmpl.node(d.node).role == Role::kSink) continue;
    radio::NodeTraffic traffic;
    double etx_sum = 0.0;
    for (const auto& r : arch.routes) {
      const auto& ns = r.path.nodes;
      for (size_t k = 0; k + 1 < ns.size(); ++k) {
        if (ns[k] == d.node) {
          ++traffic.tx_packets;
          const double rss = realized_rss(arch, tmpl, ns[k], ns[k + 1]);
          etx_sum += channel::etx_from_snr(spec.radio.modulation,
                                           rss - spec.radio.noise_floor_dbm,
                                           spec.radio.tdma.packet_bytes);
        }
        if (ns[k + 1] == d.node) ++traffic.rx_packets;
      }
    }
    traffic.mean_tx_etx = traffic.tx_packets > 0 ? etx_sum / traffic.tx_packets : 1.0;
    const auto& comp = tmpl.library().at(d.component);
    const bool csma = spec.radio.mac == RadioConfig::MacProtocol::kCsma;
    arch.total_charge_per_cycle_mas +=
        csma ? radio::charge_per_cycle_csma_mas(comp.currents, traffic, spec.radio.tdma,
                                                spec.radio.csma)
             : radio::charge_per_cycle_mas(comp.currents, traffic, spec.radio.tdma);
    const double life =
        csma ? radio::lifetime_years_csma(battery, comp.currents, traffic, spec.radio.tdma,
                                          spec.radio.csma)
             : radio::lifetime_years(battery, comp.currents, traffic, spec.radio.tdma);
    arch.min_lifetime_years = std::min(arch.min_lifetime_years, life);
    lifetime_sum += life;
    ++battery_nodes;
  }
  arch.avg_lifetime_years = battery_nodes > 0 ? lifetime_sum / battery_nodes : 0.0;
  if (battery_nodes == 0) arch.min_lifetime_years = 0.0;

  // --- Localization metrics, recomputed from geometry.
  if (spec.localization) {
    const auto& loc = *spec.localization;
    double reachable_sum = 0.0;
    for (const geom::Vec2& pt : loc.eval_points) {
      int covered = 0;
      for (const auto& d : arch.nodes) {
        const auto& nd = tmpl.node(d.node);
        if (nd.role != Role::kAnchor) continue;
        const Component& c = tmpl.library().at(d.component);
        const double pl = tmpl.channel_model().path_loss_db(nd.position, pt);
        if (c.tx_power_dbm + c.antenna_gain_dbi - pl >= loc.min_rss_dbm) ++covered;
      }
      reachable_sum += covered;
    }
    arch.avg_reachable_anchors =
        loc.eval_points.empty() ? 0.0 : reachable_sum / static_cast<double>(loc.eval_points.size());
    for (const auto& [key, r] : ep.reach) {
      if (on(x, r)) {
        arch.dsod += tmpl.node(key.first).position.dist(
            loc.eval_points.at(static_cast<size_t>(key.second)));
      }
    }
  }

  return arch;
}

VerifyReport verify_architecture(const NetworkArchitecture& arch, const NetworkTemplate& tmpl,
                                 const Specification& spec) {
  VerifyReport rep;
  auto fail = [&](const std::string& what) {
    rep.ok = false;
    rep.violations.push_back(what);
  };

  // Fixed nodes must be deployed.
  for (int i = 0; i < tmpl.num_nodes(); ++i) {
    if (tmpl.node(i).kind == NodeKind::kFixed && !arch.node_is_used(i)) {
      fail("fixed node not deployed: " + tmpl.node(i).name);
    }
  }

  // Sizing respects roles.
  for (const auto& d : arch.nodes) {
    const auto& nd = tmpl.node(d.node);
    const auto& c = tmpl.library().at(d.component);
    if (nd.fixed_component) {
      if (d.component != *nd.fixed_component) fail("fixed sizing overridden: " + nd.name);
    } else if (!c.has_role(nd.role)) {
      fail("component role mismatch at " + nd.name);
    }
  }

  // Routing: per requirement, the right number of valid, disjoint routes.
  for (size_t ri = 0; ri < spec.routes.size(); ++ri) {
    const auto& req = spec.routes[ri];
    std::vector<const ChosenRoute*> mine;
    for (const auto& r : arch.routes) {
      if (r.route_index == static_cast<int>(ri)) mine.push_back(&r);
    }
    const int want = std::max(1, req.replicas);
    if (static_cast<int>(mine.size()) < want) {
      fail("route " + std::to_string(ri) + ": " + std::to_string(mine.size()) + "/" +
           std::to_string(want) + " replicas");
      continue;
    }
    for (const auto* r : mine) {
      const auto& ns = r->path.nodes;
      if (ns.empty() || ns.front() != req.source || ns.back() != req.dest) {
        fail("route " + std::to_string(ri) + ": endpoints wrong");
        continue;
      }
      if (std::set<int>(ns.begin(), ns.end()).size() != ns.size()) {
        fail("route " + std::to_string(ri) + ": loop");
      }
      if (req.max_hops && static_cast<int>(ns.size()) - 1 > *req.max_hops) {
        fail("route " + std::to_string(ri) + ": too many hops");
      }
      for (size_t k = 0; k + 1 < ns.size(); ++k) {
        if (!arch.node_is_used(ns[k]) || !arch.node_is_used(ns[k + 1])) {
          fail("route " + std::to_string(ri) + ": undeployed node on path");
        }
      }
    }
    // Pairwise edge-disjointness between replicas.
    for (size_t a = 0; a < mine.size(); ++a) {
      for (size_t b = a + 1; b < mine.size(); ++b) {
        const auto& na = mine[a]->path.nodes;
        const auto& nb = mine[b]->path.nodes;
        std::set<std::pair<int, int>> ea;
        for (size_t k = 0; k + 1 < na.size(); ++k) ea.insert({na[k], na[k + 1]});
        for (size_t k = 0; k + 1 < nb.size(); ++k) {
          if (ea.count({nb[k], nb[k + 1]}) != 0) {
            fail("route " + std::to_string(ri) + ": replicas share an edge");
          }
        }
      }
    }
  }

  // Link quality on every route edge.
  const auto rss_floor = spec.min_rss_dbm();
  if (rss_floor) {
    for (const auto& r : arch.routes) {
      const auto& ns = r.path.nodes;
      for (size_t k = 0; k + 1 < ns.size(); ++k) {
        const int ct = arch.component_of(ns[k]);
        const int cr = arch.component_of(ns[k + 1]);
        double rss = -tmpl.path_loss_db(ns[k], ns[k + 1]);
        if (ct >= 0) {
          rss += tmpl.library().at(ct).tx_power_dbm + tmpl.library().at(ct).antenna_gain_dbi;
        }
        if (cr >= 0) rss += tmpl.library().at(cr).antenna_gain_dbi;
        if (rss < *rss_floor - 1e-6) {
          std::ostringstream os;
          os << "LQ violated on " << tmpl.node(ns[k]).name << "->" << tmpl.node(ns[k + 1]).name
             << ": " << rss << " < " << *rss_floor;
          fail(os.str());
        }
      }
    }
  }

  // Lifetime (recomputed in decode; trust the architecture's number).
  if (spec.lifetime && arch.min_lifetime_years < spec.lifetime->min_years - 1e-6) {
    std::ostringstream os;
    os << "lifetime " << arch.min_lifetime_years << "y < required " << spec.lifetime->min_years
       << "y";
    fail(os.str());
  }

  // Localization coverage.
  if (spec.localization) {
    const auto& loc = *spec.localization;
    for (size_t pj = 0; pj < loc.eval_points.size(); ++pj) {
      int covered = 0;
      for (const auto& d : arch.nodes) {
        const auto& nd = tmpl.node(d.node);
        if (nd.role != Role::kAnchor) continue;
        const Component& c = tmpl.library().at(d.component);
        const double pl = tmpl.channel_model().path_loss_db(nd.position, loc.eval_points[pj]);
        if (c.tx_power_dbm + c.antenna_gain_dbi - pl >= loc.min_rss_dbm - 1e-9) ++covered;
      }
      if (covered < loc.min_anchors) {
        fail("eval point " + std::to_string(pj) + " covered by " + std::to_string(covered) +
             " anchors < " + std::to_string(loc.min_anchors));
      }
    }
  }

  return rep;
}

}  // namespace wnet::archex
