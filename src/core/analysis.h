#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/network_template.h"
#include "core/requirements.h"
#include "core/solution.h"

namespace wnet::archex {

/// Post-synthesis architecture statistics: the engineering numbers a
/// designer checks after the optimizer returns (link budget margins, hop
/// depth, hardware mix, traffic concentration).
struct ArchitectureStats {
  std::map<int, int> hop_histogram;        ///< hops -> number of routes
  double mean_link_margin_db = 0.0;        ///< mean RSS slack above the LQ floor
  double min_link_margin_db = 0.0;         ///< tightest link's slack
  std::map<std::string, int> component_mix;  ///< component name -> count
  int max_tx_load_packets = 0;             ///< busiest node's TX packets/cycle
  int bottleneck_node = -1;                ///< template node carrying that load
  double total_cost_usd = 0.0;
  int relays_deployed = 0;
};

/// Computes the statistics from the decoded architecture; margins use the
/// specification's effective RSS floor (0 slack baseline if none is set).
[[nodiscard]] ArchitectureStats analyze_architecture(const NetworkArchitecture& arch,
                                                     const NetworkTemplate& tmpl,
                                                     const Specification& spec);

/// Renders the stats as a short human-readable block for examples/logs.
[[nodiscard]] std::string to_string(const ArchitectureStats& stats);

}  // namespace wnet::archex
