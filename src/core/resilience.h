#pragma once

#include <string>
#include <vector>

#include "core/network_template.h"
#include "core/requirements.h"
#include "core/solution.h"

namespace wnet::archex {

/// Fault-resilience analysis of a synthesized architecture — the concern
/// behind the paper's disjoint-route requirements ("improve the network
/// resiliency to faults by adding some redundancy"). For every single relay
/// failure, checks which route requirements still have at least one
/// surviving synthesized route.
struct ResilienceReport {
  /// Relays whose single failure breaks at least one route requirement.
  std::vector<int> critical_relays;
  /// Route requirement indices that survive EVERY single relay failure.
  std::vector<int> resilient_routes;
  /// Route requirement indices broken by some single relay failure.
  std::vector<int> fragile_routes;

  [[nodiscard]] bool fully_resilient() const { return critical_relays.empty(); }
};

/// Simulates each deployed relay failing in turn: a chosen route survives a
/// failure if the failed node is not on its path. A route *requirement*
/// survives if at least one of its replicas survives. Fixed nodes (sensors,
/// sinks) are assumed fault-free — the paper's redundancy targets the
/// relay infrastructure.
///
/// This is the k=1 special case of the general fault-injection machinery in
/// core/faults/ (which adds k-simultaneous failures, link cuts, and
/// Monte-Carlo fading) and is implemented on top of it.
[[nodiscard]] ResilienceReport analyze_resilience(const NetworkArchitecture& arch,
                                                  const NetworkTemplate& tmpl,
                                                  const Specification& spec);

}  // namespace wnet::archex
