#include "core/spec/parser.h"

#include <cmath>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/strings.h"

namespace wnet::archex::spec {

namespace {

/// A declared has_path pattern, later grouped into RouteRequirements.
struct DeclaredPath {
  std::string name;
  int source;
  int dest;
  std::optional<int> max_hops;
  int group = -1;  ///< disjointness group; -1 = own group
};

struct ParseCtx {
  const NetworkTemplate* tmpl;
  int lineno = 0;

  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("spec line " + std::to_string(lineno) + ": " + why);
  }

  [[nodiscard]] int node(const std::string& name) const {
    const auto id = tmpl->find_node(name);
    if (!id) fail("unknown node: " + name);
    return *id;
  }

  [[nodiscard]] double number(const std::string& tok) const {
    const auto v = util::parse_double(tok);
    if (!v) fail("expected a number, got: " + tok);
    return *v;
  }

  /// Count arguments (max_hops, min_reachable_devices) must be positive
  /// integers. The old static_cast<int> silently truncated `3.9` to 3 and
  /// let zero/negative counts through into the encoder, which matters now
  /// that the solve server ingests untrusted spec text.
  [[nodiscard]] int positive_count(const std::string& tok, const char* what) const {
    const double v = number(tok);
    if (!(v >= 1.0) || v > 1e9 || v != std::floor(v)) {
      fail(std::string(what) + " must be a positive integer, got: " + tok);
    }
    return static_cast<int>(v);
  }
};

/// Splits "fn(a, b, c)" into fn and argument list; returns false if the
/// line is not a call. The closing paren must end the line (modulo trailing
/// whitespace): `max_hops(r, 3) oops` used to parse clean with the garbage
/// ignored.
bool parse_call(std::string_view line, std::string* fn, std::vector<std::string>* args) {
  const auto open = line.find('(');
  const auto close = line.rfind(')');
  if (open == std::string_view::npos || close == std::string_view::npos || close < open) {
    return false;
  }
  if (!util::trim(line.substr(close + 1)).empty()) return false;
  *fn = std::string(util::trim(line.substr(0, open)));
  const auto inner = line.substr(open + 1, close - open - 1);
  args->clear();
  if (!util::trim(inner).empty()) *args = util::split(inner, ',');
  return true;
}

}  // namespace

Specification parse(const std::string& text, const NetworkTemplate& tmpl) {
  Specification out;
  ParseCtx ctx{&tmpl};

  std::vector<DeclaredPath> paths;
  std::map<std::string, size_t> path_by_name;
  int next_group = 0;

  auto find_path = [&](const std::string& name) -> DeclaredPath& {
    const auto it = path_by_name.find(name);
    if (it == path_by_name.end()) ctx.fail("unknown route name: " + name);
    return paths[it->second];
  };

  std::istringstream is(text);
  std::string raw;
  while (std::getline(is, raw)) {
    ++ctx.lineno;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const std::string line{util::trim(raw)};
    if (line.empty()) continue;

    // Objective line has its own key=value syntax. The keyword must end on
    // a word boundary — a raw prefix match used to treat `objectivexyz
    // cost=1` as an objective line.
    if (util::starts_with(line, "objective") &&
        (line.size() == 9 || line[9] == ' ' || line[9] == '\t')) {
      const auto terms = util::split_ws(line.substr(9));
      if (terms.empty()) ctx.fail("objective needs at least one key=value term");
      out.objective = Objective{0.0, 0.0, 0.0};
      for (const auto& tok : terms) {
        const auto kv = util::split(tok, '=');
        if (kv.size() != 2) ctx.fail("objective expects key=value, got: " + tok);
        const double w = ctx.number(kv[1]);
        if (kv[0] == "cost") {
          out.objective.weight_cost = w;
        } else if (kv[0] == "energy") {
          out.objective.weight_energy = w;
        } else if (kv[0] == "dsod") {
          out.objective.weight_dsod = w;
        } else {
          ctx.fail("unknown objective term: " + kv[0]);
        }
      }
      continue;
    }

    // Route declaration: name = has_path(a, b).
    const auto eq = line.find('=');
    std::string fn;
    std::vector<std::string> args;
    if (eq != std::string::npos && line.find("has_path") != std::string::npos) {
      const std::string name{util::trim(line.substr(0, eq))};
      if (name.empty()) ctx.fail("route declaration without a name");
      if (path_by_name.count(name) != 0) ctx.fail("duplicate route name: " + name);
      if (!parse_call(line.substr(eq + 1), &fn, &args) || fn != "has_path" || args.size() != 2) {
        ctx.fail("expected: <name> = has_path(<src>, <dst>)");
      }
      DeclaredPath p;
      p.name = name;
      p.source = ctx.node(args[0]);
      p.dest = ctx.node(args[1]);
      path_by_name[name] = paths.size();
      paths.push_back(std::move(p));
      continue;
    }

    if (!parse_call(line, &fn, &args)) ctx.fail("unrecognized pattern: " + line);

    if (fn == "disjoint_links") {
      if (args.size() < 2) ctx.fail("disjoint_links needs at least two routes");
      const int group = next_group++;
      DeclaredPath& first = find_path(args[0]);
      for (const auto& nm : args) {
        DeclaredPath& p = find_path(nm);
        if (p.source != first.source || p.dest != first.dest) {
          ctx.fail("disjoint_links routes must share endpoints");
        }
        if (p.group != -1) ctx.fail("route already in a disjoint group: " + nm);
        p.group = group;
      }
    } else if (fn == "max_hops") {
      if (args.size() != 2) ctx.fail("max_hops(<route>, <n>)");
      find_path(args[0]).max_hops = ctx.positive_count(args[1], "max_hops bound");
    } else if (fn == "min_signal_to_noise") {
      if (args.size() != 1) ctx.fail("min_signal_to_noise(<db>)");
      out.link_quality.min_snr_db = ctx.number(args[0]);
    } else if (fn == "min_rss") {
      if (args.size() != 1) ctx.fail("min_rss(<dbm>)");
      out.link_quality.min_rss_dbm = ctx.number(args[0]);
    } else if (fn == "min_network_lifetime") {
      if (args.empty() || args.size() > 2) ctx.fail("min_network_lifetime(<years>[, <mah>])");
      LifetimeRequirement lt;
      lt.min_years = ctx.number(args[0]);
      if (args.size() == 2) lt.battery_mah = ctx.number(args[1]);
      out.lifetime = lt;
    } else if (fn == "eval_point") {
      if (args.size() != 2) ctx.fail("eval_point(<x>, <y>)");
      if (!out.localization) out.localization.emplace();
      out.localization->eval_points.push_back({ctx.number(args[0]), ctx.number(args[1])});
    } else if (fn == "min_reachable_devices") {
      if (args.size() != 2) ctx.fail("min_reachable_devices(<n>, <rss>)");
      if (!out.localization) out.localization.emplace();
      out.localization->min_anchors = ctx.positive_count(args[0], "min_reachable_devices count");
      out.localization->min_rss_dbm = ctx.number(args[1]);
    } else if (fn == "max_bit_error_rate") {
      if (args.size() != 1) ctx.fail("max_bit_error_rate(<ber>)");
      const double ber = ctx.number(args[0]);
      if (ber <= 0.0 || ber >= 0.5) ctx.fail("BER bound must be in (0, 0.5)");
      out.link_quality.max_ber = ber;
    } else if (fn == "protocol_csma") {
      if (args.empty() || args.size() > 2) ctx.fail("protocol_csma(<duty>[, <backoff_slots>])");
      out.radio.mac = RadioConfig::MacProtocol::kCsma;
      out.radio.csma.idle_listen_duty = ctx.number(args[0]);
      if (args.size() == 2) out.radio.csma.mean_backoff_slots = ctx.number(args[1]);
    } else if (fn == "noise_floor") {
      if (args.size() != 1) ctx.fail("noise_floor(<dbm>)");
      out.radio.noise_floor_dbm = ctx.number(args[0]);
    } else if (fn == "report_period") {
      if (args.size() != 1) ctx.fail("report_period(<seconds>)");
      out.radio.tdma.report_period_s = ctx.number(args[0]);
    } else {
      ctx.fail("unknown pattern: " + fn);
    }
  }

  // Fold declared paths into RouteRequirements: one per disjoint group
  // (replicas = group size), one per ungrouped path.
  std::map<int, RouteRequirement> groups;
  for (const DeclaredPath& p : paths) {
    if (p.group == -1) {
      RouteRequirement r;
      r.source = p.source;
      r.dest = p.dest;
      r.replicas = 1;
      r.max_hops = p.max_hops;
      out.routes.push_back(r);
    } else {
      auto [it, fresh] = groups.try_emplace(p.group);
      if (fresh) {
        it->second.source = p.source;
        it->second.dest = p.dest;
        it->second.replicas = 0;
      }
      ++it->second.replicas;
      if (p.max_hops) {
        it->second.max_hops = it->second.max_hops
                                  ? std::min(*it->second.max_hops, *p.max_hops)
                                  : p.max_hops;
      }
    }
  }
  for (auto& [g, r] : groups) out.routes.push_back(r);
  return out;
}

}  // namespace wnet::archex::spec
