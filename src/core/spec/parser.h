#pragma once

#include <string>

#include "core/network_template.h"
#include "core/requirements.h"

namespace wnet::archex::spec {

/// Compiles the paper's pattern-based specification language into a
/// Specification. One pattern per line; `#` starts a comment. Node names
/// refer to the template. Grammar:
///
///   <name> = has_path(<src>, <dst>)        declare a required route
///   disjoint_links(<p1>, <p2> [, ...])     the named routes must be
///                                          edge-disjoint replicas of the
///                                          same (src, dst) pair
///   max_hops(<p>, <n>)                     hop bound for a route
///   min_signal_to_noise(<db>)              LQ bound as SNR
///   min_rss(<dbm>)                         LQ bound as RSS
///   max_bit_error_rate(<ber>)              LQ bound as BER (inverse curve)
///   protocol_csma(<duty>[, <backoff_slots>])  contention MAC energy model
///   min_network_lifetime(<years> [, <battery_mah>])
///   eval_point(<x>, <y>)                   add a localization test point
///   min_reachable_devices(<n>, <rss_dbm>)  localization coverage
///   objective cost=<w> [energy=<w>] [dsod=<w>]
///   noise_floor(<dbm>)
///   report_period(<seconds>)
///
/// Throws std::runtime_error with a line number on any malformed input or
/// unknown node/route name. Count arguments (max_hops bound, the
/// min_reachable_devices count) must be positive integers — fractional or
/// non-positive values are rejected, not truncated — and a call must end at
/// its closing paren (no trailing garbage).
[[nodiscard]] Specification parse(const std::string& text, const NetworkTemplate& tmpl);

}  // namespace wnet::archex::spec
