#pragma once

#include <string>
#include <vector>

#include "core/encode/encoded_problem.h"
#include "core/network_template.h"
#include "core/requirements.h"

namespace wnet::archex {

/// A deployed node: template node index plus the library component chosen
/// for it by the sizing map M*.
struct DeployedNode {
  int node = -1;
  int component = -1;
};

/// An active wireless link with its realized signal strength.
struct ActiveLink {
  int from = -1;
  int to = -1;
  double rss_dbm = 0.0;
};

/// A synthesized route: which requirement/replica it serves and the path.
struct ChosenRoute {
  int route_index = -1;
  int replica = 0;
  graph::Path path;
};

/// The optimizer's output re-expressed in domain terms — the (E*, R*, M*)
/// triple of the paper's problem statement plus derived metrics matching
/// the columns of Tables 1 and 2.
struct NetworkArchitecture {
  std::vector<DeployedNode> nodes;
  std::vector<ActiveLink> links;
  std::vector<ChosenRoute> routes;

  double total_cost_usd = 0.0;
  double min_lifetime_years = 0.0;   ///< worst battery node (inf if none)
  double avg_lifetime_years = 0.0;   ///< mean over battery nodes
  double total_charge_per_cycle_mas = 0.0;
  double avg_reachable_anchors = 0.0;  ///< localization coverage metric
  double dsod = 0.0;                   ///< sum of serving-anchor distances

  [[nodiscard]] bool node_is_used(int node) const;
  /// Component of a used node, or -1.
  [[nodiscard]] int component_of(int node) const;
  [[nodiscard]] int num_nodes() const { return static_cast<int>(nodes.size()); }
};

/// Decodes a solver assignment over the encoded problem's variables into an
/// architecture, recomputing all physical metrics (lifetimes from actual
/// RSS-derived ETX, coverage from geometry) rather than trusting the
/// conservative MILP surrogates.
[[nodiscard]] NetworkArchitecture decode_solution(const EncodedProblem& ep,
                                                  const NetworkTemplate& tmpl,
                                                  const Specification& spec,
                                                  const std::vector<double>& x);

/// Independent requirement checker (shares no code with the encoder): walks
/// the architecture against the specification and reports violations. Used
/// as ground truth by tests and examples.
struct VerifyReport {
  bool ok = true;
  std::vector<std::string> violations;
};

[[nodiscard]] VerifyReport verify_architecture(const NetworkArchitecture& arch,
                                               const NetworkTemplate& tmpl,
                                               const Specification& spec);

}  // namespace wnet::archex
