#include "core/workloads/scenarios.h"

#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace wnet::archex::workloads {

namespace {

constexpr double kFrequencyHz = 2.4e9;
constexpr double kPathLossExponent = 2.8;  // indoor NLOS-ish

/// Places `count` sensors at seeded random in-room positions, keeping a
/// minimum spacing so templates stay realistic.
std::vector<geom::Vec2> scatter_positions(int count, double width, double height,
                                          util::Rng& rng, double margin = 2.0,
                                          double min_spacing = 2.0) {
  std::vector<geom::Vec2> out;
  int guard = 0;
  while (static_cast<int>(out.size()) < count) {
    if (++guard > count * 1000) {
      throw std::runtime_error("scatter_positions: cannot satisfy spacing");
    }
    const geom::Vec2 p{rng.uniform(margin, width - margin), rng.uniform(margin, height - margin)};
    bool ok = true;
    for (const auto& q : out) {
      if (p.dist(q) < min_spacing) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(p);
  }
  return out;
}

void add_relay_grid(NetworkTemplate& tmpl, double width, double height, int nx, int ny,
                    Role role, int max_count = -1) {
  const double dx = width / (nx + 1);
  const double dy = height / (ny + 1);
  int idx = 0;
  for (int iy = 1; iy <= ny; ++iy) {
    for (int ix = 1; ix <= nx; ++ix) {
      if (max_count >= 0 && idx >= max_count) return;
      TemplateNode n;
      n.name = (role == Role::kRelay ? "relay" : "anchor") + std::to_string(idx++);
      n.position = {ix * dx, iy * dy};
      n.role = role;
      n.kind = NodeKind::kCandidate;
      tmpl.add_node(std::move(n));
    }
  }
}

std::unique_ptr<Scenario> make_base(double width, double height) {
  auto sc = std::make_unique<Scenario>();
  sc->plan = geom::make_office_floor(width, height);
  sc->model = std::make_unique<channel::MultiWallModel>(kFrequencyHz, kPathLossExponent, sc->plan);
  sc->library = make_reference_library();
  sc->tmpl = std::make_unique<NetworkTemplate>(*sc->model, sc->library);
  return sc;
}

void configure_radio(Specification& spec) {
  spec.radio.tdma.slots_per_superframe = 16;
  spec.radio.tdma.slot_s = 1e-3;
  spec.radio.tdma.report_period_s = 30.0;
  spec.radio.tdma.packet_bytes = 50;
  spec.radio.tdma.bitrate_bps = 250e3;
  spec.radio.noise_floor_dbm = -100.0;
  spec.radio.modulation = channel::Modulation::kQpsk;
}

}  // namespace

std::unique_ptr<Scenario> make_data_collection(const DataCollectionConfig& cfg) {
  auto sc = make_base(cfg.width_m, cfg.height_m);
  util::Rng rng(cfg.seed);

  // Base station at the floor center, sized freely among sink parts.
  {
    TemplateNode sink;
    sink.name = "sink";
    sink.position = {cfg.width_m / 2.0, cfg.height_m / 2.0};
    sink.role = Role::kSink;
    sink.kind = NodeKind::kFixed;
    sc->tmpl->add_node(std::move(sink));
  }
  // Sensors at fixed random room positions.
  const auto spots = scatter_positions(cfg.sensors, cfg.width_m, cfg.height_m, rng);
  for (int i = 0; i < cfg.sensors; ++i) {
    TemplateNode s;
    s.name = "s" + std::to_string(i);
    s.position = spots[static_cast<size_t>(i)];
    s.role = Role::kSensor;
    s.kind = NodeKind::kFixed;
    sc->tmpl->add_node(std::move(s));
  }
  add_relay_grid(*sc->tmpl, cfg.width_m, cfg.height_m, cfg.relay_grid_x, cfg.relay_grid_y,
                 Role::kRelay);

  configure_radio(sc->spec);
  sc->spec.link_quality.min_snr_db = cfg.min_snr_db;
  sc->spec.lifetime = LifetimeRequirement{cfg.min_lifetime_years, cfg.battery_mah};
  const int sink_id = *sc->tmpl->find_node("sink");
  for (int i = 0; i < cfg.sensors; ++i) {
    RouteRequirement r;
    r.source = *sc->tmpl->find_node("s" + std::to_string(i));
    r.dest = sink_id;
    r.replicas = cfg.route_replicas;
    sc->spec.routes.push_back(r);
  }
  sc->spec.objective = {1.0, 0.0, 0.0};
  return sc;
}

std::unique_ptr<Scenario> make_localization(const LocalizationConfig& cfg) {
  auto sc = make_base(cfg.width_m, cfg.height_m);
  add_relay_grid(*sc->tmpl, cfg.width_m, cfg.height_m, cfg.anchor_grid_x, cfg.anchor_grid_y,
                 Role::kAnchor);

  configure_radio(sc->spec);
  LocalizationRequirement loc;
  loc.min_anchors = cfg.min_anchors;
  loc.min_rss_dbm = cfg.min_rss_dbm;
  // Evaluation grid, offset from the anchor grid so points sit inside
  // rooms rather than on candidate positions.
  const double dx = cfg.width_m / (cfg.eval_grid_x + 1);
  const double dy = cfg.height_m / (cfg.eval_grid_y + 1);
  for (int iy = 1; iy <= cfg.eval_grid_y; ++iy) {
    for (int ix = 1; ix <= cfg.eval_grid_x; ++ix) {
      loc.eval_points.push_back({(ix + 0.35) * dx, (iy + 0.35) * dy});
    }
  }
  sc->spec.localization = std::move(loc);
  sc->spec.objective = {1.0, 0.0, 0.0};
  return sc;
}

std::unique_ptr<Scenario> make_scalable(const ScalableConfig& cfg) {
  if (cfg.end_devices + 1 >= cfg.total_nodes) {
    throw std::invalid_argument("make_scalable: need room for relays");
  }
  // Keep density roughly constant relative to the 136-node reference floor.
  const double area_scale = std::sqrt(static_cast<double>(cfg.total_nodes) / 136.0);
  const double width = 80.0 * area_scale;
  const double height = 45.0 * area_scale;

  auto sc = make_base(width, height);
  util::Rng rng(cfg.seed);

  {
    TemplateNode sink;
    sink.name = "sink";
    sink.position = {width / 2.0, height / 2.0};
    sink.role = Role::kSink;
    sink.kind = NodeKind::kFixed;
    sc->tmpl->add_node(std::move(sink));
  }
  const auto spots = scatter_positions(cfg.end_devices, width, height, rng);
  for (int i = 0; i < cfg.end_devices; ++i) {
    TemplateNode s;
    s.name = "s" + std::to_string(i);
    s.position = spots[static_cast<size_t>(i)];
    s.role = Role::kSensor;
    s.kind = NodeKind::kFixed;
    sc->tmpl->add_node(std::move(s));
  }
  const int relays = cfg.total_nodes - cfg.end_devices - 1;
  const int nx = std::max(1, static_cast<int>(std::round(std::sqrt(relays * width / height))));
  const int ny = std::max(1, (relays + nx - 1) / nx);
  add_relay_grid(*sc->tmpl, width, height, nx, ny, Role::kRelay, relays);

  configure_radio(sc->spec);
  sc->spec.link_quality.min_snr_db = cfg.min_snr_db;
  sc->spec.lifetime = LifetimeRequirement{5.0, 3000.0};
  const int sink_id = *sc->tmpl->find_node("sink");
  for (int i = 0; i < cfg.end_devices; ++i) {
    RouteRequirement r;
    r.source = *sc->tmpl->find_node("s" + std::to_string(i));
    r.dest = sink_id;
    r.replicas = cfg.route_replicas;
    sc->spec.routes.push_back(r);
  }
  sc->spec.objective = {1.0, 0.0, 0.0};
  return sc;
}

}  // namespace wnet::archex::workloads
