#pragma once

#include <memory>

#include "channel/propagation.h"
#include "core/network_template.h"
#include "core/requirements.h"
#include "geometry/floorplan.h"

namespace wnet::archex::workloads {

/// A self-contained experiment instance: the floor plan, channel model,
/// library, template and specification, with ownership arranged so internal
/// references stay valid. Not movable (the template holds pointers into the
/// other members) — factories hand out unique_ptrs.
struct Scenario {
  geom::FloorPlan plan;
  std::unique_ptr<channel::MultiWallModel> model;
  ComponentLibrary library;
  std::unique_ptr<NetworkTemplate> tmpl;
  Specification spec;

  Scenario() = default;
  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;
};

/// Paper Sec. 4.1: indoor periodic data collection. 35 fixed sensors, one
/// fixed base station, a grid of relay candidate locations (136 nodes
/// total by default), two disjoint routes per sensor, SNR >= 20 dB,
/// lifetime >= 5 years on 2xAA, TDMA 16 x 1 ms slots, 50-byte packets
/// every 30 s.
struct DataCollectionConfig {
  double width_m = 80.0;
  double height_m = 45.0;
  int sensors = 35;
  int relay_grid_x = 10;
  int relay_grid_y = 10;
  int route_replicas = 2;
  double min_snr_db = 20.0;
  double min_lifetime_years = 5.0;
  double battery_mah = 3000.0;  ///< two AA cells of 1500 mAh
  uint64_t seed = 1;
};

[[nodiscard]] std::unique_ptr<Scenario> make_data_collection(const DataCollectionConfig& cfg = {});

/// Paper Sec. 4.2: RSS-based indoor localization with a star topology.
/// 150 candidate anchor positions and 135 evaluation (mobile) locations on
/// the same floor; every test point must hear >= 3 anchors at >= -80 dBm.
struct LocalizationConfig {
  double width_m = 80.0;
  double height_m = 45.0;
  int anchor_grid_x = 15;
  int anchor_grid_y = 10;
  int eval_grid_x = 15;
  int eval_grid_y = 9;
  int min_anchors = 3;
  double min_rss_dbm = -80.0;
  uint64_t seed = 2;
};

[[nodiscard]] std::unique_ptr<Scenario> make_localization(const LocalizationConfig& cfg = {});

/// Paper Sec. 4.3 / Tables 3-4: a family of data-collection templates
/// parameterized by total node count and number of end devices, with floor
/// area scaled to keep node density roughly constant.
struct ScalableConfig {
  int total_nodes = 50;
  int end_devices = 20;
  int route_replicas = 1;
  /// Stricter than the Table-1 scenario so direct sensor-to-sink links
  /// fail and relays are genuinely needed at every template size (the
  /// regime where K* matters, as in the paper's Tables 3-4).
  double min_snr_db = 32.0;
  uint64_t seed = 3;
};

[[nodiscard]] std::unique_ptr<Scenario> make_scalable(const ScalableConfig& cfg);

}  // namespace wnet::archex::workloads
