#include "geometry/floorplan.h"

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <stdexcept>

#include "util/simd/simd.h"
#include "util/strings.h"

namespace wnet::geom {

double default_wall_loss_db(WallMaterial m) {
  switch (m) {
    case WallMaterial::kLight: return 3.4;
    case WallMaterial::kConcrete: return 6.9;
    case WallMaterial::kBrick: return 5.0;
    case WallMaterial::kGlass: return 2.0;
    case WallMaterial::kMetal: return 12.0;
  }
  return 3.4;
}

const char* wall_material_name(WallMaterial m) {
  switch (m) {
    case WallMaterial::kLight: return "light";
    case WallMaterial::kConcrete: return "concrete";
    case WallMaterial::kBrick: return "brick";
    case WallMaterial::kGlass: return "glass";
    case WallMaterial::kMetal: return "metal";
  }
  return "light";
}

namespace {

WallMaterial material_from_name(std::string_view name) {
  const std::string n = util::to_lower(name);
  if (n == "light") return WallMaterial::kLight;
  if (n == "concrete") return WallMaterial::kConcrete;
  if (n == "brick") return WallMaterial::kBrick;
  if (n == "glass") return WallMaterial::kGlass;
  if (n == "metal") return WallMaterial::kMetal;
  throw std::runtime_error("unknown wall material: " + std::string(name));
}

}  // namespace

namespace {

/// Matches the default eps of segments_intersect; the kernel fast path and
/// the scalar fallback must use the same tolerance.
constexpr double kCrossEps = 1e-12;
constexpr int kClassifyChunk = 256;

}  // namespace

double FloorPlan::wall_loss_db(Vec2 a, Vec2 b) const {
  // SIMD classify over wall chunks. Class 0/1 (all four orientations
  // decisively nonzero) equals segments_intersect exactly — the collinear
  // clauses there only fire when some orientation is zero — and class 2
  // falls back to the full scalar test.
  const Segment link{a, b};
  double loss = 0.0;
  uint8_t cls[kClassifyChunk];
  const int n = static_cast<int>(walls_.size());
  for (int off = 0; off < n; off += kClassifyChunk) {
    const int len = std::min(kClassifyChunk, n - off);
    util::simd::kernels().segment_classify(a.x, a.y, b.x, b.y, wax_.data() + off,
                                           way_.data() + off, wbx_.data() + off,
                                           wby_.data() + off, len, kCrossEps, cls);
    for (int i = 0; i < len; ++i) {
      if (cls[i] == 1 ||
          (cls[i] == 2 &&
           segments_intersect(link, walls_[static_cast<size_t>(off + i)].span))) {
        loss += loss_[static_cast<size_t>(off + i)];
      }
    }
  }
  return loss;
}

int FloorPlan::walls_crossed(Vec2 a, Vec2 b) const {
  const Segment link{a, b};
  int n_crossed = 0;
  uint8_t cls[kClassifyChunk];
  const int n = static_cast<int>(walls_.size());
  for (int off = 0; off < n; off += kClassifyChunk) {
    const int len = std::min(kClassifyChunk, n - off);
    util::simd::kernels().segment_classify(a.x, a.y, b.x, b.y, wax_.data() + off,
                                           way_.data() + off, wbx_.data() + off,
                                           wby_.data() + off, len, kCrossEps, cls);
    for (int i = 0; i < len; ++i) {
      if (cls[i] == 1 ||
          (cls[i] == 2 &&
           segments_intersect(link, walls_[static_cast<size_t>(off + i)].span))) {
        ++n_crossed;
      }
    }
  }
  return n_crossed;
}

FloorPlan parse_floorplan(const std::string& text) {
  FloorPlan plan;
  bool have_floor = false;
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const auto tokens = util::split_ws(line);
    if (tokens.empty()) continue;
    const auto fail = [&](const std::string& why) -> std::runtime_error {
      return std::runtime_error("floorplan line " + std::to_string(lineno) + ": " + why);
    };
    if (tokens[0] == "floor") {
      if (tokens.size() != 3) throw fail("expected: floor <width> <height>");
      const auto w = util::parse_double(tokens[1]);
      const auto h = util::parse_double(tokens[2]);
      if (!w || !h || *w <= 0 || *h <= 0) throw fail("bad floor dimensions");
      plan = FloorPlan(*w, *h);
      have_floor = true;
    } else if (tokens[0] == "wall") {
      if (tokens.size() != 5 && tokens.size() != 6) {
        throw fail("expected: wall <x1> <y1> <x2> <y2> [material]");
      }
      double coord[4];
      for (int i = 0; i < 4; ++i) {
        const auto v = util::parse_double(tokens[static_cast<size_t>(i) + 1]);
        if (!v) throw fail("bad wall coordinate");
        coord[i] = *v;
      }
      const WallMaterial m =
          tokens.size() == 6 ? material_from_name(tokens[5]) : WallMaterial::kLight;
      plan.add_wall({coord[0], coord[1]}, {coord[2], coord[3]}, m);
    } else {
      throw fail("unknown directive: " + tokens[0]);
    }
  }
  if (!have_floor) throw std::runtime_error("floorplan: missing 'floor' directive");
  return plan;
}

std::string to_text(const FloorPlan& plan) {
  std::ostringstream os;
  os << "floor " << plan.width() << ' ' << plan.height() << '\n';
  for (const Wall& w : plan.walls()) {
    os << "wall " << w.span.a.x << ' ' << w.span.a.y << ' ' << w.span.b.x << ' '
       << w.span.b.y << ' ' << wall_material_name(w.material) << '\n';
  }
  return os.str();
}

FloorPlan make_office_floor(double width_m, double height_m, int rooms_per_row) {
  FloorPlan plan(width_m, height_m);
  // Concrete shell.
  plan.add_wall({0, 0}, {width_m, 0}, WallMaterial::kConcrete);
  plan.add_wall({width_m, 0}, {width_m, height_m}, WallMaterial::kConcrete);
  plan.add_wall({width_m, height_m}, {0, height_m}, WallMaterial::kConcrete);
  plan.add_wall({0, height_m}, {0, 0}, WallMaterial::kConcrete);
  // Corridor walls at 40% / 60% of the height, leaving door gaps every room.
  const double c0 = 0.4 * height_m;
  const double c1 = 0.6 * height_m;
  const double room_w = width_m / rooms_per_row;
  for (int r = 0; r < rooms_per_row; ++r) {
    const double x0 = r * room_w;
    const double door = 1.0;  // meter-wide doorway at the right end of each room
    plan.add_wall({x0, c0}, {x0 + room_w - door, c0}, WallMaterial::kBrick);
    plan.add_wall({x0, c1}, {x0 + room_w - door, c1}, WallMaterial::kBrick);
    // Partition between adjacent rooms (skip the leftmost edge, shell covers it).
    if (r > 0) {
      plan.add_wall({x0, 0}, {x0, c0}, WallMaterial::kLight);
      plan.add_wall({x0, c1}, {x0, height_m}, WallMaterial::kLight);
    }
  }
  return plan;
}

}  // namespace wnet::geom
