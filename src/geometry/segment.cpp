#include "geometry/segment.h"

#include <algorithm>

namespace wnet::geom {

namespace {

/// Orientation of the triple (a, b, c): >0 counter-clockwise, <0 clockwise,
/// 0 collinear (within eps scaled by magnitudes).
int orientation(Vec2 a, Vec2 b, Vec2 c, double eps) {
  const double v = (b - a).cross(c - a);
  const double scale = std::max({1.0, (b - a).norm(), (c - a).norm()});
  if (v > eps * scale) return 1;
  if (v < -eps * scale) return -1;
  return 0;
}

/// With (a, b, c) known collinear, is c inside the bounding box of ab?
bool on_segment(Vec2 a, Vec2 b, Vec2 c, double eps) {
  return c.x <= std::max(a.x, b.x) + eps && c.x >= std::min(a.x, b.x) - eps &&
         c.y <= std::max(a.y, b.y) + eps && c.y >= std::min(a.y, b.y) - eps;
}

}  // namespace

bool segments_intersect(const Segment& s, const Segment& t, double eps) {
  const int o1 = orientation(s.a, s.b, t.a, eps);
  const int o2 = orientation(s.a, s.b, t.b, eps);
  const int o3 = orientation(t.a, t.b, s.a, eps);
  const int o4 = orientation(t.a, t.b, s.b, eps);

  if (o1 != o2 && o3 != o4) return true;

  if (o1 == 0 && on_segment(s.a, s.b, t.a, eps)) return true;
  if (o2 == 0 && on_segment(s.a, s.b, t.b, eps)) return true;
  if (o3 == 0 && on_segment(t.a, t.b, s.a, eps)) return true;
  if (o4 == 0 && on_segment(t.a, t.b, s.b, eps)) return true;
  return false;
}

double point_segment_distance(Vec2 p, const Segment& s) {
  const Vec2 d = s.b - s.a;
  const double len2 = d.dot(d);
  if (len2 == 0.0) return p.dist(s.a);
  double t = (p - s.a).dot(d) / len2;
  t = std::clamp(t, 0.0, 1.0);
  return p.dist(s.a + t * d);
}

}  // namespace wnet::geom
