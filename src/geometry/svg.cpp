#include "geometry/svg.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace wnet::geom {

SvgCanvas::SvgCanvas(double width_m, double height_m, double pixels_per_meter)
    : width_m_(width_m), height_m_(height_m), scale_(pixels_per_meter) {}

void SvgCanvas::draw_floorplan(const FloorPlan& plan) {
  for (const Wall& w : plan.walls()) {
    const bool heavy = w.material == WallMaterial::kConcrete || w.material == WallMaterial::kBrick;
    draw_line(w.span.a, w.span.b, heavy ? "#333333" : "#999999", heavy ? 2.0 : 1.0);
  }
}

void SvgCanvas::draw_circle(Vec2 c, double radius_px, const std::string& fill,
                            const std::string& stroke) {
  std::ostringstream os;
  os << "<circle cx=\"" << px(c.x) << "\" cy=\"" << py(c.y) << "\" r=\"" << radius_px
     << "\" fill=\"" << fill << "\" stroke=\"" << stroke << "\"/>";
  body_.push_back(os.str());
}

void SvgCanvas::draw_square(Vec2 c, double half_px, const std::string& fill,
                            const std::string& stroke) {
  std::ostringstream os;
  os << "<rect x=\"" << px(c.x) - half_px << "\" y=\"" << py(c.y) - half_px << "\" width=\""
     << 2 * half_px << "\" height=\"" << 2 * half_px << "\" fill=\"" << fill << "\" stroke=\""
     << stroke << "\"/>";
  body_.push_back(os.str());
}

void SvgCanvas::draw_line(Vec2 a, Vec2 b, const std::string& stroke, double width_px,
                          bool dashed) {
  std::ostringstream os;
  os << "<line x1=\"" << px(a.x) << "\" y1=\"" << py(a.y) << "\" x2=\"" << px(b.x)
     << "\" y2=\"" << py(b.y) << "\" stroke=\"" << stroke << "\" stroke-width=\"" << width_px
     << '"';
  if (dashed) os << " stroke-dasharray=\"4 3\"";
  os << "/>";
  body_.push_back(os.str());
}

void SvgCanvas::draw_text(Vec2 at, const std::string& text, int font_px) {
  std::ostringstream os;
  os << "<text x=\"" << px(at.x) << "\" y=\"" << py(at.y) << "\" font-size=\"" << font_px
     << "\" font-family=\"sans-serif\">" << text << "</text>";
  body_.push_back(os.str());
}

std::string SvgCanvas::to_string() const {
  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << px(width_m_) << "\" height=\""
     << height_m_ * scale_ << "\" viewBox=\"0 0 " << px(width_m_) << ' ' << height_m_ * scale_
     << "\">\n";
  os << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  for (const auto& e : body_) os << e << '\n';
  os << "</svg>\n";
  return os.str();
}

void SvgCanvas::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("SvgCanvas::save: cannot open " + path);
  out << to_string();
}

}  // namespace wnet::geom
