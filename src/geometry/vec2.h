#pragma once

#include <cmath>

namespace wnet::geom {

/// 2-D point / vector in meters. Node locations and wall endpoints use this.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend Vec2 operator+(Vec2 a, Vec2 b) { return {a.x + b.x, a.y + b.y}; }
  friend Vec2 operator-(Vec2 a, Vec2 b) { return {a.x - b.x, a.y - b.y}; }
  friend Vec2 operator*(double s, Vec2 v) { return {s * v.x, s * v.y}; }
  friend Vec2 operator*(Vec2 v, double s) { return s * v; }
  friend bool operator==(Vec2 a, Vec2 b) { return a.x == b.x && a.y == b.y; }

  [[nodiscard]] double dot(Vec2 o) const { return x * o.x + y * o.y; }
  /// z-component of the 3-D cross product; sign gives orientation.
  [[nodiscard]] double cross(Vec2 o) const { return x * o.y - y * o.x; }
  [[nodiscard]] double norm() const { return std::hypot(x, y); }
  [[nodiscard]] double dist(Vec2 o) const { return (*this - o).norm(); }
};

}  // namespace wnet::geom
