#pragma once

#include <cmath>

namespace wnet::geom {

/// 2-D point / vector in meters. Node locations and wall endpoints use this.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend Vec2 operator+(Vec2 a, Vec2 b) { return {a.x + b.x, a.y + b.y}; }
  friend Vec2 operator-(Vec2 a, Vec2 b) { return {a.x - b.x, a.y - b.y}; }
  friend Vec2 operator*(double s, Vec2 v) { return {s * v.x, s * v.y}; }
  friend Vec2 operator*(Vec2 v, double s) { return s * v; }
  friend bool operator==(Vec2 a, Vec2 b) { return a.x == b.x && a.y == b.y; }

  [[nodiscard]] double dot(Vec2 o) const { return x * o.x + y * o.y; }
  /// z-component of the 3-D cross product; sign gives orientation.
  [[nodiscard]] double cross(Vec2 o) const { return x * o.y - y * o.x; }
  /// sqrt(x^2 + y^2), deliberately NOT std::hypot: sqrt is IEEE-exact on
  /// every platform while hypot's rounding varies across libm versions, and
  /// the SIMD wall-crossing / distance kernels (util/simd) must reproduce
  /// this value bit-for-bit. Coordinates are meters, so the overflow range
  /// hypot protects against is unreachable.
  [[nodiscard]] double norm() const { return std::sqrt(x * x + y * y); }
  [[nodiscard]] double dist(Vec2 o) const { return (*this - o).norm(); }
};

}  // namespace wnet::geom
