#pragma once

#include "geometry/vec2.h"

namespace wnet::geom {

/// Closed line segment between two points.
struct Segment {
  Vec2 a;
  Vec2 b;

  [[nodiscard]] double length() const { return a.dist(b); }
};

/// True if segments `s` and `t` intersect (including touching endpoints,
/// within tolerance `eps`). Robust orientation-based test with collinear
/// overlap handling; used to count wall crossings on radio links.
[[nodiscard]] bool segments_intersect(const Segment& s, const Segment& t,
                                      double eps = 1e-12);

/// Distance from point `p` to segment `s`.
[[nodiscard]] double point_segment_distance(Vec2 p, const Segment& s);

}  // namespace wnet::geom
