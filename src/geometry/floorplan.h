#pragma once

#include <string>
#include <vector>

#include "geometry/segment.h"
#include "geometry/vec2.h"

namespace wnet::geom {

/// Wall material classes with distinct attenuation (dB per crossing).
/// Values follow the COST-231 multi-wall model conventions.
enum class WallMaterial {
  kLight,     ///< plasterboard / thin partition (~3.4 dB)
  kConcrete,  ///< load-bearing concrete (~6.9 dB)
  kBrick,     ///< brick (~5.0 dB)
  kGlass,     ///< glazed partition / window (~2.0 dB)
  kMetal,     ///< metal door / shaft (~12.0 dB)
};

/// Default per-crossing attenuation for a material, in dB.
[[nodiscard]] double default_wall_loss_db(WallMaterial m);

/// Human-readable material name ("light", "concrete", ...).
[[nodiscard]] const char* wall_material_name(WallMaterial m);

/// A wall: a segment plus its per-crossing attenuation.
struct Wall {
  Segment span;
  WallMaterial material = WallMaterial::kLight;
  double loss_db = 3.4;
};

/// An indoor floor plan: bounding box plus a set of attenuating walls.
/// This is the geometric substrate of the multi-wall channel model — the
/// paper reads it from an SVG; we use a plain text format and programmatic
/// builders (see DESIGN.md substitution table).
class FloorPlan {
 public:
  FloorPlan() = default;
  FloorPlan(double width_m, double height_m) : width_(width_m), height_(height_m) {}

  void add_wall(Wall w) {
    walls_.push_back(w);
    // Structure-of-arrays mirror of the wall endpoints/losses, kept in sync
    // here so the crossing tests can run through the SIMD classify kernel.
    wax_.push_back(w.span.a.x);
    way_.push_back(w.span.a.y);
    wbx_.push_back(w.span.b.x);
    wby_.push_back(w.span.b.y);
    loss_.push_back(w.loss_db);
  }
  void add_wall(Vec2 a, Vec2 b, WallMaterial m) {
    add_wall({{a, b}, m, default_wall_loss_db(m)});
  }

  [[nodiscard]] const std::vector<Wall>& walls() const { return walls_; }
  [[nodiscard]] double width() const { return width_; }
  [[nodiscard]] double height() const { return height_; }

  /// Total wall attenuation (dB) accumulated along the straight radio path
  /// from `a` to `b` — the multi-wall model's sum over crossed walls.
  [[nodiscard]] double wall_loss_db(Vec2 a, Vec2 b) const;

  /// Number of walls crossed by the straight path from `a` to `b`.
  [[nodiscard]] int walls_crossed(Vec2 a, Vec2 b) const;

  /// True if `p` is inside the bounding box.
  [[nodiscard]] bool contains(Vec2 p) const {
    return p.x >= 0 && p.x <= width_ && p.y >= 0 && p.y <= height_;
  }

 private:
  double width_ = 0.0;
  double height_ = 0.0;
  std::vector<Wall> walls_;
  // SoA wall endpoints + per-wall loss, appended in add_wall. FloorPlan is
  // shared read-only across worker threads, so the crossing tests use stack
  // scratch, never mutable members.
  std::vector<double> wax_, way_, wbx_, wby_, loss_;
};

/// Parses the plain-text floor-plan format:
///
///   floor <width> <height>
///   wall <x1> <y1> <x2> <y2> <material>          # material name optional
///   # comment
///
/// Throws std::runtime_error with a line number on malformed input.
[[nodiscard]] FloorPlan parse_floorplan(const std::string& text);

/// Serializes a floor plan back to the text format (round-trips parse).
[[nodiscard]] std::string to_text(const FloorPlan& plan);

/// Builds the paper's reference office floor: an 80 x 45 m slab with a
/// central corridor and two rows of offices, mixing concrete shell walls
/// and light partitions. `rooms_per_row` controls partition density.
[[nodiscard]] FloorPlan make_office_floor(double width_m = 80.0, double height_m = 45.0,
                                          int rooms_per_row = 8);

}  // namespace wnet::geom
