#pragma once

#include <string>
#include <vector>

#include "geometry/floorplan.h"
#include "geometry/vec2.h"

namespace wnet::geom {

/// Minimal SVG writer used to render Fig. 1-style floor plans, node
/// placements, and synthesized topologies. Coordinates are in meters and
/// scaled by `pixels_per_meter`; the y axis is flipped so the origin is at
/// the bottom-left as in the paper's plots.
class SvgCanvas {
 public:
  SvgCanvas(double width_m, double height_m, double pixels_per_meter = 12.0);

  void draw_floorplan(const FloorPlan& plan);
  void draw_circle(Vec2 center_m, double radius_px, const std::string& fill,
                   const std::string& stroke = "black");
  void draw_square(Vec2 center_m, double half_px, const std::string& fill,
                   const std::string& stroke = "black");
  void draw_line(Vec2 a_m, Vec2 b_m, const std::string& stroke, double width_px = 1.0,
                 bool dashed = false);
  void draw_text(Vec2 at_m, const std::string& text, int font_px = 10);

  /// Full SVG document.
  [[nodiscard]] std::string to_string() const;

  /// Writes the document to `path`; throws on I/O failure.
  void save(const std::string& path) const;

 private:
  [[nodiscard]] double px(double x_m) const { return x_m * scale_; }
  [[nodiscard]] double py(double y_m) const { return (height_m_ - y_m) * scale_; }

  double width_m_;
  double height_m_;
  double scale_;
  std::vector<std::string> body_;
};

}  // namespace wnet::geom
