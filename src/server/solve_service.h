#pragma once

// Exploration-as-a-service: a long-lived, multi-tenant solve daemon core.
//
// SolveService multiplexes a stream of exploration requests over a shared
// ThreadPool. Each admitted request runs one serial incremental K* ladder
// (per-request solves are single-threaded; daemon-level parallelism comes
// from running many requests concurrently), governed by its own
// util::exec control: a deadline from the request's time limit, a
// cancellation token linked to the service root (one shutdown cancels
// everything in flight) and a ResourceBudget over its B&B node cap.
// Incremental progress streams through the EventSink as strict JSONL.
//
// Admission control: a bounded queue (queue_full and duplicate ids are
// rejected with structured events), fair-share dispatch (the runnable
// request whose tenant holds the fewest running slots goes first, ties by
// arrival order) and cancel-by-request-id that works on queued and running
// requests alike — a queued-then-cancelled request still produces a
// deterministic `result` event with termination "cancelled".
//
// Determinism contract (pinned by the differential tests): the canonical
// sub-object of every `result` event is byte-identical for any worker
// count and any cache state. Per-request ladders are serial and replayed
// cache rungs equal their cold recomputation, so neither concurrency nor
// the session cache can leak into results — only into wall clock.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "server/protocol.h"
#include "server/session_cache.h"
#include "util/exec/exec.h"
#include "util/thread_pool.h"

namespace wnet::server {

struct ServiceConfig {
  int workers = 2;            ///< concurrent solve slots
  int queue_limit = 32;       ///< max queued (not yet running) requests
  size_t cache_max_bytes = 256u << 20;
  double default_time_limit_s = 60.0;  ///< for requests that set none
  double max_time_limit_s = 600.0;     ///< requests are clamped to this
  /// Start with dispatch paused: requests queue (and can be rejected or
  /// cancelled) but nothing runs until resume(). Tests use this to make
  /// admission decisions independent of solve timing.
  bool start_paused = false;
};

/// Receives every emitted JSONL event line (no trailing newline). Called
/// from worker threads, one call per line, serialized by the service — the
/// sink never sees interleaved lines.
using EventSink = std::function<void(const std::string&)>;

class SolveService {
 public:
  /// `registry` must outlive the service.
  SolveService(TemplateRegistry& registry, ServiceConfig cfg, EventSink sink);
  ~SolveService();

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Parses and performs one request line: solve requests go through
  /// admission, cancel/stats are answered inline, shutdown begins a drain.
  /// Malformed lines emit a `rejected` event with reason "bad_request".
  /// Returns false once the service should accept no further lines (a
  /// shutdown request was seen).
  bool submit_line(const std::string& line);

  /// Programmatic admission of a solve request; emits accepted/rejected.
  /// Returns true iff admitted.
  bool submit(const Request& req);

  /// Trips the cancellation source of a queued or running request. Safe
  /// from any thread; emits nothing (submit_line emits the ack).
  bool cancel(const std::string& id);

  /// Trips the service root: every queued and running request cancels (each
  /// still emits its structured partial result). New submissions are
  /// unaffected — pair with shutdown() for a hard stop.
  void cancel_all();

  /// Releases dispatch when start_paused was set.
  void resume();

  /// Blocks until no request is queued or running.
  void wait_idle();

  /// Drains the queue (finishing every admitted request), then stops the
  /// workers. Further submissions are rejected with "shutting_down".
  /// Idempotent; the destructor calls it.
  void shutdown();

  /// One `stats` event line (also pushed to the sink by submit_line).
  [[nodiscard]] std::string stats_json();

 private:
  struct Pending {
    Request req;
    uint64_t seq = 0;
    util::exec::CancellationSource source;  ///< tripped by cancel()
    double enqueue_s = 0.0;                 ///< monotonic, for queue_wait_s
  };

  void worker_loop();
  void run_request(const Pending& p);
  void emit(const std::string& line);
  [[nodiscard]] double now_s() const;

  TemplateRegistry& registry_;
  const ServiceConfig cfg_;
  EventSink sink_;
  SessionCache cache_;
  util::exec::CancellationSource root_;

  std::mutex mu_;
  std::condition_variable cv_;       ///< wakes workers on queue push / state change
  std::condition_variable idle_cv_;  ///< wakes wait_idle / shutdown
  std::deque<Pending> queue_;
  std::map<std::string, util::exec::CancellationSource> running_;  ///< id -> cancel handle
  std::map<std::string, int> running_per_tenant_;
  bool paused_ = false;
  bool draining_ = false;
  uint64_t next_seq_ = 0;
  long completed_ = 0;
  long rejected_ = 0;
  long cancelled_ = 0;

  std::mutex emit_mu_;
  std::chrono::steady_clock::time_point epoch_;

  /// Declared last so it is destroyed first: the destructor's shutdown()
  /// makes every drainer task return, then the pool joins its threads
  /// while the rest of the service is still alive.
  util::ThreadPool pool_;
};

}  // namespace wnet::server
