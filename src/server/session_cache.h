#pragma once

// Content-addressed cache of resumable exploration sessions.
//
// A solve request is keyed by everything that determines its results:
// template key, spec text (empty = the template's default) and the
// objective override. Against one key the daemon keeps the live
// IncrementalEncoder session (resumable Yen enumerators + the standing
// MILP), the rung carry (previous incumbent / cutoff) and the per-rung
// ExplorationResults already computed — so a repeated request replays its
// rungs at ~zero cost and an *extended* ladder (same prefix, more rungs)
// delta-extends instead of re-deriving.
//
// Soundness: replayed rung results are byte-identical to what a cold solve
// of the same request would produce (the serial incremental ladder is
// deterministic, and only sessions whose every rung completed naturally are
// ever checked in), so the canonical result of a request is invariant to
// cache state. Concurrency is by exclusive checkout: an entry leaves the
// map while a request uses it, a concurrent same-key request simply misses
// and computes fresh (same answer, more work). Cancelled / deadline-stopped
// sessions are never checked in — their encoder may hold a partial model.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/explorer.h"
#include "core/requirements.h"

namespace wnet::server {

/// One cached (or in-flight) exploration session. Owns the Specification
/// the Explorer and IncrementalEncoder reference, so the bundle is
/// self-contained once the template (registry-owned, process lifetime) is
/// fixed. Not movable: `explorer`/`session` hold pointers into `spec`.
struct CachedSession {
  archex::Specification spec;
  std::unique_ptr<archex::Explorer> explorer;
  std::unique_ptr<archex::IncrementalEncoder> session;
  archex::Explorer::RungCarry carry;

  /// Rungs computed so far, in ladder order: rung_ks[i] was explored with
  /// result rung_results[i]. A request whose ladder starts with a prefix of
  /// rung_ks replays those rungs verbatim.
  std::vector<int> rung_ks;
  std::vector<archex::ExplorationResult> rung_results;

  CachedSession() = default;
  CachedSession(const CachedSession&) = delete;
  CachedSession& operator=(const CachedSession&) = delete;
};

/// Rough heap footprint of a session, for the cache's byte budget: model
/// sizes from the encode stats plus candidate paths and carried vectors.
[[nodiscard]] size_t estimate_session_bytes(const CachedSession& cs);

/// FNV-1a of the canonical key text; surfaced in telemetry so operators can
/// correlate requests without logging spec bodies.
[[nodiscard]] uint64_t cache_key_hash(const std::string& key_text);

/// The canonical key text: template key, spec text and objective override
/// joined with separators that cannot occur inside any component.
[[nodiscard]] std::string make_cache_key(const std::string& template_key,
                                         const std::string& spec_text, double weight_cost,
                                         double weight_energy, double weight_dsod);

class SessionCache {
 public:
  explicit SessionCache(size_t max_bytes) : max_bytes_(max_bytes) {}

  /// Removes and returns the entry for `key` (exclusive ownership), or
  /// nullptr on a miss. The caller MUST either check the entry back in or
  /// drop it; either way the cache stays consistent.
  [[nodiscard]] std::unique_ptr<CachedSession> checkout(const std::string& key);

  /// Inserts (or replaces) the entry for `key` and evicts least-recently
  /// used entries until the byte budget holds. An entry larger than the
  /// whole budget is dropped on the floor.
  void checkin(const std::string& key, std::unique_ptr<CachedSession> entry);

  struct Stats {
    long hits = 0;
    long misses = 0;
    long evictions = 0;
    size_t entries = 0;
    size_t bytes = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Slot {
    std::unique_ptr<CachedSession> entry;
    size_t bytes = 0;
    uint64_t last_used = 0;
  };

  void evict_to_fit_locked();

  mutable std::mutex mu_;
  std::map<std::string, Slot> map_;
  size_t max_bytes_;
  size_t bytes_ = 0;
  uint64_t use_seq_ = 0;
  long hits_ = 0;
  long misses_ = 0;
  long evictions_ = 0;
};

}  // namespace wnet::server
