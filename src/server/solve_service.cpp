#include "server/solve_service.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/spec/parser.h"
#include "milp/solver.h"
#include "util/obs/json.h"
#include "util/stopwatch.h"
#include "util/strings.h"

namespace wnet::server {

namespace {

/// Same improvement rule and default ladder as Explorer::search_k_star —
/// the service's scan must make identical selections so a daemon answer
/// matches the library answer for the same request.
constexpr double kMinImprovement = 1e-3;
const std::vector<int> kDefaultLadder = {1, 3, 5};

bool improved_enough(double objective, double best_obj) {
  return best_obj == milp::kInf ||
         objective < best_obj - kMinImprovement * std::max(1.0, std::abs(best_obj));
}

/// A rung cut short by the request control ends the ladder (and taints the
/// session for caching): later rungs would be cut the same way.
bool cut_short(util::exec::TerminationReason r) {
  return r == util::exec::TerminationReason::kDeadline ||
         r == util::exec::TerminationReason::kCancelled ||
         r == util::exec::TerminationReason::kNodeLimit;
}

}  // namespace

SolveService::SolveService(TemplateRegistry& registry, ServiceConfig cfg, EventSink sink)
    : registry_(registry),
      cfg_(cfg),
      sink_(std::move(sink)),
      cache_(cfg.cache_max_bytes),
      paused_(cfg.start_paused),
      epoch_(std::chrono::steady_clock::now()),
      pool_(std::max(1, cfg.workers)) {
  // The pool's threads become long-lived drainers: each loops picking and
  // running requests until shutdown() drains the queue.
  for (int i = 0; i < pool_.size(); ++i) {
    pool_.submit([this] { worker_loop(); });
  }
}

SolveService::~SolveService() { shutdown(); }

double SolveService::now_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_).count();
}

void SolveService::emit(const std::string& line) {
  // Every line the daemon ever writes is re-validated: emitting non-JSON is
  // a programmer error the stream's consumers must never see.
  if (const std::optional<std::string> err = util::obs::json_error(line)) {
    throw std::logic_error("malformed event line (" + *err + "): " + line);
  }
  const std::lock_guard<std::mutex> lock(emit_mu_);
  sink_(line);
}

bool SolveService::submit_line(const std::string& line) {
  if (util::trim(line).empty()) return true;
  Request req;
  std::string error;
  if (!parse_request(line, &req, &error)) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++rejected_;
    }
    emit(event_rejected(req.id, "bad_request", error));
    return true;
  }
  switch (req.op) {
    case Request::Op::kSolve:
      submit(req);
      return true;
    case Request::Op::kCancel:
      emit(event_cancel_ack(req.id, cancel(req.id)));
      return true;
    case Request::Op::kStats:
      emit(stats_json());
      return true;
    case Request::Op::kShutdown:
      shutdown();
      emit(R"({"event": "shutdown"})");
      return false;
  }
  return true;
}

bool SolveService::submit(const Request& req) {
  std::unique_lock<std::mutex> lock(mu_);
  std::string reason;
  std::string error;
  const bool queued_dup = std::any_of(queue_.begin(), queue_.end(), [&](const Pending& p) {
    return p.req.id == req.id;
  });
  if (draining_) {
    reason = "shutting_down";
  } else if (queued_dup || running_.count(req.id) != 0) {
    // Checked before queue_full: resubmitting an in-flight id is a client
    // error regardless of queue state, and the more actionable diagnosis.
    reason = "duplicate_id";
  } else if (static_cast<int>(queue_.size()) >= cfg_.queue_limit) {
    reason = "queue_full";
  } else if (!registry_.known(req.template_key)) {
    reason = "bad_request";
    error = "unknown template: " + req.template_key;
  }
  if (!reason.empty()) {
    ++rejected_;
    // Emitted under mu_ so the rejection cannot interleave after events of
    // a later same-id admission.
    emit(event_rejected(req.id, reason, error));
    return false;
  }
  Pending p;
  p.req = req;
  p.seq = next_seq_++;
  p.source = util::exec::CancellationSource(root_.token());
  p.enqueue_s = now_s();
  queue_.push_back(std::move(p));
  const int depth = static_cast<int>(queue_.size());
  emit(event_accepted(req.id, depth));
  lock.unlock();
  cv_.notify_one();
  return true;
}

bool SolveService::cancel(const std::string& id) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (Pending& p : queue_) {
    if (p.req.id == id) {
      p.source.cancel();
      ++cancelled_;
      return true;
    }
  }
  const auto it = running_.find(id);
  if (it != running_.end()) {
    it->second.cancel();
    ++cancelled_;
    return true;
  }
  return false;
}

void SolveService::cancel_all() { root_.cancel(); }

void SolveService::resume() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

void SolveService::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [&] { return queue_.empty() && running_.empty(); });
}

void SolveService::shutdown() {
  std::unique_lock<std::mutex> lock(mu_);
  draining_ = true;
  cv_.notify_all();
  idle_cv_.wait(lock, [&] { return queue_.empty() && running_.empty(); });
  // Workers observe draining_ + empty queue and return; the pool joins them
  // when the service is destroyed.
}

std::string SolveService::stats_json() {
  const SessionCache::Stats cs = cache_.stats();
  const std::lock_guard<std::mutex> lock(mu_);
  util::obs::JsonWriter w;
  w.begin_object()
      .field("event", "stats")
      .field("queued", queue_.size())
      .field("running", running_.size())
      .field("completed", completed_)
      .field("rejected", rejected_)
      .field("cancelled", cancelled_)
      .field("workers", pool_.size());
  w.key("cache")
      .begin_object()
      .field("entries", cs.entries)
      .field("bytes", cs.bytes)
      .field("hits", cs.hits)
      .field("misses", cs.misses)
      .field("evictions", cs.evictions)
      .end_object();
  w.field("suppressed_exceptions", util::suppressed_exception_total());
  return w.end_object().take();
}

void SolveService::worker_loop() {
  for (;;) {
    Pending p;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return (!queue_.empty() && (!paused_ || draining_)) || (draining_ && queue_.empty());
      });
      if (queue_.empty()) return;  // draining and nothing left
      // Fair-share pick: the queued request whose tenant holds the fewest
      // running slots; ties go to arrival order (the queue is seq-ordered).
      const auto slots = [&](const std::string& tenant) {
        const auto it = running_per_tenant_.find(tenant);
        return it == running_per_tenant_.end() ? 0 : it->second;
      };
      size_t best = 0;
      int best_slots = slots(queue_[0].req.tenant);
      for (size_t i = 1; i < queue_.size(); ++i) {
        const int s = slots(queue_[i].req.tenant);
        if (s < best_slots) {
          best = i;
          best_slots = s;
        }
      }
      p = std::move(queue_[best]);
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(best));
      running_.emplace(p.req.id, p.source);
      ++running_per_tenant_[p.req.tenant];
    }
    run_request(p);
    {
      const std::lock_guard<std::mutex> lock(mu_);
      running_.erase(p.req.id);
      const auto it = running_per_tenant_.find(p.req.tenant);
      if (it != running_per_tenant_.end() && --it->second <= 0) running_per_tenant_.erase(it);
      ++completed_;
    }
    idle_cv_.notify_all();
    cv_.notify_all();  // freed tenant slots can change the fair-share pick
  }
}

void SolveService::run_request(const Pending& p) {
  const Request& req = p.req;
  util::Stopwatch wall;
  const double queue_wait_s = now_s() - p.enqueue_s;

  const archex::workloads::Scenario* scn = registry_.get(req.template_key);
  if (scn == nullptr) {
    emit(event_failed(req.id, "unknown template: " + req.template_key));
    return;
  }

  double limit = req.time_limit_s > 0.0 ? req.time_limit_s : cfg_.default_time_limit_s;
  limit = std::min(limit, cfg_.max_time_limit_s);
  const util::exec::RequestControl rc =
      util::exec::make_request_control(limit, p.source.token(), req.max_bb_nodes);

  const std::vector<int>& ladder = req.ladder.empty() ? kDefaultLadder : req.ladder;
  const archex::Objective obj = req.objective ? *req.objective : scn->spec.objective;
  const std::string key = make_cache_key(req.template_key, req.spec_text, obj.weight_cost,
                                         obj.weight_energy, obj.weight_dsod);

  std::unique_ptr<CachedSession> cs;
  bool cache_hit = false;
  if (req.use_cache) {
    cs = cache_.checkout(key);
    if (cs != nullptr) {
      // Usable only when the cached rungs agree with this request's ladder
      // on their common prefix: replay is then exactly the cold scan, and
      // an extension resumes from the state a cold scan would have reached.
      // Any divergence (e.g. a different first rung) would hand later rungs
      // a carry/cutoff from a rung the cold scan never ran — rebuild fresh
      // instead of risking a cache-dependent answer.
      const size_t common = std::min(ladder.size(), cs->rung_ks.size());
      for (size_t j = 0; j < common; ++j) {
        if (ladder[j] != cs->rung_ks[j]) {
          cs.reset();
          break;
        }
      }
    }
    cache_hit = cs != nullptr;
  }
  if (cs == nullptr) {
    cs = std::make_unique<CachedSession>();
    if (req.spec_text.empty()) {
      cs->spec = scn->spec;
    } else {
      try {
        cs->spec = archex::spec::parse(req.spec_text, *scn->tmpl);
      } catch (const std::exception& e) {
        emit(event_failed(req.id, e.what()));
        return;
      }
    }
    if (req.objective) cs->spec.objective = *req.objective;
    cs->explorer = std::make_unique<archex::Explorer>(*scn->tmpl, cs->spec);
    archex::EncoderOptions eopts;
    eopts.exec = rc.control;
    cs->session = std::make_unique<archex::IncrementalEncoder>(*scn->tmpl, cs->spec, eopts);
  } else {
    // The cached session still carries the creating request's control —
    // possibly expired or tripped. Attach this request's own before any
    // delta work.
    cs->session->set_exec(rc.control);
  }

  milp::SolveOptions sopts;
  sopts.time_limit_s = limit;
  sopts.exec = rc.control;
  sopts.collect_timeline = false;

  // The ladder scan. Mirrors Explorer::search_k_star's serial incremental
  // path — same improvement rule, same termination handling — but streams
  // per-rung events, replays cached rungs and records fresh ones. No
  // wall-clock stop rule on purpose: a replayed rung takes ~zero time, so
  // any time-based ladder decision would make the answer depend on cache
  // state. Deadlines live in the request control instead.
  archex::Explorer::KStarSearchResult out;
  double best_obj = milp::kInf;
  int reused_rungs = 0;
  int reused_candidates = 0;
  bool session_dirty = false;
  for (size_t i = 0; i < ladder.size(); ++i) {
    util::exec::TerminationReason scan_why = util::exec::TerminationReason::kCompleted;
    if (rc.control.checkpoint(&scan_why)) {
      out.termination = scan_why;
      break;
    }
    const int k = ladder[i];
    archex::ExplorationResult r;
    bool replayed = false;
    if (i < cs->rung_ks.size() && cs->rung_ks[i] == k) {
      r = cs->rung_results[i];
      replayed = true;
      ++reused_rungs;
    } else {
      milp::SolveOptions rung_opts = sopts;
      rung_opts.on_bound_improved = [&](double bound) { emit(event_bound(req.id, k, bound)); };
      r = cs->explorer->explore_rung(*cs->session, k, cs->carry, rung_opts);
      if (cut_short(r.termination)) {
        // The session's encode/solve state stopped mid-flight; it must not
        // be reused by a later request.
        session_dirty = true;
      } else {
        cs->rung_ks.push_back(k);
        cs->rung_results.push_back(r);
      }
    }
    reused_candidates += r.encode_stats.reused_candidates;
    emit(event_rung(req.id, k, r, replayed));
    out.trace.emplace_back(k, r);
    const util::exec::TerminationReason rung_term = r.termination;
    const bool improved = r.has_solution() && improved_enough(r.objective, best_obj);
    if (improved) {
      best_obj = r.objective;
      out.chosen_k = k;
      out.best = r;
      emit(event_incumbent(req.id, k, r.objective));
    }
    if (cut_short(rung_term)) {
      out.termination = rung_term;
      break;
    }
    if (!improved && out.chosen_k != 0) break;  // Sec. 4.3 stop rule
  }

  const std::string canonical = canonical_result_json(out);
  emit(event_result(req.id, canonical, cache_hit, reused_rungs, reused_candidates, wall.seconds(),
                    queue_wait_s));
  // Never cache a session whose encode/solve was cut short, and don't
  // bother caching one that computed nothing (cancelled before rung 0).
  if (req.use_cache && !session_dirty && !cs->rung_ks.empty()) {
    cache_.checkin(key, std::move(cs));
  }
}

}  // namespace wnet::server
