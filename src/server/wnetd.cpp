// wnetd — the exploration-as-a-service solve daemon.
//
// Reads line-delimited JSON requests from stdin, writes line-delimited JSON
// events to stdout (see server/protocol.h for both grammars). One process
// serves many tenants: requests multiplex over a worker pool with
// per-request deadlines, cancellation and budgets, and repeated requests
// answer from the content-addressed session cache.
//
// Usage:
//   wnetd [--workers N] [--queue N] [--cache-mb N]
//         [--time-limit S] [--max-time-limit S]
//
// Exits on stdin EOF, a {"op": "shutdown"} request, or SIGINT/SIGTERM
// (which cancels in-flight requests; each still emits its structured
// partial result before the daemon drains).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "server/solve_service.h"
#include "util/exec/exec.h"

namespace {

double flag_value(int argc, char** argv, const char* name, double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atof(argv[i + 1]);
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wnet;

  server::ServiceConfig cfg;
  cfg.workers = static_cast<int>(flag_value(argc, argv, "--workers", 2));
  cfg.queue_limit = static_cast<int>(flag_value(argc, argv, "--queue", 32));
  cfg.cache_max_bytes =
      static_cast<size_t>(flag_value(argc, argv, "--cache-mb", 256)) << 20;
  cfg.default_time_limit_s = flag_value(argc, argv, "--time-limit", 60.0);
  cfg.max_time_limit_s = flag_value(argc, argv, "--max-time-limit", 600.0);

  util::exec::install_interrupt_handlers();

  server::TemplateRegistry registry;
  server::SolveService service(registry, cfg, [](const std::string& line) {
    // One write per line; unbuffered flush so clients see events as they
    // happen, not when the pipe buffer fills.
    std::fwrite(line.data(), 1, line.size(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  });

  std::string line;
  while (std::getline(std::cin, line)) {
    if (util::exec::interrupt_signal() != 0) break;
    if (!service.submit_line(line)) return 0;  // shutdown request: drained
  }
  if (util::exec::interrupt_signal() != 0) service.cancel_all();
  service.shutdown();
  return 0;
}
