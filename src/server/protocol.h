#pragma once

// Wire protocol of the solve daemon: line-delimited JSON in both directions.
//
// Requests are one strict RFC 8259 object per line (parsed with
// obs::json_parse, so anything json_error rejects is rejected here too):
//
//   {"op": "solve", "id": "r1", "template": "scalable:40x15",
//    "spec": "<optional spec text>", "ladder": [1, 3, 5],
//    "time_limit_s": 30, "max_bb_nodes": 100000,
//    "objective": {"cost": 1, "energy": 0.5}, "tenant": "alice",
//    "use_cache": true}
//   {"op": "cancel", "id": "r1"}
//   {"op": "stats"}
//   {"op": "shutdown"}
//
// Responses are one JSON object per line, every one of them produced by the
// obs JsonWriter and re-validated against json_error before it reaches the
// sink (a malformed emission is a programmer error, so it throws instead of
// corrupting the stream). Event kinds: accepted, rejected, rung, incumbent,
// bound, result, failed, cancel_ack, stats, shutdown.
//
// The `result` event carries a *canonical* sub-object under "canonical":
// status, chosen_k, objective, termination, per-rung certificates and the
// decoded architecture — everything that is deterministic for a given
// request, and nothing that is not (wall-clock fields live next to it, not
// inside). The differential tests byte-compare this object across worker
// counts and cache states.

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/explorer.h"
#include "core/requirements.h"
#include "core/workloads/scenarios.h"

namespace wnet::server {

/// One parsed request line.
struct Request {
  enum class Op { kSolve, kCancel, kStats, kShutdown };
  Op op = Op::kSolve;

  std::string id;        ///< caller-chosen request id (solve/cancel)
  std::string tenant;    ///< fair-share accounting key; defaults to ""
  std::string template_key;
  std::string spec_text;              ///< empty = the template's default spec
  std::vector<int> ladder;            ///< K* ladder; empty = {1, 3, 5}
  double time_limit_s = 0.0;          ///< <= 0 = service default
  long max_bb_nodes = -1;             ///< B&B node budget; < 0 = unlimited
  std::optional<archex::Objective> objective;  ///< override of the spec's weights
  bool use_cache = true;
};

/// Parses one request line. Returns false and fills `error` on anything
/// malformed: invalid JSON, unknown op, missing id, a non-integral or
/// non-positive ladder entry, a ladder that is not strictly increasing.
[[nodiscard]] bool parse_request(const std::string& line, Request* out, std::string* error);

/// Named problem instances the daemon can solve. Built-in keys:
///   data_collection            paper Sec. 4.1 (Table 1)
///   localization               paper Sec. 4.2 (Table 2)
///   scalable:<nodes>x<devices> paper Sec. 4.3 family, e.g. scalable:40x15
/// Scenarios are constructed lazily on first use and cached for the
/// registry's lifetime (a daemon serves many requests against the same
/// instance). Tests register custom scenarios under their own keys.
/// Thread-safe.
class TemplateRegistry {
 public:
  TemplateRegistry() = default;

  void register_scenario(const std::string& key,
                         std::unique_ptr<archex::workloads::Scenario> scenario);

  /// True if `key` names a registered or built-in scenario (no construction).
  [[nodiscard]] bool known(const std::string& key) const;

  /// The scenario for `key`, building and caching built-ins on first use;
  /// nullptr when unknown. The pointer stays valid for the registry's life.
  [[nodiscard]] const archex::workloads::Scenario* get(const std::string& key);

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<archex::workloads::Scenario>> cache_;
};

// --- Event builders -------------------------------------------------------
// Each returns one complete JSON object (no trailing newline). The service
// validates every line through json_error before emitting.

[[nodiscard]] std::string event_accepted(const std::string& id, int queue_depth);
[[nodiscard]] std::string event_rejected(const std::string& id, const std::string& reason,
                                         const std::string& error);
[[nodiscard]] std::string event_rung(const std::string& id, int k,
                                     const archex::ExplorationResult& r, bool cache_hit);
[[nodiscard]] std::string event_incumbent(const std::string& id, int k, double objective);
[[nodiscard]] std::string event_bound(const std::string& id, int k, double bound);
[[nodiscard]] std::string event_failed(const std::string& id, const std::string& error);
[[nodiscard]] std::string event_cancel_ack(const std::string& id, bool found);

/// The deterministic canonical sub-object (see file comment).
[[nodiscard]] std::string canonical_result_json(const archex::Explorer::KStarSearchResult& kr);

/// The full result event: canonical + the non-deterministic wrapper fields
/// (wall time, queue wait, cache telemetry).
[[nodiscard]] std::string event_result(const std::string& id, const std::string& canonical_json,
                                       bool cache_hit, int reused_rungs, int reused_candidates,
                                       double wall_time_s, double queue_wait_s);

}  // namespace wnet::server
