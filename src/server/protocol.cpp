#include "server/protocol.h"

#include <cmath>
#include <cstdio>

#include "milp/solver.h"
#include "util/obs/json.h"

namespace wnet::server {

using util::obs::JsonValue;
using util::obs::JsonWriter;

namespace {

bool fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

/// Ladder entries ride the same rules as spec count arguments: positive
/// integers only, never truncated.
bool parse_ladder(const JsonValue& v, std::vector<int>* out, std::string* error) {
  for (const JsonValue& item : v.items()) {
    if (!item.is_number()) return fail(error, "ladder entries must be numbers");
    const double d = item.as_number();
    if (!(d >= 1.0) || d > 1e9 || d != std::floor(d)) {
      return fail(error, "ladder entries must be positive integers");
    }
    const int k = static_cast<int>(d);
    if (!out->empty() && k <= out->back()) {
      return fail(error, "ladder must be strictly increasing");
    }
    out->push_back(k);
  }
  if (out->empty()) return fail(error, "ladder must not be empty");
  return true;
}

}  // namespace

bool parse_request(const std::string& line, Request* out, std::string* error) {
  std::string parse_err;
  const std::optional<JsonValue> doc = util::obs::json_parse(line, &parse_err);
  if (!doc) return fail(error, "invalid JSON: " + parse_err);
  if (!doc->is_object()) return fail(error, "request must be a JSON object");

  const std::string op = doc->get_string("op", "");
  if (op == "solve") {
    out->op = Request::Op::kSolve;
  } else if (op == "cancel") {
    out->op = Request::Op::kCancel;
  } else if (op == "stats") {
    out->op = Request::Op::kStats;
    return true;
  } else if (op == "shutdown") {
    out->op = Request::Op::kShutdown;
    return true;
  } else {
    return fail(error, op.empty() ? "missing op" : "unknown op: " + op);
  }

  out->id = doc->get_string("id", "");
  if (out->id.empty()) return fail(error, "missing request id");
  if (out->op == Request::Op::kCancel) return true;

  out->template_key = doc->get_string("template", "");
  if (out->template_key.empty()) return fail(error, "solve needs a template");
  out->tenant = doc->get_string("tenant", "");
  out->spec_text = doc->get_string("spec", "");
  out->time_limit_s = doc->get_number("time_limit_s", 0.0);
  out->max_bb_nodes = static_cast<long>(doc->get_number("max_bb_nodes", -1.0));
  out->use_cache = doc->get_bool("use_cache", true);

  if (const JsonValue* ladder = doc->find("ladder"); ladder != nullptr) {
    if (!ladder->is_array()) return fail(error, "ladder must be an array");
    if (!parse_ladder(*ladder, &out->ladder, error)) return false;
  }
  if (const JsonValue* obj = doc->find("objective"); obj != nullptr) {
    if (!obj->is_object()) return fail(error, "objective must be an object");
    archex::Objective o;
    o.weight_cost = obj->get_number("cost", 0.0);
    o.weight_energy = obj->get_number("energy", 0.0);
    o.weight_dsod = obj->get_number("dsod", 0.0);
    if (o.weight_cost == 0.0 && o.weight_energy == 0.0 && o.weight_dsod == 0.0) {
      return fail(error, "objective override needs a nonzero weight");
    }
    out->objective = o;
  }
  return true;
}

void TemplateRegistry::register_scenario(
    const std::string& key, std::unique_ptr<archex::workloads::Scenario> scenario) {
  const std::lock_guard<std::mutex> lock(mu_);
  cache_[key] = std::move(scenario);
}

namespace {

/// scalable:<nodes>x<devices> with both counts positive and devices < nodes.
bool parse_scalable_key(const std::string& key, int* nodes, int* devices) {
  int n = 0;
  int d = 0;
  int consumed = 0;
  if (std::sscanf(key.c_str(), "scalable:%dx%d%n", &n, &d, &consumed) != 2) return false;
  if (static_cast<size_t>(consumed) != key.size()) return false;
  if (n < 2 || d < 1 || d >= n || n > 2000) return false;
  *nodes = n;
  *devices = d;
  return true;
}

std::unique_ptr<archex::workloads::Scenario> build_builtin(const std::string& key) {
  using namespace archex::workloads;
  if (key == "data_collection") return make_data_collection({});
  if (key == "localization") return make_localization({});
  int nodes = 0;
  int devices = 0;
  if (parse_scalable_key(key, &nodes, &devices)) {
    ScalableConfig cfg;
    cfg.total_nodes = nodes;
    cfg.end_devices = devices;
    return make_scalable(cfg);
  }
  return nullptr;
}

}  // namespace

bool TemplateRegistry::known(const std::string& key) const {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (cache_.count(key) != 0) return true;
  }
  if (key == "data_collection" || key == "localization") return true;
  int nodes = 0;
  int devices = 0;
  return parse_scalable_key(key, &nodes, &devices);
}

const archex::workloads::Scenario* TemplateRegistry::get(const std::string& key) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) return it->second.get();
  }
  // Built-ins construct outside the lock (template synthesis is not free);
  // a racing duplicate build keeps the first-inserted scenario so handed-out
  // pointers stay stable.
  std::unique_ptr<archex::workloads::Scenario> built = build_builtin(key);
  if (built == nullptr) return nullptr;
  const std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = cache_.emplace(key, std::move(built));
  return it->second.get();
}

namespace {

JsonWriter event_head(std::string_view event, const std::string& id) {
  JsonWriter w;
  w.begin_object().field("event", event);
  if (!id.empty()) w.field("id", id);
  return w;
}

}  // namespace

std::string event_accepted(const std::string& id, int queue_depth) {
  JsonWriter w = event_head("accepted", id);
  w.field("queue_depth", queue_depth);
  return w.end_object().take();
}

std::string event_rejected(const std::string& id, const std::string& reason,
                           const std::string& error) {
  JsonWriter w = event_head("rejected", id);
  w.field("reason", reason);
  if (!error.empty()) w.field("error", error);
  return w.end_object().take();
}

std::string event_rung(const std::string& id, int k, const archex::ExplorationResult& r,
                       bool cache_hit) {
  JsonWriter w = event_head("rung", id);
  w.field("k", k)
      .field("status", milp::to_string(r.status))
      .field("termination", util::exec::to_string(r.termination));
  if (r.has_solution()) w.number_field("objective", r.objective);
  w.number_field("bound", r.bound).number_field("gap", r.gap);
  w.field("cache_hit", cache_hit)
      .field("reused_candidates", r.encode_stats.reused_candidates)
      .number_field("time_s", cache_hit ? 0.0 : r.total_time_s);
  return w.end_object().take();
}

std::string event_incumbent(const std::string& id, int k, double objective) {
  JsonWriter w = event_head("incumbent", id);
  w.field("k", k).number_field("objective", objective);
  return w.end_object().take();
}

std::string event_bound(const std::string& id, int k, double bound) {
  JsonWriter w = event_head("bound", id);
  w.field("k", k).number_field("bound", bound);
  return w.end_object().take();
}

std::string event_failed(const std::string& id, const std::string& error) {
  JsonWriter w = event_head("failed", id);
  w.field("error", error);
  return w.end_object().take();
}

std::string event_cancel_ack(const std::string& id, bool found) {
  JsonWriter w = event_head("cancel_ack", id);
  w.field("found", found);
  return w.end_object().take();
}

std::string canonical_result_json(const archex::Explorer::KStarSearchResult& kr) {
  JsonWriter w;
  w.begin_object()
      .field("status", milp::to_string(kr.best.status))
      .field("chosen_k", kr.chosen_k);
  if (kr.best.has_solution()) {
    w.field("objective", kr.best.objective);
  } else {
    w.key("objective").null_value();
  }
  w.field("termination", util::exec::to_string(kr.termination));
  w.key("rungs").begin_array();
  for (const auto& [k, r] : kr.trace) {
    w.begin_object()
        .field("k", k)
        .field("status", milp::to_string(r.status))
        .field("objective", r.has_solution() ? r.objective : milp::kInf)  // inf -> null
        .field("bound", r.bound)
        .field("gap", r.gap)
        .end_object();
  }
  w.end_array();
  w.key("architecture");
  if (kr.best.has_solution()) {
    const archex::NetworkArchitecture& arch = kr.best.architecture;
    w.begin_object().field("cost", arch.total_cost_usd);
    w.key("nodes").begin_array();
    for (const archex::DeployedNode& n : arch.nodes) {
      w.begin_object().field("node", n.node).field("component", n.component).end_object();
    }
    w.end_array();
    w.key("routes").begin_array();
    for (const archex::ChosenRoute& r : arch.routes) {
      w.begin_object().field("route", r.route_index).field("replica", r.replica);
      w.key("path").begin_array();
      for (const int node : r.path.nodes) w.value(node);
      w.end_array().end_object();
    }
    w.end_array().end_object();
  } else {
    w.null_value();
  }
  return w.end_object().take();
}

std::string event_result(const std::string& id, const std::string& canonical_json, bool cache_hit,
                         int reused_rungs, int reused_candidates, double wall_time_s,
                         double queue_wait_s) {
  JsonWriter w = event_head("result", id);
  w.key("canonical").raw(canonical_json);
  w.field("cache_hit", cache_hit)
      .field("reused_rungs", reused_rungs)
      .field("reused_candidates", reused_candidates)
      .number_field("wall_time_s", wall_time_s)
      .number_field("queue_wait_s", queue_wait_s);
  return w.end_object().take();
}

}  // namespace wnet::server
