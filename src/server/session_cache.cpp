#include "server/session_cache.h"

#include <algorithm>

#include "core/encode/encoded_problem.h"
#include "util/obs/json.h"

namespace wnet::server {

size_t estimate_session_bytes(const CachedSession& cs) {
  size_t bytes = sizeof(CachedSession);
  // problem() throws before the first encode_k; an unencoded session has no
  // recorded rungs.
  if (cs.session != nullptr && !cs.rung_ks.empty()) {
    // The standing MILP dominates: coefficient triplets, variable and row
    // records, plus every kept candidate path.
    const archex::EncodedProblem& ep = cs.session->problem();
    bytes += ep.stats.nonzeros * 16;
    bytes += static_cast<size_t>(ep.stats.num_vars) * 48;
    bytes += static_cast<size_t>(ep.stats.num_constrs) * 64;
    for (const archex::CandidatePath& c : ep.candidates) {
      bytes += 64 + c.path.nodes.size() * 8 + c.path.edges.size() * 8;
    }
  }
  bytes += cs.carry.x.size() * 8;
  for (const archex::ExplorationResult& r : cs.rung_results) {
    bytes += 256 + r.architecture.nodes.size() * 16 + r.architecture.links.size() * 24;
    for (const archex::ChosenRoute& route : r.architecture.routes) {
      bytes += 48 + route.path.nodes.size() * 8 + route.path.edges.size() * 8;
    }
  }
  return bytes;
}

uint64_t cache_key_hash(const std::string& key_text) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (const unsigned char c : key_text) {
    h ^= c;
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

std::string make_cache_key(const std::string& template_key, const std::string& spec_text,
                           double weight_cost, double weight_energy, double weight_dsod) {
  using util::obs::JsonWriter;
  std::string key = template_key;
  key += '\x1f';
  key += spec_text;
  key += '\x1f';
  // Locale-immune, shortest-round-trip weight formatting so equal weights
  // always produce equal keys.
  key += JsonWriter::format_double(weight_cost);
  key += ',';
  key += JsonWriter::format_double(weight_energy);
  key += ',';
  key += JsonWriter::format_double(weight_dsod);
  return key;
}

std::unique_ptr<CachedSession> SessionCache::checkout(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  std::unique_ptr<CachedSession> entry = std::move(it->second.entry);
  bytes_ -= it->second.bytes;
  map_.erase(it);
  ++hits_;
  return entry;
}

void SessionCache::checkin(const std::string& key, std::unique_ptr<CachedSession> entry) {
  if (entry == nullptr) return;
  const size_t bytes = estimate_session_bytes(*entry);
  const std::lock_guard<std::mutex> lock(mu_);
  if (bytes > max_bytes_) return;  // larger than the whole budget: drop
  auto& slot = map_[key];
  if (slot.entry != nullptr) bytes_ -= slot.bytes;  // same-key race: latest wins
  slot.entry = std::move(entry);
  slot.bytes = bytes;
  slot.last_used = ++use_seq_;
  bytes_ += bytes;
  evict_to_fit_locked();
}

void SessionCache::evict_to_fit_locked() {
  while (bytes_ > max_bytes_ && map_.size() > 1) {
    auto victim = map_.begin();
    for (auto it = map_.begin(); it != map_.end(); ++it) {
      if (it->second.last_used < victim->second.last_used) victim = it;
    }
    bytes_ -= victim->second.bytes;
    map_.erase(victim);
    ++evictions_;
  }
}

SessionCache::Stats SessionCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = map_.size();
  s.bytes = bytes_;
  return s;
}

}  // namespace wnet::server
