#include "radio/energy.h"

#include <algorithm>
#include <stdexcept>

namespace wnet::radio {

double charge_per_cycle_mas(const DeviceCurrents& c, const NodeTraffic& t,
                            const TdmaConfig& tdma) {
  if (t.tx_packets < 0 || t.rx_packets < 0) {
    throw std::invalid_argument("charge_per_cycle_mas: negative packet count");
  }
  if (t.mean_tx_etx < 1.0) {
    throw std::invalid_argument("charge_per_cycle_mas: ETX must be >= 1");
  }
  const double airtime = tdma.packet_airtime_s();
  // (3b): every TX packet is on air for ETX * mu / b; RX listens for one
  // packet airtime per reception (the sender retries land in the same slot
  // budget, so receive time also scales with ETX).
  const double e_tx = t.tx_packets * t.mean_tx_etx * c.tx_ma * airtime;
  const double e_rx = t.rx_packets * t.mean_tx_etx * c.rx_ma * airtime;
  // Awake slots: each packet (TX or RX) occupies slots_per_packet slots in
  // which the non-radio hardware is active.
  const int k = (t.tx_packets + t.rx_packets) * tdma.slots_per_packet();
  const double awake_s = k * tdma.slot_s;
  const double e_active = c.active_ma * awake_s;
  const double sleep_s = std::max(0.0, tdma.report_period_s - awake_s);
  const double e_sleep = c.sleep_ma * sleep_s;
  return e_tx + e_rx + e_active + e_sleep;
}

double lifetime_years(double battery_mah, const DeviceCurrents& c, const NodeTraffic& t,
                      const TdmaConfig& tdma) {
  if (battery_mah <= 0) throw std::invalid_argument("lifetime_years: battery must be > 0");
  const double q_cycle = charge_per_cycle_mas(c, t, tdma);
  if (q_cycle <= 0) return 0.0;
  const double battery_mas = battery_mah * 3600.0;
  const double cycles = battery_mas / q_cycle;
  return cycles * tdma.report_period_s / kSecondsPerYear;
}

double average_current_ma(const DeviceCurrents& c, const NodeTraffic& t,
                          const TdmaConfig& tdma) {
  return charge_per_cycle_mas(c, t, tdma) / tdma.report_period_s;
}

}  // namespace wnet::radio
