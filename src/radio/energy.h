#pragma once

#include "radio/tdma.h"

namespace wnet::radio {

/// Operating-mode current draws of a device (milliamps), matching the
/// component attributes of the paper's library: radio TX / RX currents, the
/// cumulative "active" current of the non-radio hardware (CPU, sensors),
/// and the sleep current.
struct DeviceCurrents {
  double tx_ma = 30.0;
  double rx_ma = 25.0;
  double active_ma = 8.0;
  double sleep_ma = 0.005;
};

/// Per-reporting-cycle traffic through one node: how many packets it
/// transmits and receives per cycle, and the mean ETX of its TX links
/// (expected retransmissions; 1.0 on clean links).
struct NodeTraffic {
  int tx_packets = 0;
  int rx_packets = 0;
  double mean_tx_etx = 1.0;
};

/// Charge drawn per reporting cycle, in milliamp-seconds (mC at 1 V-free
/// accounting). Implements the denominator of paper constraint (3a):
/// E_radio + E_active + E_sleep over one cycle, with (3b)'s
/// E^TX = ETX * c^TX * mu / b per transmitted packet.
[[nodiscard]] double charge_per_cycle_mas(const DeviceCurrents& c, const NodeTraffic& t,
                                          const TdmaConfig& tdma);

/// Node lifetime in years for a battery of `battery_mah` milliamp-hours
/// (paper: two AA of 1500 mAh). Infinite charge draw yields 0.
[[nodiscard]] double lifetime_years(double battery_mah, const DeviceCurrents& c,
                                    const NodeTraffic& t, const TdmaConfig& tdma);

/// Average current in mA over a cycle (useful for energy objectives).
[[nodiscard]] double average_current_ma(const DeviceCurrents& c, const NodeTraffic& t,
                                        const TdmaConfig& tdma);

inline constexpr double kSecondsPerYear = 365.25 * 24.0 * 3600.0;

}  // namespace wnet::radio
