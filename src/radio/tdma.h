#pragma once

#include <cmath>
#include <stdexcept>

namespace wnet::radio {

/// Collision-free TDMA protocol parameters (paper Sec. 2, energy
/// constraints): nodes wake only in dedicated slots for TX/RX; one TDMA
/// superframe is served every reporting period (the paper's sensors send a
/// packet every 30 s), and nodes sleep for the remainder of the period.
struct TdmaConfig {
  int slots_per_superframe = 16;   ///< n
  double slot_s = 1e-3;            ///< t_slot, seconds
  double report_period_s = 30.0;   ///< data-generation period (cycle length)
  int packet_bytes = 50;           ///< mu
  double bitrate_bps = 250e3;      ///< b

  /// Superframe duration t_SF = n * t_slot.
  [[nodiscard]] double superframe_s() const { return slots_per_superframe * slot_s; }

  /// On-air time of one packet transmission, mu / b (seconds).
  [[nodiscard]] double packet_airtime_s() const { return packet_bytes * 8.0 / bitrate_bps; }

  /// Slots occupied by one packet (>= 1); with the paper's parameters a
  /// 50-byte packet at 250 kbps spans two 1-ms slots.
  [[nodiscard]] int slots_per_packet() const {
    return static_cast<int>(std::ceil(packet_airtime_s() / slot_s));
  }

  /// Validates the configuration; throws std::invalid_argument on nonsense.
  void validate() const {
    if (slots_per_superframe <= 0) throw std::invalid_argument("TDMA: slots must be > 0");
    if (slot_s <= 0) throw std::invalid_argument("TDMA: slot duration must be > 0");
    if (report_period_s < superframe_s()) {
      throw std::invalid_argument("TDMA: report period shorter than superframe");
    }
    if (packet_bytes <= 0) throw std::invalid_argument("TDMA: packet length must be > 0");
    if (bitrate_bps <= 0) throw std::invalid_argument("TDMA: bitrate must be > 0");
  }
};

}  // namespace wnet::radio
