#include "radio/csma.h"

#include <algorithm>
#include <stdexcept>

namespace wnet::radio {

double charge_per_cycle_csma_mas(const DeviceCurrents& c, const NodeTraffic& t,
                                 const TdmaConfig& timing, const CsmaConfig& csma) {
  if (t.tx_packets < 0 || t.rx_packets < 0) {
    throw std::invalid_argument("charge_per_cycle_csma_mas: negative packet count");
  }
  if (t.mean_tx_etx < 1.0) {
    throw std::invalid_argument("charge_per_cycle_csma_mas: ETX must be >= 1");
  }
  if (csma.idle_listen_duty < 0.0 || csma.idle_listen_duty > 1.0) {
    throw std::invalid_argument("charge_per_cycle_csma_mas: duty must be in [0, 1]");
  }
  const double airtime = timing.packet_airtime_s();
  const double backoff_s = csma.mean_backoff_slots * timing.slot_s;
  // Every transmission attempt pays carrier sense (receiver on) + airtime.
  const double e_tx = t.tx_packets * t.mean_tx_etx * (c.tx_ma * airtime + c.rx_ma * backoff_s);
  const double e_rx = t.rx_packets * t.mean_tx_etx * c.rx_ma * airtime;
  const int k = (t.tx_packets + t.rx_packets) * timing.slots_per_packet();
  const double awake_s = k * timing.slot_s;
  const double e_active = c.active_ma * awake_s;
  // Idle time splits into duty-cycled listening and true sleep.
  const double idle_s = std::max(0.0, timing.report_period_s - awake_s);
  const double e_idle = c.rx_ma * csma.idle_listen_duty * idle_s +
                        c.sleep_ma * (1.0 - csma.idle_listen_duty) * idle_s;
  return e_tx + e_rx + e_active + e_idle;
}

double lifetime_years_csma(double battery_mah, const DeviceCurrents& c, const NodeTraffic& t,
                           const TdmaConfig& timing, const CsmaConfig& csma) {
  if (battery_mah <= 0) throw std::invalid_argument("lifetime_years_csma: battery must be > 0");
  const double q = charge_per_cycle_csma_mas(c, t, timing, csma);
  if (q <= 0) return 0.0;
  return (battery_mah * 3600.0 / q) * timing.report_period_s / kSecondsPerYear;
}

}  // namespace wnet::radio
