#pragma once

#include "radio/energy.h"
#include "radio/tdma.h"

namespace wnet::radio {

/// Contention-based (CSMA, low-power-listening) MAC energy parameters —
/// the paper notes its energy constraints extend to "contention-based
/// protocols"; this is that extension. Unlike TDMA, senders pay a
/// clear-channel-assessment/backoff listen before each transmission and
/// idle nodes duty-cycle their receiver instead of sleeping outright.
struct CsmaConfig {
  /// Fraction of the reporting period spent idle-listening (LPL duty).
  double idle_listen_duty = 0.01;
  /// Mean carrier-sense + backoff time charged per transmission attempt,
  /// in slot units of the base timing config.
  double mean_backoff_slots = 2.0;
};

/// Charge per reporting cycle under CSMA, in mA*s. `timing` supplies the
/// shared timing quantities (packet airtime, slot length, period).
[[nodiscard]] double charge_per_cycle_csma_mas(const DeviceCurrents& c, const NodeTraffic& t,
                                               const TdmaConfig& timing,
                                               const CsmaConfig& csma);

/// Battery lifetime in years under CSMA.
[[nodiscard]] double lifetime_years_csma(double battery_mah, const DeviceCurrents& c,
                                         const NodeTraffic& t, const TdmaConfig& timing,
                                         const CsmaConfig& csma);

}  // namespace wnet::radio
