#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "milp/expr.h"

namespace wnet::milp {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

enum class VarType { kContinuous, kInteger, kBinary };

enum class Sense { kLe, kGe, kEq };

/// Variable metadata stored by the model.
struct VarData {
  std::string name;
  VarType type = VarType::kContinuous;
  double lb = 0.0;
  double ub = kInf;
  /// Branch-and-bound picks fractional variables from the highest priority
  /// class first (0 = default). Encoders use this to branch on structural
  /// decisions (path selectors) before sizing details.
  int branch_priority = 0;
};

/// A linear constraint  expr (<=, >=, =) rhs. The expression's constant is
/// folded into the rhs at construction.
struct Constraint {
  std::string name;
  LinExpr expr;  ///< constant already folded into rhs (constant() == 0)
  Sense sense = Sense::kLe;
  double rhs = 0.0;
};

/// Declarative MILP container: the encoders build one of these, the solver
/// consumes it. Plays the role CPLEX's model object plays in the paper's
/// toolchain.
class Model {
 public:
  /// Adds a variable and returns its handle. Binary variables get bounds
  /// clipped to [0,1].
  Var add_var(const std::string& name, VarType type, double lb, double ub);

  Var add_continuous(const std::string& name, double lb, double ub) {
    return add_var(name, VarType::kContinuous, lb, ub);
  }
  Var add_binary(const std::string& name) { return add_var(name, VarType::kBinary, 0, 1); }
  Var add_integer(const std::string& name, double lb, double ub) {
    return add_var(name, VarType::kInteger, lb, ub);
  }

  /// Adds `expr sense rhs`; returns the constraint index.
  int add_constr(LinExpr expr, Sense sense, double rhs, const std::string& name = "");

  /// Convenience forms.
  int add_le(LinExpr e, double rhs, const std::string& name = "") {
    return add_constr(std::move(e), Sense::kLe, rhs, name);
  }
  int add_ge(LinExpr e, double rhs, const std::string& name = "") {
    return add_constr(std::move(e), Sense::kGe, rhs, name);
  }
  int add_eq(LinExpr e, double rhs, const std::string& name = "") {
    return add_constr(std::move(e), Sense::kEq, rhs, name);
  }

  /// Sets the (minimization) objective.
  void minimize(LinExpr objective) { objective_ = std::move(objective); }

  [[nodiscard]] const LinExpr& objective() const { return objective_; }
  [[nodiscard]] int num_vars() const { return static_cast<int>(vars_.size()); }
  [[nodiscard]] int num_constrs() const { return static_cast<int>(constrs_.size()); }
  [[nodiscard]] const VarData& var(Var v) const { return vars_.at(static_cast<size_t>(v.id)); }
  [[nodiscard]] const std::vector<VarData>& vars() const { return vars_; }
  [[nodiscard]] const std::vector<Constraint>& constrs() const { return constrs_; }

  /// Number of integer-constrained (integer or binary) variables.
  [[nodiscard]] int num_integer_vars() const;

  /// Total number of nonzero coefficients across all constraints.
  [[nodiscard]] size_t num_nonzeros() const;

  /// Appends `delta`'s terms to an existing constraint's left-hand side,
  /// folding its constant into the rhs. Incremental encoders use this to
  /// widen a row (e.g. a selector disjunction) when new candidates arrive;
  /// terms on variables already present are merged additively.
  void add_terms_to_constr(int idx, const LinExpr& delta);

  /// Rewrites a constraint's right-hand side in place.
  void set_constr_rhs(int idx, double rhs);

  /// Tightens a variable's bounds in place (used by presolve and tests).
  void set_bounds(Var v, double lb, double ub);

  /// Sets the branching priority class of a variable.
  void set_branch_priority(Var v, int priority) {
    vars_.at(static_cast<size_t>(v.id)).branch_priority = priority;
  }

  /// Checks a full assignment against every constraint, bounds, and
  /// integrality; returns true within tolerance `tol`. Used by the solver's
  /// incumbent acceptance and by tests as ground truth.
  [[nodiscard]] bool is_feasible(const std::vector<double>& x, double tol = 1e-6) const;

  /// Human-readable dump in an LP-like format (small models / debugging).
  [[nodiscard]] std::string to_lp_string() const;

 private:
  std::vector<VarData> vars_;
  std::vector<Constraint> constrs_;
  LinExpr objective_;
};

}  // namespace wnet::milp
