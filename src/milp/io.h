#pragma once

#include <string>

#include "milp/model.h"

namespace wnet::milp {

/// Serializes a model in fixed MPS format (the lingua franca of MILP
/// solvers), so encodings produced by this repo can be cross-checked with
/// any external solver. Variable/row names are sanitized to MPS's 8-plus
/// character conventions via deterministic identifiers (x<j>, c<i>).
[[nodiscard]] std::string to_mps_string(const Model& model, const std::string& name = "WNETDSE");

/// Writes the MPS form to `path`; throws std::runtime_error on I/O failure.
void write_mps_file(const Model& model, const std::string& path,
                    const std::string& name = "WNETDSE");

/// Writes the (human-readable) LP form produced by Model::to_lp_string().
void write_lp_file(const Model& model, const std::string& path);

}  // namespace wnet::milp
