#pragma once

#include "milp/model.h"

namespace wnet::milp {

/// Standard MILP linearization helpers ("standard encoding techniques which
/// we omit for brevity" in the paper, Sec. 2). Each returns the auxiliary
/// variable that equals the nonlinear term under the added constraints.

/// z = x * y for binary x, y:
///   z <= x,  z <= y,  z >= x + y - 1,  z binary.
[[nodiscard]] Var product_binary_binary(Model& m, Var x, Var y, const std::string& name);

/// w = b * c for binary b and continuous c with finite bounds [lo, hi]:
///   lo*b <= w <= hi*b,   c - hi*(1-b) <= w <= c - lo*(1-b).
/// The big-M values are the tightest available (the variable's own bounds).
[[nodiscard]] Var product_binary_continuous(Model& m, Var b, Var c, const std::string& name);

/// Indicator-style implication  b = 1  =>  expr <= rhs,  via
///   expr <= rhs + M (1 - b)
/// where M is computed from the expression's bounds (tight big-M). Throws
/// if any participating variable is unbounded in the needed direction.
void imply_le(Model& m, Var b, const LinExpr& expr, double rhs, const std::string& name);

/// b = 1  =>  expr >= rhs, analogously.
void imply_ge(Model& m, Var b, const LinExpr& expr, double rhs, const std::string& name);

/// Upper bound of `expr` over the variable box (sum of best-case terms).
/// Infinite if any needed bound is infinite.
[[nodiscard]] double expr_upper_bound(const Model& m, const LinExpr& expr);

/// Lower bound of `expr` over the variable box.
[[nodiscard]] double expr_lower_bound(const Model& m, const LinExpr& expr);

/// r = AND(b1, b2) for binaries — alias of product_binary_binary, named for
/// readability at call sites encoding constraint (4a) of the paper.
[[nodiscard]] inline Var logical_and(Model& m, Var b1, Var b2, const std::string& name) {
  return product_binary_binary(m, b1, b2, name);
}

}  // namespace wnet::milp
