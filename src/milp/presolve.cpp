#include "milp/presolve.h"

#include <cmath>
#include <cstdint>
#include <deque>

#include "util/simd/simd.h"

namespace wnet::milp {

RowSystem::RowSystem(const Model& m) {
  const int n = m.num_vars();
  is_int.assign(static_cast<size_t>(n), 0);
  for (int j = 0; j < n; ++j) {
    is_int[static_cast<size_t>(j)] =
        m.vars()[static_cast<size_t>(j)].type != VarType::kContinuous ? 1 : 0;
  }
  var_rows.assign(static_cast<size_t>(n), {});
  row_start.push_back(0);
  for (int r = 0; r < m.num_constrs(); ++r) {
    const Constraint& cn = m.constrs()[static_cast<size_t>(r)];
    for (const auto& [v, a] : cn.expr.terms()) {
      if (a == 0.0) continue;
      col.push_back(v.id);
      coef.push_back(a);
      var_rows[static_cast<size_t>(v.id)].push_back(r);
    }
    row_start.push_back(static_cast<int>(col.size()));
    sense.push_back(cn.sense);
    rhs.push_back(cn.rhs);
  }
}

namespace {

/// Tightens the bounds of one row's variables given `row sense rhs`, using
/// the activity of the row excluding each variable in turn. Bounds live in
/// the caller's arrays. Returns the number of bounds changed, or -1 on
/// proven infeasibility; tightened variable ids are appended to `changed`
/// when non-null.
int tighten_row(const RowSystem& rs, int row, std::vector<double>& lb, std::vector<double>& ub,
                double tol, bool integers_only, std::vector<int>* changed) {
  const int begin = rs.row_start[static_cast<size_t>(row)];
  const int end = rs.row_start[static_cast<size_t>(row) + 1];
  const Sense sense = rs.sense[static_cast<size_t>(row)];
  const double rhs = rs.rhs[static_cast<size_t>(row)];

  // Row activity bounds including every term, as the SIMD min/max kernel:
  // with lb <= ub and a != 0 (zero coefficients are dropped at RowSystem
  // construction), min(a*lb, a*ub) equals the branchy a >= 0 selection
  // bit-for-bit, and the gathered 4-lane accumulation is identical across
  // dispatch levels.
  static_assert(sizeof(int) == sizeof(int32_t));
  double act_lo = 0.0;
  double act_hi = 0.0;
  util::simd::kernels().row_activity(
      reinterpret_cast<const int32_t*>(rs.col.data()) + begin, rs.coef.data() + begin,
      end - begin, lb.data(), ub.data(), &act_lo, &act_hi);

  // Quick infeasibility / redundancy screening.
  if (sense != Sense::kGe && act_lo > rhs + tol) return -1;
  if (sense != Sense::kLe && act_hi < rhs - tol) return -1;

  int count = 0;
  for (int t = begin; t < end; ++t) {
    const double a = rs.coef[static_cast<size_t>(t)];
    const int jc = rs.col[static_cast<size_t>(t)];
    const size_t j = static_cast<size_t>(jc);
    if (integers_only && rs.is_int[j] == 0) continue;
    // Activity of the row without this term (subtract its own extreme).
    const double own_lo = a >= 0 ? a * lb[j] : a * ub[j];
    const double own_hi = a >= 0 ? a * ub[j] : a * lb[j];

    double new_lb = lb[j];
    double new_ub = ub[j];

    if (sense != Sense::kGe && std::isfinite(act_lo)) {
      // sum <= rhs: a*x <= rhs - (act_lo - own_lo)
      const double cap = rhs - (act_lo - own_lo);
      if (a > 0) {
        new_ub = std::min(new_ub, cap / a);
      } else {
        new_lb = std::max(new_lb, cap / a);
      }
    }
    if (sense != Sense::kLe && std::isfinite(act_hi)) {
      // sum >= rhs: a*x >= rhs - (act_hi - own_hi)
      const double floor_v = rhs - (act_hi - own_hi);
      if (a > 0) {
        new_lb = std::max(new_lb, floor_v / a);
      } else {
        new_ub = std::min(new_ub, floor_v / a);
      }
    }

    if (rs.is_int[j] != 0) {
      // Round inward, with a small epsilon so 2.9999999 stays 3.
      new_lb = std::ceil(new_lb - 1e-9);
      new_ub = std::floor(new_ub + 1e-9);
    }
    if (new_lb > new_ub + tol) return -1;
    new_ub = std::max(new_ub, new_lb);

    if (new_lb > lb[j] + tol || new_ub < ub[j] - tol) {
      lb[j] = std::max(new_lb, lb[j]);
      ub[j] = std::min(new_ub, ub[j]);
      // Keep the running activities consistent with the tightened bounds so
      // later terms of this row see the update (skipped when the old
      // extreme was infinite: the delta would be ill-defined, and the
      // stale — merely conservative — activity is still valid).
      if (std::isfinite(own_lo)) act_lo += (a >= 0 ? a * lb[j] : a * ub[j]) - own_lo;
      if (std::isfinite(own_hi)) act_hi += (a >= 0 ? a * ub[j] : a * lb[j]) - own_hi;
      if (changed != nullptr) changed->push_back(jc);
      ++count;
    }
  }
  return count;
}

}  // namespace

PresolveResult presolve(Model& m, int max_rounds, double tol) {
  PresolveResult out;
  const int n = m.num_vars();
  const RowSystem rs(m);
  std::vector<double> lb(static_cast<size_t>(n));
  std::vector<double> ub(static_cast<size_t>(n));
  for (int j = 0; j < n; ++j) {
    lb[static_cast<size_t>(j)] = m.vars()[static_cast<size_t>(j)].lb;
    ub[static_cast<size_t>(j)] = m.vars()[static_cast<size_t>(j)].ub;
  }

  for (int round = 0; round < max_rounds; ++round) {
    ++out.rounds;
    int changed = 0;
    for (int r = 0; r < rs.num_rows(); ++r) {
      const int c = tighten_row(rs, r, lb, ub, tol, /*integers_only=*/false, nullptr);
      if (c < 0) {
        out.proven_infeasible = true;
        return out;
      }
      changed += c;
    }
    out.bounds_tightened += changed;
    if (changed == 0) break;
  }

  for (int j = 0; j < n; ++j) {
    const VarData& vd = m.vars()[static_cast<size_t>(j)];
    if (lb[static_cast<size_t>(j)] > vd.lb || ub[static_cast<size_t>(j)] < vd.ub) {
      m.set_bounds(Var{j}, lb[static_cast<size_t>(j)], ub[static_cast<size_t>(j)]);
    }
  }
  return out;
}

PropagateResult propagate_bounds(const RowSystem& rs, std::vector<double>& lb,
                                 std::vector<double>& ub, const std::vector<int>& seed_cols,
                                 const PropagateOptions& opts) {
  PropagateResult out;
  const int rows = rs.num_rows();
  if (rows == 0) return out;

  std::vector<int> visits(static_cast<size_t>(rows), 0);
  std::vector<char> queued(static_cast<size_t>(rows), 0);
  std::deque<int> q;
  const auto enqueue = [&](int r) {
    if (queued[static_cast<size_t>(r)] == 0) {
      queued[static_cast<size_t>(r)] = 1;
      q.push_back(r);
    }
  };
  if (seed_cols.empty()) {
    for (int r = 0; r < rows; ++r) enqueue(r);
  } else {
    for (int c : seed_cols) {
      for (int r : rs.var_rows[static_cast<size_t>(c)]) enqueue(r);
    }
  }

  std::vector<int> changed;
  while (!q.empty()) {
    const int r = q.front();
    q.pop_front();
    queued[static_cast<size_t>(r)] = 0;
    if (visits[static_cast<size_t>(r)] >= opts.max_sweeps) continue;
    ++visits[static_cast<size_t>(r)];

    changed.clear();
    const int c = tighten_row(rs, r, lb, ub, opts.tol, opts.integers_only, &changed);
    if (c < 0) {
      out.infeasible = true;
      return out;
    }
    out.tightened += c;
    for (int cc : changed) {
      for (int rr : rs.var_rows[static_cast<size_t>(cc)]) enqueue(rr);
    }
  }
  return out;
}

}  // namespace wnet::milp
