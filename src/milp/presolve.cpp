#include "milp/presolve.h"

#include <cmath>

#include "milp/linearize.h"

namespace wnet::milp {

namespace {

/// Tightens x's bounds given `expr sense rhs`, using the activity of the
/// row excluding x. Returns the number of bounds changed, or -1 on proven
/// infeasibility.
int tighten_from_row(Model& m, const Constraint& cn, double tol) {
  // Row activity bounds including every term.
  const double act_lo = expr_lower_bound(m, cn.expr);
  const double act_hi = expr_upper_bound(m, cn.expr);

  // Quick infeasibility / redundancy screening.
  if (cn.sense != Sense::kGe && act_lo > cn.rhs + tol) return -1;
  if (cn.sense != Sense::kLe && act_hi < cn.rhs - tol) return -1;

  int changed = 0;
  for (const auto& [v, a] : cn.expr.terms()) {
    const VarData& vd = m.var(v);
    // Activity of the row without this term (subtract its own extreme).
    const double own_lo = a >= 0 ? a * vd.lb : a * vd.ub;
    const double own_hi = a >= 0 ? a * vd.ub : a * vd.lb;

    double new_lb = vd.lb;
    double new_ub = vd.ub;

    if (cn.sense != Sense::kGe && std::isfinite(act_lo)) {
      // sum <= rhs: a*x <= rhs - (act_lo - own_lo)
      const double rest_lo = act_lo - own_lo;
      const double cap = cn.rhs - rest_lo;
      if (a > 0) {
        new_ub = std::min(new_ub, cap / a);
      } else if (a < 0) {
        new_lb = std::max(new_lb, cap / a);
      }
    }
    if (cn.sense != Sense::kLe && std::isfinite(act_hi)) {
      // sum >= rhs: a*x >= rhs - (act_hi - own_hi)
      const double rest_hi = act_hi - own_hi;
      const double floor_v = cn.rhs - rest_hi;
      if (a > 0) {
        new_lb = std::max(new_lb, floor_v / a);
      } else if (a < 0) {
        new_ub = std::min(new_ub, floor_v / a);
      }
    }

    if (vd.type != VarType::kContinuous) {
      // Round inward, with a small epsilon so 2.9999999 stays 3.
      new_lb = std::ceil(new_lb - 1e-9);
      new_ub = std::floor(new_ub + 1e-9);
    }
    if (new_lb > new_ub + tol) return -1;
    new_ub = std::max(new_ub, new_lb);

    if (new_lb > vd.lb + tol || new_ub < vd.ub - tol) {
      m.set_bounds(v, std::max(new_lb, vd.lb), std::min(new_ub, vd.ub));
      ++changed;
    }
  }
  return changed;
}

}  // namespace

PresolveResult presolve(Model& m, int max_rounds, double tol) {
  PresolveResult out;
  for (int round = 0; round < max_rounds; ++round) {
    ++out.rounds;
    int changed = 0;
    for (const Constraint& cn : m.constrs()) {
      const int c = tighten_from_row(m, cn, tol);
      if (c < 0) {
        out.proven_infeasible = true;
        return out;
      }
      changed += c;
    }
    out.bounds_tightened += changed;
    if (changed == 0) break;
  }
  return out;
}

}  // namespace wnet::milp
