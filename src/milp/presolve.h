#pragma once

#include "milp/model.h"

namespace wnet::milp {

struct PresolveResult {
  bool proven_infeasible = false;
  int bounds_tightened = 0;
  int rounds = 0;
};

/// Conservative presolve: iterated activity-based bound tightening.
///
/// Only variable bounds are modified (no rows or columns are removed), so
/// solutions of the presolved model are solutions of the original and no
/// mapping-back step is needed. Integer variable bounds are rounded inward.
/// Tighter bounds both shrink the B&B tree and strengthen every big-M
/// linearization built from bounds downstream.
[[nodiscard]] PresolveResult presolve(Model& m, int max_rounds = 5, double tol = 1e-9);

}  // namespace wnet::milp
