#pragma once

#include <vector>

#include "milp/model.h"

namespace wnet::milp {

struct PresolveResult {
  bool proven_infeasible = false;
  int bounds_tightened = 0;
  int rounds = 0;
};

/// Conservative presolve: iterated activity-based bound tightening.
///
/// Only variable bounds are modified (no rows or columns are removed), so
/// solutions of the presolved model are solutions of the original and no
/// mapping-back step is needed. Integer variable bounds are rounded inward.
/// Tighter bounds both shrink the B&B tree and strengthen every big-M
/// linearization built from bounds downstream.
[[nodiscard]] PresolveResult presolve(Model& m, int max_rounds = 5, double tol = 1e-9);

struct PropagateOptions {
  /// Work budget: each row may be re-processed at most this many times.
  int max_sweeps = 2;
  /// Tighten only integer/binary variable bounds (activities are still
  /// computed over every variable). This is what branch-and-bound wants at
  /// a node: continuous bounds stay put so the warm basis stays meaningful.
  bool integers_only = false;
  double tol = 1e-9;
};

struct PropagateResult {
  bool infeasible = false;  ///< some row's activity cannot meet its rhs
  int tightened = 0;        ///< number of bound changes applied
};

/// Flattened (CSR) snapshot of a model's rows plus the transpose incidence,
/// built once per solve. Per-node propagation runs thousands of row sweeps;
/// iterating LinExpr's std::map there is an order of magnitude too slow, so
/// propagation reads these contiguous arrays instead.
struct RowSystem {
  explicit RowSystem(const Model& m);

  std::vector<int> row_start;  ///< size rows+1, offsets into col/coef
  std::vector<int> col;
  std::vector<double> coef;
  std::vector<Sense> sense;   ///< per row
  std::vector<double> rhs;    ///< per row
  std::vector<char> is_int;   ///< per variable: integer/binary?
  std::vector<std::vector<int>> var_rows;  ///< variable -> incident row indices

  [[nodiscard]] int num_rows() const { return static_cast<int>(rhs.size()); }
};

/// Node-level activity-based bound propagation over explicit bound arrays.
///
/// Unlike presolve(), no model is touched: `lb`/`ub` (indexed by variable
/// id, typically a branch-and-bound node's current local bounds) are
/// tightened in place. Propagation is worklist-driven: only the rows
/// incident to `seed_cols` are processed, plus rows woken transitively by
/// new tightenings — an empty seed list means one full sweep first.
/// Deterministic: rows are processed in FIFO order seeded in ascending
/// index order.
[[nodiscard]] PropagateResult propagate_bounds(const RowSystem& rs, std::vector<double>& lb,
                                               std::vector<double>& ub,
                                               const std::vector<int>& seed_cols,
                                               const PropagateOptions& opts = {});

}  // namespace wnet::milp
