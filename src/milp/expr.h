#pragma once

#include <cstddef>
#include <map>
#include <vector>

namespace wnet::milp {

/// Handle to a model variable (index into the model's variable table).
struct Var {
  int id = -1;
  [[nodiscard]] bool valid() const { return id >= 0; }
  friend bool operator==(Var a, Var b) { return a.id == b.id; }
  friend bool operator<(Var a, Var b) { return a.id < b.id; }
};

/// A sparse linear expression sum_i coef_i * var_i + constant. Terms with
/// the same variable are merged; building is O(log n) per term via the map.
class LinExpr {
 public:
  LinExpr() = default;
  /*implicit*/ LinExpr(double constant) : constant_(constant) {}  // NOLINT
  /*implicit*/ LinExpr(Var v) { terms_[v] = 1.0; }                // NOLINT

  LinExpr& operator+=(const LinExpr& o);
  LinExpr& operator-=(const LinExpr& o);
  LinExpr& operator*=(double s);

  /// Adds coef * v.
  void add_term(Var v, double coef);

  [[nodiscard]] double constant() const { return constant_; }
  [[nodiscard]] const std::map<Var, double>& terms() const { return terms_; }
  [[nodiscard]] size_t size() const { return terms_.size(); }

  /// Evaluates the expression for a full assignment (indexed by var id).
  [[nodiscard]] double evaluate(const std::vector<double>& values) const;

  friend LinExpr operator+(LinExpr a, const LinExpr& b) { return a += b; }
  friend LinExpr operator-(LinExpr a, const LinExpr& b) { return a -= b; }
  friend LinExpr operator*(double s, LinExpr e) { return e *= s; }
  friend LinExpr operator*(LinExpr e, double s) { return e *= s; }
  friend LinExpr operator-(LinExpr e) { return e *= -1.0; }

 private:
  std::map<Var, double> terms_;
  double constant_ = 0.0;
};

}  // namespace wnet::milp
