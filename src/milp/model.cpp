#include "milp/model.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace wnet::milp {

Var Model::add_var(const std::string& name, VarType type, double lb, double ub) {
  if (lb > ub) throw std::invalid_argument("Model::add_var: lb > ub for " + name);
  VarData d;
  d.name = name;
  d.type = type;
  if (type == VarType::kBinary) {
    d.lb = std::max(lb, 0.0);
    d.ub = std::min(ub, 1.0);
  } else {
    d.lb = lb;
    d.ub = ub;
  }
  vars_.push_back(std::move(d));
  return Var{static_cast<int>(vars_.size()) - 1};
}

int Model::add_constr(LinExpr expr, Sense sense, double rhs, const std::string& name) {
  for (const auto& [v, c] : expr.terms()) {
    if (v.id >= num_vars()) throw std::out_of_range("Model::add_constr: unknown variable");
    if (!std::isfinite(c)) throw std::invalid_argument("Model::add_constr: non-finite coef");
  }
  Constraint cn;
  cn.name = name;
  cn.rhs = rhs - expr.constant();
  cn.expr = std::move(expr);
  cn.expr -= cn.expr.constant();  // fold the constant away
  cn.sense = sense;
  constrs_.push_back(std::move(cn));
  return static_cast<int>(constrs_.size()) - 1;
}

int Model::num_integer_vars() const {
  int n = 0;
  for (const auto& v : vars_) {
    if (v.type != VarType::kContinuous) ++n;
  }
  return n;
}

size_t Model::num_nonzeros() const {
  size_t n = 0;
  for (const auto& c : constrs_) n += c.expr.size();
  return n;
}

void Model::add_terms_to_constr(int idx, const LinExpr& delta) {
  auto& cn = constrs_.at(static_cast<size_t>(idx));
  for (const auto& [v, c] : delta.terms()) {
    if (v.id >= num_vars()) throw std::out_of_range("Model::add_terms_to_constr: unknown variable");
    if (!std::isfinite(c)) throw std::invalid_argument("Model::add_terms_to_constr: non-finite coef");
    cn.expr.add_term(v, c);
  }
  cn.rhs -= delta.constant();
}

void Model::set_constr_rhs(int idx, double rhs) {
  constrs_.at(static_cast<size_t>(idx)).rhs = rhs;
}

void Model::set_bounds(Var v, double lb, double ub) {
  if (lb > ub) throw std::invalid_argument("Model::set_bounds: lb > ub");
  auto& d = vars_.at(static_cast<size_t>(v.id));
  d.lb = lb;
  d.ub = ub;
}

bool Model::is_feasible(const std::vector<double>& x, double tol) const {
  if (x.size() != vars_.size()) return false;
  for (size_t i = 0; i < vars_.size(); ++i) {
    const auto& v = vars_[i];
    if (x[i] < v.lb - tol || x[i] > v.ub + tol) return false;
    if (v.type != VarType::kContinuous && std::abs(x[i] - std::round(x[i])) > tol) return false;
  }
  for (const auto& c : constrs_) {
    const double lhs = c.expr.evaluate(x);
    switch (c.sense) {
      case Sense::kLe:
        if (lhs > c.rhs + tol) return false;
        break;
      case Sense::kGe:
        if (lhs < c.rhs - tol) return false;
        break;
      case Sense::kEq:
        if (std::abs(lhs - c.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

std::string Model::to_lp_string() const {
  std::ostringstream os;
  os << "Minimize\n obj:";
  for (const auto& [v, c] : objective_.terms()) {
    os << (c >= 0 ? " +" : " ") << c << ' ' << vars_[static_cast<size_t>(v.id)].name;
  }
  if (objective_.constant() != 0.0) os << " + " << objective_.constant();
  os << "\nSubject To\n";
  for (size_t i = 0; i < constrs_.size(); ++i) {
    const auto& cn = constrs_[i];
    os << ' ' << (cn.name.empty() ? "c" + std::to_string(i) : cn.name) << ':';
    for (const auto& [v, c] : cn.expr.terms()) {
      os << (c >= 0 ? " +" : " ") << c << ' ' << vars_[static_cast<size_t>(v.id)].name;
    }
    switch (cn.sense) {
      case Sense::kLe: os << " <= "; break;
      case Sense::kGe: os << " >= "; break;
      case Sense::kEq: os << " = "; break;
    }
    os << cn.rhs << '\n';
  }
  os << "Bounds\n";
  for (const auto& v : vars_) {
    os << ' ' << v.lb << " <= " << v.name << " <= " << v.ub << '\n';
  }
  os << "Integers\n";
  for (const auto& v : vars_) {
    if (v.type != VarType::kContinuous) os << ' ' << v.name;
  }
  os << "\nEnd\n";
  return os.str();
}

}  // namespace wnet::milp
