#include "milp/solver.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <sstream>
#include <vector>

#include "milp/presolve.h"
#include "milp/tol.h"
#include "util/obs/json.h"
#include "util/obs/trace.h"
#include "util/simd/simd.h"
#include "util/stopwatch.h"

namespace wnet::milp {

namespace {

using simplex::Basis;
using simplex::DualSimplex;
using simplex::LpResult;
using simplex::LpStatus;
using simplex::StandardLp;

/// One bound tightening on the path from the root to a node; chained via
/// shared parents so sibling subtrees share prefixes.
struct BoundChange {
  int col;
  double lb;
  double ub;
  std::shared_ptr<const BoundChange> parent;
};

struct Node {
  std::shared_ptr<const BoundChange> chain;
  Basis warm_basis;      ///< parent's final basis
  double parent_bound;   ///< LP bound of the parent (child bound >= this)
  int depth = 0;
  /// Branching that created this node, for pseudocost learning: once the
  /// node's own LP solves, (LP obj - parent_bound) / branch_frac is one
  /// observation of the branched variable's per-unit degradation.
  int branch_col = -1;
  bool branch_up = false;
  double branch_frac = 0.0;  ///< fractional distance to the branched bound
};

/// Per-variable, per-direction objective-degradation history.
struct Pseudocost {
  double sum = 0.0;  ///< sum of per-unit degradations
  long n = 0;        ///< observations
};

using util::exec::TerminationReason;

class BranchAndBound {
 public:
  BranchAndBound(const Model& model, const SolveOptions& opts)
      : model_(&model),
        opts_(opts),
        lp_(model),
        deadline_(opts.exec.deadline.tightened(opts.time_limit_s)) {
    // The dual simplex polls the same request token on its iteration
    // cadence, so cancellation reaches even a single long node LP.
    opts_.lp.cancel = opts_.exec.token;
    col_to_k_.assign(static_cast<size_t>(model.num_vars()), -1);
    for (int j = 0; j < model.num_vars(); ++j) {
      if (model.vars()[static_cast<size_t>(j)].type != VarType::kContinuous) {
        col_to_k_[static_cast<size_t>(j)] = static_cast<int>(int_cols_.size());
        int_cols_.push_back(j);
      }
    }
    root_lb_.reserve(int_cols_.size());
    root_ub_.reserve(int_cols_.size());
    for (int j : int_cols_) {
      root_lb_.push_back(lp_.lb()[static_cast<size_t>(j)]);
      root_ub_.push_back(lp_.ub()[static_cast<size_t>(j)]);
    }
    pc_up_.assign(int_cols_.size(), Pseudocost{});
    pc_down_.assign(int_cols_.size(), Pseudocost{});
    if (opts_.node_propagation && !int_cols_.empty()) {
      rows_ = std::make_unique<RowSystem>(model);
    }
    // External pool when supplied (shared across solves / audited by the
    // cut-safety oracle), else a private one. Stats snapshot lets finalize
    // report per-solve deltas even on a pre-populated shared pool.
    pool_ = opts_.cuts.shared_pool != nullptr ? opts_.cuts.shared_pool : &local_pool_;
    pool_stats_base_ = pool_->stats();
  }

  MipResult run();

 private:
  /// Resets integer bounds to root values, then applies a node's chain
  /// (leaf-most change per column wins).
  void apply_chain(const std::shared_ptr<const BoundChange>& chain);

  /// Activity-based bound propagation at the current node: tightens the
  /// LP's integer bounds from the rows woken by the chain's columns (the
  /// whole model when the chain is empty, i.e. at the root). Returns false
  /// when propagation proves the node infeasible.
  bool propagate_node(const std::shared_ptr<const BoundChange>& chain);

  /// Solves the current LP warm-started from `basis`; falls back to a cold
  /// solve on trouble. Updates stats.
  LpResult solve_lp(const Basis* basis);

  /// Branching variable for the LP point `x`, or -1 if integral. Highest
  /// priority class first; within the class, reliability-blended pseudocost
  /// score (pure fractionality until any branching history exists), with a
  /// deterministic lowest-index tie-break.
  [[nodiscard]] int pick_branch_var(const std::vector<double>& x) const;

  /// True when both directions of the variable's pseudocost history meet
  /// the reliability threshold (branching-mix telemetry).
  [[nodiscard]] bool pseudocost_reliable(int col) const {
    const int k = col_to_k_[static_cast<size_t>(col)];
    return pc_up_[static_cast<size_t>(k)].n >= opts_.pseudocost_reliability &&
           pc_down_[static_cast<size_t>(k)].n >= opts_.pseudocost_reliability;
  }

  /// Records one pseudocost observation from a solved child LP.
  void update_pseudocosts(const Node& node, double child_obj);

  /// Tries to accept `x` (column space) as incumbent; rounds integer vars
  /// and verifies against the Model — then against every separator (lazy
  /// rows are real constraints the Model does not carry). Returns true if
  /// the incumbent improved.
  bool try_incumbent(const std::vector<double>& x);

  /// One separation round on `x`: runs every separator into the pool, then
  /// appends the most-violated pooled cuts to the LP. Returns the number of
  /// rows appended; any growth drops the engine (stale dims/LU) — warm
  /// bases recorded against the old row count are extended in solve_lp.
  int separate(const std::vector<double>& x, int depth, bool integral, double lp_obj);

  /// Diving heuristic: repeatedly fix the least-fractional integer variable
  /// to its rounded value and re-solve. Starts from the current LP state.
  void dive(const std::shared_ptr<const BoundChange>& chain, const Basis& basis,
            const std::vector<double>& x0);

  /// Effective primal bound for pruning: the incumbent objective or, before
  /// one exists, the caller-supplied cutoff (whichever is smaller).
  [[nodiscard]] double prune_bound() const {
    return std::min(have_incumbent_ ? incumbent_obj_ : kInf, opts_.cutoff);
  }

  /// Root reduced-cost fixing: a nonbasic binary whose reduced cost alone
  /// pushes past the incumbent (or the caller's cutoff) can be fixed at its
  /// root bound globally.
  void apply_reduced_cost_fixing() {
    if (root_dj_.empty() || prune_bound() >= kInf) return;
    const double cutoff = prune_bound() - tol::kObjImprove;
    for (size_t k = 0; k < int_cols_.size(); ++k) {
      const int j = int_cols_[k];
      if (root_lb_[k] >= root_ub_[k]) continue;  // already fixed
      const double d = root_dj_[static_cast<size_t>(j)];
      const double v = root_x_[static_cast<size_t>(j)];
      if (d > tol::kReducedCost && v <= root_lb_[k] + tol::kAtBound &&
          root_bound_ + d > cutoff) {
        root_ub_[k] = root_lb_[k];
        ++stats_.rc_fixed;
      } else if (d < -tol::kReducedCost && v >= root_ub_[k] - tol::kAtBound &&
                 root_bound_ - d > cutoff) {
        root_lb_[k] = root_ub_[k];
        ++stats_.rc_fixed;
      }
    }
  }

  /// Bound-feedback hook driver: forwards monotonic improvements of the
  /// proven global lower bound to opts_.on_bound_improved. Serial-spine
  /// only; the published sequence is deterministic (no wall time involved).
  void publish_bound(double b) {
    if (!opts_.on_bound_improved) return;
    if (b > published_bound_ + tol::kObjImprove && b > -kInf && b < kInf) {
      published_bound_ = b;
      opts_.on_bound_improved(b);
    }
  }

  [[nodiscard]] bool gap_closed(double lower_bound) const {
    if (!have_incumbent_) return false;
    return incumbent_obj_ - lower_bound <=
           opts_.rel_gap * std::max(1.0, std::abs(incumbent_obj_)) + tol::kGapSlack;
  }

  const Model* model_;
  SolveOptions opts_;
  StandardLp lp_;
  std::vector<int> int_cols_;
  std::vector<int> col_to_k_;  ///< var id -> position in int_cols_ (-1 if continuous)
  std::vector<double> root_lb_;
  std::vector<double> root_ub_;
  std::unique_ptr<RowSystem> rows_;  ///< flattened rows + incidence for propagation
  std::vector<double> prop_lb_, prop_ub_;  ///< per-node propagation scratch

  std::vector<Pseudocost> pc_up_;    ///< by int_cols_ position
  std::vector<Pseudocost> pc_down_;
  Pseudocost pc_all_up_;    ///< tree-wide aggregate, fills in unreliable vars
  Pseudocost pc_all_down_;

  bool have_incumbent_ = false;
  double incumbent_obj_ = kInf;
  std::vector<double> incumbent_x_;  // structural space

  double root_bound_ = -kInf;
  double published_bound_ = -kInf;  ///< last bound sent through the hook
  std::vector<double> root_x_;   // root LP point (column space)
  std::vector<double> root_dj_;  // root reduced costs

  /// Seconds left on the effective deadline, floored at 0 — never the 1s
  /// floor the old per-node set_time_limit applied, which could grant a
  /// full extra second of work per LP after the budget was spent.
  [[nodiscard]] double remaining_s() const {
    return std::max(0.0, deadline_.remaining_s());
  }

  /// Fills the result's common tail: stats snapshot, wall time, and the
  /// anytime certificate (termination reason, bound, gap) every return
  /// path carries.
  void finalize(MipResult& out, TerminationReason why) {
    stats_.termination = why;
    stats_.bound = out.bound;
    stats_.gap = relative_gap(out.has_solution() ? out.objective : kInf, out.bound);
    const CutPoolStats& ps = pool_->stats();
    stats_.cuts_proposed = ps.proposed - pool_stats_base_.proposed;
    stats_.cuts_pooled = ps.pooled - pool_stats_base_.pooled;
    stats_.cuts_duplicate = ps.duplicates - pool_stats_base_.duplicates;
    stats_.cuts_purged = ps.purged - pool_stats_base_.purged;
    stats_.cuts_lp_rows = lp_.num_rows() - model_->num_constrs();
    // Shared-pool dimension fence: pooled rows whose column ids exceed this
    // model's var count were invisible to this solve (see CutPool::fits).
    stats_.cuts_dim_rejected = 0;
    for (size_t i = 0; i < pool_->size(); ++i) {
      if (!pool_->fits(i, model_->num_vars())) ++stats_.cuts_dim_rejected;
    }
    stats_.simd_level = util::simd::level_name(util::simd::active_level());
    out.stats = stats_;
    out.stats.time_s = clock_.seconds();
  }

  SolveStats stats_;
  util::Stopwatch clock_;
  util::exec::Deadline deadline_;  ///< min(exec.deadline, time_limit_s from entry)
  Basis last_basis_;  ///< basis of the most recent LP solve
  std::unique_ptr<DualSimplex> engine_;  ///< persistent: caches the LU

  CutPool local_pool_;
  CutPool* pool_ = nullptr;  ///< opts_.cuts.shared_pool or &local_pool_
  CutPoolStats pool_stats_base_;  ///< pool stats at solve entry (delta reporting)
  std::vector<char> in_lp_;  ///< per pool row: appended to THIS solve's LP
  /// Row budget exhausted: fractional separation stops (anytime degradation)
  /// but the integral lazy gate keeps running — it guards correctness.
  bool separation_budget_out_ = false;
};

void BranchAndBound::apply_chain(const std::shared_ptr<const BoundChange>& chain) {
  for (size_t k = 0; k < int_cols_.size(); ++k) {
    lp_.set_bounds(int_cols_[k], root_lb_[k], root_ub_[k]);
  }
  std::vector<char> seen(static_cast<size_t>(model_->num_vars()), 0);
  for (const BoundChange* bc = chain.get(); bc != nullptr; bc = bc->parent.get()) {
    if (seen[static_cast<size_t>(bc->col)]) continue;  // leaf-most wins
    seen[static_cast<size_t>(bc->col)] = 1;
    lp_.set_bounds(bc->col, bc->lb, bc->ub);
  }
}

bool BranchAndBound::propagate_node(const std::shared_ptr<const BoundChange>& chain) {
  const size_t n = static_cast<size_t>(model_->num_vars());
  prop_lb_.assign(lp_.lb().begin(), lp_.lb().begin() + n);
  prop_ub_.assign(lp_.ub().begin(), lp_.ub().begin() + n);

  std::vector<int> seeds;
  std::vector<char> seen(n, 0);
  for (const BoundChange* bc = chain.get(); bc != nullptr; bc = bc->parent.get()) {
    if (seen[static_cast<size_t>(bc->col)] == 0) {
      seen[static_cast<size_t>(bc->col)] = 1;
      seeds.push_back(bc->col);
    }
  }

  PropagateOptions po;
  po.max_sweeps = opts_.node_propagation_rounds;
  po.integers_only = true;
  const PropagateResult res = propagate_bounds(*rows_, prop_lb_, prop_ub_, seeds, po);
  if (res.infeasible) return false;
  if (res.tightened > 0) {
    stats_.propagation_tightenings += res.tightened;
    for (int j : int_cols_) {
      const size_t sj = static_cast<size_t>(j);
      if (prop_lb_[sj] > lp_.lb()[sj] || prop_ub_[sj] < lp_.ub()[sj]) {
        lp_.set_bounds(j, prop_lb_[sj], prop_ub_[sj]);
      }
    }
  }
  return true;
}

int BranchAndBound::separate(const std::vector<double>& x, int depth, bool integral,
                             double lp_obj) {
  if (opts_.cuts.separators.empty()) return 0;
  // Fractional separation is a strengthening heuristic: a spent deadline,
  // tripped token or exhausted row budget just switches it off. The
  // integral gate must still run — accepting a lazily-infeasible incumbent
  // would be wrong, not merely slow.
  if (!integral &&
      (separation_budget_out_ || deadline_.expired() || opts_.exec.token.cancelled())) {
    return 0;
  }
  util::Stopwatch sw;
  ++stats_.cut_rounds;
  const SeparationContext ctx{x, stats_.nodes, depth, integral, lp_obj};
  for (const SeparationCallback& cb : opts_.cuts.separators) cb(ctx, *pool_);
  in_lp_.resize(pool_->size(), 0);

  std::vector<size_t> picked;
  if (integral) {
    // The gate path must be able to activate ANY violated pooled row not
    // already in THIS solve's LP: with a shared pool, kActive can mean
    // "active in an earlier solve's LP", and purged rows stay readable.
    // Skipping either would reject the integer point without adding the
    // violated row, and the node loop would then drop a region that may
    // still hold feasible points.
    for (size_t i = 0; i < pool_->size(); ++i) {
      if (in_lp_[i] != 0) continue;
      // Dimension fence: a shared-pool row from a larger model cannot enter
      // this LP (its columns do not exist here) and must not veto the point
      // either — violation() already reports 0 for it, this guard just
      // makes the reject explicit before mark_active/add_row.
      if (!pool_->fits(i, model_->num_vars())) continue;
      if (pool_->violation(i, x) >= opts_.cuts.pool.min_violation) {
        pool_->mark_active(i);
        picked.push_back(i);
      }
    }
  } else {
    for (const size_t idx :
         pool_->select_violated(x, opts_.cuts.pool, model_->num_vars())) {
      if (in_lp_[idx] == 0) picked.push_back(idx);
    }
  }
  for (const size_t idx : picked) {
    in_lp_[idx] = 1;
    lp_.add_row(pool_->terms(idx), pool_->sense(idx), pool_->rhs(idx));
  }
  if (!picked.empty()) {
    engine_.reset();  // dims grew: stale structures/LU; solve_lp rebuilds
    if (opts_.exec.budget != nullptr &&
        !opts_.exec.budget->charge_encode_rows(static_cast<long>(picked.size()))) {
      separation_budget_out_ = true;
    }
  }
  stats_.separation_time_s += sw.seconds();
  if (util::obs::TraceRecorder::global().enabled()) {
    util::obs::TraceRecorder::global().record_counter(
        "milp/cut_lp_rows", static_cast<double>(lp_.num_rows() - model_->num_constrs()));
  }
  return static_cast<int>(picked.size());
}

LpResult BranchAndBound::solve_lp(const Basis* basis) {
  if (!engine_) engine_ = std::make_unique<DualSimplex>(lp_, opts_.lp);
  // A basis recorded before cut rows were appended is extended with each
  // new slack basic in its own row: the basis stays nonsingular and — the
  // slack cost being zero — dual feasible, so the dual simplex resumes
  // from it directly.
  Basis extended;
  if (basis != nullptr && static_cast<int>(basis->basic.size()) < lp_.num_rows()) {
    extended = *basis;
    extended.status.resize(static_cast<size_t>(lp_.num_cols()), simplex::ColStatus::kBasic);
    for (int i = static_cast<int>(extended.basic.size()); i < lp_.num_rows(); ++i) {
      extended.basic.push_back(lp_.num_structural() + i);
    }
    basis = &extended;
  }
  engine_->set_time_limit(remaining_s());
  // Past the cold-restart threshold, inherited bases are suspect (stale or
  // ill-conditioned factorizations keep tripping the engine): start cold.
  const bool warm_ok = opts_.warm_start &&
                       stats_.numerical_failures < opts_.cold_restart_after_failures;
  LpResult res;
  if (basis != nullptr && warm_ok) {
    ++stats_.warm_attempts;
    res = engine_->solve_from(*basis);
    const simplex::SolveInfo& info = engine_->last_solve_info();
    if (info.reused_lu) ++stats_.warm_lu_reused;
    if (info.refactor_fallback) ++stats_.warm_fallbacks;
  } else {
    ++stats_.cold_solves;
    res = engine_->solve();
  }
  stats_.lp_iterations += res.iterations;
  // Escalating cold retries: rebuild the engine from scratch with a 10x
  // larger iteration budget each round rather than abandoning the subtree.
  simplex::LpOptions retry = opts_.lp;
  bool escalated = false;
  for (int attempt = 0;
       res.status == LpStatus::kIterLimit || res.status == LpStatus::kNumericalTrouble;
       ++attempt) {
    ++stats_.numerical_failures;
    // A retry only makes sense while the request is still live: an expired
    // deadline or a tripped token must not be granted fresh seconds (the old
    // 1.0s floor here leaked up to a second per node past the budget).
    if (attempt >= opts_.max_numerical_retries || deadline_.expired() ||
        opts_.exec.token.cancelled()) {
      break;
    }
    retry.max_iters *= 10;
    retry.time_limit_s = remaining_s();
    engine_ = std::make_unique<DualSimplex>(lp_, retry);
    escalated = true;
    res = engine_->solve();
    stats_.lp_iterations += res.iterations;
  }
  if (escalated) {
    // The escalated engine carries the inflated pivot budget; restore the
    // configured budget so one bad node doesn't tax every later LP. (The
    // time limit is already re-armed at the top of each call.)
    engine_->set_iteration_limit(opts_.lp.max_iters);
  }
  last_basis_ = engine_->basis();
  return res;
}

int BranchAndBound::pick_branch_var(const std::vector<double>& x) const {
  // Pseudocost scoring switches on once any branching has been observed;
  // before that every variable scores by plain fractionality, i.e. the
  // textbook most-fractional rule.
  const bool use_pc =
      opts_.pseudocost_branching && (pc_all_up_.n > 0 || pc_all_down_.n > 0);
  const double avg_up = pc_all_up_.n > 0 ? pc_all_up_.sum / static_cast<double>(pc_all_up_.n) : 1.0;
  const double avg_down =
      pc_all_down_.n > 0 ? pc_all_down_.sum / static_cast<double>(pc_all_down_.n) : 1.0;
  const int rel = std::max(1, opts_.pseudocost_reliability);
  // Below the reliability threshold, blend the variable's own average with
  // the tree-wide one in proportion to how much history it has.
  const auto blend = [rel](const Pseudocost& pc, double avg) {
    if (pc.n >= rel) return pc.sum / static_cast<double>(pc.n);
    return (pc.sum + static_cast<double>(rel - pc.n) * avg) / static_cast<double>(rel);
  };

  int best = -1;
  int best_prio = INT32_MIN;
  double best_score = -1.0;
  for (size_t k = 0; k < int_cols_.size(); ++k) {
    const int j = int_cols_[k];
    const double v = x[static_cast<size_t>(j)];
    const double frac = v - std::floor(v);
    const double dist = std::min(frac, 1.0 - frac);
    if (dist <= opts_.int_tol) continue;
    const int prio = model_->vars()[static_cast<size_t>(j)].branch_priority;
    double score;
    if (use_pc) {
      // Product rule over the estimated up/down degradations: prefers
      // variables whose BOTH children move the bound.
      const double down_est = std::max(frac * blend(pc_down_[k], avg_down), 1e-12);
      const double up_est = std::max((1.0 - frac) * blend(pc_up_[k], avg_up), 1e-12);
      score = down_est * up_est;
    } else {
      score = dist;
    }
    // Highest priority class first. Within the class a candidate must beat
    // the running best by a relative margin — ties (exact or within float
    // noise) keep the lowest column index, making the branching order
    // platform-stable.
    if (prio > best_prio ||
        (prio == best_prio && score > best_score + tol::kBranchTie * std::max(1.0, best_score))) {
      best_prio = prio;
      best_score = score;
      best = j;
    }
  }
  return best;
}

void BranchAndBound::update_pseudocosts(const Node& node, double child_obj) {
  if (node.branch_col < 0) return;
  const int k = col_to_k_[static_cast<size_t>(node.branch_col)];
  if (k < 0) return;
  const double frac = std::max(node.branch_frac, 1e-6);
  const double per_unit = std::max(0.0, child_obj - node.parent_bound) / frac;
  Pseudocost& pc = node.branch_up ? pc_up_[static_cast<size_t>(k)] : pc_down_[static_cast<size_t>(k)];
  pc.sum += per_unit;
  ++pc.n;
  Pseudocost& all = node.branch_up ? pc_all_up_ : pc_all_down_;
  all.sum += per_unit;
  ++all.n;
}

bool BranchAndBound::try_incumbent(const std::vector<double>& x) {
  // Prefer the cleanly rounded point; if rounding the binaries perturbs a
  // tight equality (e.g. an RSS balance row) past tolerance, fall back to
  // the raw LP point, which is feasible at LP precision.
  std::vector<double> cand(x.begin(), x.begin() + model_->num_vars());
  for (int j : int_cols_) cand[static_cast<size_t>(j)] = std::round(cand[static_cast<size_t>(j)]);
  if (!model_->is_feasible(cand, 1e-4)) {
    cand.assign(x.begin(), x.begin() + model_->num_vars());
    if (!model_->is_feasible(cand, 1e-4)) return false;
  }
  const double obj = model_->objective().evaluate(cand);
  // Inclusive cutoff semantics: a point that TIES the cutoff (within a
  // relative kObjImprove band) is a solution — callers passing a best-known
  // objective get kFeasible back, not kNoSolution. Anything beyond the tie
  // band is exactly what the cutoff asked to exclude.
  if (obj > opts_.cutoff + tol::kObjImprove * std::max(1.0, std::abs(opts_.cutoff))) {
    return false;
  }
  // Lazy gate: the Model only carries the encoded rows, so a point that
  // passes is_feasible may still violate constraints a separator owns.
  // Run the separators on the candidate (this covers MIP starts, dives and
  // integral node LPs alike); any violation — including of a cut already
  // active in the LP — rejects it. Newly activated rows make the caller's
  // next LP re-solve cut the point off, so the search makes progress
  // instead of dropping the region.
  if (!opts_.cuts.separators.empty()) {
    separate(cand, 0, /*integral=*/true, obj);
    if (pool_->max_violation(cand) >= opts_.cuts.pool.min_violation) {
      ++stats_.lazy_rejections;
      return false;
    }
  }
  // Same epsilon as every bound-pruning test (tol::kObjImprove): a point a
  // node prune would reject can never churn the incumbent machinery.
  if (!have_incumbent_ || obj < incumbent_obj_ - tol::kObjImprove) {
    have_incumbent_ = true;
    incumbent_obj_ = obj;
    incumbent_x_ = std::move(cand);
    ++stats_.incumbents;
    if (opts_.collect_timeline) {
      stats_.incumbent_timeline.push_back({clock_.seconds(), stats_.nodes, obj});
    }
    if (util::obs::TraceRecorder::global().enabled()) {
      util::obs::TraceRecorder::global().record_counter("milp/incumbent_objective", obj);
    }
    apply_reduced_cost_fixing();
    if (opts_.verbose) {
      std::fprintf(stderr, "[milp] incumbent %.6g after %ld nodes, %.1fs\n", obj, stats_.nodes,
                   clock_.seconds());
    }
    return true;
  }
  return false;
}

void BranchAndBound::dive(const std::shared_ptr<const BoundChange>& chain, const Basis& basis,
                          const std::vector<double>& x0) {
  std::shared_ptr<const BoundChange> cur = chain;
  Basis warm = basis;
  std::vector<double> x = x0;
  const int max_depth = 200;
  for (int d = 0; d < max_depth; ++d) {
    if (deadline_.expired() || opts_.exec.token.cancelled()) return;
    // Least-fractional unfixed integer var; fix it to its rounding.
    int pick = -1;
    double best = 2.0;
    for (int j : int_cols_) {
      const double v = x[static_cast<size_t>(j)];
      const double frac = v - std::floor(v);
      const double dist = std::min(frac, 1.0 - frac);
      if (dist <= opts_.int_tol) continue;
      if (dist < best) {
        best = dist;
        pick = j;
      }
    }
    if (pick == -1) {
      try_incumbent(x);
      return;
    }
    const double target = std::round(x[static_cast<size_t>(pick)]);
    auto bc = std::make_shared<BoundChange>();
    bc->col = pick;
    bc->lb = target;
    bc->ub = target;
    bc->parent = cur;
    apply_chain(bc);
    LpResult res = solve_lp(&warm);
    if (res.status != LpStatus::kOptimal) {
      // One-level backtrack: try the opposite rounding before giving up.
      const double flipped = target > x[static_cast<size_t>(pick)] ? target - 1 : target + 1;
      const auto& vd = model_->vars()[static_cast<size_t>(pick)];
      if (flipped < vd.lb || flipped > vd.ub) return;
      bc->lb = flipped;
      bc->ub = flipped;
      apply_chain(bc);
      res = solve_lp(&warm);
      if (res.status != LpStatus::kOptimal) return;
    }
    cur = bc;
    if (res.objective >= prune_bound() - tol::kObjImprove) {
      // Inclusive cutoff-tie semantics: the dive may land exactly on the
      // caller's cutoff (e.g. a portfolio member re-discovering the
      // heuristic's own incumbent). If the point is integral it must be
      // offered as an incumbent before the dive abandons it, or a solve
      // whose optimum ties the cutoff flips kFeasible into kNoSolution.
      if (pick_branch_var(res.x) == -1) try_incumbent(res.x);
      return;
    }
    warm = last_basis_;
    x = res.x;
  }
}

MipResult BranchAndBound::run() {
  MipResult out;
  util::obs::ScopedSpan solve_span("milp/solve", "milp");
  solve_span.arg("vars", model_->num_vars());
  solve_span.arg("int_vars", static_cast<double>(int_cols_.size()));

  // Stopped before any work (zero remaining budget, pre-cancelled token):
  // report the empty anytime result without touching the LP.
  {
    TerminationReason why = TerminationReason::kDeadline;
    if (opts_.exec.stopped(&why) || deadline_.expired()) {
      out.status = SolveStatus::kNoSolution;
      finalize(out, why);
      return out;
    }
  }

  // --- Root LP (with one full propagation sweep first: its tightenings go
  // into the root bound arrays, so every descendant inherits them).
  apply_chain(nullptr);
  if (opts_.node_propagation && !int_cols_.empty()) {
    const util::obs::ScopedSpan prop_span("milp/root_propagate", "milp");
    if (!propagate_node(nullptr)) {
      ++stats_.propagation_prunes;
      out.status = SolveStatus::kInfeasible;
      finalize(out, TerminationReason::kInfeasible);
      return out;
    }
    for (size_t k = 0; k < int_cols_.size(); ++k) {
      root_lb_[k] = lp_.lb()[static_cast<size_t>(int_cols_[k])];
      root_ub_[k] = lp_.ub()[static_cast<size_t>(int_cols_[k])];
    }
  }
  LpResult root = [&] {
    util::obs::ScopedSpan root_span("milp/root_lp", "milp");
    LpResult res = solve_lp(nullptr);
    root_span.arg("iterations", static_cast<double>(res.iterations));
    return res;
  }();
  stats_.root_bound = root.objective;
  if (root.status == LpStatus::kPrimalInfeasible) {
    out.status = SolveStatus::kInfeasible;
    finalize(out, TerminationReason::kInfeasible);
    return out;
  }
  if (root.status == LpStatus::kUnbounded) {
    out.status = SolveStatus::kUnbounded;
    finalize(out, TerminationReason::kCompleted);
    return out;
  }
  if (root.status != LpStatus::kOptimal) {
    // Root LP stopped early: no incumbent, no usable bound. Map the LP
    // status into the taxonomy so callers can tell a timeout from a
    // cancellation from genuine numerical trouble.
    out.status = SolveStatus::kNoSolution;
    TerminationReason why = TerminationReason::kNumerical;
    if (root.status == LpStatus::kTimeLimit) why = TerminationReason::kDeadline;
    if (root.status == LpStatus::kCancelled) why = TerminationReason::kCancelled;
    finalize(out, why);
    return out;
  }

  // Pure LP: done.
  if (int_cols_.empty()) {
    out.status = SolveStatus::kOptimal;
    out.objective = root.objective;
    out.bound = root.objective;
    out.x.assign(root.x.begin(), root.x.begin() + model_->num_vars());
    finalize(out, TerminationReason::kCompleted);
    return out;
  }

  // --- Root separation: alternate separate / re-solve until the separators
  // go quiet or the round cap hits. Lazy rows are real constraints, so a
  // root LP that turns infeasible after cuts is genuine infeasibility.
  if (!opts_.cuts.separators.empty()) {
    for (int round = 0; round < opts_.cuts.max_rounds_root; ++round) {
      if (deadline_.expired() || opts_.exec.token.cancelled()) break;
      const bool integral = pick_branch_var(root.x) == -1;
      if (separate(root.x, 0, integral, root.objective) == 0) break;
      LpResult tightened = solve_lp(&last_basis_);
      if (tightened.status == LpStatus::kPrimalInfeasible) {
        out.status = SolveStatus::kInfeasible;
        finalize(out, TerminationReason::kInfeasible);
        return out;
      }
      if (tightened.status != LpStatus::kOptimal) break;  // keep the last clean root
      root = std::move(tightened);
    }
    stats_.root_bound = root.objective;
  }

  // Root heuristics: caller-provided MIP start, plain rounding, then a dive.
  root_bound_ = root.objective;
  publish_bound(root.objective);
  root_x_ = root.x;
  root_dj_ = root.reduced_costs;
  if (static_cast<int>(opts_.mip_start.size()) >= model_->num_vars()) {
    stats_.mip_start_used = try_incumbent(opts_.mip_start);
  }
  try_incumbent(root.x);
  Basis root_basis = last_basis_;
  if (opts_.root_dive && pick_branch_var(root.x) != -1) {
    dive(nullptr, root_basis, root.x);
  }
  apply_reduced_cost_fixing();

  // --- DFS with plunge ordering.
  std::vector<Node> stack;
  stack.push_back({nullptr, root_basis, root.objective, 0});
  double best_open_bound = root.objective;

  TerminationReason stop_why = TerminationReason::kCompleted;
  bool stopped = false;
  while (!stack.empty()) {
    // Serial-spine checkpoint, one per node iteration: injection, real
    // cancellation and both deadlines funnel through here.
    if (opts_.exec.checkpoint(&stop_why) || deadline_.expired()) {
      if (stop_why == TerminationReason::kCompleted) stop_why = TerminationReason::kDeadline;
      stopped = true;
      break;
    }
    if (stats_.nodes >= opts_.node_limit ||
        (opts_.exec.budget && !opts_.exec.budget->charge_bb_nodes())) {
      stop_why = TerminationReason::kNodeLimit;
      stopped = true;
      break;
    }

    // Global lower bound = min over open nodes (their parents' bounds).
    best_open_bound = kInf;
    for (const Node& nd : stack) best_open_bound = std::min(best_open_bound, nd.parent_bound);
    publish_bound(std::min(best_open_bound, have_incumbent_ ? incumbent_obj_ : kInf));
    if (gap_closed(best_open_bound)) break;

    // Mostly depth-first plunging (cheap warm starts), but every few nodes
    // process the best-bound leaf so the proven lower bound keeps rising.
    // Pure plunging until the first incumbent exists — finding any feasible
    // point beats bound polishing early on.
    if (have_incumbent_ && stats_.nodes % 32 == 31) {
      size_t best = 0;
      for (size_t i = 1; i < stack.size(); ++i) {
        if (stack[i].parent_bound < stack[best].parent_bound) best = i;
      }
      std::swap(stack[best], stack.back());
    }
    Node node = std::move(stack.back());
    stack.pop_back();
    ++stats_.nodes;

    const double pb = prune_bound();
    if (pb < kInf &&
        node.parent_bound >= pb - opts_.rel_gap * std::max(1.0, std::abs(pb))) {
      continue;  // pruned by bound (incumbent or caller-supplied cutoff)
    }

    // Sampled node telemetry: every 64th node gets an LP span plus counter
    // samples of the open-node count and propagation totals, so a Perfetto
    // view shows tree progress without per-node recording overhead.
    const bool sampled =
        util::obs::TraceRecorder::global().enabled() && stats_.nodes % 64 == 1;
    if (sampled) {
      util::obs::TraceRecorder::global().record_counter(
          "milp/open_nodes", static_cast<double>(stack.size() + 1));
      util::obs::TraceRecorder::global().record_counter(
          "milp/propagation_tightenings", static_cast<double>(stats_.propagation_tightenings));
    }

    apply_chain(node.chain);
    if (opts_.node_propagation && !propagate_node(node.chain)) {
      ++stats_.propagation_prunes;
      continue;  // infeasible before any LP work
    }
    LpResult res = [&] {
      if (!sampled) return solve_lp(&node.warm_basis);
      util::obs::ScopedSpan node_span("milp/node_lp", "milp");
      node_span.arg("node", static_cast<double>(stats_.nodes));
      node_span.arg("depth", node.depth);
      return solve_lp(&node.warm_basis);
    }();
    // Separation rounds around the node LP: fractional points take up to
    // max_rounds_node strengthening rounds; integral points re-solve for as
    // long as the lazy gate keeps growing the LP (each pass activates at
    // least one new pooled row, and the cut families are finite, so this
    // terminates). With no separators the first pass decides everything,
    // exactly like before cuts existed.
    int branch = -1;
    bool drop_node = false;
    bool pc_recorded = false;
    int frac_rounds = 0;
    while (true) {
      if (res.status == LpStatus::kTimeLimit || res.status == LpStatus::kCancelled) break;
      if (res.status != LpStatus::kOptimal) {
        // kPrimalInfeasible prunes; anything else was counted in
        // numerical_failures by solve_lp.
        drop_node = true;
        break;
      }
      if (!pc_recorded) {
        update_pseudocosts(node, res.objective);
        pc_recorded = true;
      }
      if (res.objective >= prune_bound() - tol::kObjImprove) {
        // Same inclusive tie semantics as the dive: an integral LP point at
        // exactly the prune bound may BE the tie-equal optimum the caller's
        // cutoff describes — accept it before dropping the region (the
        // incumbent filter itself rejects non-improving churn). If the lazy
        // gate instead grew the LP, re-solve so the point is cut off rather
        // than silently pruned.
        if (pick_branch_var(res.x) == -1) {
          const int rows_before = lp_.num_rows();
          try_incumbent(res.x);
          if (lp_.num_rows() > rows_before) {
            res = solve_lp(&last_basis_);
            continue;
          }
        }
        drop_node = true;
        break;
      }
      branch = pick_branch_var(res.x);
      if (branch == -1) {
        const int rows_before = lp_.num_rows();
        try_incumbent(res.x);
        if (lp_.num_rows() > rows_before) {
          res = solve_lp(&last_basis_);  // lazy rows cut this point off
          continue;
        }
        drop_node = true;  // accepted, or feasible-but-not-improving
        break;
      }
      if (frac_rounds < opts_.cuts.max_rounds_node &&
          separate(res.x, node.depth, false, res.objective) > 0) {
        ++frac_rounds;
        res = solve_lp(&last_basis_);
        continue;
      }
      break;  // branch on res.x
    }
    if (res.status == LpStatus::kTimeLimit || res.status == LpStatus::kCancelled) {
      // Put the node back before breaking: the wrap-up bound is the min over
      // open nodes, so dropping a popped-but-unsolved subtree would
      // overstate the proven global bound.
      stack.push_back(std::move(node));
      stop_why = res.status == LpStatus::kTimeLimit ? TerminationReason::kDeadline
                                                    : TerminationReason::kCancelled;
      stopped = true;
      break;
    }
    if (drop_node) continue;
    if (opts_.pseudocost_branching && pseudocost_reliable(branch)) {
      ++stats_.pseudocost_branches;
    } else {
      ++stats_.fractional_branches;
    }

    const double v = res.x[static_cast<size_t>(branch)];
    const double frac = v - std::floor(v);
    const double lb = lp_.lb()[static_cast<size_t>(branch)];
    const double ub = lp_.ub()[static_cast<size_t>(branch)];

    auto down = std::make_shared<BoundChange>();
    down->col = branch;
    down->lb = lb;
    down->ub = std::floor(v);
    down->parent = node.chain;

    auto up = std::make_shared<BoundChange>();
    up->col = branch;
    up->lb = std::ceil(v);
    up->ub = ub;
    up->parent = node.chain;

    Node down_node{down, last_basis_, res.objective, node.depth + 1, branch, false, frac};
    Node up_node{up, last_basis_, res.objective, node.depth + 1, branch, true, 1.0 - frac};
    // Plunge toward the rounding of the fractional value: push the
    // preferred child last so DFS explores it first.
    if (frac >= 0.5) {
      stack.push_back(std::move(down_node));
      stack.push_back(std::move(up_node));
    } else {
      stack.push_back(std::move(up_node));
      stack.push_back(std::move(down_node));
    }

    // Periodic diving keeps fresh incumbents coming on deep trees (children
    // re-apply their own chains, so the dive's bound edits are harmless).
    if (stats_.nodes % 512 == 0) dive(node.chain, last_basis_, res.x);
  }

  // --- Wrap up.
  const bool exhausted = stack.empty();
  if (!exhausted) {
    best_open_bound = kInf;
    for (const Node& nd : stack) best_open_bound = std::min(best_open_bound, nd.parent_bound);
  }
  out.bound = exhausted ? (have_incumbent_ ? incumbent_obj_ : kInf)
                        : std::min(best_open_bound, have_incumbent_ ? incumbent_obj_ : kInf);
  if (have_incumbent_) {
    out.objective = incumbent_obj_;
    out.x = incumbent_x_;
    out.status = (exhausted || gap_closed(out.bound)) ? SolveStatus::kOptimal
                                                      : SolveStatus::kFeasible;
  } else if (exhausted && opts_.cutoff < kInf) {
    // The cutoff may have pruned feasible-but-not-better regions unseen, so
    // exhaustion only proves "nothing beats the cutoff", not infeasibility.
    out.status = SolveStatus::kNoSolution;
    out.bound = opts_.cutoff;
  } else {
    out.status = exhausted ? SolveStatus::kInfeasible : SolveStatus::kNoSolution;
  }
  publish_bound(out.bound);
  TerminationReason term = TerminationReason::kCompleted;
  if (stopped) {
    term = stop_why;
  } else if (out.status == SolveStatus::kInfeasible) {
    term = TerminationReason::kInfeasible;
  }
  finalize(out, term);
  solve_span.arg("nodes", static_cast<double>(stats_.nodes));
  solve_span.arg("lp_iterations", static_cast<double>(stats_.lp_iterations));
  return out;
}

}  // namespace

const char* to_string(SolveStatus s) {
  switch (s) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kFeasible: return "feasible";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kNoSolution: return "no-solution";
  }
  return "unknown";
}

double relative_gap(double incumbent, double bound) {
  // NaN or +/-inf on either side means "no certificate on that side":
  // the gap of an empty anytime result is infinite by convention. (The
  // negated comparisons are NaN-correct: !(nan < inf) is true.)
  if (!(incumbent < kInf) || !(bound > -kInf)) return kInf;
  // Cut-tightened duals (and plain roundoff) can push the proven bound a
  // hair past the incumbent; within kGapSlack that is a closed gap, never
  // a negative one.
  if (incumbent <= bound + tol::kGapSlack) return 0.0;
  // Denominator honors |bound| as well as |incumbent|: a proven-optimal
  // minimization with negative cost and an incumbent near zero must not
  // divide a |bound|-sized residual by 1 and report a wild percentage.
  return (incumbent - bound) / std::max({1.0, std::abs(incumbent), std::abs(bound)});
}

std::string SolveStats::to_json() const {
  // All numeric output goes through the obs writer: non-finite doubles
  // (root_bound on infeasible/unbounded solves, nan timeline objectives)
  // become null with a "<field>_finite": false sidecar instead of the bare
  // inf/nan an ostringstream would print, and formatting is
  // locale-independent by construction.
  util::obs::JsonWriter w;
  w.begin_object();
  w.field("nodes", nodes);
  w.field("lp_iterations", lp_iterations);
  w.number_field("time_s", time_s);
  w.number_field("root_bound", root_bound);
  w.field("termination", util::exec::to_string(termination));
  w.number_field("bound", bound);
  w.number_field("gap", gap);
  w.field("numerical_failures", numerical_failures);
  w.field("rc_fixed", rc_fixed);
  w.field("warm_attempts", warm_attempts);
  w.field("warm_lu_reused", warm_lu_reused);
  w.field("warm_fallbacks", warm_fallbacks);
  w.field("cold_solves", cold_solves);
  w.number_field("warm_start_hit_rate", warm_start_hit_rate());
  w.field("propagation_tightenings", propagation_tightenings);
  w.field("propagation_prunes", propagation_prunes);
  w.field("pseudocost_branches", pseudocost_branches);
  w.field("fractional_branches", fractional_branches);
  w.key("separation").begin_object();
  w.field("cut_rounds", cut_rounds);
  w.field("cuts_proposed", cuts_proposed);
  w.field("cuts_pooled", cuts_pooled);
  w.field("cuts_duplicate", cuts_duplicate);
  w.field("cuts_lp_rows", cuts_lp_rows);
  w.field("cuts_purged", cuts_purged);
  w.field("lazy_rejections", lazy_rejections);
  w.field("cuts_dim_rejected", cuts_dim_rejected);
  w.number_field("separation_time_s", separation_time_s);
  w.end_object();
  w.field("incumbents", incumbents);
  w.field("mip_start_used", mip_start_used);
  w.field("simd_level", simd_level);
  w.key("incumbent_timeline").begin_array();
  for (const IncumbentEvent& e : incumbent_timeline) {
    w.begin_object();
    w.number_field("time_s", e.time_s);
    w.field("nodes", e.nodes);
    w.number_field("objective", e.objective);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

MipResult solve(const Model& model, const SolveOptions& opts) {
  BranchAndBound bb(model, opts);
  return bb.run();
}

}  // namespace wnet::milp
