#pragma once

/// Named numerical tolerances shared by the MILP layer.
///
/// Before this header existed, incumbent acceptance, bound pruning and
/// reduced-cost fixing each carried their own magic epsilon (1e-12 vs 1e-9),
/// so an "improving" incumbent could be accepted even though every node with
/// that objective was already being pruned — churning the reduced-cost
/// fixing pass for no gain. All objective-space comparisons now share one
/// epsilon; anything that compares two MIP objective values must use these
/// constants, never a literal.
namespace wnet::milp::tol {

/// Minimum decrease for a candidate incumbent to count as an improvement,
/// and the slack used when pruning nodes against the incumbent. Keeping
/// these identical guarantees accept/prune consistency: a point good enough
/// to accept could not have been pruned, and vice versa.
inline constexpr double kObjImprove = 1e-9;

/// Magnitude below which a reduced cost is treated as zero (reduced-cost
/// fixing, dual-feasibility screening).
inline constexpr double kReducedCost = 1e-9;

/// Distance within which an LP value counts as resting on its bound.
inline constexpr double kAtBound = 1e-7;

/// Absolute slack added to the relative-gap termination test so exactly
/// closed gaps terminate despite roundoff.
inline constexpr double kGapSlack = 1e-12;

/// Branching-score ties: a candidate must beat the running best by this
/// relative margin to displace it. Combined with ascending column order
/// this yields a deterministic lowest-index tie-break that is stable under
/// last-bit float noise across platforms.
inline constexpr double kBranchTie = 1e-12;

}  // namespace wnet::milp::tol
