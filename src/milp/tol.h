#pragma once

/// Named numerical tolerances shared by the MILP layer.
///
/// Before this header existed, incumbent acceptance, bound pruning and
/// reduced-cost fixing each carried their own magic epsilon (1e-12 vs 1e-9),
/// so an "improving" incumbent could be accepted even though every node with
/// that objective was already being pruned — churning the reduced-cost
/// fixing pass for no gain. All objective-space comparisons now share one
/// epsilon; anything that compares two MIP objective values must use these
/// constants, never a literal.
namespace wnet::milp::tol {

/// Minimum decrease for a candidate incumbent to count as an improvement,
/// and the slack used when pruning nodes against the incumbent. Keeping
/// these identical guarantees accept/prune consistency: a point good enough
/// to accept could not have been pruned, and vice versa.
inline constexpr double kObjImprove = 1e-9;

/// Magnitude below which a reduced cost is treated as zero (reduced-cost
/// fixing, dual-feasibility screening).
inline constexpr double kReducedCost = 1e-9;

/// Distance within which an LP value counts as resting on its bound.
inline constexpr double kAtBound = 1e-7;

/// Absolute slack added to the relative-gap termination test so exactly
/// closed gaps terminate despite roundoff.
inline constexpr double kGapSlack = 1e-12;

/// Branching-score ties: a candidate must beat the running best by this
/// relative margin to displace it. Combined with ascending column order
/// this yields a deterministic lowest-index tie-break that is stable under
/// last-bit float noise across platforms.
inline constexpr double kBranchTie = 1e-12;

/// Minimum normalized violation (row scaled so max |coef| = 1) for a pooled
/// cut to be worth activating in the LP. Below this a "violated" cut is
/// indistinguishable from simplex roundoff and would churn rows forever.
inline constexpr double kCutViolation = 1e-6;

/// Relative coefficient tolerance for cut-pool deduplication: two cuts whose
/// normalized rows agree coefficient-wise within this margin are the same
/// cut. Dedup must never compare raw doubles exactly — separators rebuild
/// rows from floating-point arithmetic, so textually identical cuts arrive
/// perturbed in the last bits.
inline constexpr double kCutCoefTol = 1e-6;

/// Magnitude below which a normalized cut coefficient is dropped entirely
/// (treated as a structural zero for hashing and row building).
inline constexpr double kCutCoefZero = 1e-12;

}  // namespace wnet::milp::tol
