#include "milp/simplex/standard_lp.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wnet::milp::simplex {

namespace {

// Infinite bounds are kept as-is except where the objective pushes a
// variable toward an infinite bound — the dual simplex needs a finite
// dual-feasible resting spot there, so only that side is clamped (and
// flagged: an optimum resting on it means the LP is unbounded).

}  // namespace

StandardLp::StandardLp(const Model& model)
    : a_(model.num_constrs(), model.num_vars() + model.num_constrs()) {
  const int m = model.num_constrs();
  n_struct_ = model.num_vars();
  const int n_total = n_struct_ + m;

  b_.resize(static_cast<size_t>(m));
  c_.assign(static_cast<size_t>(n_total), 0.0);
  lb_.resize(static_cast<size_t>(n_total));
  ub_.resize(static_cast<size_t>(n_total));
  lb_synth_.assign(static_cast<size_t>(n_total), 0);
  ub_synth_.assign(static_cast<size_t>(n_total), 0);

  // Structural columns: gather per-column entries from the row-wise model.
  std::vector<std::vector<Entry>> cols(static_cast<size_t>(n_total));
  for (int i = 0; i < m; ++i) {
    const Constraint& cn = model.constrs()[static_cast<size_t>(i)];
    b_[static_cast<size_t>(i)] = cn.rhs;
    for (const auto& [v, coef] : cn.expr.terms()) {
      cols[static_cast<size_t>(v.id)].push_back({i, coef});
    }
  }
  for (int j = 0; j < n_struct_; ++j) {
    const VarData& vd = model.vars()[static_cast<size_t>(j)];
    lb_[static_cast<size_t>(j)] = vd.lb;
    ub_[static_cast<size_t>(j)] = vd.ub;
  }

  // Slack columns: row i gets slack column n_struct_ + i with coefficient 1.
  for (int i = 0; i < m; ++i) {
    const int j = n_struct_ + i;
    cols[static_cast<size_t>(j)].push_back({i, 1.0});
    const Sense s = model.constrs()[static_cast<size_t>(i)].sense;
    switch (s) {
      case Sense::kLe:
        lb_[static_cast<size_t>(j)] = 0.0;
        ub_[static_cast<size_t>(j)] = kInf;
        break;
      case Sense::kGe:
        lb_[static_cast<size_t>(j)] = -kInf;
        ub_[static_cast<size_t>(j)] = 0.0;
        break;
      case Sense::kEq:
        lb_[static_cast<size_t>(j)] = 0.0;
        ub_[static_cast<size_t>(j)] = 0.0;
        break;
    }
  }

  for (int j = 0; j < n_total; ++j) {
    // Keep entries sorted by row for deterministic arithmetic.
    std::sort(cols[static_cast<size_t>(j)].begin(), cols[static_cast<size_t>(j)].end(),
              [](const Entry& x, const Entry& y) { return x.row < y.row; });
    a_.set_column(j, std::move(cols[static_cast<size_t>(j)]));
  }

  obj_constant_ = model.objective().constant();
  for (const auto& [v, coef] : model.objective().terms()) {
    c_[static_cast<size_t>(v.id)] = coef;
  }
  clamp_cost_side_infinities();
}

void StandardLp::clamp_cost_side_infinities() {
  for (size_t j = 0; j < c_.size(); ++j) {
    if (c_[j] > 0.0 && std::isinf(lb_[j])) {
      lb_[j] = -kBigBound;
      lb_synth_[j] = 1;
    } else if (c_[j] < 0.0 && std::isinf(ub_[j])) {
      ub_[j] = kBigBound;
      ub_synth_[j] = 1;
    } else if (c_[j] == 0.0 && std::isinf(lb_[j]) && std::isinf(ub_[j])) {
      // Fully free, cost-neutral: give it a resting spot at zero.
      lb_[j] = 0.0;
    }
  }
}

void StandardLp::set_bounds(int col, double lb, double ub) {
  if (col < 0 || col >= n_struct_) {
    throw std::out_of_range("StandardLp::set_bounds: not a structural column");
  }
  if (lb > ub) throw std::invalid_argument("StandardLp::set_bounds: lb > ub");
  lb_[static_cast<size_t>(col)] = lb;
  ub_[static_cast<size_t>(col)] = ub;
  lb_synth_[static_cast<size_t>(col)] = 0;
  ub_synth_[static_cast<size_t>(col)] = 0;
  if (c_[static_cast<size_t>(col)] > 0.0 && std::isinf(lb)) {
    lb_[static_cast<size_t>(col)] = -kBigBound;
    lb_synth_[static_cast<size_t>(col)] = 1;
  } else if (c_[static_cast<size_t>(col)] < 0.0 && std::isinf(ub)) {
    ub_[static_cast<size_t>(col)] = kBigBound;
    ub_synth_[static_cast<size_t>(col)] = 1;
  }
}

int StandardLp::add_row(const std::vector<std::pair<int, double>>& terms, Sense sense,
                        double rhs) {
  const int i = num_rows();
  int prev = -1;
  for (const auto& [col, coef] : terms) {
    if (col < 0 || col >= n_struct_) {
      throw std::out_of_range("StandardLp::add_row: not a structural column");
    }
    if (col <= prev) throw std::invalid_argument("StandardLp::add_row: ids not ascending");
    prev = col;
    a_.append_entry(col, {i, coef});  // i is the largest row index: order kept
  }
  b_.push_back(rhs);
  a_.set_num_rows(i + 1);
  a_.add_column({{i, 1.0}});  // slack of row i = column n_struct_ + i
  c_.push_back(0.0);
  switch (sense) {
    case Sense::kLe:
      lb_.push_back(0.0);
      ub_.push_back(kInf);
      break;
    case Sense::kGe:
      lb_.push_back(-kInf);
      ub_.push_back(0.0);
      break;
    case Sense::kEq:
      lb_.push_back(0.0);
      ub_.push_back(0.0);
      break;
  }
  lb_synth_.push_back(0);
  ub_synth_.push_back(0);
  return i;
}

double StandardLp::objective_value(const std::vector<double>& x) const {
  double v = obj_constant_;
  for (size_t j = 0; j < c_.size() && j < x.size(); ++j) v += c_[j] * x[j];
  return v;
}

}  // namespace wnet::milp::simplex
