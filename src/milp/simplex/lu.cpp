#include "milp/simplex/lu.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>
#include <queue>
#include <stdexcept>

namespace wnet::milp::simplex {

bool BasisLu::factorize(const SparseMatrix& a, const std::vector<int>& basis_cols,
                        double singular_tol) {
  m_ = static_cast<int>(basis_cols.size());
  if (a.num_rows() != m_) throw std::invalid_argument("BasisLu: basis must be square");

  l_cols_.assign(static_cast<size_t>(m_), {});
  u_cols_.assign(static_cast<size_t>(m_), {});
  u_diag_.assign(static_cast<size_t>(m_), 0.0);
  p_.assign(static_cast<size_t>(m_), -1);
  pinv_.assign(static_cast<size_t>(m_), -1);
  q_.resize(static_cast<size_t>(m_));
  etas_.clear();
  work_.assign(static_cast<size_t>(m_), 0.0);
  work2_.assign(static_cast<size_t>(m_), 0.0);

  // Column pre-ordering by nonzero count (cheap fill reduction).
  std::iota(q_.begin(), q_.end(), 0);
  std::sort(q_.begin(), q_.end(), [&](int x, int y) {
    const size_t nx = a.column(basis_cols[static_cast<size_t>(x)]).size();
    const size_t ny = a.column(basis_cols[static_cast<size_t>(y)]).size();
    if (nx != ny) return nx < ny;
    return x < y;
  });

  std::vector<double>& x = work_;
  // Min-heap of pivot steps whose rows currently hold nonzeros; drives the
  // left-looking elimination in topological (step) order so the work is
  // proportional to actual fill, not O(m) per column.
  std::priority_queue<int, std::vector<int>, std::greater<>> steps;
  std::vector<char> queued(static_cast<size_t>(m_), 0);

  for (int k = 0; k < m_; ++k) {
    // Scatter the k-th factored column and enqueue already-pivoted rows.
    for (const Entry& e : a.column(basis_cols[static_cast<size_t>(q_[static_cast<size_t>(k)])])) {
      x[static_cast<size_t>(e.row)] = e.value;
      const int t = pinv_[static_cast<size_t>(e.row)];
      if (t >= 0 && !queued[static_cast<size_t>(t)]) {
        queued[static_cast<size_t>(t)] = 1;
        steps.push(t);
      }
    }

    auto& ucol = u_cols_[static_cast<size_t>(k)];
    while (!steps.empty()) {
      const int t = steps.top();
      steps.pop();
      queued[static_cast<size_t>(t)] = 0;
      const int prow = p_[static_cast<size_t>(t)];
      const double xv = x[static_cast<size_t>(prow)];
      x[static_cast<size_t>(prow)] = 0.0;  // consumed into U
      if (xv == 0.0) continue;             // numerically cancelled
      ucol.push_back({t, xv});
      for (const Entry& le : l_cols_[static_cast<size_t>(t)]) {
        x[static_cast<size_t>(le.row)] -= le.value * xv;
        const int ts = pinv_[static_cast<size_t>(le.row)];
        if (ts >= 0 && !queued[static_cast<size_t>(ts)]) {
          queued[static_cast<size_t>(ts)] = 1;
          steps.push(ts);
        }
      }
    }

    // Partial pivoting over not-yet-pivoted rows.
    int pivot_row = -1;
    double best = 0.0;
    for (int i = 0; i < m_; ++i) {
      if (pinv_[static_cast<size_t>(i)] >= 0) continue;
      const double v = std::abs(x[static_cast<size_t>(i)]);
      if (v > best) {
        best = v;
        pivot_row = i;
      }
    }
    if (pivot_row < 0 || best < singular_tol) {
      // Clean scratch before reporting singularity.
      for (int i = 0; i < m_; ++i) x[static_cast<size_t>(i)] = 0.0;
      return false;
    }

    const double pivot = x[static_cast<size_t>(pivot_row)];
    p_[static_cast<size_t>(k)] = pivot_row;
    pinv_[static_cast<size_t>(pivot_row)] = k;
    u_diag_[static_cast<size_t>(k)] = pivot;
    x[static_cast<size_t>(pivot_row)] = 0.0;

    auto& lcol = l_cols_[static_cast<size_t>(k)];
    for (int i = 0; i < m_; ++i) {
      const double v = x[static_cast<size_t>(i)];
      if (v == 0.0) continue;
      x[static_cast<size_t>(i)] = 0.0;
      if (pinv_[static_cast<size_t>(i)] >= 0) continue;  // stale zero-cancelled entry
      lcol.push_back({i, v / pivot});
    }
  }
  return true;
}

void BasisLu::ftran(std::vector<double>& x) const {
  // Forward: y = L^{-1} P x, working in original-row space.
  for (int t = 0; t < m_; ++t) {
    const double v = x[static_cast<size_t>(p_[static_cast<size_t>(t)])];
    if (v == 0.0) continue;
    for (const Entry& le : l_cols_[static_cast<size_t>(t)]) {
      x[static_cast<size_t>(le.row)] -= le.value * v;
    }
  }
  // Gather into step space.
  std::vector<double>& y = work2_;
  for (int t = 0; t < m_; ++t) y[static_cast<size_t>(t)] = x[static_cast<size_t>(p_[static_cast<size_t>(t)])];

  // Backward: z = U^{-1} y (column-oriented back substitution).
  for (int k = m_ - 1; k >= 0; --k) {
    const double zk = y[static_cast<size_t>(k)] / u_diag_[static_cast<size_t>(k)];
    y[static_cast<size_t>(k)] = zk;
    if (zk == 0.0) continue;
    for (const Entry& ue : u_cols_[static_cast<size_t>(k)]) {
      y[static_cast<size_t>(ue.row)] -= ue.value * zk;
    }
  }

  // Un-permute columns: x[basis position q_[k]] = z[k].
  for (int k = 0; k < m_; ++k) x[static_cast<size_t>(q_[static_cast<size_t>(k)])] = y[static_cast<size_t>(k)];

  // Apply eta transformations in application order.
  for (const Eta& e : etas_) {
    const double xr = x[static_cast<size_t>(e.pos)] / e.pivot;
    x[static_cast<size_t>(e.pos)] = xr;
    if (xr == 0.0) continue;
    for (const Entry& en : e.other) x[static_cast<size_t>(en.row)] -= en.value * xr;
  }
}

void BasisLu::ftran_unit(std::vector<double>& x, int row, double value) const {
  x[static_cast<size_t>(row)] = value;
  // queued_ is self-cleaning (flags drop on pop), so only (re)size it here.
  if (queued_.size() != static_cast<size_t>(m_)) queued_.assign(static_cast<size_t>(m_), 0);
  heap_.clear();
  touched_.clear();

  // Forward: reach-based L pass. Updates from step t only create nonzeros at
  // rows pivoted later, so popping the pending steps in increasing order
  // replays the dense loop's visit order restricted to reachable steps.
  const auto push_step = [&](int t) {
    if (!queued_[static_cast<size_t>(t)]) {
      queued_[static_cast<size_t>(t)] = 1;
      heap_.push_back(t);
      std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
    }
  };
  push_step(pinv_[static_cast<size_t>(row)]);
  int kmax = -1;
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
    const int t = heap_.back();
    heap_.pop_back();
    queued_[static_cast<size_t>(t)] = 0;
    touched_.push_back(t);
    kmax = t;
    const double v = x[static_cast<size_t>(p_[static_cast<size_t>(t)])];
    if (v == 0.0) continue;  // numerically cancelled
    for (const Entry& le : l_cols_[static_cast<size_t>(t)]) {
      x[static_cast<size_t>(le.row)] -= le.value * v;
      push_step(pinv_[static_cast<size_t>(le.row)]);
    }
  }

  // Gather into step space: only steps <= kmax can hold nonzeros.
  std::vector<double>& y = work2_;
  std::fill(y.begin(), y.begin() + (kmax + 1), 0.0);
  for (const int t : touched_) {
    y[static_cast<size_t>(t)] = x[static_cast<size_t>(p_[static_cast<size_t>(t)])];
    x[static_cast<size_t>(p_[static_cast<size_t>(t)])] = 0.0;  // clear row-space residue
  }

  // Backward: U substitution scatters strictly upward (step t < k), so
  // everything above the deepest touched step stays exactly zero.
  for (int k = kmax; k >= 0; --k) {
    const double zk = y[static_cast<size_t>(k)] / u_diag_[static_cast<size_t>(k)];
    y[static_cast<size_t>(k)] = zk;
    if (zk == 0.0) continue;
    for (const Entry& ue : u_cols_[static_cast<size_t>(k)]) {
      y[static_cast<size_t>(ue.row)] -= ue.value * zk;
    }
  }

  // Un-permute columns; x above was restored to all-zero, so positions past
  // kmax already hold their (zero) solution values.
  for (int k = 0; k <= kmax; ++k) {
    x[static_cast<size_t>(q_[static_cast<size_t>(k)])] = y[static_cast<size_t>(k)];
  }

  // Apply eta transformations in application order (same as ftran()).
  for (const Eta& e : etas_) {
    const double xr = x[static_cast<size_t>(e.pos)] / e.pivot;
    x[static_cast<size_t>(e.pos)] = xr;
    if (xr == 0.0) continue;
    for (const Entry& en : e.other) x[static_cast<size_t>(en.row)] -= en.value * xr;
  }
}

void BasisLu::btran(std::vector<double>& y) const {
  // Etas transposed, newest first: y <- E^{-T} y.
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
    double acc = y[static_cast<size_t>(it->pos)];
    for (const Entry& en : it->other) acc -= en.value * y[static_cast<size_t>(en.row)];
    y[static_cast<size_t>(it->pos)] = acc / it->pivot;
  }

  // Permute into step space: c_q[k] = y[q_[k]].
  std::vector<double>& w = work2_;
  for (int k = 0; k < m_; ++k) w[static_cast<size_t>(k)] = y[static_cast<size_t>(q_[static_cast<size_t>(k)])];

  // Solve U^T w' = c_q forward over steps (U stored by column).
  for (int k = 0; k < m_; ++k) {
    double acc = w[static_cast<size_t>(k)];
    for (const Entry& ue : u_cols_[static_cast<size_t>(k)]) {
      acc -= ue.value * w[static_cast<size_t>(ue.row)];
    }
    w[static_cast<size_t>(k)] = acc / u_diag_[static_cast<size_t>(k)];
  }

  // Solve L^T t = w backward; L column entries live in original-row space,
  // their step index is pinv_.
  for (int k = m_ - 1; k >= 0; --k) {
    double acc = w[static_cast<size_t>(k)];
    for (const Entry& le : l_cols_[static_cast<size_t>(k)]) {
      acc -= le.value * w[static_cast<size_t>(pinv_[static_cast<size_t>(le.row)])];
    }
    w[static_cast<size_t>(k)] = acc;
  }

  // Un-permute rows: y[p_[k]] = t[k].
  for (int k = 0; k < m_; ++k) y[static_cast<size_t>(p_[static_cast<size_t>(k)])] = w[static_cast<size_t>(k)];
}

bool BasisLu::update(int pos, const std::vector<double>& w, double pivot_tol) {
  const double pivot = w[static_cast<size_t>(pos)];
  if (std::abs(pivot) < pivot_tol) return false;
  Eta e;
  e.pos = pos;
  e.pivot = pivot;
  for (int i = 0; i < m_; ++i) {
    if (i == pos) continue;
    const double v = w[static_cast<size_t>(i)];
    if (v != 0.0) e.other.push_back({i, v});
  }
  etas_.push_back(std::move(e));
  return true;
}

size_t BasisLu::fill() const {
  size_t n = 0;
  for (const auto& c : l_cols_) n += c.size();
  for (const auto& c : u_cols_) n += c.size();
  for (const auto& e : etas_) n += e.other.size() + 1;
  return n;
}

}  // namespace wnet::milp::simplex
