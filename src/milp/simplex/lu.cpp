#include "milp/simplex/lu.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <numeric>
#include <queue>
#include <stdexcept>

#include "util/simd/simd.h"

namespace wnet::milp::simplex {

namespace {
using util::simd::kernels;
}  // namespace

void BasisLu::debug_check_solve(const std::vector<double>& v) const {
#ifndef NDEBUG
  assert(static_cast<int>(v.size()) >= m_ &&
         "BasisLu solve: dense operand smaller than basis dimension");
#else
  (void)v;
#endif
}

bool BasisLu::factorize(const SparseMatrix& a, const std::vector<int>& basis_cols,
                        double singular_tol) {
  m_ = static_cast<int>(basis_cols.size());
  if (a.num_rows() != m_) throw std::invalid_argument("BasisLu: basis must be square");

  l_rows_.clear();
  l_vals_.clear();
  l_steps_.clear();
  l_start_.assign(static_cast<size_t>(m_) + 1, 0);
  u_rows_.clear();
  u_vals_.clear();
  u_start_.assign(static_cast<size_t>(m_) + 1, 0);
  u_diag_.assign(static_cast<size_t>(m_), 0.0);
  p_.assign(static_cast<size_t>(m_), -1);
  pinv_.assign(static_cast<size_t>(m_), -1);
  q_.resize(static_cast<size_t>(m_));
  etas_.clear();
  eta_rows_.clear();
  eta_vals_.clear();
  work_.assign(static_cast<size_t>(m_), 0.0);
  work2_.assign(static_cast<size_t>(m_), 0.0);

  // Column pre-ordering by nonzero count (cheap fill reduction).
  std::iota(q_.begin(), q_.end(), 0);
  std::sort(q_.begin(), q_.end(), [&](int x, int y) {
    const size_t nx = a.column(basis_cols[static_cast<size_t>(x)]).size();
    const size_t ny = a.column(basis_cols[static_cast<size_t>(y)]).size();
    if (nx != ny) return nx < ny;
    return x < y;
  });

  std::vector<double>& x = work_;
  // Min-heap of pivot steps whose rows currently hold nonzeros; drives the
  // left-looking elimination in topological (step) order so the work is
  // proportional to actual fill, not O(m) per column.
  std::priority_queue<int, std::vector<int>, std::greater<>> steps;
  std::vector<char> queued(static_cast<size_t>(m_), 0);

  for (int k = 0; k < m_; ++k) {
    // Scatter the k-th factored column and enqueue already-pivoted rows.
    for (const Entry& e :
         a.column(basis_cols[static_cast<size_t>(q_[static_cast<size_t>(k)])])) {
      x[static_cast<size_t>(e.row)] = e.value;
      const int t = pinv_[static_cast<size_t>(e.row)];
      if (t >= 0 && !queued[static_cast<size_t>(t)]) {
        queued[static_cast<size_t>(t)] = 1;
        steps.push(t);
      }
    }

    while (!steps.empty()) {
      const int t = steps.top();
      steps.pop();
      queued[static_cast<size_t>(t)] = 0;
      const int prow = p_[static_cast<size_t>(t)];
      const double xv = x[static_cast<size_t>(prow)];
      x[static_cast<size_t>(prow)] = 0.0;  // consumed into U
      if (xv == 0.0) continue;             // numerically cancelled
      u_rows_.push_back(t);
      u_vals_.push_back(xv);
      // Eliminate with L column t: x -= xv * L_t (kernel scatter — row
      // indices within a column are distinct), then enqueue newly reached
      // pivoted rows. Splitting the original fused loop is exact: the
      // enqueue tests depend only on pinv_/queued, never on x values, and
      // the heap pops in step order regardless of push order.
      const int64_t s = l_start_[static_cast<size_t>(t)];
      const int len = static_cast<int>(l_start_[static_cast<size_t>(t) + 1] - s);
      kernels().scatter_axpy(l_rows_.data() + s, l_vals_.data() + s, len, -xv,
                             x.data());
      for (int i = 0; i < len; ++i) {
        const int ts = pinv_[static_cast<size_t>(l_rows_[static_cast<size_t>(s + i)])];
        if (ts >= 0 && !queued[static_cast<size_t>(ts)]) {
          queued[static_cast<size_t>(ts)] = 1;
          steps.push(ts);
        }
      }
    }
    u_start_[static_cast<size_t>(k) + 1] = static_cast<int64_t>(u_rows_.size());

    // Partial pivoting over not-yet-pivoted rows.
    int pivot_row = -1;
    double best = 0.0;
    for (int i = 0; i < m_; ++i) {
      if (pinv_[static_cast<size_t>(i)] >= 0) continue;
      const double v = std::abs(x[static_cast<size_t>(i)]);
      if (v > best) {
        best = v;
        pivot_row = i;
      }
    }
    if (pivot_row < 0 || best < singular_tol) {
      // Clean scratch before reporting singularity.
      for (int i = 0; i < m_; ++i) x[static_cast<size_t>(i)] = 0.0;
      return false;
    }

    const double pivot = x[static_cast<size_t>(pivot_row)];
    p_[static_cast<size_t>(k)] = pivot_row;
    pinv_[static_cast<size_t>(pivot_row)] = k;
    u_diag_[static_cast<size_t>(k)] = pivot;
    x[static_cast<size_t>(pivot_row)] = 0.0;

    for (int i = 0; i < m_; ++i) {
      const double v = x[static_cast<size_t>(i)];
      if (v == 0.0) continue;
      x[static_cast<size_t>(i)] = 0.0;
      if (pinv_[static_cast<size_t>(i)] >= 0) continue;  // stale zero-cancelled entry
      l_rows_.push_back(i);
      l_vals_.push_back(v / pivot);
    }
    l_start_[static_cast<size_t>(k) + 1] = static_cast<int64_t>(l_rows_.size());
  }

  // Step index of every L entry's row (all rows end up pivoted), so the
  // BTRAN L^T pass can gather straight from step space.
  l_steps_.resize(l_rows_.size());
  for (size_t i = 0; i < l_rows_.size(); ++i) {
    l_steps_[i] = pinv_[static_cast<size_t>(l_rows_[i])];
  }
  return true;
}

void BasisLu::ftran(std::vector<double>& x) const {
  debug_check_solve(x);
  // Forward: y = L^{-1} P x, working in original-row space.
  for (int t = 0; t < m_; ++t) {
    const double v = x[static_cast<size_t>(p_[static_cast<size_t>(t)])];
    if (v == 0.0) continue;
    const int64_t s = l_start_[static_cast<size_t>(t)];
    const int len = static_cast<int>(l_start_[static_cast<size_t>(t) + 1] - s);
    kernels().scatter_axpy(l_rows_.data() + s, l_vals_.data() + s, len, -v, x.data());
  }
  // Gather into step space.
  std::vector<double>& y = work2_;
  for (int t = 0; t < m_; ++t) {
    y[static_cast<size_t>(t)] = x[static_cast<size_t>(p_[static_cast<size_t>(t)])];
  }

  // Backward: z = U^{-1} y (column-oriented back substitution).
  for (int k = m_ - 1; k >= 0; --k) {
    const double zk = y[static_cast<size_t>(k)] / u_diag_[static_cast<size_t>(k)];
    y[static_cast<size_t>(k)] = zk;
    if (zk == 0.0) continue;
    const int64_t s = u_start_[static_cast<size_t>(k)];
    const int len = static_cast<int>(u_start_[static_cast<size_t>(k) + 1] - s);
    kernels().scatter_axpy(u_rows_.data() + s, u_vals_.data() + s, len, -zk, y.data());
  }

  // Un-permute columns: x[basis position q_[k]] = z[k].
  for (int k = 0; k < m_; ++k) {
    x[static_cast<size_t>(q_[static_cast<size_t>(k)])] = y[static_cast<size_t>(k)];
  }

  // Apply eta transformations in application order.
  for (const Eta& e : etas_) {
    const double xr = x[static_cast<size_t>(e.pos)] / e.pivot;
    x[static_cast<size_t>(e.pos)] = xr;
    if (xr == 0.0) continue;
    kernels().scatter_axpy(eta_rows_.data() + e.start, eta_vals_.data() + e.start,
                           e.len, -xr, x.data());
  }
}

void BasisLu::ftran_unit(std::vector<double>& x, int row, double value) const {
  debug_check_solve(x);
  x[static_cast<size_t>(row)] = value;
  // queued_ is self-cleaning (flags drop on pop), so only (re)size it here.
  if (queued_.size() != static_cast<size_t>(m_)) queued_.assign(static_cast<size_t>(m_), 0);
  heap_.clear();
  touched_.clear();

  // Forward: reach-based L pass. Updates from step t only create nonzeros at
  // rows pivoted later, so popping the pending steps in increasing order
  // replays the dense loop's visit order restricted to reachable steps.
  const auto push_step = [&](int t) {
    if (!queued_[static_cast<size_t>(t)]) {
      queued_[static_cast<size_t>(t)] = 1;
      heap_.push_back(t);
      std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
    }
  };
  push_step(pinv_[static_cast<size_t>(row)]);
  int kmax = -1;
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
    const int t = heap_.back();
    heap_.pop_back();
    queued_[static_cast<size_t>(t)] = 0;
    touched_.push_back(t);
    kmax = t;
    const double v = x[static_cast<size_t>(p_[static_cast<size_t>(t)])];
    if (v == 0.0) continue;  // numerically cancelled
    const int64_t s = l_start_[static_cast<size_t>(t)];
    const int len = static_cast<int>(l_start_[static_cast<size_t>(t) + 1] - s);
    kernels().scatter_axpy(l_rows_.data() + s, l_vals_.data() + s, len, -v, x.data());
    for (int i = 0; i < len; ++i) {
      push_step(pinv_[static_cast<size_t>(l_rows_[static_cast<size_t>(s + i)])]);
    }
  }

  // Gather into step space: only steps <= kmax can hold nonzeros.
  std::vector<double>& y = work2_;
  std::fill(y.begin(), y.begin() + (kmax + 1), 0.0);
  for (const int t : touched_) {
    y[static_cast<size_t>(t)] = x[static_cast<size_t>(p_[static_cast<size_t>(t)])];
    x[static_cast<size_t>(p_[static_cast<size_t>(t)])] = 0.0;  // clear row-space residue
  }

  // Backward: U substitution scatters strictly upward (step t < k), so
  // everything above the deepest touched step stays exactly zero.
  for (int k = kmax; k >= 0; --k) {
    const double zk = y[static_cast<size_t>(k)] / u_diag_[static_cast<size_t>(k)];
    y[static_cast<size_t>(k)] = zk;
    if (zk == 0.0) continue;
    const int64_t s = u_start_[static_cast<size_t>(k)];
    const int len = static_cast<int>(u_start_[static_cast<size_t>(k) + 1] - s);
    kernels().scatter_axpy(u_rows_.data() + s, u_vals_.data() + s, len, -zk, y.data());
  }

  // Un-permute columns; x above was restored to all-zero, so positions past
  // kmax already hold their (zero) solution values.
  for (int k = 0; k <= kmax; ++k) {
    x[static_cast<size_t>(q_[static_cast<size_t>(k)])] = y[static_cast<size_t>(k)];
  }

  // Apply eta transformations in application order (same as ftran()).
  for (const Eta& e : etas_) {
    const double xr = x[static_cast<size_t>(e.pos)] / e.pivot;
    x[static_cast<size_t>(e.pos)] = xr;
    if (xr == 0.0) continue;
    kernels().scatter_axpy(eta_rows_.data() + e.start, eta_vals_.data() + e.start,
                           e.len, -xr, x.data());
  }
}

void BasisLu::btran(std::vector<double>& y) const {
  debug_check_solve(y);
  // Etas transposed, newest first: y <- E^{-T} y. The dot is the 4-lane
  // kernel (acc = y[pos] - Σ lanes), bit-identical across dispatch levels.
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
    const double dot = kernels().gather_dot(eta_rows_.data() + it->start,
                                            eta_vals_.data() + it->start, it->len,
                                            y.data());
    y[static_cast<size_t>(it->pos)] = (y[static_cast<size_t>(it->pos)] - dot) / it->pivot;
  }

  // Permute into step space: c_q[k] = y[q_[k]].
  std::vector<double>& w = work2_;
  for (int k = 0; k < m_; ++k) {
    w[static_cast<size_t>(k)] = y[static_cast<size_t>(q_[static_cast<size_t>(k)])];
  }

  // Solve U^T w' = c_q forward over steps (U stored by column).
  for (int k = 0; k < m_; ++k) {
    const int64_t s = u_start_[static_cast<size_t>(k)];
    const int len = static_cast<int>(u_start_[static_cast<size_t>(k) + 1] - s);
    const double dot =
        kernels().gather_dot(u_rows_.data() + s, u_vals_.data() + s, len, w.data());
    w[static_cast<size_t>(k)] =
        (w[static_cast<size_t>(k)] - dot) / u_diag_[static_cast<size_t>(k)];
  }

  // Solve L^T t = w backward; L column entries live in original-row space,
  // l_steps_ carries their precomputed step indices for the gather.
  for (int k = m_ - 1; k >= 0; --k) {
    const int64_t s = l_start_[static_cast<size_t>(k)];
    const int len = static_cast<int>(l_start_[static_cast<size_t>(k) + 1] - s);
    const double dot =
        kernels().gather_dot(l_steps_.data() + s, l_vals_.data() + s, len, w.data());
    w[static_cast<size_t>(k)] = w[static_cast<size_t>(k)] - dot;
  }

  // Un-permute rows: y[p_[k]] = t[k].
  for (int k = 0; k < m_; ++k) {
    y[static_cast<size_t>(p_[static_cast<size_t>(k)])] = w[static_cast<size_t>(k)];
  }
}

bool BasisLu::update(int pos, const std::vector<double>& w, double pivot_tol) {
  const double pivot = w[static_cast<size_t>(pos)];
  if (std::abs(pivot) < pivot_tol) return false;
  Eta e;
  e.pos = pos;
  e.pivot = pivot;
  e.start = static_cast<int64_t>(eta_rows_.size());
  for (int i = 0; i < m_; ++i) {
    if (i == pos) continue;
    const double v = w[static_cast<size_t>(i)];
    if (v != 0.0) {
      eta_rows_.push_back(i);
      eta_vals_.push_back(v);
    }
  }
  e.len = static_cast<int>(static_cast<int64_t>(eta_rows_.size()) - e.start);
  etas_.push_back(e);
  return true;
}

}  // namespace wnet::milp::simplex
