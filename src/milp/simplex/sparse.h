#pragma once

#include <cstddef>
#include <vector>

namespace wnet::milp::simplex {

/// One nonzero entry of a sparse column.
struct Entry {
  int row;
  double value;
};

/// Column-major sparse matrix (CSC-lite): a vector of columns, each a list
/// of (row, value) entries sorted by row. The simplex works column-wise
/// (FTRAN of A_j, pricing dot-products), so no row-major mirror is needed.
class SparseMatrix {
 public:
  SparseMatrix(int rows, int cols) : rows_(rows), cols_(static_cast<size_t>(cols)) {}

  void set_column(int j, std::vector<Entry> entries) {
    cols_[static_cast<size_t>(j)] = std::move(entries);
  }

  /// Appends one entry to an existing column. The caller must keep the
  /// sorted-by-row invariant — appending an entry for a brand-new largest
  /// row index (row growth) preserves it by construction.
  void append_entry(int j, Entry e) { cols_[static_cast<size_t>(j)].push_back(e); }

  /// Appends a new column at the end; returns its index.
  int add_column(std::vector<Entry> entries) {
    cols_.push_back(std::move(entries));
    return static_cast<int>(cols_.size()) - 1;
  }

  /// Grows the row count (row data lives inside the columns).
  void set_num_rows(int rows) { rows_ = rows; }
  [[nodiscard]] const std::vector<Entry>& column(int j) const {
    return cols_[static_cast<size_t>(j)];
  }

  [[nodiscard]] int num_rows() const { return rows_; }
  [[nodiscard]] int num_cols() const { return static_cast<int>(cols_.size()); }

  [[nodiscard]] size_t nonzeros() const {
    size_t n = 0;
    for (const auto& c : cols_) n += c.size();
    return n;
  }

  /// Dot product of column j with a dense vector.
  [[nodiscard]] double dot_column(int j, const std::vector<double>& dense) const {
    double s = 0.0;
    for (const Entry& e : cols_[static_cast<size_t>(j)]) {
      s += e.value * dense[static_cast<size_t>(e.row)];
    }
    return s;
  }

  /// dense += scale * column j.
  void axpy_column(int j, double scale, std::vector<double>& dense) const {
    for (const Entry& e : cols_[static_cast<size_t>(j)]) {
      dense[static_cast<size_t>(e.row)] += scale * e.value;
    }
  }

 private:
  int rows_;
  std::vector<std::vector<Entry>> cols_;
};

}  // namespace wnet::milp::simplex
