#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/simd/simd.h"

namespace wnet::milp::simplex {

/// One nonzero entry of a sparse column (the element type handed across the
/// API; storage is structure-of-arrays, see SparseMatrix).
struct Entry {
  int row;
  double value;
};

/// Lightweight read view of one column: parallel int32 row-index and double
/// value arrays. Iterates and indexes as Entry values so call sites written
/// against the old array-of-structs layout keep working.
class ColumnView {
 public:
  ColumnView(const int32_t* rows, const double* values, int len)
      : rows_(rows), values_(values), len_(len) {}

  [[nodiscard]] size_t size() const { return static_cast<size_t>(len_); }
  [[nodiscard]] bool empty() const { return len_ == 0; }
  [[nodiscard]] Entry operator[](int i) const {
    return Entry{static_cast<int>(rows_[i]), values_[i]};
  }
  [[nodiscard]] const int32_t* rows() const { return rows_; }
  [[nodiscard]] const double* values() const { return values_; }

  class iterator {
   public:
    iterator(const ColumnView* v, int i) : v_(v), i_(i) {}
    Entry operator*() const { return (*v_)[i_]; }
    iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator!=(const iterator& o) const { return i_ != o.i_; }

   private:
    const ColumnView* v_;
    int i_;
  };
  [[nodiscard]] iterator begin() const { return {this, 0}; }
  [[nodiscard]] iterator end() const { return {this, len_}; }

 private:
  const int32_t* rows_;
  const double* values_;
  int len_;
};

/// Column-major sparse matrix in structure-of-arrays CSC form: one flat
/// pooled int32 row-index array and one flat double value array shared by
/// all columns, with per-column {start, len, cap} metadata. The split
/// layout feeds the SIMD gather/scatter kernels (util/simd) directly —
/// `dot_column` is a gather-dot, `axpy_column` a scatter-axpy — and halves
/// the bytes streamed per pricing pass vs the old interleaved
/// Entry{int,double} layout (12 packed -> 8+4 split, no padding).
///
/// Columns are allocated in the pool with capacity slack; `append_entry`
/// on a full column relocates it to the pool tail (StandardLp::add_row
/// appends a coefficient to arbitrary structural columns mid-solve).
/// Abandoned slots are garbage until the matrix is rebuilt — acceptable:
/// row appends are rare (lazy cuts) and bounded per solve.
class SparseMatrix {
 public:
  SparseMatrix(int rows, int cols) : rows_(rows), meta_(static_cast<size_t>(cols)) {}

  void set_column(int j, const std::vector<Entry>& entries) {
    Col& m = meta_[static_cast<size_t>(j)];
    nnz_ -= static_cast<size_t>(m.len);
    nnz_ += entries.size();
    const int n = static_cast<int>(entries.size());
    if (n > m.cap) {
      m.start = static_cast<int64_t>(rows_pool_.size());
      m.cap = n;
      rows_pool_.resize(rows_pool_.size() + static_cast<size_t>(n));
      values_pool_.resize(values_pool_.size() + static_cast<size_t>(n));
    }
    m.len = n;
    int32_t* r = rows_pool_.data() + m.start;
    double* v = values_pool_.data() + m.start;
    for (int i = 0; i < n; ++i) {
      r[i] = static_cast<int32_t>(entries[static_cast<size_t>(i)].row);
      v[i] = entries[static_cast<size_t>(i)].value;
    }
  }

  /// Appends one entry to an existing column. The caller must keep the
  /// sorted-by-row invariant — appending an entry for a brand-new largest
  /// row index (row growth) preserves it by construction.
  void append_entry(int j, Entry e) {
    Col& m = meta_[static_cast<size_t>(j)];
    if (m.len == m.cap) relocate(m, m.len == 0 ? 4 : 2 * m.len);
    rows_pool_[static_cast<size_t>(m.start + m.len)] = static_cast<int32_t>(e.row);
    values_pool_[static_cast<size_t>(m.start + m.len)] = e.value;
    ++m.len;
    ++nnz_;
  }

  /// Appends a new column at the end; returns its index.
  int add_column(const std::vector<Entry>& entries) {
    meta_.emplace_back();
    set_column(static_cast<int>(meta_.size()) - 1, entries);
    return static_cast<int>(meta_.size()) - 1;
  }

  /// Grows the row count (row data lives inside the columns).
  void set_num_rows(int rows) { rows_ = rows; }

  [[nodiscard]] ColumnView column(int j) const {
    const Col& m = meta_[static_cast<size_t>(j)];
    return {rows_pool_.data() + m.start, values_pool_.data() + m.start, m.len};
  }

  [[nodiscard]] int num_rows() const { return rows_; }
  [[nodiscard]] int num_cols() const { return static_cast<int>(meta_.size()); }
  [[nodiscard]] size_t nonzeros() const { return nnz_; }

  /// Dot product of column j with a dense vector.
  [[nodiscard]] double dot_column(int j, const std::vector<double>& dense) const {
    const Col& m = meta_[static_cast<size_t>(j)];
    debug_check_bounds(m, dense.size());
    return util::simd::kernels().gather_dot(rows_pool_.data() + m.start,
                                            values_pool_.data() + m.start, m.len,
                                            dense.data());
  }

  /// dense += scale * column j.
  void axpy_column(int j, double scale, std::vector<double>& dense) const {
    const Col& m = meta_[static_cast<size_t>(j)];
    debug_check_bounds(m, dense.size());
    util::simd::kernels().scatter_axpy(rows_pool_.data() + m.start,
                                       values_pool_.data() + m.start, m.len, scale,
                                       dense.data());
  }

 private:
  struct Col {
    int64_t start = 0;
    int len = 0;
    int cap = 0;
  };

  void relocate(Col& m, int new_cap) {
    const int64_t start = static_cast<int64_t>(rows_pool_.size());
    rows_pool_.resize(rows_pool_.size() + static_cast<size_t>(new_cap));
    values_pool_.resize(values_pool_.size() + static_cast<size_t>(new_cap));
    // resize may reallocate, so re-derive the source after it.
    for (int i = 0; i < m.len; ++i) {
      rows_pool_[static_cast<size_t>(start + i)] =
          rows_pool_[static_cast<size_t>(m.start + i)];
      values_pool_[static_cast<size_t>(start + i)] =
          values_pool_[static_cast<size_t>(m.start + i)];
    }
    m.start = start;
    m.cap = new_cap;
  }

  /// Debug-only guard for the kernel entry points: every row index must
  /// address the dense operand (the PR 8 shared-pool bug class — silent OOB
  /// reads in release).
  void debug_check_bounds(const Col& m, size_t dense_size) const {
#ifndef NDEBUG
    for (int i = 0; i < m.len; ++i) {
      const int32_t r = rows_pool_[static_cast<size_t>(m.start + i)];
      assert(r >= 0 && static_cast<size_t>(r) < dense_size &&
             "sparse kernel row index out of bounds for dense operand");
    }
#else
    (void)m;
    (void)dense_size;
#endif
  }

  int rows_;
  std::vector<Col> meta_;
  std::vector<int32_t> rows_pool_;
  std::vector<double> values_pool_;
  size_t nnz_ = 0;
};

}  // namespace wnet::milp::simplex
